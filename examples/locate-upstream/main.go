// locate-upstream demonstrates the paper's extraterritorial-blocking
// finding (§4.3): remote CenTrace measurements toward Kazakhstan endpoints
// that route through Russian transit terminate inside Russia — the
// blocking is imposed by a different country than the one being measured.
// Measurement platforms that attribute censorship to the endpoint's
// country would misreport these.
package main

import (
	"fmt"

	"cendev/internal/centrace"
	"cendev/internal/experiments"
)

func main() {
	world := experiments.BuildWorld()

	fmt.Println("Remote CenTrace to every KZ endpoint for", experiments.KZPoker)
	fmt.Println()
	blockedInRU, blockedInKZ := 0, 0
	for _, ep := range world.EndpointsIn("KZ") {
		res := centrace.New(world.Net, world.USClient, ep.Host, centrace.Config{
			ControlDomain: experiments.ControlDomain,
			TestDomain:    experiments.KZPoker,
			Protocol:      centrace.HTTP,
			Repetitions:   3,
		}).Run()
		if !res.Blocked {
			fmt.Printf("%-16s not blocked\n", ep.Host.ID)
			continue
		}
		hop := res.BlockingHop
		marker := ""
		switch hop.Country {
		case "RU":
			blockedInRU++
			marker = "  ← blocked OUTSIDE Kazakhstan"
		case "KZ":
			blockedInKZ++
		}
		fmt.Printf("%-16s blocked at AS%-6d %-22s (%s)%s\n",
			ep.Host.ID, hop.ASN, hop.Org, hop.Country, marker)
	}
	fmt.Println()
	fmt.Printf("blocked inside KZ: %d endpoints; blocked in Russian transit: %d endpoints\n",
		blockedInKZ, blockedInRU)
	fmt.Println("(the paper measured 34.07% of KZ endpoints timing out in AS31133/AS43727)")
}
