// genetic-evasion runs the Geneva-style search baseline (the approach the
// paper contrasts CenFuzz with, §3.4/§6) against a simulated censor: a
// genetic algorithm over request mutations finds an evading — ideally
// circumventing — strategy in a few dozen measurements, but different
// seeds converge to different strategies, which is why the paper favors
// deterministic fuzzing for device fingerprinting.
package main

import (
	"fmt"
	"net/netip"

	"cendev/internal/endpoint"
	"cendev/internal/evolve"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

func main() {
	const blocked = "www.blocked.example"
	g := topology.NewGraph()
	asC := g.AddAS(64500, "ClientNet", "US")
	asE := g.AddAS(64501, "OriginNet", "US")
	r1 := g.AddRouter("r1", asC)
	r2 := g.AddRouter("r2", asE)
	g.Link("r1", "r2")
	client := g.AddHost("client", asC, r1)
	origin := g.AddHost("origin", asE, r2)
	net := simnet.New(g)
	srv := endpoint.NewServer(blocked)
	srv.TolerantPadding = true
	net.RegisterServer("origin", srv)
	net.AttachDevice("r1", "r2", middlebox.NewDevice("censor", middlebox.VendorCisco,
		[]string{blocked}, netip.Addr{}))

	eval := evolve.NetworkEvaluator(net, client, origin, blocked)
	fmt.Println("seed | evaluations | best genome (evaded/circumvented)")
	for seed := int64(0); seed < 5; seed++ {
		res := evolve.Search(eval, evolve.Config{Seed: seed})
		fmt.Printf("%4d | %11d | %s (%v/%v)\n",
			seed, res.Evaluations, res.Best, res.BestOutcome.Evaded, res.BestOutcome.Circumvented)
	}
	fmt.Println("\nNote how seeds disagree on the winning strategy — the")
	fmt.Println("nondeterminism that makes search results incomparable across")
	fmt.Println("devices, and the reason CenFuzz fixes its permutation set (§6).")
}
