// Quickstart: build a five-hop simulated network with one censorship
// device, run a CenTrace measurement, and read the inference. This is the
// smallest end-to-end use of the library's public surface: topology →
// simnet → middlebox → centrace.
package main

import (
	"fmt"

	"cendev/internal/centrace"
	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

func main() {
	// 1. A linear topology: client — r1 — r2 — r3 — server.
	g := topology.NewGraph()
	asClient := g.AddAS(64500, "ClientNet", "US")
	asTransit := g.AddAS(64501, "TransitNet", "DE")
	asServer := g.AddAS(64502, "ServerNet", "KZ")
	r1 := g.AddRouter("r1", asClient)
	g.AddRouter("r2", asTransit)
	r3 := g.AddRouter("r3", asServer)
	g.Link("r1", "r2")
	g.Link("r2", "r3")
	client := g.AddHost("client", asClient, r1)
	server := g.AddHost("server", asServer, r3)

	// 2. A network over it, with a web server on the endpoint.
	net := simnet.New(g)
	net.RegisterServer("server", endpoint.NewServer("www.blocked.example", "www.control.example"))

	// 3. A Fortinet-style filter on the transit→server link, configured to
	// block one domain.
	dev := middlebox.NewDevice("demo-filter", middlebox.VendorFortinet,
		[]string{"www.blocked.example"}, g.Router("r3").Addr)
	net.AttachDevice("r2", "r3", dev)

	// 4. Run CenTrace: control vs test domain, TTL-limited probes.
	res := centrace.New(net, client, server, centrace.Config{
		ControlDomain: "www.control.example",
		TestDomain:    "www.blocked.example",
		Protocol:      centrace.HTTP,
		Repetitions:   5,
	}).Run()

	// 5. Read the verdict.
	fmt.Printf("endpoint distance: %d hops\n", res.EndpointTTL)
	fmt.Printf("blocked: %v (%s)\n", res.Blocked, res.TermKind)
	fmt.Printf("device location: %s (%s, %s)\n", res.BlockingHop, res.Placement, res.Location)
	if res.BlockpageVendor != "" {
		fmt.Printf("blockpage vendor: %s\n", res.BlockpageVendor)
	}
}
