// evasion-scan runs CenFuzz against two endpoints filtered by different
// vendors and compares their evasion fingerprints side by side — the §6
// observation that deterministic fuzzing outcomes differ by device and can
// therefore fingerprint it.
package main

import (
	"fmt"

	"cendev/internal/cenfuzz"
	"cendev/internal/experiments"
)

func main() {
	world := experiments.BuildWorld()

	endpoints := map[string]string{
		"az-ep-4-0":   "Fortinet ISP (AZ)",
		"kz-mhep-0-0": "Kerio Control ISP (KZ)",
	}
	results := map[string]*cenfuzz.Result{}
	for id := range endpoints {
		var ep experiments.EndpointInfo
		for _, e := range world.Endpoints {
			if e.Host.ID == id {
				ep = e
			}
		}
		fz := cenfuzz.New(world.Net, world.USClient, ep.Host, cenfuzz.Config{
			TestDomain:    experiments.TestDomainsFor(ep.Country)[0],
			ControlDomain: experiments.ControlDomain,
		})
		results[id] = fz.Run(nil)
	}

	fmt.Printf("%-24s | %-22s | %-22s\n", "strategy", endpoints["az-ep-4-0"], endpoints["kz-mhep-0-0"])
	az := results["az-ep-4-0"]
	kz := results["kz-mhep-0-0"]
	for i := range az.Strategies {
		a := &az.Strategies[i]
		k := kz.Strategy(a.Name)
		diff := ""
		if (a.SuccessRate() > 0.5) != (k.SuccessRate() > 0.5) {
			diff = "  ← distinguishes the vendors"
		}
		fmt.Printf("%-24s | %20.1f%% | %20.1f%%%s\n", a.Name, 100*a.SuccessRate(), 100*k.SuccessRate(), diff)
	}
	fmt.Println("\nStrategies whose outcome differs form the per-vendor fingerprint (§6, §7).")
}
