// fingerprint-vendor walks the §5 pipeline end to end for one endpoint:
// CenTrace locates the in-path device and extracts its potential IP
// address; CenProbe port-scans it, grabs protocol banners, and matches
// them against the Recog-style fingerprint database; the result is a
// vendor label that corroborates (or substitutes for) blockpage evidence.
package main

import (
	"fmt"

	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/experiments"
)

func main() {
	world := experiments.BuildWorld()

	// The KZ multihomed ISPs run commercial filters; take one endpoint
	// behind each and identify the products.
	targets := []string{"kz-mhep-0-0", "kz-mhep-2-0", "kz-mhep-3-0", "az-ep-0-0"}
	for _, id := range targets {
		var ep experiments.EndpointInfo
		for _, e := range world.Endpoints {
			if e.Host.ID == id {
				ep = e
			}
		}
		res := centrace.New(world.Net, world.USClient, ep.Host, centrace.Config{
			ControlDomain: experiments.ControlDomain,
			TestDomain:    experiments.TestDomainsFor(ep.Country)[0],
			Protocol:      centrace.HTTP,
			Repetitions:   3,
		}).Run()
		fmt.Printf("endpoint %s (%s):\n", id, ep.Country)
		if !res.Blocked {
			fmt.Println("  not blocked; nothing to fingerprint")
			continue
		}
		fmt.Printf("  CenTrace: %s blocking at %s\n", res.TermKind, res.BlockingHop)
		if res.Placement != centrace.PlacementInPath {
			fmt.Println("  on-path device: no probeable address (§5.2 limitation)")
			continue
		}
		probe := cenprobe.Probe(world.Net, res.BlockingHop.Addr)
		fmt.Printf("  CenProbe: open ports %v\n", probe.OpenPorts)
		for _, b := range probe.Banners {
			fmt.Printf("    %d/%s %q\n", b.Port, b.Protocol, b.Banner)
		}
		if probe.Vendor != "" {
			fmt.Printf("  vendor: %s (fingerprint %s)\n", probe.Vendor, probe.FingerprintID)
		} else if res.BlockpageVendor != "" {
			fmt.Printf("  vendor: %s (from injected blockpage; no banners)\n", res.BlockpageVendor)
		} else {
			fmt.Println("  vendor: unidentified (no services exposed)")
		}
		fmt.Println()
	}
}
