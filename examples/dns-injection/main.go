// dns-injection demonstrates the DNS protocol extension the paper names
// as future work (§8): a CenTrace-style TTL-limited DNS measurement
// detects an on-path injector forging A records for a blocked QNAME,
// localizes it, and distinguishes the forged answer (which wins the race)
// from the resolver's legitimate answer arriving behind it.
package main

import (
	"fmt"
	"net/netip"

	"cendev/internal/centrace"
	"cendev/internal/dnsgram"
	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

func main() {
	// client — r1 — r2 — r3 — resolver, with a DNS injector on r2→r3.
	g := topology.NewGraph()
	asC := g.AddAS(64500, "ClientNet", "US")
	asT := g.AddAS(64501, "TransitNet", "DE")
	asR := g.AddAS(64502, "ResolverNet", "IR")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2", asT)
	r3 := g.AddRouter("r3", asR)
	g.Link("r1", "r2")
	g.Link("r2", "r3")
	client := g.AddHost("client", asC, r1)
	resolver := g.AddHost("resolver", asR, r3)

	net := simnet.New(g)
	net.RegisterResolver("resolver", endpoint.NewResolver(map[string]netip.Addr{
		"www.blocked.example": netip.MustParseAddr("192.0.2.80"),
		"www.control.example": netip.MustParseAddr("192.0.2.81"),
	}))
	injector := middlebox.NewDevice("injector", middlebox.VendorDNSInjector,
		[]string{"www.blocked.example"}, netip.Addr{})
	net.AttachDevice("r2", "r3", injector)

	// A plain full-TTL query shows the race: the forged answer arrives
	// first, the honest answer behind it.
	q := dnsgram.NewQuery(1, "www.blocked.example")
	fmt.Println("full-TTL query for www.blocked.example:")
	for _, d := range net.SendUDP(client, resolver, 53, q.Serialize(), 64) {
		resp, err := dnsgram.ParseResponse(d.Packet.Payload)
		if err != nil {
			continue
		}
		fmt.Printf("  answer %v (hop %d)\n", resp.Answers, d.FromHop)
	}

	// CenTrace-DNS localizes the injector.
	res := centrace.New(net, client, resolver, centrace.Config{
		ControlDomain: "www.control.example",
		TestDomain:    "www.blocked.example",
		Protocol:      centrace.DNS,
		Repetitions:   5,
	}).Run()
	fmt.Printf("\nCenTrace-DNS verdict: blocked=%v (%s, %s)\n", res.Blocked, res.BlockpageID, res.Placement)
	fmt.Printf("injector located at: %s\n", res.BlockingHop)
}
