package cendev

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md §5. The expensive measurement
// corpus is built once and shared; each table/figure bench measures the
// regeneration of its artifact and reports the headline scientific number
// via b.ReportMetric so `go test -bench .` doubles as a results table.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"cendev/internal/cenfuzz"
	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/endpoint"
	"cendev/internal/evolve"
	"cendev/internal/experiments"
	"cendev/internal/features"
	"cendev/internal/middlebox"
	"cendev/internal/ml"
	"cendev/internal/netem"
	"cendev/internal/obs"
	"cendev/internal/routedyn"
	"cendev/internal/serve"
	"cendev/internal/simnet"
	"cendev/internal/tomography"
	"cendev/internal/topology"
)

var (
	benchOnce   sync.Once
	benchCorpus *experiments.Corpus
)

func corpus(b *testing.B) *experiments.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus = experiments.BuildCorpus(experiments.CorpusConfig{Repetitions: 3})
	})
	return benchCorpus
}

// --- Measurement primitives -------------------------------------------

// BenchmarkCenTraceRun measures one full CenTrace measurement (control +
// test aggregates, 5 repetitions) on the four-country world.
func BenchmarkCenTraceRun(b *testing.B) {
	world := experiments.BuildWorld()
	ep := world.EndpointsIn("KZ")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrace.New(world.Net, world.USClient, ep.Host, centrace.Config{
			ControlDomain: experiments.ControlDomain,
			TestDomain:    experiments.KZPoker,
			Protocol:      centrace.HTTP,
			Repetitions:   5,
		}).Run()
	}
}

// BenchmarkCenFuzzEndpoint measures one full 24-strategy CenFuzz run
// (≈960 request/response measurements).
func BenchmarkCenFuzzEndpoint(b *testing.B) {
	world := experiments.BuildWorld()
	ep := world.EndpointsIn("KZ")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cenfuzz.New(world.Net, world.USClient, ep.Host, cenfuzz.Config{
			TestDomain:    experiments.KZPoker,
			ControlDomain: experiments.ControlDomain,
		}).Run(nil)
	}
}

// BenchmarkCenProbeDevice measures one port scan + banner grab +
// fingerprint match.
func BenchmarkCenProbeDevice(b *testing.B) {
	world := experiments.BuildWorld()
	addr := world.Graph.Router("kz-mh0r").Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cenprobe.Probe(world.Net, addr)
	}
}

// BenchmarkCampaignParallel measures the clone-isolated campaign worker
// pool at several worker counts over the same target list — the §4.2
// "multiple endpoints concurrently" collection pattern. Results are
// byte-identical at every worker count (see TestCampaignWorkerDeterminism);
// on a multi-core machine the wall-clock time at workers=4 should be a
// fraction of workers=1. ci.sh records this family to BENCH_parallel.json.
func BenchmarkCampaignParallel(b *testing.B) {
	world := experiments.BuildWorld()
	var targets []centrace.Target
	for _, e := range world.EndpointsIn("KZ") {
		for _, domain := range experiments.TestDomainsFor("KZ") {
			targets = append(targets, centrace.Target{
				Endpoint: e.Host, Domain: domain, Protocol: centrace.HTTP, Label: "KZ",
			})
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			blocked := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := (&centrace.Campaign{
					Net:    world.Net,
					Client: world.USClient,
					Base: centrace.Config{
						ControlDomain: experiments.ControlDomain,
						Repetitions:   3,
					},
					Workers: workers,
				}).Run(targets)
				blocked = len(centrace.Blocked(results))
			}
			b.StopTimer()
			b.ReportMetric(float64(len(targets)), "targets")
			b.ReportMetric(float64(blocked), "blocked")
		})
	}
}

// BenchmarkCampaignObs measures the cost of the observability layer on the
// hottest path: the same campaign as BenchmarkCampaignParallel at a fixed
// worker count, with metrics+tracing off versus fully on (registry wired
// into the network, fault engine, pool, prober, and campaign, plus a span
// per target/pass/probe). ci.sh records this family to BENCH_obs.json; the
// enabled run must stay within a few percent of the disabled one.
func BenchmarkCampaignObs(b *testing.B) {
	world := experiments.BuildWorld()
	var targets []centrace.Target
	for _, e := range world.EndpointsIn("KZ") {
		for _, domain := range experiments.TestDomainsFor("KZ") {
			targets = append(targets, centrace.Target{
				Endpoint: e.Host, Domain: domain, Protocol: centrace.HTTP, Label: "KZ",
			})
		}
	}
	const workers = 4
	for _, enabled := range []bool{false, true} {
		name := map[bool]string{false: "obs=off", true: "obs=on"}[enabled]
		b.Run(name, func(b *testing.B) {
			spans := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var reg *obs.Registry
				var tr *obs.Tracer
				if enabled {
					reg = obs.NewRegistry()
					tr = obs.NewTracer()
				}
				world.Net.SetObs(reg)
				(&centrace.Campaign{
					Net:    world.Net,
					Client: world.USClient,
					Base: centrace.Config{
						ControlDomain: experiments.ControlDomain,
						Repetitions:   3,
						Obs:           reg,
						Tracer:        tr,
					},
					Workers: workers,
				}).Run(targets)
				spans = tr.SpanCount()
			}
			b.StopTimer()
			world.Net.SetObs(nil)
			b.ReportMetric(float64(len(targets)), "targets")
			b.ReportMetric(float64(spans), "spans")
		})
	}
}

// --- Tables ------------------------------------------------------------

// BenchmarkTable1_CenTraceCollection regenerates Table 1 and reports the
// total remote CTs and blocked CTs.
func BenchmarkTable1_CenTraceCollection(b *testing.B) {
	c := corpus(b)
	var rows []experiments.Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(c)
	}
	b.StopTimer()
	cts, blocked := 0, 0
	for _, r := range rows {
		cts += r.RemoteCTs
		blocked += r.RemoteBlocked
	}
	b.ReportMetric(float64(cts), "remoteCTs")
	b.ReportMetric(float64(blocked), "blockedCTs")
}

// BenchmarkTable2_StrategyCatalog regenerates the Table 2 catalog and
// reports the total permutation count (479 in the paper's notation).
func BenchmarkTable2_StrategyCatalog(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2()
	}
	total := 0
	for _, r := range rows {
		total += r.NP
	}
	b.ReportMetric(float64(total), "permutations")
}

// BenchmarkTable3_FeatureInventory regenerates the feature inventory.
func BenchmarkTable3_FeatureInventory(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(features.FeatureNames())
	}
	b.ReportMetric(float64(n), "features")
}

// --- Figures -----------------------------------------------------------

// BenchmarkFig1_KZInCountryGraph regenerates the Figure 1 path graph.
func BenchmarkFig1_KZInCountryGraph(b *testing.B) {
	c := corpus(b)
	var g *experiments.PathGraph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = experiments.Fig1(c)
	}
	b.ReportMetric(float64(len(g.BlockedEdges())), "blockedEdges")
}

// BenchmarkFig3_BlockingTypeLocation regenerates Figure 3 and reports the
// drops+resets share (paper: 94.75%).
func BenchmarkFig3_BlockingTypeLocation(b *testing.B) {
	c := corpus(b)
	var cells []experiments.Fig3Cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = experiments.Fig3(c)
	}
	b.StopTimer()
	s := experiments.Fig3Summary(cells)
	b.ReportMetric(s.DropOrRSTPercent, "dropRST%")
	b.ReportMetric(s.PathCEPercent, "pathCE%")
	b.ReportMetric(s.AtEPercent, "atE%")
}

// BenchmarkFig4_InPathOnPath regenerates Figure 4 and reports the share of
// blocking within 1–2 hops of the endpoint (paper: >35%).
func BenchmarkFig4_InPathOnPath(b *testing.B) {
	c := corpus(b)
	var rows []experiments.Fig4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4(c)
	}
	b.StopTimer()
	b.ReportMetric(100*experiments.NearEndpointShare(rows), "nearE%")
}

// BenchmarkFig5_FuzzSuccess regenerates Figure 5 and reports two headline
// strategy rates (paper: PATCH 82.15%, host-word removal 91.3%).
func BenchmarkFig5_FuzzSuccess(b *testing.B) {
	c := corpus(b)
	var rows []experiments.Fig5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5(c)
	}
	b.StopTimer()
	totals := experiments.Fig5StrategyTotals(rows)
	b.ReportMetric(totals["Host Word Rem."].Rate(), "hostWordRem%")
	b.ReportMetric(totals["Hostname TLD Alt."].Rate(), "tldAlt%")
}

// BenchmarkFig6_Clustering regenerates the DBSCAN clustering and reports
// the same-country share (paper: 69%).
func BenchmarkFig6_Clustering(b *testing.B) {
	c := corpus(b)
	var res *experiments.Fig6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.Fig6(c, experiments.Fig6Config{})
	}
	b.StopTimer()
	b.ReportMetric(100*res.SameCountryShare, "sameCountry%")
	b.ReportMetric(float64(len(res.Clusters)), "clusters")
}

// BenchmarkFig9_FeatureImportance regenerates the RF feature-importance
// analysis (3×5-fold CV) and reports the mean accuracy.
func BenchmarkFig9_FeatureImportance(b *testing.B) {
	c := corpus(b)
	var accs []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accs, _ = experiments.Fig9(c)
	}
	b.StopTimer()
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	if len(accs) > 0 {
		mean /= float64(len(accs))
	}
	b.ReportMetric(100*mean, "cvAcc%")
}

// BenchmarkFig10to12_RemoteGraphs regenerates the remote path graphs.
func BenchmarkFig10to12_RemoteGraphs(b *testing.B) {
	c := corpus(b)
	blocked := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocked = len(experiments.Fig10(c).BlockedEdges()) +
			len(experiments.Fig11(c).BlockedEdges()) +
			len(experiments.Fig12(c).BlockedEdges())
	}
	b.ReportMetric(float64(blocked), "blockedEdges")
}

// BenchmarkSec43_QuoteStats regenerates the §4.3 quoted-packet statistics
// (paper: 57.6% RFC 792-minimal, 32.06% TOS-changed).
func BenchmarkSec43_QuoteStats(b *testing.B) {
	c := corpus(b)
	var s experiments.QuoteStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = experiments.QuoteStatistics(c)
	}
	b.StopTimer()
	if s.TotalQuotes > 0 {
		b.ReportMetric(100*float64(s.RFC792Only)/float64(s.TotalQuotes), "rfc792%")
		b.ReportMetric(100*float64(s.TOSChanged)/float64(s.TotalQuotes), "tosChanged%")
	}
}

// BenchmarkSec43_Extraterritorial reports the KZ-blocked-in-Russia share
// (paper: 34.07%).
func BenchmarkSec43_Extraterritorial(b *testing.B) {
	c := corpus(b)
	var s experiments.ExtraterritorialStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = experiments.Extraterritorial(c, "KZ")
	}
	b.ReportMetric(100*s.Share, "blockedAbroad%")
}

// BenchmarkSec53_BannerGrabs regenerates the §5.3 banner statistics
// (paper: 163 potential IPs, 68 with open ports, 19 labeled).
func BenchmarkSec53_BannerGrabs(b *testing.B) {
	c := corpus(b)
	var s experiments.BannerStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = experiments.BannerStatistics(c)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Summary.Probed), "probedIPs")
	b.ReportMetric(float64(s.Summary.WithOpenPorts), "withPorts")
	b.ReportMetric(float64(s.Summary.Labeled), "labeled")
}

// BenchmarkSec74_Correlation regenerates the §7.4 Spearman correlations
// and reports the same-vendor vs cross-vendor means (paper: ≈1.0 vs 0.56).
func BenchmarkSec74_Correlation(b *testing.B) {
	c := corpus(b)
	var cors []experiments.VendorCorrelation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cors = experiments.VendorCorrelations(c)
	}
	b.StopTimer()
	var same, cross float64
	var sameN, crossN int
	for _, vc := range cors {
		if vc.VendorA == vc.VendorB {
			same += vc.MeanRho
			sameN++
		} else {
			cross += vc.MeanRho
			crossN++
		}
	}
	if sameN > 0 {
		b.ReportMetric(same/float64(sameN), "sameVendorRho")
	}
	if crossN > 0 {
		b.ReportMetric(cross/float64(crossN), "crossVendorRho")
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// varianceWorld builds a diamond-heavy topology with a device on only some
// ECMP branches, where single-repetition CenTrace mislocalizes.
func varianceWorld() (*simnet.Network, *topology.Host, *topology.Host) {
	g := topology.NewGraph()
	asC := g.AddAS(1, "C", "US")
	asT := g.AddAS(2, "T", "DE")
	asE := g.AddAS(3, "E", "KZ")
	r1 := g.AddRouter("r1", asC)
	for _, id := range []string{"m1", "m2", "m3", "m4"} {
		g.AddRouter(id, asT)
		g.Link("r1", id)
	}
	r3 := g.AddRouter("r3", asE)
	for _, id := range []string{"m1", "m2", "m3", "m4"} {
		g.Link(id, "r3")
	}
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r3)
	n := simnet.New(g)
	n.RegisterServer("server", endpoint.NewServer("www.blocked.example", "www.control.example"))
	for _, id := range []string{"m1", "m2", "m3", "m4"} {
		dev := middlebox.NewDevice("d-"+id, middlebox.VendorCisco,
			[]string{"www.blocked.example"}, g.Router(id).Addr)
		n.AttachDevice(id, "r3", dev)
	}
	return n, client, server
}

// BenchmarkAblation_Repetitions compares 1 vs 11 traceroute repetitions
// under ECMP variance, reporting how often the hop distribution at the
// variable hop is fully covered.
func BenchmarkAblation_Repetitions(b *testing.B) {
	for _, reps := range []int{1, 11} {
		name := map[int]string{1: "reps=1", 11: "reps=11"}[reps]
		b.Run(name, func(b *testing.B) {
			n, client, server := varianceWorld()
			covered := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := centrace.New(n, client, server, centrace.Config{
					ControlDomain: "www.control.example",
					TestDomain:    "www.blocked.example",
					Repetitions:   reps,
				}).Run()
				// 4 ECMP middle hops exist; count how many the control
				// distribution observed.
				covered = len(res.Control.HopDist[2])
			}
			b.ReportMetric(float64(covered), "hopsCovered")
		})
	}
}

// BenchmarkAblation_TTLCopyCorrection reports device-localization error
// with and without the Past-E TTL-copy correction.
func BenchmarkAblation_TTLCopyCorrection(b *testing.B) {
	world := experiments.BuildWorld()
	var ep experiments.EndpointInfo
	for _, e := range world.EndpointsIn("RU") {
		if e.ASN == 42009 { // TTL-copying injector region
			ep = e
			break
		}
	}
	for _, corrected := range []bool{false, true} {
		name := map[bool]string{false: "off", true: "on"}[corrected]
		b.Run(name, func(b *testing.B) {
			errHops := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := centrace.New(world.Net, world.USClient, ep.Host, centrace.Config{
					ControlDomain: experiments.ControlDomain,
					TestDomain:    experiments.RUBlocked,
					Repetitions:   3,
				}).Run()
				const trueHop = 6 // ru-reg9r: us-cli-r,telia1,telia2,ru-bdr,entry,reg
				got := res.TermTTL
				if corrected {
					got = res.DeviceTTL
				}
				errHops = got - trueHop
				if errHops < 0 {
					errHops = -errHops
				}
			}
			b.ReportMetric(float64(errHops), "locErrHops")
		})
	}
}

// BenchmarkAblation_Epsilon compares k-distance ε estimation against fixed
// values, reporting cluster purity (fraction of clustered labeled points
// whose cluster is vendor-pure).
func BenchmarkAblation_Epsilon(b *testing.B) {
	c := corpus(b)
	for _, cfg := range []struct {
		name string
		eps  float64
	}{
		{"kdistance", 0},
		{"fixed-0.5", 0.5},
		{"fixed-5.0", 5.0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var res *experiments.Fig6Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = experiments.Fig6(c, experiments.Fig6Config{EpsilonOverride: cfg.eps})
			}
			b.StopTimer()
			b.ReportMetric(clusterPurity(res), "purity")
			b.ReportMetric(float64(len(res.Clusters)), "clusters")
		})
	}
}

// clusterPurity computes the share of clustered labeled observations whose
// cluster contains only their vendor.
func clusterPurity(res *experiments.Fig6Result) float64 {
	clusterVendors := map[int]map[string]int{}
	for i, label := range res.Assignment.Labels {
		if label == ml.Noise {
			continue
		}
		v := res.Observations[i].Label()
		if v == "" {
			continue
		}
		if clusterVendors[label] == nil {
			clusterVendors[label] = map[string]int{}
		}
		clusterVendors[label][v]++
	}
	pure, total := 0, 0
	for _, vendors := range clusterVendors {
		n := 0
		for _, c := range vendors {
			n += c
		}
		total += n
		if len(vendors) == 1 {
			pure += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pure) / float64(total)
}

// BenchmarkAblation_FeatureSets compares random-forest vendor-classifier
// accuracy on CenTrace features alone, +CenFuzz, and +banners.
func BenchmarkAblation_FeatureSets(b *testing.B) {
	c := corpus(b)
	obs := c.Observations()
	full := features.Extract(obs).Imputed()
	names := features.FeatureNames()
	sets := []struct {
		name   string
		filter func(string) bool
	}{
		{"trace-only", func(n string) bool { return !isFuzz(n) && !isBanner(n) }},
		{"trace+fuzz", func(n string) bool { return !isBanner(n) }},
		{"all", func(string) bool { return true }},
	}
	for _, set := range sets {
		b.Run(set.name, func(b *testing.B) {
			var cols []int
			for i, n := range names {
				if set.filter(n) {
					cols = append(cols, i)
				}
			}
			sub := full.SelectColumns(cols)
			d, _, classes := sub.LabeledDataset()
			if len(classes) < 2 {
				b.Skip("not enough labeled classes")
			}
			var accs []float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				accs, _ = ml.CrossValidate(d, ml.ForestConfig{NumTrees: 40, Seed: 2}, 5, 1)
			}
			b.StopTimer()
			mean := 0.0
			for _, a := range accs {
				mean += a
			}
			if len(accs) > 0 {
				mean /= float64(len(accs))
			}
			b.ReportMetric(100*mean, "cvAcc%")
		})
	}
}

func isFuzz(n string) bool   { return len(n) > 5 && n[:5] == "Fuzz:" }
func isBanner(n string) bool { return n == "NumOpenPorts" || (len(n) > 9 && n[:9] == "PortOpen:") }

// BenchmarkSimnetTransmit measures the raw forwarding engine: one payload
// packet crossing the full four-country world. allocs/op is the headline
// number — the pooled packet plane targets zero steady-state allocations
// (ci.sh gates on it).
func BenchmarkSimnetTransmit(b *testing.B) {
	world := experiments.BuildWorld()
	ep := world.EndpointsIn("RU")[0]
	conn, err := world.Net.Dial(world.USClient, ep.Host, 80)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("GET / HTTP/1.1\r\nHost: www.control.example\r\n\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.SendPayload(payload, 64)
	}
}

// BenchmarkStoreAppend measures one durable store append — binary record
// encode, frame, write, fsync — through the public API (ns/op is
// fsync-dominated; allocs/op is the number that must stay flat).
func BenchmarkStoreAppend(b *testing.B) {
	st, err := serve.OpenStore(b.TempDir(), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	spec := serve.JobSpec{Kind: serve.KindCenTrace, Domain: "bench.example", Seed: 7}
	spec.Normalize()
	e, err := st.AppendQueued(spec)
	if err != nil {
		b.Fatal(err)
	}
	payload := json.RawMessage(`{"blocked":true,"ttl":7,"vendor":"bench"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.UpdateState(e.ID, serve.StateRunning, i+1, "", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppend measures one campaign checkpoint: the full
// Result tree hand-encoded into a reused scratch buffer and framed —
// no reflection, no fsync (the campaign syncs at its own cadence).
func BenchmarkJournalAppend(b *testing.B) {
	j := centrace.NewJournal(io.Discard)
	cr := centrace.CampaignResult{
		Target: centrace.Target{Domain: "bench.example", Protocol: centrace.HTTP, Label: "bench"},
		Result: benchResult(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(cr)
	}
	if err := j.Err(); err != nil {
		b.Fatal(err)
	}
}

// benchResult builds a representative measurement result: two aggregates
// of three traces with quotes, deltas, and hop distributions — the shape
// a blocked HTTP measurement actually journals.
func benchResult() *centrace.Result {
	mkTrace := func() centrace.Trace {
		return centrace.Trace{
			Domain: "bench.example",
			Obs: []centrace.ProbeObs{
				{TTL: 1, Kind: centrace.KindICMP, From: netip.MustParseAddr("10.0.0.1"),
					Quote: &netem.QuotedPacket{IP: netem.IPv4{TTL: 1, Protocol: netem.ProtoTCP,
						Src: netip.MustParseAddr("10.0.0.100"), Dst: netip.MustParseAddr("192.0.2.9")}},
					QuoteDelta: &netem.QuoteDelta{TTLAtQuote: 1, QuotedPayloadLen: 8}},
				{TTL: 2, Kind: centrace.KindICMP, From: netip.MustParseAddr("10.0.0.2")},
				{TTL: 3, Kind: centrace.KindRST, From: netip.MustParseAddr("192.0.2.9"),
					Injected: &centrace.InjectedFeatures{TTL: 64, TCPFlags: netem.TCPRst}},
			},
			TermIdx: 2, Attempts: 4, Retries: 1,
		}
	}
	agg := &centrace.Aggregate{
		Domain: "bench.example",
		Traces: []centrace.Trace{mkTrace(), mkTrace(), mkTrace()},
		HopDist: map[int]map[netip.Addr]int{
			1: {netip.MustParseAddr("10.0.0.1"): 3},
			2: {netip.MustParseAddr("10.0.0.2"): 3},
			3: {netip.MustParseAddr("192.0.2.9"): 3},
		},
		TermTTL: 3, TermKind: centrace.KindRST, EndpointTTL: 3,
	}
	return &centrace.Result{
		Config:   centrace.Config{ControlDomain: "control.example", TestDomain: "bench.example", MaxTTL: 30},
		Client:   netip.MustParseAddr("10.0.0.100"),
		Endpoint: netip.MustParseAddr("192.0.2.9"),
		Valid:    true, Blocked: true,
		TermKind: centrace.KindRST, TermTTL: 3, EndpointTTL: 3, DeviceTTL: 3,
		BlockingHop: centrace.HopInfo{TTL: 3, Addr: netip.MustParseAddr("10.0.0.2"), ASN: 64500},
		Control:     agg, Test: agg,
	}
}

// BenchmarkDBSCAN measures the clustering primitive on synthetic data.
func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 200)
	for i := range pts {
		base := float64(i % 4)
		pts[i] = []float64{base*10 + rng.Float64(), base*10 + rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.DBSCAN(pts, 2, 3)
	}
}

// BenchmarkRandomForest measures forest training on a small labeled set.
func BenchmarkRandomForest(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := &ml.Dataset{}
	for i := 0; i < 100; i++ {
		y := i % 3
		d.X = append(d.X, []float64{float64(y) + rng.Float64()*0.3, rng.Float64(), rng.Float64()})
		d.Y = append(d.Y, y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.FitForest(d, ml.ForestConfig{NumTrees: 30, Seed: int64(i)})
	}
}

// BenchmarkCenTraceDNS measures the DNS-extension probe: one full DNS
// CenTrace (control + test) against an injector.
func BenchmarkCenTraceDNS(b *testing.B) {
	g := topology.NewGraph()
	asC := g.AddAS(1, "C", "US")
	asR := g.AddAS(2, "R", "IR")
	r1 := g.AddRouter("r1", asC)
	r2 := g.AddRouter("r2", asR)
	g.Link("r1", "r2")
	client := g.AddHost("client", asC, r1)
	resolver := g.AddHost("resolver", asR, r2)
	n := simnet.New(g)
	n.RegisterResolver("resolver", endpoint.NewResolver(map[string]netip.Addr{
		"www.blocked.example": netip.MustParseAddr("192.0.2.80"),
		"www.control.example": netip.MustParseAddr("192.0.2.81"),
	}))
	n.AttachDevice("r1", "r2", middlebox.NewDevice("inj", middlebox.VendorDNSInjector,
		[]string{"www.blocked.example"}, netip.Addr{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrace.New(n, client, resolver, centrace.Config{
			ControlDomain: "www.control.example",
			TestDomain:    "www.blocked.example",
			Protocol:      centrace.DNS,
			Repetitions:   5,
		}).Run()
	}
}

// BenchmarkAblation_Retries compares CenTrace observation quality under
// 20% transient loss with and without the paper's 3-retry rule, reporting
// the rate of spurious timeout observations on an unfiltered path (the
// modal-repetition logic keeps the final verdict correct either way —
// itself a robustness result).
func BenchmarkAblation_Retries(b *testing.B) {
	for _, retries := range []int{-1, 3} {
		name := map[int]string{-1: "retries=0", 3: "retries=3"}[retries]
		b.Run(name, func(b *testing.B) {
			timeouts, probes := 0, 0
			falseBlocked, runs := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := topology.NewGraph()
				asC := g.AddAS(1, "C", "US")
				asE := g.AddAS(2, "E", "KZ")
				r1 := g.AddRouter("r1", asC)
				r2 := g.AddRouter("r2", asE)
				g.Link("r1", "r2")
				client := g.AddHost("client", asC, r1)
				server := g.AddHost("server", asE, r2)
				n := simnet.New(g)
				n.RegisterServer("server", endpoint.NewServer("www.t.example", "www.c.example"))
				for trial := 0; trial < 20; trial++ {
					n.SetLoss(0.2, int64(trial))
					res := centrace.New(n, client, server, centrace.Config{
						ControlDomain: "www.c.example",
						TestDomain:    "www.t.example",
						Repetitions:   3,
						Retries:       retries,
					}).Run()
					runs++
					if res.Blocked {
						falseBlocked++
					}
					for _, tr := range append(res.Control.Traces, res.Test.Traces...) {
						for _, obs := range tr.Obs {
							probes++
							if obs.Kind == centrace.KindTimeout {
								timeouts++
							}
						}
					}
				}
			}
			b.ReportMetric(100*float64(falseBlocked)/float64(runs), "falseBlocked%")
			b.ReportMetric(100*float64(timeouts)/float64(probes), "spuriousTimeout%")
		})
	}
}

// BenchmarkSec41_Calibration reproduces the §4.1 path-variance calibration
// (200 traceroutes × 20 endpoints), reporting the mean repetitions needed
// for 90% path coverage (paper: 11).
func BenchmarkSec41_Calibration(b *testing.B) {
	var res experiments.CalibrationResult
	for i := 0; i < b.N; i++ {
		res = experiments.Calibrate(20, 200)
	}
	b.ReportMetric(res.MeanRepsFor90, "repsFor90")
}

// BenchmarkSec71_ClassifyUnlabeled reproduces the §7.1 vendor prediction
// for unlabeled devices, reporting the prediction count and the mean
// confidence.
func BenchmarkSec71_ClassifyUnlabeled(b *testing.B) {
	c := corpus(b)
	var preds []experiments.Prediction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds = experiments.ClassifyUnlabeled(c)
	}
	b.StopTimer()
	conf := 0.0
	for _, p := range preds {
		conf += p.Confidence
	}
	if len(preds) > 0 {
		conf /= float64(len(preds))
	}
	b.ReportMetric(float64(len(preds)), "predictions")
	b.ReportMetric(100*conf, "meanConf%")
}

// BenchmarkBaseline_GenevaVsCenFuzz contrasts the Geneva-style genetic
// search (the paper's §3.4 baseline, internal/evolve) with deterministic
// CenFuzz on the same device: the search finds one evading strategy in far
// fewer measurements, but different seeds converge to different genomes —
// no stable fingerprint — which is the paper's argument for determinism.
func BenchmarkBaseline_GenevaVsCenFuzz(b *testing.B) {
	build := func() (*simnet.Network, *topology.Host, *topology.Host) {
		g := topology.NewGraph()
		asC := g.AddAS(1, "C", "US")
		asE := g.AddAS(2, "E", "US")
		r1 := g.AddRouter("r1", asC)
		r2 := g.AddRouter("r2", asE)
		g.Link("r1", "r2")
		client := g.AddHost("client", asC, r1)
		origin := g.AddHost("origin", asE, r2)
		n := simnet.New(g)
		srv := endpoint.NewServer("www.blocked.example")
		srv.TolerantPadding = true
		n.RegisterServer("origin", srv)
		n.AttachDevice("r1", "r2", middlebox.NewDevice("d", middlebox.VendorCisco,
			[]string{"www.blocked.example"}, netip.Addr{}))
		return n, client, origin
	}

	b.Run("geneva-search", func(b *testing.B) {
		evals := 0
		distinct := map[string]bool{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, client, origin := build()
			for seed := int64(0); seed < 5; seed++ {
				res := evolve.Search(evolve.NetworkEvaluator(n, client, origin, "www.blocked.example"),
					evolve.Config{Seed: seed})
				evals += res.Evaluations
				distinct[res.Best.String()] = true
			}
		}
		b.ReportMetric(float64(evals)/float64(b.N)/5, "evalsPerRun")
		b.ReportMetric(float64(len(distinct)), "distinctStrategies")
	})
	b.Run("cenfuzz-exhaustive", func(b *testing.B) {
		var res *cenfuzz.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, client, origin := build()
			fz := cenfuzz.New(n, client, origin, cenfuzz.Config{
				TestDomain:    "www.blocked.example",
				ControlDomain: "www.blocked.example",
			})
			res = fz.Run(nil)
		}
		b.ReportMetric(float64(res.TotalMeasurements), "evalsPerRun")
		b.ReportMetric(1, "distinctStrategies") // deterministic by construction
	})
}

// BenchmarkExtension_Segmentation measures the TCP-segmentation extension
// class against a per-packet engine (fully evaded) and a reassembling
// engine (fully caught) — the evasion boundary the Geneva/SymTCP line of
// work documents.
func BenchmarkExtension_Segmentation(b *testing.B) {
	for _, tc := range []struct {
		name   string
		vendor middlebox.Vendor
	}{
		{"per-packet-engine", middlebox.VendorCisco},
		{"reassembling-engine", middlebox.VendorFortinet},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := topology.NewGraph()
				asC := g.AddAS(1, "C", "US")
				asE := g.AddAS(2, "E", "KZ")
				r1 := g.AddRouter("r1", asC)
				r2 := g.AddRouter("r2", asE)
				g.Link("r1", "r2")
				client := g.AddHost("client", asC, r1)
				server := g.AddHost("server", asE, r2)
				n := simnet.New(g)
				n.RegisterServer("server", endpoint.NewServer("www.blocked.example", "www.control.example"))
				n.AttachDevice("r1", "r2", middlebox.NewDevice("d", tc.vendor,
					[]string{"www.blocked.example"}, netip.Addr{}))
				fz := cenfuzz.New(n, client, server, cenfuzz.Config{
					TestDomain:    "www.blocked.example",
					ControlDomain: "www.control.example",
				})
				res := fz.Run(cenfuzz.ExtensionStrategies())
				rate = res.Strategy("Segmentation").SuccessRate()
			}
			b.ReportMetric(100*rate, "evasion%")
		})
	}
}

// benchLadder builds a W-wide, D-layer ECMP ladder: every router in a
// layer links to every router in the next, giving W^(D-1) equal-cost
// paths — a worst-ish case for per-epoch route recomputation.
func benchLadder(w, d int) *topology.Graph {
	g := topology.NewGraph()
	as := g.AddAS(64999, "Ladder", "XX")
	for layer := 0; layer < d; layer++ {
		for col := 0; col < w; col++ {
			g.AddRouter(fmt.Sprintf("r%d_%d", layer, col), as)
		}
	}
	for layer := 0; layer+1 < d; layer++ {
		for a := 0; a < w; a++ {
			for b := 0; b < w; b++ {
				g.Link(fmt.Sprintf("r%d_%d", layer, a), fmt.Sprintf("r%d_%d", layer+1, b))
			}
		}
	}
	g.AddHost("src", as, g.Router("r0_0"))
	g.AddHost("dst", as, g.Router(fmt.Sprintf("r%d_0", d-1)))
	return g
}

// BenchmarkEpochRecompute measures the route-dynamics hot path: rebuilding
// every epoch snapshot (graph clone + link-state replay + BFS route
// tables) and resolving one flow path per epoch.
func BenchmarkEpochRecompute(b *testing.B) {
	g := benchLadder(4, 8)
	eng := routedyn.NewEngine(7, g)
	for i := 0; i < 4; i++ {
		from := fmt.Sprintf("r%d_%d", i+1, i%4)
		to := fmt.Sprintf("r%d_%d", i+2, (i+1)%4)
		if err := eng.FlapLink(from, to, time.Duration(10+i)*time.Second, time.Minute, 2); err != nil {
			b.Fatal(err)
		}
	}
	hash := topology.FlowHash(g.Host("src").Addr, g.Host("dst").Addr, 40000, 80, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone drops every cached snapshot, so each iteration recomputes
		// the full epoch history from the schedule.
		e := eng.Clone(g)
		for k := 0; k < e.Epochs(); k++ {
			ep := e.Epoch(k)
			eg := ep.Graph()
			if p := eg.PathForFlowSalted(eg.Host("src"), eg.Host("dst"), hash, ep.SaltFunc()); len(p) == 0 {
				b.Fatalf("epoch %d: no path", k)
			}
		}
	}
	b.ReportMetric(float64(eng.Epochs()), "epochs")
}

// BenchmarkTomographySolve measures the boolean-tomography solver on a
// synthetic campaign: 48 vantages × 16 epochs over the ladder, ~10-link
// paths, one censored link planted.
func BenchmarkTomographySolve(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	censored := tomography.MakeLink("r3_1", "r4_2")
	var observations []tomography.Observation
	for v := 0; v < 48; v++ {
		for e := 0; e < 16; e++ {
			// Random layer-by-layer walk through the ladder.
			links := []tomography.Link{tomography.MakeLink("@v"+fmt.Sprint(v), "r0_0")}
			prev := "r0_0"
			blocked := false
			for layer := 1; layer < 8; layer++ {
				next := fmt.Sprintf("r%d_%d", layer, rng.Intn(4))
				l := tomography.MakeLink(prev, next)
				links = append(links, l)
				if l == censored {
					blocked = true
				}
				prev = next
			}
			observations = append(observations, tomography.Observation{
				Vantage: fmt.Sprintf("v%d", v), Endpoint: "dst",
				Epoch: e, Blocked: blocked, Links: links,
			})
		}
	}
	var res tomography.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = tomography.Solve(observations)
	}
	b.StopTimer()
	if res.Verdict == tomography.Unlocalizable || !res.Contains(censored) {
		b.Fatalf("solver lost the planted link: %s", tomography.Render(res))
	}
	b.ReportMetric(float64(len(observations)), "obs")
	b.ReportMetric(float64(len(res.Candidates)), "candidates")
}
