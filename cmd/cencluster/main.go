// Command cencluster runs the full §7 clustering pipeline: measurement
// study → feature extraction → random-forest feature importance → DBSCAN
// clustering → vendor correlation analysis.
//
// Usage:
//
//	cencluster
//	cencluster -topk 12 -minpts 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cendev/internal/experiments"
	"cendev/internal/obs"
)

func main() {
	topk := flag.Int("topk", 10, "top-importance features used for clustering")
	minpts := flag.Int("minpts", 2, "DBSCAN minimum cluster size")
	eps := flag.Float64("eps", 0, "DBSCAN epsilon override (0 = k-distance estimate)")
	reps := flag.Int("reps", 3, "CenTrace repetitions")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for the measurement study and feature extraction")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	obsFlags.FlushOnSignal()

	fmt.Fprintln(os.Stderr, "running measurement study (traces + banners + fuzzing)...")
	c := experiments.BuildCorpus(experiments.CorpusConfig{
		Repetitions: *reps,
		Workers:     *workers,
		Obs:         obsFlags.Registry(),
		Tracer:      obsFlags.Tracer(),
	})
	fmt.Fprintf(os.Stderr, "observations: %d fuzzed blocked endpoints\n\n", len(c.Observations()))

	fmt.Println(experiments.RenderFig9(c))
	res := experiments.Fig6(c, experiments.Fig6Config{
		TopK: *topk, MinPts: *minpts, EpsilonOverride: *eps, Workers: *workers,
	})
	fmt.Println(experiments.RenderFig6(res))
	fmt.Println(experiments.RenderCorrelations(experiments.VendorCorrelations(c)))
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
