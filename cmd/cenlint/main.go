// Command cenlint machine-checks the repo's determinism and persistence
// invariants: no wall-clock reads or global randomness in deterministic
// packages (including through cross-package call chains), no unsorted
// map iteration feeding canonical output, no pooled-buffer aliases
// escaping their release point, lock discipline in the shared-state
// packages, no unstoppable goroutines, fsync before rename in the
// journal/store packages, and %w error wrapping.
//
// Usage:
//
//	go run ./cmd/cenlint ./...      # lint the whole repo (CI gate)
//	go run ./cmd/cenlint -list      # describe the analyzers
//
// Exit status is 0 when clean, 1 when any diagnostic is reported, and 2
// on load/type-check failure. Suppress an intentional finding with a
// trailing or preceding `//cenlint:volatile <justification>` comment;
// the justification is mandatory, and a directive that suppresses
// nothing is itself reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cendev/internal/lint"
	"cendev/internal/lint/driver"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	cacheDir := flag.String("cache", "", "summary-cache directory (empty disables caching)")
	workers := flag.Int("workers", 0, "concurrent package analyses (0 = GOMAXPROCS)")
	timing := flag.String("timing", "", "write run timing stats as JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cenlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, stats, err := driver.Analyze(driver.Options{
		Patterns:  patterns,
		Analyzers: analyzers,
		CacheDir:  *cacheDir,
		Workers:   *workers,
		Audit:     true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *timing != "" {
		if b, jerr := json.MarshalIndent(stats, "", "  "); jerr == nil {
			os.WriteFile(*timing, append(b, '\n'), 0o644)
		}
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cenlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
