// Command experiments regenerates every table and figure of the paper
// against the simulated four-country world.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table1
//	experiments -exp fig5 -reps 5
//	experiments -exp fig10 -format dot > az.dot
//
// Experiments: table1, table2, table3, fig1, fig3, fig4, fig5, fig6, fig9,
// fig10, fig11, fig12, stats4, stats5, stats6, stats7, methods, calib,
// direction, throttle, dns, devices, crossval, report, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"cendev/internal/experiments"
	"cendev/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..3|fig1|fig3..6|fig9..12|stats4..7|methods|calib|direction|throttle|dns|devices|crossval|report|all)")
	reps := flag.Int("reps", 5, "CenTrace repetitions per traceroute")
	maxFuzz := flag.Int("maxfuzz", 12, "max fuzzed devices per country")
	format := flag.String("format", "ascii", "path-graph format for fig1/fig10-12 (ascii|dot)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel measurement workers")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	obsFlags.FlushOnSignal()

	needsFuzz := map[string]bool{
		"fig5": true, "fig6": true, "fig9": true, "report": true,
		"stats6": true, "stats7": true, "methods": true, "all": true,
	}
	cfg := experiments.CorpusConfig{
		Repetitions:                *reps,
		MaxFuzzEndpointsPerCountry: *maxFuzz,
		SkipFuzz:                   !needsFuzz[*exp],
		Workers:                    *workers,
		Obs:                        obsFlags.Registry(),
		Tracer:                     obsFlags.Tracer(),
	}
	if *exp == "table2" || *exp == "table3" {
		// Catalog-only experiments need no measurements.
		runCatalog(*exp)
		return
	}
	if *exp == "crossval" {
		// Cross-validation builds its own scenario worlds; no corpus needed.
		fmt.Println(experiments.RenderCrossValidation(experiments.CrossValidate(experiments.CrossValConfig{
			Workers:     *workers,
			Repetitions: *reps,
			Obs:         obsFlags.Registry(),
		})))
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintln(os.Stderr, "building world and running measurement study...")
	c := experiments.BuildCorpus(cfg)
	fmt.Fprintf(os.Stderr, "done: %d traces, %d device IPs, %d fuzzed endpoints\n\n",
		len(c.Traces), len(c.PotentialDeviceIPs), len(c.Fuzz))
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	run := func(id string) {
		switch id {
		case "table1":
			fmt.Println(experiments.RenderTable1(experiments.Table1(c)))
		case "table2", "table3":
			runCatalog(id)
		case "fig1", "fig10", "fig11", "fig12":
			g := map[string]func(*experiments.Corpus) *experiments.PathGraph{
				"fig1": experiments.Fig1, "fig10": experiments.Fig10,
				"fig11": experiments.Fig11, "fig12": experiments.Fig12,
			}[id](c)
			if *format == "dot" {
				fmt.Println(g.RenderDOT())
			} else {
				fmt.Println(g.RenderASCII())
			}
		case "fig3":
			fmt.Println(experiments.RenderFig3(experiments.Fig3(c)))
		case "fig4":
			fmt.Println(experiments.RenderFig4(experiments.Fig4(c)))
		case "fig5":
			fmt.Println(experiments.RenderFig5(experiments.Fig5(c)))
		case "fig6":
			fmt.Println(experiments.RenderFig6(experiments.Fig6(c, experiments.Fig6Config{})))
		case "fig9":
			fmt.Println(experiments.RenderFig9(c))
		case "stats4":
			printStats4(c)
		case "stats5":
			fmt.Println(experiments.RenderBannerStats(experiments.BannerStatistics(c)))
		case "stats6":
			printStats6(c)
		case "stats7":
			fmt.Println(experiments.RenderCorrelations(experiments.VendorCorrelations(c)))
			fmt.Println(experiments.RenderPredictions(experiments.ClassifyUnlabeled(c)))
		case "calib":
			fmt.Println(experiments.RenderCalibration(experiments.Calibrate(20, 200)))
		case "methods":
			fmt.Println(experiments.RenderMethodRates(c))
		case "direction":
			fmt.Println(experiments.RenderDirectionality(experiments.DirectionalityDemo()))
		case "throttle":
			fmt.Println(experiments.RenderThrottling(experiments.ThrottlingDemo()))
		case "dns":
			fmt.Println(experiments.RenderDNSReport(experiments.DNSExtension(c.Scenario)))
		case "report":
			experiments.WriteReport(os.Stdout, c)
		case "devices":
			fmt.Println(experiments.RenderDeviceInventory(experiments.DeviceInventory(c.Scenario)))
		case "crossval":
			fmt.Println(experiments.RenderCrossValidation(experiments.CrossValidate(experiments.CrossValConfig{
				Workers:     *workers,
				Repetitions: *reps,
				Obs:         obsFlags.Registry(),
			})))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, id := range []string{
			"table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5",
			"fig6", "fig9", "fig10", "fig11", "fig12",
			"stats4", "stats5", "stats6", "stats7", "methods", "calib",
			"direction", "throttle", "dns", "crossval",
		} {
			fmt.Printf("=== %s ===\n", id)
			run(id)
			fmt.Println()
		}
		return
	}
	run(*exp)
}

func runCatalog(id string) {
	switch id {
	case "table2":
		fmt.Println(experiments.RenderTable2())
	case "table3":
		fmt.Println(experiments.RenderTable3())
	}
}

func printStats4(c *experiments.Corpus) {
	q := experiments.QuoteStatistics(c)
	fmt.Printf("§4.3 quoted packets: %d quotes, %.1f%% RFC792-minimal, %.1f%% TOS-changed, %d IP-flags-changed\n",
		q.TotalQuotes,
		100*float64(q.RFC792Only)/float64(max(1, q.TotalQuotes)),
		100*float64(q.TOSChanged)/float64(max(1, q.TotalQuotes)),
		q.IPFlagsChanged)
	for _, country := range experiments.Countries {
		e := experiments.Extraterritorial(c, country)
		if e.BlockedAbroad == 0 {
			continue
		}
		var asns []string
		for asn, n := range e.ForeignASNs {
			asns = append(asns, fmt.Sprintf("AS%d×%d", asn, n))
		}
		sort.Strings(asns)
		fmt.Printf("§4.3 extraterritorial blocking: %s endpoints blocked abroad: %d of %d (%.1f%%) in %s\n",
			country, e.BlockedAbroad, e.BlockedEndpoints, 100*e.Share, strings.Join(asns, " "))
	}
}

func printStats6(c *experiments.Corpus) {
	totals := experiments.Fig5StrategyTotals(experiments.Fig5(c))
	var names []string
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("§6.3 per-strategy evasion rates (all countries)")
	for _, name := range names {
		t := totals[name]
		fmt.Printf("  %-24s %5.1f%% (%d/%d)\n", name, t.Rate(), t.Evaded, t.Valid)
	}
	fmt.Println("\n§6.3 in-country circumvention:")
	for _, r := range experiments.Circumvention(c) {
		fmt.Printf("  %s %-24s evaded=%d circumvented=%d (%s)\n",
			r.Country, r.Strategy, r.Evaded, r.Circumvented, r.Domain)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
