// Command cenprobe banner-grabs potential censorship-device IPs in the
// simulated world — the CLI analog of the paper's CenProbe tool. Without
// -addr it first runs a trace-only measurement study to discover potential
// device IPs (the §5.2 pipeline), then probes all of them.
//
// Usage:
//
//	cenprobe                 # discover device IPs via CenTrace, probe all
//	cenprobe -addr 10.9.0.1  # probe one address
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"runtime"

	"cendev/internal/cenprobe"
	"cendev/internal/experiments"
	"cendev/internal/obs"
)

func main() {
	addr := flag.String("addr", "", "probe a single address instead of running discovery")
	reps := flag.Int("reps", 3, "CenTrace repetitions during discovery")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for discovery and banner grabs")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	obsFlags.FlushOnSignal()
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	if *addr != "" {
		world := experiments.BuildWorld()
		world.Net.SetObs(obsFlags.Registry())
		a, err := netip.ParseAddr(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad address %q: %v\n", *addr, err)
			os.Exit(2)
		}
		for _, r := range cenprobe.ProbeAllOpt(world.Net, []netip.Addr{a}, cenprobe.Opts{Tracer: obsFlags.Tracer()}) {
			printResult(r)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "running CenTrace discovery for potential device IPs...")
	c := experiments.BuildCorpus(experiments.CorpusConfig{
		Repetitions: *reps, SkipFuzz: true, Workers: *workers,
		Obs: obsFlags.Registry(), Tracer: obsFlags.Tracer(),
	})
	fmt.Fprintf(os.Stderr, "found %d potential device IPs\n\n", len(c.PotentialDeviceIPs))
	for _, a := range c.PotentialDeviceIPs {
		printResult(c.Probes[a])
	}
	stats := experiments.BannerStatistics(c)
	fmt.Println(experiments.RenderBannerStats(stats))
}

func printResult(r *cenprobe.Result) {
	if r == nil {
		return
	}
	fmt.Printf("%s  open=%v", r.Addr, r.OpenPorts)
	if r.Vendor != "" {
		fmt.Printf("  vendor=%s (%s)", r.Vendor, r.FingerprintID)
	}
	fmt.Println()
	for _, b := range r.Banners {
		fmt.Printf("    %5d/%-6s %q\n", b.Port, b.Protocol, truncate(b.Banner, 60))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
