// Command centrace runs a single CenTrace measurement in the simulated
// world and prints the traceroute and blocking inference — the CLI analog
// of the paper's CenTrace tool.
//
// Usage:
//
//	centrace -client us -endpoint kz-ep-0-0 -domain www.pokerstars.com -proto https
//	centrace -list   # list clients and endpoints
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cendev/internal/centrace"
	"cendev/internal/experiments"
	"cendev/internal/topology"
)

func main() {
	clientID := flag.String("client", "us", "vantage point: us, AZ, KZ, or RU")
	endpointID := flag.String("endpoint", "", "endpoint host ID (see -list)")
	domain := flag.String("domain", experiments.GlobalBlocked, "test domain")
	control := flag.String("control", experiments.ControlDomain, "control domain")
	proto := flag.String("proto", "http", "probe protocol (http|https)")
	reps := flag.Int("reps", 5, "traceroute repetitions")
	list := flag.Bool("list", false, "list vantage points and endpoints, then exit")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	flag.Parse()

	world := experiments.BuildWorld()
	if *list {
		fmt.Println("vantage points: us (remote)")
		for country := range world.InCountryClients {
			fmt.Printf("  %s (in-country)\n", country)
		}
		fmt.Println("endpoints:")
		for _, e := range world.Endpoints {
			via := ""
			if e.ViaRussia {
				via = " (via RU transit)"
			}
			fmt.Printf("  %-16s %s AS%d%s\n", e.Host.ID, e.Country, e.ASN, via)
		}
		return
	}

	client := world.USClient
	if *clientID != "us" {
		client = world.InCountryClients[*clientID]
		if client == nil {
			fmt.Fprintf(os.Stderr, "no in-country client %q (have AZ, KZ, RU)\n", *clientID)
			os.Exit(2)
		}
	}
	var endpoint *topology.Host
	for _, e := range world.Endpoints {
		if e.Host.ID == *endpointID {
			endpoint = e.Host
		}
	}
	if endpoint == nil {
		if h := world.Origins[*domain]; *endpointID == "" && h != nil {
			endpoint = h // default: the domain's origin server
		} else {
			fmt.Fprintf(os.Stderr, "unknown endpoint %q (use -list)\n", *endpointID)
			os.Exit(2)
		}
	}

	p := centrace.HTTP
	if *proto == "https" {
		p = centrace.HTTPS
	}
	res := centrace.New(world.Net, client, endpoint, centrace.Config{
		ControlDomain: *control,
		TestDomain:    *domain,
		Protocol:      p,
		Repetitions:   *reps,
	}).Run()

	if *jsonOut {
		emitJSON(world, client, endpoint, res)
		return
	}

	fmt.Printf("CenTrace %s → %s (%s, test=%s)\n", client.ID, endpoint.ID, p, *domain)
	fmt.Printf("control path (%d hops to endpoint):\n", res.EndpointTTL)
	for ttl := 1; ttl <= res.EndpointTTL; ttl++ {
		if addr, ok := res.Control.MostLikelyHop(ttl); ok {
			info, _ := world.Net.Geo.Lookup(addr)
			fmt.Printf("  %2d  %-12s AS%-6d %s (%s)\n", ttl, addr, info.ASN, info.Name, info.Country)
		} else if ttl == res.EndpointTTL {
			fmt.Printf("  %2d  %-12s endpoint\n", ttl, endpoint.Addr)
		} else {
			fmt.Printf("  %2d  *\n", ttl)
		}
	}
	if !res.Blocked {
		fmt.Println("verdict: NOT BLOCKED")
		return
	}
	fmt.Printf("verdict: BLOCKED (%s)\n", res.TermKind)
	fmt.Printf("  terminating TTL: %d   location: %s   placement: %s\n",
		res.TermTTL, res.Location, res.Placement)
	if res.TTLCopyCorrected {
		fmt.Printf("  TTL-copying injector detected; corrected device hop: %d\n", res.DeviceTTL)
	}
	fmt.Printf("  blocking hop: %s\n", res.BlockingHop)
	if res.BlockpageVendor != "" {
		fmt.Printf("  blockpage vendor: %s (%s)\n", res.BlockpageVendor, res.BlockpageID)
	}
	if res.Injected != nil {
		fmt.Printf("  injected packet: ttl=%d ipid=%#x window=%d flags=%s\n",
			res.Injected.TTL, res.Injected.IPID, res.Injected.TCPWindow, res.Injected.TCPFlags)
	}
	if res.QuoteDelta != nil && res.QuoteDelta.Any() {
		fmt.Printf("  quote delta at blocking hop: %s\n", res.QuoteDelta)
	}
}

// jsonResult is the machine-readable measurement record, modeled on the
// JSON the real CenTrace tool emits.
type jsonResult struct {
	Client       string    `json:"client"`
	Endpoint     string    `json:"endpoint"`
	Protocol     string    `json:"protocol"`
	TestDomain   string    `json:"test_domain"`
	Valid        bool      `json:"valid"`
	Blocked      bool      `json:"blocked"`
	TermKind     string    `json:"terminating_response"`
	TermTTL      int       `json:"terminating_ttl"`
	EndpointTTL  int       `json:"endpoint_ttl"`
	Location     string    `json:"location"`
	Placement    string    `json:"placement"`
	DeviceTTL    int       `json:"device_ttl"`
	TTLCorrected bool      `json:"ttl_copy_corrected"`
	BlockingHop  *jsonHop  `json:"blocking_hop,omitempty"`
	Blockpage    string    `json:"blockpage_vendor,omitempty"`
	ControlPath  []jsonHop `json:"control_path"`
}

type jsonHop struct {
	TTL     int    `json:"ttl"`
	Addr    string `json:"addr,omitempty"`
	ASN     uint32 `json:"asn,omitempty"`
	Org     string `json:"org,omitempty"`
	Country string `json:"country,omitempty"`
}

func emitJSON(world *experiments.Scenario, client, ep *topology.Host, res *centrace.Result) {
	out := jsonResult{
		Client:       client.ID,
		Endpoint:     ep.ID,
		Protocol:     res.Config.Protocol.String(),
		TestDomain:   res.Config.TestDomain,
		Valid:        res.Valid,
		Blocked:      res.Blocked,
		TermKind:     res.TermKind.String(),
		TermTTL:      res.TermTTL,
		EndpointTTL:  res.EndpointTTL,
		Location:     res.Location.String(),
		Placement:    res.Placement.String(),
		DeviceTTL:    res.DeviceTTL,
		TTLCorrected: res.TTLCopyCorrected,
		Blockpage:    res.BlockpageVendor,
	}
	if res.Blocked && res.BlockingHop.Addr.IsValid() {
		out.BlockingHop = &jsonHop{
			TTL: res.BlockingHop.TTL, Addr: res.BlockingHop.Addr.String(),
			ASN: res.BlockingHop.ASN, Org: res.BlockingHop.Org, Country: res.BlockingHop.Country,
		}
	}
	for ttl := 1; ttl <= res.EndpointTTL; ttl++ {
		h := jsonHop{TTL: ttl}
		if addr, ok := res.Control.MostLikelyHop(ttl); ok {
			info, _ := world.Net.Geo.Lookup(addr)
			h.Addr = addr.String()
			h.ASN = info.ASN
			h.Org = info.Name
			h.Country = info.Country
		}
		out.ControlPath = append(out.ControlPath, h)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
