// Command centrace runs a single CenTrace measurement in the simulated
// world and prints the traceroute and blocking inference — the CLI analog
// of the paper's CenTrace tool.
//
// Usage:
//
//	centrace -client us -endpoint kz-ep-0-0 -domain www.pokerstars.com -proto https
//	centrace -all -workers 4   # campaign over every endpoint × domain × protocol
//	centrace -list             # list clients and endpoints
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cendev/internal/centrace"
	"cendev/internal/experiments"
	"cendev/internal/faults"
	"cendev/internal/obs"
	"cendev/internal/topology"
)

func main() {
	clientID := flag.String("client", "us", "vantage point: us, AZ, KZ, or RU")
	endpointID := flag.String("endpoint", "", "endpoint host ID (see -list)")
	domain := flag.String("domain", experiments.GlobalBlocked, "test domain")
	control := flag.String("control", experiments.ControlDomain, "control domain")
	proto := flag.String("proto", "http", "probe protocol (http|https)")
	reps := flag.Int("reps", 5, "traceroute repetitions")
	list := flag.Bool("list", false, "list vantage points and endpoints, then exit")
	all := flag.Bool("all", false, "run a campaign over every endpoint × domain × protocol")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel measurement workers for -all")
	retries := flag.Int("retries", 1, "extra retry passes for failed targets in -all")
	journalPath := flag.String("journal", "", "campaign journal file for -all: checkpoint every target, resume on restart")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	// Impairment profiles (see internal/faults); any of these installs a
	// deterministic fault engine in front of the measurement.
	faultSeed := flag.Int64("fault-seed", 1, "seed for the impairment engine")
	loss := flag.Float64("loss", 0, "global uniform packet-loss rate [0,1]")
	burstLoss := flag.String("burst-loss", "", "Gilbert–Elliott bursty loss as pGoodToBad,pBadToGood,lossBad")
	dup := flag.Float64("dup", 0, "response duplication rate [0,1]")
	blackhole := flag.String("blackhole", "", "dead link window as from:to:startSec:endSec (router IDs)")
	icmpSilent := flag.String("icmp-silent", "", "comma-separated router IDs that never send ICMP")
	icmpLimit := flag.String("icmp-limit", "", "ICMP token bucket as router:burst:perSecond")
	flap := flag.String("flap", "", "route flap as router:periodSec")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	world := experiments.BuildWorld()
	world.Net.SetObs(obsFlags.Registry())
	if eng := buildEngine(*faultSeed, *loss, *burstLoss, *dup, *blackhole, *icmpSilent, *icmpLimit, *flap); eng != nil {
		world.Net.SetFaults(eng)
	}
	if *list {
		fmt.Println("vantage points: us (remote)")
		for country := range world.InCountryClients {
			fmt.Printf("  %s (in-country)\n", country)
		}
		fmt.Println("endpoints:")
		for _, e := range world.Endpoints {
			via := ""
			if e.ViaRussia {
				via = " (via RU transit)"
			}
			fmt.Printf("  %-16s %s AS%d%s\n", e.Host.ID, e.Country, e.ASN, via)
		}
		return
	}

	client := world.USClient
	if *clientID != "us" {
		client = world.InCountryClients[*clientID]
		if client == nil {
			fmt.Fprintf(os.Stderr, "no in-country client %q (have AZ, KZ, RU)\n", *clientID)
			os.Exit(2)
		}
	}

	if *all {
		runCampaign(world, client, *control, *reps, *workers, *retries, *journalPath, obsFlags)
		finishObs(obsFlags)
		return
	}
	obsFlags.FlushOnSignal()

	var endpoint *topology.Host
	for _, e := range world.Endpoints {
		if e.Host.ID == *endpointID {
			endpoint = e.Host
		}
	}
	if endpoint == nil {
		if h := world.Origins[*domain]; *endpointID == "" && h != nil {
			endpoint = h // default: the domain's origin server
		} else {
			fmt.Fprintf(os.Stderr, "unknown endpoint %q (use -list)\n", *endpointID)
			os.Exit(2)
		}
	}

	p := centrace.HTTP
	if *proto == "https" {
		p = centrace.HTTPS
	}
	res := centrace.New(world.Net, client, endpoint, centrace.Config{
		ControlDomain: *control,
		TestDomain:    *domain,
		Protocol:      p,
		Repetitions:   *reps,
		Obs:           obsFlags.Registry(),
		Tracer:        obsFlags.Tracer(),
	}).Run()
	defer finishObs(obsFlags)

	if *jsonOut {
		emitJSON(world, client, endpoint, res)
		return
	}

	fmt.Printf("CenTrace %s → %s (%s, test=%s)\n", client.ID, endpoint.ID, p, *domain)
	fmt.Printf("control path (%d hops to endpoint):\n", res.EndpointTTL)
	for ttl := 1; ttl <= res.EndpointTTL; ttl++ {
		if addr, ok := res.Control.MostLikelyHop(ttl); ok {
			info, _ := world.Net.Geo.Lookup(addr)
			fmt.Printf("  %2d  %-12s AS%-6d %s (%s)\n", ttl, addr, info.ASN, info.Name, info.Country)
		} else if ttl == res.EndpointTTL {
			fmt.Printf("  %2d  %-12s endpoint\n", ttl, endpoint.Addr)
		} else {
			fmt.Printf("  %2d  *\n", ttl)
		}
	}
	if !res.Blocked {
		fmt.Println("verdict: NOT BLOCKED")
		fmt.Printf("  confidence: %.2f\n", res.Confidence.Score)
		return
	}
	if res.Degraded {
		fmt.Printf("verdict: BLOCKED (%s) — DEGRADED: hop not localizable\n", res.TermKind)
	} else {
		fmt.Printf("verdict: BLOCKED (%s)\n", res.TermKind)
	}
	fmt.Printf("  confidence: %.2f (term agreement %.2f, hop support %.2f, retry rate %.2f, dial failures %.2f)\n",
		res.Confidence.Score, res.Confidence.TermAgreement, res.Confidence.HopSupport,
		res.Confidence.RetryRate, res.Confidence.DialFailRate)
	fmt.Printf("  terminating TTL: %d   location: %s   placement: %s\n",
		res.TermTTL, res.Location, res.Placement)
	if res.TTLCopyCorrected {
		fmt.Printf("  TTL-copying injector detected; corrected device hop: %d\n", res.DeviceTTL)
	}
	fmt.Printf("  blocking hop: %s\n", res.BlockingHop)
	if res.BlockpageVendor != "" {
		fmt.Printf("  blockpage vendor: %s (%s)\n", res.BlockpageVendor, res.BlockpageID)
	}
	if res.Injected != nil {
		fmt.Printf("  injected packet: ttl=%d ipid=%#x window=%d flags=%s\n",
			res.Injected.TTL, res.Injected.IPID, res.Injected.TCPWindow, res.Injected.TCPFlags)
	}
	if res.QuoteDelta != nil && res.QuoteDelta.Any() {
		fmt.Printf("  quote delta at blocking hop: %s\n", res.QuoteDelta)
	}
}

// runCampaign measures every endpoint × test domain × protocol from the
// chosen vantage point across the worker pool and prints a per-country
// summary — the §4.2 collection pattern at CLI scale.
// finishObs writes the requested observability artifacts, dying loudly on
// I/O failure so a broken -metrics-out path is not silently ignored.
func finishObs(f *obs.CLIFlags) {
	if err := f.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runCampaign(world *experiments.Scenario, client *topology.Host, control string, reps, workers, retries int, journalPath string, obsFlags *obs.CLIFlags) {
	var journal *centrace.Journal
	if journalPath != "" {
		j, f, err := centrace.OpenJournalFile(journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		journal = j
		for _, w := range journal.Warnings() {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		if n := journal.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming campaign: %d targets restored from %s\n", n, journalPath)
		}
		// An interrupt must leave the journal durable so the next run
		// resumes instead of remeasuring.
		obsFlags.FlushOnSignal(f.Sync)
	} else {
		obsFlags.FlushOnSignal()
	}

	var targets []centrace.Target
	for _, e := range world.Endpoints {
		for _, domain := range experiments.TestDomainsFor(e.Country) {
			for _, proto := range []centrace.Protocol{centrace.HTTP, centrace.HTTPS} {
				targets = append(targets, centrace.Target{
					Endpoint: e.Host, Domain: domain, Protocol: proto, Label: e.Country,
				})
			}
		}
	}
	camp := &centrace.Campaign{
		Net:    world.Net,
		Client: client,
		Base: centrace.Config{
			ControlDomain: control,
			Repetitions:   reps,
			Obs:           obsFlags.Registry(),
			Tracer:        obsFlags.Tracer(),
		},
		Workers:           workers,
		RetryFailedPasses: retries,
		Journal:           journal,
	}
	results := camp.Run(targets)

	blockedByCountry := map[string]int{}
	totalByCountry := map[string]int{}
	failed := 0
	for _, r := range results {
		totalByCountry[r.Target.Label]++
		switch {
		case r.Failed():
			failed++
		case r.Result.Blocked:
			blockedByCountry[r.Target.Label]++
		}
	}
	fmt.Printf("campaign: %d targets, %d workers\n", len(targets), workers)
	for _, country := range experiments.Countries {
		if totalByCountry[country] == 0 {
			continue
		}
		fmt.Printf("  %s: %d/%d blocked\n", country, blockedByCountry[country], totalByCountry[country])
	}
	if failed > 0 {
		fmt.Printf("  failed targets: %d\n", failed)
	}
}

// buildEngine assembles the impairment engine from the fault flags, or
// returns nil when none were given.
func buildEngine(seed int64, loss float64, burstLoss string, dup float64, blackhole, icmpSilent, icmpLimit, flap string) *faults.Engine {
	eng := faults.NewEngine(seed)
	active := false
	die := func(flagName, spec, format string) {
		fmt.Fprintf(os.Stderr, "bad -%s %q: want %s\n", flagName, spec, format)
		os.Exit(2)
	}
	nums := func(flagName, spec, format string, want int) []float64 {
		parts := strings.Split(spec, ",")
		if len(parts) != want {
			die(flagName, spec, format)
		}
		out := make([]float64, want)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				die(flagName, spec, format)
			}
			out[i] = v
		}
		return out
	}
	if loss > 0 {
		eng.AddGlobal(faults.UniformLoss(loss))
		active = true
	}
	if burstLoss != "" {
		v := nums("burst-loss", burstLoss, "pGoodToBad,pBadToGood,lossBad", 3)
		eng.AddGlobal(faults.GilbertElliott(v[0], v[1], 0, v[2]))
		active = true
	}
	if dup > 0 {
		eng.AddGlobal(faults.Duplication(dup))
		active = true
	}
	if blackhole != "" {
		parts := strings.Split(blackhole, ":")
		if len(parts) != 4 {
			die("blackhole", blackhole, "from:to:startSec:endSec")
		}
		start, err1 := strconv.ParseFloat(parts[2], 64)
		end, err2 := strconv.ParseFloat(parts[3], 64)
		if err1 != nil || err2 != nil {
			die("blackhole", blackhole, "from:to:startSec:endSec")
		}
		eng.AddLink(parts[0], parts[1], faults.Blackhole(
			time.Duration(start*float64(time.Second)), time.Duration(end*float64(time.Second))))
		active = true
	}
	if icmpSilent != "" {
		for _, id := range strings.Split(icmpSilent, ",") {
			eng.SilenceICMP(strings.TrimSpace(id))
		}
		active = true
	}
	if icmpLimit != "" {
		parts := strings.Split(icmpLimit, ":")
		if len(parts) != 3 {
			die("icmp-limit", icmpLimit, "router:burst:perSecond")
		}
		burst, err1 := strconv.Atoi(parts[1])
		perSec, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			die("icmp-limit", icmpLimit, "router:burst:perSecond")
		}
		eng.LimitICMP(parts[0], burst, perSec)
		active = true
	}
	if flap != "" {
		parts := strings.Split(flap, ":")
		if len(parts) != 2 {
			die("flap", flap, "router:periodSec")
		}
		period, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || period <= 0 {
			die("flap", flap, "router:periodSec")
		}
		eng.FlapRoutes(parts[0], time.Duration(period*float64(time.Second)))
		active = true
	}
	if !active {
		return nil
	}
	return eng
}

// jsonResult is the machine-readable measurement record, modeled on the
// JSON the real CenTrace tool emits.
type jsonResult struct {
	Client       string    `json:"client"`
	Endpoint     string    `json:"endpoint"`
	Protocol     string    `json:"protocol"`
	TestDomain   string    `json:"test_domain"`
	Valid        bool      `json:"valid"`
	Blocked      bool      `json:"blocked"`
	TermKind     string    `json:"terminating_response"`
	TermTTL      int       `json:"terminating_ttl"`
	EndpointTTL  int       `json:"endpoint_ttl"`
	Location     string    `json:"location"`
	Placement    string    `json:"placement"`
	DeviceTTL    int       `json:"device_ttl"`
	TTLCorrected bool      `json:"ttl_copy_corrected"`
	Degraded     bool      `json:"degraded"`
	Confidence   float64   `json:"confidence"`
	BlockingHop  *jsonHop  `json:"blocking_hop,omitempty"`
	Blockpage    string    `json:"blockpage_vendor,omitempty"`
	ControlPath  []jsonHop `json:"control_path"`
}

type jsonHop struct {
	TTL     int    `json:"ttl"`
	Addr    string `json:"addr,omitempty"`
	ASN     uint32 `json:"asn,omitempty"`
	Org     string `json:"org,omitempty"`
	Country string `json:"country,omitempty"`
}

func emitJSON(world *experiments.Scenario, client, ep *topology.Host, res *centrace.Result) {
	out := jsonResult{
		Client:       client.ID,
		Endpoint:     ep.ID,
		Protocol:     res.Config.Protocol.String(),
		TestDomain:   res.Config.TestDomain,
		Valid:        res.Valid,
		Blocked:      res.Blocked,
		TermKind:     res.TermKind.String(),
		TermTTL:      res.TermTTL,
		EndpointTTL:  res.EndpointTTL,
		Location:     res.Location.String(),
		Placement:    res.Placement.String(),
		DeviceTTL:    res.DeviceTTL,
		TTLCorrected: res.TTLCopyCorrected,
		Degraded:     res.Degraded,
		Confidence:   res.Confidence.Score,
		Blockpage:    res.BlockpageVendor,
	}
	if res.Blocked && res.BlockingHop.Addr.IsValid() {
		out.BlockingHop = &jsonHop{
			TTL: res.BlockingHop.TTL, Addr: res.BlockingHop.Addr.String(),
			ASN: res.BlockingHop.ASN, Org: res.BlockingHop.Org, Country: res.BlockingHop.Country,
		}
	}
	for ttl := 1; ttl <= res.EndpointTTL; ttl++ {
		h := jsonHop{TTL: ttl}
		if addr, ok := res.Control.MostLikelyHop(ttl); ok {
			info, _ := world.Net.Geo.Lookup(addr)
			h.Addr = addr.String()
			h.ASN = info.ASN
			h.Org = info.Name
			h.Country = info.Country
		}
		out.ControlPath = append(out.ControlPath, h)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
