// Command censerved runs the measurement-orchestration service: an HTTP
// JSON API (submit / status / result / healthz / metrics) over a
// priority job queue with per-tenant admission control, scheduler
// workers dispatching onto clone-isolated simulated networks, and a
// sharded crash-safe result store.
//
// Usage:
//
//	censerved -listen 127.0.0.1:8377 -store /var/lib/censerved
//
// Submit a job, poll it, fetch the result:
//
//	curl -s -X POST localhost:8377/v1/jobs \
//	    -d '{"kind":"centrace","domain":"www.blocked.example","seed":7}'
//	curl -s localhost:8377/v1/jobs/j-00000001
//	curl -s localhost:8377/v1/results/j-00000001
//
// Multi-node operation (-role): a coordinator owns the public API and
// places every job on R worker nodes by consistent hashing; workers
// pull leases, execute locally, and store the result payloads:
//
//	censerved -role worker -node-id w1 -listen 127.0.0.1:8471 \
//	    -store w1-store -peers http://127.0.0.1:8377
//	censerved -role coordinator -listen 127.0.0.1:8377 -store coord-store \
//	    -replication 2 -peers w1=http://127.0.0.1:8471,w2=http://127.0.0.1:8472
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions get 503,
// in-flight jobs finish, queued jobs stay persisted for the next start,
// and the store is compacted and closed before exit 0. A draining
// coordinator additionally runs a final anti-entropy sweep; a draining
// worker stops pulling and finishes its leased jobs first.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cendev/internal/cluster"
	"cendev/internal/obs"
	"cendev/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8377", "host:port to serve the API on")
	storeDir := flag.String("store", "censerved-store", "result-store directory")
	shards := flag.Int("shards", serve.DefaultShards, "result-store segment shards")
	workers := flag.Int("workers", 2, "concurrent scheduler workers")
	queueCap := flag.Int("queue", 64, "job-queue capacity (beyond it submissions get 429)")
	burst := flag.Int("admit-burst", 8, "per-tenant admission token-bucket burst")
	rate := flag.Float64("admit-rate", 1, "per-tenant admission refill rate (tokens/second)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job watchdog timeout (hung jobs are abandoned and retried)")
	retryBudget := flag.Int("retry-budget", 2, "retries per transiently failing job before dead-lettering (negative: none)")
	degradeAfter := flag.Int("degrade-after", 3, "consecutive store write failures before degraded read-only mode (negative: never)")
	role := flag.String("role", "standalone", "process role: standalone, coordinator, or worker")
	nodeID := flag.String("node-id", "", "this node's cluster name (worker role; must match the coordinator's peer table)")
	peers := flag.String("peers", "",
		"coordinator role: comma-separated name=url worker peers; worker role: the coordinator's base URL")
	replication := flag.Int("replication", 2, "replicas per job across worker nodes (coordinator role)")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	exportStore := flag.Bool("export-store", false,
		"dump the result store as JSON lines on stdout and exit (the debug view of the binary segments)")
	flag.Parse()

	if *exportStore {
		st, err := serve.OpenStore(*storeDir, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, w := range st.Warnings() {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		if err := st.ExportJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			st.Close()
			os.Exit(1)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	// The daemon always carries a registry: /metrics is part of the API.
	reg := obs.NewRegistry()

	sopts := serve.Options{
		StoreDir:      *storeDir,
		Shards:        *shards,
		Workers:       *workers,
		QueueCapacity: *queueCap,
		AdmitBurst:    *burst,
		AdmitRate:     *rate,
		JobTimeout:    *jobTimeout,
		RetryBudget:   *retryBudget,
		DegradeAfter:  *degradeAfter,
		Obs:           reg,
		Logf:          logf,
	}

	var handler http.Handler
	var drain func() error
	var desc string

	switch *role {
	case "standalone":
		srv, err := serve.New(sopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		handler, drain = srv.Handler(), srv.Drain
		desc = fmt.Sprintf("standalone (store %s, %d workers, queue %d)", *storeDir, *workers, *queueCap)

	case "coordinator":
		peerMap, err := parsePeers(*peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv, _, h, err := cluster.NewCoordinatorNode(sopts, cluster.CoordinatorOptions{
			Peers:       peerMap,
			Replication: *replication,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		handler, drain = h, srv.Drain
		desc = fmt.Sprintf("coordinator (store %s, %d peers, replication %d)", *storeDir, len(peerMap), *replication)

	case "worker":
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "censerved: -role worker requires -node-id")
			os.Exit(1)
		}
		if *peers == "" || strings.Contains(*peers, "=") || strings.Contains(*peers, ",") {
			fmt.Fprintln(os.Stderr, "censerved: -role worker requires -peers to be the coordinator's base URL")
			os.Exit(1)
		}
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			NodeID:         *nodeID,
			CoordinatorURL: strings.TrimRight(*peers, "/"),
			StoreDir:       *storeDir,
			Shards:         *shards,
			Obs:            reg,
			Logf:           logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/", w.Handler())
		mux.Handle("GET /metrics", obs.Handler(reg))
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			rw.WriteHeader(http.StatusOK)
			fmt.Fprintln(rw, "ok")
		})
		w.Start()
		handler, drain = mux, w.Drain
		desc = fmt.Sprintf("worker %s (store %s, coordinator %s)", *nodeID, *storeDir, *peers)

	default:
		fmt.Fprintf(os.Stderr, "censerved: unknown -role %q (valid: standalone, coordinator, worker)\n", *role)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("censerved listening on %s, %s", ln.Addr(), desc)

	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining", sig)
		// Drain before closing the listener so in-flight status polls keep
		// answering (submissions already get 503 the moment drain starts).
		if err := drain(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			httpSrv.Close()
			os.Exit(1)
		}
		httpSrv.Close()
		log.Printf("drain complete; exiting")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// parsePeers turns "w1=http://host:port,w2=..." into the coordinator's
// peer table.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, errors.New("censerved: -role coordinator requires -peers name=url[,name=url...]")
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("censerved: malformed -peers entry %q (want name=url)", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("censerved: duplicate peer name %q in -peers", name)
		}
		peers[name] = strings.TrimRight(url, "/")
	}
	return peers, nil
}
