// Command censerved runs the measurement-orchestration service: an HTTP
// JSON API (submit / status / result / healthz / metrics) over a
// priority job queue with per-tenant admission control, scheduler
// workers dispatching onto clone-isolated simulated networks, and a
// sharded crash-safe result store.
//
// Usage:
//
//	censerved -listen 127.0.0.1:8377 -store /var/lib/censerved
//
// Submit a job, poll it, fetch the result:
//
//	curl -s -X POST localhost:8377/v1/jobs \
//	    -d '{"kind":"centrace","domain":"www.blocked.example","seed":7}'
//	curl -s localhost:8377/v1/jobs/j-00000001
//	curl -s localhost:8377/v1/results/j-00000001
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions get 503,
// in-flight jobs finish, queued jobs stay persisted for the next start,
// and the store is compacted and closed before exit 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cendev/internal/obs"
	"cendev/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8377", "host:port to serve the API on")
	storeDir := flag.String("store", "censerved-store", "result-store directory")
	shards := flag.Int("shards", serve.DefaultShards, "result-store segment shards")
	workers := flag.Int("workers", 2, "concurrent scheduler workers")
	queueCap := flag.Int("queue", 64, "job-queue capacity (beyond it submissions get 429)")
	burst := flag.Int("admit-burst", 8, "per-tenant admission token-bucket burst")
	rate := flag.Float64("admit-rate", 1, "per-tenant admission refill rate (tokens/second)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job watchdog timeout (hung jobs are abandoned and retried)")
	retryBudget := flag.Int("retry-budget", 2, "retries per transiently failing job before dead-lettering (negative: none)")
	degradeAfter := flag.Int("degrade-after", 3, "consecutive store write failures before degraded read-only mode (negative: never)")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	exportStore := flag.Bool("export-store", false,
		"dump the result store as JSON lines on stdout and exit (the debug view of the binary segments)")
	flag.Parse()

	if *exportStore {
		st, err := serve.OpenStore(*storeDir, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, w := range st.Warnings() {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		if err := st.ExportJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			st.Close()
			os.Exit(1)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	// The daemon always carries a registry: /metrics is part of the API.
	reg := obs.NewRegistry()

	srv, err := serve.New(serve.Options{
		StoreDir:      *storeDir,
		Shards:        *shards,
		Workers:       *workers,
		QueueCapacity: *queueCap,
		AdmitBurst:    *burst,
		AdmitRate:     *rate,
		JobTimeout:    *jobTimeout,
		RetryBudget:   *retryBudget,
		DegradeAfter:  *degradeAfter,
		Obs:           reg,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("censerved listening on %s (store %s, %d workers, queue %d)",
		ln.Addr(), *storeDir, *workers, *queueCap)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining", sig)
		// Drain before closing the listener so in-flight status polls keep
		// answering (submissions already get 503 the moment drain starts).
		if err := srv.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			httpSrv.Close()
			os.Exit(1)
		}
		httpSrv.Close()
		log.Printf("drain complete; exiting")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
