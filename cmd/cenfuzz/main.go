// Command cenfuzz runs the deterministic fuzzer against one endpoint in
// the simulated world and prints per-strategy evasion and circumvention
// rates — the CLI analog of the paper's CenFuzz tool.
//
// Usage:
//
//	cenfuzz -client us -endpoint kz-ep-0-0 -domain www.pokerstars.com
//	cenfuzz -strategy "Get Word Alt." -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"cendev/internal/cenfuzz"
	"cendev/internal/experiments"
	"cendev/internal/obs"
	"cendev/internal/topology"
)

func main() {
	clientID := flag.String("client", "us", "vantage point: us, AZ, KZ, or RU")
	endpointID := flag.String("endpoint", "", "endpoint host ID (default: the domain's origin)")
	domain := flag.String("domain", experiments.GlobalBlocked, "test domain")
	control := flag.String("control", experiments.ControlDomain, "control domain")
	only := flag.String("strategy", "", "run only the named strategy")
	verbose := flag.Bool("v", false, "print each permutation verdict")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	extensions := flag.Bool("ext", false, "also run the extension strategies (segmentation, TLS record split)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel strategy workers")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	world := experiments.BuildWorld()
	world.Net.SetObs(obsFlags.Registry())
	client := world.USClient
	if *clientID != "us" {
		client = world.InCountryClients[*clientID]
		if client == nil {
			fmt.Fprintf(os.Stderr, "no in-country client %q\n", *clientID)
			os.Exit(2)
		}
	}
	var endpoint *topology.Host
	for _, e := range world.Endpoints {
		if e.Host.ID == *endpointID {
			endpoint = e.Host
		}
	}
	if endpoint == nil {
		endpoint = world.Origins[*domain]
		if endpoint == nil {
			fmt.Fprintf(os.Stderr, "unknown endpoint %q and no origin for %q\n", *endpointID, *domain)
			os.Exit(2)
		}
	}

	var strategies []cenfuzz.Strategy
	if *only != "" {
		for _, st := range cenfuzz.Strategies() {
			if st.Name == *only {
				strategies = append(strategies, st)
			}
		}
		if len(strategies) == 0 {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *only)
			os.Exit(2)
		}
	}

	if *extensions {
		if strategies == nil {
			strategies = cenfuzz.Strategies()
		}
		strategies = append(strategies, cenfuzz.ExtensionStrategies()...)
	}

	obsFlags.FlushOnSignal()
	fz := cenfuzz.New(world.Net, client, endpoint, cenfuzz.Config{
		TestDomain:    *domain,
		ControlDomain: *control,
		Workers:       *workers,
		Obs:           obsFlags.Registry(),
		Tracer:        obsFlags.Tracer(),
	})
	res := fz.Run(strategies)
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	if *jsonOut {
		emitJSON(client.ID, endpoint.ID, res)
		return
	}

	fmt.Printf("CenFuzz %s → %s (test=%s control=%s)\n", client.ID, endpoint.ID, *domain, *control)
	fmt.Printf("normal request blocked: HTTP=%v HTTPS=%v (%d measurements)\n\n",
		res.NormalBlocked[cenfuzz.ProtoHTTP], res.NormalBlocked[cenfuzz.ProtoTLS], res.TotalMeasurements)
	fmt.Printf("%-24s %-11s %8s %8s %8s\n", "strategy", "category", "perms", "evade%", "circ%")
	for i := range res.Strategies {
		sr := &res.Strategies[i]
		fmt.Printf("%-24s %-11s %8d %7.1f%% %7.1f%%\n",
			sr.Name, sr.Category, len(sr.Perms), 100*sr.SuccessRate(), 100*sr.CircumventionRate())
		if *verbose {
			for _, p := range sr.Perms {
				mark := " "
				switch {
				case !p.Valid:
					mark = "?"
				case p.Circumvented:
					mark = "C"
				case p.Evaded:
					mark = "E"
				}
				fmt.Printf("    [%s] %-40s test=%s control=%s\n", mark, p.Desc, p.Test.Outcome, p.Control.Outcome)
			}
		}
	}
}

// jsonStrategy is the machine-readable per-strategy record.
type jsonStrategy struct {
	Strategy      string  `json:"strategy"`
	Category      string  `json:"category"`
	Protocol      string  `json:"protocol"`
	Permutations  int     `json:"permutations"`
	Evasion       float64 `json:"evasion_rate"`
	Circumvention float64 `json:"circumvention_rate"`
}

type jsonFuzz struct {
	Client        string          `json:"client"`
	Endpoint      string          `json:"endpoint"`
	TestDomain    string          `json:"test_domain"`
	ControlDomain string          `json:"control_domain"`
	NormalBlocked map[string]bool `json:"normal_blocked"`
	Measurements  int             `json:"measurements"`
	Strategies    []jsonStrategy  `json:"strategies"`
}

func emitJSON(client, endpoint string, res *cenfuzz.Result) {
	out := jsonFuzz{
		Client: client, Endpoint: endpoint,
		TestDomain: res.TestDomain, ControlDomain: res.ControlDomain,
		NormalBlocked: map[string]bool{},
		Measurements:  res.TotalMeasurements,
	}
	for proto, blocked := range res.NormalBlocked {
		out.NormalBlocked[proto.String()] = blocked
	}
	for i := range res.Strategies {
		sr := &res.Strategies[i]
		out.Strategies = append(out.Strategies, jsonStrategy{
			Strategy: sr.Name, Category: sr.Category, Protocol: sr.Proto.String(),
			Permutations:  len(sr.Perms),
			Evasion:       sr.SuccessRate(),
			Circumvention: sr.CircumventionRate(),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
