package features

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"cendev/internal/cenfuzz"
	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/netem"
)

// fakeTrace builds a minimal blocked CenTrace result.
func fakeTrace(kind centrace.ResponseKind, placement centrace.PlacementClass, vendor string) *centrace.Result {
	r := &centrace.Result{
		Blocked:         true,
		TermKind:        kind,
		Placement:       placement,
		Location:        centrace.LocPath,
		BlockpageVendor: vendor,
	}
	if kind == centrace.KindRST {
		r.Injected = &centrace.InjectedFeatures{
			TTL: 60, IPID: 0xbeef, TCPWindow: 1,
			TCPFlags: netem.TCPRst | netem.TCPAck,
		}
	}
	delta := netem.QuoteDelta{TOSChanged: true}
	r.QuoteDelta = &delta
	return r
}

// fakeFuzz builds a fuzz result where the named strategies fully evade.
func fakeFuzz(evading ...string) *cenfuzz.Result {
	res := &cenfuzz.Result{NormalBlocked: map[cenfuzz.Proto]bool{cenfuzz.ProtoHTTP: true}}
	evades := map[string]bool{}
	for _, name := range evading {
		evades[name] = true
	}
	for _, st := range cenfuzz.Strategies() {
		sr := cenfuzz.StrategyResult{Name: st.Name, Category: st.Category, Proto: st.Proto}
		for range st.Perms() {
			sr.Perms = append(sr.Perms, cenfuzz.PermResult{Valid: true, Evaded: evades[st.Name]})
		}
		res.Strategies = append(res.Strategies, sr)
	}
	return res
}

func fakeProbe(vendor string, ports ...int) *cenprobe.Result {
	return &cenprobe.Result{
		Addr:      netip.MustParseAddr("10.0.0.1"),
		OpenPorts: ports,
		Vendor:    vendor,
	}
}

func TestFeatureNamesStable(t *testing.T) {
	names := FeatureNames()
	if len(names) != 11+25+7+1+3 {
		t.Fatalf("feature count = %d, want 47 (11 trace + 25 fuzz + 8 banner + 3 stack)", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if names[0] != "CensorResponse" {
		t.Errorf("names[0] = %q", names[0])
	}
}

func TestExtractRowValues(t *testing.T) {
	obs := &Observation{
		EndpointID: "ep1", Country: "KZ", ASN: 9198,
		Trace: fakeTrace(centrace.KindRST, centrace.PlacementOnPath, ""),
		Fuzz:  fakeFuzz("Get Word Alt."),
		Probe: fakeProbe("Cisco", 22, 23),
	}
	m := Extract([]*Observation{obs})
	if len(m.X) != 1 || len(m.X[0]) != len(m.Names) {
		t.Fatalf("matrix shape = %dx%d", len(m.X), len(m.X[0]))
	}
	idx := func(name string) int {
		for i, n := range m.Names {
			if n == name {
				return i
			}
		}
		t.Fatalf("feature %q missing", name)
		return -1
	}
	row := m.X[0]
	if row[idx("CensorResponse")] != float64(centrace.KindRST) {
		t.Error("CensorResponse wrong")
	}
	if row[idx("OnPath")] != 1 {
		t.Error("OnPath wrong")
	}
	if row[idx("InjectedIPID")] != float64(0xbeef) {
		t.Error("InjectedIPID wrong")
	}
	if row[idx("IPTOSChanged")] != 1 {
		t.Error("IPTOSChanged wrong")
	}
	if row[idx("Fuzz:Get Word Alt.")] != 1 {
		t.Error("evading strategy rate should be 1")
	}
	if row[idx("Fuzz:SNI Pad.")] != 0 {
		t.Error("non-evading strategy rate should be 0")
	}
	if row[idx("PortOpen:22")] != 1 || row[idx("PortOpen:80")] != 0 {
		t.Error("port features wrong")
	}
	if row[idx("NumOpenPorts")] != 2 {
		t.Error("NumOpenPorts wrong")
	}
}

func TestExtractMissingValues(t *testing.T) {
	obs := &Observation{
		EndpointID: "ep1", Country: "AZ",
		Trace: fakeTrace(centrace.KindTimeout, centrace.PlacementInPath, ""),
		Fuzz:  nil,
		Probe: nil,
	}
	obs.Trace.Injected = nil
	obs.Trace.QuoteDelta = nil
	m := Extract([]*Observation{obs})
	nanCount := 0
	for _, v := range m.X[0] {
		if math.IsNaN(v) {
			nanCount++
		}
	}
	// 5 injected + 3 quote + 25 fuzz + 8 banner + 3 stack = 44 NaNs.
	if nanCount != 44 {
		t.Errorf("NaN count = %d, want 44", nanCount)
	}
	imp := m.Imputed()
	for _, v := range imp.X[0] {
		if math.IsNaN(v) {
			t.Fatal("Imputed left NaN")
		}
	}
	// Original untouched.
	stillNaN := 0
	for _, v := range m.X[0] {
		if math.IsNaN(v) {
			stillNaN++
		}
	}
	if stillNaN != nanCount {
		t.Error("Imputed mutated the original matrix")
	}
}

func TestLabelPriority(t *testing.T) {
	both := &Observation{
		Trace: fakeTrace(centrace.KindData, centrace.PlacementInPath, "Fortinet"),
		Probe: fakeProbe("Cisco", 22),
	}
	if got := both.Label(); got != "Cisco" {
		t.Errorf("Label = %q, want banner label first", got)
	}
	pageOnly := &Observation{Trace: fakeTrace(centrace.KindData, centrace.PlacementInPath, "Fortinet")}
	if got := pageOnly.Label(); got != "Fortinet" {
		t.Errorf("Label = %q, want blockpage fallback", got)
	}
	none := &Observation{Trace: fakeTrace(centrace.KindTimeout, centrace.PlacementInPath, "")}
	if got := none.Label(); got != "" {
		t.Errorf("Label = %q, want empty", got)
	}
}

func TestLabeledDataset(t *testing.T) {
	obsA := &Observation{EndpointID: "a", Trace: fakeTrace(centrace.KindRST, centrace.PlacementInPath, ""), Probe: fakeProbe("Cisco", 22)}
	obsB := &Observation{EndpointID: "b", Trace: fakeTrace(centrace.KindTimeout, centrace.PlacementInPath, "")}
	obsC := &Observation{EndpointID: "c", Trace: fakeTrace(centrace.KindData, centrace.PlacementInPath, "Fortinet")}
	m := Extract([]*Observation{obsA, obsB, obsC})
	d, rows, classes := m.LabeledDataset()
	if len(d.X) != 2 || len(rows) != 2 {
		t.Fatalf("labeled rows = %d, want 2 (unlabeled dropped)", len(d.X))
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	if classes[d.Y[0]] != "Cisco" || classes[d.Y[1]] != "Fortinet" {
		t.Errorf("class mapping broken: %v %v", d.Y, classes)
	}
}

func TestSelectColumns(t *testing.T) {
	obs := &Observation{
		Trace: fakeTrace(centrace.KindRST, centrace.PlacementOnPath, ""),
		Fuzz:  fakeFuzz(),
		Probe: fakeProbe("", 22),
	}
	m := Extract([]*Observation{obs})
	sub := m.SelectColumns([]int{0, 1})
	if len(sub.Names) != 2 || sub.Names[0] != "CensorResponse" {
		t.Errorf("selected names = %v", sub.Names)
	}
	if len(sub.X[0]) != 2 {
		t.Errorf("selected width = %d", len(sub.X[0]))
	}
	if len(sub.Row(0)) != 2 {
		t.Error("Row accessor broken")
	}
}

func TestFuzzFeatureNamesMatchCatalog(t *testing.T) {
	names := FeatureNames()
	for _, st := range cenfuzz.Strategies() {
		found := false
		for _, n := range names {
			if n == "Fuzz:"+st.Name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("strategy %q missing from feature names", st.Name)
		}
	}
	for _, n := range names {
		if strings.HasPrefix(n, "PortOpen:") && n == "PortOpen:?" {
			t.Error("unnamed port feature")
		}
	}
}
