// Package features turns the outputs of CenTrace, CenFuzz, and CenProbe
// into the feature vectors of Table 3, ready for the clustering pipeline
// (§7.1): censorship response type, placement, injected-packet header
// fields, quoted-ICMP deltas, per-strategy evasion outcomes, and open
// ports. Missing values are NaN; labels come from blockpages and banners.
package features

import (
	"math"

	"cendev/internal/cenfuzz"
	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/ml"
	"cendev/internal/obs"
	"cendev/internal/parallel"
)

// Observation bundles the measurements for one blocked endpoint.
type Observation struct {
	EndpointID string
	Country    string
	ASN        uint32
	Trace      *centrace.Result
	Fuzz       *cenfuzz.Result
	Probe      *cenprobe.Result // nil when no device address was probeable
}

// Label returns the vendor label for the observation: banner label first,
// then blockpage label, "" when unlabeled (§7.1: "If any of the devices
// respond with an explicit vendor indication in an injected blockpage, or
// in a banner, we then extract this data as a label").
func (o *Observation) Label() string {
	if o.Probe != nil && o.Probe.Vendor != "" {
		return o.Probe.Vendor
	}
	if o.Trace != nil && o.Trace.BlockpageVendor != "" {
		return o.Trace.BlockpageVendor
	}
	return ""
}

// portFeatures are the open-port indicator columns.
var portFeatures = []int{22, 23, 80, 161, 443, 4081, 8291}

// Matrix is the assembled feature matrix.
type Matrix struct {
	Names        []string
	X            [][]float64
	Observations []*Observation
}

// FeatureNames returns the full, ordered feature name list.
func FeatureNames() []string {
	names := []string{
		"CensorResponse",
		"OnPath",
		"InjectedIPTTL",
		"InjectedIPID",
		"InjectedIPFlags",
		"InjectedTCPWindow",
		"InjectedTCPFlags",
		"IPTOSChanged",
		"IPFlagsChanged",
		"QuoteRFC792Only",
		"LocationClass",
	}
	for _, st := range cenfuzz.Strategies() {
		names = append(names, "Fuzz:"+st.Name)
	}
	for _, p := range portFeatures {
		names = append(names, "PortOpen:"+portName(p))
	}
	names = append(names, "NumOpenPorts")
	names = append(names, "SYNACKWindow", "SYNACKTTL", "StackDF")
	return names
}

func portName(p int) string {
	switch p {
	case 22:
		return "22"
	case 23:
		return "23"
	case 80:
		return "80"
	case 161:
		return "161"
	case 443:
		return "443"
	case 4081:
		return "4081"
	case 8291:
		return "8291"
	default:
		return "?"
	}
}

// Extract builds the feature matrix for a set of observations.
func Extract(observations []*Observation) *Matrix {
	return ExtractParallel(observations, 1, nil)
}

// ExtractParallel builds the feature matrix across a pool of workers. Row
// extraction is a pure function of its observation, so rows land at their
// observation's index and the matrix is identical at every worker count.
// The registry, when non-nil, receives per-row extraction counters.
func ExtractParallel(observations []*Observation, workers int, reg *obs.Registry) *Matrix {
	m := &Matrix{Names: FeatureNames(), Observations: observations}
	m.X = make([][]float64, len(observations))
	parallel.ForEachOpt(len(observations), workers, parallel.Options{Pool: "features.extract", Obs: reg}, func(_, i int) {
		m.X[i] = extractRow(observations[i], m.Names)
	})
	if reg != nil {
		reg.Counter("features_rows_total").Add(int64(len(observations)))
	}
	return m
}

func extractRow(o *Observation, names []string) []float64 {
	nan := math.NaN()
	row := make([]float64, 0, len(names))

	// CenTrace features.
	tr := o.Trace
	if tr != nil {
		row = append(row, float64(tr.TermKind))
		if tr.Placement == centrace.PlacementOnPath {
			row = append(row, 1)
		} else {
			row = append(row, 0)
		}
		if inj := tr.Injected; inj != nil {
			row = append(row,
				float64(inj.TTL), float64(inj.IPID), float64(inj.IPFlags),
				float64(inj.TCPWindow), float64(inj.TCPFlags))
		} else {
			row = append(row, nan, nan, nan, nan, nan)
		}
		if qd := tr.QuoteDelta; qd != nil {
			row = append(row, b2f(qd.TOSChanged), b2f(qd.IPFlagsChanged), b2f(qd.RFC792Only))
		} else {
			row = append(row, nan, nan, nan)
		}
		row = append(row, float64(tr.Location))
	} else {
		for i := 0; i < 11; i++ {
			row = append(row, nan)
		}
	}

	// CenFuzz per-strategy success rates.
	for _, st := range cenfuzz.Strategies() {
		if o.Fuzz == nil {
			row = append(row, nan)
			continue
		}
		sr := o.Fuzz.Strategy(st.Name)
		if sr == nil {
			row = append(row, nan)
			continue
		}
		row = append(row, sr.SuccessRate())
	}

	// Banner features.
	if o.Probe == nil {
		for range portFeatures {
			row = append(row, nan)
		}
		row = append(row, nan)
	} else {
		open := map[int]bool{}
		for _, p := range o.Probe.OpenPorts {
			open[p] = true
		}
		for _, p := range portFeatures {
			row = append(row, b2f(open[p]))
		}
		row = append(row, float64(len(o.Probe.OpenPorts)))
	}
	// Nmap-style stack personality (Table 3's "features from Nmap
	// fingerprinting").
	if o.Probe != nil && o.Probe.HasPersonality {
		row = append(row,
			float64(o.Probe.Personality.SYNACKWindow),
			float64(o.Probe.Personality.SYNACKTTL),
			b2f(o.Probe.Personality.DF))
	} else {
		row = append(row, nan, nan, nan)
	}
	return row
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Imputed returns a deep copy of the matrix with NaNs median-imputed.
func (m *Matrix) Imputed() *Matrix {
	c := &Matrix{Names: m.Names, Observations: m.Observations}
	for _, row := range m.X {
		c.X = append(c.X, append([]float64(nil), row...))
	}
	ml.ImputeMedian(c.X)
	return c
}

// LabeledDataset builds an ml.Dataset from the labeled subset. classNames
// maps class index back to vendor label.
func (m *Matrix) LabeledDataset() (d *ml.Dataset, rows []int, classNames []string) {
	classIdx := map[string]int{}
	d = &ml.Dataset{}
	for i, o := range m.Observations {
		label := o.Label()
		if label == "" {
			continue
		}
		cls, ok := classIdx[label]
		if !ok {
			cls = len(classNames)
			classIdx[label] = cls
			classNames = append(classNames, label)
		}
		d.X = append(d.X, m.X[i])
		d.Y = append(d.Y, cls)
		rows = append(rows, i)
	}
	return d, rows, classNames
}

// SelectColumns returns a new matrix restricted to the given columns.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	c := &Matrix{Observations: m.Observations}
	for _, col := range cols {
		c.Names = append(c.Names, m.Names[col])
	}
	for _, row := range m.X {
		sub := make([]float64, 0, len(cols))
		for _, col := range cols {
			sub = append(sub, row[col])
		}
		c.X = append(c.X, sub)
	}
	return c
}

// Row returns the feature vector of observation i.
func (m *Matrix) Row(i int) []float64 { return m.X[i] }
