package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cendev/internal/lint/analysis"
)

// MapRange flags map iteration whose body builds ordered output —
// appending to an outer slice that is never sorted afterwards, writing
// into a stream/encoder, or concatenating onto an outer string. Go
// randomizes map iteration order on purpose, so any of these leaks
// nondeterminism straight into canonical snapshots and JSON artifacts.
// Order-insensitive bodies (counting, summing, filling another map) are
// untouched, and the ubiquitous collect-keys-then-sort idiom is
// recognized: an append target that a later sort.*/slices.* call touches
// is not reported.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map bodies that append to unsorted slices, write to " +
		"encoders/writers, or build strings — map order is randomized; sort first",
	Run: runMapRange,
}

// writerMethods are method names that commit bytes to an output in call
// order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// fmtWriters are the fmt package-level functions that emit directly.
var fmtWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapRange(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function on the
// walk stack, or nil at package level.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, scope *ast.BlockStmt) {
	info := pass.TypesInfo
	appended := map[types.Object]token.Pos{} // outer slice -> first append position
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn := pkgFunc(info, sel.Sel); fn != nil {
					if fn.Pkg().Path() == "fmt" && fmtWriters[fn.Name()] {
						pass.Reportf(n.Pos(),
							"map iteration calls fmt.%s inside the loop — output order follows randomized map order; iterate sorted keys instead",
							fn.Name())
					}
					return true
				}
				if writerMethods[sel.Sel.Name] {
					pass.Reportf(n.Pos(),
						"map iteration calls %s inside the loop — bytes are committed in randomized map order; iterate sorted keys instead",
						sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			checkRangeAssign(pass, rs, n, appended)
		}
		return true
	})
	for obj, pos := range appended {
		if scope != nil && sortedAfter(info, scope, rs.End(), obj) {
			continue
		}
		pass.Reportf(pos,
			"map iteration appends to %s, which is never sorted afterwards — slice order follows randomized map order; sort %s (or the map's keys) before it reaches output",
			obj.Name(), obj.Name())
	}
}

// checkRangeAssign handles the two order-sensitive assignment shapes
// inside a map-range body: appends to slices declared outside the loop,
// and += concatenation onto outer strings.
func checkRangeAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, appended map[types.Object]token.Pos) {
	info := pass.TypesInfo
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if obj := outerObject(info, as.Lhs[0], rs); obj != nil {
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(as.Pos(),
					"map iteration concatenates onto %s — string content follows randomized map order; iterate sorted keys instead",
					obj.Name())
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		if obj := outerObject(info, as.Lhs[i], rs); obj != nil {
			if _, ok := appended[obj]; !ok {
				appended[obj] = call.Pos()
			}
		}
	}
}

// outerObject resolves expr to a variable declared outside the range
// statement, or nil (locals that die with the loop iteration can't leak
// order).
func outerObject(info *types.Info, expr ast.Expr, rs *ast.RangeStmt) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
		return nil
	}
	return obj
}

// sortedAfter reports whether, somewhere in scope after pos, a
// sort.*/slices.* call mentions obj — the collect-then-sort idiom that
// restores a canonical order.
func sortedAfter(info *types.Info, scope *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pkgFunc(info, sel.Sel)
		if fn == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether expr references obj anywhere inside it.
func mentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			hit = true
			return false
		}
		return !hit
	})
	return hit
}
