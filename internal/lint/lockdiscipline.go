package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/ipa"
)

// lockPkgs are the packages held to mutex discipline: the deterministic
// set plus topology, whose Graph guards the derived routing state every
// worker shares.
var lockPkgs = append(append([]string{}, deterministicPkgs...), "cendev/internal/topology")

// LockDiscipline enforces three mutex contracts in the shared-state
// packages:
//
//  1. no copy-by-value of lock-bearing types (a copied mutex guards
//     nothing — the copy and the original lock independently);
//  2. every Lock is paired: a function that locks a mutex must unlock it
//     on every path (deferred, or before each return);
//  3. nothing slow or parking happens under a held lock: no deep
//     Clone(), no channel operation, no blocking callee (resolved
//     through the ipa summaries) between Lock and Unlock.
//
// The paths are compared textually (g.mu vs n.mu), per function, with
// function literals excluded — a closure's lock lifetime is its own.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "forbid copying lock-bearing values, Lock without Unlock on every path, and " +
		"Clone()/channel ops/blocking calls while a mutex is held in shared-state packages",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *analysis.Pass) error {
	if !pathIn(pass.Pkg.Path(), lockPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockCopies(pass, fd)
			checkLockRegions(pass, fd)
		}
	}
	return nil
}

// checkLockCopies flags lock-bearing values received or copied by value.
func checkLockCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	flagFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lockBearing(tv.Type, 0) {
				pass.Reportf(field.Type.Pos(),
					"%s copies lock-bearing type %s by value; the copy's mutex guards nothing — use a pointer",
					what, tv.Type)
			}
		}
	}
	flagFields(fd.Recv, "receiver")
	flagFields(fd.Type.Params, "parameter")

	// x := *p where *p carries a mutex: the dereference copies the lock.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			star, ok := rhs.(*ast.StarExpr)
			if !ok {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[star]; ok && lockBearing(tv.Type, 0) {
				pass.Reportf(star.Pos(),
					"dereference copies lock-bearing type %s by value; the copy's mutex guards nothing", tv.Type)
			}
		}
		return true
	})
}

// lockBearing reports whether t contains a sync lock by value.
func lockBearing(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearing(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return lockBearing(u.Elem(), depth+1)
	}
	return false
}

// lockEvent is one Lock/Unlock call on a textual receiver path.
type lockEvent struct {
	pos      token.Pos
	path     string // types.ExprString of the receiver, e.g. "g.mu"
	lock     bool   // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

// checkLockRegions walks one function's lock/unlock sequence and flags
// unpaired locks, returns inside a held region, and slow or parking
// operations under a held lock.
func checkLockRegions(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	collect := func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn := methodOf(pass.TypesInfo, sel.Sel)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		switch fn.Name() {
		case "Lock", "RLock":
			events = append(events, lockEvent{pos: call.Pos(), path: types.ExprString(sel.X), lock: true, deferred: deferred})
		case "Unlock", "RUnlock":
			events = append(events, lockEvent{pos: call.Pos(), path: types.ExprString(sel.X), lock: false, deferred: deferred})
		}
	}
	deferCalls := map[*ast.CallExpr]bool{}
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		// Both defer mu.Unlock() and defer func() { …mu.Unlock()… }().
		deferCalls[def.Call] = true
		collect(def.Call, true)
		if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				collect(m, true)
				return true
			})
		}
	})
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && deferCalls[call] {
			return
		}
		collect(n, false)
	})

	// Per locked path: pair each Lock with its outcome.
	paths := map[string]bool{}
	for _, e := range events {
		if e.lock && !e.deferred {
			paths[e.path] = true
		}
	}
	for path := range paths {
		var locks, unlocks []lockEvent
		hasDeferredUnlock := false
		for _, e := range events {
			switch {
			case e.lock && !e.deferred && e.path == path:
				locks = append(locks, e)
			case !e.lock && e.path == path:
				if e.deferred {
					hasDeferredUnlock = true
				} else {
					unlocks = append(unlocks, e)
				}
			}
		}
		for _, l := range locks {
			// The held region runs from the Lock to the first later plain
			// Unlock, or to the end of the function under a deferred one.
			end := fd.End()
			var plainEnd bool
			for _, u := range unlocks {
				if u.pos > l.pos {
					end = u.pos
					plainEnd = true
					break
				}
			}
			if !plainEnd && !hasDeferredUnlock {
				pass.Reportf(l.pos,
					"%s is locked but never unlocked in %s; add defer %s.Unlock() or unlock on every path",
					path, fd.Name.Name, path)
				continue
			}
			if plainEnd {
				checkReturnsInRegion(pass, fd, path, l.pos, end)
			}
			checkHeldRegion(pass, fd, path, l.pos, end)
		}
	}
}

// checkReturnsInRegion flags returns between a plain Lock and its
// Unlock: the lock leaks on that path. Position order stands in for
// control flow — an early-return branch that unlocks first places its
// Unlock before the return and stays silent.
func checkReturnsInRegion(pass *analysis.Pass, fd *ast.FuncDecl, path string, lo, hi token.Pos) {
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= lo || ret.Pos() >= hi {
			return
		}
		pass.Reportf(ret.Pos(),
			"return while %s is still locked (locked at line %d); unlock before returning or use defer",
			path, pass.Fset.Position(lo).Line)
	})
}

// checkHeldRegion flags slow or parking operations inside a held-lock
// region: local Clone() calls, channel operations, selects without
// default, and calls whose ipa summary says they block.
func checkHeldRegion(pass *analysis.Pass, fd *ast.FuncDecl, path string, lo, hi token.Pos) {
	in := func(p token.Pos) bool { return p > lo && p < hi }
	// A channel op that IS a select's comm clause is part of the select —
	// the select finding covers it; don't double-report.
	var commRanges [][2]token.Pos
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					commRanges = append(commRanges, [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()})
				}
			}
		}
	})
	inComm := func(p token.Pos) bool {
		for _, r := range commRanges {
			if p >= r[0] && p < r[1] {
				return true
			}
		}
		return false
	}
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if in(n.Pos()) && !inComm(n.Pos()) {
				pass.Reportf(n.Pos(), "channel send while holding %s; a full channel parks every other user of the lock", path)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && in(n.Pos()) && !inComm(n.Pos()) {
				pass.Reportf(n.Pos(), "channel receive while holding %s; a quiet channel parks every other user of the lock", path)
			}
		case *ast.SelectStmt:
			if in(n.Pos()) && !hasDefaultClause(n) {
				pass.Reportf(n.Pos(), "select with no default while holding %s; the select can park with the lock held", path)
			}
		case *ast.CallExpr:
			if !in(n.Pos()) {
				return
			}
			fn := ipa.CalleeOf(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			if fn.Name() == "Clone" && pass.Facts != nil && pass.Facts.IsLocal(fn.Pkg().Path()) {
				pass.Reportf(n.Pos(),
					"%s.Clone() while holding %s; deep copies under a mutex serialize every reader — capture, unlock, then clone",
					ipa.ShortName(fn.FullName()), path)
				return
			}
			if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(n.Pos(), "time.Sleep while holding %s", path)
				return
			}
			if pass.Facts != nil {
				if chain, op, ok := pass.Facts.BlockChain(fn.FullName()); ok {
					pass.Reportf(n.Pos(),
						"call while holding %s can park on %s: %s; move the blocking work outside the critical section",
						path, op, ipa.FormatChain(chain))
				}
			}
		}
	})
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkSkipFuncLits visits every node under n except nested function
// literal bodies — a closure's locks and returns have their own
// lifetime.
func walkSkipFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}
