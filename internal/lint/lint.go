// Package lint holds the repo-specific cenlint analyzers. Every result
// this reproduction emits — CenTrace hop inference, CenFuzz verdicts,
// obs canonical snapshots, censerved job payloads — is promised to be
// byte-identical for a given spec+seed at any worker count. These
// analyzers turn that promise from convention into a machine-checked
// invariant: wall-clock reads, global randomness, unordered map
// iteration feeding output, and rename-without-fsync persistence bugs
// are all compile-time-adjacent failures instead of flaky-diff hunts.
//
// The universal escape hatch is the //cenlint:volatile directive (with a
// mandatory justification), scanned by the driver: it suppresses any
// cenlint diagnostic on its own line or the line below it.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cendev/internal/lint/analysis"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of spec+seed. detclock, seededrand and maprange apply here
// (and to their subpackages). internal/parallel, internal/serve and
// internal/cluster are included deliberately: their wall-clock use is
// real but intentional (latency gauges, admission clocks, long-poll
// park timers) and must carry an explicit //cenlint:volatile
// justification rather than pass silently.
var deterministicPkgs = []string{
	"cendev/internal/simnet",
	"cendev/internal/centrace",
	"cendev/internal/cluster",
	"cendev/internal/cenfuzz",
	"cendev/internal/cenprobe",
	"cendev/internal/faults",
	"cendev/internal/features",
	"cendev/internal/ml",
	"cendev/internal/experiments",
	"cendev/internal/evolve",
	"cendev/internal/obs",
	"cendev/internal/parallel",
	"cendev/internal/routedyn",
	"cendev/internal/serve",
	"cendev/internal/tomography",
	"cendev/internal/vfs",
	"cendev/internal/wire",
}

// journalPkgs are the packages bound by the fsync-before-rename
// persistence contract: the censerved sharded store, the centrace
// campaign journal, the shared wire framing they encode through, the
// vfs seam they write through (WriteFileDurable is itself a
// temp+fsync+rename implementation), and obs, whose
// -metrics-out/-trace-out artifacts publish by rename.
var journalPkgs = []string{
	"cendev/internal/serve",
	"cendev/internal/cluster",
	"cendev/internal/wire",
	"cendev/internal/centrace",
	"cendev/internal/routedyn",
	"cendev/internal/vfs",
	"cendev/internal/obs",
}

func pathIn(path string, set []string) bool {
	for _, p := range set {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func isDeterministic(path string) bool { return pathIn(path, deterministicPkgs) }

// All returns the full analyzer suite in reporting order: the five
// syntactic PR-5 analyzers plus the four interprocedural ones built on
// the ipa summary engine.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetClock, SeededRand, MapRange, FsyncRename, ErrWrapDir,
		DetTaint, PoolEscape, LockDiscipline, GoLeak,
	}
}

// pkgFunc resolves an identifier use to a package-level function (no
// receiver) and returns it, or nil.
func pkgFunc(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// calleeIs reports whether call invokes the package-level function
// pkgPath.name.
func calleeIs(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := pkgFunc(info, sel.Sel)
	return fn != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// methodOf resolves a selector identifier to the method it invokes —
// interface or concrete receiver alike (pkgFunc deliberately rejects
// receivers) — and returns it, or nil for non-methods.
func methodOf(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil
	}
	return fn
}

// calleeIsMethod reports whether call invokes a method declared in
// pkgPath with one of the given names.
func calleeIsMethod(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := methodOf(info, sel.Sel)
	if fn == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
