package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/ipa"
)

// PoolEscape enforces the DESIGN §14 buffer ownership contract: a value
// obtained from a pool source (simnet's pktPool packets, wire.Reader's
// in-place payload slices) is valid only until the owner's next release
// point. Storing such a value anywhere that outlives the current call —
// a package-level variable, a non-receiver field, a map or slice
// element of a caller-owned container, a channel — or returning it from
// an exported non-sanctioned function silently turns reuse of the
// backing array into cross-measurement data corruption. The sanctioned
// owner pattern (the pool owner stashing packets in its own fields for
// wholesale reclaim) and retention via Clone() stay silent.
//
// The value-flow scan is shared with the ipa summary extractor, so a
// helper that launders a pooled value through another package is caught
// the same way a direct store is: the callee's parameter-escape summary
// travels with it.
var PoolEscape = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "forbid pooled simnet packets and wire scratch buffers from escaping their release point " +
		"(heap stores, channel sends, exported alias returns); Clone() to retain",
	Run: runPoolEscape,
}

func runPoolEscape(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	cfg := pass.Facts.Config()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fr := ipa.ScanFlows(fd, pass.TypesInfo, cfg, pass.Facts.Summary)
			for _, fl := range fr.Flows {
				if !strings.HasPrefix(fl.Root, "pool:") {
					continue
				}
				src := ipa.PoolSourceShort(fl.Root)
				switch fl.Sink {
				case ipa.SinkReceiverField:
					// The owner pattern: pool owners may stash pooled values in
					// their own fields — they control the release point.
				case ipa.SinkReturn:
					obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					if obj == nil || cfg.SanctionedPoolReturns[obj.FullName()] || !fd.Name.IsExported() {
						// Unexported returns propagate ReturnsPooled through the
						// summaries; the caller's store is where the bug lands.
						continue
					}
					pass.Reportf(fl.Pos,
						"%s returns an alias of pooled storage from %s; exported APIs must Clone() or be listed as a sanctioned pool return (DESIGN §14)",
						fd.Name.Name, src)
				case ipa.SinkCallee:
					pass.Reportf(fl.Pos,
						"pooled value from %s handed to %s, where it is %s; Clone() before the call or keep the callee alias-free",
						src, ipa.ShortName(fl.Via), fl.How)
				default: // SinkGlobal, SinkMapOrSlice, SinkField, SinkSend
					pass.Reportf(fl.Pos,
						"pooled value from %s is %s (%s); it is valid only until the pool's next release — Clone() to retain",
						src, fl.Sink, fl.Target)
				}
			}
		}
	}
	return nil
}
