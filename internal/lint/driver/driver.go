// Package driver loads type-checked packages for the cenlint analyzers
// without golang.org/x/tools (the build environment is offline): package
// metadata and compiled export data come from `go list -export -deps
// -json`, syntax from go/parser, and types from go/types with a gc
// importer reading the export files. The driver also owns the
// //cenlint:volatile suppression directive, so every analyzer gets the
// same escape hatch with the same justification rule.
//
// Analyze is the repo-gate entry point: it schedules packages in
// dependency order (a package starts only after its module-internal
// deps have published their ipa summaries), analyzes independent
// packages in parallel, and caches each package's resolved facts and
// findings keyed by a hash of everything that can change them — so a
// warm re-run touches no parser or type checker at all.
package driver

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/ipa"
)

// CacheVersion is folded into every summary-cache key. Bump it whenever
// the fact schema, the engine configuration (ipa.DefaultConfig), or any
// analyzer's behavior changes in a way source hashes can't see.
const CacheVersion = "cenlint-cache-v1"

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Facts is the module-wide interprocedural program; nil only for
	// callers that skip the ipa engine.
	Facts *ipa.Program
}

// Finding is one resolved diagnostic: position plus the analyzer that
// produced it.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Options configures an Analyze run.
type Options struct {
	// Dir is where `go list` runs; "" means the current directory.
	Dir string
	// Patterns are the go list package patterns to analyze.
	Patterns []string
	// Analyzers to apply to every matched package.
	Analyzers []*analysis.Analyzer
	// CacheDir enables the per-package summary/finding cache when
	// non-empty. The directory is created if missing.
	CacheDir string
	// Workers bounds concurrent package analysis; <=0 means GOMAXPROCS.
	Workers int
	// Audit reports //cenlint:volatile directives that suppressed
	// nothing, so stale escapes can't accumulate. Leave it off for
	// single-analyzer runs — a directive aimed at another analyzer's
	// diagnostic would be falsely idle.
	Audit bool
}

// Stats records where an Analyze run spent its time — the ci lint-engine
// stage serializes this into BENCH_lint.json.
type Stats struct {
	Packages  int   `json:"packages"`
	CacheHits int   `json:"cache_hits"`
	LoadMS    int64 `json:"load_ms"`
	AnalyzeMS int64 `json:"analyze_ms"`
	TotalMS   int64 `json:"total_ms"`
	Workers   int   `json:"workers"`
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Deps       []string
	DepOnly    bool
	Standard   bool
}

// list resolves patterns with `go list` (run in dir; "" means the
// current directory) and returns every matched and depended-on package.
// Test files are deliberately out of scope: the determinism invariants
// cenlint enforces are about measurement outputs, and tests may use the
// wall clock freely.
func list(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Deps,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// syncImporter serializes a gc importer: the importer caches loaded
// packages in an unguarded map, and Analyze type-checks packages from
// multiple goroutines.
type syncImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (s *syncImporter) Import(path string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.imp.Import(path)
}

// Analyze runs the full pipeline over every package matched by
// opts.Patterns: load metadata, schedule packages bottom-up over the
// module-internal import DAG, extract ipa summaries for every local
// package (matched or dependency-only), run the analyzers on the
// matched ones, and return the deduplicated, stably sorted findings.
func Analyze(opts Options) ([]Finding, Stats, error) {
	start := time.Now()
	stats := Stats{}

	raw, err := list(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, stats, err
	}
	exports := map[string]string{} // import path -> export data file
	local := map[string]*listPkg{} // module-local (non-stdlib) packages
	for i := range raw {
		p := &raw[i]
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			local[p.ImportPath] = p
		}
	}
	order := sortedPaths(local)
	stats.LoadMS = time.Since(start).Milliseconds()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats.Workers = workers
	if opts.CacheDir != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, stats, fmt.Errorf("lint: creating cache dir: %w", err)
		}
	}

	fset := token.NewFileSet()
	imp := &syncImporter{imp: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})}
	prog := ipa.NewProgram(ipa.DefaultConfig(), order)

	// Module-internal dependency edges, restricted to packages in this
	// run. Deps is transitive, which only makes the schedule stricter.
	depsOf := map[string][]string{}
	for path, p := range local {
		for _, d := range p.Deps {
			if _, ok := local[d]; ok {
				depsOf[path] = append(depsOf[path], d)
			}
		}
		sort.Strings(depsOf[path])
	}

	done := map[string]chan struct{}{}
	for _, path := range order {
		done[path] = make(chan struct{})
	}
	var (
		mu       sync.Mutex
		firstErr error
		results  = map[string][]Finding{}
		keys     = map[string]string{}
	)
	analyzeStart := time.Now()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, path := range order {
		p := local[path]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[p.ImportPath])
			for _, d := range depsOf[p.ImportPath] {
				<-done[d]
			}
			mu.Lock()
			failed := firstErr != nil
			depKeys := make([]string, 0, len(depsOf[p.ImportPath]))
			for _, d := range depsOf[p.ImportPath] {
				depKeys = append(depKeys, keys[d])
			}
			mu.Unlock()
			if failed {
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			findings, key, hit, err := analyzeOne(p, depKeys, exports, fset, imp, prog, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			keys[p.ImportPath] = key
			results[p.ImportPath] = findings
			stats.Packages++
			if hit {
				stats.CacheHits++
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}

	var all []Finding
	for _, path := range order {
		all = append(all, results[path]...)
	}
	all = dedupe(all)
	stats.AnalyzeMS = time.Since(analyzeStart).Milliseconds()
	stats.TotalMS = time.Since(start).Milliseconds()
	return all, stats, nil
}

// cacheEntry is one package's serialized outcome.
type cacheEntry struct {
	Key      string            `json:"key"`
	Facts    *ipa.PackageFacts `json:"facts"`
	Findings []Finding         `json:"findings"`
}

// analyzeOne processes one package: cache probe, else parse + type-check
// + summary extraction + (for matched packages) the analyzer run, then a
// cache write. depKeys are the already-computed cache keys of the
// package's module-internal deps, in sorted dep order.
func analyzeOne(p *listPkg, depKeys []string, exports map[string]string, fset *token.FileSet, imp types.Importer, prog *ipa.Program, opts Options) (findings []Finding, key string, hit bool, err error) {
	target := !p.DepOnly

	if opts.CacheDir != "" {
		key, err = cacheKey(p, depKeys, exports, opts, target)
		if err != nil {
			return nil, "", false, err
		}
		if entry := loadCache(opts.CacheDir, key); entry != nil {
			prog.AddFacts(entry.Facts)
			return entry.Findings, key, true, nil
		}
	}

	var files []*ast.File
	for _, gf := range p.GoFiles {
		f, perr := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
		if perr != nil {
			return nil, "", false, fmt.Errorf("lint: parsing %s: %w", gf, perr)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := NewInfo()
	tpkg, terr := conf.Check(p.ImportPath, fset, files, info)
	if terr != nil {
		return nil, "", false, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, terr)
	}
	facts := prog.AddPackage(p.ImportPath, files, info)

	if target {
		pkg := &Package{
			Path: p.ImportPath, Fset: fset, Files: files,
			Types: tpkg, TypesInfo: info, Facts: prog,
		}
		findings, err = runPackage(pkg, opts.Analyzers, opts.Audit)
		if err != nil {
			return nil, "", false, err
		}
	}
	if opts.CacheDir != "" {
		saveCache(opts.CacheDir, &cacheEntry{Key: key, Facts: facts, Findings: findings})
	}
	return findings, key, false, nil
}

// cacheKey hashes everything that can change a package's facts or
// findings: the cache schema version, the analyzer set, whether the
// package is a matched target or facts-only, its source bytes, the keys
// of its module-internal deps (transitively covering their sources) and
// the export files of its stdlib deps (go build cache paths are content
// hashes, so the path string is a faithful proxy).
func cacheKey(p *listPkg, depKeys []string, exports map[string]string, opts Options, target bool) (string, error) {
	h := sha256.New()
	put := func(ss ...string) {
		for _, s := range ss {
			fmt.Fprintf(h, "%d:%s\n", len(s), s)
		}
	}
	put(CacheVersion, p.ImportPath)
	put(fmt.Sprintf("target=%t audit=%t", target, opts.Audit))
	for _, a := range opts.Analyzers {
		put(a.Name)
	}
	for _, gf := range p.GoFiles {
		src, err := os.ReadFile(filepath.Join(p.Dir, gf))
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %w", gf, err)
		}
		put(gf, string(src))
	}
	put(depKeys...)
	for _, d := range p.Deps {
		if exp, ok := exports[d]; ok {
			put(d, exp)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func cachePath(dir, key string) string {
	return filepath.Join(dir, key[:32]+".json")
}

func loadCache(dir, key string) *cacheEntry {
	b, err := os.ReadFile(cachePath(dir, key))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Key != key {
		return nil
	}
	return &e
}

// saveCache writes best-effort: a failed write just means a cold run
// next time. The temp+rename keeps concurrent writers from tearing the
// entry.
func saveCache(dir string, e *cacheEntry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "entry-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	tmp.Close()
	os.Rename(name, cachePath(dir, e.Key))
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// RunPackage applies the analyzers to one package with directive
// suppression and generated-file filtering, without the unused-directive
// audit — the right mode for single-analyzer fixture runs.
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return runPackage(pkg, analyzers, false)
}

// RunPackageAudit is RunPackage plus the unused-suppression audit: a
// //cenlint:volatile that suppressed nothing across the given analyzers
// is itself reported.
func RunPackageAudit(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return runPackage(pkg, analyzers, true)
}

// runPackage applies the analyzers to one package, resolves positions,
// drops diagnostics in generated files, drops diagnostics suppressed by
// //cenlint:volatile directives, and appends the driver's own
// directive-hygiene findings (a directive with no justification is
// itself reported, so a bare annotation cannot silently green the gate).
func runPackage(pkg *Package, analyzers []*analysis.Analyzer, audit bool) ([]Finding, error) {
	suppressed, directives, directiveFindings := scanDirectives(pkg)
	generated := generatedFiles(pkg)

	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     pkg.Facts,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if generated[pos.Filename] {
				return
			}
			if dir := suppressed[lineKey{pos.Filename, pos.Line}]; dir != nil {
				dir.used = true
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	for _, f := range directiveFindings {
		if !generated[f.Pos.Filename] {
			out = append(out, f)
		}
	}
	if audit {
		for _, d := range directives {
			if !d.used && !generated[d.pos.Filename] {
				out = append(out, Finding{
					Analyzer: "cenlint", Pos: d.pos,
					Message: "unused //cenlint:volatile directive: it suppresses no diagnostic — remove it",
				})
			}
		}
	}
	out = dedupe(out)
	return out, nil
}

type lineKey struct {
	file string
	line int
}

// directive is one //cenlint:volatile occurrence; both of its covered
// lines share the pointer so a hit on either marks it used.
type directive struct {
	pos  token.Position
	used bool
}

// directivePrefix introduces every cenlint control comment.
const directivePrefix = "//cenlint:"

// scanDirectives walks every comment for //cenlint: directives. A
// //cenlint:volatile directive suppresses all diagnostics on its own
// line and the line below it (so it works both as a trailing comment and
// as a standalone line above the statement). The directive must carry a
// justification after the keyword; a bare one, and any unknown
// //cenlint: verb, is reported as a finding of the pseudo-analyzer
// "cenlint" — those findings are exempt from suppression.
func scanDirectives(pkg *Package) (map[lineKey]*directive, []*directive, []Finding) {
	suppressed := map[lineKey]*directive{}
	var directives []*directive
	var findings []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				pos := pkg.Fset.Position(c.Pos())
				if !strings.HasPrefix(rest, "volatile") {
					verb := rest
					if i := strings.IndexAny(verb, " \t"); i >= 0 {
						verb = verb[:i]
					}
					findings = append(findings, Finding{
						Analyzer: "cenlint", Pos: pos,
						Message: fmt.Sprintf("unknown cenlint directive %q (only //cenlint:volatile is defined)", verb),
					})
					continue
				}
				d := &directive{pos: pos}
				directives = append(directives, d)
				suppressed[lineKey{pos.Filename, pos.Line}] = d
				suppressed[lineKey{pos.Filename, pos.Line + 1}] = d
				just := strings.Trim(strings.TrimPrefix(rest, "volatile"), " \t:—-")
				if just == "" {
					findings = append(findings, Finding{
						Analyzer: "cenlint", Pos: pos,
						Message: "//cenlint:volatile needs a justification (write //cenlint:volatile <why wall-clock or unordered output is intended here>)",
					})
				}
			}
		}
	}
	return suppressed, directives, findings
}

// generatedFiles returns the filenames in pkg carrying the standard
// machine-generated marker (a "// Code generated … DO NOT EDIT." line
// before the package clause). Generated code is type-checked — its facts
// feed the call graph — but never reported on.
func generatedFiles(pkg *Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			if cg.Pos() >= f.Package {
				break
			}
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, " DO NOT EDIT.") {
					out[pkg.Fset.Position(f.Package).Filename] = true
				}
			}
		}
	}
	return out
}

// dedupe sorts findings and collapses duplicates at the same position
// with the same message (two analyzers agreeing on one defect), keeping
// the alphabetically-first analyzer. The result is byte-stable across
// runs and worker counts.
func dedupe(fs []Finding) []Finding {
	sortFindings(fs)
	out := fs[:0]
	for i, f := range fs {
		if i > 0 {
			p := out[len(out)-1]
			if p.Pos.Filename == f.Pos.Filename && p.Pos.Line == f.Pos.Line &&
				p.Pos.Column == f.Pos.Column && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func sortedPaths(m map[string]*listPkg) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
