// Package driver loads type-checked packages for the cenlint analyzers
// without golang.org/x/tools (the build environment is offline): package
// metadata and compiled export data come from `go list -export -deps
// -json`, syntax from go/parser, and types from go/types with a gc
// importer reading the export files. The driver also owns the
// //cenlint:volatile suppression directive, so every analyzer gets the
// same escape hatch with the same justification rule.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"cendev/internal/lint/analysis"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Finding is one resolved diagnostic: position plus the analyzer that
// produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load resolves patterns with `go list` (run in dir; "" means the
// current directory) and returns the matched non-test packages,
// type-checked against the export data of their dependencies. Test files
// are deliberately out of scope: the determinism invariants cenlint
// enforces are about measurement outputs, and tests may use the wall
// clock freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", gf, err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		info := NewInfo()
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
		})
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// RunPackage applies the analyzers to one package, resolves positions,
// drops diagnostics suppressed by //cenlint:volatile directives, and
// appends the driver's own directive-hygiene findings (a directive with
// no justification is itself reported, so a bare annotation cannot
// silently green the gate).
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	suppressed, directiveFindings := scanDirectives(pkg)

	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if suppressed[lineKey{pos.Filename, pos.Line}] {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	out = append(out, directiveFindings...)
	sortFindings(out)
	return out, nil
}

type lineKey struct {
	file string
	line int
}

// directivePrefix introduces every cenlint control comment.
const directivePrefix = "//cenlint:"

// scanDirectives walks every comment for //cenlint: directives. A
// //cenlint:volatile directive suppresses all diagnostics on its own
// line and the line below it (so it works both as a trailing comment and
// as a standalone line above the statement). The directive must carry a
// justification after the keyword; a bare one, and any unknown
// //cenlint: verb, is reported as a finding of the pseudo-analyzer
// "cenlint" — those findings are exempt from suppression.
func scanDirectives(pkg *Package) (map[lineKey]bool, []Finding) {
	suppressed := map[lineKey]bool{}
	var findings []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				pos := pkg.Fset.Position(c.Pos())
				if !strings.HasPrefix(rest, "volatile") {
					verb := rest
					if i := strings.IndexAny(verb, " \t"); i >= 0 {
						verb = verb[:i]
					}
					findings = append(findings, Finding{
						Analyzer: "cenlint", Pos: pos,
						Message: fmt.Sprintf("unknown cenlint directive %q (only //cenlint:volatile is defined)", verb),
					})
					continue
				}
				suppressed[lineKey{pos.Filename, pos.Line}] = true
				suppressed[lineKey{pos.Filename, pos.Line + 1}] = true
				just := strings.Trim(strings.TrimPrefix(rest, "volatile"), " \t:—-")
				if just == "" {
					findings = append(findings, Finding{
						Analyzer: "cenlint", Pos: pos,
						Message: "//cenlint:volatile needs a justification (write //cenlint:volatile <why wall-clock or unordered output is intended here>)",
					})
				}
			}
		}
	}
	return suppressed, findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
