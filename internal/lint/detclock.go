package lint

import (
	"go/ast"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/ipa"
)

// wallClockFuncs are the package-level time functions that read or wait
// on the wall clock. time.Duration arithmetic and time.Time values
// threaded in from callers are fine; only acquiring wall time inside a
// deterministic package is the bug. The table lives in ipa so the
// syntactic check and the interprocedural dettaint can never drift.
var wallClockFuncs = ipa.WallClockFuncs

// DetClock forbids wall-clock reads in deterministic packages. The
// simnet virtual clock (and the injectable now-func pattern used by
// serve admission) is the approved time source: a single stray
// time.Now() in a hot path silently breaks the byte-identical-replay
// promise, the failure mode strict measurement hygiene exists to catch.
var DetClock = &analysis.Analyzer{
	Name: "detclock",
	Doc: "forbid time.Now/Since/Sleep/NewTimer and friends in deterministic packages; " +
		"thread the virtual clock or an injected now-func, or annotate //cenlint:volatile <why>",
	Run: runDetClock,
}

func runDetClock(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(pass.TypesInfo, sel.Sel)
			if fn == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in deterministic package %s; thread the virtual clock or an injected now-func instead (or annotate //cenlint:volatile <why> for intentionally wall-clock series)",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
