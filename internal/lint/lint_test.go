package lint_test

import (
	"testing"

	"cendev/internal/lint"
	"cendev/internal/lint/driver"
	"cendev/internal/lint/lintest"
)

// Each analyzer is exercised against fixture packages demonstrating at
// least one caught violation, one legal non-violation, and one
// suppressed-by-directive case — plus a package outside its scope where
// the same code must stay silent.

func TestDetClockFixtures(t *testing.T) {
	lintest.Run(t, "testdata/detclock/det", lint.DetClock)
	lintest.Run(t, "testdata/detclock/free", lint.DetClock)
}

func TestSeededRandFixtures(t *testing.T) {
	lintest.Run(t, "testdata/seededrand/det", lint.SeededRand)
	lintest.Run(t, "testdata/seededrand/free", lint.SeededRand)
}

func TestMapRangeFixtures(t *testing.T) {
	lintest.Run(t, "testdata/maprange/det", lint.MapRange)
	lintest.Run(t, "testdata/maprange/free", lint.MapRange)
}

func TestFsyncRenameFixtures(t *testing.T) {
	lintest.Run(t, "testdata/fsyncrename/journal", lint.FsyncRename)
	lintest.Run(t, "testdata/fsyncrename/vfsjournal", lint.FsyncRename)
	lintest.Run(t, "testdata/fsyncrename/other", lint.FsyncRename)
}

func TestErrWrapDirFixtures(t *testing.T) {
	lintest.Run(t, "testdata/errwrapdir/wrap", lint.ErrWrapDir)
}

func TestDetTaintFixtures(t *testing.T) {
	lintest.Run(t, "testdata/dettaint/det", lint.DetTaint)
	lintest.Run(t, "testdata/dettaint/free", lint.DetTaint)
}

func TestPoolEscapeFixtures(t *testing.T) {
	lintest.Run(t, "testdata/poolescape/simnet", lint.PoolEscape)
}

func TestLockDisciplineFixtures(t *testing.T) {
	lintest.Run(t, "testdata/lockdiscipline/locked", lint.LockDiscipline)
	lintest.Run(t, "testdata/lockdiscipline/free", lint.LockDiscipline)
}

func TestGoLeakFixtures(t *testing.T) {
	lintest.Run(t, "testdata/goleak/det", lint.GoLeak)
	lintest.Run(t, "testdata/goleak/free", lint.GoLeak)
}

// TestUnusedSuppressionAudit exercises the driver's audit mode: a
// directive that suppresses nothing, or carries no justification, is a
// finding of the pseudo-analyzer "cenlint".
func TestUnusedSuppressionAudit(t *testing.T) {
	lintest.RunAudit(t, "testdata/directives/unused", lint.DetClock)
}

// TestRepoIsClean is the meta-gate: the full analyzer suite must report
// zero diagnostics across the whole module. Any new wall-clock read,
// global-rand use, unsorted map-fed output, or rename-without-fsync in a
// guarded package fails this test (and the cenlint ci.sh stage) until it
// is fixed or carries a justified //cenlint:volatile annotation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("re-type-checks the whole module; skipped in -short")
	}
	findings, stats, err := driver.Analyze(driver.Options{
		Patterns:  []string{"cendev/..."},
		Analyzers: lint.All(),
		Audit:     true,
	})
	if err != nil {
		t.Fatalf("analyzing module packages: %v", err)
	}
	if stats.Packages < 20 {
		t.Fatalf("suspiciously few packages analyzed (%d); pattern broken?", stats.Packages)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
