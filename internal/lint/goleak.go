package lint

import (
	"go/ast"
	"go/token"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/ipa"
)

// GoLeak forbids unstoppable goroutines in deterministic packages: a
// goroutine whose body (or any function it transitively calls, resolved
// through the ipa summaries) contains a `for {}` loop with no return,
// break, channel receive, or select has no termination path — no done
// channel, no context, nothing. Such a goroutine outlives drain and
// turns graceful shutdown into a hang or a leak. Loops that receive or
// select are signal-driven and stay silent; bounded goroutine bodies
// are fine.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "forbid goroutines in deterministic packages whose body loops forever with no " +
		"termination path (no done channel, context, return, or break)",
	Run: runGoLeak,
}

func runGoLeak(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if pos := ipa.UnboundedLoopPos(lit); pos != token.NoPos {
					pass.Reportf(pos,
						"goroutine loops forever with no termination path in deterministic package %s; add a done channel or context case",
						pass.Pkg.Path())
				} else if pass.Facts != nil {
					// The literal may reach the loop through a callee.
					for _, fn := range ipa.LocalCallees(pass.TypesInfo, lit.Body, pass.Facts.IsLocal) {
						if chain := pass.Facts.UnboundedChain(fn.FullName()); chain != nil {
							pass.Reportf(g.Go,
								"goroutine reaches an unstoppable loop: %s; add a done channel or context case",
								ipa.FormatChain(chain))
							break
						}
					}
				}
				return true
			}
			if pass.Facts == nil {
				return true
			}
			if fn := ipa.CalleeOf(pass.TypesInfo, g.Call); fn != nil {
				if chain := pass.Facts.UnboundedChain(fn.FullName()); chain != nil {
					pass.Reportf(g.Go,
						"goroutine runs %s, which loops forever with no termination path: %s; add a done channel or context case",
						ipa.ShortName(fn.FullName()), ipa.FormatChain(chain))
				}
			}
			return true
		})
	}
	return nil
}
