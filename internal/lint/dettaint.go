package lint

import (
	"go/ast"
	"go/types"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/ipa"
)

// DetTaint closes the cross-package blind spot of detclock/seededrand:
// a deterministic package calling a helper in a "free" package that
// reads time.Now() (at any call depth) launders nondeterminism past the
// syntactic checks. The ipa engine summarizes which taint sources every
// module function transitively reaches; dettaint reports any reference
// from a deterministic package to a non-deterministic module function
// whose summary is tainted, with the witness call chain. References to
// functions in deterministic packages are not re-reported — the source
// itself is flagged (or deliberately annotated) where it occurs.
var DetTaint = &analysis.Analyzer{
	Name: "dettaint",
	Doc: "forbid calls from deterministic packages to module functions that transitively reach " +
		"the wall clock or global randomness; the diagnostic shows the offending call chain",
	Run: runDetTaint,
}

func runDetTaint(pass *analysis.Pass) error {
	if pass.Facts == nil || !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	kinds := []ipa.Kind{ipa.KindWallClock, ipa.KindGlobalRand}
	remedy := map[ipa.Kind]string{
		ipa.KindWallClock:  "thread the virtual clock or an injected now-func",
		ipa.KindGlobalRand: "thread a seeded *rand.Rand",
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if !pass.Facts.IsLocal(path) || isDeterministic(path) {
				return true
			}
			for _, k := range kinds {
				chain := pass.Facts.TaintChain(fn.FullName(), k)
				if chain == nil {
					continue
				}
				pass.Reportf(id.Pos(),
					"call into %s reaches %s (%s) from deterministic package %s: %s; %s (or annotate //cenlint:volatile <why>)",
					ipa.ShortName(fn.FullName()), chain[len(chain)-1], k, pass.Pkg.Path(),
					ipa.FormatChain(chain), remedy[k])
			}
			return true
		})
	}
	return nil
}
