// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check, a Pass hands it one type-checked package, and diagnostics flow
// back through Report. The build environment for this repo is fully
// offline (no module proxy, empty module cache), so the real x/tools
// framework cannot be vendored; this package keeps the same shape so the
// analyzers in internal/lint port to the upstream API mechanically if
// x/tools ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"cendev/internal/lint/ipa"
)

// Analyzer describes one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description shown by `cenlint -help`.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report. A non-nil error aborts the whole lint run — reserve it
	// for internal failures, not findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds the module's resolved interprocedural summaries
	// (cendev/internal/lint/ipa), populated bottom-up by the driver
	// before this package's pass runs. Analyzers must tolerate nil —
	// they then see only what is syntactically in front of them.
	Facts  *ipa.Program
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
