// Package lintest is an offline analysistest equivalent: it runs one
// cenlint analyzer over a fixture package under testdata and compares
// the diagnostics against `want` annotations in the fixture source.
//
// Annotation syntax (a subset of x/tools analysistest):
//
//	x := time.Now() // want "time.Now"
//
// Each quoted string is a regexp that must match the message of exactly
// one finding reported on that line; lines without annotations must
// report nothing. A `/* want "..." */` block comment form exists so a
// want can share a line with a //-directive under test (a // comment
// would swallow it):
//
//	x := time.Now() /* want "justification" */ //cenlint:volatile
//
// Fixture packages are plain directories of .go files (not nested under
// a module); the package's import path — which decides whether the
// deterministic-package analyzers apply — is set with a
// `//lintest:importpath <path>` comment in any file, defaulting to
// "fixture/<dirname>". Imports are limited to the standard library and
// this module's own packages, type-checked against export data resolved
// once per process via `go list -export`.
//
// A fixture directory may contain helper subdirectories, each loaded as
// its own package before the main fixture (default import path
// "fixture/<dirname>/<subdirname>", overridable with its own
// //lintest:importpath). The fixture imports helpers by that path. Every
// loaded package is summarized into a shared ipa.Program, so the
// interprocedural analyzers see cross-package call chains exactly as the
// real driver would. RunAudit additionally surfaces the driver's
// unused-suppression findings.
package lintest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cendev/internal/lint/analysis"
	"cendev/internal/lint/driver"
	"cendev/internal/lint/ipa"
)

// Run type-checks the fixture package in dir, applies the analyzers
// through the driver (directive suppression included), and diffs the
// findings against the fixture's want annotations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runFixture(t, dir, false, analyzers)
}

// RunAudit is Run with the driver's suppression audit enabled: unused
// //cenlint:volatile directives surface as findings and need their own
// want annotations.
func RunAudit(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runFixture(t, dir, true, analyzers)
}

func runFixture(t *testing.T, dir string, audit bool, analyzers []*analysis.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	run := driver.RunPackage
	if audit {
		run = driver.RunPackageAudit
	}
	got, err := run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)

	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, f := range got {
			if matched[i] {
				continue
			}
			if filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line && w.re.MatchString(f.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no finding matching %q", filepath.Join(dir, w.file), w.line, w.re)
		}
	}
	for i, f := range got {
		if !matched[i] {
			t.Errorf("%s: unexpected finding: %s (%s)", dir, f, f.Analyzer)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts want annotations from every comment in the
// fixture.
func collectWants(t *testing.T, pkg *driver.Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := wantPayload(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for {
					rest = strings.TrimLeft(rest, " \t")
					if rest == "" || rest[0] != '"' {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want annotation %q", pos.Filename, pos.Line, c.Text)
					}
					expr, _ := strconv.Unquote(q)
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					out = append(out, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// wantPayload strips comment markers and returns the text after a
// leading "want" keyword, if the comment is a want annotation.
func wantPayload(text string) (string, bool) {
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text = strings.TrimLeft(text, " \t")
	if !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want\t") {
		return "", false
	}
	return text[len("want "):], true
}

// fixtureUnit is one parsed fixture directory awaiting type-check.
type fixtureUnit struct {
	dir   string
	path  string
	files []*ast.File
}

// loadFixture parses and type-checks the fixture directory (helper
// subdirectories first), summarizes every loaded package into a shared
// ipa.Program, and returns the main fixture package with Facts wired.
func loadFixture(dir string) (*driver.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	base := filepath.Base(dir)
	imports := map[string]bool{}

	var units []fixtureUnit // helpers first, main fixture last
	var subdirs []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			subdirs = append(subdirs, e.Name())
		}
	}
	sort.Strings(subdirs)
	for _, sd := range subdirs {
		u, err := parseFixtureDir(fset, filepath.Join(dir, sd), "fixture/"+base+"/"+sd, imports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	main, err := parseFixtureDir(fset, dir, "fixture/"+base, imports)
	if err != nil {
		return nil, err
	}
	units = append(units, main)

	// Locally-loaded paths resolve from this process, never from go list.
	localPaths := make([]string, len(units))
	for i, u := range units {
		localPaths[i] = u.path
		delete(imports, u.path)
	}
	lookup, err := stdlibExports(imports)
	if err != nil {
		return nil, err
	}
	imp := fixtureImporter{
		local:    map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "gc", lookup),
	}
	prog := ipa.NewProgram(ipa.DefaultConfig(), localPaths)
	var pkg *driver.Package
	for _, u := range units {
		conf := types.Config{Importer: imp}
		info := driver.NewInfo()
		tpkg, err := conf.Check(u.path, fset, u.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", u.dir, err)
		}
		imp.local[u.path] = tpkg
		prog.AddPackage(u.path, u.files, info)
		pkg = &driver.Package{
			Path: u.path, Fset: fset, Files: u.files, Types: tpkg, TypesInfo: info, Facts: prog,
		}
	}
	return pkg, nil
}

// parseFixtureDir parses one directory's .go files (non-recursive),
// folding their imports into imports and honoring //lintest:importpath.
func parseFixtureDir(fset *token.FileSet, dir, defaultPath string, imports map[string]bool) (fixtureUnit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fixtureUnit{}, err
	}
	u := fixtureUnit{dir: dir, path: defaultPath}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return fixtureUnit{}, err
		}
		u.files = append(u.files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return fixtureUnit{}, err
			}
			imports[p] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//lintest:importpath "); ok {
					u.path = strings.TrimSpace(rest)
				}
			}
		}
	}
	if len(u.files) == 0 {
		return fixtureUnit{}, fmt.Errorf("no .go files in %s", dir)
	}
	return u, nil
}

// fixtureImporter resolves locally-loaded fixture packages first, then
// falls back to export data.
type fixtureImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p := fi.local[path]; p != nil {
		return p, nil
	}
	return fi.fallback.Import(path)
}

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{} // import path -> export data file
)

// stdlibExports resolves export data for the given stdlib import paths
// (plus transitive deps) with one `go list -export` call per new batch,
// cached for the life of the test process.
func stdlibExports(paths map[string]bool) (func(string) (io.ReadCloser, error), error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for p := range paths {
		if _, ok := exportFiles[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %w\n%s", strings.Join(missing, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exportFiles[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		f, ok := exportFiles[path]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("lintest: no export data for %q (fixtures may import only the standard library and this module's packages)", path)
		}
		return os.Open(f)
	}, nil
}
