//lintest:importpath cendev/internal/simnet

// Package simnet claims the real pool owner's import path so the
// fixture's pktPool.get matches the engine's configured pool source.
// Every way a pooled packet can outlive its release point is exercised,
// alongside the sanctioned owner and Clone patterns.
package simnet

// Packet stands in for netem.Packet.
type Packet struct {
	Payload []byte
}

// Clone is the documented retention idiom: a deep copy owns its bytes.
func (p *Packet) Clone() *Packet {
	return &Packet{Payload: append([]byte(nil), p.Payload...)}
}

type pktPool struct {
	pkts []*Packet
	idx  int
}

func (pp *pktPool) get() *Packet {
	if pp.idx < len(pp.pkts) {
		p := pp.pkts[pp.idx]
		pp.idx++
		return p
	}
	p := &Packet{}
	pp.pkts = append(pp.pkts, p)
	pp.idx++
	return p
}

// Network owns the pool; stashing pooled packets in its own fields is
// the sanctioned owner pattern.
type Network struct {
	pool pktPool
	last *Packet
}

var leaked *Packet

func (n *Network) badGlobal() {
	p := n.pool.get()
	leaked = p // want "pooled value from .*pktPool.*get is stored to a package-level variable"
}

func (n *Network) badSend(ch chan *Packet) {
	ch <- n.pool.get() // want "pooled value from .*pktPool.*get is sent on a channel"
}

func (n *Network) badParamStore(keep []*Packet) {
	p := n.pool.get()
	keep[0] = p // want "pooled value from .*pktPool.*get is stored into a map or slice element"
}

// stash is the laundering helper: its summary says the second parameter
// escapes into the first.
func stash(dst []*Packet, p *Packet) {
	dst[0] = p
}

func (n *Network) badCallee(keep []*Packet) {
	p := n.pool.get()
	stash(keep, p) // want "pooled value from .*pktPool.*get handed to simnet.stash, where it is stored into a map or slice element"
}

// BadReturn hands a pooled alias to an arbitrary caller with no contract.
func (n *Network) BadReturn() *Packet {
	return n.pool.get() // want "BadReturn returns an alias of pooled storage"
}

// grab may return pooled storage — unexported, so the obligation
// propagates to its callers through the summary instead of a report.
func (n *Network) grab() *Packet {
	return n.pool.get()
}

// BadReturnIndirect launders the pooled return through grab.
func (n *Network) BadReturnIndirect() *Packet {
	return n.grab() // want "BadReturnIndirect returns an alias of pooled storage"
}

// Transmit is a sanctioned pool return: the delivery contract is
// documented and callers Clone to retain.
func (n *Network) Transmit() *Packet {
	return n.pool.get()
}

// okOwner: the pool owner stashing packets in its own fields controls
// the release point.
func (n *Network) okOwner() {
	n.last = n.pool.get()
}

// okClone retains a copy, never the pooled alias.
func (n *Network) OkClone() *Packet {
	return n.pool.get().Clone()
}

// okByteCopy retains the bytes, not the backing array.
func (n *Network) OkByteCopy() []byte {
	p := n.pool.get()
	return append([]byte(nil), p.Payload...)
}

func (n *Network) okVolatile() {
	p := n.pool.get()
	leaked = p //cenlint:volatile fixture: debug tap, cleared before the next transmit
}
