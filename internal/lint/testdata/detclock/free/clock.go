//lintest:importpath cendev/internal/topology

// Package free shows detclock staying silent outside the deterministic
// package set: the same wall-clock reads draw no findings here.
package free

import "time"

func fineNow() time.Time {
	return time.Now()
}

func fineSleep() {
	time.Sleep(time.Millisecond)
}
