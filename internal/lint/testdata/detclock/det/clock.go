//lintest:importpath cendev/internal/simnet

// Package det exercises detclock inside a deterministic package path:
// every wall-clock read is a finding unless annotated.
package det

import "time"

// Clock is the injectable pattern the analyzer pushes callers toward.
type Clock func() time.Time

func badNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "time.NewTimer"
}

func badDefault(now Clock) Clock {
	if now == nil {
		now = time.Now // want "time.Now"
	}
	return now
}

func okVolatile() time.Time {
	return time.Now() //cenlint:volatile fixture: wall-clock latency gauge, volatile series only
}

func okPrecedingLine() time.Time {
	//cenlint:volatile fixture: wall-clock latency gauge, volatile series only
	return time.Now()
}

func badBareDirective() time.Time {
	return time.Now() /* want "justification" */ //cenlint:volatile
}

func okDurationMath(d time.Duration) time.Duration {
	return d * 2 // time.Duration arithmetic never reads the clock
}

func okThreaded(now Clock) time.Time {
	return now()
}
