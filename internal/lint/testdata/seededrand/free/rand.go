//lintest:importpath cendev/internal/topology

// Package free shows seededrand staying silent outside the
// deterministic package set.
package free

import (
	crand "crypto/rand"
	"math/rand"
)

func fineGlobal() int {
	return rand.Intn(10)
}

func fineCrypto() []byte {
	b := make([]byte, 8)
	crand.Read(b)
	return b
}
