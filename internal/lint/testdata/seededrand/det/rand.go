//lintest:importpath cendev/internal/cenfuzz

// Package det exercises seededrand inside a deterministic package path:
// global math/rand functions and crypto/rand are findings; seeded
// *rand.Rand generators are the approved pattern.
package det

import (
	crand "crypto/rand" // want "crypto/rand imported in deterministic package"
	"math/rand"
)

func badGlobalIntn() int {
	return rand.Intn(10) // want "math/rand.Intn uses the process-global generator"
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle"
}

func badGlobalSeed(seed int64) {
	rand.Seed(seed) // want "math/rand.Seed"
}

func badCryptoRead() []byte {
	b := make([]byte, 8)
	crand.Read(b)
	return b
}

func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func okThreaded(r *rand.Rand) float64 {
	return r.Float64()
}

func okVolatile() float64 {
	return rand.Float64() //cenlint:volatile fixture: jitter for a wall-clock retry path, never in results
}

func badBareDirective() float64 {
	return rand.Float64() /* want "justification" */ //cenlint:volatile
}
