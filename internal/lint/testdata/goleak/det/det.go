//lintest:importpath cendev/internal/simnet

// Package det exercises goleak inside a deterministic package: a
// goroutine with no termination path is a finding, signal-driven loops
// are not.
package det

var sink int

func work() {
	sink++
}

// spin loops forever with no exit — reachable only through go
// statements, where goleak reports it.
func spin() {
	for {
		work()
	}
}

// relay is one hop between a goroutine and the unbounded loop.
func relay() {
	spin()
}

func badLit() {
	go func() {
		for { // want "goroutine loops forever with no termination path"
			work()
		}
	}()
}

func badNamed() {
	go spin() // want "goroutine runs simnet.spin, which loops forever"
}

func badIndirect() {
	go func() { // want "goroutine reaches an unstoppable loop: simnet.relay → simnet.spin"
		relay()
	}()
}

func okSelectDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			work()
		}
	}()
}

func okRangeChan(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

func okRecv(ch chan int) {
	go func() {
		for {
			<-ch
			work()
		}
	}()
}

func okBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

func okVolatile() {
	go spin() //cenlint:volatile fixture: process-lifetime ticker, killed with the process
}
