// Package free is outside the deterministic set: unstoppable goroutines
// are that package's own business.
package free

var sink int

func spin() {
	for {
		sink++
	}
}

func okNamed() {
	go spin()
}

func okLit() {
	go func() {
		for {
			sink++
		}
	}()
}
