// Package wrap exercises errwrapdir, which applies to every package:
// fmt.Errorf formatting an error operand with %v or %s loses the error
// chain; %w keeps errors.Is/As working through the wrap.
package wrap

import (
	"errors"
	"fmt"
)

func badVerbV(err error) error {
	return fmt.Errorf("reading config: %v", err) // want "use %w"
}

func badVerbS(err error) error {
	return fmt.Errorf("dial failed: %s", err) // want "use %w"
}

func badPlusV(err error) error {
	return fmt.Errorf("campaign aborted: %+v", err) // want "use %w"
}

func badExplicitIndex(err error) error {
	return fmt.Errorf("retry %[2]d failed: %[1]v", err, 3) // want "use %w"
}

func badMixed(cause, tail error) error {
	return fmt.Errorf("outer: %v inner: %w", cause, tail) // want "use %w"
}

func okWrap(err error) error {
	return fmt.Errorf("reading config: %w", err)
}

func okMultiWrap(a, b error) error {
	return fmt.Errorf("both failed: %w / %w", a, b)
}

func okNonError(n int) error {
	return fmt.Errorf("bad shard count: %v", n)
}

func okRecovered(r any) error {
	// recover() yields interface{}, not error — flattening is the only
	// option, and the analyzer must not fire.
	return fmt.Errorf("job panicked: %v", r)
}

func okErrorsNew() error {
	return errors.New("plain")
}

func okSprintf(err error) string {
	return fmt.Sprintf("log line: %v", err) // Sprintf is display, not wrapping
}

func okStarWidth(err error, w int) error {
	return fmt.Errorf("padded %*d then: %w", w, 0, err)
}

func okVolatile(err error) error {
	return fmt.Errorf("terminal boundary: %v", err) //cenlint:volatile fixture: chain deliberately cut at the API boundary
}

func badBareDirective(err error) error {
	return fmt.Errorf("terminal boundary: %v", err) /* want "justification" */ //cenlint:volatile
}
