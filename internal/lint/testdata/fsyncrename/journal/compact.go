//lintest:importpath cendev/internal/serve

// Package journal exercises fsyncrename inside a journal/store package:
// temp+rename publication without a Sync on the written handle is a
// finding.
package journal

import (
	"bufio"
	"os"
)

func badCompact(dir string) error {
	f, err := os.Create(dir + "/seg.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/seg.tmp", dir+"/seg.jsonl") // want "without f.Sync"
}

func badBufferedCompact(dir string) error {
	f, err := os.OpenFile(dir+"/seg.tmp", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("record\n"); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/seg.tmp", dir+"/seg.jsonl") // want "without f.Sync"
}

func okSyncedCompact(dir string) error {
	f, err := os.Create(dir + "/seg.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/seg.tmp", dir+"/seg.jsonl")
}

func okNoRename(dir string) error {
	f, err := os.Create(dir + "/scratch")
	if err != nil {
		return err
	}
	f.Write([]byte("scratch\n"))
	return f.Close()
}

func okVolatile(dir string) error {
	f, err := os.Create(dir + "/cache.tmp")
	if err != nil {
		return err
	}
	f.Write([]byte("cache\n"))
	f.Close()
	//cenlint:volatile fixture: advisory cache file, losing it on crash is fine
	return os.Rename(dir+"/cache.tmp", dir+"/cache")
}

func badBareDirective(dir string) error {
	f, err := os.Create(dir + "/cache.tmp")
	if err != nil {
		return err
	}
	f.Write([]byte("cache\n"))
	f.Close()
	/* want "justification" */ //cenlint:volatile
	return os.Rename(dir+"/cache.tmp", dir+"/cache")
}
