//lintest:importpath cendev/internal/serve

// Package vfsjournal exercises fsyncrename's vfs awareness: a handle
// opened through the internal/vfs filesystem seam is tracked exactly
// like an os handle, and a vfs Rename publishes exactly like os.Rename.
package vfsjournal

import (
	"os"

	"cendev/internal/vfs"
)

func badVFSCompact(fsys vfs.FS, dir string) error {
	f, err := fsys.Create(dir + "/seg.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(dir+"/seg.tmp", dir+"/seg.jsonl") // want "without f.Sync"
}

func badVFSOpenFile(fsys vfs.FS, dir string) error {
	f, err := fsys.OpenFile(dir+"/seg.tmp", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(dir+"/seg.tmp", dir+"/seg.jsonl") // want "without f.Sync"
}

func badVFSHandlePublishedByOSRename(fsys vfs.FS, dir string) error {
	f, err := fsys.Create(dir + "/seg.tmp")
	if err != nil {
		return err
	}
	f.Write([]byte("record\n"))
	f.Close()
	return os.Rename(dir+"/seg.tmp", dir+"/seg.jsonl") // want "without f.Sync"
}

func okVFSSyncedCompact(fsys vfs.FS, dir string) error {
	f, err := fsys.Create(dir + "/seg.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(dir+"/seg.tmp", dir+"/seg.jsonl")
}

func okVFSNoRename(fsys vfs.FS, dir string) error {
	f, err := fsys.Create(dir + "/scratch")
	if err != nil {
		return err
	}
	f.Write([]byte("scratch\n"))
	return f.Close()
}

func okVFSVolatile(fsys vfs.FS, dir string) error {
	f, err := fsys.Create(dir + "/cache.tmp")
	if err != nil {
		return err
	}
	f.Write([]byte("cache\n"))
	f.Close()
	//cenlint:volatile fixture: advisory cache file, losing it on crash is fine
	return fsys.Rename(dir+"/cache.tmp", dir+"/cache")
}
