//lintest:importpath cendev/internal/topology

// Package other shows fsyncrename staying silent outside the
// journal/store packages.
package other

import "os"

func fineCompact(dir string) error {
	f, err := os.Create(dir + "/seg.tmp")
	if err != nil {
		return err
	}
	f.Write([]byte("record\n"))
	f.Close()
	return os.Rename(dir+"/seg.tmp", dir+"/seg")
}
