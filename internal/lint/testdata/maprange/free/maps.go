//lintest:importpath cendev/internal/topology

// Package free shows maprange staying silent outside the deterministic
// package set.
package free

import (
	"fmt"
	"io"
)

func fineDump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
