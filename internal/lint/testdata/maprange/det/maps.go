//lintest:importpath cendev/internal/obs

// Package det exercises maprange inside a deterministic package path:
// map iteration feeding ordered output (appends left unsorted, stream
// writes, string building) is a finding; order-insensitive bodies and
// the collect-keys-then-sort idiom are not.
package det

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func badAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys, which is never sorted"
	}
	return keys
}

func okAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okAppendSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func badFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want "map iteration calls fmt.Fprintf"
	}
}

func badEncoder(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k := range m {
		enc.Encode(k) // want "map iteration calls Encode"
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "map iteration calls WriteString"
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "concatenates onto out"
	}
	return out
}

func okCounting(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // integer accumulation is order-insensitive
	}
	return sum
}

func okMapToMap(m map[string]int) map[string]int {
	inverted := make(map[string]int, len(m))
	for k, v := range m {
		inverted[k] = v * 2
	}
	return inverted
}

func okSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x) // slices iterate in index order; no finding
	}
}

func okVolatile(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //cenlint:volatile fixture: debug dump read by humans, order irrelevant
	}
}

func badBareDirective(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) /* want "justification" */ //cenlint:volatile
	}
}
