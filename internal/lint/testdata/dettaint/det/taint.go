//lintest:importpath cendev/internal/simnet

// Package det exercises dettaint inside a deterministic package path:
// any call into a module function that transitively reaches the wall
// clock or global randomness is a finding, with the witness chain.
package det

import "fixture/det/helpers"

func badDirect() int64 {
	return helpers.Stamp() // want "call into helpers.Stamp reaches time.Now"
}

func badThroughChain() int64 {
	return helpers.Jitter() // want "call into helpers.Jitter reaches time.Now .wall-clock.* helpers.Jitter → helpers.Stamp"
}

func badRand() int {
	return helpers.Roll() // want "call into helpers.Roll reaches rand.Intn .global-rand"
}

func okPure() int {
	return helpers.Pure(21)
}

func okVolatile() int64 {
	return helpers.Stamp() //cenlint:volatile fixture: latency gauge feeding a volatile-only series
}
