// Package helpers is a non-deterministic utility package: its functions
// may touch the wall clock or global randomness, and the fixture's
// deterministic package must not call the tainted ones.
package helpers

import (
	"math/rand"
	"time"
)

// Stamp reaches the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter launders the wall clock through one more hop.
func Jitter() int64 {
	return Stamp() / 2
}

// Roll reaches the process-global random generator.
func Roll() int {
	return rand.Intn(6)
}

// Pure is taint-free and callable from anywhere.
func Pure(x int) int {
	return x * 2
}
