// Package free is outside the deterministic set: the same tainted calls
// the det fixture flags must stay silent here.
package free

import "fixture/free/helpers"

func okStamp() int64 {
	return helpers.Stamp()
}
