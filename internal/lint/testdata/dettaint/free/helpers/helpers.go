// Package helpers mirrors the det fixture's helper for the free case.
package helpers

import "time"

// Stamp reaches the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}
