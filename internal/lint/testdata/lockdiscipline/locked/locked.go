//lintest:importpath cendev/internal/topology

// Package locked exercises lockdiscipline inside a lock-discipline
// package: lock-bearing copies, unpaired locks, returns inside held
// regions, and slow or parking work under a mutex.
package locked

import (
	"sync"
	"time"
)

// Guarded is the canonical mutex-bearing type.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Node is a local type with a deep Clone.
type Node struct {
	data []int
}

func (n *Node) Clone() *Node {
	return &Node{data: append([]int(nil), n.data...)}
}

func badCopyParam(g Guarded) int { // want "parameter copies lock-bearing type"
	return g.n
}

func badDeref(p *Guarded) int {
	g := *p // want "dereference copies lock-bearing type"
	return g.n
}

func badNeverUnlock(g *Guarded) {
	g.mu.Lock() // want "g.mu is locked but never unlocked"
	g.n++
}

func badReturnHeld(g *Guarded) int {
	g.mu.Lock()
	if g.n > 0 {
		return g.n // want "return while g.mu is still locked"
	}
	g.mu.Unlock()
	return 0
}

func badSendHeld(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want "channel send while holding g.mu"
}

func badRecvHeld(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n = <-ch // want "channel receive while holding g.mu"
}

func badSelectHeld(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "select with no default while holding g.mu"
	case v := <-ch:
		g.n = v
	}
}

func badSleepHeld(g *Guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding g.mu"
}

func badCloneHeld(g *Guarded, n *Node) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return n.Clone() // want "Clone.. while holding g.mu"
}

// waitAll parks on the WaitGroup — its summary marks it blocking.
func waitAll(wg *sync.WaitGroup) {
	wg.Wait()
}

func badBlockingCallee(g *Guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	waitAll(wg) // want "call while holding g.mu can park on"
}

func okDefer(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}

func okPaired(g *Guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func okUnlockBeforeReturn(g *Guarded) int {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	return v
}

func okSendAfterUnlock(g *Guarded, ch chan int) {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	ch <- v
}

func okVolatile(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n //cenlint:volatile fixture: buffered progress channel sized to the worker count
}
