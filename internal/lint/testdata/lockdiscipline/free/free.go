// Package free is outside the lock-discipline set: the same shapes the
// locked fixture flags must stay silent here.
package free

import (
	"sync"
	"time"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

func okCopy(g Guarded) int {
	return g.n
}

func okSleepHeld(g *Guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func okNeverUnlock(g *Guarded) {
	g.mu.Lock()
	g.n++
}
