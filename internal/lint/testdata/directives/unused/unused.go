//lintest:importpath cendev/internal/simnet

// Package unused exercises the driver's suppression audit: a
// //cenlint:volatile directive that suppresses nothing is itself a
// finding, so stale escape hatches cannot accumulate.
package unused

import "time"

func okUsed() time.Time {
	return time.Now() //cenlint:volatile fixture: wall-clock gauge, volatile series only
}

func okUsedLineAbove() time.Time {
	//cenlint:volatile fixture: wall-clock gauge, volatile series only
	return time.Now()
}

func badUnused() int {
	x := 1 /* want "unused //cenlint:volatile directive" */ //cenlint:volatile fixture: stale justification, nothing to suppress
	return x
}

func badBare() time.Time {
	return time.Now() /* want "needs a justification" */ //cenlint:volatile
}
