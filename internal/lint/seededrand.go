package lint

import (
	"go/ast"
	"strconv"
	"strings"

	"cendev/internal/lint/analysis"
)

// SeededRand forbids the two unseedable randomness sources in
// deterministic packages: the process-global math/rand generator (its
// state is shared across goroutines, so results depend on scheduling)
// and crypto/rand (never reproducible). Constructors — rand.New,
// rand.NewSource, rand.NewZipf, rand.NewPCG — stay legal: a *rand.Rand
// threaded from faults.DeriveSeed or an engine seed is exactly the
// approved pattern.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions and crypto/rand in deterministic packages; " +
		"thread a *rand.Rand derived from the engine seed (faults.DeriveSeed)",
	Run: runSeededRand,
}

func runSeededRand(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != "crypto/rand" {
				continue
			}
			pass.Reportf(imp.Pos(),
				"crypto/rand imported in deterministic package %s; results must be reproducible from the spec seed — derive a *math/rand.Rand via faults.DeriveSeed instead",
				pass.Pkg.Path())
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(pass.TypesInfo, sel.Sel)
			if fn == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			// New* constructors build private seeded generators — the fix,
			// not the bug.
			if strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"math/rand.%s uses the process-global generator in deterministic package %s; thread a *rand.Rand seeded from the spec (faults.DeriveSeed) so results replay byte-identically",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
