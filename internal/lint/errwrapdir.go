package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"cendev/internal/lint/analysis"
)

// ErrWrapDir requires %w — not %v or %s — when an fmt.Errorf format
// string formats an error operand. %v flattens the error into text, so
// callers lose errors.Is/errors.As through the wrap; in the campaign
// retry paths that means fault-injected transient errors can no longer
// be distinguished from terminal ones. Applies to every package (it is
// general hygiene, not a determinism invariant).
var ErrWrapDir = &analysis.Analyzer{
	Name: "errwrapdir",
	Doc:  "require %w (not %v/%s) when fmt.Errorf formats an error operand",
	Run:  runErrWrapDir,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrWrapDir(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !calleeIs(pass.TypesInfo, call, "fmt", "Errorf") {
				return true
			}
			// A spread call (Errorf(f, args...)) has no per-verb operands to
			// inspect.
			if call.Ellipsis.IsValid() || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, ref := range formatVerbs(format) {
				if ref.verb != 'v' && ref.verb != 's' {
					continue
				}
				argIdx := 1 + ref.arg
				if argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Type == nil || !types.Implements(tv.Type, errorIface) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"fmt.Errorf formats an error operand with %%%c; use %%w so callers can errors.Is/As through the wrap",
					ref.verb)
			}
			return true
		})
	}
	return nil
}

// verbRef is one formatting verb and the operand index it consumes
// (0-based over the variadic arguments).
type verbRef struct {
	verb byte
	arg  int
}

// formatVerbs maps each verb in a printf format string to its operand,
// handling %%, flags, *-widths (which consume an operand) and explicit
// [n] argument indexes.
func formatVerbs(format string) []verbRef {
	var out []verbRef
	arg := 0
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0') {
			i++
		}
		explicit := -1
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				explicit = n - 1
				i = j + 1
			}
		}
		// Width, possibly *.
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		idx := arg
		if explicit >= 0 {
			idx = explicit
			arg = explicit
		}
		out = append(out, verbRef{verb: verb, arg: idx})
		arg++
	}
	return out
}
