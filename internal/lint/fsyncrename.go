package lint

import (
	"go/ast"
	"go/types"

	"cendev/internal/lint/analysis"
)

// FsyncRename enforces the temp+rename durability contract in the
// journal/store packages (internal/serve, internal/centrace): a file
// handle that a function creates and writes must be Sync()ed before any
// os.Rename in that function publishes it. Rename-before-fsync is the
// classic crash bug — the metadata operation can reach disk before the
// data, so a power cut publishes an empty or torn segment that replay
// then trusts.
//
// The check is per-function and deliberately conservative: it only
// fires when the function both creates a file handle — os.Create /
// os.OpenFile, or Create / OpenFile on the internal/vfs filesystem
// seam — that is written (directly or by being handed to a wrapper
// like bufio.NewWriter) and never Sync()ed, *and* calls os.Rename or a
// vfs Rename. Renames of files written elsewhere are out of scope.
var FsyncRename = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc: "in journal/store packages, require Sync() on written file handles before " +
		"a rename (os.Rename or vfs.FS.Rename) publishes them (temp+rename compaction contract)",
	Run: runFsyncRename,
}

// vfsPkg is the filesystem seam whose Create/OpenFile/Rename methods
// fsyncrename tracks exactly like their package-os counterparts.
const vfsPkg = "cendev/internal/vfs"

// fileState tracks one created *os.File within a function.
type fileState struct {
	written bool
	synced  bool
}

func runFsyncRename(pass *analysis.Pass) error {
	if !pathIn(pass.Pkg.Path(), journalPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncRenames(pass, fd.Body)
		}
	}
	return nil
}

func checkFuncRenames(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	files := map[types.Object]*fileState{}
	var renames []*ast.CallExpr

	// Pass 1: find created file handles.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if !calleeIs(info, call, "os", "Create") && !calleeIs(info, call, "os", "OpenFile") &&
			!calleeIsMethod(info, call, vfsPkg, "Create", "OpenFile") {
			return true
		}
		if len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			files[obj] = &fileState{}
		}
		return true
	})
	if len(files) == 0 {
		return
	}

	// Pass 2: classify every use of each handle, and collect renames.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeIs(info, call, "os", "Rename") || calleeIsMethod(info, call, vfsPkg, "Rename") {
			renames = append(renames, call)
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if st, tracked := files[info.Uses[id]]; tracked {
					switch sel.Sel.Name {
					case "Sync":
						st.synced = true
					case "Close", "Name", "Stat", "Seek":
						// neutral
					default:
						st.written = true
					}
					return true
				}
			}
		}
		// A handle passed as an argument (bufio.NewWriter(f),
		// json.NewEncoder(f), io.Copy(f, r), …) is presumed written.
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if st, tracked := files[info.Uses[id]]; tracked {
					st.written = true
				}
			}
		}
		return true
	})
	if len(renames) == 0 {
		return
	}

	for obj, st := range files {
		if st.written && !st.synced {
			pass.Reportf(renames[0].Pos(),
				"a rename publishes a file in a function that writes %s without %s.Sync(); fsync before rename, or a crash can publish an empty or torn segment",
				obj.Name(), obj.Name())
		}
	}
}
