// Package ipa is cenlint's interprocedural analysis engine. The PR-5
// analyzers are per-function and syntactic, which leaves a blind spot
// the repo's determinism promise cannot afford: a time.Now() laundered
// through a helper in a "free" package, a pooled packet retained past
// its release point, or a goroutine parked forever all pass a
// per-function gate. ipa closes the gap with per-function summaries —
// which taint sources a function transitively reaches, how its
// parameters escape, whether it returns pooled storage, whether it
// blocks, whether it loops without a termination signal — computed
// bottom-up over the package import DAG (Go bans import cycles, so a
// package's callees outside itself are always summarized first) and a
// bounded fixpoint within each package for local recursion.
//
// Summaries are deliberately position-free so the driver can serialize
// a package's resolved facts and cache them keyed by input hashes;
// diagnostics always come from re-walking the AST of the package under
// analysis with the resolved facts of everything it calls.
//
// Soundness posture: the engine over-approximates through function
// values and closures (a referenced local function counts as called)
// and under-approximates through interfaces (a dynamic call resolves to
// no summary). Both edges are documented per analyzer; the fixtures pin
// the intended behavior.
package ipa

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// Kind names a class of nondeterminism source.
type Kind string

const (
	// KindWallClock marks functions that read or wait on the wall clock.
	KindWallClock Kind = "wall-clock"
	// KindGlobalRand marks functions that draw from the process-global
	// math/rand generator or from crypto/rand.
	KindGlobalRand Kind = "global-rand"
)

// TaintEdge records how a function reaches a taint source: Via is the
// next callee toward the source ("" when the function reads the source
// directly), Src is the originating call for the chain's tail, e.g.
// "time.Now".
type TaintEdge struct {
	Via string `json:"via,omitempty"`
	Src string `json:"src"`
}

// ParamFlow summarizes what a function does with one parameter.
type ParamFlow struct {
	// Escapes: the parameter is stored to a heap location that outlives
	// the call (field, map or slice element, package-level variable),
	// sent on a channel, or handed to a callee that does one of those.
	Escapes bool `json:"escapes,omitempty"`
	// How describes the escape for diagnostics.
	How string `json:"how,omitempty"`
	// Via is the callee the escape happens through, if indirect.
	Via string `json:"via,omitempty"`
	// Returned: the parameter (or an alias of it) is returned, so the
	// caller's result aliases the argument.
	Returned bool `json:"returned,omitempty"`
}

// Summary is one function's position-free fact set.
type Summary struct {
	// Fn is the types.Func FullName — the cross-package stable key.
	Fn string `json:"fn"`
	// Pkg is the declaring package path.
	Pkg string `json:"pkg"`
	// Taints maps each reached source kind to its witness edge.
	Taints map[Kind]TaintEdge `json:"taints,omitempty"`
	// Calls lists local (module-internal) callees by FullName, sorted.
	Calls []string `json:"calls,omitempty"`
	// Params describes receiver-less parameter flow, one entry per
	// declared parameter in order (variadic last).
	Params []ParamFlow `json:"params,omitempty"`
	// ReturnsPooled: a return value aliases pool-owned storage.
	ReturnsPooled bool `json:"returns_pooled,omitempty"`
	// PooledVia is the pool source (or intermediate callee) the returned
	// alias came from.
	PooledVia string `json:"pooled_via,omitempty"`
	// Blocks: the function can park on a channel operation, select,
	// WaitGroup.Wait, or a blocking callee.
	Blocks bool `json:"blocks,omitempty"`
	// BlocksOn describes the direct blocking operation; BlocksVia the
	// callee for indirect blocking.
	BlocksOn  string `json:"blocks_on,omitempty"`
	BlocksVia string `json:"blocks_via,omitempty"`
	// Unbounded: the function contains (or always reaches) a `for {}`
	// loop with no return, break, channel receive, or select inside —
	// a goroutine running it can never be stopped.
	Unbounded    bool   `json:"unbounded,omitempty"`
	UnboundedVia string `json:"unbounded_via,omitempty"`
}

func (s *Summary) taint(k Kind) (TaintEdge, bool) {
	if s == nil || s.Taints == nil {
		return TaintEdge{}, false
	}
	e, ok := s.Taints[k]
	return e, ok
}

// equal reports whether two summaries carry identical facts. Used to
// detect the fixpoint.
func (s *Summary) equal(o *Summary) bool {
	if (s == nil) != (o == nil) {
		return false
	}
	if s == nil {
		return true
	}
	if s.Fn != o.Fn || s.Pkg != o.Pkg || s.ReturnsPooled != o.ReturnsPooled ||
		s.PooledVia != o.PooledVia || s.Blocks != o.Blocks || s.BlocksOn != o.BlocksOn ||
		s.BlocksVia != o.BlocksVia || s.Unbounded != o.Unbounded || s.UnboundedVia != o.UnboundedVia {
		return false
	}
	if len(s.Taints) != len(o.Taints) || len(s.Calls) != len(o.Calls) || len(s.Params) != len(o.Params) {
		return false
	}
	for k, v := range s.Taints {
		if o.Taints[k] != v {
			return false
		}
	}
	for i := range s.Calls {
		if s.Calls[i] != o.Calls[i] {
			return false
		}
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// Config declares the engine's source and contract tables. It is part
// of the summary-cache key (via the driver's cache version), so changes
// here must bump driver.CacheVersion.
type Config struct {
	// WallClock maps package path -> function names that read or wait on
	// the wall clock.
	WallClock map[string]map[string]bool
	// PoolSources are FullNames of functions whose results alias pooled
	// storage valid only until the owner's next release point.
	PoolSources map[string]bool
	// SanctionedPoolReturns are exported functions allowed to return
	// pooled values — the documented delivery APIs whose contract the
	// callers are expected to know (DESIGN.md §14).
	SanctionedPoolReturns map[string]bool
}

// WallClockFuncs are the time package functions that read or wait on
// the wall clock; shared with the detclock analyzer so the syntactic
// and interprocedural checks can never drift apart.
var WallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// DefaultConfig returns the repo's production engine configuration.
func DefaultConfig() Config {
	return Config{
		WallClock: map[string]map[string]bool{"time": WallClockFuncs},
		PoolSources: map[string]bool{
			// simnet's per-layer delivery pools: packets are reclaimed
			// wholesale at the top of the next Transmit.
			"(*cendev/internal/simnet.pktPool).get": true,
			// wire.Reader.Next returns a sub-slice of the reader's buffer:
			// valid until the reader (or the buffer it wraps) is reused.
			"(*cendev/internal/wire.Reader).Next": true,
		},
		SanctionedPoolReturns: map[string]bool{
			// The documented batch-delivery API: pooled packets are valid
			// until the next Transmit, callers Clone to retain.
			"(*cendev/internal/simnet.Network).Transmit": true,
			// Transient probe primitives: thin wrappers over Transmit that
			// forward its deliveries under the same validity contract
			// (documented on each method).
			"(*cendev/internal/simnet.Conn).SendPayload": true,
			"(*cendev/internal/simnet.Network).SendUDP":  true,
		},
	}
}

// SourceOf classifies a referenced function as a taint source. Beyond
// the configured wall-clock table it hardwires the global-randomness
// rule detclock's sibling seededrand enforces syntactically: any
// non-constructor math/rand function (the process-global generator) and
// anything in crypto/rand.
func (c Config) SourceOf(fn *types.Func) (Kind, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if names, ok := c.WallClock[path]; ok && names[fn.Name()] {
		return KindWallClock, true
	}
	switch path {
	case "math/rand", "math/rand/v2":
		if len(fn.Name()) < 3 || fn.Name()[:3] != "New" {
			return KindGlobalRand, true
		}
	case "crypto/rand":
		return KindGlobalRand, true
	}
	return "", false
}

// PackageFacts is one package's resolved summaries — the serializable
// unit the driver caches.
type PackageFacts struct {
	Pkg   string              `json:"pkg"`
	Funcs map[string]*Summary `json:"funcs"`
}

// Program holds the resolved summaries of every package added so far.
// It is safe for concurrent use: the driver analyzes independent
// packages in parallel, each publishing its facts before dependents
// start.
type Program struct {
	cfg   Config
	local map[string]bool

	mu    sync.RWMutex
	funcs map[string]*Summary
}

// NewProgram returns an empty program. localPkgs are the package paths
// whose functions will be summarized — call edges into any other
// package resolve to intrinsics (taint sources) or nothing.
func NewProgram(cfg Config, localPkgs []string) *Program {
	local := make(map[string]bool, len(localPkgs))
	for _, p := range localPkgs {
		local[p] = true
	}
	return &Program{cfg: cfg, local: local, funcs: map[string]*Summary{}}
}

// Config returns the engine configuration.
func (p *Program) Config() Config { return p.cfg }

// IsLocal reports whether pkgPath's functions are summarized.
func (p *Program) IsLocal(pkgPath string) bool { return p.local[pkgPath] }

// Summary returns the resolved summary for a FullName, or nil.
func (p *Program) Summary(fullName string) *Summary {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.funcs[fullName]
}

// Of returns the resolved summary for a *types.Func, or nil.
func (p *Program) Of(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return p.Summary(fn.FullName())
}

// AddFacts publishes pre-resolved facts (the cache-hit path).
func (p *Program) AddFacts(pf *PackageFacts) {
	if pf == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range pf.Funcs {
		p.funcs[k] = v
	}
}

// maxRounds bounds the within-package fixpoint. Facts are monotone and
// package-local recursion cycles are short, so this is generous.
const maxRounds = 10

// AddPackage extracts and resolves summaries for one package whose
// module-internal dependencies have already been added, publishes them,
// and returns the serializable facts. files/info must describe the
// type-checked package at pkgPath.
func (p *Program) AddPackage(pkgPath string, files []*ast.File, info *types.Info) *PackageFacts {
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	cur := map[string]*Summary{}
	lookup := func(name string) *Summary {
		if s, ok := cur[name]; ok {
			return s
		}
		return p.Summary(name)
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fd := range decls {
			s := p.extractFunc(pkgPath, fd, info, lookup)
			if s == nil {
				continue
			}
			if !s.equal(cur[s.Fn]) {
				cur[s.Fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	p.mu.Lock()
	for k, v := range cur {
		p.funcs[k] = v
	}
	p.mu.Unlock()
	return &PackageFacts{Pkg: pkgPath, Funcs: cur}
}

// TaintChain reconstructs the witness call chain from fullName to its
// taint source of kind k: ["a.F", "b.G", "time.Now"]. Returns nil when
// the function is untainted or unknown.
func (p *Program) TaintChain(fullName string, k Kind) []string {
	var chain []string
	cur := fullName
	for depth := 0; depth < 64; depth++ {
		s := p.Summary(cur)
		e, ok := s.taint(k)
		if !ok {
			return nil
		}
		chain = append(chain, cur)
		if e.Via == "" {
			return append(chain, e.Src)
		}
		cur = e.Via
	}
	return append(chain, "…")
}

// UnboundedChain reconstructs the witness chain from fullName to the
// function owning the unbounded loop (inclusive). Nil when bounded.
func (p *Program) UnboundedChain(fullName string) []string {
	var chain []string
	cur := fullName
	for depth := 0; depth < 64; depth++ {
		s := p.Summary(cur)
		if s == nil || !s.Unbounded {
			return nil
		}
		chain = append(chain, cur)
		if s.UnboundedVia == "" {
			return chain
		}
		cur = s.UnboundedVia
	}
	return append(chain, "…")
}

// BlockChain reconstructs the witness chain from fullName to the
// function with the direct blocking operation, returning the chain and
// the operation description. ok is false when the function is unknown
// or does not block.
func (p *Program) BlockChain(fullName string) (chain []string, op string, ok bool) {
	cur := fullName
	for depth := 0; depth < 64; depth++ {
		s := p.Summary(cur)
		if s == nil || !s.Blocks {
			return nil, "", false
		}
		chain = append(chain, cur)
		if s.BlocksVia == "" {
			return chain, s.BlocksOn, true
		}
		cur = s.BlocksVia
	}
	return append(chain, "…"), "blocking call", true
}

// FormatChain renders a witness chain for diagnostics: "a → b → c".
func FormatChain(chain []string) string {
	out := ""
	for i, c := range chain {
		if i > 0 {
			out += " → "
		}
		out += ShortName(c)
	}
	return out
}

// ShortName compresses a FullName for diagnostics: the package path is
// reduced to its last element ("cendev/internal/topology.FlowHash" →
// "topology.FlowHash", "(*cendev/internal/simnet.Network).Transmit" →
// "(*simnet.Network).Transmit").
func ShortName(full string) string {
	out := make([]byte, 0, len(full))
	seg := 0 // length of out at the start of the current path segment
	for i := 0; i < len(full); i++ {
		c := full[i]
		if c == '/' {
			out = out[:seg] // the segment was a path element, not the last one
			continue
		}
		out = append(out, c)
		if c == '(' || c == '*' {
			seg = len(out)
		}
	}
	return string(out)
}

// sortedKeys returns the map's keys in sorted order — every iteration
// that can influence a witness choice goes through this, so resolved
// facts are independent of map order and worker scheduling.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
