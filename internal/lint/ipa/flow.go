package ipa

// Value-flow scan: tracks which local values alias pooled storage or a
// parameter, and classifies where those values end up. Extraction uses
// the result to fill ParamFlow/ReturnsPooled (position-free); the
// poolescape analyzer re-runs the same scan over the package under
// analysis and turns pool-rooted sink events into diagnostics — one
// scan, two consumers, so facts and findings cannot disagree.
//
// Roots are strings: "pool:<FullName of the pool source>" or
// "param:<index>". A value carries a SET of roots — a delivery buffer
// can alias both a pooled packet and a parameter at once, and dropping
// either loses a finding. Method calls on a carrying value
// (pkt.Clone()) deliberately do not carry — copying is the documented
// way to retain a pooled value.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Sink classifies where a tracked value ended up.
type Sink int

const (
	// SinkGlobal: stored to a package-level variable.
	SinkGlobal Sink = iota
	// SinkMapOrSlice: stored into a map or slice element whose container
	// is not a local variable.
	SinkMapOrSlice
	// SinkField: stored into a field of a non-receiver value (a
	// parameter's field, or through a pointer).
	SinkField
	// SinkReceiverField: stored into a field of the method's own
	// receiver — the sanctioned owner pattern for pooled values.
	SinkReceiverField
	// SinkSend: sent on a channel.
	SinkSend
	// SinkReturn: returned from the function.
	SinkReturn
	// SinkCallee: passed to a callee whose summary says that parameter
	// escapes.
	SinkCallee
)

func (s Sink) String() string {
	switch s {
	case SinkGlobal:
		return "stored to a package-level variable"
	case SinkMapOrSlice:
		return "stored into a map or slice element"
	case SinkField:
		return "stored into a field"
	case SinkReceiverField:
		return "stored into a receiver field"
	case SinkSend:
		return "sent on a channel"
	case SinkReturn:
		return "returned"
	case SinkCallee:
		return "passed to an escaping callee"
	}
	return "unknown sink"
}

// Flow is one sink event for one root of a tracked value.
type Flow struct {
	Pos    token.Pos
	Root   string // "pool:<full>" or "param:<i>"
	Sink   Sink
	Target string // rendering of the sink destination
	Via    string // callee FullName for SinkCallee
	How    string // callee's escape description for SinkCallee
}

// FlowResult is everything one scan learned about a function body.
type FlowResult struct {
	Flows         []Flow // in source order, roots sorted within a site
	Params        []ParamFlow
	ReturnsPooled bool
	PooledVia     string
}

// ScanFlows runs the value-flow scan over one function declaration.
// lookup resolves callee summaries (nil for unknown/non-local callees —
// a documented blind spot: values handed to unsummarized functions are
// assumed not to escape).
func ScanFlows(fd *ast.FuncDecl, info *types.Info, cfg Config, lookup func(string) *Summary) *FlowResult {
	fs := &flowScanner{
		info:     info,
		cfg:      cfg,
		lookup:   lookup,
		carrying: map[types.Object]map[string]bool{},
		funclits: map[types.Object]*ast.FuncLit{},
		cleansed: map[types.Object]bool{},
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		fs.recv = info.Defs[fd.Recv.List[0].Names[0]]
	}
	fs.paramIdx = map[types.Object]int{}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++ // unnamed parameter occupies a slot but has no object
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				fs.paramIdx[obj] = idx
				if aliasingType(obj.Type(), 0) {
					fs.carrying[obj] = map[string]bool{"param:" + strconv.Itoa(idx): true}
				}
			}
			idx++
		}
	}
	fs.res.Params = make([]ParamFlow, idx)

	// Pre-pass: function literals bound to local variables (calls to the
	// variable bind arguments to the literal's parameters — the simnet
	// deliver-closure pattern) and Clone-cleansed locals (a local whose
	// aliasing field is overwritten with a Clone() result is a copy-out
	// holder, the documented retention pattern — it never carries).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if lit, ok := unparen(n.Rhs[i]).(*ast.FuncLit); ok {
							if obj := fs.objOf(id); obj != nil {
								fs.funclits[obj] = lit
							}
						}
					}
					if sel, ok := unparen(n.Lhs[i]).(*ast.SelectorExpr); ok && isCloneCall(n.Rhs[i]) {
						if id, ok := baseIdent(sel.X); ok {
							fs.cleansed[fs.objOf(id)] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					if lit, ok := unparen(n.Values[i]).(*ast.FuncLit); ok {
						if obj := info.Defs[n.Names[i]]; obj != nil {
							fs.funclits[obj] = lit
						}
					}
				}
			}
		}
		return true
	})

	// Propagation fixpoint: grow the carrying sets until stable. The
	// sets only grow, so termination is bounded by roots × objects.
	for round := 0; round < maxRounds; round++ {
		fs.changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			fs.propagate(n)
			return true
		})
		if !fs.changed {
			break
		}
	}

	// Sink pass: classify every use of a carrying value.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fs.sinks(n)
		return true
	})
	return &fs.res
}

type flowScanner struct {
	info     *types.Info
	cfg      Config
	lookup   func(string) *Summary
	recv     types.Object
	paramIdx map[types.Object]int
	carrying map[types.Object]map[string]bool
	funclits map[types.Object]*ast.FuncLit
	cleansed map[types.Object]bool
	changed  bool
	res      FlowResult
}

func (fs *flowScanner) objOf(id *ast.Ident) types.Object {
	if obj := fs.info.Defs[id]; obj != nil {
		return obj
	}
	return fs.info.Uses[id]
}

func (fs *flowScanner) addRoots(obj types.Object, roots map[string]bool) {
	if obj == nil || len(roots) == 0 || fs.cleansed[obj] {
		return
	}
	m := fs.carrying[obj]
	if m == nil {
		m = map[string]bool{}
		fs.carrying[obj] = m
	}
	for r := range roots {
		if !m[r] {
			m[r] = true
			fs.changed = true
		}
	}
}

// isLocalVar reports whether obj is a function-local variable — neither
// a parameter, the receiver, nor package-level.
func (fs *flowScanner) isLocalVar(obj types.Object) bool {
	if obj == nil || obj == fs.recv {
		return false
	}
	if _, isParam := fs.paramIdx[obj]; isParam {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() == nil || v.Parent() != v.Pkg().Scope()
}

func (fs *flowScanner) isPkgVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootsOf resolves the set of roots an expression may alias. An
// expression whose static type cannot hold a reference (bool, numbers,
// a string read out of a struct — strings are immutable and built by
// copy) never carries, which keeps scalar reads from tainting whole
// result structs.
func (fs *flowScanner) rootsOf(e ast.Expr) map[string]bool {
	if t := fs.typeOf(e); t != nil && !aliasingType(t, 0) {
		return nil
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return fs.carrying[fs.objOf(e)]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fs.rootsOf(e.X)
		}
	case *ast.StarExpr:
		return fs.rootsOf(e.X)
	case *ast.SliceExpr:
		return fs.rootsOf(e.X)
	case *ast.IndexExpr:
		return fs.rootsOf(e.X)
	case *ast.SelectorExpr:
		// A field read from a carrying struct value carries.
		return fs.rootsOf(e.X)
	case *ast.TypeAssertExpr:
		return fs.rootsOf(e.X)
	case *ast.KeyValueExpr:
		return fs.rootsOf(e.Value)
	case *ast.CompositeLit:
		var out map[string]bool
		for _, el := range e.Elts {
			out = unionRoots(out, fs.rootsOf(el))
		}
		return out
	case *ast.CallExpr:
		return fs.callRoots(e)
	}
	return nil
}

func unionRoots(a, b map[string]bool) map[string]bool {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = map[string]bool{}
	}
	for r := range b {
		a[r] = true
	}
	return a
}

// callRoots resolves what a call expression's result may alias.
func (fs *flowScanner) callRoots(call *ast.CallExpr) map[string]bool {
	// Conversions are pass-throughs: []byte(p), Payload(p).
	if tv, ok := fs.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fs.rootsOf(call.Args[0])
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fs.info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				// The result shares the first argument's backing array.
				out := unionRoots(nil, fs.rootsOf(call.Args[0]))
				// Appended elements are copied by value: they alias through
				// only when the element type itself can hold a reference
				// (append(out, pooledPkt) carries; append([]byte(nil), p...)
				// is the byte-copy retention idiom and does not).
				var elemAliases = true
				if t := fs.typeOf(call); t != nil {
					if st, ok := t.Underlying().(*types.Slice); ok {
						elemAliases = aliasingType(st.Elem(), 0)
					}
				}
				if elemAliases {
					for _, a := range call.Args[1:] {
						out = unionRoots(out, fs.rootsOf(a))
					}
				}
				return out
			}
			return nil // len, cap, copy, make, new, …
		}
	}
	fn := CalleeOf(fs.info, call)
	if fn == nil {
		return nil
	}
	full := fn.FullName()
	if fs.cfg.PoolSources[full] {
		return map[string]bool{"pool:" + full: true}
	}
	cs := fs.lookup(full)
	if cs == nil {
		return nil
	}
	var out map[string]bool
	if cs.ReturnsPooled {
		src := cs.PooledVia
		if src == "" {
			src = full
		}
		out = unionRoots(out, map[string]bool{"pool:" + src: true})
	}
	// A callee that returns one of its parameters aliases that argument.
	for i, a := range call.Args {
		j := calleeParamIndex(fn, i)
		if j < len(cs.Params) && cs.Params[j].Returned {
			out = unionRoots(out, fs.rootsOf(a))
		}
	}
	return out
}

// calleeParamIndex maps an argument index to the callee's parameter
// index, folding variadic tails onto the last parameter.
func calleeParamIndex(fn *types.Func, argIdx int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return argIdx
	}
	if sig.Variadic() && argIdx >= sig.Params().Len()-1 {
		return sig.Params().Len() - 1
	}
	return argIdx
}

// propagate grows the carrying sets from one node.
func (fs *flowScanner) propagate(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			// Multi-value: payload, ok := r.Next(). Mark every LHS; the
			// non-reference results are filtered by their types.
			if roots := fs.rootsOf(n.Rhs[0]); len(roots) > 0 {
				for _, l := range n.Lhs {
					fs.propagateAssign(l, roots)
				}
			}
			return
		}
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			if roots := fs.rootsOf(n.Rhs[i]); len(roots) > 0 {
				fs.propagateAssign(n.Lhs[i], roots)
			}
		}
	case *ast.ValueSpec:
		if len(n.Names) != len(n.Values) {
			return
		}
		for i := range n.Names {
			if roots := fs.rootsOf(n.Values[i]); len(roots) > 0 {
				fs.addRoots(fs.info.Defs[n.Names[i]], roots)
			}
		}
	case *ast.RangeStmt:
		if roots := fs.rootsOf(n.X); len(roots) > 0 {
			if id, ok := n.Value.(*ast.Ident); ok {
				fs.addRoots(fs.objOf(id), roots)
			}
		}
	case *ast.CallExpr:
		fs.bindFuncLitArgs(n)
	}
}

// propagateAssign records what an assignment target now holds, without
// emitting events (the sink pass does that).
func (fs *flowScanner) propagateAssign(lhs ast.Expr, roots map[string]bool) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if obj := fs.objOf(lhs); fs.isLocalVar(obj) {
			fs.addRoots(obj, roots)
		}
	case *ast.IndexExpr:
		// s[i] = p: a local container now holds the value.
		if id, ok := baseIdent(lhs.X); ok {
			if obj := fs.objOf(id); fs.isLocalVar(obj) {
				fs.addRoots(obj, roots)
			}
		}
	case *ast.SelectorExpr:
		// v.f = p: a local struct now holds the value.
		if id, ok := baseIdent(lhs.X); ok {
			if obj := fs.objOf(id); fs.isLocalVar(obj) {
				fs.addRoots(obj, roots)
			}
		}
	}
}

// bindFuncLitArgs joins a called function literal's parameters to the
// carrying set: deliver(pkt, hop) where deliver := func(resp, h) {…}.
func (fs *flowScanner) bindFuncLitArgs(call *ast.CallExpr) {
	var lit *ast.FuncLit
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		lit = fun
	case *ast.Ident:
		if obj := fs.objOf(fun); obj != nil {
			lit = fs.funclits[obj]
		}
	}
	if lit == nil {
		return
	}
	var litParams []types.Object
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			litParams = append(litParams, nil)
			continue
		}
		for _, name := range field.Names {
			litParams = append(litParams, fs.info.Defs[name])
		}
	}
	for i, a := range call.Args {
		if i >= len(litParams) {
			break
		}
		if roots := fs.rootsOf(a); len(roots) > 0 {
			fs.addRoots(litParams[i], roots)
		}
	}
}

// sinks records sink events from one node.
func (fs *flowScanner) sinks(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			if roots := fs.rootsOf(n.Rhs[0]); len(roots) > 0 {
				for _, l := range n.Lhs {
					fs.sinkAssign(l, roots)
				}
			}
			return
		}
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			if roots := fs.rootsOf(n.Rhs[i]); len(roots) > 0 {
				fs.sinkAssign(n.Lhs[i], roots)
			}
		}
	case *ast.SendStmt:
		for _, root := range sortedKeys(fs.rootsOf(n.Value)) {
			fs.event(Flow{Pos: n.Arrow, Root: root, Sink: SinkSend, Target: types.ExprString(n.Chan)})
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			for _, root := range sortedKeys(fs.rootsOf(r)) {
				fs.event(Flow{Pos: n.Return, Root: root, Sink: SinkReturn})
			}
		}
	case *ast.CallExpr:
		fs.sinkCallArgs(n)
	}
}

// sinkAssign classifies an assignment of a carrying value.
func (fs *flowScanner) sinkAssign(lhs ast.Expr, roots map[string]bool) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if obj := fs.objOf(l); fs.isPkgVar(obj) {
			for _, root := range sortedKeys(roots) {
				fs.event(Flow{Pos: l.Pos(), Root: root, Sink: SinkGlobal, Target: l.Name})
			}
		}
	case *ast.IndexExpr:
		fs.sinkContainer(l, l.X, roots, SinkMapOrSlice)
	case *ast.SelectorExpr:
		fs.sinkContainer(l, l.X, roots, SinkField)
	case *ast.StarExpr:
		for _, root := range sortedKeys(roots) {
			fs.event(Flow{Pos: l.Pos(), Root: root, Sink: SinkField, Target: types.ExprString(l)})
		}
	}
}

// sinkContainer classifies a store into base's element or field.
func (fs *flowScanner) sinkContainer(lhs ast.Expr, base ast.Expr, roots map[string]bool, fallback Sink) {
	id, ok := baseIdent(base)
	if !ok {
		return // call-result or other unresolvable base: skip, not flag
	}
	obj := fs.objOf(id)
	for _, root := range sortedKeys(roots) {
		if obj != nil && fs.carrying[obj][root] {
			// Storing a value back into a container that already shares its
			// root (the in-place sort/swap pattern) moves nothing across an
			// ownership boundary.
			continue
		}
		switch {
		case obj != nil && obj == fs.recv:
			fs.event(Flow{Pos: lhs.Pos(), Root: root, Sink: SinkReceiverField, Target: types.ExprString(lhs)})
		case fs.isLocalVar(obj):
			// Local container: propagation, not an event.
		case fs.isPkgVar(obj):
			fs.event(Flow{Pos: lhs.Pos(), Root: root, Sink: SinkGlobal, Target: types.ExprString(lhs)})
		default:
			// Parameter (or receiver-less base): the store outlives the call.
			fs.event(Flow{Pos: lhs.Pos(), Root: root, Sink: fallback, Target: types.ExprString(lhs)})
		}
	}
}

// sinkCallArgs flags carrying values handed to callees whose summary
// says the parameter escapes.
func (fs *flowScanner) sinkCallArgs(call *ast.CallExpr) {
	fn := CalleeOf(fs.info, call)
	if fn == nil {
		return // builtins, funclit vars (bodies are scanned directly), dynamic calls
	}
	cs := fs.lookup(fn.FullName())
	if cs == nil {
		return
	}
	for i, a := range call.Args {
		roots := fs.rootsOf(a)
		if len(roots) == 0 {
			continue
		}
		j := calleeParamIndex(fn, i)
		if j < len(cs.Params) && cs.Params[j].Escapes {
			for _, root := range sortedKeys(roots) {
				fs.event(Flow{
					Pos: a.Pos(), Root: root, Sink: SinkCallee,
					Target: types.ExprString(a), Via: fn.FullName(), How: cs.Params[j].How,
				})
			}
		}
	}
}

// event records a flow and folds it into Params/ReturnsPooled.
func (fs *flowScanner) event(f Flow) {
	fs.res.Flows = append(fs.res.Flows, f)
	if rest, ok := strings.CutPrefix(f.Root, "param:"); ok {
		i, err := strconv.Atoi(rest)
		if err != nil || i >= len(fs.res.Params) {
			return
		}
		pf := &fs.res.Params[i]
		switch f.Sink {
		case SinkReturn:
			pf.Returned = true
		case SinkReceiverField, SinkGlobal, SinkMapOrSlice, SinkField, SinkSend:
			if !pf.Escapes {
				pf.Escapes, pf.How = true, f.Sink.String()
			}
		case SinkCallee:
			if !pf.Escapes {
				pf.Escapes = true
				pf.Via = f.Via
				pf.How = fmt.Sprintf("passed to %s (%s)", ShortName(f.Via), f.How)
			}
		}
		return
	}
	if f.Sink == SinkReturn && strings.HasPrefix(f.Root, "pool:") {
		src := strings.TrimPrefix(f.Root, "pool:")
		if !fs.res.ReturnsPooled || src < fs.res.PooledVia {
			fs.res.ReturnsPooled = true
			fs.res.PooledVia = src
		}
	}
}

// typeOf resolves an expression's static type, falling back to the
// identifier's object for idents the Types map omits.
func (fs *flowScanner) typeOf(e ast.Expr) types.Type {
	if tv, ok := fs.info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := fs.objOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// valueTypes are named types that contain a pointer internally but are
// immutable values in practice — copying one can never smuggle out a
// handle to pooled storage (netip.Addr's pointer is an interned zone
// sentinel; time.Time's is a shared *Location).
var valueTypes = map[string]bool{
	"net/netip.Addr":     true,
	"net/netip.AddrPort": true,
	"net/netip.Prefix":   true,
	"time.Time":          true,
}

// aliasingType reports whether a value of type t can hold a reference
// into pooled storage: pointers, slices, maps, interfaces, functions
// (closures capture), and aggregates containing any of those. Scalars,
// strings (immutable, built by copy), channels, and the immutable
// valueTypes cannot.
func aliasingType(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // unresolvable: stay conservative
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && valueTypes[obj.Pkg().Path()+"."+obj.Name()] {
			return false
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Chan:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasingType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return aliasingType(u.Elem(), depth+1)
	}
	return true
}

// isCloneCall reports whether e is a call to a method named Clone — the
// documented deep-copy retention idiom.
func isCloneCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Clone"
}

// baseIdent unwraps selector/index/star/paren chains to the leftmost
// identifier: a.b[i].c → a.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
