package ipa

// Summary extraction: one pass per function per fixpoint round. The
// scans are deliberately layered — reference scan (taint + call graph),
// blocking scan, unbounded-loop scan, and the shared value-flow scan
// (ScanFlows) that both extraction and the poolescape analyzer use, so
// the facts the cache serves and the diagnostics the analyzer reports
// can never disagree.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// extractFunc builds the summary for one function declaration, folding
// in the resolved facts of callees via lookup.
func (p *Program) extractFunc(pkgPath string, fd *ast.FuncDecl, info *types.Info, lookup func(string) *Summary) *Summary {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok || obj == nil {
		return nil
	}
	if fd.Recv == nil && (fd.Name.Name == "init" || fd.Name.Name == "_") {
		// init functions are uncallable and may legally exist many times
		// per package; a FullName-keyed map cannot hold them.
		return nil
	}
	s := &Summary{Fn: obj.FullName(), Pkg: pkgPath}

	// Reference scan: direct taint sources and the local call graph.
	// Function values count as calls — a referenced closure or callback
	// may run, so taint must flow through it (over-approximation, see
	// the package comment).
	calls := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if kind, isSrc := p.cfg.SourceOf(fn); isSrc {
			src := fn.Pkg().Name() + "." + fn.Name()
			if cur, ok := s.taint(kind); !ok || src < cur.Src {
				if s.Taints == nil {
					s.Taints = map[Kind]TaintEdge{}
				}
				s.Taints[kind] = TaintEdge{Src: src}
			}
			return true
		}
		if p.local[fn.Pkg().Path()] && fn.FullName() != s.Fn {
			calls[fn.FullName()] = true
		}
		return true
	})
	s.Calls = sortedKeys(calls)

	// Blocking scan: the function's own body only. Function literals are
	// excluded — a closure may be deferred, parked in a goroutine, or
	// never invoked, so its parking behavior is not the function's.
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		if s.Blocks {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			s.Blocks, s.BlocksOn = true, "a channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.Blocks, s.BlocksOn = true, "a channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				s.Blocks, s.BlocksOn = true, "a select with no default"
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.Blocks, s.BlocksOn = true, "a range over a channel"
				}
			}
		case *ast.CallExpr:
			if fn := CalleeOf(info, n); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
					// WaitGroup.Wait; Cond.Wait is deliberately excluded —
					// it releases the lock it is paired with.
					if recvNamed(fn) == "WaitGroup" {
						s.Blocks, s.BlocksOn = true, "sync.WaitGroup.Wait"
					}
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					s.Blocks, s.BlocksOn = true, "time.Sleep"
				}
			}
		}
	})

	// Unbounded-loop scan: go-statement bodies are the goroutine's
	// problem (goleak inspects them at the launch site), not this
	// function's.
	if pos := UnboundedLoopPos(fd.Body); pos != token.NoPos {
		s.Unbounded = true
	}

	// Value flow: parameter escapes and pooled returns.
	fr := ScanFlows(fd, info, p.cfg, lookup)
	s.Params = fr.Params
	s.ReturnsPooled = fr.ReturnsPooled
	s.PooledVia = fr.PooledVia

	// Fold callee facts, smallest FullName first so witnesses are
	// deterministic regardless of resolution order.
	for _, c := range s.Calls {
		cs := lookup(c)
		if cs == nil {
			continue
		}
		for _, k := range []Kind{KindWallClock, KindGlobalRand} {
			if e, ok := cs.taint(k); ok {
				if _, own := s.taint(k); !own {
					if s.Taints == nil {
						s.Taints = map[Kind]TaintEdge{}
					}
					s.Taints[k] = TaintEdge{Via: c, Src: e.Src}
				}
			}
		}
		if cs.Blocks && !s.Blocks {
			s.Blocks, s.BlocksVia, s.BlocksOn = true, c, ""
		}
		if cs.Unbounded && !s.Unbounded {
			s.Unbounded, s.UnboundedVia = true, c
		}
	}
	return s
}

// recvNamed returns the name of a method's receiver named type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// CalleeOf resolves a call expression to the *types.Func it statically
// invokes — package function or method, same package or imported — or
// nil for builtins, conversions, function values, and dynamic calls.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// selectHasDefault reports whether a select statement has a default
// clause (and therefore cannot park).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkSkipFuncLits visits every node of n except the bodies of nested
// function literals.
func walkSkipFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// UnboundedLoopPos returns the position of the first `for {}` loop in n
// that offers no way out — no return, no break, no channel receive, no
// select — skipping nested function literals and the bodies of go
// statements (the launched goroutine's loops belong to the goroutine).
// token.NoPos when every loop is bounded or signal-driven.
func UnboundedLoopPos(n ast.Node) token.Pos {
	found := token.NoPos
	ast.Inspect(n, func(m ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			if m != n {
				return false
			}
		case *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if m.Cond == nil && m.Init == nil && m.Post == nil && !loopHasExit(m.Body) {
				found = m.For
				return false
			}
		}
		return true
	})
	return found
}

// loopHasExit reports whether a loop body contains an exit or a
// termination signal: return, break, goto, panic, a channel receive, or
// a select. Nested function literals are skipped.
func loopHasExit(body *ast.BlockStmt) bool {
	has := false
	walkSkipFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			has = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				has = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				has = true
			}
		case *ast.SelectStmt:
			has = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				has = true
			}
		}
	})
	return has
}

// LocalCallees returns the distinct local functions referenced under n,
// sorted by FullName — the witness-ordering contract.
func LocalCallees(info *types.Info, n ast.Node, isLocal func(string) bool) []*types.Func {
	seen := map[string]*types.Func{}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok && fn.Pkg() != nil && isLocal(fn.Pkg().Path()) {
			seen[fn.FullName()] = fn
		}
		return true
	})
	out := make([]*types.Func, 0, len(seen))
	for _, k := range sortedKeys(seen) {
		out = append(out, seen[k])
	}
	return out
}

// PoolSourceShort renders a pool-source FullName for diagnostics.
func PoolSourceShort(root string) string {
	return ShortName(strings.TrimPrefix(root, "pool:"))
}
