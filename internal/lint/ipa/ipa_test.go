package ipa_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"

	"cendev/internal/lint/ipa"
)

// The engine tests type-check small synthetic packages in memory and
// assert directly on the resolved summaries — the fixture tests in
// internal/lint pin analyzer diagnostics; these pin the facts the
// analyzers consume.

// chainImporter resolves previously checked in-memory packages first,
// then falls back to the gc importer for the standard library.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// build type-checks src as pkgPath (resolving imports of earlier test
// packages through deps), adds it to prog, and returns the facts.
func build(t *testing.T, prog *ipa.Program, pkgPath, src string, deps map[string]*types.Package) (*ipa.PackageFacts, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, pkgPath+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", pkgPath, err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{}, Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{}, Implicits: map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{}, Scopes: map[ast.Node]*types.Scope{},
		Instances: map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: chainImporter{local: deps, fallback: importer.Default()}}
	tpkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgPath, err)
	}
	return prog.AddPackage(pkgPath, []*ast.File{f}, info), tpkg
}

func summary(t *testing.T, prog *ipa.Program, fullName string) *ipa.Summary {
	t.Helper()
	s := prog.Summary(fullName)
	if s == nil {
		t.Fatalf("no summary for %s", fullName)
	}
	return s
}

// TestReturnsPooledThroughClosureAndSort is the distilled shape of
// simnet's Transmit: a pooled packet enters a delivery slice through a
// closure, the slice goes through an in-place sorting helper that
// returns its own parameter, and the result is returned. The pooled
// root must survive the whole chain.
func TestReturnsPooledThroughClosureAndSort(t *testing.T) {
	const src = `package fix

type Packet struct{ B []byte }
type pool struct{ pkts []*Packet }

func (p *pool) get() *Packet { return p.pkts[0] }

type Delivery struct {
	Packet *Packet
	At     int
}

type Net struct {
	pool  pool
	cache []Delivery
}

func (n *Net) Transmit() []Delivery {
	out := n.cache[:0]
	deliver := func(resp *Packet, hop int) {
		out = append(out, Delivery{Packet: resp, At: hop})
	}
	te := n.pool.get()
	deliver(te, 3)
	return sortD(out)
}

func sortD(ds []Delivery) []Delivery {
	ds[0], ds[1] = ds[1], ds[0]
	return ds
}
`
	cfg := ipa.Config{PoolSources: map[string]bool{"(*fix.pool).get": true}}
	prog := ipa.NewProgram(cfg, []string{"fix"})
	build(t, prog, "fix", src, nil)

	tr := summary(t, prog, "(*fix.Net).Transmit")
	if !tr.ReturnsPooled {
		t.Fatalf("Transmit: ReturnsPooled = false, want true (summary %+v)", tr)
	}
	if tr.PooledVia != "(*fix.pool).get" {
		t.Errorf("Transmit: PooledVia = %q, want the pool source", tr.PooledVia)
	}
	// sortD aliases its parameter through to its result but touches no
	// pool itself.
	sd := summary(t, prog, "fix.sortD")
	if sd.ReturnsPooled {
		t.Errorf("sortD: ReturnsPooled = true, want false")
	}
	if len(sd.Params) == 0 || !sd.Params[0].Returned {
		t.Errorf("sortD: Params[0].Returned = false, want true (params %+v)", sd.Params)
	}
}

// TestMultiRootValue pins the root-set model: a value that aliases both
// a parameter and a pooled packet must record both facts. A single-root
// (first-wins) tracker drops whichever root arrives second.
func TestMultiRootValue(t *testing.T) {
	const src = `package mr

type Packet struct{ B []byte }
type pool struct{ pkts []*Packet }

func (p *pool) get() *Packet { return p.pkts[0] }

type Net struct{ pool pool }

var sink []*Packet

// Mix returns a slice that aliases BOTH the seed parameter (appended
// first, so its root is installed first) and a pooled packet.
func (n *Net) Mix(seed []*Packet) []*Packet {
	out := seed
	out = append(out, n.pool.get())
	sink = out
	return out
}
`
	cfg := ipa.Config{PoolSources: map[string]bool{"(*mr.pool).get": true}}
	prog := ipa.NewProgram(cfg, []string{"mr"})
	build(t, prog, "mr", src, nil)

	s := summary(t, prog, "(*mr.Net).Mix")
	if !s.ReturnsPooled {
		t.Errorf("Mix: ReturnsPooled = false; the pool root was dropped by the param root")
	}
	if len(s.Params) == 0 || !s.Params[0].Returned {
		t.Errorf("Mix: Params[0].Returned = false; the param root was dropped by the pool root (params %+v)", s.Params)
	}
	if len(s.Params) == 0 || !s.Params[0].Escapes {
		t.Errorf("Mix: Params[0].Escapes = false, want true via the package-level sink")
	}
}

// TestByteCopyDoesNotCarry: append into a fresh []byte copies the bytes,
// not the backing pointer — the canonical retention idiom must come out
// clean, while returning the pooled alias itself must not.
func TestByteCopyDoesNotCarry(t *testing.T) {
	const src = `package bc

type Packet struct{ B []byte }
type pool struct{ pkts []*Packet }

func (p *pool) get() *Packet { return p.pkts[0] }

type Net struct{ pool pool }

func (n *Net) CopyBytes() []byte {
	p := n.pool.get()
	return append([]byte(nil), p.B...)
}

func (n *Net) AliasBytes() []byte {
	p := n.pool.get()
	return p.B
}

// CloneRetain launders through the documented Clone idiom: the result
// owns its storage.
func (p *Packet) Clone() *Packet {
	return &Packet{B: append([]byte(nil), p.B...)}
}

func (n *Net) CloneRetain() *Packet {
	return n.pool.get().Clone()
}
`
	cfg := ipa.Config{PoolSources: map[string]bool{"(*bc.pool).get": true}}
	prog := ipa.NewProgram(cfg, []string{"bc"})
	build(t, prog, "bc", src, nil)

	if s := summary(t, prog, "(*bc.Net).CopyBytes"); s.ReturnsPooled {
		t.Errorf("CopyBytes: ReturnsPooled = true; a byte-for-byte copy carries no alias")
	}
	if s := summary(t, prog, "(*bc.Net).AliasBytes"); !s.ReturnsPooled {
		t.Errorf("AliasBytes: ReturnsPooled = false; p.B aliases the pooled payload")
	}
	if s := summary(t, prog, "(*bc.Net).CloneRetain"); s.ReturnsPooled {
		t.Errorf("CloneRetain: ReturnsPooled = true; Clone results own their storage")
	}
}

// TestTaintCrossPackage checks bottom-up resolution over the import
// DAG: a helper package reaches time.Now, a dependent package reaches
// it only through the helper, and the witness chain reconstructs the
// full path.
func TestTaintCrossPackage(t *testing.T) {
	const helperSrc = `package helper

import "time"

func Stamp() time.Time { return time.Now() }

func Pure(a, b int) int { return a + b }
`
	const mainSrc = `package app

import "helper"

func Tick() int64 { return helper.Stamp().UnixNano() }

func Calm() int { return helper.Pure(1, 2) }
`
	prog := ipa.NewProgram(ipa.DefaultConfig(), []string{"helper", "app"})
	_, hpkg := build(t, prog, "helper", helperSrc, nil)
	build(t, prog, "app", mainSrc, map[string]*types.Package{"helper": hpkg})

	st := summary(t, prog, "helper.Stamp")
	if e, ok := st.Taints[ipa.KindWallClock]; !ok || e.Src != "time.Now" || e.Via != "" {
		t.Errorf("Stamp: wall-clock taint = %+v, want direct time.Now", st.Taints)
	}
	if s := summary(t, prog, "helper.Pure"); len(s.Taints) != 0 {
		t.Errorf("Pure: Taints = %+v, want none", s.Taints)
	}
	tk := summary(t, prog, "app.Tick")
	if e, ok := tk.Taints[ipa.KindWallClock]; !ok || e.Via != "helper.Stamp" {
		t.Errorf("Tick: wall-clock taint = %+v, want via helper.Stamp", tk.Taints)
	}
	if s := summary(t, prog, "app.Calm"); len(s.Taints) != 0 {
		t.Errorf("Calm: Taints = %+v, want none", s.Taints)
	}

	chain := prog.TaintChain("app.Tick", ipa.KindWallClock)
	want := []string{"app.Tick", "helper.Stamp", "time.Now"}
	if !reflect.DeepEqual(chain, want) {
		t.Errorf("TaintChain(app.Tick) = %v, want %v", chain, want)
	}
	if got := ipa.FormatChain(chain); got != "app.Tick → helper.Stamp → time.Now" {
		t.Errorf("FormatChain = %q", got)
	}
	if c := prog.TaintChain("app.Calm", ipa.KindWallClock); c != nil {
		t.Errorf("TaintChain(app.Calm) = %v, want nil", c)
	}
}

// TestParamEscapeRoutes covers the escape sinks a summary distinguishes:
// package-level variable, map/slice element, channel send, and indirect
// escape through a callee.
func TestParamEscapeRoutes(t *testing.T) {
	const src = `package esc

type T struct{ x int }

var keep *T

func toGlobal(p *T) { keep = p }

func toSlice(dst []*T, p *T) { dst[0] = p }

func toChan(ch chan *T, p *T) { ch <- p }

func viaCallee(p *T) { toGlobal(p) }

func contained(p *T) int { return p.x }
`
	prog := ipa.NewProgram(ipa.Config{}, []string{"esc"})
	build(t, prog, "esc", src, nil)

	if s := summary(t, prog, "esc.toGlobal"); !s.Params[0].Escapes {
		t.Errorf("toGlobal: param does not escape (params %+v)", s.Params)
	}
	if s := summary(t, prog, "esc.toSlice"); !s.Params[1].Escapes {
		t.Errorf("toSlice: second param does not escape (params %+v)", s.Params)
	}
	if s := summary(t, prog, "esc.toChan"); !s.Params[1].Escapes {
		t.Errorf("toChan: second param does not escape (params %+v)", s.Params)
	}
	v := summary(t, prog, "esc.viaCallee")
	if !v.Params[0].Escapes || v.Params[0].Via != "esc.toGlobal" {
		t.Errorf("viaCallee: param flow = %+v, want escape via esc.toGlobal", v.Params)
	}
	if s := summary(t, prog, "esc.contained"); len(s.Params) > 0 && s.Params[0].Escapes {
		t.Errorf("contained: param escapes (params %+v), want contained", s.Params)
	}
}

// TestBlockingFacts: direct channel operations block; callers of
// blocking functions block through them; BlockChain reconstructs the
// witness.
func TestBlockingFacts(t *testing.T) {
	const src = `package blk

func recv(ch chan int) int { return <-ch }

func indirect(ch chan int) int { return recv(ch) }

func calm(a int) int { return a * 2 }
`
	prog := ipa.NewProgram(ipa.Config{}, []string{"blk"})
	build(t, prog, "blk", src, nil)

	r := summary(t, prog, "blk.recv")
	if !r.Blocks || r.BlocksVia != "" {
		t.Errorf("recv: Blocks=%v BlocksVia=%q, want direct block", r.Blocks, r.BlocksVia)
	}
	in := summary(t, prog, "blk.indirect")
	if !in.Blocks || in.BlocksVia != "blk.recv" {
		t.Errorf("indirect: Blocks=%v BlocksVia=%q, want via blk.recv", in.Blocks, in.BlocksVia)
	}
	if s := summary(t, prog, "blk.calm"); s.Blocks {
		t.Errorf("calm: Blocks = true, want false")
	}
	chain, op, ok := prog.BlockChain("blk.indirect")
	if !ok || len(chain) != 2 || chain[1] != "blk.recv" || op == "" {
		t.Errorf("BlockChain(indirect) = %v, %q, %v", chain, op, ok)
	}
	if _, _, ok := prog.BlockChain("blk.calm"); ok {
		t.Errorf("BlockChain(calm): ok = true, want false")
	}
}

// TestUnboundedLoops: a for{} with no exit signal is unbounded; loops
// that receive, select, return, or break are not; callers that always
// reach an unbounded callee inherit the fact.
func TestUnboundedLoops(t *testing.T) {
	const src = `package ub

var sink int

func spin() {
	for {
		sink++
	}
}

func launder() { spin() }

func okRecv(ch chan int) {
	for {
		sink = <-ch
	}
}

func okBreak() {
	for {
		if sink > 10 {
			break
		}
		sink++
	}
}
`
	prog := ipa.NewProgram(ipa.Config{}, []string{"ub"})
	build(t, prog, "ub", src, nil)

	if s := summary(t, prog, "ub.spin"); !s.Unbounded || s.UnboundedVia != "" {
		t.Errorf("spin: Unbounded=%v Via=%q, want direct unbounded", s.Unbounded, s.UnboundedVia)
	}
	l := summary(t, prog, "ub.launder")
	if !l.Unbounded || l.UnboundedVia != "ub.spin" {
		t.Errorf("launder: Unbounded=%v Via=%q, want via ub.spin", l.Unbounded, l.UnboundedVia)
	}
	if s := summary(t, prog, "ub.okRecv"); s.Unbounded {
		t.Errorf("okRecv: Unbounded = true; a receiving loop has a stop signal")
	}
	if s := summary(t, prog, "ub.okBreak"); s.Unbounded {
		t.Errorf("okBreak: Unbounded = true; the loop can exit")
	}
	chain := prog.UnboundedChain("ub.launder")
	if !reflect.DeepEqual(chain, []string{"ub.launder", "ub.spin"}) {
		t.Errorf("UnboundedChain(launder) = %v", chain)
	}
}

// TestValueTypesDoNotAlias: netip.Addr and time.Time are named structs
// with internal pointers, but immutable values in practice — copying
// one out of a pooled packet must not mark the result pooled.
func TestValueTypesDoNotAlias(t *testing.T) {
	const src = `package vt

import (
	"net/netip"
	"time"
)

type Packet struct {
	Src netip.Addr
	At  time.Time
	B   []byte
}
type pool struct{ pkts []*Packet }

func (p *pool) get() *Packet { return p.pkts[0] }

type Net struct{ pool pool }

func (n *Net) SrcOf() netip.Addr { return n.pool.get().Src }

func (n *Net) AtOf() time.Time { return n.pool.get().At }
`
	cfg := ipa.Config{PoolSources: map[string]bool{"(*vt.pool).get": true}}
	prog := ipa.NewProgram(cfg, []string{"vt"})
	build(t, prog, "vt", src, nil)

	if s := summary(t, prog, "(*vt.Net).SrcOf"); s.ReturnsPooled {
		t.Errorf("SrcOf: ReturnsPooled = true; netip.Addr is an immutable value")
	}
	if s := summary(t, prog, "(*vt.Net).AtOf"); s.ReturnsPooled {
		t.Errorf("AtOf: ReturnsPooled = true; time.Time is an immutable value")
	}
}

func TestShortName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"cendev/internal/topology.FlowHash", "topology.FlowHash"},
		{"(*cendev/internal/simnet.Network).Transmit", "(*simnet.Network).Transmit"},
		{"time.Now", "time.Now"},
		{"main.main", "main.main"},
	}
	for _, c := range cases {
		if got := ipa.ShortName(c.in); got != c.want {
			t.Errorf("ShortName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
