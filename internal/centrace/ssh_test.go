package centrace

import (
	"net/netip"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// buildSSHNet extends the standard network with an SSH service on the
// endpoint.
func buildSSHNet(t *testing.T) (*simnet.Network, *topology.Host, *topology.Host) {
	t.Helper()
	n, client, server := buildNet(t)
	srv := n.Server("server")
	srv.Services = map[int]string{22: "SSH-2.0-OpenSSH_8.9p1"}
	return n, client, server
}

func sshCfg() Config {
	return Config{
		ControlDomain: "ssh-control",
		TestDomain:    "ssh-test",
		Protocol:      SSH,
		Repetitions:   3,
	}
}

func TestSSHUnblockedMeasurement(t *testing.T) {
	n, client, server := buildSSHNet(t)
	res := New(n, client, server, sshCfg()).Run()
	if !res.Valid {
		t.Fatal("SSH control probe should reach the server banner")
	}
	if res.Blocked {
		t.Errorf("no devices but blocked (term=%s)", res.TermKind)
	}
	if res.EndpointTTL != 5 {
		t.Errorf("EndpointTTL = %d, want 5", res.EndpointTTL)
	}
}

func TestSSHProtocolBlockingLocalized(t *testing.T) {
	n, client, server := buildSSHNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownDrop, nil, netip.Addr{})
	dev.Quirks.BlockSSHProtocol = true
	n.AttachDevice("r2", "r3", dev)

	res := New(n, client, server, sshCfg()).Run()
	if !res.Blocked || res.TermKind != KindTimeout {
		t.Fatalf("blocked=%v term=%s, want SSH drop", res.Blocked, res.TermKind)
	}
	if res.DeviceTTL != 3 || res.Placement != PlacementInPath {
		t.Errorf("device at %d (%s), want 3 in-path", res.DeviceTTL, res.Placement)
	}
	// The neutral control payload passes the same device.
	if res.Control.EndpointTTL != 5 {
		t.Errorf("control EndpointTTL = %d, want 5 (neutral payload passes)", res.Control.EndpointTTL)
	}
}

func TestSSHRSTInjector(t *testing.T) {
	n, client, server := buildSSHNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorSandvine, nil, netip.Addr{})
	dev.Quirks.BlockSSHProtocol = true
	n.AttachDevice("r2", "r3", dev)

	res := New(n, client, server, sshCfg()).Run()
	if !res.Blocked || res.TermKind != KindRST {
		t.Fatalf("blocked=%v term=%s, want RST", res.Blocked, res.TermKind)
	}
	if res.Injected == nil || res.Injected.IPID != 0x3412 {
		t.Errorf("injected = %+v, want the PacketLogic IP ID signature", res.Injected)
	}
}

func TestSSHHostnameDeviceDoesNotTrigger(t *testing.T) {
	// A hostname-rule device without SSH protocol detection ignores SSH.
	n, client, server := buildSSHNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{"ssh-test"}, netip.Addr{})
	n.AttachDevice("r2", "r3", dev)
	res := New(n, client, server, sshCfg()).Run()
	if res.Blocked {
		t.Errorf("hostname device misfired on SSH (term=%s)", res.TermKind)
	}
}

func TestSSHEndpointClosedPort(t *testing.T) {
	// An endpoint without an SSH service refuses the dial; CenTrace sees a
	// RST from the endpoint itself ("At E"-style observation).
	n, client, server := buildNet(t)
	_ = server
	g := n.Graph
	as := g.AS(300)
	noSSH := g.AddHost("nossh", as, g.Router("r4"))
	n.RegisterServer("nossh", endpoint.NewServer(controlDomain))
	res := New(n, client, noSSH, sshCfg()).Run()
	// The dial never completes, so every probe observes a dial failure;
	// CenTrace reports the measurement as not valid rather than blocked.
	if res.Valid {
		t.Errorf("closed SSH port should not yield a valid control trace (endpointTTL=%d)", res.EndpointTTL)
	}
}
