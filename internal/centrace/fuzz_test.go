package centrace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"cendev/internal/vfs"
	"cendev/internal/wire"
)

// FuzzJournalReplay drives arbitrary bytes through the format-sniffing
// journal parser (binary frames or legacy JSON lines). Whatever the
// input, ResumeJournal must not panic; a legacy journal must tolerate one
// more torn line with nothing but an extra warning, and a torn binary
// journal must be repairable by truncating to the reported boundary —
// the exact situations a kill -9 mid-Record creates.
//
// The same bytes then seed a chaos filesystem with a fuzz-chosen fault
// schedule under a live record+sync workload: every checkpoint the
// journal acknowledged as durable must survive the crash+reboot.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(nil), int64(1), uint8(0), uint8(0))
	f.Add([]byte("\n\n"), int64(2), uint8(0), uint8(0))
	f.Add([]byte(`{"key":"az-ep-0-0|example.com|HTTP","endpoint":"az-ep-0-0","domain":"example.com","protocol":"HTTP"}`+"\n"), int64(3), uint8(4), uint8(0))
	f.Add([]byte(`{"key":"a","error":"timeout"}`+"\n"+`{"key":"b"`+"\n"), int64(4), uint8(0), uint8(6)) // torn tail
	f.Add([]byte(`{"key":"dup"}`+"\n"+`{"key":"dup","error":"later"}`+"\n"), int64(5), uint8(2), uint8(8))
	f.Add([]byte(`not json at all`+"\n"+`{"key":"after-tear"}`+"\n"), int64(6), uint8(3), uint8(3))
	// Binary seeds: a clean frame, two frames with the second torn
	// mid-write, and a frame followed by interior garbage plus another.
	entA := journalEntry{Key: "bin-a|x|http", Domain: "x", Protocol: "http"}
	entB := journalEntry{Key: "bin-b|y|https", Domain: "y", Protocol: "https", Error: "unreachable"}
	frameA := wire.AppendFrame(nil, appendJournalEntry(nil, &entA))
	frameB := wire.AppendFrame(nil, appendJournalEntry(nil, &entB))
	f.Add(append([]byte(nil), frameA...), int64(7), uint8(0), uint8(0))
	f.Add(append(append([]byte(nil), frameA...), frameB[:len(frameB)/2]...), int64(8), uint8(0), uint8(7))
	f.Add(append(append(append([]byte(nil), frameA...), "mid-file damage"...), frameB...), int64(9), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, failA, failB uint8) {
		j, err := ResumeJournal(bytes.NewReader(data), nil)
		if err != nil {
			// Only scanner-level I/O failures (e.g. a line beyond the 16MB
			// buffer) may error; they must not yield a half-built journal.
			if j != nil {
				t.Fatalf("ResumeJournal returned both a journal and error %v", err)
			}
			return
		}
		entries, warnings := j.Len(), len(j.Warnings())

		if wire.SniffMarker(data) {
			// Binary: repairing a torn tail by truncating to the reported
			// boundary must yield the same entries with no tear left.
			if tornAt, torn := j.Torn(); torn {
				repaired := append([]byte(nil), data[:tornAt]...)
				j2, err := ResumeJournal(bytes.NewReader(repaired), nil)
				if err != nil {
					t.Fatalf("ResumeJournal on repaired journal errored: %v", err)
				}
				if j2.Len() != entries {
					t.Fatalf("torn-tail repair changed entry count: %d -> %d", entries, j2.Len())
				}
				if _, stillTorn := j2.Torn(); stillTorn {
					t.Fatal("journal still torn after truncating to the reported boundary")
				}
			}
		} else {
			// Legacy: a fresh torn tail on the same bytes — every previously
			// parseable line parses identically (the suffix starts with a
			// newline, so it terminates a previously unterminated last line
			// without altering its bytes), and exactly one more warning
			// appears.
			torn := append(append([]byte(nil), data...), []byte("\n{\"key\":\"torn")...)
			j2, err := ResumeJournal(bytes.NewReader(torn), nil)
			if err != nil {
				t.Fatalf("ResumeJournal on torn variant errored: %v", err)
			}
			if j2.Len() != entries {
				t.Fatalf("torn tail changed entry count: %d -> %d", entries, j2.Len())
			}
			if got := len(j2.Warnings()); got != warnings+1 {
				t.Fatalf("torn tail: want %d warnings, got %d", warnings+1, got)
			}
		}

		// Chaos phase: same pre-existing bytes as an on-disk journal,
		// fuzz-chosen faults under live records, then a crash.
		c := vfs.NewChaos(seed)
		c.Install("campaign.jsonl", data)
		if failA > 0 {
			c.FailOp(int(failA), vfs.ErrIO)
		}
		if failB > 0 {
			c.ShortWriteOp(int(failB))
		}
		acked := map[string]string{}
		if cj, cf, err := OpenJournalFileFS(c, "campaign.jsonl"); err == nil {
			for i := 0; i < 3; i++ {
				tgt := matrixTarget(i)
				msg := fmt.Sprintf("probe: unreachable %d", i)
				cj.Record(CampaignResult{Target: tgt, Err: errors.New(msg)})
				if cj.Err() == nil && cf.Sync() == nil {
					acked[tgt.Key()] = msg
				}
			}
			cf.Close()
		}
		c.Crash()
		c.Reboot()
		rj, rf, err := OpenJournalFileFS(c, "campaign.jsonl")
		if err != nil {
			if len(acked) > 0 {
				t.Fatalf("post-crash resume failed with %d acknowledged checkpoints at stake: %v", len(acked), err)
			}
			return
		}
		rf.Close()
		for i := 0; i < 3; i++ {
			tgt := matrixTarget(i)
			want, wasAcked := acked[tgt.Key()]
			if !wasAcked {
				continue
			}
			cr, found := rj.Lookup(tgt)
			if !found {
				t.Fatalf("acknowledged checkpoint %s lost after chaos crash (seed=%d failA=%d failB=%d)", tgt.Key(), seed, failA, failB)
			}
			if cr.Err == nil || cr.Err.Error() != want {
				t.Fatalf("checkpoint %s resumed with %v, acknowledged %q", tgt.Key(), cr.Err, want)
			}
		}
	})
}
