package centrace

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay drives arbitrary bytes through the torn-tail-tolerant
// journal parser. Whatever the input, ResumeJournal must not panic, and
// appending one more torn line must change nothing but the warning count
// — the exact situation a kill -9 mid-Record creates on top of an
// already-messy file.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"key":"az-ep-0-0|example.com|HTTP","endpoint":"az-ep-0-0","domain":"example.com","protocol":"HTTP"}` + "\n"))
	f.Add([]byte(`{"key":"a","error":"timeout"}` + "\n" + `{"key":"b"` + "\n")) // torn tail
	f.Add([]byte(`{"key":"dup"}` + "\n" + `{"key":"dup","error":"later"}` + "\n"))
	f.Add([]byte(`not json at all` + "\n" + `{"key":"after-tear"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := ResumeJournal(bytes.NewReader(data), nil)
		if err != nil {
			// Only scanner-level I/O failures (e.g. a line beyond the 16MB
			// buffer) may error; they must not yield a half-built journal.
			if j != nil {
				t.Fatalf("ResumeJournal returned both a journal and error %v", err)
			}
			return
		}
		entries, warnings := j.Len(), len(j.Warnings())

		// A fresh torn tail on the same bytes: every previously parseable
		// line parses identically (the suffix starts with a newline, so it
		// terminates a previously unterminated last line without altering
		// its bytes), and exactly one more warning appears.
		torn := append(append([]byte(nil), data...), []byte("\n{\"key\":\"torn")...)
		j2, err := ResumeJournal(bytes.NewReader(torn), nil)
		if err != nil {
			t.Fatalf("ResumeJournal on torn variant errored: %v", err)
		}
		if j2.Len() != entries {
			t.Fatalf("torn tail changed entry count: %d -> %d", entries, j2.Len())
		}
		if got := len(j2.Warnings()); got != warnings+1 {
			t.Fatalf("torn tail: want %d warnings, got %d", warnings+1, got)
		}
	})
}
