package centrace

// Service job entrypoints: the orchestration daemon (internal/serve)
// dispatches measurement jobs described by wire-level specs onto worker-
// owned network clones. The functions here translate a spec into a run
// and distill the rich Result into a canonical, JSON-stable payload —
// fixed field order, no pointers into the topology, no wall-clock values —
// so the same spec and seed marshal to byte-identical bytes regardless of
// queue interleaving or worker count.

import (
	"fmt"

	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// ParseProtocol maps the wire protocol names to Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "http":
		return HTTP, nil
	case "https":
		return HTTPS, nil
	default:
		return HTTP, fmt.Errorf("centrace: unknown protocol %q (want http or https)", s)
	}
}

// JobSpec parameterizes one service-dispatched CenTrace measurement.
type JobSpec struct {
	ControlDomain string
	TestDomain    string
	Protocol      Protocol
	Repetitions   int
}

// JobResult is the canonical payload of one CenTrace job: the analysis
// verdict flattened to plain JSON-stable types.
type JobResult struct {
	Valid           bool    `json:"valid"`
	Blocked         bool    `json:"blocked"`
	TermKind        string  `json:"terminating_response"`
	TermTTL         int     `json:"terminating_ttl"`
	EndpointTTL     int     `json:"endpoint_ttl"`
	Location        string  `json:"location"`
	Placement       string  `json:"placement"`
	DeviceTTL       int     `json:"device_ttl"`
	TTLCorrected    bool    `json:"ttl_copy_corrected"`
	Degraded        bool    `json:"degraded"`
	Confidence      float64 `json:"confidence"`
	BlockingHop     string  `json:"blocking_hop,omitempty"`
	BlockingASN     uint32  `json:"blocking_asn,omitempty"`
	BlockingCountry string  `json:"blocking_country,omitempty"`
	BlockpageVendor string  `json:"blockpage_vendor,omitempty"`
}

// RunJob performs one CenTrace measurement on n and returns the canonical
// payload. The caller owns n (typically a private clone) — the run mutates
// its clock and device state.
func RunJob(n *simnet.Network, client, ep *topology.Host, spec JobSpec) JobResult {
	res := New(n, client, ep, Config{
		ControlDomain: spec.ControlDomain,
		TestDomain:    spec.TestDomain,
		Protocol:      spec.Protocol,
		Repetitions:   spec.Repetitions,
		Obs:           n.Obs(),
	}).Run()
	return canonResult(res)
}

// canonResult flattens a Result into its canonical payload form.
func canonResult(res *Result) JobResult {
	out := JobResult{
		Valid:           res.Valid,
		Blocked:         res.Blocked,
		TermKind:        res.TermKind.String(),
		TermTTL:         res.TermTTL,
		EndpointTTL:     res.EndpointTTL,
		Location:        res.Location.String(),
		Placement:       res.Placement.String(),
		DeviceTTL:       res.DeviceTTL,
		TTLCorrected:    res.TTLCopyCorrected,
		Degraded:        res.Degraded,
		Confidence:      res.Confidence.Score,
		BlockpageVendor: res.BlockpageVendor,
	}
	if res.Blocked && res.BlockingHop.Addr.IsValid() {
		out.BlockingHop = res.BlockingHop.Addr.String()
		out.BlockingASN = res.BlockingHop.ASN
		out.BlockingCountry = res.BlockingHop.Country
	}
	return out
}

// CampaignJobSpec parameterizes one service-dispatched campaign over a
// target list.
type CampaignJobSpec struct {
	ControlDomain string
	Repetitions   int
	Workers       int
	RetryPasses   int
}

// CampaignTargetPayload is one resolved target in a campaign payload.
type CampaignTargetPayload struct {
	Key   string `json:"key"`
	Error string `json:"error,omitempty"`
	JobResult
}

// CampaignJobResult is the canonical payload of a campaign job: one row
// per target in target order, plus the aggregate counts.
type CampaignJobResult struct {
	Targets []CampaignTargetPayload `json:"targets"`
	Blocked int                     `json:"blocked"`
	Failed  int                     `json:"failed"`
}

// RunCampaignJob measures every target on n across spec.Workers clone-
// isolated workers and returns the canonical campaign payload. Rows come
// out in target order with byte-identical content at every worker count
// (the Campaign determinism contract).
func RunCampaignJob(n *simnet.Network, client *topology.Host, targets []Target, spec CampaignJobSpec) CampaignJobResult {
	results := (&Campaign{
		Net:    n,
		Client: client,
		Base: Config{
			ControlDomain: spec.ControlDomain,
			Repetitions:   spec.Repetitions,
			Obs:           n.Obs(),
		},
		Workers:           spec.Workers,
		RetryFailedPasses: spec.RetryPasses,
	}).Run(targets)
	out := CampaignJobResult{Targets: make([]CampaignTargetPayload, 0, len(results))}
	for _, cr := range results {
		row := CampaignTargetPayload{Key: cr.Target.Key()}
		if cr.Err != nil {
			row.Error = cr.Err.Error()
		}
		if cr.Result != nil {
			row.JobResult = canonResult(cr.Result)
		}
		switch {
		case cr.Failed():
			out.Failed++
		case cr.Result.Blocked:
			out.Blocked++
		}
		out.Targets = append(out.Targets, row)
	}
	return out
}
