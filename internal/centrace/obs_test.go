package centrace

import (
	"bytes"
	"encoding/json"
	"testing"

	"cendev/internal/faults"
	"cendev/internal/obs"
)

// obsBytes runs the seeded parallel-world campaign at the given worker
// count with a fresh registry and tracer wired through every layer, and
// returns the canonical JSON of the deterministic metric snapshot and the
// span tree.
func obsBytes(t *testing.T, workers int) (metrics, spans []byte) {
	t.Helper()
	n, client, servers := buildParallelWorld(t)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	n.SetObs(reg)
	n.SetFaults(faults.NewEngine(7).
		AddGlobal(faults.UniformLoss(0.02)).
		AddGlobal(faults.Duplication(0.01)).
		AddLink("r2", "r3", faults.GilbertElliott(0.05, 0.3, 0, 0.8)).
		LimitICMP("r2", 2, 0.5))
	var targets []Target
	for _, s := range servers {
		targets = append(targets,
			Target{Endpoint: s, Domain: blockedDomain, Protocol: HTTP},
			Target{Endpoint: s, Domain: controlDomain, Protocol: HTTPS},
		)
	}
	(&Campaign{
		Net: n, Client: client,
		Base: Config{
			ControlDomain: controlDomain, Repetitions: 3,
			Obs: reg, Tracer: tr,
		},
		RetryFailedPasses: 1,
		Workers:           workers,
	}).Run(targets)

	metrics, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatalf("marshal metrics: %v", err)
	}
	spans, err = json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatalf("marshal spans: %v", err)
	}
	return metrics, spans
}

// TestObsWorkerDeterminism: the deterministic metric snapshot and the
// canonical span tree must be byte-identical at any worker count — the
// observability layer must not become a side channel for scheduling.
func TestObsWorkerDeterminism(t *testing.T) {
	serialMetrics, serialSpans := obsBytes(t, 1)
	for _, workers := range []int{4} {
		parMetrics, parSpans := obsBytes(t, workers)
		if !bytes.Equal(serialMetrics, parMetrics) {
			t.Errorf("workers=%d metric snapshot differs from workers=1:\n%s\n---\n%s",
				workers, serialMetrics, parMetrics)
		}
		if !bytes.Equal(serialSpans, parSpans) {
			t.Errorf("workers=%d span tree differs from workers=1 (lens %d vs %d)",
				workers, len(parSpans), len(serialSpans))
		}
	}
}

// TestObsCampaignContent spot-checks that the instrumented campaign
// actually recorded what happened: every target got a verdict, probes and
// packets were counted, and the span tree has the campaign/pass/target
// shape.
func TestObsCampaignContent(t *testing.T) {
	n, client, servers := buildParallelWorld(t)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	n.SetObs(reg)
	var targets []Target
	for _, s := range servers {
		targets = append(targets, Target{Endpoint: s, Domain: blockedDomain, Protocol: HTTP})
	}
	(&Campaign{
		Net: n, Client: client,
		Base:    Config{ControlDomain: controlDomain, Repetitions: 2, Obs: reg, Tracer: tr},
		Workers: 2,
	}).Run(targets)

	snap := reg.Snapshot()
	blocked, ok := snap.Get("centrace_targets_total", obs.L("verdict", "blocked"))
	if !ok || blocked.Value != int64(len(targets)) {
		t.Errorf("blocked verdicts = %+v, want %d", blocked, len(targets))
	}
	if m, ok := snap.Get("simnet_packets_forwarded_total"); !ok || m.Value == 0 {
		t.Error("packet forwarding went uncounted")
	}
	if m, ok := snap.Get("centrace_probe_virtual_seconds"); !ok || m.Count == 0 {
		t.Error("probe latency histogram is empty")
	}
	if m, ok := snap.Get("parallel_runs_total", obs.L("pool", "centrace.campaign")); !ok || m.Value == 0 {
		t.Error("campaign pool run went uncounted")
	}
	if m, ok := snap.Get("centrace_confidence"); !ok || m.Count != int64(len(targets)) {
		t.Errorf("confidence observations = %+v, want %d", m, len(targets))
	}

	roots := tr.Snapshot()
	if len(roots) != 1 || roots[0].Name != "centrace.campaign" {
		t.Fatalf("root spans = %+v, want single centrace.campaign", roots)
	}
	pass := roots[0].Children
	if len(pass) == 0 || pass[0].Name != "centrace.pass" {
		t.Fatalf("campaign children = %+v, want centrace.pass spans", pass)
	}
	if len(pass[0].Children) != len(targets) {
		t.Fatalf("pass 0 target spans = %d, want %d", len(pass[0].Children), len(targets))
	}
	tgt := pass[0].Children[0]
	hasTargetAttr := false
	for _, a := range tgt.Attrs {
		if a.Key == "target" && a.Value != "" {
			hasTargetAttr = true
		}
	}
	if tgt.Name != "centrace.target" || !hasTargetAttr {
		t.Errorf("target span malformed: %+v", tgt)
	}
	// Each target span wraps a measure span which wraps traces and probes.
	var sawMeasure, sawProbe bool
	var walk func(s obs.SpanSnap)
	walk = func(s obs.SpanSnap) {
		switch s.Name {
		case "centrace.measure":
			sawMeasure = true
		case "centrace.probe":
			sawProbe = true
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tgt)
	if !sawMeasure || !sawProbe {
		t.Errorf("target subtree missing spans: measure=%v probe=%v", sawMeasure, sawProbe)
	}
	if tr.SpanCount() == 0 {
		t.Error("SpanCount = 0")
	}
}
