package centrace

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"

	"cendev/internal/blockpage"
	"cendev/internal/geoip"
	"cendev/internal/netem"
	"cendev/internal/obs"
)

// Aggregate combines the repeated traceroutes for one domain into hop
// distributions and modal terminating behaviour, the paper's answer to
// ECMP path variance (§4.1: "repeat both our Control and Test Domain
// traceroutes multiple times ... create a probability distribution of IP
// addresses at each hop ... extract the most likely IP address").
type Aggregate struct {
	Domain string
	Traces []Trace
	// HopDist maps TTL → responding router address → observation count.
	HopDist map[int]map[netip.Addr]int
	// TermTTL and TermKind are the modal terminating TTL and kind.
	TermTTL  int
	TermKind ResponseKind
	// EndpointTTL is the modal TTL at which a payload-bearing response from
	// the endpoint was observed; 0 when the endpoint was never reached.
	EndpointTTL int
}

// MostLikelyHop returns the modal responder address at a TTL.
func (a *Aggregate) MostLikelyHop(ttl int) (netip.Addr, bool) {
	dist, ok := a.HopDist[ttl]
	if !ok || len(dist) == 0 {
		return netip.Addr{}, false
	}
	type entry struct {
		addr  netip.Addr
		count int
	}
	entries := make([]entry, 0, len(dist))
	for addr, c := range dist {
		entries = append(entries, entry{addr, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].addr.Less(entries[j].addr) // deterministic tiebreak
	})
	return entries[0].addr, true
}

// terminatingObs returns the observations at the modal terminating TTL.
func (a *Aggregate) terminatingObs() []*ProbeObs {
	var out []*ProbeObs
	for i := range a.Traces {
		t := a.Traces[i].Terminating()
		if t != nil && t.TTL == a.TermTTL {
			out = append(out, t)
		}
	}
	return out
}

// aggregate runs Repetitions traceroutes for one domain.
func (p *Prober) aggregate(domain string, parent *obs.Span) *Aggregate {
	span := parent.StartChild("centrace.aggregate", p.Net.Now(), obs.L("domain", domain))
	defer func() { span.End(p.Net.Now()) }()
	a := &Aggregate{Domain: domain, HopDist: make(map[int]map[netip.Addr]int)}
	termTTLCount := map[int]int{}
	termKindCount := map[ResponseKind]int{}
	endpointTTLCount := map[int]int{}
	for rep := 0; rep < p.Config.Repetitions; rep++ {
		tr := p.trace(domain, span)
		a.Traces = append(a.Traces, tr)
		for _, obs := range tr.Obs {
			if obs.Kind == KindICMP {
				if a.HopDist[obs.TTL] == nil {
					a.HopDist[obs.TTL] = make(map[netip.Addr]int)
				}
				a.HopDist[obs.TTL][obs.From]++
			}
			if obs.Kind == KindData {
				endpointTTLCount[obs.TTL]++
			}
		}
		if t := tr.Terminating(); t != nil {
			termTTLCount[t.TTL]++
			termKindCount[t.Kind]++
		}
	}
	a.TermTTL = modalInt(termTTLCount)
	a.TermKind = modalKind(termKindCount)
	a.EndpointTTL = modalInt(endpointTTLCount)
	return a
}

func modalInt(counts map[int]int) int {
	best, bestCount := 0, -1
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if counts[k] > bestCount {
			best, bestCount = k, counts[k]
		}
	}
	return best
}

func modalKind(counts map[ResponseKind]int) ResponseKind {
	best, bestCount := KindTimeout, -1
	for _, k := range []ResponseKind{KindTimeout, KindICMP, KindRST, KindFIN, KindData} {
		if c, ok := counts[k]; ok && c > bestCount {
			best, bestCount = k, c
		}
	}
	return best
}

// LocationClass buckets where the blocking hop sits relative to the client
// (C) and endpoint (E) — the categories of Figure 3.
type LocationClass int

// Location classes.
const (
	// LocUnknown means the measurement was not blocked or could not be
	// localized.
	LocUnknown LocationClass = iota
	// LocPath means blocking occurred on the path strictly between client
	// and endpoint.
	LocPath
	// LocAtE means blocking occurred at the endpoint IP itself (a NAT or
	// host firewall rather than ISP censorship).
	LocAtE
	// LocPastE means the terminating hop appeared beyond the endpoint —
	// the signature of TTL-copying injectors (§4.3).
	LocPastE
	// LocNoICMP means neither the terminating hop nor the preceding hop
	// answered with ICMP in the control trace, so the locus is ambiguous.
	LocNoICMP
)

// String implements fmt.Stringer using Figure 3's labels.
func (l LocationClass) String() string {
	switch l {
	case LocPath:
		return "Path(C->E)"
	case LocAtE:
		return "At E"
	case LocPastE:
		return "Past E"
	case LocNoICMP:
		return "No ICMP"
	default:
		return "Unknown"
	}
}

// PlacementClass is the in-path/on-path inference for the blocking device.
type PlacementClass int

// Placement inference results.
const (
	PlacementUnknown PlacementClass = iota
	PlacementInPath
	PlacementOnPath
)

// String implements fmt.Stringer.
func (p PlacementClass) String() string {
	switch p {
	case PlacementInPath:
		return "in-path"
	case PlacementOnPath:
		return "on-path"
	default:
		return "unknown"
	}
}

// HopInfo annotates a hop address with registry metadata.
type HopInfo struct {
	TTL     int
	Addr    netip.Addr
	ASN     uint32
	Country string
	Org     string
}

// String implements fmt.Stringer.
func (h HopInfo) String() string {
	if !h.Addr.IsValid() {
		return fmt.Sprintf("hop %d (no ICMP)", h.TTL)
	}
	return fmt.Sprintf("hop %d %s AS%d (%s, %s)", h.TTL, h.Addr, h.ASN, h.Org, h.Country)
}

// Result is one complete CenTrace measurement: control + test aggregates
// and the blocking inference drawn from them.
type Result struct {
	Config   Config
	Client   netip.Addr
	Endpoint netip.Addr
	// Valid is false when the control traceroute never reached the
	// endpoint, making the measurement unusable.
	Valid bool
	// Blocked is true when the test domain hit an explicit interference
	// signal (repeated drops, RST/FIN injection, or a known blockpage).
	Blocked bool
	// TermKind is the test domain's terminating response kind.
	TermKind ResponseKind
	// TermTTL is the test domain's modal terminating TTL.
	TermTTL int
	// EndpointTTL is the hop distance to the endpoint per the control.
	EndpointTTL int
	// Location classifies the blocking hop relative to client and endpoint.
	Location LocationClass
	// Placement is the in-path/on-path inference.
	Placement PlacementClass
	// DeviceTTL is the inferred hop distance of the device, after TTL-copy
	// correction when applicable.
	DeviceTTL int
	// TTLCopyCorrected is true when the Past-E correction was applied.
	TTLCopyCorrected bool
	// BlockingHop is the control-trace hop at DeviceTTL with AS metadata.
	BlockingHop HopInfo
	// Injected carries header features of the terminating packet when one
	// was injected.
	Injected *InjectedFeatures
	// QuoteDelta is the Tracebox-style comparison at the blocking hop from
	// the control trace, nil when no quote was available.
	QuoteDelta *netem.QuoteDelta
	// BlockpageVendor is the vendor attribution when the terminating
	// response matched a known blockpage.
	BlockpageVendor string
	// BlockpageID is the fingerprint ID of the matched blockpage.
	BlockpageID string
	// Confidence scores how well-supported the localization is (see
	// confidence.go). Populated for blocked and unblocked results alike.
	Confidence Confidence
	// Degraded marks a blocked result whose blocking hop could not be
	// localized consistently: blocking was observed, but BlockingHop (and
	// the location/placement inference) should not be trusted. Degraded
	// results always score below HighConfidence.
	Degraded bool

	Control *Aggregate
	Test    *Aggregate
}

// Run performs the full CenTrace measurement: the control traceroute
// first, then the test traceroute, then inference (§4.2: "We perform the
// Control Domain CenTrace probes first and then immediately perform the
// Test Domain CenTrace probes").
func (p *Prober) Run() *Result {
	span := p.startSpan("centrace.measure",
		obs.L("test", p.Config.TestDomain),
		obs.L("protocol", p.Config.Protocol.String()))
	res := &Result{
		Config:   p.Config,
		Client:   p.Client.Addr,
		Endpoint: p.Endpoint.Addr,
	}
	res.Control = p.aggregate(p.Config.ControlDomain, span)
	res.Test = p.aggregate(p.Config.TestDomain, span)
	res.EndpointTTL = res.Control.EndpointTTL
	res.Valid = res.EndpointTTL > 0
	p.infer(res)
	span.SetAttr("blocked", strconv.FormatBool(res.Blocked))
	span.End(p.Net.Now())
	return res
}

// infer derives the blocking verdict and device location from the two
// aggregates.
func (p *Prober) infer(res *Result) {
	test := res.Test
	res.TermKind = test.TermKind
	res.TermTTL = test.TermTTL

	// Blocking verdict (conservative, §4.1): resets, repeated drops, and
	// known blockpages only.
	switch test.TermKind {
	case KindRST, KindFIN:
		res.Blocked = true
	case KindTimeout:
		res.Blocked = true
	case KindData:
		// Data responses block only when they match a known blockpage —
		// or, for DNS probes, a known forged-answer address.
		for _, obs := range test.terminatingObs() {
			if p.Config.Protocol == DNS {
				if dnsBlocked(obs.Payload) {
					res.Blocked = true
					res.BlockpageID = "dns-injection"
					break
				}
				continue
			}
			if fp, ok := blockpage.Match(obs.Payload); ok {
				res.Blocked = true
				res.BlockpageVendor = fp.Vendor
				res.BlockpageID = fp.ID
				break
			}
		}
	}
	if !res.Blocked || !res.Valid {
		res.Location = LocUnknown
		p.scoreConfidence(res)
		if res.Blocked && !res.Valid {
			// Blocking signal without a usable control: observed but not
			// localizable.
			res.Degraded = true
			if res.Confidence.Score >= HighConfidence {
				res.Confidence.Score = HighConfidence - 0.05
			}
		}
		return
	}

	// Collect injected-header features from the modal terminating probes.
	terms := test.terminatingObs()
	onPathVotes := 0
	for _, obs := range terms {
		if obs.Injected != nil && res.Injected == nil {
			res.Injected = obs.Injected
		}
		if obs.GotICMPAlongside {
			onPathVotes++
		}
	}

	// TTL-copy correction (§4.3, Figure 2(E)): injected packets arriving
	// with TTL 1 mean the device copied the probe's TTL; the true device
	// distance is (observed terminating TTL + 1) / 2.
	res.DeviceTTL = res.TermTTL
	if res.Injected != nil && res.Injected.TTL == 1 && res.TermTTL > 1 {
		res.DeviceTTL = (res.TermTTL + 1) / 2
		res.TTLCopyCorrected = true
	}

	// Placement inference (§4.1): both an injected terminating response
	// and an ICMP from the next hop → on-path; injection alone → in-path;
	// drops → in-path (the device removed the packet from the wire).
	switch {
	case res.TermKind == KindTimeout:
		res.Placement = PlacementInPath
	case onPathVotes*2 > len(terms):
		res.Placement = PlacementOnPath
	default:
		res.Placement = PlacementInPath
	}

	// Location class relative to the endpoint (Figure 3).
	switch {
	case res.TermTTL > res.EndpointTTL:
		res.Location = LocPastE
	case res.TermTTL == res.EndpointTTL:
		res.Location = LocAtE
	default:
		res.Location = LocPath
		// No-ICMP ambiguity: neither the terminating hop nor the one
		// before it answered in the control trace.
		_, okAt := res.Control.MostLikelyHop(res.DeviceTTL)
		_, okBefore := res.Control.MostLikelyHop(res.DeviceTTL - 1)
		if !okAt && !okBefore && res.DeviceTTL > 1 {
			res.Location = LocNoICMP
		}
	}

	// Blocking hop: the control-trace hop at the (corrected) device TTL.
	res.BlockingHop = p.hopInfo(res.Control, res.DeviceTTL)

	// Quote delta at the blocking hop from the control trace.
	for i := range res.Control.Traces {
		for j := range res.Control.Traces[i].Obs {
			obs := &res.Control.Traces[i].Obs[j]
			if obs.TTL == res.DeviceTTL && obs.QuoteDelta != nil {
				res.QuoteDelta = obs.QuoteDelta
				break
			}
		}
		if res.QuoteDelta != nil {
			break
		}
	}

	p.scoreConfidence(res)
}

// hopInfo resolves a control-trace hop to registry metadata.
func (p *Prober) hopInfo(control *Aggregate, ttl int) HopInfo {
	info := HopInfo{TTL: ttl}
	addr, ok := control.MostLikelyHop(ttl)
	if !ok {
		// At-E and Past-E cases have no router at that TTL; fall back to
		// the endpoint address for At-E.
		if ttl >= control.EndpointTTL && control.EndpointTTL > 0 {
			addr = p.Endpoint.Addr
		} else {
			return info
		}
	}
	info.Addr = addr
	var gi geoip.Info
	gi, _ = p.Net.Geo.Lookup(addr)
	info.ASN = gi.ASN
	info.Country = gi.Country
	info.Org = gi.Name
	return info
}
