// Package centrace implements CenTrace, the censorship traceroute (§4 of
// the paper): TTL-limited application-layer probes for a Control Domain and
// a Test Domain that build the network path to an endpoint and locate the
// hop at which a censorship device interferes, classify the device as
// in-path or on-path, correct for TTL-copying injectors, and extract the
// features later used for device clustering.
package centrace

import (
	"fmt"
	"net/netip"
	"time"

	"cendev/internal/httpgram"
	"cendev/internal/netem"
	"cendev/internal/obs"
	"cendev/internal/simnet"
	"cendev/internal/tlsgram"
	"cendev/internal/topology"
)

// Protocol selects the application protocol of the probes.
type Protocol int

// Probe protocols. CenTrace targets HTTP Host-header and TLS SNI blocking
// (§4: "We focus on censorship devices performing censorship on the HTTP
// Host header or the SNI extension in the TLS Client Hello"); DNS is the
// protocol extension the paper names in §4.1 and §8, probing UDP queries
// whose QNAME is the trigger.
const (
	HTTP Protocol = iota
	HTTPS
	DNS
	// SSH probes send the client version banner after the handshake. SSH
	// carries no hostname, so the "test" probe is the SSH banner itself
	// (triggering protocol-detecting devices) and the "control" probe is a
	// neutral payload on the same port; the domain strings act only as
	// labels.
	SSH
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case HTTP:
		return "HTTP"
	case HTTPS:
		return "HTTPS"
	case DNS:
		return "DNS"
	default:
		return "SSH"
	}
}

// Port returns the destination port for the protocol.
func (p Protocol) Port() uint16 {
	switch p {
	case HTTP:
		return 80
	case HTTPS:
		return 443
	case DNS:
		return 53
	default:
		return 22
	}
}

// Config parameterizes one CenTrace measurement.
type Config struct {
	ControlDomain string
	TestDomain    string
	Protocol      Protocol
	// MaxTTL bounds the TTL sweep (the paper uses 64; simulated paths are
	// shorter, so the default is 30).
	MaxTTL int
	// Repetitions is how many times each traceroute is repeated to absorb
	// path variance (§4.1: 11 covers 90% of paths on average).
	Repetitions int
	// Retries is how often a timed-out probe is retried before the timeout
	// is accepted (§4.1: up to three times). Zero means the default of 3;
	// pass a negative value to disable retries entirely (ablations).
	Retries int
	// ProbeInterval is the wait between consecutive probes to let stateful
	// devices forget the flow (§4.1: 120 seconds). Virtual time.
	ProbeInterval time.Duration
	// MaxConsecutiveTimeouts ends the TTL sweep early once this many
	// consecutive TTLs have timed out (a dropping device never answers
	// again; the paper simply probes to TTL 64). The default, 10, is high
	// enough that a TTL-copying injector's first surviving reset — which
	// appears only at roughly twice the device's hop distance (§4.3) —
	// is still observed.
	MaxConsecutiveTimeouts int
	// Obs, when non-nil, receives probe/retry counters and virtual-RTT
	// histograms. The recorded series are deterministic for a given
	// scenario and seed at any worker count.
	Obs *obs.Registry
	// Tracer, when non-nil, records measure/trace/probe spans stamped with
	// the network's virtual clock.
	Tracer *obs.Tracer
	// Parent, when non-nil, is the span the measurement nests under (set
	// by Campaign; ignored without a Tracer).
	Parent *obs.Span
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxTTL == 0 {
		c.MaxTTL = 30
	}
	if c.Repetitions == 0 {
		c.Repetitions = 11
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 120 * time.Second
	}
	if c.MaxConsecutiveTimeouts == 0 {
		c.MaxConsecutiveTimeouts = 10
	}
	return c
}

// ResponseKind classifies what a single TTL probe elicited.
type ResponseKind int

// Probe response kinds. RST, FIN, Data, and Timeout can be terminating
// responses (§4.1); ICMP is always non-terminating.
const (
	KindTimeout ResponseKind = iota
	KindICMP
	KindRST
	KindFIN
	KindData // payload-bearing response from the endpoint IP (HTTP body, TLS record, or injected blockpage)
)

// String implements fmt.Stringer using the labels of Figure 3.
func (k ResponseKind) String() string {
	switch k {
	case KindTimeout:
		return "TIMEOUT"
	case KindICMP:
		return "ICMP"
	case KindRST:
		return "RST"
	case KindFIN:
		return "FIN"
	case KindData:
		return "HTTP"
	default:
		return fmt.Sprintf("ResponseKind(%d)", int(k))
	}
}

// InjectedFeatures are the TCP/IP header fields of a terminating packet
// received from the endpoint IP — features for clustering (§7.1).
type InjectedFeatures struct {
	TTL       uint8
	IPID      uint16
	IPFlags   netem.IPFlags
	TCPFlags  netem.TCPFlags
	TCPWindow uint16
	Options   []netem.TCPOptionKind
}

// ProbeObs is the observation from one TTL-limited probe.
type ProbeObs struct {
	TTL  int
	Kind ResponseKind
	// From is the source of the classified response: the ICMP-sending
	// router, or the endpoint IP for TCP responses.
	From netip.Addr
	// GotICMPAlongside is true when a terminating TCP response arrived
	// together with an ICMP Time Exceeded for the same probe — the on-path
	// signature (§4.1, Figure 2(D)).
	GotICMPAlongside bool
	// ICMPFrom is the router that sent the alongside ICMP.
	ICMPFrom netip.Addr
	// Payload of a KindData response.
	Payload []byte
	// Injected header features for TCP responses.
	Injected *InjectedFeatures
	// Quote is the quoted packet from an ICMP response.
	Quote *netem.QuotedPacket
	// QuoteDelta compares the sent probe with the quote (Tracebox-style).
	QuoteDelta *netem.QuoteDelta
	// DialFailed marks probes whose TCP handshake never completed.
	DialFailed bool
}

// Prober runs CenTrace measurements from a client to an endpoint over a
// simulated network.
type Prober struct {
	Net      *simnet.Network
	Client   *topology.Host
	Endpoint *topology.Host
	Config   Config
	// probed records whether any probe has been sent yet: the inter-probe
	// wait is only needed *between* probes, never before the first one.
	probed bool
	// payloads caches rendered probe payloads per domain — a trace sends
	// the same request bytes dozens of times across the TTL sweep. Callers
	// must treat the returned bytes as immutable.
	payloads map[string][]byte
	// sentPkt/sentUDP are the scratch as-sent templates ICMP quotes are
	// diffed against (TCP and DNS probes respectively). CompareQuote only
	// reads them and nothing retains them past the probe, so one of each
	// per prober suffices.
	sentPkt netem.Packet
	sentUDP netem.Packet
	// m holds the pre-resolved metric handles (all nil when Config.Obs is
	// nil — the no-op path).
	m proberMetrics
}

// proberMetrics are the probe-level series, resolved once per Prober so
// the TTL-sweep hot loop never takes the registry lock.
type proberMetrics struct {
	probesByKind [5]*obs.Counter // centrace_probes_total{kind}
	retries      *obs.Counter    // centrace_retries_total
	dialFailures *obs.Counter    // centrace_dial_failures_total
	probeSecs    *obs.Histogram  // centrace_probe_virtual_seconds
}

// New returns a Prober with defaulted configuration.
func New(net *simnet.Network, client, ep *topology.Host, cfg Config) *Prober {
	p := &Prober{Net: net, Client: client, Endpoint: ep, Config: cfg.withDefaults()}
	if r := p.Config.Obs; r != nil {
		for k := KindTimeout; k <= KindData; k++ {
			p.m.probesByKind[k] = r.Counter("centrace_probes_total", obs.L("kind", k.String()))
		}
		p.m.retries = r.Counter("centrace_retries_total")
		p.m.dialFailures = r.Counter("centrace_dial_failures_total")
		p.m.probeSecs = r.Histogram("centrace_probe_virtual_seconds", obs.TimeBuckets)
	}
	return p
}

// startSpan opens the measurement's top-level span: under Config.Parent
// when the campaign supplied one, as a tracer root otherwise. Returns nil
// (a no-op span) when the prober is untraced.
func (p *Prober) startSpan(name string, attrs ...obs.Label) *obs.Span {
	if p.Config.Parent != nil {
		return p.Config.Parent.StartChild(name, p.Net.Now(), attrs...)
	}
	return p.Config.Tracer.Start(name, p.Net.Now(), attrs...)
}

// payloadFor renders the probe payload for a domain, memoized per domain
// for the life of the prober.
func (p *Prober) payloadFor(domain string) []byte {
	if cached, ok := p.payloads[domain]; ok {
		return cached
	}
	rendered := p.renderPayload(domain)
	if p.payloads == nil {
		p.payloads = make(map[string][]byte)
	}
	p.payloads[domain] = rendered
	return rendered
}

// renderPayload renders the probe payload for a domain.
func (p *Prober) renderPayload(domain string) []byte {
	switch p.Config.Protocol {
	case HTTPS:
		return tlsgram.NewClientHello(domain).Serialize()
	case SSH:
		if domain == p.Config.TestDomain {
			return []byte("SSH-2.0-CenTrace_probe\r\n")
		}
		return []byte("PING CenTrace_control\r\n")
	default:
		return httpgram.NewRequest(domain).Render()
	}
}

// probeOnce sends a single TTL-limited probe over a fresh TCP connection
// (or a bare UDP datagram for DNS) and classifies the result. It does not
// retry.
func (p *Prober) probeOnce(domain string, ttl int) ProbeObs {
	if p.Config.Protocol == DNS {
		return p.probeOnceDNS(domain, ttl)
	}
	obs := ProbeObs{TTL: ttl, Kind: KindTimeout}
	conn, err := p.Net.Dial(p.Client, p.Endpoint, p.Config.Protocol.Port())
	if err != nil {
		obs.DialFailed = true
		return obs
	}
	defer conn.Close()
	payload := p.payloadFor(domain)
	// The as-sent template is only needed to diff ICMP quotes against, so
	// it is built lazily — most probes never see a quote.
	var sent *netem.Packet
	sentTemplate := func() *netem.Packet {
		if sent == nil {
			sent = &p.sentPkt
			sent.FillTCP(p.Client.Addr, p.Endpoint.Addr, conn.SrcPort, conn.DstPort,
				netem.TCPPsh|netem.TCPAck, 2, 1001, payload)
			sent.IP.TTL = uint8(ttl)
			sent.IP.ID = 2
		}
		return sent
	}
	ds := conn.SendPayload(payload, uint8(ttl))

	for _, d := range ds {
		pkt := d.Packet
		switch {
		case pkt.ICMP != nil && pkt.ICMP.Type == netem.ICMPTimeExceeded:
			if obs.Kind == KindTimeout { // first ICMP classifies, unless a TCP response wins
				obs.Kind = KindICMP
				obs.From = pkt.IP.Src
				if q, err := pkt.ICMP.QuotedPacket(); err == nil {
					obs.Quote = q
					delta := netem.CompareQuote(sentTemplate(), q)
					obs.QuoteDelta = &delta
				}
			} else {
				obs.GotICMPAlongside = true
				obs.ICMPFrom = pkt.IP.Src
			}
		case pkt.TCP != nil && pkt.IP.Src == p.Endpoint.Addr:
			// A response from (or spoofed as) the endpoint terminates.
			if obs.Kind == KindICMP {
				// The ICMP arrived first in delivery order; reclassify and
				// remember the double observation.
				obs.GotICMPAlongside = true
				obs.ICMPFrom = obs.From
			}
			obs.From = pkt.IP.Src
			obs.Injected = &InjectedFeatures{
				TTL:       pkt.IP.TTL,
				IPID:      pkt.IP.ID,
				IPFlags:   pkt.IP.Flags,
				TCPFlags:  pkt.TCP.Flags,
				TCPWindow: pkt.TCP.Window,
				Options:   pkt.TCP.OptionKinds(),
			}
			switch {
			case pkt.TCP.Flags&netem.TCPRst != 0:
				obs.Kind = KindRST
			case len(pkt.Payload) > 0:
				obs.Kind = KindData
				// pkt is pooled and reclaimed at the next Transmit; the
				// observation outlives the whole trace (infer runs blockpage
				// matching on it after both aggregates), so copy the bytes.
				obs.Payload = append([]byte(nil), pkt.Payload...)
			case pkt.TCP.Flags&netem.TCPFin != 0:
				// A bare FIN counts as a terminating injection only when it
				// arrives in order. A FIN with a higher sequence number means
				// the preceding data segment was lost in transit — a genuine
				// close, not censorship — so the probe is retried instead.
				if obs.Kind != KindData && pkt.TCP.Seq == conn.ExpectedSeq() {
					obs.Kind = KindFIN
				}
			}
		}
	}
	return obs
}

// probe sends one probe with retries for timeouts (§4.1: "we retry the
// request up to three times to account for transient network failures"),
// recording attempt statistics on the trace for the confidence score.
//
// The inter-probe wait exists to let stateful devices forget the previous
// flow (§4.1: the paper waits 120 seconds so residual blocking from one
// probe cannot contaminate the next), so it is applied between probes
// only — sleeping before the very first probe of a measurement would
// waste virtual time with nothing to forget. Retries back off
// exponentially (2×, 4×, 8× the interval, capped at 8×): a retry fired
// straight back into a loss burst or an outage window would fail exactly
// like the original, whereas backing off rides the impairment out while
// still giving stateful devices their forget window.
func (p *Prober) probe(domain string, ttl int, tr *Trace, parent *obs.Span) ProbeObs {
	span := parent.StartChild("centrace.probe", p.Net.Now(), obs.L("ttl", obs.SmallInt(ttl)))
	var ob ProbeObs
	attempts := 0
	for attempt := 0; attempt <= p.Config.Retries; attempt++ {
		if p.probed {
			wait := p.Config.ProbeInterval
			if attempt > 0 {
				backoff := attempt
				if backoff > 3 {
					backoff = 3
				}
				wait *= time.Duration(1 << backoff)
			}
			p.Net.Sleep(wait)
		}
		p.probed = true
		attempts++
		start := p.Net.Now()
		ob = p.probeOnce(domain, ttl)
		p.m.probeSecs.Observe((p.Net.Now() - start).Seconds())
		p.m.probesByKind[ob.Kind].Inc()
		if ob.DialFailed {
			tr.DialFailures++
			p.m.dialFailures.Inc()
		}
		if ob.Kind != KindTimeout {
			break
		}
	}
	tr.Attempts += attempts
	tr.Retries += attempts - 1
	p.m.retries.Add(int64(attempts - 1))
	span.SetAttr("kind", ob.Kind.String())
	span.End(p.Net.Now())
	return ob
}

// Trace is one full TTL sweep for one domain.
type Trace struct {
	Domain string
	Obs    []ProbeObs
	// TermIdx indexes the terminating observation in Obs, -1 when the
	// sweep ended without one (endpoint never answered and no trailing
	// timeout run was recorded — should not happen in practice).
	TermIdx int
	// Attempts counts every probe transmission in this sweep, retries
	// included.
	Attempts int
	// Retries counts extra attempts spent on timed-out probes (§4.1).
	Retries int
	// DialFailures counts attempts whose TCP handshake never completed.
	DialFailures int
}

// Terminating returns the terminating observation, or nil.
func (t *Trace) Terminating() *ProbeObs {
	if t.TermIdx < 0 || t.TermIdx >= len(t.Obs) {
		return nil
	}
	return &t.Obs[t.TermIdx]
}

// trace runs one TTL sweep for a domain, applying the paper's terminating
// response rules: a TCP response from the endpoint IP terminates
// immediately; otherwise, once every remaining TTL times out, the first
// timeout of the trailing run is the terminating response.
func (p *Prober) trace(domain string, parent *obs.Span) Trace {
	span := parent.StartChild("centrace.trace", p.Net.Now())
	defer func() { span.End(p.Net.Now()) }()
	tr := Trace{Domain: domain, TermIdx: -1}
	consecutiveTimeouts := 0
	firstTrailingTimeout := -1
	for ttl := 1; ttl <= p.Config.MaxTTL; ttl++ {
		obs := p.probe(domain, ttl, &tr, span)
		tr.Obs = append(tr.Obs, obs)
		switch obs.Kind {
		case KindRST, KindFIN, KindData:
			tr.TermIdx = len(tr.Obs) - 1
			return tr
		case KindTimeout:
			if firstTrailingTimeout < 0 {
				firstTrailingTimeout = len(tr.Obs) - 1
			}
			consecutiveTimeouts++
			if consecutiveTimeouts >= p.Config.MaxConsecutiveTimeouts {
				tr.TermIdx = firstTrailingTimeout
				return tr
			}
		default: // ICMP: path continues
			consecutiveTimeouts = 0
			firstTrailingTimeout = -1
		}
	}
	if firstTrailingTimeout >= 0 {
		tr.TermIdx = firstTrailingTimeout
	}
	return tr
}
