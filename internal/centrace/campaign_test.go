package centrace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cendev/internal/faults"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// TestCampaignResetsDeviceState is the regression test for stateful
// flow-tracking leaking across independent targets: a device with a huge
// residual window flags the client↔server pair while the first target is
// measured, and without a reset the second target's control traceroute is
// eaten by that residual state.
func TestCampaignResetsDeviceState(t *testing.T) {
	build := func() (*simnet.Network, *topology.Host, *topology.Host) {
		n, client, server := buildNet(t)
		dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
		dev.ResidualWindow = 1000 * time.Hour // never forgets on its own
		n.AttachDevice("r2", "r3", dev)
		return n, client, server
	}

	// First, establish the hazard: back-to-back Probers without a reset.
	n, client, server := build()
	first := New(n, client, server, cfg()).Run()
	if !first.Blocked {
		t.Fatal("setup: first target should be blocked")
	}
	open := cfg()
	open.TestDomain = "www.open-other.example"
	second := New(n, client, server, open).Run()
	if second.Valid {
		t.Fatal("setup: residual state should corrupt the follow-up measurement — test premise broken")
	}

	// The campaign resets device state between targets, so the same pair of
	// measurements comes out clean.
	n, client, server = build()
	results := (&Campaign{
		Net: n, Client: client,
		Base: Config{ControlDomain: controlDomain, Repetitions: 3},
	}).Run([]Target{
		{Endpoint: server, Domain: blockedDomain, Protocol: HTTP},
		{Endpoint: server, Domain: "www.open-other.example", Protocol: HTTP},
	})
	if !results[0].Result.Blocked {
		t.Error("first target should still be blocked")
	}
	if !results[1].Result.Valid {
		t.Error("second target invalid: residual device state leaked across targets")
	}
	if results[1].Result.Blocked {
		t.Error("second target blocked: residual device state leaked across targets")
	}
}

// TestCampaignPanicRecovery: a target that blows up mid-measurement (nil
// endpoint → nil dereference) must yield an error-bearing CampaignResult
// while the remaining targets still run.
func TestCampaignPanicRecovery(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	var progress int
	results := (&Campaign{
		Net: n, Client: client,
		Base:     Config{ControlDomain: controlDomain, Repetitions: 3},
		Progress: func(done, total int, r CampaignResult) { progress = done },
	}).Run([]Target{
		{Endpoint: server, Domain: blockedDomain, Protocol: HTTP},
		{Endpoint: nil, Domain: blockedDomain, Protocol: HTTP, Label: "bad"},
		{Endpoint: server, Domain: "www.open-other.example", Protocol: HTTP},
	})
	if progress != 3 {
		t.Errorf("progress = %d, want 3 (every target resolved)", progress)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("panicking target: Err = %v, want recovered panic", results[1].Err)
	}
	if results[1].Result != nil {
		t.Error("panicking target should carry no Result")
	}
	if !results[1].Failed() {
		t.Error("panicking target should report Failed")
	}
	// The targets around the panic completed normally.
	if results[0].Result == nil || !results[0].Result.Blocked {
		t.Error("target before the panic lost")
	}
	if results[2].Result == nil || !results[2].Result.Valid || results[2].Result.Blocked {
		t.Error("target after the panic lost")
	}
}

// TestCampaignRetryFailedPasses: a target measured during a network outage
// (blackhole on the client access link) fails its first pass and succeeds
// when the retry pass comes around after the outage window closes.
func TestCampaignRetryFailedPasses(t *testing.T) {
	build := func(passes int) CampaignResult {
		n, client, server := buildNet(t)
		// Pass 1 runs entirely inside the outage (it ends around t≈2280s
		// virtual with 1 repetition and no per-probe retries); pass 2 starts
		// still inside but outlives it.
		n.SetFaults(faults.NewEngine(1).AddLink("@client", "r1",
			faults.Blackhole(0, 41*time.Minute)))
		var progress int
		results := (&Campaign{
			Net: n, Client: client,
			Base:              Config{ControlDomain: controlDomain, Repetitions: 1, Retries: -1},
			RetryFailedPasses: passes,
			Progress:          func(done, total int, r CampaignResult) { progress = done },
		}).Run([]Target{{Endpoint: server, Domain: controlDomain, Protocol: HTTP}})
		if progress != 1 {
			t.Errorf("progress = %d, want 1", progress)
		}
		return results[0]
	}
	if r := build(0); !r.Failed() {
		t.Error("without retry passes the outage-window target should fail")
	}
	if r := build(1); r.Failed() {
		t.Errorf("retry pass should succeed after the outage (err=%v valid=%v)",
			r.Err, r.Result != nil && r.Result.Valid)
	}
}

// TestCampaignJournalResume: a journaled campaign's results are restored on
// a later run instead of re-measured — proven by resuming against a network
// with no device at all and still seeing the blocked verdicts.
func TestCampaignJournalResume(t *testing.T) {
	var buf bytes.Buffer
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)
	targets := []Target{
		{Endpoint: server, Domain: blockedDomain, Protocol: HTTP, Label: "KZ"},
		{Endpoint: server, Domain: blockedDomain, Protocol: HTTPS, Label: "KZ"},
	}
	j := NewJournal(&buf)
	first := (&Campaign{
		Net: n, Client: client,
		Base:    Config{ControlDomain: controlDomain, Repetitions: 3},
		Journal: j,
	}).Run(targets)
	if len(Blocked(first)) != 2 {
		t.Fatalf("setup: want 2 blocked results, got %d", len(Blocked(first)))
	}
	if j.Err() != nil {
		t.Fatalf("journal error: %v", j.Err())
	}
	if j.Len() != 2 {
		t.Fatalf("journal entries = %d, want 2", j.Len())
	}

	// Resume on a deviceless network: only restored results can be blocked.
	n2, client2, server2 := buildNet(t)
	j2, err := ResumeJournal(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	targets2 := []Target{
		{Endpoint: server2, Domain: blockedDomain, Protocol: HTTP, Label: "KZ"},
		{Endpoint: server2, Domain: blockedDomain, Protocol: HTTPS, Label: "KZ"},
	}
	var progress int
	second := (&Campaign{
		Net: n2, Client: client2,
		Base:     Config{ControlDomain: controlDomain, Repetitions: 3},
		Journal:  j2,
		Progress: func(done, total int, r CampaignResult) { progress = done },
	}).Run(targets2)
	if progress != 2 {
		t.Errorf("progress = %d, want 2 (both restored)", progress)
	}
	if len(Blocked(second)) != 2 {
		t.Errorf("restored results lost the blocked verdicts: %d blocked", len(Blocked(second)))
	}
}

func TestJournalTornTrailingLine(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Record(CampaignResult{Target: Target{Domain: "a.example", Protocol: HTTP}})
	j.Record(CampaignResult{Target: Target{Domain: "b.example", Protocol: HTTP}})
	// The crash artifact: a partially written final line.
	buf.WriteString(`{"key":"c.exampl`)
	j2, err := ResumeJournal(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("torn trailing line should be tolerated: %v", err)
	}
	if j2.Len() != 2 {
		t.Errorf("entries = %d, want 2 (torn line re-measured)", j2.Len())
	}
	if w := j2.Warnings(); len(w) != 1 {
		t.Errorf("warnings = %v, want exactly one for the torn line", w)
	}
}

// TestJournalTornSegmentMidFile: a record torn in the middle of the
// journal (write reordering around a crash) is skipped with a warning;
// every record around it is still restored — the resume must not fail.
func TestJournalTornSegmentMidFile(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tgtA := Target{Domain: "a.example", Protocol: HTTP}
	tgtB := Target{Domain: "b.example", Protocol: HTTPS}
	j.Record(CampaignResult{Target: tgtA})
	// The torn segment: a stretch of non-frame bytes where a record
	// should be.
	buf.WriteString(`{"key":"b.exa` + "\n")
	j.Record(CampaignResult{Target: tgtB})

	j2, err := ResumeJournal(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("mid-file torn segment should be skipped, not fatal: %v", err)
	}
	if j2.Len() != 2 {
		t.Errorf("entries = %d, want 2 (records around the tear restored)", j2.Len())
	}
	for _, tgt := range []Target{tgtA, tgtB} {
		if _, ok := j2.Lookup(tgt); !ok {
			t.Errorf("target %s lost around the torn segment", tgt.Key())
		}
	}
	w := j2.Warnings()
	if len(w) != 1 {
		t.Fatalf("warnings = %v, want exactly one for the torn segment", w)
	}
	if !strings.Contains(w[0], "garbage") {
		t.Errorf("warning should describe the skipped region: %q", w[0])
	}
	if _, torn := j2.Torn(); torn {
		t.Error("interior tear misreported as a torn tail")
	}
}

// TestOpenJournalFileTornTailAppend: appending to a journal whose final
// record was torn by a crash must not glue the new record onto the torn
// tail — OpenJournalFile truncates back to the last frame boundary, so
// the surviving record and the new one both outlive the next resume.
func TestOpenJournalFileTornTailAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	var buf bytes.Buffer
	NewJournal(&buf).Record(CampaignResult{Target: Target{Domain: "a.example", Protocol: HTTP}})
	whole := buf.Len()
	NewJournal(&buf).Record(CampaignResult{Target: Target{Domain: "b.example", Protocol: HTTP}})
	torn := buf.Bytes()[:whole+(buf.Len()-whole)/2] // second frame cut mid-write
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j, f, err := OpenJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("restored %d entries, want 1", j.Len())
	}
	var truncated bool
	for _, w := range j.Warnings() {
		if strings.Contains(w, "truncated torn tail") {
			truncated = true
		}
	}
	if !truncated {
		t.Fatalf("warnings = %v, want a torn-tail truncation", j.Warnings())
	}
	tgtC := Target{Domain: "c.example", Protocol: HTTPS}
	j.Record(CampaignResult{Target: tgtC})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, f2, err := OpenJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if j2.Len() != 2 {
		t.Fatalf("after append past torn tail: %d entries, want 2", j2.Len())
	}
	if _, ok := j2.Lookup(tgtC); !ok {
		t.Error("record appended after a torn tail was lost")
	}
	if len(j2.Warnings()) != 0 {
		t.Errorf("warnings = %v, want none (the tear was repaired on the first open)", j2.Warnings())
	}
}

// TestJournalLegacyJSONLResumeAndAppend: a journal written by an earlier
// version holds JSON lines. Resume must restore it, keep appending JSON
// (one file, one format), and apply the newline repair to a torn tail.
func TestJournalLegacyJSONLResumeAndAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	legacy := `{"key":"a.example|http","domain":"a.example","protocol":"http"}` + "\n" +
		`{"key":"b.exa` // torn tail, no newline
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	j, f, err := OpenJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("restored %d entries, want 1", j.Len())
	}
	if len(j.Warnings()) != 1 {
		t.Fatalf("warnings = %v, want one for the torn line", j.Warnings())
	}
	tgtC := Target{Domain: "c.example", Protocol: HTTPS}
	j.Record(CampaignResult{Target: tgtC})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The appended record must be JSON — the file stays single-format.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte{0xC5}) {
		t.Fatal("binary frame appended to a legacy JSONL journal")
	}

	j2, f2, err := OpenJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if j2.Len() != 2 {
		t.Fatalf("after legacy append: %d entries, want 2", j2.Len())
	}
	if _, ok := j2.Lookup(tgtC); !ok {
		t.Error("record appended to a legacy journal was lost")
	}
}

func TestJournalErrorEntries(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tgt := Target{Domain: "x.example", Protocol: HTTP}
	j.Record(CampaignResult{Target: tgt, Err: errFake})
	j2, err := ResumeJournal(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := j2.Lookup(tgt)
	if !ok {
		t.Fatal("error entry not restored")
	}
	if cr.Err == nil || cr.Err.Error() != "boom" {
		t.Errorf("restored Err = %v, want boom", cr.Err)
	}
	if !cr.Failed() {
		t.Error("restored error entry should report Failed")
	}
}

var errFake = errFakeType{}

type errFakeType struct{}

func (errFakeType) Error() string { return "boom" }
