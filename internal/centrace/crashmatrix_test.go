package centrace

// The campaign journal's crash matrix: every filesystem operation across
// open → record → sync → ack → close → resume is an injection point, for
// every fault mode, across many seeds. The invariant matches how a
// campaign uses the journal: a target is only skipped on resume (not
// re-measured) if its Record was followed by a successful Sync — so any
// such acknowledged checkpoint must survive a crash, byte-exact. A
// workload that acknowledges without syncing must fail the same matrix.

import (
	"errors"
	"fmt"
	"testing"

	"cendev/internal/vfs"
	"cendev/internal/vfs/crashtest"
)

func matrixTarget(i int) Target {
	return Target{
		Domain:   fmt.Sprintf("blocked-%02d.example", i),
		Protocol: HTTP,
		Label:    "CN",
	}
}

// journalWorkload records a campaign's worth of per-target failures,
// acknowledging each checkpoint the journal reported durable (recorded
// without error, then synced). Halfway through it closes and resumes —
// the interrupted-campaign path — and keeps recording.
func journalWorkload(syncBeforeAck bool) func(fsys vfs.FS, ack *crashtest.Acks) error {
	record := func(j *Journal, f vfs.File, ack *crashtest.Acks, i int) {
		t := matrixTarget(i)
		msg := fmt.Sprintf("probe: unreachable %d", i)
		j.Record(CampaignResult{Target: t, Err: errors.New(msg)})
		if j.Err() != nil {
			return
		}
		if syncBeforeAck && f.Sync() != nil {
			return
		}
		ack.Ack(t.Key(), msg)
	}
	return func(fsys vfs.FS, ack *crashtest.Acks) error {
		j, f, err := OpenJournalFileFS(fsys, "campaign.jsonl")
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			record(j, f, ack, i)
		}
		if !syncBeforeAck {
			// The buggy variant batches durability to session end: acks
			// issued above have no barrier behind them until here.
			_ = f.Sync()
		}
		f.Close()

		j2, f2, err := OpenJournalFileFS(fsys, "campaign.jsonl")
		if err != nil {
			return err
		}
		for i := 5; i < 8; i++ {
			record(j2, f2, ack, i)
		}
		if !syncBeforeAck {
			_ = f2.Sync()
		}
		f2.Close()
		return nil
	}
}

// journalVerify resumes the journal post-crash and checks every
// acknowledged checkpoint is restored with its exact recorded error, and
// that a second resume agrees with the first (recovery idempotent).
func journalVerify(fsys vfs.FS, acked map[string]string) error {
	j, f, err := OpenJournalFileFS(fsys, "campaign.jsonl")
	if err != nil {
		return fmt.Errorf("post-crash resume failed: %w", err)
	}
	f.Close()
	for i := 0; i < 8; i++ {
		t := matrixTarget(i)
		want, wasAcked := acked[t.Key()]
		if !wasAcked {
			continue
		}
		cr, found := j.Lookup(t)
		if !found {
			return fmt.Errorf("acknowledged checkpoint %s lost after crash", t.Key())
		}
		if cr.Err == nil || cr.Err.Error() != want {
			return fmt.Errorf("checkpoint %s resumed with error %v, acknowledged %q", t.Key(), cr.Err, want)
		}
	}

	j2, f2, err := OpenJournalFileFS(fsys, "campaign.jsonl")
	if err != nil {
		return fmt.Errorf("second resume failed: %w", err)
	}
	f2.Close()
	if j2.Len() != j.Len() {
		return fmt.Errorf("resume not idempotent: first saw %d entries, second %d", j.Len(), j2.Len())
	}
	return nil
}

// TestCrashMatrixJournal is the journal's acceptance gate: zero
// violations across every injection point × mode × seed.
func TestCrashMatrixJournal(t *testing.T) {
	res := crashtest.RunT(t, crashtest.Config{
		Workload: journalWorkload(true),
		Verify:   journalVerify,
	})
	t.Logf("journal matrix: %d injection points, %d cells", res.Points, res.Cells)
}

// TestCrashMatrixCatchesUnsyncedAck proves the matrix has teeth against
// the journal too: acknowledging checkpoints with only an end-of-session
// Sync behind them (no per-record barrier) must produce violations.
func TestCrashMatrixCatchesUnsyncedAck(t *testing.T) {
	res, err := crashtest.Run(crashtest.Config{
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Modes:    []crashtest.Mode{crashtest.ModeCrash},
		Workload: journalWorkload(false),
		Verify:   journalVerify,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("journal acknowledging unsynced checkpoints passed the crash matrix: harness cannot see the bug it exists for")
	}
	t.Logf("unsynced ack caught: %d violations, e.g. %s", len(res.Violations), res.Violations[0])
}
