package centrace

import (
	"bytes"
	"net/netip"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

const (
	blockedDomain = "www.blocked.example"
	controlDomain = "www.control.example"
)

// buildNet creates client—r1—r2—r3—r4—server with a server hosting both
// domains, and returns the network plus hosts.
func buildNet(t *testing.T) (*simnet.Network, *topology.Host, *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asT := g.AddAS(200, "Transit", "DE")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2", asT)
	g.AddRouter("r3", asT)
	r4 := g.AddRouter("r4", asE)
	g.Link("r1", "r2")
	g.Link("r2", "r3")
	g.Link("r3", "r4")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r4)
	n := simnet.New(g)
	n.RegisterServer("server", endpoint.NewServer(blockedDomain, controlDomain))
	return n, client, server
}

func cfg() Config {
	return Config{
		ControlDomain: controlDomain,
		TestDomain:    blockedDomain,
		Repetitions:   3, // enough for modal stats on a deterministic path
	}
}

func TestUnblockedMeasurement(t *testing.T) {
	n, client, server := buildNet(t)
	res := New(n, client, server, cfg()).Run()
	if !res.Valid {
		t.Fatal("control should reach the endpoint")
	}
	if res.Blocked {
		t.Errorf("no devices, but Blocked: term=%s ttl=%d", res.TermKind, res.TermTTL)
	}
	if res.EndpointTTL != 5 {
		t.Errorf("EndpointTTL = %d, want 5", res.EndpointTTL)
	}
	if res.TermKind != KindData {
		t.Errorf("TermKind = %s, want HTTP data", res.TermKind)
	}
}

func TestInPathDropLocalized(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked {
		t.Fatal("want blocked")
	}
	if res.TermKind != KindTimeout {
		t.Errorf("TermKind = %s, want TIMEOUT", res.TermKind)
	}
	if res.DeviceTTL != 3 {
		t.Errorf("DeviceTTL = %d, want 3", res.DeviceTTL)
	}
	if res.Placement != PlacementInPath {
		t.Errorf("Placement = %s, want in-path", res.Placement)
	}
	if res.Location != LocPath {
		t.Errorf("Location = %s, want Path(C->E)", res.Location)
	}
	if res.BlockingHop.Addr != n.Graph.Router("r3").Addr {
		t.Errorf("BlockingHop = %s, want r3 (%s)", res.BlockingHop, n.Graph.Router("r3").Addr)
	}
	if res.BlockingHop.ASN != 200 || res.BlockingHop.Country != "DE" {
		t.Errorf("BlockingHop metadata = %+v", res.BlockingHop)
	}
}

func TestInPathRSTLocalized(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorDDoSGuard, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked || res.TermKind != KindRST {
		t.Fatalf("blocked=%v term=%s, want blocked RST", res.Blocked, res.TermKind)
	}
	if res.Placement != PlacementInPath {
		t.Errorf("Placement = %s, want in-path", res.Placement)
	}
	if res.DeviceTTL != 3 {
		t.Errorf("DeviceTTL = %d, want 3", res.DeviceTTL)
	}
	if res.Injected == nil {
		t.Fatal("injected features missing")
	}
	if res.Injected.TCPWindow != 0 {
		t.Errorf("injected window = %d, want DDoSGuard profile 0", res.Injected.TCPWindow)
	}
}

func TestOnPathDetection(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{blockedDomain}, netip.Addr{})
	n.AttachDevice("r2", "r3", dev)

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked || res.TermKind != KindRST {
		t.Fatalf("blocked=%v term=%s, want blocked RST", res.Blocked, res.TermKind)
	}
	if res.Placement != PlacementOnPath {
		t.Errorf("Placement = %s, want on-path (Figure 2(D))", res.Placement)
	}
}

func TestAtEndpointGuard(t *testing.T) {
	n, client, server := buildNet(t)
	guard := middlebox.NewDevice("g", middlebox.VendorUnknownDrop, []string{blockedDomain}, netip.Addr{})
	n.AttachGuard("server", guard)

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked {
		t.Fatal("want blocked")
	}
	if res.Location != LocAtE {
		t.Errorf("Location = %s, want At E", res.Location)
	}
	if res.BlockingHop.Addr != server.Addr {
		t.Errorf("BlockingHop = %s, want endpoint address", res.BlockingHop)
	}
}

func TestPastEWithTTLCopyCorrection(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownCopyTTL, []string{blockedDomain}, netip.Addr{})
	n.AttachDevice("r3", "r4", dev) // hop distance 4; first RST arrives at TTL 7

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked || res.TermKind != KindRST {
		t.Fatalf("blocked=%v term=%s, want blocked RST", res.Blocked, res.TermKind)
	}
	if res.TermTTL != 7 {
		t.Errorf("TermTTL = %d, want 7 (≈ twice the device distance)", res.TermTTL)
	}
	if res.Location != LocPastE {
		t.Errorf("Location = %s, want Past E", res.Location)
	}
	if !res.TTLCopyCorrected {
		t.Error("TTL-copy correction not applied")
	}
	if res.DeviceTTL != 4 {
		t.Errorf("corrected DeviceTTL = %d, want 4", res.DeviceTTL)
	}
	if res.BlockingHop.Addr != n.Graph.Router("r4").Addr {
		t.Errorf("BlockingHop = %s, want r4", res.BlockingHop)
	}
	if res.Injected == nil || res.Injected.TTL != 1 {
		t.Errorf("injected TTL = %+v, want 1 (§4.3)", res.Injected)
	}
}

func TestBlockpageAttribution(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorFortinet, []string{blockedDomain}, n.Graph.Router("r2").Addr)
	n.AttachDevice("r1", "r2", dev)

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked {
		t.Fatal("want blocked")
	}
	if res.TermKind != KindData {
		t.Errorf("TermKind = %s, want HTTP (injected blockpage)", res.TermKind)
	}
	if res.BlockpageVendor != "Fortinet" {
		t.Errorf("BlockpageVendor = %q", res.BlockpageVendor)
	}
	if res.DeviceTTL != 2 {
		t.Errorf("DeviceTTL = %d, want 2", res.DeviceTTL)
	}
}

func TestNormalErrorResponseNotBlocked(t *testing.T) {
	// A 403 from the real endpoint (vhost mismatch) must NOT count as
	// blocking: the conservative definition accepts only known blockpages.
	n, client, server := buildNet(t)
	c := cfg()
	c.TestDomain = "www.not-hosted.example" // endpoint will 403 it
	res := New(n, client, server, c).Run()
	if res.Blocked {
		t.Errorf("endpoint 403 misclassified as censorship (term=%s)", res.TermKind)
	}
}

func TestNoICMPCase(t *testing.T) {
	n, client, server := buildNet(t)
	n.Graph.Router("r3").SendsICMP = false
	n.Graph.Router("r4").SendsICMP = false
	dev := middlebox.NewDevice("d", middlebox.VendorDDoSGuard, []string{blockedDomain}, netip.Addr{})
	n.AttachDevice("r3", "r4", dev)

	res := New(n, client, server, cfg()).Run()
	if !res.Blocked || res.TermKind != KindRST {
		t.Fatalf("blocked=%v term=%s", res.Blocked, res.TermKind)
	}
	if res.Location != LocNoICMP {
		t.Errorf("Location = %s, want No ICMP", res.Location)
	}
}

func TestQuoteDeltaAtBlockingHop(t *testing.T) {
	n, client, server := buildNet(t)
	tos := uint8(0x48)
	n.Graph.Router("r2").RewriteTOS = &tos
	n.Graph.Router("r3").QuoteLen = 128
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	res := New(n, client, server, cfg()).Run()
	if res.QuoteDelta == nil {
		t.Fatal("QuoteDelta missing at blocking hop")
	}
	if !res.QuoteDelta.TOSChanged {
		t.Errorf("QuoteDelta = %s, want IPTOSChanged", res.QuoteDelta)
	}
}

func TestECMPPathVarianceModalHop(t *testing.T) {
	// Diamond topology: two equal-cost transit paths, device on only one of
	// them. With 11 repetitions over fresh source ports, the modal hop
	// distribution covers both paths and the terminating stats stay modal.
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asT := g.AddAS(200, "Transit", "DE")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2a", asT)
	g.AddRouter("r2b", asT)
	r3 := g.AddRouter("r3", asE)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r3)
	n := simnet.New(g)
	n.RegisterServer("server", endpoint.NewServer(blockedDomain, controlDomain))
	// Device on both transit links into r3 (country-level deployment).
	for _, from := range []string{"r2a", "r2b"} {
		dev := middlebox.NewDevice("d-"+from, middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router(from).Addr)
		n.AttachDevice(from, "r3", dev)
	}

	c := cfg()
	c.Repetitions = 11
	res := New(n, client, server, c).Run()
	if !res.Blocked || res.DeviceTTL != 3 {
		t.Fatalf("blocked=%v deviceTTL=%d, want blocked at TTL 3", res.Blocked, res.DeviceTTL)
	}
	// The hop distribution at TTL 2 must cover both ECMP branches.
	if len(res.Control.HopDist[2]) != 2 {
		t.Errorf("hop 2 distribution = %v, want both ECMP branches observed", res.Control.HopDist[2])
	}
	if _, ok := res.Control.MostLikelyHop(2); !ok {
		t.Error("modal hop at TTL 2 missing")
	}
}

func TestHTTPSProbing(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorKerio, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	c := cfg()
	c.Protocol = HTTPS
	res := New(n, client, server, c).Run()
	if !res.Blocked {
		t.Fatal("SNI blocking not detected")
	}
	if res.TermKind != KindTimeout {
		t.Errorf("TermKind = %s", res.TermKind)
	}
	if res.DeviceTTL != 3 {
		t.Errorf("DeviceTTL = %d, want 3", res.DeviceTTL)
	}
	// Control TLS handshake must succeed end to end.
	if res.Control.EndpointTTL != 5 {
		t.Errorf("control TLS EndpointTTL = %d, want 5", res.Control.EndpointTTL)
	}
}

func TestResultStringsAndDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxTTL != 30 || c.Repetitions != 11 || c.Retries != 3 {
		t.Errorf("defaults = %+v", c)
	}
	for k, want := range map[ResponseKind]string{
		KindTimeout: "TIMEOUT", KindICMP: "ICMP", KindRST: "RST",
		KindFIN: "FIN", KindData: "HTTP",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	for l, want := range map[LocationClass]string{
		LocPath: "Path(C->E)", LocAtE: "At E", LocPastE: "Past E",
		LocNoICMP: "No ICMP", LocUnknown: "Unknown",
	} {
		if l.String() != want {
			t.Errorf("LocationClass %d = %q, want %q", l, l.String(), want)
		}
	}
	if PlacementOnPath.String() != "on-path" || HTTP.String() != "HTTP" || HTTPS.Port() != 443 {
		t.Error("stringers broken")
	}
}

func TestRetriesAbsorbTransientLoss(t *testing.T) {
	// With 20% random loss and the default 3 retries, CenTrace should not
	// misclassify an unfiltered path as blocked (§4.1's rationale for
	// retrying timeouts).
	n, client, server := buildNet(t)
	n.SetLoss(0.2, 7)
	res := New(n, client, server, cfg()).Run()
	if res.Blocked {
		t.Errorf("transient loss misclassified as blocking (term=%s ttl=%d)", res.TermKind, res.TermTTL)
	}
	// Without retries, the same loss rate produces spurious timeouts in at
	// least some repetitions (we only assert the mechanism is exercised:
	// per-trace timeouts occur).
	n2, client2, server2 := buildNet(t)
	n2.SetLoss(0.2, 7)
	c := cfg()
	c.Retries = -1
	res2 := New(n2, client2, server2, c).Run()
	sawTimeout := false
	for _, tr := range append(res2.Control.Traces, res2.Test.Traces...) {
		for _, obs := range tr.Obs {
			if obs.Kind == KindTimeout {
				sawTimeout = true
			}
		}
	}
	if !sawTimeout {
		t.Error("retry-free run under loss should show spurious timeouts")
	}
}

func TestCampaign(t *testing.T) {
	n, client, server := buildNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	targets := []Target{
		{Endpoint: server, Domain: blockedDomain, Protocol: HTTP, Label: "KZ"},
		{Endpoint: server, Domain: blockedDomain, Protocol: HTTPS, Label: "KZ"},
		{Endpoint: server, Domain: "www.open-other.example", Protocol: HTTP, Label: "KZ"},
	}
	var progress int
	c := &Campaign{
		Net: n, Client: client,
		Base:     Config{ControlDomain: controlDomain, Repetitions: 3},
		Progress: func(done, total int, r CampaignResult) { progress = done },
	}
	results := c.Run(targets)
	if len(results) != 3 || progress != 3 {
		t.Fatalf("results = %d progress = %d", len(results), progress)
	}
	blocked := Blocked(results)
	if len(blocked) != 2 {
		t.Fatalf("blocked = %d, want 2 (HTTP + HTTPS for the test domain)", len(blocked))
	}
	hops := BlockingHops(results)
	if len(hops) != 1 {
		t.Fatalf("blocking hops = %d, want 1 device", len(hops))
	}
	for addr, rs := range hops {
		if addr != n.Graph.Router("r3").Addr.String() || len(rs) != 2 {
			t.Errorf("hop %s has %d results", addr, len(rs))
		}
	}
	if results[0].Target.Label != "KZ" {
		t.Error("label not carried through")
	}
}

// TestObservationPayloadIsPrivateCopy pins the fix for a pooled-alias bug:
// ProbeObs.Payload used to alias the delivered packet's payload bytes —
// storage the simulation owns (pooled packets, the shared render cache) and
// is free to rewrite or hand to other measurements. The observation must
// hold a private copy: it has to survive later traffic on the same network,
// and mutating it must not bleed into the simulation's own buffers.
func TestObservationPayloadIsPrivateCopy(t *testing.T) {
	n, client, server := buildNet(t)
	res1 := New(n, client, server, cfg()).Run()
	if res1.Test.TermKind != KindData {
		t.Fatalf("setup: TermKind = %s, want data", res1.Test.TermKind)
	}
	var live, snap [][]byte
	for ti := range res1.Test.Traces {
		obs := res1.Test.Traces[ti].Obs
		for i := range obs {
			if obs[i].Kind == KindData && len(obs[i].Payload) > 0 {
				live = append(live, obs[i].Payload)
				snap = append(snap, append([]byte(nil), obs[i].Payload...))
			}
		}
	}
	if len(live) == 0 {
		t.Fatal("setup: no KindData observations recorded")
	}

	// Later traffic on the same network must not rewrite recorded
	// observations (the pool reclaims every delivered packet).
	_ = New(n, client, server, cfg()).Run()
	for i := range live {
		if !bytes.Equal(live[i], snap[i]) {
			t.Fatalf("observation payload %d rewritten by later traffic:\n got %q\nwant %q", i, live[i], snap[i])
		}
	}

	// And the reverse direction: a caller scribbling on its result must
	// not corrupt the simulation. Before the fix this trashed the shared
	// HTTP render cache, changing what later measurements received.
	for i := range live {
		for j := range live[i] {
			live[i][j] = '#'
		}
	}
	res3 := New(n, client, server, cfg()).Run()
	term := res3.Test.Traces[0].Terminating()
	if term == nil || term.Kind != KindData {
		t.Fatal("third measurement lost its data response")
	}
	if !bytes.Equal(term.Payload, snap[0]) {
		t.Fatalf("mutating a result corrupted the endpoint's response bytes:\n got %q\nwant %q", term.Payload, snap[0])
	}
}
