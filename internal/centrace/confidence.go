package centrace

// Confidence scoring: every CenTrace result carries a score in [0,1]
// summarizing how well-supported its localization is, derived from the
// agreement of the repeated traceroutes, the control-trace support for the
// inferred blocking hop, and the retry/dial-failure pressure the
// measurement ran under. A blocked result whose localization signals are
// inconsistent is additionally marked Degraded: blocking was observed but
// the hop is not localizable, which is always preferable to reporting a
// confidently wrong hop.

// HighConfidence is the score threshold above which a localization is
// considered well-supported. Degraded results are clamped strictly below
// it, so `Blocked && !Degraded && Confidence.High()` can never name a hop
// the measurement did not consistently observe.
const HighConfidence = 0.7

// Confidence summarizes the evidentiary support behind a Result.
type Confidence struct {
	// Score is the overall confidence in [0,1].
	Score float64
	// TermAgreement is the fraction of test traces whose terminating
	// (TTL, kind) matches the modal terminating behaviour.
	TermAgreement float64
	// HopSupport is the control-trace support for the inferred blocking
	// hop: the fraction of repetitions that observed the modal router at
	// the device TTL (or, for At-E/Past-E, that reached the endpoint).
	HopSupport float64
	// RetryRate is retried attempts over total attempts across both
	// aggregates — how hard the retry machinery had to work.
	RetryRate float64
	// DialFailRate is handshake failures over total attempts.
	DialFailRate float64
}

// High reports whether the score clears the HighConfidence threshold.
func (c Confidence) High() bool { return c.Score >= HighConfidence }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// termAgreement measures how many test traces agree with the modal
// terminating behaviour. Traces that never terminated count against it.
func termAgreement(a *Aggregate, termTTL int, termKind ResponseKind) float64 {
	if len(a.Traces) == 0 {
		return 0
	}
	agree := 0
	for i := range a.Traces {
		if t := a.Traces[i].Terminating(); t != nil && t.TTL == termTTL && t.Kind == termKind {
			agree++
		}
	}
	return float64(agree) / float64(len(a.Traces))
}

// hopSupport measures the control-trace evidence for the blocking hop the
// result names. For on-path blocking (LocPath / LocNoICMP) that is ICMP
// support for the modal router at the device TTL; for At-E and Past-E —
// where no router sits at the inferred TTL — it is how consistently the
// control reached the endpoint at all.
func (p *Prober) hopSupport(res *Result) float64 {
	reps := len(res.Control.Traces)
	if reps == 0 {
		return 0
	}
	endpointReach := func() float64 {
		n := 0
		for i := range res.Control.Traces {
			if t := res.Control.Traces[i].Terminating(); t != nil && t.Kind == KindData {
				n++
			}
		}
		return float64(n) / float64(reps)
	}
	if !res.Blocked || res.Location == LocAtE || res.Location == LocPastE {
		return endpointReach()
	}
	dist := res.Control.HopDist[res.DeviceTTL]
	modal, ok := res.Control.MostLikelyHop(res.DeviceTTL)
	if !ok {
		return 0
	}
	return clamp01(float64(dist[modal]) / float64(reps))
}

// scoreConfidence fills res.Confidence and res.Degraded from the
// aggregates. Called at the end of inference, for blocked and unblocked
// results alike.
func (p *Prober) scoreConfidence(res *Result) {
	c := Confidence{
		TermAgreement: termAgreement(res.Test, res.TermTTL, res.TermKind),
		HopSupport:    p.hopSupport(res),
	}
	attempts, retries, dialFails := 0, 0, 0
	for _, a := range []*Aggregate{res.Control, res.Test} {
		if a == nil {
			continue
		}
		for i := range a.Traces {
			attempts += a.Traces[i].Attempts
			retries += a.Traces[i].Retries
			dialFails += a.Traces[i].DialFailures
		}
	}
	if attempts > 0 {
		c.RetryRate = float64(retries) / float64(attempts)
		c.DialFailRate = float64(dialFails) / float64(attempts)
	}
	c.Score = clamp01(0.45*c.TermAgreement + 0.35*c.HopSupport +
		0.10*(1-clamp01(2*c.RetryRate)) + 0.10*(1-clamp01(2*c.DialFailRate)))

	// Degraded verdict: blocking observed, hop not localizable. Each arm is
	// a way the localization evidence can fall apart — no address to name,
	// an ambiguous No-ICMP locus, split terminating behaviour, a path-hop
	// claim the control barely observed, or a measurement that mostly
	// failed to even open connections.
	if res.Blocked {
		switch {
		case !res.BlockingHop.Addr.IsValid():
			res.Degraded = true
		case res.Location == LocNoICMP:
			res.Degraded = true
		case c.TermAgreement < 0.5:
			res.Degraded = true
		case (res.Location == LocPath) && c.HopSupport < 0.3:
			res.Degraded = true
		case c.DialFailRate > 0.5:
			res.Degraded = true
		}
	}
	if res.Degraded && c.Score >= HighConfidence {
		// A degraded localization must never read as high-confidence.
		c.Score = HighConfidence - 0.05
	}
	res.Confidence = c
}
