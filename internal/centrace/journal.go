package centrace

// Campaign checkpoint/resume: a Journal is an append-only log of resolved
// targets, one JSON object per line. A campaign given a journal records
// each target as it resolves and, on a later run over the same target
// list, restores recorded results instead of re-measuring — so a crashed
// or interrupted collection picks up where it left off, the way the
// paper's multi-week measurement campaigns had to.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"cendev/internal/vfs"
)

// journalEntry is the on-disk form of one resolved target.
type journalEntry struct {
	Key      string  `json:"key"`
	Endpoint string  `json:"endpoint"`
	Domain   string  `json:"domain"`
	Protocol string  `json:"protocol"`
	Label    string  `json:"label,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// Journal is a campaign results log supporting checkpoint and resume.
// Journals are safe for concurrent use: parallel campaign workers resolve
// targets from many goroutines, so the entry map and the JSON-lines
// writer are guarded by a mutex — each entry reaches the log as one
// uninterleaved line.
type Journal struct {
	mu       sync.Mutex
	entries  map[string]journalEntry
	w        io.Writer
	err      error
	warnings []string
}

// NewJournal returns an empty journal appending entries to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{entries: make(map[string]journalEntry), w: w}
}

// ResumeJournal loads previously recorded entries from r and appends new
// entries to w. Either may be nil: a nil r resumes nothing, a nil w
// records in memory only.
//
// A line that fails to parse — the truncated final line a crash
// mid-Record leaves behind, or an interior record torn by a filesystem
// that reordered writes around a power cut — is skipped with a warning
// (see Warnings) instead of failing the whole resume: every parseable
// record is still restored, and the skipped target is simply
// re-measured. Only an I/O error reading the journal aborts the resume.
func ResumeJournal(r io.Reader, w io.Writer) (*Journal, error) {
	j := NewJournal(w)
	if r == nil {
		return j, nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			j.warnings = append(j.warnings, fmt.Sprintf(
				"centrace: journal line %d: skipping unparseable record (torn write?): %v", line, err))
			continue
		}
		j.entries[e.Key] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("centrace: reading journal: %w", err)
	}
	return j, nil
}

// Warnings returns the resume-time warnings: one per journal line that was
// skipped as unparseable. Callers surface them so a silently shrinking
// journal does not go unnoticed.
func (j *Journal) Warnings() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.warnings...)
}

// OpenJournalFile opens (creating if needed) a journal file on the real
// filesystem. See OpenJournalFileFS.
func OpenJournalFile(path string) (*Journal, vfs.File, error) {
	return OpenJournalFileFS(vfs.OS(), path)
}

// OpenJournalFileFS opens (creating if needed) a journal file, loads its
// entries, and positions it for appending. The caller owns closing the
// returned file. All I/O goes through fsys so the crash matrix can run
// resume against an injected-fault filesystem.
func OpenJournalFileFS(fsys vfs.FS, path string) (*Journal, vfs.File, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j, err := ResumeJournal(f, f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A crash mid-Record can leave the final line without its newline. New
	// records must not be glued onto that torn tail — the concatenation
	// would corrupt them too — so terminate it first; the torn line itself
	// is skipped (with a warning) on every later resume.
	if off > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], off-1); err != nil {
			f.Close()
			return nil, nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	}
	return j, f, nil
}

// Lookup returns the recorded result for a target, if any.
func (j *Journal) Lookup(t Target) (CampaignResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[t.Key()]
	if !ok {
		return CampaignResult{}, false
	}
	cr := CampaignResult{Target: t, Result: e.Result}
	if e.Error != "" {
		cr.Err = errors.New(e.Error)
	}
	return cr, true
}

// Record checkpoints one resolved target. Write failures are remembered
// (see Err) rather than aborting the campaign: losing a checkpoint is
// strictly better than losing the measurement.
func (j *Journal) Record(cr CampaignResult) {
	e := journalEntry{
		Key:      cr.Target.Key(),
		Domain:   cr.Target.Domain,
		Protocol: cr.Target.Protocol.String(),
		Label:    cr.Target.Label,
		Result:   cr.Result,
	}
	if cr.Target.Endpoint != nil {
		e.Endpoint = cr.Target.Endpoint.ID
	}
	if cr.Err != nil {
		e.Error = cr.Err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries[e.Key] = e
	if j.w == nil {
		return
	}
	raw, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("centrace: journal marshal: %w", err)
		return
	}
	raw = append(raw, '\n')
	if _, err := j.w.Write(raw); err != nil {
		j.err = fmt.Errorf("centrace: journal write: %w", err)
	}
}

// Len returns the number of recorded entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Err returns the first write/marshal error the journal swallowed, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
