package centrace

// Campaign checkpoint/resume: a Journal is an append-only log of resolved
// targets, one length-prefixed binary frame per record (internal/wire;
// DESIGN.md §14). A campaign given a journal records each target as it
// resolves and, on a later run over the same target list, restores
// recorded results instead of re-measuring — so a crashed or interrupted
// collection picks up where it left off, the way the paper's multi-week
// measurement campaigns had to.
//
// Journals written by earlier versions are JSON lines. Resume sniffs the
// frame marker to pick the format; a legacy journal keeps appending JSON
// (mixing formats inside one file would break both readers), while new
// and empty journals write binary frames. ExportJSON renders either as
// the JSON-lines debug view.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"cendev/internal/vfs"
	"cendev/internal/wire"
)

// journalEntry is the on-disk form of one resolved target.
type journalEntry struct {
	Key      string  `json:"key"`
	Endpoint string  `json:"endpoint"`
	Domain   string  `json:"domain"`
	Protocol string  `json:"protocol"`
	Label    string  `json:"label,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// Journal is a campaign results log supporting checkpoint and resume.
// Journals are safe for concurrent use: parallel campaign workers resolve
// targets from many goroutines, so the entry map, the writer, and the
// encoding scratch buffers are guarded by a mutex — each entry reaches
// the log as one uninterleaved frame (or, on legacy journals, line).
type Journal struct {
	mu       sync.Mutex
	entries  map[string]journalEntry
	w        io.Writer
	err      error
	warnings []string
	// legacy is true when the resumed file held JSON lines: appends stay
	// JSON so the file remains single-format.
	legacy bool
	// recBuf/encBuf are the append path's scratch buffers (record payload
	// and framed record); they grow to the high-water record size and are
	// reused, so steady-state appends do not allocate. Guarded by mu.
	recBuf, encBuf []byte
	// tornAt/torn report a torn final frame found during a binary resume:
	// the offset to truncate back to so the next append starts on a clean
	// frame boundary. OpenJournalFileFS performs the truncation.
	tornAt int64
	torn   bool
}

// NewJournal returns an empty journal appending entries to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{entries: make(map[string]journalEntry), w: w}
}

// ResumeJournal loads previously recorded entries from r and appends new
// entries to w. Either may be nil: a nil r resumes nothing, a nil w
// records in memory only.
//
// The journal's format is sniffed from its first bytes: the wire frame
// marker selects the binary format, anything else is a legacy JSON-lines
// journal (which then keeps appending JSON — see the package comment). A
// record that fails to parse — the truncated final record a crash
// mid-Record leaves behind, or an interior record torn by a filesystem
// that reordered writes around a power cut — is skipped with a warning
// (see Warnings) instead of failing the whole resume: every parseable
// record is still restored, and the skipped target is simply
// re-measured. Only an I/O error reading the journal aborts the resume.
func ResumeJournal(r io.Reader, w io.Writer) (*Journal, error) {
	j := NewJournal(w)
	if r == nil {
		return j, nil
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("centrace: reading journal: %w", err)
	}
	if len(raw) == 0 {
		return j, nil
	}
	if wire.SniffMarker(raw) {
		j.resumeBinary(raw)
	} else {
		j.legacy = true
		if err := j.resumeJSONL(raw); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// resumeBinary restores entries from a binary frame stream.
func (j *Journal) resumeBinary(raw []byte) {
	rd := wire.NewReader(raw)
	for {
		payload, ok := rd.Next()
		if !ok {
			break
		}
		e, err := decodeJournalEntry(payload)
		if err != nil {
			j.warnings = append(j.warnings, fmt.Sprintf(
				"centrace: journal: skipping undecodable record: %v", err))
			continue
		}
		j.entries[e.Key] = e
	}
	for _, w := range rd.Warnings() {
		j.warnings = append(j.warnings, "centrace: journal: "+w)
	}
	j.tornAt, j.torn = rd.Torn()
}

// resumeJSONL restores entries from a legacy JSON-lines journal.
func (j *Journal) resumeJSONL(raw []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(b, &e); err != nil {
			j.warnings = append(j.warnings, fmt.Sprintf(
				"centrace: journal line %d: skipping unparseable record (torn write?): %v", line, err))
			continue
		}
		j.entries[e.Key] = e
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("centrace: reading journal: %w", err)
	}
	return nil
}

// Warnings returns the resume-time warnings: one per journal line that was
// skipped as unparseable. Callers surface them so a silently shrinking
// journal does not go unnoticed.
func (j *Journal) Warnings() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.warnings...)
}

// OpenJournalFile opens (creating if needed) a journal file on the real
// filesystem. See OpenJournalFileFS.
func OpenJournalFile(path string) (*Journal, vfs.File, error) {
	return OpenJournalFileFS(vfs.OS(), path)
}

// OpenJournalFileFS opens (creating if needed) a journal file, loads its
// entries, and positions it for appending. The caller owns closing the
// returned file. All I/O goes through fsys so the crash matrix can run
// resume against an injected-fault filesystem.
func OpenJournalFileFS(fsys vfs.FS, path string) (*Journal, vfs.File, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j, err := ResumeJournal(f, f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A crash mid-Record leaves a torn tail. On a binary journal the torn
	// frame is cut back to the last good frame boundary so the next append
	// starts clean (the dropped target is simply re-measured). On a legacy
	// journal the tail is a line missing its newline: new records must not
	// be glued onto it — the concatenation would corrupt them too — so
	// terminate it; the torn line itself is skipped on every later resume.
	if _, torn := j.Torn(); torn {
		if err := fsys.Truncate(path, j.tornAt); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.warnings = append(j.warnings, fmt.Sprintf(
			"centrace: journal: truncated torn tail at byte %d", j.tornAt))
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if j.legacy && off > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], off-1); err != nil {
			f.Close()
			return nil, nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	}
	return j, f, nil
}

// Torn reports whether a binary resume found a torn final frame, and the
// offset of the last good frame boundary. OpenJournalFileFS uses it to
// repair the file; callers resuming from a bare reader can use it to do
// the same.
func (j *Journal) Torn() (truncateTo int64, torn bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tornAt, j.torn
}

// Lookup returns the recorded result for a target, if any.
func (j *Journal) Lookup(t Target) (CampaignResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[t.Key()]
	if !ok {
		return CampaignResult{}, false
	}
	cr := CampaignResult{Target: t, Result: e.Result}
	if e.Error != "" {
		cr.Err = errors.New(e.Error)
	}
	return cr, true
}

// Record checkpoints one resolved target. Write failures are remembered
// (see Err) rather than aborting the campaign: losing a checkpoint is
// strictly better than losing the measurement.
func (j *Journal) Record(cr CampaignResult) {
	e := journalEntry{
		Key:      cr.Target.Key(),
		Domain:   cr.Target.Domain,
		Protocol: cr.Target.Protocol.String(),
		Label:    cr.Target.Label,
		Result:   cr.Result,
	}
	if cr.Target.Endpoint != nil {
		e.Endpoint = cr.Target.Endpoint.ID
	}
	if cr.Err != nil {
		e.Error = cr.Err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries[e.Key] = e
	if j.w == nil {
		return
	}
	if j.legacy {
		raw, err := json.Marshal(e)
		if err != nil {
			j.err = fmt.Errorf("centrace: journal marshal: %w", err)
			return
		}
		raw = append(raw, '\n')
		if _, err := j.w.Write(raw); err != nil {
			j.err = fmt.Errorf("centrace: journal write: %w", err)
		}
		return
	}
	j.recBuf = appendJournalEntry(j.recBuf[:0], &e)
	j.encBuf = wire.AppendFrame(j.encBuf[:0], j.recBuf)
	if _, err := j.w.Write(j.encBuf); err != nil {
		j.err = fmt.Errorf("centrace: journal write: %w", err)
	}
}

// ExportJSON writes the journal's entries as JSON lines in sorted key
// order — the debug/export view of the binary format.
func (j *Journal) ExportJSON(w io.Writer) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		e := j.entries[k]
		raw, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("centrace: journal export: %w", err)
		}
		bw.Write(raw)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Len returns the number of recorded entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Err returns the first write/marshal error the journal swallowed, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
