package centrace

import (
	"cendev/internal/blockpage"
	"cendev/internal/dnsgram"
	"cendev/internal/netem"
)

// DNS probing support — the paper's protocol extension (§4.1, §8). A DNS
// CenTrace probe is a TTL-limited UDP A query; the terminating responses
// are a resolver answer (KindData), an injected forged answer (KindData
// matching the bogus-address list), or repeated drops.

// probeOnceDNS sends one TTL-limited DNS query and classifies the result.
func (p *Prober) probeOnceDNS(domain string, ttl int) ProbeObs {
	obs := ProbeObs{TTL: ttl, Kind: KindTimeout}
	query := dnsgram.NewQuery(uint16(ttl), domain)
	payload := query.Serialize()
	// The as-sent template is only needed to diff ICMP quotes against, so
	// it is built lazily in the prober's scratch packet.
	var sent *netem.Packet
	sentTemplate := func() *netem.Packet {
		if sent == nil {
			sent = &p.sentUDP
			sent.FillUDP(p.Client.Addr, p.Endpoint.Addr, 0, 53, payload)
			sent.IP.TTL = uint8(ttl)
		}
		return sent
	}
	ds := p.Net.SendUDP(p.Client, p.Endpoint, 53, payload, uint8(ttl))
	for _, d := range ds {
		pkt := d.Packet
		switch {
		case pkt.ICMP != nil && pkt.ICMP.Type == netem.ICMPTimeExceeded:
			if obs.Kind == KindTimeout {
				obs.Kind = KindICMP
				obs.From = pkt.IP.Src
				if q, err := pkt.ICMP.QuotedPacket(); err == nil {
					obs.Quote = q
					delta := netem.CompareQuote(sentTemplate(), q)
					obs.QuoteDelta = &delta
				}
			} else {
				obs.GotICMPAlongside = true
				obs.ICMPFrom = pkt.IP.Src
			}
		case pkt.UDP != nil && pkt.IP.Src == p.Endpoint.Addr && len(pkt.Payload) > 0:
			if obs.Kind == KindData {
				continue // first answer wins the race, like a real stub resolver
			}
			if obs.Kind == KindICMP {
				obs.GotICMPAlongside = true
				obs.ICMPFrom = obs.From
			}
			obs.From = pkt.IP.Src
			obs.Kind = KindData
			// pkt is pooled and reclaimed at the next Transmit; dnsBlocked
			// parses this after the whole aggregate completes, so copy.
			obs.Payload = append([]byte(nil), pkt.Payload...)
			obs.Injected = &InjectedFeatures{
				TTL:     pkt.IP.TTL,
				IPID:    pkt.IP.ID,
				IPFlags: pkt.IP.Flags,
			}
		}
	}
	return obs
}

// dnsBlocked reports whether a KindData DNS response is censorship: a
// forged answer carrying a known injection address (the DNS analog of the
// known-blockpage rule, §4.1).
func dnsBlocked(payload []byte) bool {
	resp, err := dnsgram.ParseResponse(payload)
	if err != nil {
		return false
	}
	return blockpage.MatchDNSAnswers(resp.Answers)
}
