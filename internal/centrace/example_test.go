package centrace_test

import (
	"fmt"
	"net/netip"

	"cendev/internal/centrace"
	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Example demonstrates locating a censorship device with CenTrace: build a
// topology, attach a filter, run the control/test measurement, and read
// the inference.
func Example() {
	g := topology.NewGraph()
	asClient := g.AddAS(64500, "ClientNet", "US")
	asServer := g.AddAS(64501, "ServerNet", "KZ")
	r1 := g.AddRouter("r1", asClient)
	r2 := g.AddRouter("r2", asServer)
	g.Link("r1", "r2")
	client := g.AddHost("client", asClient, r1)
	server := g.AddHost("server", asServer, r2)

	net := simnet.New(g)
	net.RegisterServer("server", endpoint.NewServer("blocked.example", "control.example"))
	net.AttachDevice("r1", "r2", middlebox.NewDevice("fw", middlebox.VendorCisco,
		[]string{"blocked.example"}, netip.Addr{}))

	res := centrace.New(net, client, server, centrace.Config{
		ControlDomain: "control.example",
		TestDomain:    "blocked.example",
		Repetitions:   3,
	}).Run()

	fmt.Printf("blocked=%v kind=%s device-hop=%d placement=%s\n",
		res.Blocked, res.TermKind, res.DeviceTTL, res.Placement)
	// Output: blocked=true kind=TIMEOUT device-hop=2 placement=in-path
}
