package centrace

import (
	"net/netip"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
)

// buildDNSNet extends the standard test network with a resolver on the
// endpoint host.
func buildDNSNet(t *testing.T) (*simnet.Network, *Prober) {
	t.Helper()
	n, client, server := buildNet(t)
	n.RegisterResolver("server", endpoint.NewResolver(map[string]netip.Addr{
		blockedDomain: netip.MustParseAddr("192.0.2.80"),
		controlDomain: netip.MustParseAddr("192.0.2.81"),
	}))
	p := New(n, client, server, Config{
		ControlDomain: controlDomain,
		TestDomain:    blockedDomain,
		Protocol:      DNS,
		Repetitions:   3,
	})
	return n, p
}

func TestDNSUnblockedMeasurement(t *testing.T) {
	_, p := buildDNSNet(t)
	res := p.Run()
	if !res.Valid {
		t.Fatal("control DNS trace should reach the resolver")
	}
	if res.Blocked {
		t.Errorf("no DNS devices but blocked (term=%s)", res.TermKind)
	}
	if res.EndpointTTL != 5 {
		t.Errorf("EndpointTTL = %d, want 5", res.EndpointTTL)
	}
}

func TestDNSInjectionDetectedAndLocalized(t *testing.T) {
	n, p := buildDNSNet(t)
	dev := middlebox.NewDevice("inj", middlebox.VendorDNSInjector, []string{blockedDomain}, netip.Addr{})
	n.AttachDevice("r2", "r3", dev)

	res := p.Run()
	if !res.Blocked {
		t.Fatal("DNS injection not detected")
	}
	if res.TermKind != KindData || res.BlockpageID != "dns-injection" {
		t.Errorf("term=%s id=%q, want injected-data verdict", res.TermKind, res.BlockpageID)
	}
	if res.Placement != PlacementOnPath {
		t.Errorf("placement = %s, want on-path (injector races the resolver)", res.Placement)
	}
	if res.DeviceTTL != 3 {
		t.Errorf("DeviceTTL = %d, want 3", res.DeviceTTL)
	}
}

func TestDNSDropLocalized(t *testing.T) {
	n, p := buildDNSNet(t)
	dev := middlebox.NewDevice("drop", middlebox.VendorUnknownDrop, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)

	res := p.Run()
	if !res.Blocked || res.TermKind != KindTimeout {
		t.Fatalf("blocked=%v term=%s, want DNS drop", res.Blocked, res.TermKind)
	}
	if res.DeviceTTL != 3 || res.Placement != PlacementInPath {
		t.Errorf("device at %d (%s), want 3 in-path", res.DeviceTTL, res.Placement)
	}
}

func TestDNSNXDomainNotBlocked(t *testing.T) {
	// A domain absent from the zone yields NXDOMAIN — a legitimate answer,
	// not censorship.
	n, client, server := buildNet(t)
	n.RegisterResolver("server", endpoint.NewResolver(map[string]netip.Addr{
		controlDomain: netip.MustParseAddr("192.0.2.81"),
	}))
	p := New(n, client, server, Config{
		ControlDomain: controlDomain,
		TestDomain:    "www.nonexistent.example",
		Protocol:      DNS,
		Repetitions:   3,
	})
	res := p.Run()
	if res.Blocked {
		t.Errorf("NXDOMAIN misclassified as censorship (term=%s)", res.TermKind)
	}
}

func TestDNSProtocolHelpers(t *testing.T) {
	if DNS.String() != "DNS" || DNS.Port() != 53 {
		t.Error("DNS protocol helpers broken")
	}
}
