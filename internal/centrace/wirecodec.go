package centrace

// Binary form of one journal entry (DESIGN.md §14): the frame payload a
// checkpoint writes through internal/wire. The entire Result tree is
// hand-encoded — no reflection, no per-record allocation on the append
// path — with the leading version byte gating schema evolution. The JSON
// shape survives as the export/debug view (Journal.ExportJSON) and as
// the read-only resume path for legacy JSON-lines journals.
//
// Config.Obs, Config.Tracer, and Config.Parent are runtime wiring, not
// measurement data, and are not persisted (the JSON form drops them the
// same way); decode leaves them nil. Aggregate.HopDist is a nested map,
// so encoding iterates its keys in sorted order — the byte stream must
// be a pure function of the data for the determinism invariants cenlint
// enforces.

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"cendev/internal/netem"
	"cendev/internal/wire"
)

// journalV1 is the version byte of the current journal record schema.
const journalV1 = 1

// appendJournalEntry appends the binary payload of e to b.
func appendJournalEntry(b []byte, e *journalEntry) []byte {
	b = append(b, journalV1)
	b = wire.AppendString(b, e.Key)
	b = wire.AppendString(b, e.Endpoint)
	b = wire.AppendString(b, e.Domain)
	b = wire.AppendString(b, e.Protocol)
	b = wire.AppendString(b, e.Label)
	b = wire.AppendString(b, e.Error)
	b = wire.AppendBool(b, e.Result != nil)
	if e.Result != nil {
		b = appendResult(b, e.Result)
	}
	return b
}

// decodeJournalEntry decodes one binary journal entry payload.
func decodeJournalEntry(payload []byte) (journalEntry, error) {
	d := wire.NewDec(payload)
	var e journalEntry
	if v := d.Byte(); v != journalV1 {
		if d.Err() == nil {
			return e, fmt.Errorf("centrace: unknown journal record version %d", v)
		}
		return e, d.Err()
	}
	e.Key = d.String()
	e.Endpoint = d.String()
	e.Domain = d.String()
	e.Protocol = d.String()
	e.Label = d.String()
	e.Error = d.String()
	if d.Bool() {
		e.Result = decodeResult(d)
	}
	if err := d.Err(); err != nil {
		return journalEntry{}, err
	}
	return e, nil
}

func appendResult(b []byte, r *Result) []byte {
	b = appendConfig(b, &r.Config)
	b = wire.AppendAddr(b, r.Client)
	b = wire.AppendAddr(b, r.Endpoint)
	b = wire.AppendBool(b, r.Valid)
	b = wire.AppendBool(b, r.Blocked)
	b = wire.AppendVarint(b, int64(r.TermKind))
	b = wire.AppendVarint(b, int64(r.TermTTL))
	b = wire.AppendVarint(b, int64(r.EndpointTTL))
	b = wire.AppendVarint(b, int64(r.Location))
	b = wire.AppendVarint(b, int64(r.Placement))
	b = wire.AppendVarint(b, int64(r.DeviceTTL))
	b = wire.AppendBool(b, r.TTLCopyCorrected)
	b = appendHopInfo(b, &r.BlockingHop)
	b = wire.AppendBool(b, r.Injected != nil)
	if r.Injected != nil {
		b = appendInjected(b, r.Injected)
	}
	b = wire.AppendBool(b, r.QuoteDelta != nil)
	if r.QuoteDelta != nil {
		b = r.QuoteDelta.AppendWire(b)
	}
	b = wire.AppendString(b, r.BlockpageVendor)
	b = wire.AppendString(b, r.BlockpageID)
	b = wire.AppendFloat64(b, r.Confidence.Score)
	b = wire.AppendFloat64(b, r.Confidence.TermAgreement)
	b = wire.AppendFloat64(b, r.Confidence.HopSupport)
	b = wire.AppendFloat64(b, r.Confidence.RetryRate)
	b = wire.AppendFloat64(b, r.Confidence.DialFailRate)
	b = wire.AppendBool(b, r.Degraded)
	b = wire.AppendBool(b, r.Control != nil)
	if r.Control != nil {
		b = appendAggregate(b, r.Control)
	}
	b = wire.AppendBool(b, r.Test != nil)
	if r.Test != nil {
		b = appendAggregate(b, r.Test)
	}
	return b
}

func decodeResult(d *wire.Dec) *Result {
	r := &Result{}
	decodeConfig(d, &r.Config)
	r.Client = d.Addr()
	r.Endpoint = d.Addr()
	r.Valid = d.Bool()
	r.Blocked = d.Bool()
	r.TermKind = ResponseKind(d.Varint())
	r.TermTTL = int(d.Varint())
	r.EndpointTTL = int(d.Varint())
	r.Location = LocationClass(d.Varint())
	r.Placement = PlacementClass(d.Varint())
	r.DeviceTTL = int(d.Varint())
	r.TTLCopyCorrected = d.Bool()
	decodeHopInfo(d, &r.BlockingHop)
	if d.Bool() {
		r.Injected = &InjectedFeatures{}
		decodeInjected(d, r.Injected)
	}
	if d.Bool() {
		r.QuoteDelta = &netem.QuoteDelta{}
		r.QuoteDelta.DecodeWire(d)
	}
	r.BlockpageVendor = d.String()
	r.BlockpageID = d.String()
	r.Confidence.Score = d.Float64()
	r.Confidence.TermAgreement = d.Float64()
	r.Confidence.HopSupport = d.Float64()
	r.Confidence.RetryRate = d.Float64()
	r.Confidence.DialFailRate = d.Float64()
	r.Degraded = d.Bool()
	if d.Bool() {
		r.Control = decodeAggregate(d)
	}
	if d.Bool() {
		r.Test = decodeAggregate(d)
	}
	return r
}

func appendConfig(b []byte, c *Config) []byte {
	b = wire.AppendString(b, c.ControlDomain)
	b = wire.AppendString(b, c.TestDomain)
	b = wire.AppendVarint(b, int64(c.Protocol))
	b = wire.AppendVarint(b, int64(c.MaxTTL))
	b = wire.AppendVarint(b, int64(c.Repetitions))
	b = wire.AppendVarint(b, int64(c.Retries))
	b = wire.AppendVarint(b, int64(c.ProbeInterval))
	return wire.AppendVarint(b, int64(c.MaxConsecutiveTimeouts))
}

func decodeConfig(d *wire.Dec, c *Config) {
	c.ControlDomain = d.String()
	c.TestDomain = d.String()
	c.Protocol = Protocol(d.Varint())
	c.MaxTTL = int(d.Varint())
	c.Repetitions = int(d.Varint())
	c.Retries = int(d.Varint())
	c.ProbeInterval = time.Duration(d.Varint())
	c.MaxConsecutiveTimeouts = int(d.Varint())
}

func appendHopInfo(b []byte, h *HopInfo) []byte {
	b = wire.AppendVarint(b, int64(h.TTL))
	b = wire.AppendAddr(b, h.Addr)
	b = wire.AppendUvarint(b, uint64(h.ASN))
	b = wire.AppendString(b, h.Country)
	return wire.AppendString(b, h.Org)
}

func decodeHopInfo(d *wire.Dec, h *HopInfo) {
	h.TTL = int(d.Varint())
	h.Addr = d.Addr()
	h.ASN = uint32(d.Uvarint())
	h.Country = d.String()
	h.Org = d.String()
}

func appendInjected(b []byte, in *InjectedFeatures) []byte {
	b = append(b, in.TTL)
	b = wire.AppendUvarint(b, uint64(in.IPID))
	b = append(b, byte(in.IPFlags), byte(in.TCPFlags))
	b = wire.AppendUvarint(b, uint64(in.TCPWindow))
	b = wire.AppendUvarint(b, uint64(len(in.Options)))
	for _, k := range in.Options {
		b = append(b, byte(k))
	}
	return b
}

func decodeInjected(d *wire.Dec, in *InjectedFeatures) {
	in.TTL = d.Byte()
	in.IPID = uint16(d.Uvarint())
	in.IPFlags = netem.IPFlags(d.Byte())
	in.TCPFlags = netem.TCPFlags(d.Byte())
	in.TCPWindow = uint16(d.Uvarint())
	if n := d.Count(); n > 0 && d.Err() == nil {
		in.Options = make([]netem.TCPOptionKind, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			in.Options = append(in.Options, netem.TCPOptionKind(d.Byte()))
		}
	}
}

func appendAggregate(b []byte, a *Aggregate) []byte {
	b = wire.AppendString(b, a.Domain)
	b = wire.AppendUvarint(b, uint64(len(a.Traces)))
	for i := range a.Traces {
		b = appendTrace(b, &a.Traces[i])
	}
	// HopDist is map-shaped: iterate both levels in sorted order so the
	// encoding is deterministic.
	ttls := make([]int, 0, len(a.HopDist))
	for ttl := range a.HopDist {
		ttls = append(ttls, ttl)
	}
	sort.Ints(ttls)
	b = wire.AppendUvarint(b, uint64(len(ttls)))
	for _, ttl := range ttls {
		dist := a.HopDist[ttl]
		b = wire.AppendVarint(b, int64(ttl))
		addrs := make([]netip.Addr, 0, len(dist))
		for addr := range dist {
			addrs = append(addrs, addr)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		b = wire.AppendUvarint(b, uint64(len(addrs)))
		for _, addr := range addrs {
			b = wire.AppendAddr(b, addr)
			b = wire.AppendVarint(b, int64(dist[addr]))
		}
	}
	b = wire.AppendVarint(b, int64(a.TermTTL))
	b = wire.AppendVarint(b, int64(a.TermKind))
	return wire.AppendVarint(b, int64(a.EndpointTTL))
}

func decodeAggregate(d *wire.Dec) *Aggregate {
	a := &Aggregate{}
	a.Domain = d.String()
	if n := d.Count(); n > 0 && d.Err() == nil {
		a.Traces = make([]Trace, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			var t Trace
			decodeTrace(d, &t)
			a.Traces = append(a.Traces, t)
		}
	}
	if n := d.Count(); d.Err() == nil {
		if n > 0 {
			a.HopDist = make(map[int]map[netip.Addr]int, n)
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			ttl := int(d.Varint())
			m := d.Count()
			dist := make(map[netip.Addr]int, m)
			for k := uint64(0); k < m && d.Err() == nil; k++ {
				addr := d.Addr()
				dist[addr] = int(d.Varint())
			}
			if d.Err() == nil {
				a.HopDist[ttl] = dist
			}
		}
	}
	a.TermTTL = int(d.Varint())
	a.TermKind = ResponseKind(d.Varint())
	a.EndpointTTL = int(d.Varint())
	return a
}

func appendTrace(b []byte, t *Trace) []byte {
	b = wire.AppendString(b, t.Domain)
	b = wire.AppendUvarint(b, uint64(len(t.Obs)))
	for i := range t.Obs {
		b = appendProbeObs(b, &t.Obs[i])
	}
	b = wire.AppendVarint(b, int64(t.TermIdx))
	b = wire.AppendVarint(b, int64(t.Attempts))
	b = wire.AppendVarint(b, int64(t.Retries))
	return wire.AppendVarint(b, int64(t.DialFailures))
}

func decodeTrace(d *wire.Dec, t *Trace) {
	t.Domain = d.String()
	if n := d.Count(); n > 0 && d.Err() == nil {
		t.Obs = make([]ProbeObs, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			var o ProbeObs
			decodeProbeObs(d, &o)
			t.Obs = append(t.Obs, o)
		}
	}
	t.TermIdx = int(d.Varint())
	t.Attempts = int(d.Varint())
	t.Retries = int(d.Varint())
	t.DialFailures = int(d.Varint())
}

func appendProbeObs(b []byte, o *ProbeObs) []byte {
	b = wire.AppendVarint(b, int64(o.TTL))
	b = wire.AppendVarint(b, int64(o.Kind))
	b = wire.AppendAddr(b, o.From)
	b = wire.AppendBool(b, o.GotICMPAlongside)
	b = wire.AppendAddr(b, o.ICMPFrom)
	b = wire.AppendBytes(b, o.Payload)
	b = wire.AppendBool(b, o.Injected != nil)
	if o.Injected != nil {
		b = appendInjected(b, o.Injected)
	}
	b = wire.AppendBool(b, o.Quote != nil)
	if o.Quote != nil {
		b = o.Quote.AppendWire(b)
	}
	b = wire.AppendBool(b, o.QuoteDelta != nil)
	if o.QuoteDelta != nil {
		b = o.QuoteDelta.AppendWire(b)
	}
	return wire.AppendBool(b, o.DialFailed)
}

func decodeProbeObs(d *wire.Dec, o *ProbeObs) {
	o.TTL = int(d.Varint())
	o.Kind = ResponseKind(d.Varint())
	o.From = d.Addr()
	o.GotICMPAlongside = d.Bool()
	o.ICMPFrom = d.Addr()
	o.Payload = d.Bytes()
	if d.Bool() {
		o.Injected = &InjectedFeatures{}
		decodeInjected(d, o.Injected)
	}
	if d.Bool() {
		o.Quote = &netem.QuotedPacket{}
		o.Quote.DecodeWire(d)
	}
	if d.Bool() {
		o.QuoteDelta = &netem.QuoteDelta{}
		o.QuoteDelta.DecodeWire(d)
	}
	o.DialFailed = d.Bool()
}
