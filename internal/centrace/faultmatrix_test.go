package centrace

// The fault matrix: CenTrace must hold its localization guarantee under
// every impairment profile the faults engine can compose — it either
// localizes the correct blocking hop, or it returns a Degraded verdict
// whose confidence sits below the HighConfidence threshold. It must never
// name a wrong hop with high confidence.

import (
	"encoding/json"
	"testing"
	"time"

	"cendev/internal/endpoint"
	"cendev/internal/faults"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// matrixConfig keeps the matrix fast while leaving enough repetitions for
// modal statistics.
func matrixConfig() Config {
	return Config{
		ControlDomain: controlDomain,
		TestDomain:    blockedDomain,
		Repetitions:   5,
	}
}

// assertCorrectOrDegraded is the matrix invariant.
func assertCorrectOrDegraded(t *testing.T, res *Result, wantHop topology.Router) {
	t.Helper()
	if !res.Blocked {
		t.Fatalf("device active but not Blocked (term=%s ttl=%d)", res.TermKind, res.TermTTL)
	}
	if res.Degraded {
		if res.Confidence.High() {
			t.Errorf("Degraded result scored high confidence (%.2f ≥ %.2f)",
				res.Confidence.Score, HighConfidence)
		}
		return // degraded is an acceptable outcome under impairment
	}
	if res.BlockingHop.Addr != wantHop.Addr {
		t.Errorf("misattributed blocking hop without Degraded: got %s (conf %.2f), want %s",
			res.BlockingHop, res.Confidence.Score, wantHop.Addr)
	}
}

func TestFaultMatrix(t *testing.T) {
	profiles := []struct {
		name   string
		engine func() *faults.Engine
	}{
		{"uniform-loss-5pct", func() *faults.Engine {
			return faults.NewEngine(11).AddGlobal(faults.UniformLoss(0.05))
		}},
		{"bursty-loss", func() *faults.Engine {
			// Mean burst ≈3 packets at 70% loss: the §4.1 retries plus the
			// exponential backoff must ride the bursts out.
			return faults.NewEngine(12).AddGlobal(faults.GilbertElliott(0.05, 0.3, 0, 0.7))
		}},
		{"blackhole-window", func() *faults.Engine {
			// The r1–r2 link dies for half an hour mid-measurement.
			return faults.NewEngine(13).AddLink("r1", "r2",
				faults.Blackhole(10*time.Minute, 40*time.Minute))
		}},
		{"icmp-silent-midpath", func() *faults.Engine {
			return faults.NewEngine(14).SilenceICMP("r2")
		}},
		{"icmp-silent-blocking-hop", func() *faults.Engine {
			// The blocking hop itself never answers: localization must
			// degrade rather than invent an address.
			return faults.NewEngine(15).SilenceICMP("r3")
		}},
		{"icmp-rate-limit", func() *faults.Engine {
			// One-token bucket refilling every 15 virtual minutes starves a
			// fraction of the ICMP the hop statistics are built from.
			return faults.NewEngine(16).LimitICMP("r3", 1, 1.0/900)
		}},
		{"duplication", func() *faults.Engine {
			return faults.NewEngine(17).AddGlobal(faults.Duplication(0.3))
		}},
	}
	devices := []struct {
		name   string
		attach func(n *simnet.Network)
	}{
		{"inpath-drop", func(n *simnet.Network) {
			dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
			n.AttachDevice("r2", "r3", dev)
		}},
		{"onpath-rst", func(n *simnet.Network) {
			dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{blockedDomain}, n.Graph.Router("r3").Addr)
			n.AttachDevice("r2", "r3", dev)
		}},
	}
	for _, prof := range profiles {
		for _, dev := range devices {
			t.Run(prof.name+"/"+dev.name, func(t *testing.T) {
				n, client, server := buildNet(t)
				dev.attach(n)
				n.SetFaults(prof.engine())
				res := New(n, client, server, matrixConfig()).Run()
				assertCorrectOrDegraded(t, res, *n.Graph.Router("r3"))
			})
		}
	}
}

// buildDiamond is the ECMP topology with a country-style deployment:
// devices on both links entering r3, so the blocking hop is r3 whichever
// branch a flow takes.
func buildDiamond(t *testing.T) (*simnet.Network, *topology.Host, *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asT := g.AddAS(200, "Transit", "DE")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2a", asT)
	g.AddRouter("r2b", asT)
	r3 := g.AddRouter("r3", asE)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r3)
	n := simnet.New(g)
	n.RegisterServer("server", endpoint.NewServer(blockedDomain, controlDomain))
	for _, from := range []string{"r2a", "r2b"} {
		dev := middlebox.NewDevice("d-"+from, middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router(from).Addr)
		n.AttachDevice(from, "r3", dev)
	}
	return n, client, server
}

func TestFaultMatrixPathFlap(t *testing.T) {
	n, client, server := buildDiamond(t)
	// r1 re-rolls its ECMP choice every 7 virtual minutes: successive
	// probes churn between the two transit branches.
	n.SetFaults(faults.NewEngine(18).FlapRoutes("r1", 7*time.Minute))
	res := New(n, client, server, matrixConfig()).Run()
	assertCorrectOrDegraded(t, res, *n.Graph.Router("r3"))
	// Churn must actually have been exercised: the control saw both
	// branches at hop 2.
	if len(res.Control.HopDist[2]) != 2 {
		t.Errorf("hop-2 distribution %v: expected both branches under flap", res.Control.HopDist[2])
	}
}

// TestFaultMatrixDeterministic asserts the acceptance criterion that every
// impairment profile is deterministic given a seed: two identically built
// worlds produce byte-identical campaign results.
func TestFaultMatrixDeterministic(t *testing.T) {
	build := func() ([]CampaignResult, error) {
		n, client, server := buildNet(t)
		dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{blockedDomain}, n.Graph.Router("r3").Addr)
		n.AttachDevice("r2", "r3", dev)
		n.SetFaults(faults.NewEngine(99).
			AddGlobal(faults.UniformLoss(0.05)).
			AddGlobal(faults.Duplication(0.1)).
			AddLink("r2", "r3", faults.GilbertElliott(0.05, 0.3, 0, 0.6)).
			LimitICMP("r2", 2, 1.0/600).
			FlapRoutes("r1", 11*time.Minute))
		c := &Campaign{Net: n, Client: client,
			Base: Config{ControlDomain: controlDomain, Repetitions: 3}}
		results := c.Run([]Target{
			{Endpoint: server, Domain: blockedDomain, Protocol: HTTP},
			{Endpoint: server, Domain: blockedDomain, Protocol: HTTPS},
			{Endpoint: server, Domain: "www.open-other.example", Protocol: HTTP},
		})
		return results, nil
	}
	a, _ := build()
	b, _ := build()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("same seed produced different campaign results")
	}
	// And the impairments really fired: some retries were spent somewhere.
	retried := false
	for _, cr := range a {
		for _, ag := range []*Aggregate{cr.Result.Control, cr.Result.Test} {
			for i := range ag.Traces {
				if ag.Traces[i].Retries > 0 {
					retried = true
				}
			}
		}
	}
	if !retried {
		t.Error("impairment profiles never forced a retry — matrix too soft")
	}
}
