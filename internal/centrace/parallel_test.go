package centrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/faults"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// buildParallelWorld is buildNet with several endpoints behind one device,
// giving a campaign enough targets for the worker pool to actually
// interleave.
func buildParallelWorld(t *testing.T) (*simnet.Network, *topology.Host, []*topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asT := g.AddAS(200, "Transit", "DE")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2", asT)
	g.AddRouter("r3", asT)
	r4 := g.AddRouter("r4", asE)
	g.Link("r1", "r2")
	g.Link("r2", "r3")
	g.Link("r3", "r4")
	client := g.AddHost("client", asC, r1)
	var servers []*topology.Host
	for i := 0; i < 6; i++ {
		servers = append(servers, g.AddHost(fmt.Sprintf("server-%d", i), asE, r4))
	}
	n := simnet.New(g)
	for _, s := range servers {
		n.RegisterServer(s.ID, endpoint.NewServer(blockedDomain, controlDomain))
	}
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, g.Router("r3").Addr)
	n.AttachDevice("r2", "r3", dev)
	return n, client, servers
}

// campaignBytes runs the campaign at the given worker count on a freshly
// built world with a seeded fault engine and returns the results as
// canonical JSON, ordered by target key.
func campaignBytes(t *testing.T, workers int) []byte {
	t.Helper()
	n, client, servers := buildParallelWorld(t)
	n.SetFaults(faults.NewEngine(7).
		AddGlobal(faults.UniformLoss(0.02)).
		AddGlobal(faults.Duplication(0.01)).
		AddLink("r2", "r3", faults.GilbertElliott(0.05, 0.3, 0, 0.8)).
		LimitICMP("r2", 2, 0.5))
	var targets []Target
	for _, s := range servers {
		targets = append(targets,
			Target{Endpoint: s, Domain: blockedDomain, Protocol: HTTP},
			Target{Endpoint: s, Domain: controlDomain, Protocol: HTTPS},
		)
	}
	results := (&Campaign{
		Net: n, Client: client,
		Base:              Config{ControlDomain: controlDomain, Repetitions: 3},
		RetryFailedPasses: 1,
		Workers:           workers,
	}).Run(targets)

	type record struct {
		Key    string  `json:"key"`
		Err    string  `json:"err,omitempty"`
		Result *Result `json:"result"`
	}
	recs := make([]record, 0, len(results))
	for _, r := range results {
		rec := record{Key: r.Target.Key(), Result: r.Result}
		if r.Err != nil {
			rec.Err = r.Err.Error()
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	raw, err := json.Marshal(recs)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return raw
}

// TestCampaignWorkerDeterminism: the same seed and target list must
// produce byte-identical campaign results whether one worker or eight run
// the measurements — the core guarantee of the clone-isolated pool.
func TestCampaignWorkerDeterminism(t *testing.T) {
	serial := campaignBytes(t, 1)
	for _, workers := range []int{2, 8} {
		par := campaignBytes(t, workers)
		if !bytes.Equal(serial, par) {
			t.Errorf("workers=%d results differ from workers=1 (lens %d vs %d)",
				workers, len(par), len(serial))
		}
	}
}

// TestCampaignParallelBasics: the pool preserves target-order results, the
// panic barrier, and device-state isolation at a parallel worker count.
func TestCampaignParallelBasics(t *testing.T) {
	n, client, servers := buildParallelWorld(t)
	targets := []Target{
		{Endpoint: servers[0], Domain: blockedDomain, Protocol: HTTP},
		{Endpoint: nil, Domain: blockedDomain, Protocol: HTTP, Label: "bad"},
		{Endpoint: servers[1], Domain: "www.open-other.example", Protocol: HTTP},
		{Endpoint: servers[2], Domain: blockedDomain, Protocol: HTTPS},
	}
	results := (&Campaign{
		Net: n, Client: client,
		Base:    Config{ControlDomain: controlDomain, Repetitions: 3},
		Workers: 4,
	}).Run(targets)
	for i, r := range results {
		if r.Target.Key() != targets[i].Key() {
			t.Fatalf("result %d is for %s, want %s", i, r.Target.Key(), targets[i].Key())
		}
	}
	if results[0].Result == nil || !results[0].Result.Blocked {
		t.Error("blocked target lost under parallel run")
	}
	if results[1].Err == nil {
		t.Error("panicking target should carry a recovered error")
	}
	if results[2].Result == nil || !results[2].Result.Valid || results[2].Result.Blocked {
		t.Error("open target should be clean — device state leaked between workers?")
	}
	if results[3].Result == nil || !results[3].Result.Blocked {
		t.Error("HTTPS blocked target lost under parallel run")
	}
}

// TestJournalConcurrentRecord hammers one journal from many goroutines.
// Run under -race this proves the mutex actually covers the entry map and
// the writer; the resume pass proves no line was torn by interleaving.
func TestJournalConcurrentRecord(t *testing.T) {
	const goroutines, perG = 16, 50
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tgt := Target{Domain: fmt.Sprintf("d-%d-%d.example", g, i), Protocol: HTTP}
				j.Record(CampaignResult{Target: tgt})
				if _, ok := j.Lookup(tgt); !ok {
					t.Errorf("entry %s lost", tgt.Key())
				}
				j.Len()
				j.Err()
			}
		}(g)
	}
	wg.Wait()
	if err := j.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	if j.Len() != goroutines*perG {
		t.Fatalf("entries = %d, want %d", j.Len(), goroutines*perG)
	}
	j2, err := ResumeJournal(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("concurrent writes tore the log: %v", err)
	}
	if j2.Len() != goroutines*perG {
		t.Errorf("resumed entries = %d, want %d", j2.Len(), goroutines*perG)
	}
}
