package centrace

import (
	"net/netip"
	"testing"
)

// TestTraceNeverTerminates covers the Trace.TermIdx == -1 path: a TTL
// sweep capped below the endpoint distance sees only ICMP — no terminating
// response at all.
func TestTraceNeverTerminates(t *testing.T) {
	n, client, server := buildNet(t)
	c := cfg()
	c.MaxTTL = 3 // endpoint sits at TTL 5; every probe elicits ICMP
	p := New(n, client, server, c)
	tr := p.trace(controlDomain, nil)
	if tr.TermIdx != -1 {
		t.Fatalf("TermIdx = %d, want -1 (sweep ended on ICMP)", tr.TermIdx)
	}
	if tr.Terminating() != nil {
		t.Error("Terminating() should be nil for a non-terminating sweep")
	}
	if len(tr.Obs) != 3 {
		t.Errorf("observations = %d, want 3", len(tr.Obs))
	}

	// Defensive branch: an out-of-range index also yields nil.
	bad := Trace{TermIdx: 99, Obs: tr.Obs}
	if bad.Terminating() != nil {
		t.Error("out-of-range TermIdx should yield nil")
	}

	// And the full pipeline on such a sweep: no endpoint reach → invalid,
	// modal terminating kind degenerates to timeout → blocking signal with
	// no usable control → Degraded, never high-confidence.
	res := New(n, client, server, c).Run()
	if res.Valid {
		t.Error("capped sweep should not be Valid")
	}
	if res.Blocked {
		if !res.Degraded {
			t.Error("blocked-but-invalid result must be Degraded")
		}
		if res.Confidence.High() {
			t.Error("blocked-but-invalid result must not score high confidence")
		}
	}
	if res.Location != LocUnknown {
		t.Errorf("Location = %s, want Unknown", res.Location)
	}
}

// TestBlockingHopsSkipsUnlocalized: results without a valid blocking-hop
// address (degraded localizations, failed targets) must not appear in the
// CenProbe-style hop grouping.
func TestBlockingHopsSkipsUnlocalized(t *testing.T) {
	addr := netip.MustParseAddr("10.9.9.9")
	results := []CampaignResult{
		{Result: &Result{Blocked: true, BlockingHop: HopInfo{TTL: 3, Addr: addr}}},
		{Result: &Result{Blocked: true, BlockingHop: HopInfo{TTL: 3}}}, // degraded: no address
		{Result: &Result{Blocked: false, BlockingHop: HopInfo{TTL: 3, Addr: addr}}},
		{Result: nil, Err: errFake}, // failed target
	}
	hops := BlockingHops(results)
	if len(hops) != 1 {
		t.Fatalf("groups = %d, want 1", len(hops))
	}
	if got := len(hops[addr.String()]); got != 1 {
		t.Errorf("results at %s = %d, want 1", addr, got)
	}
	if got := len(Blocked(results)); got != 2 {
		t.Errorf("Blocked = %d, want 2 (nil Result skipped, address not required)", got)
	}
}
