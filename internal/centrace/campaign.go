package centrace

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"cendev/internal/faults"
	"cendev/internal/obs"
	"cendev/internal/parallel"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Target is one endpoint × domain × protocol measurement in a campaign.
type Target struct {
	Endpoint *topology.Host
	Domain   string
	Protocol Protocol
	// Label is free-form caller context (country, ASN, ...) carried
	// through to the result.
	Label string
}

// Key is the target's stable identity inside a campaign: endpoint ×
// domain × protocol × label. The journal uses it to recognize already
// measured targets across resumed runs.
func (t Target) Key() string {
	ep := "?"
	if t.Endpoint != nil {
		ep = t.Endpoint.ID
	}
	return fmt.Sprintf("%s|%s|%s|%s", ep, t.Domain, t.Protocol, t.Label)
}

// CampaignResult pairs a target with its measurement.
type CampaignResult struct {
	Target Target
	Result *Result
	// Err records a per-target failure (e.g. a recovered panic). A target
	// with a non-nil Err may carry a nil Result.
	Err error
}

// Failed reports whether the target needs re-measurement: it errored, or
// its control traceroute never reached the endpoint.
func (r CampaignResult) Failed() bool {
	return r.Err != nil || r.Result == nil || !r.Result.Valid
}

// Campaign runs CenTrace against many targets from one vantage point —
// the §4.2 collection pattern ("We perform measurements to multiple
// endpoints concurrently to speed up our data collection"; the simulator
// is synchronous, so "concurrently" here means batched).
type Campaign struct {
	Net    *simnet.Network
	Client *topology.Host
	// Base holds the shared configuration; TestDomain and Protocol are
	// overridden per target.
	Base Config
	// Progress, when non-nil, is called after each target resolves
	// (measured, restored from the journal, or failed for the last time).
	Progress func(done, total int, r CampaignResult)
	// RetryFailedPasses is how many extra passes re-measure targets that
	// failed (panicked, errored, or never reached the endpoint). Transient
	// outages — exactly what the fault engine injects — often clear by the
	// time a later pass comes around.
	RetryFailedPasses int
	// Journal, when non-nil, checkpoints every resolved target and lets an
	// interrupted campaign resume without re-measuring.
	Journal *Journal
	// Workers is the number of parallel measurement workers. Each worker
	// owns a private clone of Net, so targets run concurrently without
	// sharing device flow state. Values below 1 mean one worker. Results
	// are identical for every worker count: each target is measured from
	// the same canonical state regardless of which worker claims it.
	Workers int
}

// Run measures every target across a pool of workers, each owning a
// private clone of the network, and returns results in target order
// regardless of worker count or scheduling.
//
// Determinism: every target is measured from the same canonical state —
// the pass-start virtual clock, a reset port sequence, freshly cleared
// device flow state (stateful flow tracking from one target's probes must
// not contaminate the next — the campaign analog of the §4.1 inter-probe
// wait), and a fault engine re-seeded per (target, pass) — so the result
// for a target depends only on the target and the pass, never on which
// worker ran it or what ran before it on that worker's clone.
//
// Each target runs behind a panic barrier: a target that blows up yields
// an error-bearing CampaignResult and the remaining targets still run.
// Failed targets are retried in RetryFailedPasses extra passes, with each
// pass starting at the latest virtual end time of the previous pass (the
// batch analog of serial time passing — transient faults get a chance to
// clear). Journaled targets are restored instead of re-measured. After the
// run, Net's clock stands at the campaign's latest virtual end time.
func (c *Campaign) Run(targets []Target) []CampaignResult {
	out := make([]CampaignResult, len(targets))
	done := make([]bool, len(targets))
	completed := 0
	cm := newCampaignMetrics(c.Base.Obs)
	var root *obs.Span
	if c.Base.Parent != nil {
		root = c.Base.Parent.StartChild("centrace.campaign", c.Net.Now())
	} else {
		root = c.Base.Tracer.Start("centrace.campaign", c.Net.Now())
	}
	root.SetAttr("targets", strconv.Itoa(len(targets)))
	var mu sync.Mutex // guards out/done/completed and serializes Progress
	resolveLocked := func(i int, cr CampaignResult, fromJournal bool) {
		out[i] = cr
		done[i] = true
		completed++
		cm.record(cr)
		if c.Journal != nil && !fromJournal {
			c.Journal.Record(cr)
		}
		if c.Progress != nil {
			c.Progress(completed, len(targets), cr)
		}
	}

	if c.Journal != nil {
		for i, tgt := range targets {
			if cr, ok := c.Journal.Lookup(tgt); ok {
				resolveLocked(i, cr, true)
			}
		}
	}

	workers := c.Workers
	if workers < 1 {
		workers = 1
	}

	// Canonical origin state every measurement rewinds to.
	baseClock := c.Net.Now()
	basePort := c.Net.PortSeq()
	baseFaults := c.Net.Faults()

	// Worker clones are created serially before the fan-out (Clone freezes
	// the shared geo registry); a single worker still runs on a clone so
	// every worker count follows the same protocol and produces the same
	// bytes.
	nets := make([]*simnet.Network, workers)
	for w := range nets {
		nets[w] = c.Net.Clone()
	}

	passes := c.RetryFailedPasses
	if passes < 0 {
		passes = 0
	}
	startClock := baseClock
	maxEnd := baseClock
	for pass := 0; pass <= passes; pass++ {
		var pending []int
		for i := range targets {
			if !done[i] {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			break
		}
		passStart := startClock
		passEnd := passStart
		passSpan := root.StartChild("centrace.pass", passStart, obs.L("pass", strconv.Itoa(pass)))
		parallel.ForEachOpt(len(pending), workers, parallel.Options{Pool: "centrace.campaign", Obs: c.Base.Obs}, func(w, k int) {
			i := pending[k]
			cr, end := c.measureOn(nets[w], baseFaults, targets[i], pass, passStart, basePort, passSpan)
			mu.Lock()
			defer mu.Unlock()
			if end > passEnd {
				passEnd = end
			}
			if cr.Failed() && pass < passes {
				out[i] = cr // provisional; re-measured next pass
				return
			}
			resolveLocked(i, cr, false)
		})
		passSpan.End(passEnd)
		startClock = passEnd
		if passEnd > maxEnd {
			maxEnd = passEnd
		}
	}
	// Leave the campaign network's clock where the longest measurement
	// ended, so composed experiments keep a monotonic virtual timeline.
	if d := maxEnd - c.Net.Now(); d > 0 {
		c.Net.Sleep(d)
	}
	root.End(maxEnd)
	return out
}

// campaignMetrics are the target-level series a campaign records as each
// target resolves. The zero value (nil registry) is a no-op.
type campaignMetrics struct {
	verdicts   map[string]*obs.Counter // centrace_targets_total{verdict}
	retries    *obs.Histogram          // centrace_target_retries
	confidence *obs.Histogram          // centrace_confidence
}

func newCampaignMetrics(r *obs.Registry) campaignMetrics {
	var m campaignMetrics
	if r == nil {
		return m
	}
	m.verdicts = make(map[string]*obs.Counter, 4)
	for _, v := range []string{"blocked", "clean", "degraded", "failed"} {
		m.verdicts[v] = r.Counter("centrace_targets_total", obs.L("verdict", v))
	}
	m.retries = r.Histogram("centrace_target_retries", obs.CountBuckets)
	m.confidence = r.Histogram("centrace_confidence", obs.ScoreBuckets)
	return m
}

// record accounts one finally-resolved target (provisional failures that a
// later pass re-measures are not counted).
func (m campaignMetrics) record(cr CampaignResult) {
	if m.verdicts == nil {
		return
	}
	switch res := cr.Result; {
	case cr.Failed():
		m.verdicts["failed"].Inc()
	case res.Degraded:
		m.verdicts["degraded"].Inc()
	case res.Blocked:
		m.verdicts["blocked"].Inc()
	default:
		m.verdicts["clean"].Inc()
	}
	if res := cr.Result; res != nil {
		retries := 0
		for _, a := range []*Aggregate{res.Control, res.Test} {
			if a == nil {
				continue
			}
			for i := range a.Traces {
				retries += a.Traces[i].Retries
			}
		}
		m.retries.Observe(float64(retries))
		m.confidence.Observe(res.Confidence.Score)
	}
}

// measureOn runs one target on a worker's private network clone behind the
// panic barrier, returning the result and the virtual time at which the
// measurement ended. The clone is rewound to the canonical pass state
// first; when the campaign network carries a fault engine, the clone gets
// an independent engine seeded from (base seed, target key, pass) so fault
// realizations are per-target deterministic.
func (c *Campaign) measureOn(n *simnet.Network, baseFaults *faults.Engine, tgt Target, pass int, startClock time.Duration, basePort uint16, passSpan *obs.Span) (cr CampaignResult, end time.Duration) {
	cr.Target = tgt
	span := passSpan.StartChild("centrace.target", startClock, obs.L("target", tgt.Key()))
	defer func() {
		if r := recover(); r != nil {
			cr.Result = nil
			cr.Err = fmt.Errorf("centrace: target %s panicked: %v", tgt.Key(), r)
			end = n.Now()
			span.SetAttr("panic", "true")
		}
		span.End(end)
	}()
	n.BeginMeasurement(startClock, basePort)
	if baseFaults != nil {
		seed := faults.DeriveSeed(baseFaults.Seed(), fmt.Sprintf("%s#%d", tgt.Key(), pass))
		n.SetFaults(baseFaults.CloneSeeded(seed))
	}
	cfg := c.Base
	cfg.TestDomain = tgt.Domain
	cfg.Protocol = tgt.Protocol
	cfg.Parent = span
	cr.Result = New(n, c.Client, tgt.Endpoint, cfg).Run()
	return cr, n.Now()
}

// Blocked filters a campaign's results to the blocked ones. Failed targets
// (nil Result) are skipped.
func Blocked(results []CampaignResult) []CampaignResult {
	var out []CampaignResult
	for _, r := range results {
		if r.Result != nil && r.Result.Blocked {
			out = append(out, r)
		}
	}
	return out
}

// BlockingHops groups blocked results by blocking-hop address string,
// the grouping CenProbe's target discovery uses (§5.2). Failed targets and
// blocked results without a valid blocking-hop address (degraded
// localizations) are excluded.
func BlockingHops(results []CampaignResult) map[string][]CampaignResult {
	out := map[string][]CampaignResult{}
	for _, r := range results {
		if r.Result == nil || !r.Result.Blocked || !r.Result.BlockingHop.Addr.IsValid() {
			continue
		}
		key := r.Result.BlockingHop.Addr.String()
		out[key] = append(out[key], r)
	}
	return out
}
