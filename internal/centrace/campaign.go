package centrace

import (
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Target is one endpoint × domain × protocol measurement in a campaign.
type Target struct {
	Endpoint *topology.Host
	Domain   string
	Protocol Protocol
	// Label is free-form caller context (country, ASN, ...) carried
	// through to the result.
	Label string
}

// CampaignResult pairs a target with its measurement.
type CampaignResult struct {
	Target Target
	Result *Result
}

// Campaign runs CenTrace against many targets from one vantage point —
// the §4.2 collection pattern ("We perform measurements to multiple
// endpoints concurrently to speed up our data collection"; the simulator
// is synchronous, so "concurrently" here means batched).
type Campaign struct {
	Net    *simnet.Network
	Client *topology.Host
	// Base holds the shared configuration; TestDomain and Protocol are
	// overridden per target.
	Base Config
	// Progress, when non-nil, is called after each measurement.
	Progress func(done, total int, r CampaignResult)
}

// Run measures every target in order.
func (c *Campaign) Run(targets []Target) []CampaignResult {
	out := make([]CampaignResult, 0, len(targets))
	for i, tgt := range targets {
		cfg := c.Base
		cfg.TestDomain = tgt.Domain
		cfg.Protocol = tgt.Protocol
		res := New(c.Net, c.Client, tgt.Endpoint, cfg).Run()
		cr := CampaignResult{Target: tgt, Result: res}
		out = append(out, cr)
		if c.Progress != nil {
			c.Progress(i+1, len(targets), cr)
		}
	}
	return out
}

// Blocked filters a campaign's results to the blocked ones.
func Blocked(results []CampaignResult) []CampaignResult {
	var out []CampaignResult
	for _, r := range results {
		if r.Result.Blocked {
			out = append(out, r)
		}
	}
	return out
}

// BlockingHops groups blocked results by blocking-hop address string,
// the grouping CenProbe's target discovery uses (§5.2).
func BlockingHops(results []CampaignResult) map[string][]CampaignResult {
	out := map[string][]CampaignResult{}
	for _, r := range results {
		if !r.Result.Blocked || !r.Result.BlockingHop.Addr.IsValid() {
			continue
		}
		key := r.Result.BlockingHop.Addr.String()
		out[key] = append(out[key], r)
	}
	return out
}
