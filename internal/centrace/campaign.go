package centrace

import (
	"fmt"

	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Target is one endpoint × domain × protocol measurement in a campaign.
type Target struct {
	Endpoint *topology.Host
	Domain   string
	Protocol Protocol
	// Label is free-form caller context (country, ASN, ...) carried
	// through to the result.
	Label string
}

// Key is the target's stable identity inside a campaign: endpoint ×
// domain × protocol × label. The journal uses it to recognize already
// measured targets across resumed runs.
func (t Target) Key() string {
	ep := "?"
	if t.Endpoint != nil {
		ep = t.Endpoint.ID
	}
	return fmt.Sprintf("%s|%s|%s|%s", ep, t.Domain, t.Protocol, t.Label)
}

// CampaignResult pairs a target with its measurement.
type CampaignResult struct {
	Target Target
	Result *Result
	// Err records a per-target failure (e.g. a recovered panic). A target
	// with a non-nil Err may carry a nil Result.
	Err error
}

// Failed reports whether the target needs re-measurement: it errored, or
// its control traceroute never reached the endpoint.
func (r CampaignResult) Failed() bool {
	return r.Err != nil || r.Result == nil || !r.Result.Valid
}

// Campaign runs CenTrace against many targets from one vantage point —
// the §4.2 collection pattern ("We perform measurements to multiple
// endpoints concurrently to speed up our data collection"; the simulator
// is synchronous, so "concurrently" here means batched).
type Campaign struct {
	Net    *simnet.Network
	Client *topology.Host
	// Base holds the shared configuration; TestDomain and Protocol are
	// overridden per target.
	Base Config
	// Progress, when non-nil, is called after each target resolves
	// (measured, restored from the journal, or failed for the last time).
	Progress func(done, total int, r CampaignResult)
	// RetryFailedPasses is how many extra passes re-measure targets that
	// failed (panicked, errored, or never reached the endpoint). Transient
	// outages — exactly what the fault engine injects — often clear by the
	// time a later pass comes around.
	RetryFailedPasses int
	// Journal, when non-nil, checkpoints every resolved target and lets an
	// interrupted campaign resume without re-measuring.
	Journal *Journal
}

// Run measures every target in order. Each target is measured on a network
// with freshly reset device state (stateful flow tracking from one
// target's probes must not contaminate the next — the campaign analog of
// the §4.1 inter-probe wait), behind a panic barrier: a target that blows
// up yields an error-bearing CampaignResult and the remaining targets
// still run. Failed targets are retried in RetryFailedPasses extra passes;
// journaled targets are restored instead of re-measured.
func (c *Campaign) Run(targets []Target) []CampaignResult {
	out := make([]CampaignResult, len(targets))
	done := make([]bool, len(targets))
	completed := 0
	resolve := func(i int, cr CampaignResult, fromJournal bool) {
		out[i] = cr
		done[i] = true
		completed++
		if c.Journal != nil && !fromJournal {
			c.Journal.Record(cr)
		}
		if c.Progress != nil {
			c.Progress(completed, len(targets), cr)
		}
	}

	if c.Journal != nil {
		for i, tgt := range targets {
			if cr, ok := c.Journal.Lookup(tgt); ok {
				resolve(i, cr, true)
			}
		}
	}

	passes := c.RetryFailedPasses
	if passes < 0 {
		passes = 0
	}
	for pass := 0; pass <= passes; pass++ {
		for i, tgt := range targets {
			if done[i] {
				continue
			}
			cr := c.measure(tgt)
			if cr.Failed() && pass < passes {
				out[i] = cr // provisional; re-measured next pass
				continue
			}
			resolve(i, cr, false)
		}
	}
	return out
}

// measure runs one target behind the panic barrier.
func (c *Campaign) measure(tgt Target) (cr CampaignResult) {
	cr.Target = tgt
	defer func() {
		if r := recover(); r != nil {
			cr.Result = nil
			cr.Err = fmt.Errorf("centrace: target %s panicked: %v", tgt.Key(), r)
		}
	}()
	// Independent targets must see independent device state.
	c.Net.ResetDeviceState()
	cfg := c.Base
	cfg.TestDomain = tgt.Domain
	cfg.Protocol = tgt.Protocol
	cr.Result = New(c.Net, c.Client, tgt.Endpoint, cfg).Run()
	return cr
}

// Blocked filters a campaign's results to the blocked ones. Failed targets
// (nil Result) are skipped.
func Blocked(results []CampaignResult) []CampaignResult {
	var out []CampaignResult
	for _, r := range results {
		if r.Result != nil && r.Result.Blocked {
			out = append(out, r)
		}
	}
	return out
}

// BlockingHops groups blocked results by blocking-hop address string,
// the grouping CenProbe's target discovery uses (§5.2). Failed targets and
// blocked results without a valid blocking-hop address (degraded
// localizations) are excluded.
func BlockingHops(results []CampaignResult) map[string][]CampaignResult {
	out := map[string][]CampaignResult{}
	for _, r := range results {
		if r.Result == nil || !r.Result.Blocked || !r.Result.BlockingHop.Addr.IsValid() {
			continue
		}
		key := r.Result.BlockingHop.Addr.String()
		out[key] = append(out[key], r)
	}
	return out
}
