package centrace

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"cendev/internal/netem"
)

// fullJournalEntry exercises every field of the journal schema, nested
// netem codecs included.
func fullJournalEntry() journalEntry {
	quote := &netem.QuotedPacket{
		IP: netem.IPv4{
			TOS: 0x10, TotalLength: 60, ID: 0x1234, Flags: netem.IPFlagDF,
			FragOffset: 0, TTL: 3, Protocol: netem.ProtoTCP, Checksum: 0xBEEF,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.0.2.9"),
		},
		TransportBytes: []byte{0xDE, 0xAD, 0xBE, 0xEF},
		TCP: &netem.TCP{
			SrcPort: 443, DstPort: 51000, Seq: 1000, Ack: 2000,
			Flags: netem.TCPSyn | netem.TCPAck, Window: 65535, Checksum: 0xCAFE,
			Options: []netem.TCPOption{{Kind: netem.TCPOptMSS, Data: []byte{0x05, 0xB4}}},
		},
	}
	delta := &netem.QuoteDelta{
		TOSChanged: true, IPIDChanged: true, PayloadTruncated: true,
		TTLAtQuote: 1, QuotedPayloadLen: 8,
	}
	inj := &InjectedFeatures{
		TTL: 64, IPID: 0xABCD, IPFlags: netem.IPFlagDF,
		TCPFlags: netem.TCPRst, TCPWindow: 512,
		Options: []netem.TCPOptionKind{netem.TCPOptMSS, netem.TCPOptWScale},
	}
	trace := Trace{
		Domain: "blocked.example",
		Obs: []ProbeObs{
			{TTL: 1, Kind: KindICMP, From: netip.MustParseAddr("10.0.0.1"), Quote: quote, QuoteDelta: delta},
			{TTL: 2, Kind: KindRST, From: netip.MustParseAddr("192.0.2.9"), GotICMPAlongside: true,
				ICMPFrom: netip.MustParseAddr("10.0.0.2"), Injected: inj, Payload: []byte("HTTP/1.1 403")},
		},
		TermIdx: 1, Attempts: 5, Retries: 2, DialFailures: 1,
	}
	agg := &Aggregate{
		Domain: "blocked.example",
		Traces: []Trace{trace},
		HopDist: map[int]map[netip.Addr]int{
			1: {netip.MustParseAddr("10.0.0.1"): 11},
			2: {netip.MustParseAddr("10.0.0.2"): 7, netip.MustParseAddr("10.0.0.3"): 4},
		},
		TermTTL: 2, TermKind: KindRST, EndpointTTL: 5,
	}
	res := &Result{
		Config: Config{
			ControlDomain: "control.example", TestDomain: "blocked.example",
			Protocol: HTTP, MaxTTL: 30, Repetitions: 11, Retries: 3,
			ProbeInterval: 120 * time.Second, MaxConsecutiveTimeouts: 10,
		},
		Client:   netip.MustParseAddr("10.0.0.100"),
		Endpoint: netip.MustParseAddr("192.0.2.9"),
		Valid:    true, Blocked: true,
		TermKind: KindRST, TermTTL: 2, EndpointTTL: 5,
		Location: LocPath, Placement: PlacementInPath, DeviceTTL: 2,
		TTLCopyCorrected: true,
		BlockingHop: HopInfo{
			TTL: 2, Addr: netip.MustParseAddr("10.0.0.2"), ASN: 64500,
			Country: "XX", Org: "Example Transit",
		},
		Injected: inj, QuoteDelta: delta,
		BlockpageVendor: "vendor-a", BlockpageID: "bp-001",
		Confidence: Confidence{
			Score: 0.93, TermAgreement: 1, HopSupport: 0.9,
			RetryRate: 0.05, DialFailRate: 0.01,
		},
		Degraded: false,
		Control:  agg,
		Test:     agg,
	}
	return journalEntry{
		Key: "ep-0|blocked.example|http", Endpoint: "ep-0",
		Domain: "blocked.example", Protocol: "http", Label: "batch-1",
		Error: "", Result: res,
	}
}

// TestJournalEntryRoundTrip is the golden check for the binary journal
// codec: the full Result tree must survive encode→decode unchanged.
func TestJournalEntryRoundTrip(t *testing.T) {
	orig := fullJournalEntry()
	payload := appendJournalEntry(nil, &orig)
	got, err := decodeJournalEntry(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip diverged:\n  orig %+v\n  got  %+v", orig, got)
	}
}

// TestJournalEntryRoundTripMinimal: an error-only entry with no result.
func TestJournalEntryRoundTripMinimal(t *testing.T) {
	orig := journalEntry{Key: "a|b|c", Domain: "b", Protocol: "c", Error: "unreachable"}
	got, err := decodeJournalEntry(appendJournalEntry(nil, &orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("minimal entry diverged: %+v vs %+v", orig, got)
	}
}

// TestJournalEntryEncodingDeterministic: HopDist is map-shaped, so this
// is the regression test for sorted-key encoding — identical entries must
// produce identical bytes on every call.
func TestJournalEntryEncodingDeterministic(t *testing.T) {
	e := fullJournalEntry()
	a := appendJournalEntry(nil, &e)
	for i := 0; i < 16; i++ {
		if b := appendJournalEntry(nil, &e); string(a) != string(b) {
			t.Fatalf("encoding %d differs from the first (unsorted map iteration?)", i)
		}
	}
}

// TestJournalEntryVersionGate: a record from a future schema version must
// be rejected, not misparsed.
func TestJournalEntryVersionGate(t *testing.T) {
	e := fullJournalEntry()
	payload := appendJournalEntry(nil, &e)
	payload[0] = journalV1 + 1
	if _, err := decodeJournalEntry(payload); err == nil {
		t.Fatal("future-version record decoded without error")
	}
}

// FuzzJournalEntryRoundTrip feeds arbitrary bytes to the entry decoder:
// it must never panic, and any payload it accepts must re-encode and
// re-decode to the same entry.
func FuzzJournalEntryRoundTrip(f *testing.F) {
	full := fullJournalEntry()
	f.Add(appendJournalEntry(nil, &full))
	minimal := journalEntry{Key: "k", Error: "e"}
	f.Add(appendJournalEntry(nil, &minimal))
	f.Add([]byte{journalV1})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, payload []byte) {
		e, err := decodeJournalEntry(payload)
		if err != nil {
			return
		}
		re := appendJournalEntry(nil, &e)
		e2, err := decodeJournalEntry(re)
		if err != nil {
			t.Fatalf("re-encoded entry failed to decode: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("round trip diverged:\n  first  %+v\n  second %+v", e, e2)
		}
	})
}
