// Package geoip provides IP address to AS/country/organization lookups for
// the simulated Internet, substituting for the Maxmind and Routeviews
// metadata the paper relies on (§4.2). The registry is populated from the
// topology, so lookups are exact rather than approximate — the paper's
// caveat about inaccurate border-router geolocation does not apply, which
// DESIGN.md documents as an accepted fidelity difference.
package geoip

import (
	"net/netip"
	"sort"
)

// Info is the metadata record for an address range.
type Info struct {
	ASN     uint32
	Name    string
	Country string
}

// Registry maps prefixes to AS metadata with longest-prefix-match lookups.
type Registry struct {
	entries []entry
	sorted  bool
}

type entry struct {
	prefix netip.Prefix
	info   Info
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a prefix with its metadata.
func (r *Registry) Add(prefix netip.Prefix, info Info) {
	r.entries = append(r.entries, entry{prefix: prefix.Masked(), info: info})
	r.sorted = false
}

// Freeze sorts the registry eagerly so that later Lookups are pure reads.
// Lookup normally sorts lazily on first use, which is a data race when one
// registry is shared by parallel measurement workers; freezing before the
// fan-out (simnet.Network.Clone does this) makes sharing safe as long as no
// further Add calls follow.
func (r *Registry) Freeze() {
	if !r.sorted {
		sort.SliceStable(r.entries, func(i, j int) bool {
			return r.entries[i].prefix.Bits() > r.entries[j].prefix.Bits()
		})
		r.sorted = true
	}
}

// Lookup returns the metadata for the longest matching prefix.
func (r *Registry) Lookup(addr netip.Addr) (Info, bool) {
	if !r.sorted {
		// Sort by descending prefix length so the first match is longest.
		sort.SliceStable(r.entries, func(i, j int) bool {
			return r.entries[i].prefix.Bits() > r.entries[j].prefix.Bits()
		})
		r.sorted = true
	}
	for _, e := range r.entries {
		if e.prefix.Contains(addr) {
			return e.info, true
		}
	}
	return Info{}, false
}

// ASN returns just the AS number for addr, 0 when unknown.
func (r *Registry) ASN(addr netip.Addr) uint32 {
	info, ok := r.Lookup(addr)
	if !ok {
		return 0
	}
	return info.ASN
}

// Country returns the ISO country code for addr, "" when unknown.
func (r *Registry) Country(addr netip.Addr) string {
	info, _ := r.Lookup(addr)
	return info.Country
}

// Len returns the number of registered prefixes.
func (r *Registry) Len() int { return len(r.entries) }
