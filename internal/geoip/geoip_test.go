package geoip

import (
	"net/netip"
	"testing"
)

func TestLookupLongestPrefix(t *testing.T) {
	r := NewRegistry()
	r.Add(netip.MustParsePrefix("10.0.0.0/8"), Info{ASN: 1, Name: "Big", Country: "US"})
	r.Add(netip.MustParsePrefix("10.1.0.0/16"), Info{ASN: 2, Name: "Mid", Country: "DE"})
	r.Add(netip.MustParsePrefix("10.1.2.0/24"), Info{ASN: 3, Name: "Small", Country: "KZ"})

	cases := []struct {
		addr string
		asn  uint32
	}{
		{"10.9.9.9", 1},
		{"10.1.9.9", 2},
		{"10.1.2.9", 3},
	}
	for _, tc := range cases {
		info, ok := r.Lookup(netip.MustParseAddr(tc.addr))
		if !ok || info.ASN != tc.asn {
			t.Errorf("Lookup(%s) = %+v ok=%v, want ASN %d", tc.addr, info, ok, tc.asn)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	r := NewRegistry()
	r.Add(netip.MustParsePrefix("10.0.0.0/8"), Info{ASN: 1})
	if _, ok := r.Lookup(netip.MustParseAddr("192.168.1.1")); ok {
		t.Error("Lookup outside all prefixes should miss")
	}
	if asn := r.ASN(netip.MustParseAddr("192.168.1.1")); asn != 0 {
		t.Errorf("ASN miss = %d, want 0", asn)
	}
	if c := r.Country(netip.MustParseAddr("192.168.1.1")); c != "" {
		t.Errorf("Country miss = %q, want empty", c)
	}
}

func TestAddAfterLookupResorts(t *testing.T) {
	r := NewRegistry()
	r.Add(netip.MustParsePrefix("10.0.0.0/8"), Info{ASN: 1})
	addr := netip.MustParseAddr("10.1.2.3")
	if got := r.ASN(addr); got != 1 {
		t.Fatalf("ASN = %d, want 1", got)
	}
	r.Add(netip.MustParsePrefix("10.1.0.0/16"), Info{ASN: 2})
	if got := r.ASN(addr); got != 2 {
		t.Errorf("ASN after adding longer prefix = %d, want 2", got)
	}
}

func TestCountryAndLen(t *testing.T) {
	r := NewRegistry()
	r.Add(netip.MustParsePrefix("10.2.0.0/16"), Info{ASN: 9198, Name: "JSC-Kazakhtelecom", Country: "KZ"})
	if got := r.Country(netip.MustParseAddr("10.2.0.7")); got != "KZ" {
		t.Errorf("Country = %q", got)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}
