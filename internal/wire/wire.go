// Package wire is the length-prefixed binary record format shared by the
// censerved result store and the centrace campaign journal (DESIGN.md
// §14). A record is one self-delimiting frame:
//
//	frame   = marker | length | crc32 | payload
//	marker  = C5 63 77 31            ("cw1" behind a 0xC5 guard byte)
//	length  = uvarint(len(payload))  (capped at MaxPayload)
//	crc32   = IEEE CRC-32 of payload, little-endian
//	payload = version byte + record bytes (record codecs own both)
//
// The 0xC5 guard byte makes format sniffing sound against the legacy
// JSON-lines files the frame replaces: no JSONL segment starts with 0xC5
// (JSON text starts with punctuation, and 0xC5 is a UTF-8 *leading* byte
// that 0x63 'c' can never continue, so the full marker is not valid UTF-8
// text either).
//
// The Reader mirrors the crash-recovery contract the JSONL replayers
// established: a torn final frame (the kill -9 mid-append artifact) is
// reported for truncation back to the last frame boundary, while interior
// corruption is skipped by scanning for the next marker — the CRC rejects
// false markers inside damaged regions — so good records after a tear
// still replay. Package wire imports only the standard library and holds
// no clocks, no randomness, and no I/O: encoding is a pure function of
// the record bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net/netip"
)

// Marker is the four-byte frame marker every record starts with.
var Marker = [4]byte{0xC5, 'c', 'w', '1'}

// MaxPayload caps a frame's payload length. A corrupt length field fails
// this bound immediately instead of swallowing the rest of the file.
const MaxPayload = 64 << 20

// SniffMarker reports whether b begins with the frame marker — the
// format dispatch used when opening a file that may be legacy JSONL.
func SniffMarker(b []byte) bool {
	return len(b) >= len(Marker) && b[0] == Marker[0] && b[1] == Marker[1] &&
		b[2] == Marker[2] && b[3] == Marker[3]
}

// AppendFrame appends one complete frame carrying payload to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	dst = append(dst, Marker[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// Reader iterates the frames of a byte stream, tolerating torn tails and
// interior corruption. Payloads returned by Next alias the input buffer;
// callers that retain them across mutations of b must copy.
type Reader struct {
	b        []byte
	off      int
	good     int // offset just past the last good frame
	torn     bool
	warnings []string
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Next returns the next valid frame payload, or ok=false at the end of
// the stream (clean or torn — see Torn).
func (r *Reader) Next() (payload []byte, ok bool) {
	for r.off < len(r.b) {
		start := indexMarker(r.b, r.off)
		if start < 0 {
			// Trailing bytes with no frame start: the torn tail a crash
			// mid-append leaves behind.
			r.declareTorn(r.off, "no frame marker in trailing bytes")
			return nil, false
		}
		if start > r.off {
			r.warnings = append(r.warnings, fmt.Sprintf(
				"wire: skipped %d bytes of garbage at offset %d", start-r.off, r.off))
			r.off = start
		}
		p := start + len(Marker)
		length, n := binary.Uvarint(r.b[p:])
		if n <= 0 || length > MaxPayload {
			if !r.resyncOrTorn(start, "unreadable frame length") {
				return nil, false
			}
			continue
		}
		p += n
		end := p + 4 + int(length)
		if end < 0 || end > len(r.b) {
			if !r.resyncOrTorn(start, "frame extends past end of stream") {
				return nil, false
			}
			continue
		}
		want := binary.LittleEndian.Uint32(r.b[p:])
		payload = r.b[p+4 : end]
		if crc32.ChecksumIEEE(payload) != want {
			if !r.resyncOrTorn(start, "frame checksum mismatch") {
				return nil, false
			}
			continue
		}
		r.off = end
		r.good = end
		return payload, true
	}
	return nil, false
}

// resyncOrTorn handles an unusable frame starting at start. If a later
// marker exists the damage is interior: skip to it and return true to
// retry. Otherwise the damaged region runs to the end of the stream — the
// torn-tail case — and scanning stops.
func (r *Reader) resyncOrTorn(start int, why string) bool {
	if next := indexMarker(r.b, start+1); next >= 0 {
		r.warnings = append(r.warnings, fmt.Sprintf(
			"wire: %s at offset %d: resynced at offset %d", why, start, next))
		r.off = next
		return true
	}
	r.declareTorn(start, why)
	return false
}

func (r *Reader) declareTorn(at int, why string) {
	r.torn = true
	r.warnings = append(r.warnings, fmt.Sprintf(
		"wire: torn tail at offset %d (%s): %d trailing bytes unreadable",
		at, why, len(r.b)-at))
	r.off = len(r.b)
}

// Torn reports whether the stream ended in a torn frame, and the offset
// of the last good frame boundary — what the file should be truncated to
// so the next append starts clean.
func (r *Reader) Torn() (truncateTo int64, torn bool) { return int64(r.good), r.torn }

// Warnings returns descriptions of every skipped or torn region.
func (r *Reader) Warnings() []string { return r.warnings }

// indexMarker returns the index of the first frame marker at or after
// from, or -1.
func indexMarker(b []byte, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i+len(Marker) <= len(b); i++ {
		if b[i] == Marker[0] && b[i+1] == Marker[1] && b[i+2] == Marker[2] && b[i+3] == Marker[3] {
			return i
		}
	}
	return -1
}

// --- Primitive record encoding -----------------------------------------
//
// Record codecs are hand-written append/decode pairs over these
// primitives. Integers are varints, strings and byte slices are
// length-prefixed, floats are fixed 8-byte little-endian IEEE 754, and
// addresses are length-prefixed 4- or 16-byte network-order slices (zero
// length = the invalid address). Field order is the schema; the payload's
// leading version byte gates evolution.

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends the IEEE 754 bits of f, little-endian.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendBytes appends p length-prefixed.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendAddr appends a netip.Addr as its length-prefixed byte form; the
// invalid (zero) address encodes as length 0.
func AppendAddr(b []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(b, 0)
	}
	return AppendBytes(b, a.AsSlice())
}

// Dec decodes the primitives of one record payload in schema order. The
// error is sticky: after the first malformed field every later read
// returns a zero value, and Err reports the failure — codec code reads
// straight through and checks once at the end.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or malformed %s", what)
	}
}

// Byte reads one raw byte — the record version, by convention.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Count reads a uvarint element count and rejects any value exceeding
// the unread byte length — every element costs at least one byte, so a
// larger count is corruption, and failing here (rather than clamping)
// keeps the sticky error honest instead of silently desyncing the
// decode.
func (d *Dec) Count() uint64 {
	n := d.Uvarint()
	if d.err == nil && n > uint64(len(d.b)) {
		d.fail("element count")
		return 0
	}
	return n
}

// Varint reads a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Bool reads a 0/1 byte; any other value is malformed.
func (d *Dec) Bool() bool {
	v := d.Byte()
	if v > 1 {
		d.fail("bool")
		return false
	}
	return v == 1
}

// Float64 reads fixed 8-byte little-endian IEEE 754 bits.
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// Bytes reads a length-prefixed byte slice. The result is a copy: record
// decoding outlives the frame buffer it reads from. A zero length yields
// nil.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[:n])
	d.b = d.b[n:]
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Addr reads a length-prefixed address; length 0 is the invalid address.
func (d *Dec) Addr() netip.Addr {
	raw := d.Bytes()
	if d.err != nil || raw == nil {
		return netip.Addr{}
	}
	a, ok := netip.AddrFromSlice(raw)
	if !ok {
		d.fail("addr")
		return netip.Addr{}
	}
	return a
}
