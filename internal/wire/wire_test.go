package wire

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xC5}, 64), // marker-ish bytes inside a payload
		Marker[:],                      // a full marker inside a payload
		bytes.Repeat([]byte("x"), 1<<16),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	r := NewReader(stream)
	for i, want := range payloads {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("phantom frame after the last payload")
	}
	if _, torn := r.Torn(); torn {
		t.Fatal("clean stream reported torn")
	}
	if w := r.Warnings(); len(w) != 0 {
		t.Fatalf("clean stream warned: %q", w)
	}
}

func TestReaderTornTail(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, []byte("first"))
	good := len(stream)
	stream = AppendFrame(stream, []byte("second-but-torn"))
	stream = stream[:good+len(stream[good:])/2]

	r := NewReader(stream)
	p, ok := r.Next()
	if !ok || string(p) != "first" {
		t.Fatalf("first frame = %q ok=%v", p, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("torn frame surfaced as a payload")
	}
	truncateTo, torn := r.Torn()
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if truncateTo != int64(good) {
		t.Fatalf("truncateTo = %d, want %d (last good frame boundary)", truncateTo, good)
	}
}

func TestReaderInteriorCorruptionResyncs(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, []byte("first"))
	mid := len(stream)
	stream = AppendFrame(stream, []byte("second"))
	end := len(stream)
	stream = AppendFrame(stream, []byte("third"))
	stream[end-1] ^= 0xFF // corrupt "second"'s payload: CRC must reject it

	r := NewReader(stream)
	var got []string
	for {
		p, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, string(p))
	}
	if len(got) != 2 || got[0] != "first" || got[1] != "third" {
		t.Fatalf("payloads = %q, want [first third]", got)
	}
	if _, torn := r.Torn(); torn {
		t.Fatal("interior corruption misreported as torn tail")
	}
	if len(r.Warnings()) == 0 {
		t.Fatal("no warning for the skipped frame")
	}
	_ = mid
}

// adversarialResyncStream builds the nastiest interior-corruption shape:
// frame A, then a corrupted frame whose own payload embeds a COMPLETE
// valid frame (marker, length, CRC all good), then frame C. When the
// outer frame's CRC rejects it, resync scans forward and lands on the
// embedded frame's marker — a valid frame that was never appended at the
// top level. The reader cannot distinguish it from a real record (by
// construction it is bit-for-bit one), so the contract is: surface it,
// keep going, and still recover every genuine frame after the damage
// with no torn-tail misreport.
func adversarialResyncStream() (stream []byte, inner []byte) {
	inner = []byte("embedded-frame-payload")
	var outerPayload []byte
	outerPayload = append(outerPayload, []byte("garbage-before-")...)
	outerPayload = AppendFrame(outerPayload, inner)
	outerPayload = append(outerPayload, []byte("-garbage-after")...)

	stream = AppendFrame(nil, []byte("first"))
	corruptAt := len(stream) + len(Marker) // the outer frame's length byte
	stream = AppendFrame(stream, outerPayload)
	stream[corruptAt] ^= 0xFF // outer frame now unreadable; inner survives
	stream = AppendFrame(stream, []byte("third"))
	return stream, inner
}

func TestReaderAdversarialResync(t *testing.T) {
	stream, inner := adversarialResyncStream()
	r := NewReader(stream)
	var got []string
	for {
		p, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, string(p))
	}
	want := []string{"first", string(inner), "third"}
	if len(got) != len(want) {
		t.Fatalf("payloads = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload %d = %q, want %q (full: %q)", i, got[i], want[i], got)
		}
	}
	if _, torn := r.Torn(); torn {
		t.Fatal("adversarial interior corruption misreported as torn tail")
	}
	if len(r.Warnings()) == 0 {
		t.Fatal("no warnings for the corrupted region")
	}
}

func TestReaderGarbagePrefix(t *testing.T) {
	stream := []byte("not a frame at all ")
	stream = AppendFrame(stream, []byte("payload"))
	r := NewReader(stream)
	p, ok := r.Next()
	if !ok || string(p) != "payload" {
		t.Fatalf("payload after garbage = %q ok=%v", p, ok)
	}
	if len(r.Warnings()) != 1 {
		t.Fatalf("warnings = %q, want one for the garbage prefix", r.Warnings())
	}
}

func TestSniffMarker(t *testing.T) {
	if SniffMarker([]byte(`{"key":"x"}`)) {
		t.Error("JSON sniffed as binary")
	}
	if SniffMarker(nil) || SniffMarker(Marker[:3]) {
		t.Error("short input sniffed as binary")
	}
	if !SniffMarker(AppendFrame(nil, []byte("x"))) {
		t.Error("frame stream not sniffed as binary")
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	addr4 := netip.MustParseAddr("192.0.2.7")
	addr6 := netip.MustParseAddr("2001:db8::1")
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1)
	b = AppendVarint(b, math.MinInt64)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendFloat64(b, 3.5)
	b = AppendFloat64(b, math.Inf(-1))
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBytes(b, nil)
	b = AppendString(b, "héllo")
	b = AppendString(b, "")
	b = AppendAddr(b, addr4)
	b = AppendAddr(b, addr6)
	b = AppendAddr(b, netip.Addr{})

	d := NewDec(b)
	if v := d.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d", v)
	}
	if v := d.Uvarint(); v != math.MaxUint64 {
		t.Errorf("uvarint max = %d", v)
	}
	if v := d.Varint(); v != -1 {
		t.Errorf("varint = %d", v)
	}
	if v := d.Varint(); v != math.MinInt64 {
		t.Errorf("varint min = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools corrupted")
	}
	if v := d.Float64(); v != 3.5 {
		t.Errorf("float = %v", v)
	}
	if v := d.Float64(); !math.IsInf(v, -1) {
		t.Errorf("float -inf = %v", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", v)
	}
	if v := d.Bytes(); v != nil {
		t.Errorf("empty bytes = %v, want nil", v)
	}
	if v := d.String(); v != "héllo" {
		t.Errorf("string = %q", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("empty string = %q", v)
	}
	if v := d.Addr(); v != addr4 {
		t.Errorf("addr4 = %v", v)
	}
	if v := d.Addr(); v != addr6 {
		t.Errorf("addr6 = %v", v)
	}
	if v := d.Addr(); v.IsValid() {
		t.Errorf("invalid addr = %v", v)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("round trip erred: %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("%d bytes left over", d.Len())
	}
}

func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{0x02, 'a'}) // string of length 2 with 1 byte present
	if s := d.String(); s != "" {
		t.Errorf("truncated string = %q, want empty", s)
	}
	if d.Err() == nil {
		t.Fatal("truncated string did not error")
	}
	// Every later read is a zero value, not a panic or stale data.
	if d.Byte() != 0 || d.Uvarint() != 0 || d.Varint() != 0 || d.Bool() ||
		d.Float64() != 0 || d.Bytes() != nil || d.String() != "" || d.Addr().IsValid() {
		t.Error("reads after a sticky error returned non-zero values")
	}
}

func TestDecCountRejectsOverlongCounts(t *testing.T) {
	b := AppendUvarint(nil, 1<<40) // count far beyond remaining bytes
	d := NewDec(b)
	if n := d.Count(); n != 0 {
		t.Errorf("overlong count = %d, want 0", n)
	}
	if d.Err() == nil {
		t.Fatal("overlong count accepted — decoder would silently desync")
	}
}

func TestDecBoolRejectsNonBoolean(t *testing.T) {
	d := NewDec([]byte{7})
	if d.Bool() {
		t.Error("byte 7 decoded as true")
	}
	if d.Err() == nil {
		t.Fatal("non-0/1 bool byte accepted")
	}
}

// FuzzFrameReader hammers the frame reader with arbitrary bytes: it must
// never panic, every payload it returns must re-frame to a stream that
// yields the same payloads with no warnings, and repairing a torn tail by
// truncating to the reported boundary must leave a clean stream.
func FuzzFrameReader(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("jsonl garbage\n"))
	f.Add(AppendFrame(nil, []byte("one")))
	f.Add(AppendFrame(AppendFrame(nil, []byte("a")), []byte("b")))
	torn := AppendFrame(nil, []byte("good"))
	f.Add(append(torn[:len(torn):len(torn)], AppendFrame(nil, bytes.Repeat([]byte("x"), 100))[:20]...))
	f.Add(Marker[:])
	// Adversarial resync regression: a corrupted region that itself
	// contains a valid embedded frame (also pinned under testdata/fuzz).
	adversarial, _ := adversarialResyncStream()
	f.Add(adversarial)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		var payloads [][]byte
		for {
			p, ok := r.Next()
			if !ok {
				break
			}
			payloads = append(payloads, append([]byte(nil), p...))
		}
		truncateTo, torn := r.Torn()
		if truncateTo < 0 || truncateTo > int64(len(data)) {
			t.Fatalf("truncateTo %d out of range [0,%d]", truncateTo, len(data))
		}

		// Re-encode what was read: the round trip must be clean.
		var clean []byte
		for _, p := range payloads {
			clean = AppendFrame(clean, p)
		}
		r2 := NewReader(clean)
		for i, want := range payloads {
			got, ok := r2.Next()
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("re-framed payload %d = %q ok=%v, want %q", i, got, ok, want)
			}
		}
		if w := r2.Warnings(); len(w) != 0 {
			t.Fatalf("re-framed stream warned: %q", w)
		}

		// The torn-tail repair contract: truncating to the reported
		// boundary and appending a fresh frame yields every pre-tear
		// payload plus the new one.
		if torn {
			repaired := append(append([]byte(nil), data[:truncateTo]...), AppendFrame(nil, []byte("appended"))...)
			r3 := NewReader(repaired)
			n := 0
			last := ""
			for {
				p, ok := r3.Next()
				if !ok {
					break
				}
				n++
				last = string(p)
			}
			if last != "appended" {
				t.Fatalf("append after repair lost the new frame (read %d frames, last %q)", n, last)
			}
			if _, stillTorn := r3.Torn(); stillTorn {
				t.Fatal("repaired stream still torn")
			}
		}
	})
}
