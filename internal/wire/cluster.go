package wire

// Cluster frame payloads (DESIGN.md §15): the three record kinds the
// coordinator/worker protocol moves over HTTP bodies as single wire
// frames. Like the store and journal records, each payload leads with a
// version byte and every field after it is fixed-order; the codecs are
// hand-written append/decode pairs over the package primitives so
// encoding stays a pure allocation-light function of the record.
//
// The payloads deliberately know nothing about job specs or stores:
// JobLease carries the spec as opaque bytes (the coordinator ships the
// normalized JSON spec it persisted), and Completion carries the result
// payload as opaque bytes plus its SHA-256 hex digest — the unit of
// replica verification.

import "fmt"

// JobLease is the body of a successful GET /v1/cluster/pull: one replica
// execution granted to one worker node.
type JobLease struct {
	// ID is the coordinator-global job ID.
	ID string
	// Node is the worker the lease is granted to.
	Node string
	// Owner is the ring owner whose replica slot this execution fills —
	// equal to Node except for stolen leases.
	Owner string
	// Attempt counts executions of this replica slot, starting at 1.
	Attempt int64
	// Seed is the job's spec seed, echoed so workers can derive any
	// local determinism without reparsing the spec.
	Seed int64
	// Spec is the normalized job spec, as the JSON bytes the coordinator
	// persisted at admission.
	Spec []byte
}

// Completion is the body of POST /v1/cluster/complete and of
// /v1/cluster/repair pushes: one executed (or replicated) result record
// plus its digest. Error-only completions carry no payload.
type Completion struct {
	ID      string
	Node    string
	Attempt int64
	// Transient marks an error as retryable (serve.IsTransient on the
	// worker side); the coordinator re-leases transient failures and
	// finalizes permanent ones immediately.
	Transient bool
	Error     string
	// Digest is the lowercase hex SHA-256 of Payload; empty on error
	// completions.
	Digest  string
	Payload []byte
}

// DigestRange is one anti-entropy bucket summary: the rolled-up digest
// of every (job ID, result digest) pair a node holds whose key hash
// falls in [Start, End].
type DigestRange struct {
	Start uint64
	End   uint64
	Count int64
	// Digest is the lowercase hex SHA-256 over the sorted
	// "id=digest\n" lines of the bucket; empty when Count is 0.
	Digest string
}

// Version bytes for the cluster payloads. Each kind evolves
// independently.
const (
	JobLeaseV1    = 1
	CompletionV1  = 1
	DigestRangeV1 = 1
)

// AppendJobLease appends the binary payload of l to b.
func AppendJobLease(b []byte, l *JobLease) []byte {
	b = append(b, JobLeaseV1)
	b = AppendString(b, l.ID)
	b = AppendString(b, l.Node)
	b = AppendString(b, l.Owner)
	b = AppendVarint(b, l.Attempt)
	b = AppendVarint(b, l.Seed)
	return AppendBytes(b, l.Spec)
}

// DecodeJobLease decodes one lease payload.
func DecodeJobLease(payload []byte) (*JobLease, error) {
	d := NewDec(payload)
	if v := d.Byte(); v != JobLeaseV1 {
		if d.Err() == nil {
			return nil, fmt.Errorf("wire: unknown job lease version %d", v)
		}
		return nil, d.Err()
	}
	l := &JobLease{}
	l.ID = d.String()
	l.Node = d.String()
	l.Owner = d.String()
	l.Attempt = d.Varint()
	l.Seed = d.Varint()
	l.Spec = d.Bytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// AppendCompletion appends the binary payload of c to b.
func AppendCompletion(b []byte, c *Completion) []byte {
	b = append(b, CompletionV1)
	b = AppendString(b, c.ID)
	b = AppendString(b, c.Node)
	b = AppendVarint(b, c.Attempt)
	b = AppendBool(b, c.Transient)
	b = AppendString(b, c.Error)
	b = AppendString(b, c.Digest)
	return AppendBytes(b, c.Payload)
}

// DecodeCompletion decodes one completion payload.
func DecodeCompletion(payload []byte) (*Completion, error) {
	d := NewDec(payload)
	if v := d.Byte(); v != CompletionV1 {
		if d.Err() == nil {
			return nil, fmt.Errorf("wire: unknown completion version %d", v)
		}
		return nil, d.Err()
	}
	c := &Completion{}
	c.ID = d.String()
	c.Node = d.String()
	c.Attempt = d.Varint()
	c.Transient = d.Bool()
	c.Error = d.String()
	c.Digest = d.String()
	c.Payload = d.Bytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// AppendDigestRange appends the binary payload of r to b.
func AppendDigestRange(b []byte, r *DigestRange) []byte {
	b = append(b, DigestRangeV1)
	b = AppendUvarint(b, r.Start)
	b = AppendUvarint(b, r.End)
	b = AppendVarint(b, r.Count)
	return AppendString(b, r.Digest)
}

// DecodeDigestRange decodes one digest-range payload.
func DecodeDigestRange(payload []byte) (*DigestRange, error) {
	d := NewDec(payload)
	if v := d.Byte(); v != DigestRangeV1 {
		if d.Err() == nil {
			return nil, fmt.Errorf("wire: unknown digest range version %d", v)
		}
		return nil, d.Err()
	}
	r := &DigestRange{}
	r.Start = d.Uvarint()
	r.End = d.Uvarint()
	r.Count = d.Varint()
	r.Digest = d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}
