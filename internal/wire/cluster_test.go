package wire

import (
	"reflect"
	"testing"
)

func TestJobLeaseRoundTrip(t *testing.T) {
	orig := &JobLease{
		ID: "j-00000007", Node: "w3", Owner: "w1", Attempt: 2, Seed: -9,
		Spec: []byte(`{"kind":"centrace","domain":"x.example"}`),
	}
	got, err := DecodeJobLease(AppendJobLease(nil, orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip diverged:\n  orig %+v\n  got  %+v", orig, got)
	}

	zero := &JobLease{}
	got, err = DecodeJobLease(AppendJobLease(nil, zero))
	if err != nil {
		t.Fatalf("zero decode: %v", err)
	}
	if !reflect.DeepEqual(zero, got) {
		t.Fatalf("zero lease diverged: %+v", got)
	}
}

func TestCompletionRoundTrip(t *testing.T) {
	for _, orig := range []*Completion{
		{ID: "j-1", Node: "w1", Attempt: 1, Digest: "ab12", Payload: []byte(`{"ok":true}`)},
		{ID: "j-2", Node: "w2", Attempt: 3, Transient: true, Error: "store write: EIO"},
		{},
	} {
		got, err := DecodeCompletion(AppendCompletion(nil, orig))
		if err != nil {
			t.Fatalf("decode %+v: %v", orig, err)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("round trip diverged:\n  orig %+v\n  got  %+v", orig, got)
		}
	}
}

func TestDigestRangeRoundTrip(t *testing.T) {
	orig := &DigestRange{Start: 0xff00000000000000, End: ^uint64(0), Count: 12, Digest: "deadbeef"}
	got, err := DecodeDigestRange(AppendDigestRange(nil, orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip diverged:\n  orig %+v\n  got  %+v", orig, got)
	}
}

// TestClusterPayloadVersionGates: every cluster payload kind must reject
// a future version byte rather than misparse it.
func TestClusterPayloadVersionGates(t *testing.T) {
	lease := AppendJobLease(nil, &JobLease{ID: "j-1"})
	lease[0]++
	if _, err := DecodeJobLease(lease); err == nil {
		t.Error("future-version lease decoded without error")
	}
	comp := AppendCompletion(nil, &Completion{ID: "j-1"})
	comp[0]++
	if _, err := DecodeCompletion(comp); err == nil {
		t.Error("future-version completion decoded without error")
	}
	dr := AppendDigestRange(nil, &DigestRange{Count: 1})
	dr[0]++
	if _, err := DecodeDigestRange(dr); err == nil {
		t.Error("future-version digest range decoded without error")
	}
}

// TestClusterPayloadTruncation: truncated payloads must error, never
// panic or return partially filled records silently.
func TestClusterPayloadTruncation(t *testing.T) {
	full := AppendCompletion(nil, &Completion{
		ID: "j-00000042", Node: "w1", Attempt: 1, Digest: "ab", Payload: []byte("xyz"),
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeCompletion(full[:cut]); err == nil {
			t.Fatalf("completion truncated to %d bytes decoded without error", cut)
		}
	}
}

// FuzzCompletionRoundTrip: decode∘encode must be the identity on the
// decoder's image, and decoding must never panic.
func FuzzCompletionRoundTrip(f *testing.F) {
	f.Add(AppendCompletion(nil, &Completion{ID: "j-1", Node: "w1", Digest: "00", Payload: []byte("p")}))
	f.Add([]byte{CompletionV1})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, payload []byte) {
		c, err := DecodeCompletion(payload)
		if err != nil {
			return
		}
		re := AppendCompletion(nil, c)
		c2, err := DecodeCompletion(re)
		if err != nil {
			t.Fatalf("re-encoded completion failed to decode: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip diverged:\n  first  %+v\n  second %+v", c, c2)
		}
	})
}
