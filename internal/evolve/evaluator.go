package evolve

import (
	"cendev/internal/cenfuzz"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// NetworkEvaluator builds an Evaluator that measures each genome's request
// against a simulated network: evasion when the censor does not block the
// rendered request, circumvention when the endpoint additionally serves
// the intended content.
func NetworkEvaluator(net *simnet.Network, client, ep *topology.Host, testDomain string) Evaluator {
	fz := cenfuzz.New(net, client, ep, cenfuzz.Config{
		TestDomain:    testDomain,
		ControlDomain: testDomain, // unused by raw measurements
	})
	return func(g Genome) Outcome {
		m := fz.Measure(g.Apply(testDomain).Render(), 80)
		return Outcome{
			Evaded:       !m.Outcome.Blocked(),
			Circumvented: m.ServedContent,
		}
	}
}
