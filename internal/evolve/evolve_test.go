package evolve

import (
	"net/netip"
	"strings"
	"testing"

	"cendev/internal/endpoint"
	"cendev/internal/httpgram"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

const (
	blockedDomain = "www.blocked.example"
)

func TestGenomeApply(t *testing.T) {
	g := Genome{GeneMethodPATCH, GeneHostPadTrail, GeneDelimiterLF}
	r := g.Apply(blockedDomain)
	if r.Method != "PATCH" {
		t.Errorf("Method = %q", r.Method)
	}
	if r.Hostname != blockedDomain+"*" {
		t.Errorf("Hostname = %q", r.Hostname)
	}
	if r.Delimiter != "\n" {
		t.Errorf("Delimiter = %q", r.Delimiter)
	}
	if !strings.Contains(g.String(), "method=PATCH") {
		t.Errorf("String = %s", g)
	}
}

func TestGenomeApplyOrderMatters(t *testing.T) {
	lead := Genome{GeneHostPadLead, GeneHostCase}.Apply(blockedDomain)
	if lead.Hostname != strings.ToUpper("*"+blockedDomain) {
		t.Errorf("Hostname = %q", lead.Hostname)
	}
	stacked := Genome{GeneHostPadTrail, GeneHostPadTrail}.Apply(blockedDomain)
	if stacked.Hostname != blockedDomain+"**" {
		t.Errorf("Hostname = %q", stacked.Hostname)
	}
}

func TestSearchSyntheticEvaluator(t *testing.T) {
	// A synthetic censor evaded only by genomes containing PATCH; the
	// origin serves content only for unmangled host lines.
	eval := func(g Genome) Outcome {
		r := g.Apply(blockedDomain)
		o := Outcome{Evaded: r.Method == "PATCH"}
		o.Circumvented = o.Evaded && r.HostWord == httpgram.DefaultHostWord &&
			r.Hostname == blockedDomain && r.Delimiter == httpgram.DefaultDelimiter
		return o
	}
	res := Search(eval, Config{Seed: 3})
	if !res.BestOutcome.Evaded {
		t.Fatalf("search failed to find an evading genome: %s", res.Best)
	}
	found := false
	for _, gene := range res.Best {
		if gene == GeneMethodPATCH {
			found = true
		}
	}
	if !found {
		t.Errorf("best genome %s lacks the required gene", res.Best)
	}
	if res.Evaluations == 0 || res.Generations == 0 {
		t.Error("bookkeeping missing")
	}
}

func TestSearchDeterministic(t *testing.T) {
	eval := func(g Genome) Outcome {
		return Outcome{Evaded: len(g) >= 2 && g[0] == g[1]}
	}
	a := Search(eval, Config{Seed: 9})
	b := Search(eval, Config{Seed: 9})
	if a.Best.String() != b.Best.String() || a.Evaluations != b.Evaluations {
		t.Error("same seed produced different searches")
	}
}

// buildNet creates a network with a Cisco filter and an origin serving the
// blocked domain.
func buildNet(t *testing.T) (*simnet.Network, *topology.Host, *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(1, "ClientNet", "US")
	asE := g.AddAS(2, "OriginNet", "US")
	r1 := g.AddRouter("r1", asC)
	r2 := g.AddRouter("r2", asE)
	g.Link("r1", "r2")
	client := g.AddHost("client", asC, r1)
	origin := g.AddHost("origin", asE, r2)
	n := simnet.New(g)
	srv := endpoint.NewServer(blockedDomain)
	srv.TolerantPadding = true
	n.RegisterServer("origin", srv)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, netip.Addr{})
	n.AttachDevice("r1", "r2", dev)
	return n, client, origin
}

func TestSearchAgainstSimulatedCensor(t *testing.T) {
	n, client, origin := buildNet(t)
	eval := NetworkEvaluator(n, client, origin, blockedDomain)
	res := Search(eval, Config{Seed: 1, Generations: 25})
	if !res.BestOutcome.Evaded {
		t.Fatalf("no evading genome found: %s (fitness %.2f)", res.Best, res.BestFitness)
	}
	// The Cisco profile + tolerant origin admit full circumvention (e.g.
	// a trailing host pad); the search should find one.
	if !res.BestOutcome.Circumvented {
		t.Errorf("no circumventing genome found: best %s", res.Best)
	}
	// The genetic search must be far cheaper than exhaustive permutation
	// testing (Table 2's 479 permutations × 2 domains).
	if res.Evaluations >= 479 {
		t.Errorf("evaluations = %d, want cheaper than exhaustive fuzzing", res.Evaluations)
	}
}

func TestSearchHonorsTargetAndMemo(t *testing.T) {
	calls := 0
	eval := func(g Genome) Outcome {
		calls++
		return Outcome{Evaded: true, Circumvented: true} // everything wins
	}
	res := Search(eval, Config{Seed: 2, PopulationSize: 10, Generations: 50})
	if res.Generations != 1 {
		t.Errorf("generations = %d, want early stop at target fitness", res.Generations)
	}
	if calls != res.Evaluations {
		t.Errorf("calls = %d, evaluations = %d (memoization broken?)", calls, res.Evaluations)
	}
}
