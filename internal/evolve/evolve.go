// Package evolve implements a Geneva-style genetic search for censorship
// evasion strategies — the baseline approach the paper contrasts CenFuzz
// against (§3.4, §6: Geneva "utilizes genetic algorithms to optimize the
// discovery of ... circumvention strategies", whereas CenFuzz
// "deterministically tests the same, sometimes invalid, requests across
// all censorship devices").
//
// The genome is a sequence of HTTP request mutations; fitness rewards
// requests that evade the censor, with a bonus when the origin still
// serves the intended content (circumvention) and a parsimony pressure
// toward shorter genomes. The search is seeded and fully deterministic.
//
// The comparison the benchmarks draw out is exactly the paper's argument:
// the genetic search finds *a* working strategy quickly but follows a
// randomized path, so its outcomes are not comparable across devices;
// CenFuzz's fixed permutation set costs more measurements but yields a
// device fingerprint.
package evolve

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cendev/internal/httpgram"
)

// Gene is one request mutation.
type Gene int

// The mutation alphabet, mirroring the grammar dimensions CenFuzz covers.
const (
	GeneMethodPOST Gene = iota
	GeneMethodPATCH
	GeneMethodEmpty
	GeneMethodTruncate // GET → GE
	GeneVersionMangle  // HTTP/1.1 → XXXX/1.1
	GeneVersionSpace   // HTTP/1.1 → HTTP/ 1.1
	GeneHostWordMangle // Host: → HostHeader:
	GeneHostWordCase   // Host: → hOST:
	GeneHostWordTrunc  // Host: → ost:
	GenePathAlternate  // / → /index.html
	GeneHostPadTrail   // hostname → hostname*
	GeneHostPadLead    // hostname → *hostname
	GeneHostCase       // hostname → HOSTNAME
	GeneDelimiterLF    // \r\n → \n
	GeneHeaderNoise    // add X-Evade: 1
	geneCount
)

// String implements fmt.Stringer.
func (g Gene) String() string {
	names := [...]string{
		"method=POST", "method=PATCH", "method=empty", "method-truncate",
		"version-mangle", "version-space", "hostword-mangle", "hostword-case",
		"hostword-truncate", "path-alternate", "hostpad-trail", "hostpad-lead",
		"host-case", "delimiter-lf", "header-noise",
	}
	if int(g) < len(names) {
		return names[g]
	}
	return fmt.Sprintf("Gene(%d)", int(g))
}

// Genome is an ordered mutation sequence.
type Genome []Gene

// String implements fmt.Stringer.
func (g Genome) String() string {
	parts := make([]string, len(g))
	for i, gene := range g {
		parts[i] = gene.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Apply renders the genome's request for a domain.
func (g Genome) Apply(domain string) *httpgram.Request {
	r := httpgram.NewRequest(domain)
	for _, gene := range g {
		switch gene {
		case GeneMethodPOST:
			r.Method = "POST"
		case GeneMethodPATCH:
			r.Method = "PATCH"
		case GeneMethodEmpty:
			r.Method = ""
		case GeneMethodTruncate:
			if len(r.Method) > 0 {
				r.Method = r.Method[:len(r.Method)-1]
			}
		case GeneVersionMangle:
			r.Version = "XXXX/1.1"
		case GeneVersionSpace:
			r.Version = "HTTP/ 1.1"
		case GeneHostWordMangle:
			r.HostWord = "HostHeader:"
		case GeneHostWordCase:
			r.HostWord = "hOST:"
		case GeneHostWordTrunc:
			r.HostWord = "ost:"
		case GenePathAlternate:
			r.Path = "/index.html"
		case GeneHostPadTrail:
			r.Hostname = r.Hostname + "*"
		case GeneHostPadLead:
			r.Hostname = "*" + r.Hostname
		case GeneHostCase:
			r.Hostname = strings.ToUpper(r.Hostname)
		case GeneDelimiterLF:
			r.Delimiter = "\n"
		case GeneHeaderNoise:
			r.Headers = append(r.Headers, httpgram.Header{Name: "X-Evade", Value: "1"})
		}
	}
	return r
}

// Outcome is the measured result of trying one genome.
type Outcome struct {
	Evaded       bool
	Circumvented bool
}

// Evaluator measures a genome's rendered request against the censor and
// origin. Implementations are measurement campaigns (see experiments) or
// test doubles.
type Evaluator func(g Genome) Outcome

// Config parameterizes the search.
type Config struct {
	PopulationSize int // default 20
	Generations    int // default 15
	GenomeLen      int // max genome length, default 4
	Seed           int64
	// Target fitness at which the search stops early.
	TargetFitness float64
}

func (c Config) withDefaults() Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 20
	}
	if c.Generations == 0 {
		c.Generations = 15
	}
	if c.GenomeLen == 0 {
		c.GenomeLen = 4
	}
	if c.TargetFitness == 0 {
		c.TargetFitness = 1.5
	}
	return c
}

// Result is the search outcome.
type Result struct {
	Best        Genome
	BestFitness float64
	BestOutcome Outcome
	Generations int
	// Evaluations counts measurement campaigns spent — the cost axis on
	// which Geneva-style search beats exhaustive fuzzing.
	Evaluations int
}

// fitness scores an outcome: evasion is worth 1, circumvention another 1,
// and each gene costs a little (parsimony).
func fitness(o Outcome, g Genome) float64 {
	f := 0.0
	if o.Evaded {
		f += 1
	}
	if o.Circumvented {
		f += 1
	}
	return f - 0.01*float64(len(g))
}

// Search runs the genetic algorithm.
func Search(eval Evaluator, cfg Config) Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	type scored struct {
		g Genome
		f float64
		o Outcome
	}
	evaluations := 0
	memo := map[string]scored{}
	score := func(g Genome) scored {
		key := g.String()
		if s, ok := memo[key]; ok {
			return s
		}
		o := eval(g)
		evaluations++
		s := scored{g: g, f: fitness(o, g), o: o}
		memo[key] = s
		return s
	}
	randomGenome := func() Genome {
		n := 1 + rng.Intn(cfg.GenomeLen)
		g := make(Genome, n)
		for i := range g {
			g[i] = Gene(rng.Intn(int(geneCount)))
		}
		return g
	}

	pop := make([]scored, cfg.PopulationSize)
	for i := range pop {
		pop[i] = score(randomGenome())
	}
	res := Result{}
	for gen := 0; gen < cfg.Generations; gen++ {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].f > pop[j].f })
		if pop[0].f > res.BestFitness || res.Best == nil {
			res.Best = append(Genome(nil), pop[0].g...)
			res.BestFitness = pop[0].f
			res.BestOutcome = pop[0].o
		}
		res.Generations = gen + 1
		if res.BestFitness >= cfg.TargetFitness {
			break
		}
		// Elitism: keep the top quarter; refill with crossover + mutation.
		elite := cfg.PopulationSize / 4
		if elite < 2 {
			elite = 2
		}
		next := append([]scored(nil), pop[:elite]...)
		for len(next) < cfg.PopulationSize {
			a := pop[rng.Intn(elite)].g
			b := pop[rng.Intn(len(pop))].g
			child := crossover(rng, a, b, cfg.GenomeLen)
			child = mutate(rng, child, cfg.GenomeLen)
			next = append(next, score(child))
		}
		pop = next
	}
	res.Evaluations = evaluations
	return res
}

// crossover splices two genomes at random cut points.
func crossover(rng *rand.Rand, a, b Genome, maxLen int) Genome {
	if len(a) == 0 {
		return append(Genome(nil), b...)
	}
	if len(b) == 0 {
		return append(Genome(nil), a...)
	}
	cutA := rng.Intn(len(a) + 1)
	cutB := rng.Intn(len(b) + 1)
	child := append(append(Genome(nil), a[:cutA]...), b[cutB:]...)
	if len(child) > maxLen {
		child = child[:maxLen]
	}
	if len(child) == 0 {
		child = Genome{Gene(rng.Intn(int(geneCount)))}
	}
	return child
}

// mutate applies point mutations: substitute, insert, or delete a gene.
func mutate(rng *rand.Rand, g Genome, maxLen int) Genome {
	out := append(Genome(nil), g...)
	switch rng.Intn(3) {
	case 0: // substitute
		out[rng.Intn(len(out))] = Gene(rng.Intn(int(geneCount)))
	case 1: // insert
		if len(out) < maxLen {
			pos := rng.Intn(len(out) + 1)
			out = append(out[:pos], append(Genome{Gene(rng.Intn(int(geneCount)))}, out[pos:]...)...)
		}
	case 2: // delete
		if len(out) > 1 {
			pos := rng.Intn(len(out))
			out = append(out[:pos], out[pos+1:]...)
		}
	}
	return out
}
