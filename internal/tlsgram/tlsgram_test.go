package tlsgram

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestClientHelloRoundTrip(t *testing.T) {
	ch := NewClientHello("www.example.com")
	ch.SessionID = []byte{1, 2, 3, 4}
	raw := ch.Serialize()
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.LegacyVersion != VersionTLS12 {
		t.Errorf("LegacyVersion = %#x", got.LegacyVersion)
	}
	if !bytes.Equal(got.SessionID, ch.SessionID) {
		t.Errorf("SessionID = %v", got.SessionID)
	}
	if !reflect.DeepEqual(got.CipherSuites, ch.CipherSuites) {
		t.Errorf("CipherSuites = %v, want %v", got.CipherSuites, ch.CipherSuites)
	}
	sni, ok := got.SNI()
	if !ok || sni != "www.example.com" {
		t.Errorf("SNI = %q ok=%v", sni, ok)
	}
	versions := got.SupportedVersions()
	if !reflect.DeepEqual(versions, []uint16{VersionTLS13, VersionTLS12}) {
		t.Errorf("SupportedVersions = %#x", versions)
	}
}

func TestSNIMutation(t *testing.T) {
	ch := NewClientHello("blocked.example")
	ch.SetSNI("moc.elpmaxe.dekcolb")
	got, err := Parse(ch.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	sni, _ := got.SNI()
	if sni != "moc.elpmaxe.dekcolb" {
		t.Errorf("SNI = %q", sni)
	}
}

func TestRemoveSNI(t *testing.T) {
	ch := NewClientHello("blocked.example")
	ch.RemoveExtension(ExtServerName)
	got, err := Parse(ch.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.SNI(); ok {
		t.Error("SNI should be absent after removal")
	}
}

func TestSupportedVersionRanges(t *testing.T) {
	ch := NewClientHello("x.com")
	ch.SetSupportedVersions(VersionTLS10, VersionTLS11)
	got, _ := Parse(ch.Serialize())
	if got.EffectiveMaxVersion() != VersionTLS11 {
		t.Errorf("EffectiveMaxVersion = %#x", got.EffectiveMaxVersion())
	}
	if got.EffectiveMinVersion() != VersionTLS10 {
		t.Errorf("EffectiveMinVersion = %#x", got.EffectiveMinVersion())
	}
}

func TestEffectiveVersionsWithoutExtension(t *testing.T) {
	ch := NewClientHello("x.com")
	ch.RemoveExtension(ExtSupportedVersions)
	if ch.EffectiveMaxVersion() != VersionTLS12 || ch.EffectiveMinVersion() != VersionTLS12 {
		t.Errorf("fallback versions = %#x/%#x", ch.EffectiveMinVersion(), ch.EffectiveMaxVersion())
	}
}

func TestPaddingExtension(t *testing.T) {
	ch := NewClientHello("x.com")
	base := len(ch.Serialize())
	ch.SetPadding(100)
	padded := len(ch.Serialize())
	if padded != base+104 { // 4-byte extension header + 100 bytes
		t.Errorf("padded length = %d, base = %d", padded, base)
	}
	got, err := Parse(ch.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.getExtension(ExtPadding); !ok {
		t.Error("padding extension missing after round trip")
	}
}

func TestClientCertHint(t *testing.T) {
	ch := NewClientHello("x.com")
	ch.SetClientCertHint("CN=www.test.com")
	got, err := Parse(ch.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	cn, ok := got.ClientCertHint()
	if !ok || cn != "CN=www.test.com" {
		t.Errorf("ClientCertHint = %q ok=%v", cn, ok)
	}
}

func TestIsClientHello(t *testing.T) {
	ch := NewClientHello("x.com")
	if !IsClientHello(ch.Serialize()) {
		t.Error("IsClientHello(serialized CH) = false")
	}
	if IsClientHello([]byte("GET / HTTP/1.1\r\n\r\n")) {
		t.Error("IsClientHello(HTTP request) = true")
	}
	if IsClientHello(nil) {
		t.Error("IsClientHello(nil) = true")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"short":          {22, 3, 1},
		"not handshake":  {23, 3, 1, 0, 2, 0, 0, 0, 0},
		"truncated body": {22, 3, 1, 0, 4, 1, 0, 0, 200},
	}
	for name, raw := range cases {
		if _, err := Parse(raw); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
	// Record length larger than buffer.
	ch := NewClientHello("x.com")
	raw := ch.Serialize()
	if _, err := Parse(raw[:len(raw)-3]); err == nil {
		t.Error("truncated record: Parse should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	ch := NewClientHello("a.com")
	c := ch.Clone()
	c.SetSNI("b.com")
	c.CipherSuites[0] = 0
	sni, _ := ch.SNI()
	if sni != "a.com" {
		t.Errorf("original SNI mutated: %q", sni)
	}
	if ch.CipherSuites[0] == 0 {
		t.Error("original cipher suites mutated")
	}
}

func TestCipherSuiteTable(t *testing.T) {
	if len(CipherSuiteNames) < 25 {
		t.Errorf("need at least 25 named suites for the Table 2 strategy, have %d", len(CipherSuiteNames))
	}
	for v, name := range CipherSuiteNames {
		if !strings.HasPrefix(name, "TLS_") {
			t.Errorf("suite %#x has malformed name %q", v, name)
		}
	}
	for _, cs := range DefaultCipherSuites {
		if _, ok := CipherSuiteNames[cs]; !ok {
			t.Errorf("default suite %#x missing from name table", cs)
		}
	}
}

func TestVersionName(t *testing.T) {
	cases := map[uint16]string{
		VersionTLS10: "TLS1.0", VersionTLS11: "TLS1.1",
		VersionTLS12: "TLS1.2", VersionTLS13: "TLS1.3",
		0x0300: "TLS(0x0300)",
	}
	for v, want := range cases {
		if got := VersionName(v); got != want {
			t.Errorf("VersionName(%#x) = %q, want %q", v, got, want)
		}
	}
}

func TestQuickSNIRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		name := sanitizeName(raw)
		ch := NewClientHello(name)
		got, err := Parse(ch.Serialize())
		if err != nil {
			return false
		}
		sni, ok := got.SNI()
		return ok && sni == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSerializeParseStable(t *testing.T) {
	f := func(sid []byte, nSuites uint8, pad uint8) bool {
		if len(sid) > 32 {
			sid = sid[:32]
		}
		ch := NewClientHello("host.example")
		ch.SessionID = sid
		for i := 0; i < int(nSuites%8); i++ {
			ch.CipherSuites = append(ch.CipherSuites, uint16(i))
		}
		if pad > 0 {
			ch.SetPadding(int(pad))
		}
		raw := ch.Serialize()
		got, err := Parse(raw)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Serialize(), raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitizeName(raw []byte) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-."
	b := make([]byte, 0, len(raw))
	for _, c := range raw {
		b = append(b, alphabet[int(c)%len(alphabet)])
	}
	s := strings.Trim(string(b), ".-")
	if s == "" {
		return "x.example"
	}
	return s
}
