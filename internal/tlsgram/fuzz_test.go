package tlsgram

import "testing"

// FuzzParse ensures the Client Hello parser never panics and that a
// successfully parsed hello re-serializes and re-parses.
func FuzzParse(f *testing.F) {
	f.Add(NewClientHello("www.example.com").Serialize())
	ch := NewClientHello("x")
	ch.SetPadding(50)
	ch.SessionID = []byte{1, 2, 3}
	f.Add(ch.Serialize())
	f.Add([]byte{22, 3, 1, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return
		}
		parsed.SNI()
		parsed.SupportedVersions()
		parsed.EffectiveMinVersion()
		parsed.EffectiveMaxVersion()
		if _, err := Parse(parsed.Serialize()); err != nil {
			t.Fatalf("re-serialized hello failed to parse: %v", err)
		}
	})
}
