// Package tlsgram models TLS Client Hello messages at the grammar level
// (Appendix B, Figure 8 of the paper): record header, handshake header,
// client version, cipher suites, compression methods, and extensions —
// notably server_name (SNI), which censorship devices key on, and
// supported_versions, which the Min/Max Version fuzzing strategies mutate.
//
// Serialization follows the real TLS 1.2/1.3 wire format so middleboxes in
// the simulator parse actual bytes, with one documented exception: the
// Client Certificate fuzzing strategy is carried as a private-range
// extension (in real TLS the certificate appears later in the handshake,
// which the simulator does not model).
package tlsgram

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TLS protocol versions as wire values.
const (
	VersionTLS10 uint16 = 0x0301
	VersionTLS11 uint16 = 0x0302
	VersionTLS12 uint16 = 0x0303
	VersionTLS13 uint16 = 0x0304
)

// VersionName returns the conventional name of a TLS version value.
func VersionName(v uint16) string {
	switch v {
	case VersionTLS10:
		return "TLS1.0"
	case VersionTLS11:
		return "TLS1.1"
	case VersionTLS12:
		return "TLS1.2"
	case VersionTLS13:
		return "TLS1.3"
	default:
		return fmt.Sprintf("TLS(%#04x)", v)
	}
}

// TLS extension types used by the grammar.
const (
	ExtServerName        uint16 = 0
	ExtPadding           uint16 = 21
	ExtSupportedVersions uint16 = 43
	// ExtClientCertHint is a private-range extension carrying the subject CN
	// of the client certificate the fuzzer would present (see package doc).
	ExtClientCertHint uint16 = 0xffce
)

// Cipher suite values, named per the IANA registry. The set covers the 25
// suites CenFuzz's Cipher Suite strategy iterates (Table 2).
const (
	TLS_RSA_WITH_RC4_128_SHA                      uint16 = 0x0005
	TLS_RSA_WITH_3DES_EDE_CBC_SHA                 uint16 = 0x000a
	TLS_RSA_WITH_AES_128_CBC_SHA                  uint16 = 0x002f
	TLS_RSA_WITH_AES_256_CBC_SHA                  uint16 = 0x0035
	TLS_RSA_WITH_AES_128_CBC_SHA256               uint16 = 0x003c
	TLS_RSA_WITH_AES_256_CBC_SHA256               uint16 = 0x003d
	TLS_RSA_WITH_AES_128_GCM_SHA256               uint16 = 0x009c
	TLS_RSA_WITH_AES_256_GCM_SHA384               uint16 = 0x009d
	TLS_AES_128_GCM_SHA256                        uint16 = 0x1301
	TLS_AES_256_GCM_SHA384                        uint16 = 0x1302
	TLS_CHACHA20_POLY1305_SHA256                  uint16 = 0x1303
	TLS_AES_128_CCM_SHA256                        uint16 = 0x1304
	TLS_AES_128_CCM_8_SHA256                      uint16 = 0x1305
	TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA          uint16 = 0xc009
	TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA          uint16 = 0xc00a
	TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA            uint16 = 0xc013
	TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA            uint16 = 0xc014
	TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256       uint16 = 0xc023
	TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384       uint16 = 0xc024
	TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256         uint16 = 0xc027
	TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384         uint16 = 0xc028
	TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256       uint16 = 0xc02b
	TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384       uint16 = 0xc02c
	TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256         uint16 = 0xc02f
	TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384         uint16 = 0xc030
	TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256   uint16 = 0xcca8
	TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256 uint16 = 0xcca9
)

// CipherSuiteNames maps suite values to IANA names, for reporting.
var CipherSuiteNames = map[uint16]string{
	TLS_RSA_WITH_RC4_128_SHA:                      "TLS_RSA_WITH_RC4_128_SHA",
	TLS_RSA_WITH_3DES_EDE_CBC_SHA:                 "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
	TLS_RSA_WITH_AES_128_CBC_SHA:                  "TLS_RSA_WITH_AES_128_CBC_SHA",
	TLS_RSA_WITH_AES_256_CBC_SHA:                  "TLS_RSA_WITH_AES_256_CBC_SHA",
	TLS_RSA_WITH_AES_128_CBC_SHA256:               "TLS_RSA_WITH_AES_128_CBC_SHA256",
	TLS_RSA_WITH_AES_256_CBC_SHA256:               "TLS_RSA_WITH_AES_256_CBC_SHA256",
	TLS_RSA_WITH_AES_128_GCM_SHA256:               "TLS_RSA_WITH_AES_128_GCM_SHA256",
	TLS_RSA_WITH_AES_256_GCM_SHA384:               "TLS_RSA_WITH_AES_256_GCM_SHA384",
	TLS_AES_128_GCM_SHA256:                        "TLS_AES_128_GCM_SHA256",
	TLS_AES_256_GCM_SHA384:                        "TLS_AES_256_GCM_SHA384",
	TLS_CHACHA20_POLY1305_SHA256:                  "TLS_CHACHA20_POLY1305_SHA256",
	TLS_AES_128_CCM_SHA256:                        "TLS_AES_128_CCM_SHA256",
	TLS_AES_128_CCM_8_SHA256:                      "TLS_AES_128_CCM_8_SHA256",
	TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA:          "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA",
	TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA:          "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA",
	TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA:            "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
	TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA:            "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
	TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256:       "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256",
	TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384:       "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384",
	TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256:         "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256",
	TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384:         "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384",
	TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256:       "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
	TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384:       "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
	TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256:         "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
	TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384:         "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
	TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256:   "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
	TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256: "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
}

// DefaultCipherSuites is the suite list a normal (unfuzzed) Client Hello
// offers, mirroring a modern browser ordering.
var DefaultCipherSuites = []uint16{
	TLS_AES_128_GCM_SHA256,
	TLS_AES_256_GCM_SHA384,
	TLS_CHACHA20_POLY1305_SHA256,
	TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
	TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
	TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
	TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
}

// Extension is a raw TLS extension.
type Extension struct {
	Type uint16
	Data []byte
}

// ClientHello is a grammar-level TLS Client Hello.
type ClientHello struct {
	LegacyVersion      uint16 // client_version in the hello body
	Random             [32]byte
	SessionID          []byte
	CipherSuites       []uint16
	CompressionMethods []byte
	Extensions         []Extension
}

// NewClientHello returns a canonical Client Hello for serverName with modern
// defaults: TLS 1.2 legacy version, supported_versions offering 1.2–1.3,
// and the default cipher suites.
func NewClientHello(serverName string) *ClientHello {
	ch := &ClientHello{
		LegacyVersion:      VersionTLS12,
		CipherSuites:       append([]uint16(nil), DefaultCipherSuites...),
		CompressionMethods: []byte{0},
	}
	ch.SetSNI(serverName)
	ch.SetSupportedVersions(VersionTLS12, VersionTLS13)
	return ch
}

// Clone returns a deep copy.
func (ch *ClientHello) Clone() *ClientHello {
	c := *ch
	c.SessionID = append([]byte(nil), ch.SessionID...)
	c.CipherSuites = append([]uint16(nil), ch.CipherSuites...)
	c.CompressionMethods = append([]byte(nil), ch.CompressionMethods...)
	c.Extensions = make([]Extension, len(ch.Extensions))
	for i, e := range ch.Extensions {
		c.Extensions[i] = Extension{Type: e.Type, Data: append([]byte(nil), e.Data...)}
	}
	return &c
}

// setExtension replaces or appends an extension by type.
func (ch *ClientHello) setExtension(typ uint16, data []byte) {
	for i := range ch.Extensions {
		if ch.Extensions[i].Type == typ {
			ch.Extensions[i].Data = data
			return
		}
	}
	ch.Extensions = append(ch.Extensions, Extension{Type: typ, Data: data})
}

// getExtension returns the data of the extension with the given type.
func (ch *ClientHello) getExtension(typ uint16) ([]byte, bool) {
	for _, e := range ch.Extensions {
		if e.Type == typ {
			return e.Data, true
		}
	}
	return nil, false
}

// RemoveExtension deletes the extension with the given type if present.
func (ch *ClientHello) RemoveExtension(typ uint16) {
	out := ch.Extensions[:0]
	for _, e := range ch.Extensions {
		if e.Type != typ {
			out = append(out, e)
		}
	}
	ch.Extensions = out
}

// SetSNI sets the server_name extension (host_name entry) to name.
func (ch *ClientHello) SetSNI(name string) {
	// server_name_list: u16 list length; entry: type(0)=host_name, u16 len, name.
	data := make([]byte, 0, 5+len(name))
	data = binary.BigEndian.AppendUint16(data, uint16(3+len(name)))
	data = append(data, 0) // host_name
	data = binary.BigEndian.AppendUint16(data, uint16(len(name)))
	data = append(data, name...)
	ch.setExtension(ExtServerName, data)
}

// SNI returns the server name carried in the server_name extension.
func (ch *ClientHello) SNI() (string, bool) {
	data, ok := ch.getExtension(ExtServerName)
	if !ok || len(data) < 5 {
		return "", false
	}
	nameLen := int(binary.BigEndian.Uint16(data[3:]))
	if 5+nameLen > len(data) {
		return "", false
	}
	return string(data[5 : 5+nameLen]), true
}

// SetSupportedVersions sets the supported_versions extension to the
// inclusive range [min, max], listed newest-first like real clients do.
func (ch *ClientHello) SetSupportedVersions(min, max uint16) {
	var versions []uint16
	for v := max; v >= min; v-- {
		versions = append(versions, v)
	}
	data := make([]byte, 0, 1+2*len(versions))
	data = append(data, byte(2*len(versions)))
	for _, v := range versions {
		data = binary.BigEndian.AppendUint16(data, v)
	}
	ch.setExtension(ExtSupportedVersions, data)
}

// SupportedVersions returns the versions listed in supported_versions.
func (ch *ClientHello) SupportedVersions() []uint16 {
	data, ok := ch.getExtension(ExtSupportedVersions)
	if !ok || len(data) < 1 {
		return nil
	}
	n := int(data[0])
	if 1+n > len(data) {
		return nil
	}
	var out []uint16
	for i := 1; i+1 < 1+n; i += 2 {
		out = append(out, binary.BigEndian.Uint16(data[i:]))
	}
	return out
}

// SetPadding adds a padding extension of n zero bytes.
func (ch *ClientHello) SetPadding(n int) {
	ch.setExtension(ExtPadding, make([]byte, n))
}

// SetClientCertHint records the subject CN of the client certificate the
// fuzzer would present (see package doc for why this rides in the CH).
func (ch *ClientHello) SetClientCertHint(cn string) {
	ch.setExtension(ExtClientCertHint, []byte(cn))
}

// ClientCertHint returns the recorded client certificate CN, if any.
func (ch *ClientHello) ClientCertHint() (string, bool) {
	data, ok := ch.getExtension(ExtClientCertHint)
	return string(data), ok
}

// Record/handshake framing constants.
const (
	recordTypeHandshake  = 22
	handshakeClientHello = 1
)

// Serialize renders the Client Hello as a full TLS record
// (record header + handshake header + body).
func (ch *ClientHello) Serialize() []byte {
	body := make([]byte, 0, 128)
	body = binary.BigEndian.AppendUint16(body, ch.LegacyVersion)
	body = append(body, ch.Random[:]...)
	body = append(body, byte(len(ch.SessionID)))
	body = append(body, ch.SessionID...)
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(ch.CipherSuites)))
	for _, cs := range ch.CipherSuites {
		body = binary.BigEndian.AppendUint16(body, cs)
	}
	body = append(body, byte(len(ch.CompressionMethods)))
	body = append(body, ch.CompressionMethods...)
	ext := make([]byte, 0, 64)
	for _, e := range ch.Extensions {
		ext = binary.BigEndian.AppendUint16(ext, e.Type)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(e.Data)))
		ext = append(ext, e.Data...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	msg := make([]byte, 0, 4+len(body))
	msg = append(msg, handshakeClientHello)
	msg = append(msg, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	msg = append(msg, body...)

	rec := make([]byte, 0, 5+len(msg))
	rec = append(rec, recordTypeHandshake)
	rec = binary.BigEndian.AppendUint16(rec, VersionTLS10) // legacy record version
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(msg)))
	rec = append(rec, msg...)
	return rec
}

var (
	errShortCH  = errors.New("tlsgram: truncated Client Hello")
	errNotCH    = errors.New("tlsgram: not a Client Hello record")
	errBadCHLen = errors.New("tlsgram: inconsistent Client Hello lengths")
)

// Parse decodes a serialized TLS record back into a ClientHello.
func Parse(raw []byte) (*ClientHello, error) {
	if len(raw) < 9 {
		return nil, errShortCH
	}
	if raw[0] != recordTypeHandshake {
		return nil, errNotCH
	}
	recLen := int(binary.BigEndian.Uint16(raw[3:]))
	if 5+recLen > len(raw) {
		return nil, errBadCHLen
	}
	msg := raw[5 : 5+recLen]
	if len(msg) < 4 || msg[0] != handshakeClientHello {
		return nil, errNotCH
	}
	bodyLen := int(msg[1])<<16 | int(msg[2])<<8 | int(msg[3])
	if 4+bodyLen > len(msg) {
		return nil, errBadCHLen
	}
	body := msg[4 : 4+bodyLen]

	ch := &ClientHello{}
	if len(body) < 35 {
		return nil, errShortCH
	}
	ch.LegacyVersion = binary.BigEndian.Uint16(body)
	copy(ch.Random[:], body[2:34])
	p := 34
	sidLen := int(body[p])
	p++
	if p+sidLen > len(body) {
		return nil, errBadCHLen
	}
	ch.SessionID = append([]byte(nil), body[p:p+sidLen]...)
	p += sidLen
	if p+2 > len(body) {
		return nil, errBadCHLen
	}
	csLen := int(binary.BigEndian.Uint16(body[p:]))
	p += 2
	if p+csLen > len(body) || csLen%2 != 0 {
		return nil, errBadCHLen
	}
	for i := 0; i < csLen; i += 2 {
		ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(body[p+i:]))
	}
	p += csLen
	if p >= len(body) {
		return nil, errBadCHLen
	}
	cmLen := int(body[p])
	p++
	if p+cmLen > len(body) {
		return nil, errBadCHLen
	}
	ch.CompressionMethods = append([]byte(nil), body[p:p+cmLen]...)
	p += cmLen
	if p+2 > len(body) {
		return ch, nil // extensions are optional
	}
	extLen := int(binary.BigEndian.Uint16(body[p:]))
	p += 2
	if p+extLen > len(body) {
		return nil, errBadCHLen
	}
	ext := body[p : p+extLen]
	for len(ext) >= 4 {
		typ := binary.BigEndian.Uint16(ext)
		l := int(binary.BigEndian.Uint16(ext[2:]))
		if 4+l > len(ext) {
			return nil, errBadCHLen
		}
		ch.Extensions = append(ch.Extensions, Extension{
			Type: typ, Data: append([]byte(nil), ext[4:4+l]...),
		})
		ext = ext[4+l:]
	}
	return ch, nil
}

// IsClientHello reports whether raw looks like a TLS Client Hello record,
// the cheap pre-check a DPI device uses before full parsing.
func IsClientHello(raw []byte) bool {
	return len(raw) >= 6 && raw[0] == recordTypeHandshake && raw[5] == handshakeClientHello
}

// EffectiveMaxVersion returns the highest version the hello offers: the
// highest supported_versions entry when present, else the legacy version.
func (ch *ClientHello) EffectiveMaxVersion() uint16 {
	max := uint16(0)
	for _, v := range ch.SupportedVersions() {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return ch.LegacyVersion
	}
	return max
}

// EffectiveMinVersion returns the lowest version the hello offers.
func (ch *ClientHello) EffectiveMinVersion() uint16 {
	versions := ch.SupportedVersions()
	if len(versions) == 0 {
		return ch.LegacyVersion
	}
	min := versions[0]
	for _, v := range versions[1:] {
		if v < min {
			min = v
		}
	}
	return min
}
