package simnet

import (
	"fmt"
	"strings"
	"time"

	"cendev/internal/middlebox"
	"cendev/internal/netem"
	"cendev/internal/topology"
)

// perHopLatency is the virtual one-way latency of each link.
const perHopLatency = 2 * time.Millisecond

// Delivery is one packet arriving back at the sending client.
type Delivery struct {
	Packet *netem.Packet
	// At is the virtual arrival time.
	At time.Duration
	// FromHop is the 1-based hop index the packet originated at (router
	// ICMP), 0 for packets originating at or beyond the endpoint.
	FromHop int
}

// Transmit sends one client packet into the network and returns everything
// the client receives in response, in arrival order. The packet's journey:
//
//	client ── link ── R1 ── link ── R2 … Rn ── link ── endpoint
//
// Devices attached to a directed link inspect the packet as it crosses;
// routers decrement TTL and answer expiry with ICMP Time Exceeded (quoting
// per their RFC behaviour); the endpoint's guard device and server produce
// the final response. Return packets traverse the reverse path with their
// own TTL decrements, so low-TTL injections (CopyTTL devices) can die
// before reaching the client — the mechanism behind "Past E" (§4.3).
func (n *Network) Transmit(pkt *netem.Packet, src, dst *topology.Host) []Delivery {
	n.clock += perHopLatency
	n.recordCapture(src, pkt, true)
	n.m.packets.Inc()

	var out []Delivery
	defer func() {
		for _, d := range out {
			n.recordCapture(src, d.Packet, false)
		}
		n.m.deliveries.Add(int64(len(out)))
	}()

	var flowHash uint64
	switch {
	case pkt.TCP != nil:
		flowHash = topology.FlowHash(pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort, uint8(netem.ProtoTCP))
	case pkt.UDP != nil:
		flowHash = topology.FlowHash(pkt.IP.Src, pkt.IP.Dst, pkt.UDP.SrcPort, pkt.UDP.DstPort, uint8(netem.ProtoUDP))
	default:
		return out
	}
	path := n.Graph.PathForFlowSalted(src, dst, flowHash, n.routeSalt())
	if path == nil {
		return out
	}

	// deliver queues a response packet originating at hop originHop
	// (1-based; 0 = client-side) for return-path processing.
	deliver := func(resp *netem.Packet, originHop int) {
		duplicate := false
		if n.faults != nil {
			// Global impairments see the delivery once; link impairments see
			// it on every reverse crossing back toward the client, so a dead
			// or lossy link kills responses as well as probes.
			o := n.faults.Global(n.clock)
			last := originHop - 1
			if last > len(path)-1 {
				last = len(path) - 1 // endpoint-originated: start at the last router link
			}
			for i := last; i >= 1 && !o.Drop; i-- {
				o.Merge(n.faults.Cross(path[i-1].ID, path[i].ID, n.clock))
			}
			if !o.Drop && originHop > 0 && len(path) > 0 {
				o.Merge(n.faults.Cross("@"+src.ID, path[0].ID, n.clock))
			}
			if o.Drop {
				return // impaired on the return path
			}
			duplicate = o.Duplicate
		}
		hopsBack := originHop // routers between origin and client, inclusive of origin side
		if hopsBack > 0 {
			// The originating router/device does not decrement its own
			// packet; the remaining originHop-1 routers each decrement once.
			decrements := originHop - 1
			if int(resp.IP.TTL) <= decrements {
				return // died on the return path
			}
			resp.IP.TTL -= uint8(decrements)
		}
		out = append(out, Delivery{
			Packet:  resp,
			At:      n.clock + time.Duration(originHop)*perHopLatency,
			FromHop: originHop,
		})
		if duplicate {
			out = append(out, Delivery{
				Packet:  resp.Clone(),
				At:      n.clock + time.Duration(originHop)*perHopLatency,
				FromHop: originHop,
			})
		}
	}

	if n.faults != nil && n.faults.Global(n.clock).Drop {
		return out // transient loss on the forward path
	}
	// throttleDelay accumulates extra latency imposed by throttling
	// devices; it shifts every delivery's arrival time.
	var throttleDelay time.Duration
	working := pkt.Clone()
	ttl := working.IP.TTL
	prev := "" // empty = client access link
	for i, router := range path {
		hop := i + 1
		// Devices on the link (prev → router) inspect the crossing packet.
		linkFrom := prev
		if linkFrom == "" {
			linkFrom = "@" + src.ID // client access link pseudo-router
		}
		// Link impairments act before the link's devices: a packet lost on
		// the wire never reaches the inspection tap.
		if n.faults != nil && n.faults.Cross(linkFrom, router.ID, n.clock).Drop {
			return sortDeliveries(out)
		}
		dropped := false
		for _, dev := range n.linkDevices[topology.LinkID{From: linkFrom, To: router.ID}] {
			v := dev.Inspect(working, dst.Addr, n.clock)
			for _, inj := range v.Injected {
				n.m.injections.Inc()
				deliver(inj.Clone(), hop)
			}
			if v.DropOriginal {
				dropped = true
			}
			throttleDelay += v.ThrottleDelay
		}
		if dropped {
			n.m.devDrops.Inc()
			return sortDeliveries(out)
		}
		// Router decrements TTL; on expiry it may answer with ICMP.
		ttl--
		working.IP.TTL = ttl
		if ttl == 0 {
			n.m.ttlExpired.Inc()
			// The fault engine can silence or rate-limit a router's ICMP
			// generation on top of the router's own RFC behaviour.
			if router.SendsICMP && (n.faults == nil || n.faults.AllowICMP(router.ID, n.clock)) {
				te, err := netem.NewTimeExceeded(router.Addr, working, router.QuoteLen)
				if err == nil {
					n.m.icmp.Inc()
					deliver(te, hop)
				}
			}
			return sortDeliveries(out)
		}
		// Forwarding rewrites (TOS/flags) applied by some routers.
		if router.RewriteTOS != nil {
			working.IP.TOS = *router.RewriteTOS
		}
		if router.SetIPFlags != nil {
			working.IP.Flags = netem.IPFlags(*router.SetIPFlags)
		}
		prev = router.ID
	}

	// The packet has crossed the last router; deliver to the endpoint.
	endpointHop := len(path) + 1
	if guard := n.guards[dst.ID]; guard != nil {
		v := guard.Inspect(working, dst.Addr, n.clock)
		for _, inj := range v.Injected {
			n.m.injections.Inc()
			deliver(inj.Clone(), endpointHop)
		}
		if v.Triggered && v.DropOriginal {
			n.m.devDrops.Inc()
			return sortDeliveries(out)
		}
	}
	for _, resp := range n.endpointRespond(working, dst) {
		deliver(resp, endpointHop)
	}
	if throttleDelay > 0 {
		n.clock += throttleDelay
		for i := range out {
			out[i].At += throttleDelay
		}
	}
	return sortDeliveries(out)
}

// sortDeliveries orders deliveries by arrival time (stable for equal times).
func sortDeliveries(ds []Delivery) []Delivery {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].At < ds[j-1].At; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds
}

// endpointRespond produces the endpoint's transport-level response to a
// packet that reached it.
func (n *Network) endpointRespond(pkt *netem.Packet, dst *topology.Host) []*netem.Packet {
	if pkt.UDP != nil {
		return n.endpointRespondUDP(pkt, dst)
	}
	tcp := pkt.TCP
	base := func() *netem.Packet {
		return &netem.Packet{
			IP: netem.IPv4{TTL: 64, Src: dst.Addr, Dst: pkt.IP.Src, Protocol: netem.ProtoTCP},
			TCP: &netem.TCP{
				SrcPort: tcp.DstPort, DstPort: tcp.SrcPort,
				Seq: tcp.Ack, Ack: tcp.Seq + uint32(len(pkt.Payload)),
				Window: 65535,
			},
		}
	}
	srv := n.servers[dst.ID]
	portOpen := srv != nil && (tcp.DstPort == 80 || tcp.DstPort == 443 || srv.Services[int(tcp.DstPort)] != "")

	switch {
	case tcp.Flags&netem.TCPSyn != 0 && tcp.Flags&netem.TCPAck == 0:
		resp := base()
		if !portOpen {
			resp.TCP.Flags = netem.TCPRst | netem.TCPAck
			resp.TCP.Ack = tcp.Seq + 1
			return []*netem.Packet{resp}
		}
		resp.TCP.Flags = netem.TCPSyn | netem.TCPAck
		resp.TCP.Ack = tcp.Seq + 1
		resp.TCP.Seq = 1000 // deterministic ISN
		return []*netem.Packet{resp}

	case len(pkt.Payload) > 0 && portOpen:
		var payload []byte
		switch tcp.DstPort {
		case 80:
			// HTTP servers reassemble the request stream: segments
			// accumulate per flow until the header terminator arrives.
			req, complete := n.bufferHTTP(pkt)
			if !complete {
				ack := base()
				ack.TCP.Flags = netem.TCPAck
				return []*netem.Packet{ack}
			}
			payload = srv.HandleHTTP(req).Render()
		case 443:
			payload = srv.HandleTLS(pkt.Payload).Response
		default:
			payload = []byte(srv.Services[int(tcp.DstPort)])
		}
		data := base()
		data.TCP.Flags = netem.TCPPsh | netem.TCPAck
		data.Payload = payload
		fin := base()
		fin.TCP.Flags = netem.TCPFin | netem.TCPAck
		fin.TCP.Seq = data.TCP.Seq + uint32(len(payload))
		return []*netem.Packet{data, fin}

	case tcp.Flags&(netem.TCPFin|netem.TCPRst) != 0:
		resp := base()
		resp.TCP.Flags = netem.TCPAck
		return []*netem.Packet{resp}

	default:
		return nil // bare ACK etc.
	}
}

// bufferHTTP accumulates HTTP request segments per flow and reports
// whether a complete request (ending in the header terminator) is ready.
// Incomplete single segments that already look like a full request line
// with a bare-delimiter ending are passed through unchanged so mangled
// delimiters still reach the parser (CenFuzz's Remove strategies).
func (n *Network) bufferHTTP(pkt *netem.Packet) ([]byte, bool) {
	key := fmt.Sprintf("%s:%d>%s:%d", pkt.IP.Src, pkt.TCP.SrcPort, pkt.IP.Dst, pkt.TCP.DstPort)
	if n.httpStreams == nil {
		n.httpStreams = make(map[string][]byte)
	}
	buf := append(n.httpStreams[key], pkt.Payload...)
	if complete(buf) {
		delete(n.httpStreams, key)
		return buf, true
	}
	// Bound buffered state; a flow exceeding the bound is flushed as-is.
	if len(buf) > 16<<10 {
		delete(n.httpStreams, key)
		return buf, true
	}
	n.httpStreams[key] = buf
	return nil, false
}

// complete reports whether buffered bytes end a request: the canonical
// CRLFCRLF terminator, or any of the mangled delimiter endings CenFuzz
// renders (bare LF/CR doubles), or a trailing empty-line heuristic.
func complete(buf []byte) bool {
	s := string(buf)
	for _, term := range []string{"\r\n\r\n", "\n\n", "\r\r"} {
		if strings.HasSuffix(s, term) {
			return true
		}
	}
	// Delimiter-free renders (CenFuzz delimiter="") cannot signal an end;
	// treat any payload without line breaks as complete.
	return !strings.ContainsAny(s, "\r\n")
}

// endpointRespondUDP answers UDP datagrams: DNS queries go to the host's
// resolver; everything else is silently dropped (no ICMP port-unreachable
// in this model — probing tools treat silence as a drop either way).
func (n *Network) endpointRespondUDP(pkt *netem.Packet, dst *topology.Host) []*netem.Packet {
	if pkt.UDP.DstPort != 53 || len(pkt.Payload) == 0 {
		return nil
	}
	r := n.resolvers[dst.ID]
	if r == nil {
		return nil
	}
	answer := r.HandleDNS(pkt.Payload)
	if answer == nil {
		return nil
	}
	return []*netem.Packet{{
		IP:      netem.IPv4{TTL: 64, Src: dst.Addr, Dst: pkt.IP.Src, Protocol: netem.ProtoUDP},
		UDP:     &netem.UDP{SrcPort: 53, DstPort: pkt.UDP.SrcPort},
		Payload: answer,
	}}
}

// SendUDP transmits one UDP datagram from a client host with the given TTL
// and returns everything the client receives — the DNS probe primitive.
func (n *Network) SendUDP(client, dst *topology.Host, dstPort uint16, payload []byte, ttl uint8) []Delivery {
	pkt := netem.NewUDPPacket(client.Addr, dst.Addr, n.AllocPort(), dstPort, payload)
	pkt.IP.TTL = ttl
	return n.Transmit(pkt, client, dst)
}

// ClientAccessLink returns the pseudo-router name for a client's access
// link, for attaching devices immediately in front of a client host.
func ClientAccessLink(h *topology.Host) string { return "@" + h.ID }

// AttachClientSideDevice places a device on the access link between a
// client host and its first router.
func (n *Network) AttachClientSideDevice(h *topology.Host, dev *middlebox.Device) {
	id := topology.LinkID{From: ClientAccessLink(h), To: h.Router.ID}
	n.linkDevices[id] = append(n.linkDevices[id], dev)
	n.indexDevice(dev)
}
