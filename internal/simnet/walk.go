package simnet

import (
	"bytes"
	"time"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/netem"
	"cendev/internal/topology"
)

// perHopLatency is the virtual one-way latency of each link.
const perHopLatency = 2 * time.Millisecond

// Delivery is one packet arriving back at the sending client.
type Delivery struct {
	Packet *netem.Packet
	// At is the virtual arrival time.
	At time.Duration
	// FromHop is the 1-based hop index the packet originated at (router
	// ICMP), 0 for packets originating at or beyond the endpoint.
	FromHop int
}

// Transmit sends one client packet into the network and returns everything
// the client receives in response, in arrival order. The packet's journey:
//
//	client ── link ── R1 ── link ── R2 … Rn ── link ── endpoint
//
// Devices attached to a directed link inspect the packet as it crosses;
// routers decrement TTL and answer expiry with ICMP Time Exceeded (quoting
// per their RFC behaviour); the endpoint's guard device and server produce
// the final response. Return packets traverse the reverse path with their
// own TTL decrements, so low-TTL injections (CopyTTL devices) can die
// before reaching the client — the mechanism behind "Past E" (§4.3).
//
// The returned slice is a batch buffer owned by the Network, and the
// *Packets the network itself originates (endpoint responses, router ICMP)
// are drawn from per-layer pools: both are valid only until the next
// Transmit on the same Network. Callers that keep packets across sends
// must Clone them first. Delivered payload bytes are stable — they live in
// write-once render caches or fresh per-call buffers, never in pooled
// packet storage — so retaining a payload slice alone is safe.
func (n *Network) Transmit(pkt *netem.Packet, src, dst *topology.Host) []Delivery {
	n.clock += perHopLatency
	// Reclaim every packet handed out on the previous Transmit: the
	// delivery contract above says they are dead now.
	n.tcpPkts.idx, n.udpPkts.idx, n.icmpPkts.idx = 0, 0, 0
	n.recordCapture(src, pkt, true)
	n.m.packets.Inc()

	out := n.deliveries[:0]
	defer func() {
		n.deliveries = out
		for _, d := range out {
			n.recordCapture(src, d.Packet, false)
		}
		n.m.deliveries.Add(int64(len(out)))
	}()

	if pkt.TCP == nil && pkt.UDP == nil {
		return out
	}

	// Resolve the forwarding plan. Single-path destinations get a cached
	// plan under a host-pair key (the path is hash-independent, so the
	// entry hits for every flow of the pair, forever — and the flow hash
	// itself never needs computing). ECMP destinations and salted
	// (fault-engine) routing walk the forwarding table into a scratch
	// buffer — allocation-free — and reuse only the per-path device memo:
	// caching per flow would miss on every connection, since each dial
	// draws a fresh source port and thus a fresh flow hash.
	var path []*topology.Router
	var planDevs [][]*middlebox.Device
	// Route dynamics: forwarding follows the active epoch's snapshot graph
	// and re-hash salt. In epoch 0 (or with no engine installed) routeGraph
	// is the base graph, so the single-path plan cache below stays valid;
	// later epochs route over a private snapshot and always take the
	// walked path, which is what makes path churn observable.
	routeGraph, salt := n.activeRouting()
	if salt == nil && routeGraph == n.Graph && n.Graph.SinglePathTo(dst) {
		plan := n.flowPlan(planKey{src: src, dst: dst, hash: 0}, src, dst)
		if plan == nil {
			return out
		}
		path, planDevs = plan.path, plan.devs
	} else {
		var flowHash uint64
		if pkt.TCP != nil {
			flowHash = topology.FlowHash(pkt.IP.Src, pkt.IP.Dst,
				pkt.TCP.SrcPort, pkt.TCP.DstPort, uint8(netem.ProtoTCP))
		} else {
			flowHash = topology.FlowHash(pkt.IP.Src, pkt.IP.Dst,
				pkt.UDP.SrcPort, pkt.UDP.DstPort, uint8(netem.ProtoUDP))
		}
		path = routeGraph.AppendPathForFlow(n.pathBuf[:0], src, dst, flowHash, salt)
		if path == nil {
			return out
		}
		n.pathBuf = path
		planDevs = n.linkDevsForPath(src, path)
	}

	// deliver queues a response packet originating at hop originHop
	// (1-based; 0 = client-side) for return-path processing.
	deliver := func(resp *netem.Packet, originHop int) {
		duplicate := false
		if n.faults != nil {
			// Global impairments see the delivery once; link impairments see
			// it on every reverse crossing back toward the client, so a dead
			// or lossy link kills responses as well as probes.
			o := n.faults.Global(n.clock)
			last := originHop - 1
			if last > len(path)-1 {
				last = len(path) - 1 // endpoint-originated: start at the last router link
			}
			for i := last; i >= 1 && !o.Drop; i-- {
				o.Merge(n.faults.Cross(path[i-1].ID, path[i].ID, n.clock))
			}
			if !o.Drop && originHop > 0 && len(path) > 0 {
				o.Merge(n.faults.Cross("@"+src.ID, path[0].ID, n.clock))
			}
			if o.Drop {
				return // impaired on the return path
			}
			duplicate = o.Duplicate
		}
		hopsBack := originHop // routers between origin and client, inclusive of origin side
		if hopsBack > 0 {
			// The originating router/device does not decrement its own
			// packet; the remaining originHop-1 routers each decrement once.
			decrements := originHop - 1
			if int(resp.IP.TTL) <= decrements {
				return // died on the return path
			}
			resp.IP.TTL -= uint8(decrements)
		}
		out = append(out, Delivery{
			Packet:  resp,
			At:      n.clock + time.Duration(originHop)*perHopLatency,
			FromHop: originHop,
		})
		if duplicate {
			out = append(out, Delivery{
				Packet:  resp.Clone(),
				At:      n.clock + time.Duration(originHop)*perHopLatency,
				FromHop: originHop,
			})
		}
	}

	if n.faults != nil && n.faults.Global(n.clock).Drop {
		return out // transient loss on the forward path
	}
	// throttleDelay accumulates extra latency imposed by throttling
	// devices; it shifts every delivery's arrival time.
	var throttleDelay time.Duration
	// The working packet is Network-owned scratch: everything that outlives
	// this call (injections, ICMP errors, endpoint responses) is built
	// fresh, so the per-hop mutations never need a per-call deep clone.
	pkt.CloneInto(&n.workPkt)
	working := &n.workPkt
	ttl := working.IP.TTL
	prev := "" // empty = client access link
	for i, router := range path {
		hop := i + 1
		// Link impairments act before the link's devices: a packet lost on
		// the wire never reaches the inspection tap. The pseudo-router name
		// is only built when a fault engine is installed — it is the one
		// string concatenation on the per-hop fast path.
		if n.faults != nil {
			linkFrom := prev
			if linkFrom == "" {
				linkFrom = "@" + src.ID // client access link pseudo-router
			}
			if n.faults.Cross(linkFrom, router.ID, n.clock).Drop {
				return sortDeliveries(out)
			}
		}
		linkDevs := planDevs[i]
		dropped := false
		for _, dev := range linkDevs {
			v := dev.Inspect(working, dst.Addr, n.clock)
			for _, inj := range v.Injected {
				n.m.injections.Inc()
				// Injected packets are freshly built per Inspect call;
				// ownership transfers to the delivery.
				deliver(inj, hop)
			}
			if v.DropOriginal {
				dropped = true
			}
			throttleDelay += v.ThrottleDelay
		}
		if dropped {
			n.m.devDrops.Inc()
			return sortDeliveries(out)
		}
		// Router decrements TTL; on expiry it may answer with ICMP.
		ttl--
		working.IP.TTL = ttl
		if ttl == 0 {
			n.m.ttlExpired.Inc()
			// The fault engine can silence or rate-limit a router's ICMP
			// generation on top of the router's own RFC behaviour.
			if router.SendsICMP && (n.faults == nil || n.faults.AllowICMP(router.ID, n.clock)) {
				te := n.icmpPkts.get()
				if err := te.FillTimeExceeded(router.Addr, working, router.QuoteLen); err == nil {
					n.m.icmp.Inc()
					deliver(te, hop)
				}
			}
			return sortDeliveries(out)
		}
		// Forwarding rewrites (TOS/flags) applied by some routers.
		if router.RewriteTOS != nil {
			working.IP.TOS = *router.RewriteTOS
		}
		if router.SetIPFlags != nil {
			working.IP.Flags = netem.IPFlags(*router.SetIPFlags)
		}
		prev = router.ID
	}

	// The packet has crossed the last router; deliver to the endpoint.
	endpointHop := len(path) + 1
	if guard := n.guards[dst.ID]; guard != nil {
		v := guard.Inspect(working, dst.Addr, n.clock)
		for _, inj := range v.Injected {
			n.m.injections.Inc()
			deliver(inj, endpointHop)
		}
		if v.Triggered && v.DropOriginal {
			n.m.devDrops.Inc()
			return sortDeliveries(out)
		}
	}
	for _, resp := range n.endpointRespond(working, dst) {
		deliver(resp, endpointHop)
	}
	if throttleDelay > 0 {
		n.clock += throttleDelay
		for i := range out {
			out[i].At += throttleDelay
		}
	}
	return sortDeliveries(out)
}

// sortDeliveries orders deliveries by arrival time (stable for equal times).
func sortDeliveries(ds []Delivery) []Delivery {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].At < ds[j-1].At; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds
}

// endpointRespond produces the endpoint's transport-level response to a
// packet that reached it. The returned slice is transient scratch (reused
// next call); the packets inside are fresh.
func (n *Network) endpointRespond(pkt *netem.Packet, dst *topology.Host) []*netem.Packet {
	if pkt.UDP != nil {
		return n.endpointRespondUDP(pkt, dst)
	}
	tcp := pkt.TCP
	base := func() *netem.Packet {
		p := n.tcpPkts.get()
		p.FillTCP(dst.Addr, pkt.IP.Src, tcp.DstPort, tcp.SrcPort,
			0, tcp.Ack, tcp.Seq+uint32(len(pkt.Payload)), nil)
		return p
	}
	one := func(p *netem.Packet) []*netem.Packet {
		n.respBuf = append(n.respBuf[:0], p)
		return n.respBuf
	}
	srv := n.servers[dst.ID]
	portOpen := srv != nil && (tcp.DstPort == 80 || tcp.DstPort == 443 || srv.Services[int(tcp.DstPort)] != "")

	switch {
	case tcp.Flags&netem.TCPSyn != 0 && tcp.Flags&netem.TCPAck == 0:
		resp := base()
		if !portOpen {
			resp.TCP.Flags = netem.TCPRst | netem.TCPAck
			resp.TCP.Ack = tcp.Seq + 1
			return one(resp)
		}
		resp.TCP.Flags = netem.TCPSyn | netem.TCPAck
		resp.TCP.Ack = tcp.Seq + 1
		resp.TCP.Seq = 1000 // deterministic ISN
		return one(resp)

	case len(pkt.Payload) > 0 && portOpen:
		var payload []byte
		switch tcp.DstPort {
		case 80:
			// HTTP servers reassemble the request stream: segments
			// accumulate per flow until the header terminator arrives.
			req, complete := n.bufferHTTP(pkt)
			if !complete {
				ack := base()
				ack.TCP.Flags = netem.TCPAck
				return one(ack)
			}
			payload = n.renderHTTP(srv, req)
		case 443:
			payload = n.renderTLS(srv, pkt.Payload)
		default:
			payload = []byte(srv.Services[int(tcp.DstPort)])
		}
		data := base()
		data.TCP.Flags = netem.TCPPsh | netem.TCPAck
		data.Payload = payload
		fin := base()
		fin.TCP.Flags = netem.TCPFin | netem.TCPAck
		fin.TCP.Seq = data.TCP.Seq + uint32(len(payload))
		n.respBuf = append(n.respBuf[:0], data, fin)
		return n.respBuf

	case tcp.Flags&(netem.TCPFin|netem.TCPRst) != 0:
		resp := base()
		resp.TCP.Flags = netem.TCPAck
		return one(resp)

	default:
		return nil // bare ACK etc.
	}
}

// renderHTTP returns the server's rendered response for raw request bytes,
// memoized per server. HandleHTTP is a pure function of (server config,
// request bytes), so a cache hit is observationally identical to a fresh
// render; cached bytes are write-once and shared across deliveries.
func (n *Network) renderHTTP(srv *endpoint.Server, req []byte) []byte {
	c := n.httpCache[srv]
	if c == nil {
		if n.httpCache == nil {
			n.httpCache = make(map[*endpoint.Server]map[string][]byte)
		}
		c = make(map[string][]byte)
		n.httpCache[srv] = c
	}
	if resp, ok := c[string(req)]; ok {
		return resp
	}
	resp := srv.HandleHTTP(req).Render()
	if len(c) >= maxRenderCache {
		clear(c)
	}
	c[string(req)] = resp
	return resp
}

// renderTLS is renderHTTP's Client Hello counterpart.
func (n *Network) renderTLS(srv *endpoint.Server, raw []byte) []byte {
	c := n.tlsCache[srv]
	if c == nil {
		if n.tlsCache == nil {
			n.tlsCache = make(map[*endpoint.Server]map[string][]byte)
		}
		c = make(map[string][]byte)
		n.tlsCache[srv] = c
	}
	if resp, ok := c[string(raw)]; ok {
		return resp
	}
	resp := srv.HandleTLS(raw).Response
	if len(c) >= maxRenderCache {
		clear(c)
	}
	c[string(raw)] = resp
	return resp
}

// bufferHTTP accumulates HTTP request segments per flow and reports
// whether a complete request (ending in the header terminator) is ready.
// Incomplete single segments that already look like a full request line
// with a bare-delimiter ending are passed through unchanged so mangled
// delimiters still reach the parser (CenFuzz's Remove strategies).
func (n *Network) bufferHTTP(pkt *netem.Packet) ([]byte, bool) {
	key := flowKey{pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort, uint8(netem.ProtoTCP)}
	prev, buffered := n.httpStreams[key]
	if !buffered && complete(pkt.Payload) {
		// Common case: the whole request arrived in one segment; hand it
		// to the caller without copying into (and out of) the stream map.
		return pkt.Payload, true
	}
	if n.httpStreams == nil {
		n.httpStreams = make(map[flowKey][]byte)
	}
	buf := append(prev, pkt.Payload...)
	if complete(buf) {
		delete(n.httpStreams, key)
		return buf, true
	}
	// Bound buffered state; a flow exceeding the bound is flushed as-is.
	if len(buf) > 16<<10 {
		delete(n.httpStreams, key)
		return buf, true
	}
	n.httpStreams[key] = buf
	return nil, false
}

// Request-terminator suffixes complete scans for, hoisted so the hot path
// allocates nothing.
var (
	termCRLFCRLF = []byte("\r\n\r\n")
	termLFLF     = []byte("\n\n")
	termCRCR     = []byte("\r\r")
)

// complete reports whether buffered bytes end a request: the canonical
// CRLFCRLF terminator, or any of the mangled delimiter endings CenFuzz
// renders (bare LF/CR doubles), or a trailing empty-line heuristic.
func complete(buf []byte) bool {
	if bytes.HasSuffix(buf, termCRLFCRLF) || bytes.HasSuffix(buf, termLFLF) || bytes.HasSuffix(buf, termCRCR) {
		return true
	}
	// Delimiter-free renders (CenFuzz delimiter="") cannot signal an end;
	// treat any payload without line breaks as complete.
	return !bytes.ContainsAny(buf, "\r\n")
}

// endpointRespondUDP answers UDP datagrams: DNS queries go to the host's
// resolver; everything else is silently dropped (no ICMP port-unreachable
// in this model — probing tools treat silence as a drop either way).
func (n *Network) endpointRespondUDP(pkt *netem.Packet, dst *topology.Host) []*netem.Packet {
	if pkt.UDP.DstPort != 53 || len(pkt.Payload) == 0 {
		return nil
	}
	r := n.resolvers[dst.ID]
	if r == nil {
		return nil
	}
	answer := r.HandleDNS(pkt.Payload)
	if answer == nil {
		return nil
	}
	resp := n.udpPkts.get()
	resp.FillUDP(dst.Addr, pkt.IP.Src, 53, pkt.UDP.SrcPort, answer)
	n.respBuf = append(n.respBuf[:0], resp)
	return n.respBuf
}

// SendUDP transmits one UDP datagram from a client host with the given TTL
// and returns everything the client receives — the DNS probe primitive.
// The returned packets carry Transmit's pooled-delivery contract: they
// are valid only until the next Transmit on this network. Clone anything
// retained past that point.
func (n *Network) SendUDP(client, dst *topology.Host, dstPort uint16, payload []byte, ttl uint8) []Delivery {
	// Built in a dedicated scratch (not txPkt, which Conn keeps as a TCP
	// packet): Transmit copies its input immediately and never retains it.
	pkt := &n.txUDP
	pkt.FillUDP(client.Addr, dst.Addr, n.AllocPort(), dstPort, payload)
	pkt.IP.TTL = ttl
	return n.Transmit(pkt, client, dst)
}

// ClientAccessLink returns the pseudo-router name for a client's access
// link, for attaching devices immediately in front of a client host.
func ClientAccessLink(h *topology.Host) string { return "@" + h.ID }

// AttachClientSideDevice places a device on the access link between a
// client host and its first router.
func (n *Network) AttachClientSideDevice(h *topology.Host, dev *middlebox.Device) {
	id := topology.LinkID{From: ClientAccessLink(h), To: h.Router.ID}
	n.linkDevices[id] = append(n.linkDevices[id], dev)
	n.indexDevice(dev)
}
