package simnet

import (
	"net/netip"
	"sort"

	"cendev/internal/middlebox"
)

// ProbeService performs a banner grab against addr:port the way CenProbe's
// ZGrab-style scanner does: connect, read the service's initial banner.
// It resolves against censorship devices' management services first, then
// endpoint servers' auxiliary services, then the standard web ports of
// endpoint servers. ok is false when nothing listens.
func (n *Network) ProbeService(addr netip.Addr, port int) (banner string, ok bool) {
	if dev := n.DeviceByAddr(addr); dev != nil {
		if b, open := dev.Services[port]; open {
			return b, true
		}
		return "", false
	}
	if h := n.hostsByAddr[addr]; h != nil {
		if srv := n.servers[h.ID]; srv != nil {
			if b, open := srv.Services[port]; open {
				return b, true
			}
			if port == 80 {
				return "HTTP/1.1 200 OK\r\nServer: nginx\r\n", true
			}
			if port == 443 {
				return "TLS server, certificate CN=" + firstDomain(srv.Domains), true
			}
		}
	}
	return "", false
}

// OpenPorts scans the given ports on addr and returns those with listening
// services, sorted — the Nmap-style port scan CenProbe starts with (§5.1).
func (n *Network) OpenPorts(addr netip.Addr, ports []int) []int {
	var open []int
	for _, p := range ports {
		if _, ok := n.ProbeService(addr, p); ok {
			open = append(open, p)
		}
	}
	sort.Ints(open)
	return open
}

func firstDomain(domains []string) string {
	if len(domains) == 0 {
		return "unknown"
	}
	return domains[0]
}

// ProbeTCPPersonality performs an Nmap-style stack probe against addr: a
// SYN to an open port, observing the SYN-ACK's window, TTL, and DF bit.
// Devices answer with their management stack's personality; plain hosts
// answer with the generic server personality. ok is false when nothing
// listens at the address.
func (n *Network) ProbeTCPPersonality(addr netip.Addr) (middlebox.TCPPersonality, bool) {
	if dev := n.DeviceByAddr(addr); dev != nil {
		if len(dev.Services) == 0 {
			return middlebox.TCPPersonality{}, false
		}
		if dev.Personality == (middlebox.TCPPersonality{}) {
			return middlebox.DefaultHostPersonality, true
		}
		return dev.Personality, true
	}
	if h := n.hostsByAddr[addr]; h != nil && n.servers[h.ID] != nil {
		return middlebox.DefaultHostPersonality, true
	}
	return middlebox.TCPPersonality{}, false
}
