package simnet

import (
	"testing"
	"time"

	"cendev/internal/endpoint"
	"cendev/internal/faults"
	"cendev/internal/middlebox"
	"cendev/internal/topology"
)

const (
	cloneBlocked = "www.blocked.example"
	cloneControl = "www.control.example"
)

// buildCloneNet: client—r1—r2—server with a residual-capable device on
// r1→r2, a fault engine, and a registered server.
func buildCloneNet(t *testing.T) (*Network, *topology.Host, *topology.Host, *middlebox.Device) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	r2 := g.AddRouter("r2", asE)
	g.Link("r1", "r2")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r2)
	n := New(g)
	n.RegisterServer("server", endpoint.NewServer(cloneBlocked, cloneControl))
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{cloneBlocked}, g.Router("r2").Addr)
	dev.ResidualWindow = 1000 * time.Hour
	n.AttachDevice("r1", "r2", dev)
	n.SetFaults(faults.NewEngine(11).AddGlobal(faults.UniformLoss(0.5)))
	return n, client, server, dev
}

// residualActive reports whether the device currently blocks the
// client→server pair via residual state — the observable face of device
// flow state.
func residualActive(n *Network, client, server *topology.Host) bool {
	conn, err := n.Dial(client, server, 80)
	if err != nil {
		return true
	}
	defer conn.Close()
	req := []byte("GET / HTTP/1.1\r\nHost: " + cloneControl + "\r\n\r\n")
	for _, d := range conn.SendPayload(req, 64) {
		if d.Packet.IP.Src == server.Addr && len(d.Packet.Payload) > 0 {
			return false
		}
	}
	return true
}

// trip drives a blocked request so the device records residual state for
// the client↔server pair.
func trip(n *Network, client, server *topology.Host) {
	conn, err := n.Dial(client, server, 80)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SendPayload([]byte("GET / HTTP/1.1\r\nHost: "+cloneBlocked+"\r\n\r\n"), 64)
}

// TestCloneDeviceStateIndependent: tripping residual blocking on the clone
// leaves the original clean, and vice versa.
func TestCloneDeviceStateIndependent(t *testing.T) {
	n, client, server, _ := buildCloneNet(t)
	n.SetFaults(nil) // keep this test about device state
	c := n.Clone()

	trip(c, client, server)
	if !residualActive(c, client, server) {
		t.Fatal("setup: residual blocking should be active on the clone")
	}
	if residualActive(n, client, server) {
		t.Error("clone's residual state leaked into the original")
	}

	// And the other direction, on a fresh pair.
	n2, client2, server2, _ := buildCloneNet(t)
	n2.SetFaults(nil)
	c2 := n2.Clone()
	trip(n2, client2, server2)
	if !residualActive(n2, client2, server2) {
		t.Fatal("setup: residual blocking should be active on the original")
	}
	if residualActive(c2, client2, server2) {
		t.Error("original's residual state leaked into the clone")
	}
}

// TestCloneFaultEngineIndependent: the clone gets its own engine object
// with its own generator state — drawing from one must not perturb the
// other — and both produce identical streams from the same pristine start.
func TestCloneFaultEngineIndependent(t *testing.T) {
	n, _, _, _ := buildCloneNet(t)
	c := n.Clone()
	if c.Faults() == n.Faults() {
		t.Fatal("clone shares the fault engine object")
	}

	// Identical draws from identical pristine state.
	a, b := n.Faults(), c.Faults()
	for i := 0; i < 64; i++ {
		now := time.Duration(i) * time.Second
		if a.Global(now) != b.Global(now) {
			t.Fatalf("draw %d diverged between original and clone", i)
		}
	}

	// Advancing one engine's state must not move the other: a fresh clone
	// of the untouched engine still matches a fresh clone of the advanced
	// engine (pristine state), while the advanced engine itself has moved.
	n2, _, _, _ := buildCloneNet(t)
	c2 := n2.Clone()
	for i := 0; i < 10; i++ {
		n2.Faults().Global(0) // advance only the original
	}
	fresh := c2.Faults().Clone()
	for i := 0; i < 64; i++ {
		if c2.Faults().Global(0) != fresh.Global(0) {
			t.Fatal("original's draws perturbed the clone's generator state")
		}
	}
}

// TestCloneGraphAndClockIndependent: mutating the clone's clock, port
// sequence, or per-clone graph caches never shows up in the original.
func TestCloneGraphAndClockIndependent(t *testing.T) {
	n, client, server, _ := buildCloneNet(t)
	c := n.Clone()

	if c.Graph == n.Graph {
		t.Fatal("clone shares the topology graph")
	}
	before := n.Now()
	c.Sleep(42 * time.Minute)
	if n.Now() != before {
		t.Error("clone's clock advanced the original")
	}
	p := n.PortSeq()
	c.AllocPort()
	c.AllocPort()
	if n.PortSeq() != p {
		t.Error("clone's port allocations advanced the original")
	}
	if h := c.HostByAddr(server.Addr); h == nil || h.ID != server.ID {
		t.Error("clone lost the host index")
	}
	if h := c.HostByAddr(client.Addr); h == nil || h.ID != client.ID {
		t.Error("clone lost the client host index")
	}
}

// TestBeginMeasurementRewindsState: BeginMeasurement resets device flow
// state, the clock, and the port sequence to the canonical origin.
func TestBeginMeasurementRewindsState(t *testing.T) {
	n, client, server, _ := buildCloneNet(t)
	n.SetFaults(nil)
	baseClock := n.Now()
	basePort := n.PortSeq()

	trip(n, client, server)
	n.Sleep(5 * time.Minute)
	if !residualActive(n, client, server) {
		t.Fatal("setup: residual blocking should be active")
	}

	n.BeginMeasurement(baseClock, basePort)
	if n.Now() != baseClock {
		t.Errorf("clock = %v, want %v", n.Now(), baseClock)
	}
	if n.PortSeq() != basePort {
		t.Errorf("port = %d, want %d", n.PortSeq(), basePort)
	}
	if residualActive(n, client, server) {
		t.Error("residual device state survived BeginMeasurement")
	}
}
