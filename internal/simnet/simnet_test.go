package simnet

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"cendev/internal/endpoint"
	"cendev/internal/httpgram"
	"cendev/internal/middlebox"
	"cendev/internal/netem"
	"cendev/internal/topology"
)

const (
	blockedDomain = "www.blocked.example"
	openDomain    = "www.open.example"
)

// testNet builds a linear topology client—r1—r2—r3—r4—server with a web
// server hosting both domains.
func testNet(t *testing.T) (*Network, *topology.Host, *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	asC := g.AddAS(100, "ClientNet", "US")
	asT := g.AddAS(200, "Transit", "DE")
	asE := g.AddAS(300, "EndpointNet", "KZ")
	r1 := g.AddRouter("r1", asC)
	g.AddRouter("r2", asT)
	g.AddRouter("r3", asT)
	r4 := g.AddRouter("r4", asE)
	g.Link("r1", "r2")
	g.Link("r2", "r3")
	g.Link("r3", "r4")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r4)
	n := New(g)
	srv := endpoint.NewServer(blockedDomain, openDomain)
	n.RegisterServer("server", srv)
	return n, client, server
}

func getRequest(host string) []byte { return httpgram.NewRequest(host).Render() }

func TestDialAndFetch(t *testing.T) {
	n, client, server := testNet(t)
	conn, err := n.Dial(client, server, 80)
	if err != nil {
		t.Fatal(err)
	}
	ds := conn.SendPayload(getRequest(openDomain), 64)
	var body string
	for _, d := range ds {
		if len(d.Packet.Payload) > 0 {
			body = string(d.Packet.Payload)
		}
	}
	if !strings.Contains(body, "HTTP/1.1 200 OK") {
		t.Errorf("response = %q", body)
	}
	if !strings.Contains(body, openDomain) {
		t.Errorf("response body missing domain content: %q", body)
	}
	conn.Close()
}

func TestDialClosedPortRefused(t *testing.T) {
	n, client, server := testNet(t)
	if _, err := n.Dial(client, server, 9999); err != ErrConnRefused {
		t.Errorf("Dial closed port: err = %v, want ErrConnRefused", err)
	}
}

func TestDialUnreachableTimesOut(t *testing.T) {
	g := topology.NewGraph()
	as := g.AddAS(1, "A", "US")
	r1 := g.AddRouter("r1", as)
	r2 := g.AddRouter("r2", as) // not linked
	c := g.AddHost("c", as, r1)
	s := g.AddHost("s", as, r2)
	n := New(g)
	if _, err := n.Dial(c, s, 80); err != ErrConnTimeout {
		t.Errorf("Dial unreachable: err = %v, want ErrConnTimeout", err)
	}
}

func TestTTLExpiryICMP(t *testing.T) {
	n, client, server := testNet(t)
	conn, err := n.Dial(client, server, 80)
	if err != nil {
		t.Fatal(err)
	}
	for ttl := uint8(1); ttl <= 4; ttl++ {
		ds := conn.SendPayload(getRequest(openDomain), ttl)
		if len(ds) != 1 {
			t.Fatalf("ttl=%d: %d deliveries, want 1", ttl, len(ds))
		}
		p := ds[0].Packet
		if p.ICMP == nil || p.ICMP.Type != netem.ICMPTimeExceeded {
			t.Fatalf("ttl=%d: got %s, want Time Exceeded", ttl, p)
		}
		wantRouter := n.Graph.Router([]string{"r1", "r2", "r3", "r4"}[ttl-1])
		if p.IP.Src != wantRouter.Addr {
			t.Errorf("ttl=%d: ICMP from %s, want %s (%s)", ttl, p.IP.Src, wantRouter.Addr, wantRouter.ID)
		}
		if ds[0].FromHop != int(ttl) {
			t.Errorf("ttl=%d: FromHop = %d", ttl, ds[0].FromHop)
		}
		// Quoted packet must carry our ports.
		q, err := p.ICMP.QuotedPacket()
		if err != nil {
			t.Fatal(err)
		}
		if src, dst, ok := q.QuotedPorts(); !ok || src != conn.SrcPort || dst != 80 {
			t.Errorf("ttl=%d: quoted ports %d>%d ok=%v", ttl, src, dst, ok)
		}
	}
	// TTL 5 reaches the endpoint.
	ds := conn.SendPayload(getRequest(openDomain), 5)
	found := false
	for _, d := range ds {
		if strings.Contains(string(d.Packet.Payload), "200 OK") {
			found = true
		}
	}
	if !found {
		t.Error("ttl=5: endpoint response missing")
	}
}

func TestSilentRouterNoICMP(t *testing.T) {
	n, client, server := testNet(t)
	n.Graph.Router("r2").SendsICMP = false
	conn, _ := n.Dial(client, server, 80)
	ds := conn.SendPayload(getRequest(openDomain), 2)
	if len(ds) != 0 {
		t.Errorf("silent router answered: %v", ds[0].Packet)
	}
	// Next hop still answers.
	ds3 := conn.SendPayload(getRequest(openDomain), 3)
	if len(ds3) != 1 || ds3[0].Packet.ICMP == nil {
		t.Error("r3 should still answer with ICMP")
	}
}

func TestInPathDropDevice(t *testing.T) {
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	dev.ResidualWindow = 0 // keep probes independent for this test
	n.AttachDevice("r2", "r3", dev)

	conn, _ := n.Dial(client, server, 80)
	// Below the device: normal ICMP.
	ds := conn.SendPayload(getRequest(blockedDomain), 2)
	if len(ds) != 1 || ds[0].Packet.ICMP == nil {
		t.Fatal("ttl=2 should get ICMP from r2")
	}
	// At/after the device: silence (drop).
	for ttl := uint8(3); ttl <= 5; ttl++ {
		if ds := conn.SendPayload(getRequest(blockedDomain), ttl); len(ds) != 0 {
			t.Errorf("ttl=%d: blocked probe got %s", ttl, ds[0].Packet)
		}
	}
	// Control domain unaffected at every TTL.
	conn2, _ := n.Dial(client, server, 80)
	if ds := conn2.SendPayload(getRequest(openDomain), 3); len(ds) != 1 || ds[0].Packet.ICMP == nil {
		t.Error("control domain should still traceroute normally")
	}
}

func TestInPathRSTDevice(t *testing.T) {
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorDDoSGuard, []string{blockedDomain}, n.Graph.Router("r3").Addr)
	dev.ResidualWindow = 0
	n.AttachDevice("r2", "r3", dev)

	conn, _ := n.Dial(client, server, 80)
	ds := conn.SendPayload(getRequest(blockedDomain), 3)
	if len(ds) != 1 {
		t.Fatalf("%d deliveries, want 1 (injected RST)", len(ds))
	}
	p := ds[0].Packet
	if p.TCP == nil || p.TCP.Flags&netem.TCPRst == 0 {
		t.Fatalf("got %s, want RST", p)
	}
	if p.IP.Src != server.Addr {
		t.Errorf("RST spoofed from %s, want endpoint %s", p.IP.Src, server.Addr)
	}
	// In-path: no ICMP from r3 alongside the RST.
	for _, d := range ds {
		if d.Packet.ICMP != nil {
			t.Error("in-path device should suppress the ICMP from the next hop")
		}
	}
}

func TestOnPathDeviceInjectsAndForwards(t *testing.T) {
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownRST, []string{blockedDomain}, netip.Addr{})
	dev.ResidualWindow = 0
	n.AttachDevice("r2", "r3", dev)

	conn, _ := n.Dial(client, server, 80)
	ds := conn.SendPayload(getRequest(blockedDomain), 3)
	var gotRST, gotICMP bool
	for _, d := range ds {
		if d.Packet.TCP != nil && d.Packet.TCP.Flags&netem.TCPRst != 0 {
			gotRST = true
		}
		if d.Packet.ICMP != nil && d.Packet.ICMP.Type == netem.ICMPTimeExceeded {
			gotICMP = true
		}
	}
	if !gotRST || !gotICMP {
		t.Errorf("on-path signature: RST=%v ICMP=%v, want both (Figure 2(D))", gotRST, gotICMP)
	}
	// At full TTL the endpoint's real response arrives alongside the RST.
	n.ResetDeviceState()
	conn2, _ := n.Dial(client, server, 80)
	ds2 := conn2.SendPayload(getRequest(blockedDomain), 64)
	var gotRST2, gotReal bool
	for _, d := range ds2 {
		if d.Packet.TCP != nil && d.Packet.TCP.Flags&netem.TCPRst != 0 {
			gotRST2 = true
		}
		if strings.Contains(string(d.Packet.Payload), "200 OK") {
			gotReal = true
		}
	}
	if !gotRST2 || !gotReal {
		t.Errorf("full TTL on-path: RST=%v real=%v, want both", gotRST2, gotReal)
	}
}

func TestCopyTTLDevicePastE(t *testing.T) {
	n, client, server := testNet(t)
	// Device between r1 and r2: hop distance 2 from the client.
	dev := middlebox.NewDevice("d", middlebox.VendorUnknownCopyTTL, []string{blockedDomain}, netip.Addr{})
	dev.ResidualWindow = 0
	n.AttachDevice("r1", "r2", dev)

	conn, _ := n.Dial(client, server, 80)
	// TTL 2: packet crosses the device (remaining TTL 1), device injects
	// RST with TTL 1, which dies after r1 decrements it. Timeout.
	if ds := conn.SendPayload(getRequest(blockedDomain), 2); len(ds) != 0 {
		t.Errorf("ttl=2: got %s, want timeout (injection died on return)", ds[0].Packet)
	}
	// TTL 3: remaining TTL at device = 2; survives one decrement, arrives
	// with TTL 1 — the paper's observation that injected RSTs arrive with
	// TTL set to one.
	ds := conn.SendPayload(getRequest(blockedDomain), 3)
	if len(ds) != 1 || ds[0].Packet.TCP == nil || ds[0].Packet.TCP.Flags&netem.TCPRst == 0 {
		t.Fatalf("ttl=3: want RST, got %v", ds)
	}
	if got := ds[0].Packet.IP.TTL; got != 1 {
		t.Errorf("arrived RST TTL = %d, want 1", got)
	}
}

func TestGuardDeviceAtEndpoint(t *testing.T) {
	n, client, server := testNet(t)
	guard := middlebox.NewDevice("g", middlebox.VendorUnknownDrop, []string{blockedDomain}, netip.Addr{})
	guard.ResidualWindow = 0
	n.AttachGuard("server", guard)

	conn, _ := n.Dial(client, server, 80)
	// All four routers answer ICMP normally for the test domain.
	for ttl := uint8(1); ttl <= 4; ttl++ {
		if ds := conn.SendPayload(getRequest(blockedDomain), ttl); len(ds) != 1 || ds[0].Packet.ICMP == nil {
			t.Fatalf("ttl=%d: want ICMP through the path", ttl)
		}
	}
	// At the endpoint: silence.
	if ds := conn.SendPayload(getRequest(blockedDomain), 5); len(ds) != 0 {
		t.Errorf("ttl=5: got %s, want guard drop at endpoint", ds[0].Packet)
	}
	// Open domain unaffected.
	conn2, _ := n.Dial(client, server, 80)
	ds := conn2.SendPayload(getRequest(openDomain), 5)
	if len(ds) == 0 || !strings.Contains(string(ds[0].Packet.Payload), "200 OK") {
		t.Error("open domain should reach the endpoint")
	}
}

func TestResidualBlockingAcrossConnections(t *testing.T) {
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, netip.Addr{})
	n.AttachDevice("r2", "r3", dev)

	conn, _ := n.Dial(client, server, 80)
	conn.SendPayload(getRequest(blockedDomain), 64) // trigger
	// A new dial inside the residual window times out: the device drops
	// even the SYN.
	if _, err := n.Dial(client, server, 80); err != ErrConnTimeout {
		t.Errorf("dial inside residual window: err = %v, want timeout", err)
	}
	// After waiting out the window (the 120 s CenTrace pause), dials work.
	n.Sleep(120 * time.Second)
	if _, err := n.Dial(client, server, 80); err != nil {
		t.Errorf("dial after residual window: err = %v", err)
	}
}

func TestRouterTOSRewriteVisibleInQuote(t *testing.T) {
	n, client, server := testNet(t)
	tos := uint8(0x48)
	n.Graph.Router("r2").RewriteTOS = &tos
	n.Graph.Router("r3").QuoteLen = 128 // RFC 1812-style quoting

	conn, _ := n.Dial(client, server, 80)
	sent := netem.NewTCPPacket(client.Addr, server.Addr, conn.SrcPort, 80,
		netem.TCPPsh|netem.TCPAck, 2, 1001, getRequest(openDomain))
	sent.IP.TTL = 3
	ds := conn.SendPayload(getRequest(openDomain), 3)
	if len(ds) != 1 || ds[0].Packet.ICMP == nil {
		t.Fatal("want ICMP from r3")
	}
	q, err := ds[0].Packet.ICMP.QuotedPacket()
	if err != nil {
		t.Fatal(err)
	}
	delta := netem.CompareQuote(sent, q)
	if !delta.TOSChanged {
		t.Error("TOS rewrite by r2 should appear in r3's quote")
	}
}

func TestCaptureRecordsTraffic(t *testing.T) {
	n, client, server := testNet(t)
	cap := n.StartCapture(client)
	conn, _ := n.Dial(client, server, 80)
	conn.SendPayload(getRequest(openDomain), 64)
	if len(cap.Records) == 0 {
		t.Fatal("capture empty")
	}
	var in, outb int
	for _, r := range cap.Records {
		if r.Outbound {
			outb++
		} else {
			in++
		}
	}
	if in == 0 || outb == 0 {
		t.Errorf("capture in=%d out=%d, want both directions", in, outb)
	}
	n.StopCapture(client)
	before := len(cap.Records)
	conn.SendPayload(getRequest(openDomain), 64)
	if len(cap.Records) != before {
		t.Error("capture still recording after StopCapture")
	}
	if len(cap.Inbound()) != in {
		t.Errorf("Inbound() = %d, want %d", len(cap.Inbound()), in)
	}
}

func TestProbeServiceDeviceBanner(t *testing.T) {
	n, client, server := testNet(t)
	_ = client
	_ = server
	devAddr := n.Graph.Router("r3").Addr
	dev := middlebox.NewDevice("d", middlebox.VendorFortinet, []string{blockedDomain}, devAddr)
	n.AttachDevice("r2", "r3", dev)

	banner, ok := n.ProbeService(devAddr, 22)
	if !ok || !strings.Contains(banner, "FortiSSH") {
		t.Errorf("banner = %q ok=%v", banner, ok)
	}
	if _, ok := n.ProbeService(devAddr, 12345); ok {
		t.Error("closed port reported open")
	}
	open := n.OpenPorts(devAddr, []int{21, 22, 23, 80, 161, 443})
	if len(open) != 3 { // 22, 161, 443 per the Fortinet profile
		t.Errorf("OpenPorts = %v", open)
	}
}

func TestProbeServiceEndpointWeb(t *testing.T) {
	n, _, server := testNet(t)
	banner, ok := n.ProbeService(server.Addr, 80)
	if !ok || !strings.Contains(banner, "nginx") {
		t.Errorf("endpoint web banner = %q ok=%v", banner, ok)
	}
	if _, ok := n.ProbeService(netip.MustParseAddr("203.0.113.1"), 80); ok {
		t.Error("unknown address reported open")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	n, client, server := testNet(t)
	t0 := n.Now()
	conn, _ := n.Dial(client, server, 80)
	conn.SendPayload(getRequest(openDomain), 64)
	if n.Now() <= t0 {
		t.Error("clock did not advance during traffic")
	}
	t1 := n.Now()
	n.Sleep(2 * time.Minute)
	if n.Now() != t1+2*time.Minute {
		t.Error("Sleep did not advance clock exactly")
	}
}

func TestAttachValidation(t *testing.T) {
	n, _, _ := testNet(t)
	for _, fn := range []func(){
		func() { n.AttachDevice("r1", "nope", nil) },
		func() { n.AttachGuard("nope", nil) },
		func() { n.RegisterServer("nope", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for unknown attach target")
				}
			}()
			fn()
		}()
	}
}

func TestClientSideDevice(t *testing.T) {
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, netip.Addr{})
	dev.ResidualWindow = 0
	n.AttachClientSideDevice(client, dev)
	conn, _ := n.Dial(client, server, 80)
	if ds := conn.SendPayload(getRequest(blockedDomain), 1); len(ds) != 0 {
		t.Error("client-side device should drop before the first router")
	}
}

func TestTransientLoss(t *testing.T) {
	n, client, server := testNet(t)
	n.SetLoss(0.5, 42)
	lost, got := 0, 0
	for i := 0; i < 100; i++ {
		conn, err := n.Dial(client, server, 80)
		if err != nil {
			lost++
			continue
		}
		ds := conn.SendPayload(getRequest(openDomain), 64)
		if len(ds) == 0 {
			lost++
		} else {
			got++
		}
	}
	if lost == 0 || got == 0 {
		t.Errorf("loss model: lost=%d got=%d, want a mix at 50%% loss", lost, got)
	}
	// Disabling loss restores reliability.
	n.SetLoss(0, 0)
	if _, err := n.Dial(client, server, 80); err != nil {
		t.Errorf("dial with loss disabled: %v", err)
	}
}

func TestSegmentedRequestReassembledByServer(t *testing.T) {
	n, client, server := testNet(t)
	conn, err := n.Dial(client, server, 80)
	if err != nil {
		t.Fatal(err)
	}
	req := getRequest(openDomain)
	split := len(req) / 2
	ds := conn.SendSegments([][]byte{req[:split], req[split:]}, 64)
	var body string
	for _, d := range ds {
		if len(d.Packet.Payload) > 0 {
			body = string(d.Packet.Payload)
		}
	}
	if !strings.Contains(body, "200 OK") {
		t.Errorf("segmented request response = %q, want 200", body)
	}
}

func TestSegmentationEvadesPerPacketDevice(t *testing.T) {
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorCisco, []string{blockedDomain}, netip.Addr{})
	dev.ResidualWindow = 0
	n.AttachDevice("r2", "r3", dev)

	req := getRequest(blockedDomain)
	// Split inside the Host header so neither segment alone matches.
	split := len(req) - 10
	conn, _ := n.Dial(client, server, 80)
	ds := conn.SendSegments([][]byte{req[:split], req[split:]}, 64)
	got200 := false
	for _, d := range ds {
		if strings.Contains(string(d.Packet.Payload), "200 OK") {
			got200 = true
		}
	}
	if !got200 {
		t.Error("segmentation should evade a per-packet DPI engine")
	}

	// A reassembling engine (Fortinet profile) is not evaded.
	n2, client2, server2 := testNet(t)
	dev2 := middlebox.NewDevice("d", middlebox.VendorFortinet, []string{blockedDomain}, netip.Addr{})
	dev2.ResidualWindow = 0
	n2.AttachDevice("r2", "r3", dev2)
	conn2, _ := n2.Dial(client2, server2, 80)
	ds2 := conn2.SendSegments([][]byte{req[:split], req[split:]}, 64)
	blockedPage := false
	for _, d := range ds2 {
		if strings.Contains(string(d.Packet.Payload), "FortiGuard") {
			blockedPage = true
		}
	}
	if !blockedPage {
		t.Error("reassembling DPI engine should still catch the split request")
	}
}

func TestCaptureString(t *testing.T) {
	n, client, server := testNet(t)
	cap := n.StartCapture(client)
	conn, _ := n.Dial(client, server, 80)
	conn.SendPayload(getRequest(openDomain), 2)
	out := cap.String()
	if !strings.Contains(out, ">") || !strings.Contains(out, "<") {
		t.Errorf("capture dump missing directions:\n%s", out)
	}
	if !strings.Contains(out, "TimeExceeded") {
		t.Errorf("capture dump missing ICMP record:\n%s", out)
	}
}

func TestSendUDPWithoutResolver(t *testing.T) {
	n, client, server := testNet(t)
	// No resolver registered: DNS queries fall silent.
	ds := n.SendUDP(client, server, 53, []byte{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1}, 64)
	for _, d := range ds {
		if d.Packet.UDP != nil {
			t.Errorf("unexpected UDP answer from host without resolver: %s", d.Packet)
		}
	}
	// TTL-limited UDP still gets router ICMP.
	ds2 := n.SendUDP(client, server, 53, []byte("x"), 2)
	if len(ds2) != 1 || ds2[0].Packet.ICMP == nil {
		t.Error("UDP probe should elicit ICMP Time Exceeded at TTL 2")
	}
}

func TestGuardInspectsDNS(t *testing.T) {
	n, client, server := testNet(t)
	n.RegisterResolver("server", endpoint.NewResolver(map[string]netip.Addr{
		blockedDomain: netip.MustParseAddr("192.0.2.80"),
	}))
	guard := middlebox.NewDevice("g", middlebox.VendorUnknownDrop, []string{blockedDomain}, netip.Addr{})
	guard.ResidualWindow = 0
	n.AttachGuard("server", guard)

	q := dnsQueryBytes(blockedDomain)
	ds := n.SendUDP(client, server, 53, q, 64)
	for _, d := range ds {
		if d.Packet.UDP != nil {
			t.Errorf("guard should drop the blocked query: got %s", d.Packet)
		}
	}
}

// dnsQueryBytes builds a raw A query without importing dnsgram here.
func dnsQueryBytes(name string) []byte {
	out := []byte{0, 9, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			out = append(out, byte(i-start))
			out = append(out, name[start:i]...)
			start = i + 1
		}
	}
	out = append(out, 0, 0, 1, 0, 1)
	return out
}

func TestSegmentedDropMidSequence(t *testing.T) {
	// In-path drop device with reassembly: the second segment completes
	// the trigger and is dropped; the endpoint never gets a full request.
	n, client, server := testNet(t)
	dev := middlebox.NewDevice("d", middlebox.VendorFortinet, []string{blockedDomain}, netip.Addr{})
	dev.Action = middlebox.ActionDrop
	dev.ResidualWindow = 0
	n.AttachDevice("r2", "r3", dev)

	req := getRequest(blockedDomain)
	cut := len(req) - 10
	conn, _ := n.Dial(client, server, 80)
	ds := conn.SendSegments([][]byte{req[:cut], req[cut:]}, 64)
	for _, d := range ds {
		if strings.Contains(string(d.Packet.Payload), "200 OK") {
			t.Error("reassembling drop device should prevent the fetch")
		}
	}
}
