package simnet

import (
	"fmt"
	"strings"
	"time"

	"cendev/internal/netem"
	"cendev/internal/topology"
)

// Capture is the tcpdump substitute: a buffer of every packet a client host
// sent or received while capturing was enabled. CenTrace relies on captures
// to implement on-path detection — observing both an injected terminating
// response and the ICMP Time Exceeded from the next hop for the same probe
// (§4.1, Figure 2(D)).
type Capture struct {
	Records []CaptureRecord
}

// CaptureRecord is one captured packet.
type CaptureRecord struct {
	Packet   *netem.Packet
	At       time.Duration
	Outbound bool
}

// StartCapture begins capturing on a client host and returns the buffer.
// Any previous capture on the host is replaced.
func (n *Network) StartCapture(h *topology.Host) *Capture {
	c := &Capture{}
	n.captures[h.ID] = c
	return c
}

// StopCapture ends capturing on a client host.
func (n *Network) StopCapture(h *topology.Host) {
	delete(n.captures, h.ID)
}

// recordCapture appends to the host's capture buffer when one is active.
func (n *Network) recordCapture(h *topology.Host, pkt *netem.Packet, outbound bool) {
	c, ok := n.captures[h.ID]
	if !ok {
		return
	}
	c.Records = append(c.Records, CaptureRecord{Packet: pkt.Clone(), At: n.clock, Outbound: outbound})
}

// Inbound returns the captured inbound packets, in order.
func (c *Capture) Inbound() []*netem.Packet {
	var out []*netem.Packet
	for _, r := range c.Records {
		if !r.Outbound {
			out = append(out, r.Packet)
		}
	}
	return out
}

// String renders the capture as a tcpdump-flavoured text listing.
func (c *Capture) String() string {
	var b strings.Builder
	for _, r := range c.Records {
		dir := "<"
		if r.Outbound {
			dir = ">"
		}
		fmt.Fprintf(&b, "%12v %s %s\n", r.At, dir, r.Packet)
	}
	return b.String()
}
