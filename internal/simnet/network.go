// Package simnet is the deterministic virtual Internet the measurement
// tools run against. It forwards packets hop-by-hop over a topology.Graph,
// decrementing TTLs, generating ICMP Time Exceeded errors with per-router
// quoting behaviour, letting in-path and on-path censorship devices inspect
// and interfere with traffic, and delivering payloads to simulated endpoint
// servers. All timing is virtual: a Clock advances only when the code says
// so, which makes the paper's 120-second stateful-blocking waits free.
//
// Fidelity notes (see DESIGN.md §2 for the substitution table):
//   - Devices inspect client→endpoint traffic; most real censorship devices
//     consider both directions (§4.2), and all of the paper's triggers ride
//     in the forward direction, so reverse inspection is not modeled.
//   - Banner probes (ProbeService) resolve directly against the device or
//     server registry rather than walking packets; CenTrace-style TTL games
//     are irrelevant to banner grabs.
package simnet

import (
	"fmt"
	"net/netip"
	"time"

	"cendev/internal/endpoint"
	"cendev/internal/faults"
	"cendev/internal/geoip"
	"cendev/internal/middlebox"
	"cendev/internal/netem"
	"cendev/internal/obs"
	"cendev/internal/routedyn"
	"cendev/internal/topology"
)

// Network is the virtual Internet.
type Network struct {
	Graph *topology.Graph
	Geo   *geoip.Registry

	clock         time.Duration
	linkDevices   map[topology.LinkID][]*middlebox.Device
	guards        map[string]*middlebox.Device  // endpoint host ID → At-E device
	servers       map[string]*endpoint.Server   // endpoint host ID → server
	resolvers     map[string]*endpoint.Resolver // endpoint host ID → DNS resolver
	hostsByAddr   map[netip.Addr]*topology.Host
	devices       []*middlebox.Device
	devicesByAddr map[netip.Addr]*middlebox.Device // management address → device
	captures      map[string]*Capture              // client host ID → capture buffer
	httpStreams   map[flowKey][]byte               // per-flow HTTP request reassembly
	nextPort      uint16
	faults        *faults.Engine
	routes        *routedyn.Engine
	obs           *obs.Registry
	m             netMetrics

	// Hot-path scratch and caches. None of this state is observable in
	// results: it only removes redundant allocation and recomputation.
	// Clones start with all of it empty.
	//
	// deliveries is the Network-owned batch buffer Transmit appends into;
	// the returned []Delivery aliases it and is valid only until the next
	// Transmit on this Network. The *Packets delivered by the network's
	// own machinery (endpoint responses, router ICMP) are pooled and
	// likewise valid only until the next Transmit; callers that keep
	// packets across sends must Clone them. Retaining a delivered
	// *payload* is safe: payload bytes live in write-once render caches or
	// fresh per-call buffers, never in pooled packet storage.
	deliveries []Delivery
	// tcpPkts/udpPkts/icmpPkts pool the packets the network itself
	// delivers, reclaimed wholesale at the top of every Transmit. The
	// pools are segregated by layer so each recycled packet keeps reusing
	// its own TCP/UDP/ICMP sub-struct and quote buffer.
	tcpPkts  pktPool
	udpPkts  pktPool
	icmpPkts pktPool
	// workPkt is the scratch working packet that crosses the hops in
	// Transmit, refilled per call via CloneInto; it owns all its buffers.
	workPkt netem.Packet
	// pathBuf backs path computation when route-flap salt makes flow
	// plans uncacheable.
	pathBuf []*topology.Router
	// respBuf backs endpointRespond's transient response list.
	respBuf []*netem.Packet
	// txPkt is the scratch packet Conn's sequential sends (SYN, ACK,
	// payload, FIN) are built in. Transmit deep-copies its input into
	// workPkt immediately and never retains it, so the next send may
	// overwrite the scratch freely.
	txPkt netem.Packet
	// txUDP is the equivalent scratch for SendUDP probes, kept separate so
	// alternating TCP and UDP sends don't churn each other's layer struct.
	txUDP netem.Packet
	// freeConn is a one-deep pool of closed connections: probes open one
	// connection at a time, so Dial/Close recycle a single Conn object.
	freeConn *Conn
	// flowPlans caches the forwarding plan (path plus per-link device
	// lists) for single-path destinations, keyed by host identity with a
	// zero hash — the path is hash-independent there, so one entry serves
	// every flow of the pair. Only populated while no fault engine is
	// installed (route-flap salt varies with virtual time); ECMP
	// destinations are walked per transmit instead (see Transmit).
	flowPlans map[planKey]*flowPlan
	// devsPlans memoizes the per-link device lists along a concrete
	// router path, keyed by the path's identity bytes (source host ID
	// plus NUL-separated router IDs, built in devsKeyBuf). Many flows
	// share the same path, so plan misses resolve device lists here
	// instead of hashing the link map per hop. planGen records the Graph
	// generation both caches were computed at; attaching devices drops
	// them.
	devsPlans  map[string][][]*middlebox.Device
	devsKeyBuf []byte
	planGen    uint64
	// httpCache/tlsCache memoize endpoint response rendering per server
	// and raw request. The handlers are pure functions of (server config,
	// request bytes), so replaying the rendered bytes is observationally
	// identical; entries are write-once and never mutated.
	httpCache map[*endpoint.Server]map[string][]byte
	tlsCache  map[*endpoint.Server]map[string][]byte
}

// pktPool recycles delivery packets. All outstanding packets are
// reclaimed at once by resetting idx; a packet stays alive (and untouched)
// until the pool wraps around on a later Transmit.
type pktPool struct {
	pkts []*netem.Packet
	idx  int
}

// get returns the next pooled packet, growing the pool on demand. The
// caller refills it via the netem Fill* helpers, which reuse the packet's
// layer structs and buffers.
func (pp *pktPool) get() *netem.Packet {
	if pp.idx < len(pp.pkts) {
		p := pp.pkts[pp.idx]
		pp.idx++
		return p
	}
	p := &netem.Packet{}
	pp.pkts = append(pp.pkts, p)
	pp.idx++
	return p
}

// flowKey identifies a 5-tuple flow with a comparable struct, replacing
// the fmt.Sprintf string keys that used to dominate map hashing.
type flowKey struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
	proto            uint8
}

// planKey identifies a flow for plan caching. The hosts are compared by
// pointer: callers pass the same *Host values for the life of a network,
// and a hash collision between two distinct 5-tuples of the same host
// pair cannot change the plan (the path is a function of src, dst, and
// flow hash only).
type planKey struct {
	src, dst *topology.Host
	hash     uint64
}

// flowPlan is a cached forwarding plan: the router path a flow takes and
// the device list on each link. A nil plan (cached) means unreachable.
type flowPlan struct {
	path []*topology.Router
	devs [][]*middlebox.Device
}

// maxFlowPlans bounds the plan cache; campaigns allocate a fresh source
// port per connection, so keys accumulate until the map is recycled.
const maxFlowPlans = 4096

// maxRenderCache bounds each server's rendered-response memo.
const maxRenderCache = 1024

// netMetrics are the pre-resolved counters the packet-forwarding hot path
// increments. The zero value (all nil) is the uninstrumented no-op path:
// each site costs one pointer test.
type netMetrics struct {
	packets    *obs.Counter // simnet_packets_forwarded_total
	deliveries *obs.Counter // simnet_deliveries_total
	icmp       *obs.Counter // simnet_icmp_emitted_total
	injections *obs.Counter // simnet_device_injections_total
	devDrops   *obs.Counter // simnet_device_drops_total
	ttlExpired *obs.Counter // simnet_ttl_expired_total
}

// New creates a network over a topology graph and populates the geo
// registry from its ASes.
func New(g *topology.Graph) *Network {
	n := &Network{
		Graph:         g,
		Geo:           geoip.NewRegistry(),
		linkDevices:   make(map[topology.LinkID][]*middlebox.Device),
		guards:        make(map[string]*middlebox.Device),
		servers:       make(map[string]*endpoint.Server),
		resolvers:     make(map[string]*endpoint.Resolver),
		hostsByAddr:   make(map[netip.Addr]*topology.Host),
		devicesByAddr: make(map[netip.Addr]*middlebox.Device),
		captures:      make(map[string]*Capture),
		nextPort:      33000,
	}
	for _, as := range g.ASes() {
		n.Geo.Add(as.Prefix, geoip.Info{ASN: as.ASN, Name: as.Name, Country: as.Country})
	}
	for _, h := range g.Hosts() {
		n.hostsByAddr[h.Addr] = h
	}
	return n
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.clock }

// SetFaults installs a composable impairment engine. The network consults
// it on every forward traversal, every link crossing, every response
// delivery, and every ICMP emission. Pass nil to restore a perfect
// network. See the faults package for the available profiles. When the
// network is instrumented (SetObs), the engine's per-profile decision
// counters are bound to the same registry.
func (n *Network) SetFaults(e *faults.Engine) {
	n.faults = e
	if n.obs != nil {
		e.Instrument(n.obs)
	}
}

// SetObs installs a metrics registry: the forwarding hot path counts
// packets, deliveries, ICMP emissions, device injections/drops, and TTL
// expiries into it, and any installed (or later-installed) fault engine
// counts its per-profile decisions. Clones share the registry, so a
// campaign's worker pools aggregate into one set of series. Pass nil to
// uninstrument.
func (n *Network) SetObs(r *obs.Registry) {
	n.obs = r
	if r == nil {
		n.m = netMetrics{}
		return
	}
	n.m = netMetrics{
		packets:    r.Counter("simnet_packets_forwarded_total"),
		deliveries: r.Counter("simnet_deliveries_total"),
		icmp:       r.Counter("simnet_icmp_emitted_total"),
		injections: r.Counter("simnet_device_injections_total"),
		devDrops:   r.Counter("simnet_device_drops_total"),
		ttlExpired: r.Counter("simnet_ttl_expired_total"),
	}
	if n.faults != nil {
		n.faults.Instrument(r)
	}
}

// Obs returns the installed metrics registry, or nil.
func (n *Network) Obs() *obs.Registry { return n.obs }

// Faults returns the installed impairment engine, or nil.
func (n *Network) Faults() *faults.Engine { return n.faults }

// SetLoss enables random transient packet loss at the given per-packet
// rate, driven by a seeded generator so runs stay reproducible. Loss
// applies independently to the forward packet and to each response.
// CenTrace's retry logic (§4.1: "we retry the request up to three times to
// account for transient network failures") exists for exactly this.
//
// SetLoss is a convenience shim over SetFaults: it replaces any installed
// engine with one carrying a single global uniform-loss impairment. Rate
// zero removes the engine entirely.
func (n *Network) SetLoss(rate float64, seed int64) {
	if rate <= 0 {
		n.faults = nil
		return
	}
	n.faults = faults.NewEngine(seed).AddGlobal(faults.UniformLoss(rate))
}

// routeSalt exposes the engine's per-router ECMP perturbation to path
// computation, or nil when no engine (or no flaps) can perturb routes.
func (n *Network) routeSalt() func(string) uint64 {
	if n.faults == nil {
		return nil
	}
	return func(routerID string) uint64 { return n.faults.RouteSalt(routerID, n.clock) }
}

// SetRoutes installs a route-dynamics engine: from now on, forwarding
// consults the engine's active epoch for the routing graph and ECMP salt
// at every transmit. The engine must be bound to this network's graph
// (routedyn.NewEngine(seed, n.Graph)); Clone rebinds it automatically.
// Pass nil to restore static routing.
func (n *Network) SetRoutes(e *routedyn.Engine) { n.routes = e }

// Routes returns the installed route-dynamics engine, or nil.
func (n *Network) Routes() *routedyn.Engine { return n.routes }

// activeRouting resolves what forwarding uses at the current virtual
// time: the active route-dynamics epoch's snapshot graph (the base graph
// when no engine is installed or the schedule is still in epoch 0) and
// the effective ECMP salt — the epoch's re-hash salt XOR-combined with
// the fault engine's flap salt, either alone, or nil when neither
// perturbs routes.
func (n *Network) activeRouting() (*topology.Graph, func(string) uint64) {
	fsalt := n.routeSalt()
	if n.routes == nil {
		return n.Graph, fsalt
	}
	ep := n.routes.EpochAt(n.clock)
	esalt := ep.SaltFunc()
	switch {
	case esalt == nil:
		return ep.Graph(), fsalt
	case fsalt == nil:
		return ep.Graph(), esalt
	default:
		return ep.Graph(), func(routerID string) uint64 { return fsalt(routerID) ^ esalt(routerID) }
	}
}

// FlowPath returns the router path a TCP flow with the given ports takes
// from src to dst at the current virtual time — the same resolution
// Transmit performs (active epoch snapshot plus flap salts) — or nil when
// dst is unreachable right now. The tomography collector uses this as the
// simulation's stand-in for traceroute-derived path knowledge: it records
// which links a probe's verdict implicates.
func (n *Network) FlowPath(src, dst *topology.Host, srcPort, dstPort uint16) []*topology.Router {
	g, salt := n.activeRouting()
	flowHash := topology.FlowHash(src.Addr, dst.Addr, srcPort, dstPort, uint8(netem.ProtoTCP))
	return g.PathForFlowSalted(g.Host(src.ID), g.Host(dst.ID), flowHash, salt)
}

// Sleep advances the virtual clock.
func (n *Network) Sleep(d time.Duration) { n.clock += d }

// AttachDevice places a censorship device on the directed link from router
// `from` to router `to`: it inspects every client→endpoint packet crossing
// the link in that direction.
func (n *Network) AttachDevice(from, to string, dev *middlebox.Device) {
	if n.Graph.Router(from) == nil || n.Graph.Router(to) == nil {
		panic(fmt.Sprintf("simnet: AttachDevice on unknown link %s→%s", from, to))
	}
	id := topology.LinkID{From: from, To: to}
	n.linkDevices[id] = append(n.linkDevices[id], dev)
	n.indexDevice(dev)
}

// dropPlans invalidates cached forwarding plans after anything that could
// change what a packet meets along its path.
func (n *Network) dropPlans() {
	n.flowPlans = nil
	n.devsPlans = nil
}

// ensurePlanCaches drops both plan caches together when the graph's
// structural generation moved, so neither can serve entries computed
// against an older topology.
func (n *Network) ensurePlanCaches() {
	if gen := n.Graph.Gen(); n.planGen != gen {
		n.flowPlans = nil
		n.devsPlans = nil
		n.planGen = gen
	}
}

// flowPlan returns the cached forwarding plan for a flow, computing it on
// a miss. A nil return means the hosts are not connected (also cached).
// Callers must only use this when no route salt is in effect.
func (n *Network) flowPlan(key planKey, src, dst *topology.Host) *flowPlan {
	n.ensurePlanCaches()
	if n.flowPlans == nil || len(n.flowPlans) > maxFlowPlans {
		n.flowPlans = make(map[planKey]*flowPlan, 64)
	}
	if p, ok := n.flowPlans[key]; ok {
		return p
	}
	walked := n.Graph.AppendPathForFlow(n.pathBuf[:0], src, dst, key.hash, nil)
	if walked == nil {
		n.flowPlans[key] = nil
		return nil
	}
	n.pathBuf = walked
	p := &flowPlan{
		path: append([]*topology.Router(nil), walked...),
		devs: n.linkDevsForPath(src, walked),
	}
	n.flowPlans[key] = p
	return p
}

// linkDevsForPath returns the device list on each link of a concrete
// router path from src, memoized by the path's identity. Distinct paths
// per (src, dst) pair are bounded by the ECMP fan-out, so the memo stays
// tiny and the per-hop link map lookups are paid once per path.
func (n *Network) linkDevsForPath(src *topology.Host, path []*topology.Router) [][]*middlebox.Device {
	k := append(n.devsKeyBuf[:0], src.ID...)
	for _, r := range path {
		k = append(k, 0)
		k = append(k, r.ID...)
	}
	n.devsKeyBuf = k
	n.ensurePlanCaches()
	if n.devsPlans == nil || len(n.devsPlans) > maxFlowPlans {
		n.devsPlans = make(map[string][][]*middlebox.Device, 16)
	}
	if devs, ok := n.devsPlans[string(k)]; ok {
		return devs
	}
	devs := make([][]*middlebox.Device, len(path))
	prev := "@" + src.ID
	for i, r := range path {
		devs[i] = n.linkDevices[topology.LinkID{From: prev, To: r.ID}]
		prev = r.ID
	}
	n.devsPlans[string(k)] = devs
	return devs
}

// AttachGuard places a device directly in front of an endpoint host — the
// NAT/firewall configuration behind the paper's "At E" blocking class
// (§4.3: 16.19% of traceroutes terminate at the endpoint IP itself).
func (n *Network) AttachGuard(hostID string, dev *middlebox.Device) {
	if n.Graph.Host(hostID) == nil {
		panic("simnet: AttachGuard on unknown host " + hostID)
	}
	n.guards[hostID] = dev
	n.indexDevice(dev)
}

// indexDevice records a device in the flat list and, when it exposes a
// valid management address, in the address index DeviceByAddr serves from.
// The first device registered at an address wins, matching the behaviour
// of the linear scan this index replaced.
func (n *Network) indexDevice(dev *middlebox.Device) {
	n.dropPlans()
	n.devices = append(n.devices, dev)
	if dev.Addr.IsValid() {
		if _, taken := n.devicesByAddr[dev.Addr]; !taken {
			n.devicesByAddr[dev.Addr] = dev
		}
	}
}

// RegisterServer installs an endpoint server on a host. Hosts added to the
// graph after New are (re-)indexed here.
func (n *Network) RegisterServer(hostID string, s *endpoint.Server) {
	h := n.Graph.Host(hostID)
	if h == nil {
		panic("simnet: RegisterServer on unknown host " + hostID)
	}
	n.hostsByAddr[h.Addr] = h
	n.servers[hostID] = s
}

// Server returns the server registered on a host, or nil.
func (n *Network) Server(hostID string) *endpoint.Server { return n.servers[hostID] }

// RegisterResolver installs a DNS resolver on a host (UDP port 53), for
// the DNS measurement extension.
func (n *Network) RegisterResolver(hostID string, r *endpoint.Resolver) {
	h := n.Graph.Host(hostID)
	if h == nil {
		panic("simnet: RegisterResolver on unknown host " + hostID)
	}
	n.hostsByAddr[h.Addr] = h
	n.resolvers[hostID] = r
}

// Resolver returns the resolver registered on a host, or nil.
func (n *Network) Resolver(hostID string) *endpoint.Resolver { return n.resolvers[hostID] }

// Devices returns every device attached anywhere in the network.
func (n *Network) Devices() []*middlebox.Device { return n.devices }

// HostByAddr resolves an address to its host.
func (n *Network) HostByAddr(addr netip.Addr) *topology.Host { return n.hostsByAddr[addr] }

// ResetDeviceState clears stateful flow tracking on every device, for use
// between independent experiments.
func (n *Network) ResetDeviceState() {
	for _, d := range n.devices {
		d.ResetState()
	}
}

// AllocPort returns a fresh ephemeral source port (deterministic sequence).
func (n *Network) AllocPort() uint16 {
	p := n.nextPort
	n.nextPort++
	if n.nextPort < 33000 {
		n.nextPort = 33000
	}
	return p
}

// DeviceByAddr returns the device with the given management address, if
// any. Served from an index maintained by the attach methods, so lookups
// stay O(1) however many devices a country-scale scenario deploys.
func (n *Network) DeviceByAddr(addr netip.Addr) *middlebox.Device {
	if !addr.IsValid() {
		return nil
	}
	return n.devicesByAddr[addr]
}
