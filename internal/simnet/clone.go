package simnet

import (
	"net/netip"
	"time"

	"cendev/internal/middlebox"
	"cendev/internal/topology"
)

// Clone returns an independent copy of the network for a parallel
// measurement worker. The topology graph, every attached device (with its
// flow state), and the fault engine are deep-copied; immutable
// configuration — endpoint servers, resolvers, and the geo registry — is
// shared, with the registry frozen first so concurrent lookups are pure
// reads. Clones must be created serially (Clone mutates the shared
// registry via Freeze) before goroutines fan out; after that, each clone
// is free to run without synchronization.
func (n *Network) Clone() *Network {
	n.Geo.Freeze()

	c := &Network{
		Graph:         n.Graph.Clone(),
		Geo:           n.Geo,
		clock:         n.clock,
		linkDevices:   make(map[topology.LinkID][]*middlebox.Device, len(n.linkDevices)),
		guards:        make(map[string]*middlebox.Device, len(n.guards)),
		servers:       n.servers,
		resolvers:     n.resolvers,
		hostsByAddr:   make(map[netip.Addr]*topology.Host, len(n.hostsByAddr)),
		devicesByAddr: make(map[netip.Addr]*middlebox.Device, len(n.devicesByAddr)),
		captures:      make(map[string]*Capture),
		nextPort:      n.nextPort,
		// The registry and its pre-resolved counters are shared: metrics
		// are campaign-scoped aggregates with atomic series, so worker
		// clones all account into the same snapshot.
		obs: n.obs,
		m:   n.m,
	}

	// Clone devices once, in registration order, then rebuild every index
	// through the alias map so a device attached at several points stays a
	// single object in the clone too.
	alias := make(map[*middlebox.Device]*middlebox.Device, len(n.devices))
	c.devices = make([]*middlebox.Device, 0, len(n.devices))
	for _, d := range n.devices {
		cp := d.Clone()
		alias[d] = cp
		c.devices = append(c.devices, cp)
	}
	for id, devs := range n.linkDevices {
		cps := make([]*middlebox.Device, 0, len(devs))
		for _, d := range devs {
			cps = append(cps, alias[d])
		}
		c.linkDevices[id] = cps
	}
	for hostID, d := range n.guards {
		c.guards[hostID] = alias[d]
	}
	for addr, d := range n.devicesByAddr {
		c.devicesByAddr[addr] = alias[d]
	}

	// Index hosts from the cloned graph so walk code that resolves an
	// address to a host never reaches back into the original's topology.
	for _, h := range c.Graph.Hosts() {
		c.hostsByAddr[h.Addr] = h
	}

	if len(n.httpStreams) > 0 {
		c.httpStreams = make(map[flowKey][]byte, len(n.httpStreams))
		for k, v := range n.httpStreams {
			c.httpStreams[k] = append([]byte(nil), v...)
		}
	}

	if n.faults != nil {
		c.faults = n.faults.Clone()
	}
	if n.routes != nil {
		// Rebind the route schedule to the cloned graph; epoch snapshots
		// rebuild lazily against it, a pure function of graph + schedule +
		// seed, so every clone sees identical path history.
		c.routes = n.routes.Clone(c.Graph)
	}
	return c
}

// BeginMeasurement rewinds the network to a canonical per-target state:
// device flow tracking cleared, HTTP reassembly buffers dropped, the
// virtual clock set to the pass start, and the ephemeral port sequence
// reset. Workers call this before each target so results are independent
// of which worker — and in which order — measured it.
func (n *Network) BeginMeasurement(clock time.Duration, port uint16) {
	n.ResetDeviceState()
	n.httpStreams = nil
	n.clock = clock
	n.nextPort = port
}

// PortSeq returns the next ephemeral port AllocPort would hand out,
// without consuming it — the canonical port-sequence origin clones reset
// to via BeginMeasurement.
func (n *Network) PortSeq() uint16 { return n.nextPort }
