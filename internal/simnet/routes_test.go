package simnet

import (
	"testing"
	"time"

	"cendev/internal/netem"
	"cendev/internal/routedyn"
	"cendev/internal/topology"
)

// diamondNet builds the 4-router diamond with a client at r1 and server
// at r3.
func diamondNet(t *testing.T) (*Network, *topology.Host, *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	as := g.AddAS(1, "A", "US")
	r1 := g.AddRouter("r1", as)
	g.AddRouter("r2a", as)
	g.AddRouter("r2b", as)
	r3 := g.AddRouter("r3", as)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	client := g.AddHost("c", as, r1)
	server := g.AddHost("s", as, r3)
	return New(g), client, server
}

// branchAt returns which branch router answered a TTL-2 probe right now.
func branchAt(t *testing.T, n *Network, client, server *topology.Host) string {
	t.Helper()
	pkt := netem.NewUDPPacket(client.Addr, server.Addr, 40000, 9, nil)
	pkt.IP.TTL = 2
	ds := n.Transmit(pkt.Clone(), client, server)
	if len(ds) != 1 {
		t.Fatalf("TTL-2 probe got %d deliveries, want 1 ICMP", len(ds))
	}
	return ds[0].Packet.IP.Src.String()
}

func TestRoutesWithdrawalForcesBranch(t *testing.T) {
	n, client, server := diamondNet(t)
	eng := routedyn.NewEngine(9, n.Graph)
	eng.MustSchedule(routedyn.Event{At: 10 * time.Second, Kind: routedyn.Withdraw, From: "r1", To: "r2a"})
	eng.MustSchedule(routedyn.Event{At: 20 * time.Second, Kind: routedyn.Announce, From: "r1", To: "r2a"})
	n.SetRoutes(eng)

	r2a := n.Graph.Router("r2a").Addr.String()
	r2b := n.Graph.Router("r2b").Addr.String()

	// Epoch 0: canonical path, identical to a network with no engine.
	before := branchAt(t, n, client, server)

	// Epoch 1: r1-r2a withdrawn; every flow must cross r2b.
	n.Sleep(10 * time.Second)
	for i := 0; i < 8; i++ {
		pkt := netem.NewUDPPacket(client.Addr, server.Addr, uint16(40000+i), 9, nil)
		pkt.IP.TTL = 2
		ds := n.Transmit(pkt.Clone(), client, server)
		if len(ds) != 1 {
			t.Fatalf("flow %d: %d deliveries, want 1", i, len(ds))
		}
		if got := ds[0].Packet.IP.Src.String(); got != r2b {
			t.Fatalf("flow %d crossed %s during withdrawal, want %s", i, got, r2b)
		}
	}

	// Epoch 2: link re-announced; both branches are reachable again and the
	// epoch re-hash spreads flows across them.
	n.Sleep(10 * time.Second)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		pkt := netem.NewUDPPacket(client.Addr, server.Addr, uint16(41000+i), 9, nil)
		pkt.IP.TTL = 2
		ds := n.Transmit(pkt.Clone(), client, server)
		if len(ds) == 1 {
			seen[ds[0].Packet.IP.Src.String()] = true
		}
	}
	if !seen[r2a] || !seen[r2b] {
		t.Fatalf("post-announce flows crossed %v, want both %s and %s (before: %s)", seen, r2a, r2b, before)
	}
}

func TestRoutesRehashChurnsPathsWithoutLinkChange(t *testing.T) {
	n, client, server := diamondNet(t)
	eng := routedyn.NewEngine(5, n.Graph)
	eng.MustSchedule(routedyn.Event{At: time.Minute, Kind: routedyn.Rehash})
	n.SetRoutes(eng)

	first := branchAt(t, n, client, server)
	// Across rehash epochs the same flow may flip branches; with one rehash
	// and a handful of flows, at least one flow must land differently than
	// its epoch-0 choice (seed chosen so it does).
	n.Sleep(time.Minute)
	flipped := false
	for i := 0; i < 16; i++ {
		pkt := netem.NewUDPPacket(client.Addr, server.Addr, 40000, 9, nil)
		pkt.IP.TTL = 2
		ds := n.Transmit(pkt.Clone(), client, server)
		if len(ds) == 1 && ds[0].Packet.IP.Src.String() != first {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("rehash epoch did not change the flow's ECMP choice")
	}
}

func TestRoutesCloneByteIdentical(t *testing.T) {
	n, client, server := diamondNet(t)
	eng := routedyn.NewEngine(3, n.Graph)
	if err := eng.FlapLink("r1", "r2a", 5*time.Second, 10*time.Second, 3); err != nil {
		t.Fatal(err)
	}
	n.SetRoutes(eng)

	c := n.Clone()
	if c.Routes() == nil {
		t.Fatal("clone dropped the route-dynamics engine")
	}
	cclient, cserver := c.Graph.Host(client.ID), c.Graph.Host(server.ID)

	for step := 0; step < 12; step++ {
		pkt := netem.NewUDPPacket(client.Addr, server.Addr, uint16(40000+step), 9, nil)
		pkt.IP.TTL = 2
		ds1 := n.Transmit(pkt.Clone(), client, server)
		pkt2 := netem.NewUDPPacket(cclient.Addr, cserver.Addr, uint16(40000+step), 9, nil)
		pkt2.IP.TTL = 2
		ds2 := c.Transmit(pkt2.Clone(), cclient, cserver)
		if len(ds1) != len(ds2) {
			t.Fatalf("step %d: delivery counts diverge (%d vs %d)", step, len(ds1), len(ds2))
		}
		for k := range ds1 {
			if ds1[k].Packet.IP.Src != ds2[k].Packet.IP.Src {
				t.Fatalf("step %d delivery %d: sources diverge (%s vs %s)",
					step, k, ds1[k].Packet.IP.Src, ds2[k].Packet.IP.Src)
			}
		}
		n.Sleep(2 * time.Second)
		c.Sleep(2 * time.Second)
	}
}

func TestFlowPathMatchesTransmit(t *testing.T) {
	n, client, server := diamondNet(t)
	eng := routedyn.NewEngine(11, n.Graph)
	eng.MustSchedule(routedyn.Event{At: 30 * time.Second, Kind: routedyn.Rehash})
	n.SetRoutes(eng)

	for _, sleep := range []time.Duration{0, 35 * time.Second} {
		n.Sleep(sleep)
		for i := 0; i < 8; i++ {
			srcPort := uint16(42000 + i)
			want := n.FlowPath(client, server, srcPort, 80)
			if len(want) == 0 {
				t.Fatal("FlowPath found no route")
			}
			// FlowPath hashes proto TCP, so probe with a TTL-limited SYN of
			// the same 5-tuple; the branch router is path hop 2 (index 1).
			tcp := netem.NewTCPPacket(client.Addr, server.Addr, srcPort, 80, netem.TCPSyn, 1, 0, nil)
			tcp.IP.TTL = 2
			ds := n.Transmit(tcp, client, server)
			if len(ds) != 1 {
				t.Fatalf("probe got %d deliveries, want 1", len(ds))
			}
			if got := ds[0].Packet.IP.Src; got != want[1].Addr {
				t.Fatalf("flow %d: Transmit crossed %s, FlowPath predicts %s", i, got, want[1].Addr)
			}
		}
	}
}
