package simnet

import (
	"testing"
	"time"

	"cendev/internal/faults"
	"cendev/internal/netem"
	"cendev/internal/topology"
)

// icmpProbe sends one TTL-limited UDP probe (no handshake, so it works
// across dead links) and returns its deliveries.
func icmpProbe(t *testing.T, n *Network, client, server *topology.Host, ttl uint8) []Delivery {
	t.Helper()
	return n.SendUDP(client, server, 9, nil, ttl)
}

func TestFaultsICMPSilencedRouter(t *testing.T) {
	n, client, server := testNet(t)
	n.SetFaults(faults.NewEngine(1).SilenceICMP("r2"))
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 0 {
		t.Errorf("silenced r2 answered: %v", ds)
	}
	// Other routers are unaffected.
	ds := icmpProbe(t, n, client, server, 3)
	if len(ds) != 1 || ds[0].Packet.ICMP == nil {
		t.Fatalf("r3 should still answer: %v", ds)
	}
}

func TestFaultsICMPRateLimitRefills(t *testing.T) {
	n, client, server := testNet(t)
	n.SetFaults(faults.NewEngine(1).LimitICMP("r2", 1, 1.0/60))
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 1 {
		t.Fatalf("first expiry should spend the token: %v", ds)
	}
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 0 {
		t.Errorf("bucket empty, yet ICMP arrived: %v", ds)
	}
	n.Sleep(2 * time.Minute) // refill
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 1 {
		t.Errorf("refilled bucket should answer again: %v", ds)
	}
}

func TestFaultsBlackholeKillsAndRecovers(t *testing.T) {
	n, client, server := testNet(t)
	n.SetFaults(faults.NewEngine(1).AddLink("r2", "r3",
		faults.Blackhole(0, 10*time.Minute)))
	// Inside the window: the link is dead, but hops before it still answer.
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 1 {
		t.Fatalf("r2 sits before the dead link: %v", ds)
	}
	if ds := icmpProbe(t, n, client, server, 3); len(ds) != 0 {
		t.Errorf("probe crossed a blackholed link: %v", ds)
	}
	if _, err := n.Dial(client, server, 80); err != ErrConnTimeout {
		t.Errorf("dial across blackhole: err = %v, want timeout", err)
	}
	// After the window the path heals.
	n.Sleep(11 * time.Minute)
	if ds := icmpProbe(t, n, client, server, 3); len(ds) != 1 {
		t.Errorf("link should heal after the window: %v", ds)
	}
}

func TestFaultsBlackholeKillsReturnPath(t *testing.T) {
	// A response crossing a dead link on the way back dies too, even though
	// the forward probe passed before the window opened... here we place the
	// window on a link the forward packet never crosses again but the ICMP
	// must: impossible on a symmetric path, so instead assert symmetry — the
	// ICMP born at r4 dies because its return crosses r2—r3.
	n, client, server := testNet(t)
	n.SetFaults(faults.NewEngine(1).AddLink("r3", "r4", faults.Blackhole(0, time.Hour)))
	// TTL 3 expires at r3: forward crossings are @client—r1, r1—r2, r2—r3 —
	// all alive — and the ICMP's return path crosses the same live links.
	if ds := icmpProbe(t, n, client, server, 3); len(ds) != 1 {
		t.Fatalf("r3 reachable without touching the dead link: %v", ds)
	}
	// TTL 4 would expire at r4, but the probe dies crossing r3—r4.
	if ds := icmpProbe(t, n, client, server, 4); len(ds) != 0 {
		t.Errorf("probe crossed the dead r3—r4 link: %v", ds)
	}
}

func TestFaultsDuplicationDeliversTwice(t *testing.T) {
	n, client, server := testNet(t)
	n.SetFaults(faults.NewEngine(3).AddGlobal(faults.Duplication(1.0)))
	ds := icmpProbe(t, n, client, server, 2)
	if len(ds) != 2 {
		t.Fatalf("deliveries = %d, want duplicated pair", len(ds))
	}
	if ds[0].Packet == ds[1].Packet {
		t.Error("duplicate shares the original's packet instead of a clone")
	}
	if ds[0].Packet.IP.Src != ds[1].Packet.IP.Src || ds[0].At != ds[1].At {
		t.Error("duplicate should mirror the original delivery")
	}
}

func TestFaultsRouteFlapChurnsPaths(t *testing.T) {
	// Diamond: r1 fans out to r2a/r2b, both reach r3. With a flapping r1 the
	// same flow's path changes across epochs.
	g := topology.NewGraph()
	as := g.AddAS(1, "A", "US")
	r1 := g.AddRouter("r1", as)
	g.AddRouter("r2a", as)
	g.AddRouter("r2b", as)
	r3 := g.AddRouter("r3", as)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	client := g.AddHost("c", as, r1)
	server := g.AddHost("s", as, r3)
	n := New(g)
	n.SetFaults(faults.NewEngine(5).FlapRoutes("r1", time.Minute))

	seen := map[string]bool{}
	pkt := netem.NewUDPPacket(client.Addr, server.Addr, 40000, 9, nil)
	pkt.IP.TTL = 2 // expires at the branch router
	for epoch := 0; epoch < 8; epoch++ {
		ds := n.Transmit(pkt.Clone(), client, server)
		if len(ds) == 1 {
			seen[ds[0].Packet.IP.Src.String()] = true
		}
		n.Sleep(time.Minute)
	}
	if len(seen) != 2 {
		t.Errorf("branch routers seen = %v, want churn across both", seen)
	}
}

func TestSetLossShimAndSetFaultsNilRestore(t *testing.T) {
	n, client, server := testNet(t)
	n.SetLoss(1.0, 1)
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 0 {
		t.Errorf("total loss, yet a delivery arrived: %v", ds)
	}
	if n.Faults() == nil {
		t.Error("SetLoss should install an engine")
	}
	n.SetLoss(0, 1)
	if n.Faults() != nil {
		t.Error("SetLoss(0) should remove the engine")
	}
	n.SetFaults(faults.NewEngine(1).AddGlobal(faults.UniformLoss(1.0)))
	n.SetFaults(nil)
	if ds := icmpProbe(t, n, client, server, 2); len(ds) != 1 {
		t.Errorf("nil engine should restore a perfect network: %v", ds)
	}
}
