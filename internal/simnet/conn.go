package simnet

import (
	"errors"

	"cendev/internal/netem"
	"cendev/internal/topology"
)

// Conn is a simulated TCP connection from a client host to an endpoint
// host. CenTrace and CenFuzz open a fresh connection per probe (§4.1:
// "CenTrace performs each TTL-limited probe over a new TCP connection").
type Conn struct {
	net      *Network
	client   *topology.Host
	endpoint *topology.Host
	SrcPort  uint16
	DstPort  uint16
	seq, ack uint32
	open     bool
}

// ErrConnRefused is returned by Dial when the endpoint resets the SYN.
var ErrConnRefused = errors.New("simnet: connection refused")

// ErrConnTimeout is returned by Dial when the handshake receives no answer
// (e.g. residual stateful blocking is dropping all packets between the
// hosts).
var ErrConnTimeout = errors.New("simnet: connection timed out")

// Dial performs a TCP handshake at full TTL and returns an established
// connection. The SYN carries no payload, so content-triggered devices let
// it pass — but devices in a residual blocking state will drop it, making
// the dial time out just like in the field.
func (n *Network) Dial(client, ep *topology.Host, dstPort uint16) (*Conn, error) {
	c := &Conn{
		net: n, client: client, endpoint: ep,
		SrcPort: n.AllocPort(), DstPort: dstPort,
		seq: 1,
	}
	syn := netem.NewTCPPacket(client.Addr, ep.Addr, c.SrcPort, dstPort, netem.TCPSyn, c.seq, 0, nil)
	ds := n.Transmit(syn, client, ep)
	for _, d := range ds {
		if d.Packet.TCP == nil || d.Packet.IP.Src != ep.Addr {
			continue
		}
		t := d.Packet.TCP
		if t.Flags&netem.TCPRst != 0 {
			return nil, ErrConnRefused
		}
		if t.Flags&netem.TCPSyn != 0 && t.Flags&netem.TCPAck != 0 {
			c.seq++
			c.ack = t.Seq + 1
			c.open = true
			// Final ACK of the handshake (fire and forget).
			ackPkt := netem.NewTCPPacket(client.Addr, ep.Addr, c.SrcPort, dstPort, netem.TCPAck, c.seq, c.ack, nil)
			n.Transmit(ackPkt, client, ep)
			return c, nil
		}
	}
	return nil, ErrConnTimeout
}

// SendPayload transmits application payload on the connection with the
// given IP TTL and returns every packet the client receives in response.
// This is the TTL-limited probe primitive CenTrace is built on: the
// handshake ran at full TTL, only the payload packet is TTL-limited.
func (c *Conn) SendPayload(payload []byte, ttl uint8) []Delivery {
	pkt := netem.NewTCPPacket(c.client.Addr, c.endpoint.Addr, c.SrcPort, c.DstPort,
		netem.TCPPsh|netem.TCPAck, c.seq, c.ack, payload)
	pkt.IP.TTL = ttl
	pkt.IP.ID = uint16(c.seq) // deterministic, varies per segment
	ds := c.net.Transmit(pkt, c.client, c.endpoint)
	c.seq += uint32(len(payload))
	return ds
}

// SendSegments transmits application payload split across multiple TCP
// segments on the connection, all at the given TTL, and returns every
// packet received across the sends. Splitting the censorship trigger
// across segments evades DPI engines that inspect packets individually
// (the Geneva/SymTCP evasion class).
func (c *Conn) SendSegments(segments [][]byte, ttl uint8) []Delivery {
	var out []Delivery
	for _, seg := range segments {
		out = append(out, c.SendPayload(seg, ttl)...)
	}
	return out
}

// ExpectedSeq returns the next in-order sequence number expected from the
// server. Injected packets spoof exactly this value; a genuine FIN sent
// after a lost data segment carries a higher one, which lets measurement
// tools tell the two apart.
func (c *Conn) ExpectedSeq() uint32 { return c.ack }

// Client returns the client host of the connection.
func (c *Conn) Client() *topology.Host { return c.client }

// Endpoint returns the endpoint host of the connection.
func (c *Conn) Endpoint() *topology.Host { return c.endpoint }

// Close sends a FIN at full TTL. Responses are discarded.
func (c *Conn) Close() {
	if !c.open {
		return
	}
	fin := netem.NewTCPPacket(c.client.Addr, c.endpoint.Addr, c.SrcPort, c.DstPort,
		netem.TCPFin|netem.TCPAck, c.seq, c.ack, nil)
	c.net.Transmit(fin, c.client, c.endpoint)
	c.open = false
}
