package simnet

import (
	"errors"

	"cendev/internal/netem"
	"cendev/internal/topology"
)

// Conn is a simulated TCP connection from a client host to an endpoint
// host. CenTrace and CenFuzz open a fresh connection per probe (§4.1:
// "CenTrace performs each TTL-limited probe over a new TCP connection").
type Conn struct {
	net      *Network
	client   *topology.Host
	endpoint *topology.Host
	SrcPort  uint16
	DstPort  uint16
	seq, ack uint32
	open     bool
}

// ErrConnRefused is returned by Dial when the endpoint resets the SYN.
var ErrConnRefused = errors.New("simnet: connection refused")

// ErrConnTimeout is returned by Dial when the handshake receives no answer
// (e.g. residual stateful blocking is dropping all packets between the
// hosts).
var ErrConnTimeout = errors.New("simnet: connection timed out")

// Dial performs a TCP handshake at full TTL and returns an established
// connection. The SYN carries no payload, so content-triggered devices let
// it pass — but devices in a residual blocking state will drop it, making
// the dial time out just like in the field.
func (n *Network) Dial(client, ep *topology.Host, dstPort uint16) (*Conn, error) {
	// Connections are pooled one-deep per network: measurement loops open a
	// fresh connection per probe and close it before the next, so the same
	// Conn object cycles through thousands of dials without allocating.
	// Callers must not touch a *Conn after Close.
	c := n.freeConn
	if c == nil {
		c = &Conn{}
	} else {
		n.freeConn = nil
	}
	*c = Conn{
		net: n, client: client, endpoint: ep,
		SrcPort: n.AllocPort(), DstPort: dstPort,
		seq: 1,
	}
	fail := func(err error) (*Conn, error) {
		n.freeConn = c
		return nil, err
	}
	// Handshake packets are built in the Network's scratch tx packet:
	// Transmit copies its input into the working packet immediately, so
	// the scratch can be refilled for the next sequential send.
	syn := &n.txPkt
	syn.FillTCP(client.Addr, ep.Addr, c.SrcPort, dstPort, netem.TCPSyn, c.seq, 0, nil)
	// Scan the handshake deliveries fully before transmitting the final
	// ACK: Transmit reuses the delivery buffer, so ds must not be read
	// after the next send.
	var synAck *netem.TCP
	for _, d := range n.Transmit(syn, client, ep) {
		if d.Packet.TCP == nil || d.Packet.IP.Src != ep.Addr {
			continue
		}
		t := d.Packet.TCP
		if t.Flags&netem.TCPRst != 0 {
			return fail(ErrConnRefused)
		}
		if t.Flags&netem.TCPSyn != 0 && t.Flags&netem.TCPAck != 0 {
			synAck = t
			break
		}
	}
	if synAck == nil {
		return fail(ErrConnTimeout)
	}
	c.seq++
	c.ack = synAck.Seq + 1
	c.open = true
	// Final ACK of the handshake (fire and forget).
	ackPkt := &n.txPkt
	ackPkt.FillTCP(client.Addr, ep.Addr, c.SrcPort, dstPort, netem.TCPAck, c.seq, c.ack, nil)
	n.Transmit(ackPkt, client, ep)
	return c, nil
}

// SendPayload transmits application payload on the connection with the
// given IP TTL and returns every packet the client receives in response.
// This is the TTL-limited probe primitive CenTrace is built on: the
// handshake ran at full TTL, only the payload packet is TTL-limited.
//
// The returned packets carry Transmit's pooled-delivery contract: they
// are valid only until the next Transmit on this network (the next
// probe). Clone anything retained past that point.
func (c *Conn) SendPayload(payload []byte, ttl uint8) []Delivery {
	pkt := &c.net.txPkt
	pkt.FillTCP(c.client.Addr, c.endpoint.Addr, c.SrcPort, c.DstPort,
		netem.TCPPsh|netem.TCPAck, c.seq, c.ack, payload)
	pkt.IP.TTL = ttl
	pkt.IP.ID = uint16(c.seq) // deterministic, varies per segment
	ds := c.net.Transmit(pkt, c.client, c.endpoint)
	c.seq += uint32(len(payload))
	return ds
}

// SendSegments transmits application payload split across multiple TCP
// segments on the connection, all at the given TTL, and returns every
// packet received across the sends. Splitting the censorship trigger
// across segments evades DPI engines that inspect packets individually
// (the Geneva/SymTCP evasion class).
func (c *Conn) SendSegments(segments [][]byte, ttl uint8) []Delivery {
	var out []Delivery
	for _, seg := range segments {
		for _, d := range c.SendPayload(seg, ttl) {
			// The accumulated deliveries outlive the next segment's
			// Transmit, which reclaims pooled delivery packets — so each
			// retained packet gets its own copy.
			d.Packet = d.Packet.Clone()
			out = append(out, d)
		}
	}
	return out
}

// ExpectedSeq returns the next in-order sequence number expected from the
// server. Injected packets spoof exactly this value; a genuine FIN sent
// after a lost data segment carries a higher one, which lets measurement
// tools tell the two apart.
func (c *Conn) ExpectedSeq() uint32 { return c.ack }

// Client returns the client host of the connection.
func (c *Conn) Client() *topology.Host { return c.client }

// Endpoint returns the endpoint host of the connection.
func (c *Conn) Endpoint() *topology.Host { return c.endpoint }

// Close sends a FIN at full TTL and returns the connection to the network's
// pool. Responses are discarded. The *Conn must not be used after Close.
func (c *Conn) Close() {
	if !c.open {
		return
	}
	fin := &c.net.txPkt
	fin.FillTCP(c.client.Addr, c.endpoint.Addr, c.SrcPort, c.DstPort,
		netem.TCPFin|netem.TCPAck, c.seq, c.ack, nil)
	c.net.Transmit(fin, c.client, c.endpoint)
	c.open = false
	c.net.freeConn = c
}
