package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cendev/internal/obs"
	"cendev/internal/vfs"
)

// Options configures a Server.
type Options struct {
	// StoreDir is the result-store directory (required).
	StoreDir string
	// Shards is the segment-file count (default DefaultShards).
	Shards int
	// QueueCapacity bounds queued jobs; beyond it submissions get 429
	// (default 64).
	QueueCapacity int
	// Workers is the number of concurrent scheduler workers (default 2).
	Workers int
	// AdmitBurst and AdmitRate shape each tenant's token bucket
	// (default 8 tokens, 1 token/s).
	AdmitBurst int
	AdmitRate  float64
	// Now is the admission clock (nil means time.Now); injectable so
	// tests drive refill deterministically.
	Now func() time.Time
	// Obs, when non-nil, receives the service's own series plus the
	// aggregated measurement series of every job.
	Obs *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// FS is the filesystem the store persists through (nil means the real
	// one); the crash matrix and degradation tests inject faults here.
	FS vfs.FS
	// JobTimeout is the per-job watchdog: a job still running after this
	// wall time is abandoned with a transient timeout error (default
	// 10m). The timeout only decides liveness, never result bytes.
	JobTimeout time.Duration
	// RetryBudget is how many retries a transiently failing job gets
	// after its first attempt (default 2; negative means none). Budget
	// exhausted, the job goes to the dead-letter state.
	RetryBudget int
	// DegradeAfter is the consecutive store-write-failure count that trips
	// the server into degraded read-only mode (default 3; negative
	// disables degradation).
	DegradeAfter int
	// RunHook, when non-nil, replaces the scheduler as the job executor —
	// a test seam that skips building the (expensive) measurement world
	// and lets tests script failures.
	RunHook func(JobSpec) (json.RawMessage, error)
	// Backend, when non-nil, replaces the local executor entirely — the
	// cluster coordinator leases executions to workers through this seam.
	// Takes precedence over RunHook.
	Backend Backend
	// DisableCache turns off the spec-digest result cache (used by nodes
	// whose backend wants every submission to reach Execute).
	DisableCache bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.AdmitBurst <= 0 {
		o.AdmitBurst = 8
	}
	if o.AdmitRate <= 0 {
		o.AdmitRate = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.FS == nil {
		o.FS = vfs.OS()
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 2
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.DegradeAfter == 0 {
		o.DegradeAfter = 3
	}
	return o
}

// Server is the orchestration service: admission gate, priority queue,
// scheduler workers, and result store behind an HTTP JSON API.
type Server struct {
	opts    Options
	store   *Store
	queue   *Queue
	admit   *Admission
	sched   *Scheduler
	backend Backend
	mux     *http.ServeMux

	draining atomic.Bool
	workers  sync.WaitGroup

	// cache dedupes identical submissions: canonical spec (which includes
	// the seed) → finished result. Sound because payloads are pure
	// functions of (spec, seed) — a hit returns the same bytes execution
	// would have produced, without spending a world build on them.
	cacheMu sync.Mutex
	cache   map[string]cacheEntry

	// degraded trips when the store persistently fails writes (see
	// noteStoreWrite): the server stops accepting and running jobs but
	// keeps serving reads — degraded beats dead for a fleet service.
	degraded      atomic.Bool
	storeFailures atomic.Int64 // consecutive store-write failures

	mRunning  *obs.Gauge
	mDegraded *obs.Gauge
}

// New opens the store, recovers persisted jobs, builds the scheduler
// world, and starts the worker pool. Jobs found queued or running from a
// previous process are re-enqueued in their original admission order —
// re-running an interrupted job is safe because payloads are pure
// functions of the spec.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	store, err := OpenStoreFS(opts.FS, opts.StoreDir, opts.Shards)
	if err != nil {
		return nil, err
	}
	for _, w := range store.Warnings() {
		opts.Logf("store recovery: %s", w)
	}

	s := &Server{
		opts:      opts,
		store:     store,
		admit:     NewAdmission(opts.AdmitBurst, opts.AdmitRate, opts.Now),
		mRunning:  opts.Obs.Gauge("censerved_jobs_running"),
		mDegraded: opts.Obs.Gauge("censerved_degraded"),
	}
	s.queue = NewQueue(opts.QueueCapacity, opts.Obs.Gauge("censerved_queue_depth"))
	switch {
	case opts.Backend != nil:
		s.backend = opts.Backend
	case opts.RunHook != nil:
		s.backend = localBackend{run: opts.RunHook}
	default:
		s.sched = NewScheduler(opts.Obs)
		s.backend = localBackend{run: s.sched.Run}
	}
	if bb, ok := s.backend.(BoundBackend); ok {
		bb.Bind(s)
	}

	// Warm the cache from recovered results so dedup survives restarts.
	// Entries without a digest predate the cache and are skipped — the
	// digest is what a hit hands to replica verification.
	if !opts.DisableCache {
		s.cache = make(map[string]cacheEntry)
		for _, e := range store.List(StateDone) {
			if e.Digest == "" {
				continue
			}
			s.cache[e.Spec.CanonKey()] = cacheEntry{
				payload: e.Payload, digest: e.Digest, replicas: e.Replicas,
			}
		}
	}

	// Recovery: pending entries in admission order. A job caught mid-run
	// by a crash is still recorded as running; flip it back to queued so
	// status reporting matches reality, then requeue. Recovery bypasses
	// the capacity check — these jobs were admitted before.
	for _, e := range store.Pending() {
		if e.State == StateRunning {
			if err := store.UpdateState(e.ID, StateQueued, e.Attempts, "", nil); err != nil {
				store.Close()
				return nil, fmt.Errorf("serve: recovering %s: %w", e.ID, err)
			}
			opts.Logf("recovered interrupted job %s (attempt %d); requeued", e.ID, e.Attempts)
		} else {
			opts.Logf("recovered queued job %s", e.ID)
		}
		s.queue.Push(e.ID, e.Spec.Priority, e.Seq)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", obs.Handler(opts.Obs))

	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker(i)
	}
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// countSubmitted, countRejected, countDone, countFailed bump the
// service's labeled series; label values bind at lookup, so series are
// resolved on demand (the registry dedups by name+labels).
func (s *Server) countSubmitted(tenant string) {
	s.opts.Obs.Counter("censerved_jobs_submitted_total", obs.L("tenant", tenant)).Inc()
}

func (s *Server) countRejected(reason string) {
	s.opts.Obs.Counter("censerved_jobs_rejected_total", obs.L("reason", reason)).Inc()
}

func (s *Server) countDone(kind string) {
	s.opts.Obs.Counter("censerved_jobs_done_total", obs.L("kind", kind)).Inc()
}

func (s *Server) countFailed(kind string) {
	s.opts.Obs.Counter("censerved_jobs_failed_total", obs.L("kind", kind)).Inc()
}

func (s *Server) countRetried(kind string) {
	s.opts.Obs.Counter("censerved_jobs_retried_total", obs.L("kind", kind)).Inc()
}

func (s *Server) countDead(kind string) {
	s.opts.Obs.Counter("censerved_jobs_dead_total", obs.L("kind", kind)).Inc()
}

func (s *Server) countConflict(kind string) {
	s.opts.Obs.Counter("censerved_jobs_conflict_total", obs.L("kind", kind)).Inc()
}

// cacheEntry is one finished result keyed by its canonical spec.
type cacheEntry struct {
	payload  json.RawMessage
	digest   string
	replicas []string
}

// cacheGet looks up a finished result for an identical spec+seed.
func (s *Server) cacheGet(spec JobSpec) (cacheEntry, bool) {
	if s.cache == nil {
		return cacheEntry{}, false
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	ce, ok := s.cache[spec.CanonKey()]
	return ce, ok
}

// cachePut records a finished execution for future dedup.
func (s *Server) cachePut(spec JobSpec, res ExecResult) {
	if s.cache == nil {
		return
	}
	payload := res.Payload
	if res.Remote {
		payload = nil
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.cache[spec.CanonKey()] = cacheEntry{
		payload: payload, digest: res.Digest, replicas: res.Replicas,
	}
}

// noteStoreWrite feeds the degradation trigger: consecutive store-write
// failures trip degraded read-only mode; any success resets the streak.
func (s *Server) noteStoreWrite(err error) {
	if err == nil {
		s.storeFailures.Store(0)
		return
	}
	s.opts.Obs.Counter("censerved_store_write_failures_total").Inc()
	n := s.storeFailures.Add(1)
	if s.opts.DegradeAfter > 0 && n >= int64(s.opts.DegradeAfter) {
		s.enterDegraded()
	}
}

// enterDegraded flips the server into degraded read-only mode: new
// submissions get 503, /healthz reports degraded, workers stop picking
// up jobs (the queue closes; queued jobs are already durable and recover
// on the next start), and reads keep working. There is deliberately no
// automatic way back — a store that failed writes repeatedly needs an
// operator, and flapping would be worse than staying read-only.
func (s *Server) enterDegraded() {
	if s.degraded.Swap(true) {
		return
	}
	s.mDegraded.Set(1)
	s.opts.Logf("entering DEGRADED read-only mode: %d consecutive store write failures", s.storeFailures.Load())
	s.queue.Close()
}

// Degraded reports whether the server is in degraded read-only mode.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Store exposes the underlying store (read-side, for tests and drain
// verification).
func (s *Server) Store() *Store { return s.store }

// worker pops jobs until the queue closes.
func (s *Server) worker(id int) {
	defer s.workers.Done()
	for {
		jobID, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(id, jobID)
	}
}

func (s *Server) runJob(workerID int, jobID string) {
	e, ok := s.store.Get(jobID)
	if !ok {
		s.opts.Logf("worker %d: job %s vanished from store", workerID, jobID)
		return
	}
	attempts := e.Attempts + 1
	if err := s.store.UpdateState(jobID, StateRunning, attempts, "", nil); err != nil {
		s.noteStoreWrite(err)
		s.opts.Logf("worker %d: job %s: mark running: %v", workerID, jobID, err)
		return
	}
	s.noteStoreWrite(nil)
	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)

	res, err := s.execute(Job{ID: jobID, Spec: e.Spec, Attempts: attempts})

	if err != nil {
		s.finishFailed(workerID, jobID, &e, attempts, err)
		return
	}
	s.countDone(e.Spec.Kind)
	payload := res.Payload
	if res.Remote {
		payload = nil // the replica set owns the bytes; keep only the digest
	}
	uerr := s.store.UpdateDone(jobID, attempts, payload, res.Digest, res.Replicas)
	s.noteStoreWrite(uerr)
	if uerr != nil {
		s.opts.Logf("worker %d: job %s: mark done: %v", workerID, jobID, uerr)
		return
	}
	s.cachePut(e.Spec, res)
	s.opts.Logf("worker %d: job %s (%s) done, digest %.12s…, %d payload bytes",
		workerID, jobID, e.Spec.Kind, res.Digest, len(res.Payload))
}

// execute runs one job through the backend under the watchdog, with a
// panic barrier. A job that outlives the watchdog is abandoned (its
// goroutine keeps running; a buffered channel swallows the late result)
// and reported as a transient timeout — re-runnable, because payloads
// are pure functions of the spec.
func (s *Server) execute(j Job) (ExecResult, error) {
	type result struct {
		res ExecResult
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- result{err: fmt.Errorf("serve: job panicked: %v", r)}
			}
		}()
		res, err := s.backend.Execute(j)
		ch <- result{res: res, err: err}
	}()
	//cenlint:volatile watchdog liveness timeout: wall time decides only whether a hung job is abandoned, never any result bytes
	timer := time.NewTimer(s.opts.JobTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.res, r.err
	case <-timer.C:
		return ExecResult{}, Transient(fmt.Errorf("serve: job exceeded %s watchdog timeout", s.opts.JobTimeout))
	}
}

// finishFailed routes a failed attempt: transient failures with budget
// left requeue with seeded backoff; transient failures out of budget go
// to the dead-letter state; permanent failures fail immediately.
func (s *Server) finishFailed(workerID int, jobID string, e *JobEntry, attempts int, err error) {
	if IsTransient(err) && !IsConflict(err) && attempts <= s.opts.RetryBudget {
		s.countRetried(e.Spec.Kind)
		uerr := s.store.UpdateState(jobID, StateQueued, attempts, err.Error(), nil)
		s.noteStoreWrite(uerr)
		if uerr != nil {
			s.opts.Logf("worker %d: job %s: mark requeued: %v", workerID, jobID, uerr)
			return
		}
		delay := retryDelay(e.Spec.Seed, jobID, attempts)
		s.queue.PushDelayed(jobID, e.Spec.Priority, e.Seq, delay)
		s.opts.Logf("worker %d: job %s (%s) attempt %d failed transiently, retrying after %d pops: %v",
			workerID, jobID, e.Spec.Kind, attempts, delay, err)
		return
	}
	state := StateFailed
	switch {
	case IsConflict(err):
		state = StateConflict
		s.countConflict(e.Spec.Kind)
	case IsTransient(err):
		state = StateDead
		s.countDead(e.Spec.Kind)
	default:
		s.countFailed(e.Spec.Kind)
	}
	uerr := s.store.UpdateState(jobID, state, attempts, err.Error(), nil)
	s.noteStoreWrite(uerr)
	if uerr != nil {
		s.opts.Logf("worker %d: job %s: mark %s: %v", workerID, jobID, state, uerr)
	}
	s.opts.Logf("worker %d: job %s (%s) %s after %d attempts: %v",
		workerID, jobID, e.Spec.Kind, state, attempts, err)
}

// Drain performs the graceful shutdown sequence: stop admitting (new
// submissions get 503), close the queue (queued jobs stay persisted for
// the next start), wait for in-flight jobs to finish, compact, and close
// the store. Idempotent.
func (s *Server) Drain() error {
	if s.draining.Swap(true) {
		return nil
	}
	s.opts.Logf("draining: admission stopped, waiting for in-flight jobs")
	s.queue.Close()
	s.workers.Wait()
	if bd, ok := s.backend.(BackendDrainer); ok {
		if err := bd.DrainBackend(); err != nil {
			s.opts.Logf("drain: backend: %v", err)
		}
	}
	if err := s.store.Compact(); err != nil {
		s.store.Close()
		return fmt.Errorf("serve: drain compact: %w", err)
	}
	if err := s.store.Close(); err != nil {
		return fmt.Errorf("serve: drain close: %w", err)
	}
	s.opts.Logf("drain complete: %d jobs persisted", s.store.Len())
	return nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.degraded.Load() {
		writeError(w, http.StatusServiceUnavailable, "degraded (read-only): store writes failing")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		s.countRejected("invalid")
		writeError(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		s.countRejected("invalid")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if ok, retry := s.admit.Allow(spec.Tenant); !ok {
		s.countRejected("admission")
		sec := int(retry / time.Second)
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:         "tenant rate limit exceeded",
			RetryAfterSec: sec,
		})
		return
	}

	// Result-cache dedup: an identical spec+seed already finished, and
	// payloads are pure functions of (spec, seed), so execution would
	// reproduce the cached bytes. Admit the job straight to done — no
	// queue slot, no world build. Admission control still applies above:
	// the cache saves compute, not the tenant's request budget.
	if ce, ok := s.cacheGet(spec); ok {
		entry, err := s.store.AppendQueued(spec)
		s.noteStoreWrite(err)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "persisting job: "+err.Error())
			return
		}
		uerr := s.store.UpdateDone(entry.ID, 0, ce.payload, ce.digest, ce.replicas)
		s.noteStoreWrite(uerr)
		if uerr != nil {
			writeError(w, http.StatusInternalServerError, "persisting cached result: "+uerr.Error())
			return
		}
		s.countSubmitted(spec.Tenant)
		s.opts.Obs.Counter("censerved_cache_hits").Inc()
		s.opts.Logf("job %s (%s) served from result cache, digest %.12s…", entry.ID, spec.Kind, ce.digest)
		writeJSON(w, http.StatusAccepted, submitResponse{ID: entry.ID, State: StateDone})
		return
	}

	if err := s.queue.Reserve(); err != nil {
		if errors.Is(err, ErrQueueClosed) {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		s.countRejected("queue_full")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:         "queue full",
			RetryAfterSec: 1,
		})
		return
	}

	entry, err := s.store.AppendQueued(spec)
	s.noteStoreWrite(err)
	if err != nil {
		s.queue.Release()
		writeError(w, http.StatusInternalServerError, "persisting job: "+err.Error())
		return
	}
	s.queue.Push(entry.ID, spec.Priority, entry.Seq)
	s.countSubmitted(spec.Tenant)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: entry.ID, State: StateQueued})
}

// handleJobs lists jobs in admission order, optionally filtered by
// ?state= — the dead-letter query GET /v1/jobs?state=dead in particular.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	state := JobState(r.URL.Query().Get("state"))
	if !validListState(state) {
		valid := make([]string, len(listStates))
		for i, v := range listStates {
			valid[i] = string(v)
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown state %q (valid: %s)",
			state, strings.Join(valid, ", ")))
		return
	}
	entries := s.store.List(state)
	resp := jobsResponse{Jobs: make([]JobStatus, 0, len(entries))}
	for i := range entries {
		resp.Jobs = append(resp.Jobs, entries[i].Status())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, e.Status())
}

// handleResult serves the raw payload bytes — deliberately not
// re-encoded, so byte-identity across submissions is observable at the
// API boundary.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	e, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch e.State {
	case StateDone:
		payload := e.Payload
		if payload == nil {
			// The bytes live on remote replicas; the backend fetches (and
			// read-repairs) them.
			rf, ok := s.backend.(ResultFetcher)
			if !ok {
				writeError(w, http.StatusInternalServerError, "result payload missing from store")
				return
			}
			p, err := rf.FetchResult(e.ID)
			if err != nil {
				writeError(w, http.StatusBadGateway, "fetching result from replicas: "+err.Error())
				return
			}
			payload = p
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(payload)
	case StateFailed, StateDead, StateConflict:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: e.Error})
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; retry later", e.State))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.degraded.Load() {
		writeError(w, http.StatusServiceUnavailable, "degraded (read-only): store writes failing")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
