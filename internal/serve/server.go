package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cendev/internal/obs"
)

// Options configures a Server.
type Options struct {
	// StoreDir is the result-store directory (required).
	StoreDir string
	// Shards is the segment-file count (default DefaultShards).
	Shards int
	// QueueCapacity bounds queued jobs; beyond it submissions get 429
	// (default 64).
	QueueCapacity int
	// Workers is the number of concurrent scheduler workers (default 2).
	Workers int
	// AdmitBurst and AdmitRate shape each tenant's token bucket
	// (default 8 tokens, 1 token/s).
	AdmitBurst int
	AdmitRate  float64
	// Now is the admission clock (nil means time.Now); injectable so
	// tests drive refill deterministically.
	Now func() time.Time
	// Obs, when non-nil, receives the service's own series plus the
	// aggregated measurement series of every job.
	Obs *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.AdmitBurst <= 0 {
		o.AdmitBurst = 8
	}
	if o.AdmitRate <= 0 {
		o.AdmitRate = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Server is the orchestration service: admission gate, priority queue,
// scheduler workers, and result store behind an HTTP JSON API.
type Server struct {
	opts  Options
	store *Store
	queue *Queue
	admit *Admission
	sched *Scheduler
	mux   *http.ServeMux

	draining atomic.Bool
	workers  sync.WaitGroup

	mRunning *obs.Gauge
}

// New opens the store, recovers persisted jobs, builds the scheduler
// world, and starts the worker pool. Jobs found queued or running from a
// previous process are re-enqueued in their original admission order —
// re-running an interrupted job is safe because payloads are pure
// functions of the spec.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	store, err := OpenStore(opts.StoreDir, opts.Shards)
	if err != nil {
		return nil, err
	}
	for _, w := range store.Warnings() {
		opts.Logf("store recovery: %s", w)
	}

	s := &Server{
		opts:     opts,
		store:    store,
		admit:    NewAdmission(opts.AdmitBurst, opts.AdmitRate, opts.Now),
		mRunning: opts.Obs.Gauge("censerved_jobs_running"),
	}
	s.queue = NewQueue(opts.QueueCapacity, opts.Obs.Gauge("censerved_queue_depth"))
	s.sched = NewScheduler(opts.Obs)

	// Recovery: pending entries in admission order. A job caught mid-run
	// by a crash is still recorded as running; flip it back to queued so
	// status reporting matches reality, then requeue. Recovery bypasses
	// the capacity check — these jobs were admitted before.
	for _, e := range store.Pending() {
		if e.State == StateRunning {
			if err := store.UpdateState(e.ID, StateQueued, e.Attempts, "", nil); err != nil {
				store.Close()
				return nil, fmt.Errorf("serve: recovering %s: %w", e.ID, err)
			}
			opts.Logf("recovered interrupted job %s (attempt %d); requeued", e.ID, e.Attempts)
		} else {
			opts.Logf("recovered queued job %s", e.ID)
		}
		s.queue.Push(e.ID, e.Spec.Priority, e.Seq)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", obs.Handler(opts.Obs))

	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker(i)
	}
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// countSubmitted, countRejected, countDone, countFailed bump the
// service's labeled series; label values bind at lookup, so series are
// resolved on demand (the registry dedups by name+labels).
func (s *Server) countSubmitted(tenant string) {
	s.opts.Obs.Counter("censerved_jobs_submitted_total", obs.L("tenant", tenant)).Inc()
}

func (s *Server) countRejected(reason string) {
	s.opts.Obs.Counter("censerved_jobs_rejected_total", obs.L("reason", reason)).Inc()
}

func (s *Server) countDone(kind string) {
	s.opts.Obs.Counter("censerved_jobs_done_total", obs.L("kind", kind)).Inc()
}

func (s *Server) countFailed(kind string) {
	s.opts.Obs.Counter("censerved_jobs_failed_total", obs.L("kind", kind)).Inc()
}

// Store exposes the underlying store (read-side, for tests and drain
// verification).
func (s *Server) Store() *Store { return s.store }

// worker pops jobs until the queue closes.
func (s *Server) worker(id int) {
	defer s.workers.Done()
	for {
		jobID, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(id, jobID)
	}
}

func (s *Server) runJob(workerID int, jobID string) {
	e, ok := s.store.Get(jobID)
	if !ok {
		s.opts.Logf("worker %d: job %s vanished from store", workerID, jobID)
		return
	}
	attempts := e.Attempts + 1
	if err := s.store.UpdateState(jobID, StateRunning, attempts, "", nil); err != nil {
		s.opts.Logf("worker %d: job %s: mark running: %v", workerID, jobID, err)
		return
	}
	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)

	payload, err := func() (p json.RawMessage, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: job panicked: %v", r)
			}
		}()
		return s.sched.Run(e.Spec)
	}()

	if err != nil {
		s.countFailed(e.Spec.Kind)
		if uerr := s.store.UpdateState(jobID, StateFailed, attempts, err.Error(), nil); uerr != nil {
			s.opts.Logf("worker %d: job %s: mark failed: %v", workerID, jobID, uerr)
		}
		s.opts.Logf("worker %d: job %s (%s) failed: %v", workerID, jobID, e.Spec.Kind, err)
		return
	}
	s.countDone(e.Spec.Kind)
	if uerr := s.store.UpdateState(jobID, StateDone, attempts, "", payload); uerr != nil {
		s.opts.Logf("worker %d: job %s: mark done: %v", workerID, jobID, uerr)
		return
	}
	s.opts.Logf("worker %d: job %s (%s) done, %d payload bytes", workerID, jobID, e.Spec.Kind, len(payload))
}

// Drain performs the graceful shutdown sequence: stop admitting (new
// submissions get 503), close the queue (queued jobs stay persisted for
// the next start), wait for in-flight jobs to finish, compact, and close
// the store. Idempotent.
func (s *Server) Drain() error {
	if s.draining.Swap(true) {
		return nil
	}
	s.opts.Logf("draining: admission stopped, waiting for in-flight jobs")
	s.queue.Close()
	s.workers.Wait()
	if err := s.store.Compact(); err != nil {
		s.store.Close()
		return fmt.Errorf("serve: drain compact: %w", err)
	}
	if err := s.store.Close(); err != nil {
		return fmt.Errorf("serve: drain close: %w", err)
	}
	s.opts.Logf("drain complete: %d jobs persisted", s.store.Len())
	return nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		s.countRejected("invalid")
		writeError(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		s.countRejected("invalid")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if ok, retry := s.admit.Allow(spec.Tenant); !ok {
		s.countRejected("admission")
		sec := int(retry / time.Second)
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:         "tenant rate limit exceeded",
			RetryAfterSec: sec,
		})
		return
	}

	if err := s.queue.Reserve(); err != nil {
		if errors.Is(err, ErrQueueClosed) {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		s.countRejected("queue_full")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:         "queue full",
			RetryAfterSec: 1,
		})
		return
	}

	entry, err := s.store.AppendQueued(spec)
	if err != nil {
		s.queue.Release()
		writeError(w, http.StatusInternalServerError, "persisting job: "+err.Error())
		return
	}
	s.queue.Push(entry.ID, spec.Priority, entry.Seq)
	s.countSubmitted(spec.Tenant)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: entry.ID, State: StateQueued})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, e.Status())
}

// handleResult serves the raw payload bytes — deliberately not
// re-encoded, so byte-identity across submissions is observable at the
// API boundary.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	e, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch e.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(e.Payload)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: e.Error})
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; retry later", e.State))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
