package serve

import (
	"container/heap"
	"errors"
	"sync"

	"cendev/internal/obs"
)

// ErrQueueFull is returned by Reserve when the queue (admitted plus
// reserved slots) is at capacity — the backpressure signal the API turns
// into a 429.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrQueueClosed is returned by Reserve once the queue is draining.
var ErrQueueClosed = errors.New("serve: job queue closed")

// queueItem is one admitted job waiting for a scheduler worker.
type queueItem struct {
	id       string
	priority int
	seq      int64 // admission order; FIFO tiebreak within a priority
}

// Queue is the bounded priority queue between admission and the
// scheduler workers: higher priority first, FIFO within a priority.
// Admission is two-phase — Reserve a slot (can fail with ErrQueueFull),
// persist the job, then Push (cannot fail) — so a job is never enqueued
// before it is durable and never rejected after.
type Queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    itemHeap
	deferred deferredHeap
	// pops is the queue's virtual clock: it advances once per successful
	// Pop, and deferred (retry-backoff) items become eligible at a pop
	// count — never at a wall time, which would poison determinism.
	pops     int64
	reserved int
	capacity int
	closed   bool
	depth    *obs.Gauge
}

// NewQueue creates a queue holding at most capacity jobs. depth, when
// non-nil, tracks the instantaneous queue length.
func NewQueue(capacity int, depth *obs.Gauge) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{capacity: capacity, depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Reserve claims a queue slot for a job about to be persisted. It fails
// fast with ErrQueueFull when queued+reserved is at capacity, and with
// ErrQueueClosed while draining. Every successful Reserve must be paired
// with exactly one Push or Release.
func (q *Queue) Reserve() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items)+len(q.deferred)+q.reserved >= q.capacity {
		return ErrQueueFull
	}
	q.reserved++
	return nil
}

// Release returns an unused reservation (persist failed).
func (q *Queue) Release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.reserved > 0 {
		q.reserved--
	}
}

// Push enqueues a persisted job into its reserved slot and wakes one
// worker. Pushing into a closed queue is a silent no-op: the job is
// already durable as queued, so the next start recovers it.
func (q *Queue) Push(id string, priority int, seq int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.reserved > 0 {
		q.reserved--
	}
	if q.closed {
		return
	}
	heap.Push(&q.items, queueItem{id: id, priority: priority, seq: seq})
	q.depth.Set(int64(len(q.items) + len(q.deferred)))
	q.cond.Signal()
}

// PushDelayed re-enqueues a job that becomes eligible after delay more
// successful Pops — the seeded-backoff retry path. It takes no
// reservation: the job was admitted (and is durable) already, so a full
// queue must not turn a retry into a loss. Like Push, it is a no-op on a
// closed queue; the job stays durable as queued for the next start.
func (q *Queue) PushDelayed(id string, priority int, seq int64, delay int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if delay < 1 {
		delay = 1
	}
	heap.Push(&q.deferred, deferredItem{
		queueItem:  queueItem{id: id, priority: priority, seq: seq},
		eligibleAt: q.pops + delay,
	})
	q.depth.Set(int64(len(q.items) + len(q.deferred)))
	q.cond.Signal()
}

// Pop blocks until a job is available and returns it, or returns ok=false
// once the queue has been closed. Jobs still queued at close time stay in
// the store as queued and are recovered by the next start — drain
// deliberately does not run them.
func (q *Queue) Pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			// Drain: queued and deferred items alike stay for recovery.
			return "", false
		}
		// Promote every deferred item whose backoff has elapsed.
		for len(q.deferred) > 0 && q.deferred[0].eligibleAt <= q.pops {
			heap.Push(&q.items, heap.Pop(&q.deferred).(deferredItem).queueItem)
		}
		if len(q.items) > 0 {
			break
		}
		if len(q.deferred) > 0 {
			// Only backed-off items remain. The virtual clock ticks on
			// pops, and an otherwise idle queue has nothing left to tick
			// it — so jump to the earliest retry's eligibility instead of
			// stalling forever.
			q.pops = q.deferred[0].eligibleAt
			continue
		}
		q.cond.Wait()
	}
	it := heap.Pop(&q.items).(queueItem)
	q.pops++
	q.depth.Set(int64(len(q.items) + len(q.deferred)))
	return it.id, true
}

// Len returns the number of queued (not reserved, not running) jobs,
// including retries waiting out their backoff.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) + len(q.deferred)
}

// Close begins the drain: every blocked and future Pop returns ok=false,
// Reserve fails, and queued items are left for recovery.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// itemHeap orders by priority descending, then admission sequence
// ascending.
type itemHeap []queueItem

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(queueItem)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// deferredItem is a retry waiting for the virtual clock to reach its
// eligibility.
type deferredItem struct {
	queueItem
	eligibleAt int64
}

// deferredHeap orders by eligibility ascending, then admission sequence.
type deferredHeap []deferredItem

func (h deferredHeap) Len() int { return len(h) }
func (h deferredHeap) Less(i, j int) bool {
	if h[i].eligibleAt != h[j].eligibleAt {
		return h[i].eligibleAt < h[j].eligibleAt
	}
	return h[i].seq < h[j].seq
}
func (h deferredHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *deferredHeap) Push(x any) { *h = append(*h, x.(deferredItem)) }
func (h *deferredHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
