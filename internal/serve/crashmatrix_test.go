package serve

// The store's crash matrix: every filesystem operation across
// open → append → sync → ack → compact → close → reopen (with a shard-count
// change) is an injection point, for every fault mode, across many
// seeds. The verifier owns the acceptance invariants: no acknowledged
// transition lost, no torn record surfacing, recovery idempotent. A
// deliberately broken store (compaction publishing its segment by rename
// without the pre-rename sync) must fail this same matrix — that
// sensitivity check is what makes a green matrix mean something.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cendev/internal/vfs"
	"cendev/internal/vfs/crashtest"
)

func matrixSpec(i int) JobSpec {
	s := JobSpec{Kind: KindCenProbe, Seed: int64(i + 1), Priority: i % 3}
	s.Normalize()
	return s
}

// stateRank orders job states by lifecycle progress; a survivor may be
// ahead of the last ack (the write landed, the fault ate the reply) but
// never behind it.
func stateRank(s JobState) int {
	switch s {
	case StateQueued:
		return 1
	case StateRunning:
		return 2
	default: // done / failed / dead: terminal
		return 3
	}
}

// storeWorkload drives a store through the full lifecycle, acknowledging
// every transition the store reported as durable. Individual operation
// errors are skipped (the store must stay usable after a transient
// fault); only a failed open aborts, since nothing works without one.
func storeWorkload(brokenCompaction bool) func(fsys vfs.FS, ack *crashtest.Acks) error {
	return func(fsys vfs.FS, ack *crashtest.Acks) error {
		st, err := OpenStoreFS(fsys, "store", 2)
		if err != nil {
			return err
		}
		st.compactMinRecords = 1 // compact eagerly: the matrix must cover it
		st.compactSkipSync = brokenCompaction

		var ids []string
		for i := 0; i < 6; i++ {
			e, err := st.AppendQueued(matrixSpec(i))
			if err != nil {
				continue
			}
			ids = append(ids, e.ID)
			ack.Ack(e.ID, "queued|")
		}
		for i, id := range ids {
			if i%2 != 0 {
				continue
			}
			payload := fmt.Sprintf(`{"n":%d}`, i)
			if err := st.UpdateState(id, StateDone, 1, "", json.RawMessage(payload)); err == nil {
				ack.Ack(id, "done|"+payload)
			}
		}
		_ = st.Compact() // forced compaction, like drain does
		st.Close()

		// Reopen with a different shard count — compaction and replay must
		// stay atomic across the resharding — and keep mutating.
		st2, err := OpenStoreFS(fsys, "store", 3)
		if err != nil {
			return err
		}
		st2.compactMinRecords = 1
		st2.compactSkipSync = brokenCompaction
		for i := 6; i < 8; i++ {
			e, err := st2.AppendQueued(matrixSpec(i))
			if err != nil {
				continue
			}
			ack.Ack(e.ID, "queued|")
		}
		if len(ids) > 1 {
			if err := st2.UpdateState(ids[1], StateFailed, 1, "no route", nil); err == nil {
				ack.Ack(ids[1], "failed|")
			}
		}
		st2.Close()
		return nil
	}
}

// storeVerify reopens the directory post-crash (with yet another shard
// count) and checks the invariants against the acknowledged state.
func storeVerify(fsys vfs.FS, acked map[string]string) error {
	st, err := OpenStoreFS(fsys, "store", 4)
	if err != nil {
		return fmt.Errorf("post-crash open failed: %w", err)
	}
	defer st.Close()
	for id, v := range acked {
		state, payload, _ := strings.Cut(v, "|")
		e, ok := st.Get(id)
		if !ok {
			return fmt.Errorf("acknowledged job %s lost in recovery", id)
		}
		if stateRank(e.State) < stateRank(JobState(state)) {
			return fmt.Errorf("job %s recovered as %s, behind its acknowledged %s", id, e.State, state)
		}
		if JobState(state) == StateDone && e.State == StateDone && string(e.Payload) != payload {
			return fmt.Errorf("job %s payload %q != acknowledged %q", id, e.Payload, payload)
		}
	}
	st.Close()

	// Recovery must be idempotent: a second open sees the same merged
	// state and has no torn tail left to repair (the first open's repair
	// is itself durable).
	st2, err := OpenStoreFS(fsys, "store", 5)
	if err != nil {
		return fmt.Errorf("second open failed: %w", err)
	}
	defer st2.Close()
	for _, w := range st2.Warnings() {
		if strings.Contains(w, "truncated torn tail") {
			return fmt.Errorf("second open repaired again — first repair was not durable: %s", w)
		}
	}
	for id := range acked {
		a, _ := st.Get(id)
		b, ok := st2.Get(id)
		if !ok || a.State != b.State || string(a.Payload) != string(b.Payload) {
			return fmt.Errorf("recovery not idempotent for %s: %+v vs %+v (ok=%v)", id, a, b, ok)
		}
	}
	return nil
}

// TestCrashMatrixStore is the acceptance gate: zero violations across
// every injection point × mode × seed (CRASH_MATRIX_SEEDS widens the
// seed range in CI).
func TestCrashMatrixStore(t *testing.T) {
	res := crashtest.RunT(t, crashtest.Config{
		Workload: storeWorkload(false),
		Verify:   storeVerify,
	})
	t.Logf("store matrix: %d injection points, %d cells", res.Points, res.Cells)
}

// TestCrashMatrixCatchesBrokenCompaction proves the matrix has teeth:
// eliding the fsync before compaction's rename — the classic
// rename-before-sync bug — must produce violations.
func TestCrashMatrixCatchesBrokenCompaction(t *testing.T) {
	res, err := crashtest.Run(crashtest.Config{
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Modes:    []crashtest.Mode{crashtest.ModeCrash},
		Workload: storeWorkload(true),
		Verify:   storeVerify,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("store with unsynced compaction rename passed the crash matrix: harness cannot see the bug it exists for")
	}
	t.Logf("broken compaction caught: %d violations, e.g. %s", len(res.Violations), res.Violations[0])
}
