package serve

import (
	"sync"
	"testing"
	"time"
)

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := NewQueue(8, nil)
	push := func(id string, prio int, seq int64) {
		if err := q.Reserve(); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
		q.Push(id, prio, seq)
	}
	push("low-1", 0, 1)
	push("high-1", 5, 2)
	push("low-2", 0, 3)
	push("high-2", 5, 4)

	want := []string{"high-1", "high-2", "low-1", "low-2"}
	for i, w := range want {
		id, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: queue closed unexpectedly", i)
		}
		if id != w {
			t.Fatalf("Pop %d = %q, want %q", i, id, w)
		}
	}
}

func TestQueueCapacityCountsReservations(t *testing.T) {
	q := NewQueue(2, nil)
	if err := q.Reserve(); err != nil {
		t.Fatalf("Reserve 1: %v", err)
	}
	if err := q.Reserve(); err != nil {
		t.Fatalf("Reserve 2: %v", err)
	}
	// Two reserved slots, zero queued items: still full.
	if err := q.Reserve(); err != ErrQueueFull {
		t.Fatalf("Reserve 3 = %v, want ErrQueueFull", err)
	}
	q.Release()
	if err := q.Reserve(); err != nil {
		t.Fatalf("Reserve after Release: %v", err)
	}
	// Converting a reservation into an item must not free capacity.
	q.Push("a", 0, 1)
	if err := q.Reserve(); err != ErrQueueFull {
		t.Fatalf("Reserve after Push = %v, want ErrQueueFull", err)
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := NewQueue(4, nil)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	// Give the popper a moment to block.
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pop on closed queue returned ok=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not unblock on Close")
	}
	if err := q.Reserve(); err != ErrQueueClosed {
		t.Fatalf("Reserve after Close = %v, want ErrQueueClosed", err)
	}
}

func TestQueueCloseLeavesItemsForRecovery(t *testing.T) {
	q := NewQueue(4, nil)
	if err := q.Reserve(); err != nil {
		t.Fatal(err)
	}
	q.Push("a", 0, 1)
	q.Close()
	// Drain semantics: queued items are NOT handed out after close; the
	// durable store is their path back.
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned an item after Close; drain must leave queued jobs for recovery")
	}
	// Pushing a durable job into a closed queue is a silent no-op.
	q.Push("b", 0, 2)
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(128, nil)
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if err := q.Reserve(); err != nil {
				t.Errorf("Reserve: %v", err)
				return
			}
			q.Push("job", i%3, int64(i))
		}(i)
	}
	seen := make(chan string, n)
	for w := 0; w < 4; w++ {
		go func() {
			for {
				id, ok := q.Pop()
				if !ok {
					return
				}
				seen <- id
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		select {
		case <-seen:
		case <-time.After(5 * time.Second):
			t.Fatalf("consumed %d/%d items before timeout", i, n)
		}
	}
	q.Close()
}
