// Package serve is the measurement-orchestration service behind the
// censerved daemon: an HTTP JSON API over a priority job queue with
// per-tenant token-bucket admission control, a scheduler that dispatches
// centrace/cenfuzz/cenprobe/cencluster jobs onto clone-isolated simnet
// networks, and a sharded append-only result store with crash-safe
// recovery. The paper's tools are one-shot batch pipelines; serve is the
// long-running fleet layer that real deployments (Censored Planet's
// longitudinal scans, Pathfinder-style campaigns) run them under.
//
// Determinism contract: a job's result payload is a pure function of its
// normalized spec. The scheduler gives every job a private clone of the
// canonical base world, rewound to the same origin state, with a fault
// engine seeded from the spec alone — so the same spec submitted twice,
// at any queue interleaving, concurrency, or in-job worker count, yields
// byte-identical bytes from GET /v1/results/{id}.
package serve

import (
	"encoding/json"
	"fmt"
)

// Job kinds the scheduler can dispatch.
const (
	KindCenTrace         = "centrace"          // one measurement, needs endpoint+domain
	KindCenTraceCampaign = "centrace.campaign" // every endpoint × domain × protocol
	KindCenFuzz          = "cenfuzz"           // strategy catalog against one endpoint
	KindCenProbe         = "cenprobe"          // banner grabs (given addrs or all devices)
	KindCenCluster       = "cencluster"        // full §7 corpus + clustering study
	KindTomography       = "tomography"        // churn-tomography cross-validation study
)

// JobSpec is the wire-level description of one measurement job — the body
// of POST /v1/jobs. Zero values take the documented defaults so a minimal
// submission is just {"kind":"centrace","endpoint":...,"domain":...}.
type JobSpec struct {
	Kind string `json:"kind"`
	// Tenant names the admission-control bucket the job debits. Default
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a
	// priority.
	Priority int `json:"priority,omitempty"`
	// Seed roots the job's derived fault seed (and any other randomness).
	// Default 1. Same spec + same seed → byte-identical payload.
	Seed int64 `json:"seed,omitempty"`

	// Measurement parameters (kind-dependent; unknown-for-kind fields are
	// rejected only when they would silently change the result).
	Client      string   `json:"client,omitempty"`       // vantage: us, AZ, KZ, RU (default us)
	Endpoint    string   `json:"endpoint,omitempty"`     // endpoint host ID
	Domain      string   `json:"domain,omitempty"`       // test domain
	Control     string   `json:"control,omitempty"`      // control domain
	Protocol    string   `json:"protocol,omitempty"`     // http | https (default http)
	Repetitions int      `json:"repetitions,omitempty"`  // traceroute repetitions (default 3)
	Workers     int      `json:"workers,omitempty"`      // in-job parallel workers (default 1)
	RetryPasses int      `json:"retry_passes,omitempty"` // campaign retry passes
	Strategy    string   `json:"strategy,omitempty"`     // cenfuzz: run one strategy
	Extensions  bool     `json:"extensions,omitempty"`   // cenfuzz: include extension strategies
	Addrs       []string `json:"addrs,omitempty"`        // cenprobe: addresses (default: all devices)
	TopK        int      `json:"topk,omitempty"`         // cencluster: top-importance features
	MinPts      int      `json:"minpts,omitempty"`       // cencluster: DBSCAN min cluster size
	Scenario    string   `json:"scenario,omitempty"`     // tomography: one scenario (default: all)

	// Fault profile, applied through a per-job engine seeded from
	// (Seed, canonical spec) so realizations are job-deterministic.
	Loss float64 `json:"loss,omitempty"` // uniform packet-loss rate [0,1]
}

// Normalize fills defaults in place. Called once at admission so the
// stored spec, the derived seed, and the scheduler all see the same
// values.
func (s *JobSpec) Normalize() {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Client == "" {
		s.Client = "us"
	}
	if s.Protocol == "" {
		s.Protocol = "http"
	}
	if s.Repetitions <= 0 {
		s.Repetitions = 3
	}
	if s.Workers <= 0 {
		s.Workers = 1
	}
}

// Validate rejects specs the scheduler could not run. Host existence is
// checked at dispatch time (the world belongs to the scheduler); this is
// the shape-level check admission performs before persisting anything.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindCenTrace, KindCenFuzz:
		if s.Domain == "" {
			return fmt.Errorf("serve: %s job needs a domain", s.Kind)
		}
	case KindCenTraceCampaign, KindCenProbe, KindCenCluster, KindTomography:
		// Tomography scenario names are validated at dispatch time, like
		// host IDs: the scenario catalog belongs to the scheduler's layer.
	default:
		return fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	if s.Protocol != "http" && s.Protocol != "https" {
		return fmt.Errorf("serve: unknown protocol %q (want http or https)", s.Protocol)
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("serve: loss %v out of [0,1)", s.Loss)
	}
	return nil
}

// CanonKey renders the measurement-relevant part of a normalized spec as
// a stable string — the label the per-job fault seed is derived from.
// Tenant and Priority are deliberately excluded: who submitted a job and
// how urgently must not change its result bytes.
func (s JobSpec) CanonKey() string {
	c := s
	c.Tenant = ""
	c.Priority = 0
	raw, err := json.Marshal(c)
	if err != nil {
		// JobSpec is a plain struct of marshalable types; this cannot
		// happen short of memory corruption.
		panic(fmt.Sprintf("serve: canonicalizing spec: %v", err))
	}
	return string(raw)
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StateDead is the dead-letter state: the job failed transiently and
	// exhausted its retry budget. Dead jobs stay persisted and queryable
	// (GET /v1/jobs?state=dead) so an operator can inspect what the
	// service gave up on.
	StateDead JobState = "dead"
	// StateConflict is the replica-divergence state: two executions of
	// the same spec returned different digests — a determinism violation
	// or a corrupted/lying replica. Conflicted jobs are terminal and
	// never retried: the divergence is already durable and needs an
	// operator, not another roll of the dice.
	StateConflict JobState = "conflict"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDead || s == StateConflict
}

// listStates are the ?state= filter values GET /v1/jobs accepts, in
// lifecycle order (empty string — no filter — is also accepted).
var listStates = []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateDead, StateConflict}

// validListState reports whether state is usable as a ?state= filter.
func validListState(s JobState) bool {
	if s == "" {
		return true
	}
	for _, v := range listStates {
		if s == v {
			return true
		}
	}
	return false
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Attempts counts dispatches, including re-runs after a crash
	// recovery.
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Digest is the hex SHA-256 of the result payload, set once done —
	// what replica verification and the CI smoke compare.
	Digest string `json:"digest,omitempty"`
	// Replicas names the cluster nodes holding a durable copy of the
	// payload (empty on standalone nodes).
	Replicas []string `json:"replicas,omitempty"`
}

// jobsResponse is the body of GET /v1/jobs.
type jobsResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// submitResponse is the body of a successful POST /v1/jobs.
type submitResponse struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
}

// errorResponse is the JSON error body every non-2xx response carries.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429s.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}
