package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"cendev/internal/obs"
)

func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.StoreDir == "" {
		opts.StoreDir = t.TempDir()
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) (string, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.ID, resp
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after 60s", id)
	return JobStatus{}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s = %d: %s", id, resp.StatusCode, raw)
	}
	return raw
}

// TestServerDeterministicResults is the acceptance-criteria test: the
// same spec submitted twice onto a concurrent queue — interleaved with
// different jobs — and then again on a server with a different worker
// count must return byte-identical result payloads.
func TestServerDeterministicResults(t *testing.T) {
	spec := JobSpec{
		Kind:     KindCenTrace,
		Endpoint: "az-ep-0-0",
		Domain:   "www.globalblocked.example",
		Seed:     7,
		Loss:     0.05,
	}
	noise := JobSpec{
		Kind:     KindCenTrace,
		Endpoint: "kz-ep-0-0",
		Domain:   "www.pokerstars.com",
		Protocol: "https",
		Seed:     3,
	}

	_, ts4 := startServer(t, Options{Workers: 4, AdmitBurst: 64})
	idA, _ := submit(t, ts4, spec)
	idN1, _ := submit(t, ts4, noise)
	idB, _ := submit(t, ts4, spec)
	idN2, _ := submit(t, ts4, noise)

	for _, id := range []string{idA, idN1, idB, idN2} {
		if st := waitDone(t, ts4, id); st.State != StateDone {
			t.Fatalf("job %s: state %s error %q", id, st.State, st.Error)
		}
	}
	resA := fetchResult(t, ts4, idA)
	resB := fetchResult(t, ts4, idB)
	if !bytes.Equal(resA, resB) {
		t.Errorf("same spec, same server: payloads differ\nA: %s\nB: %s", resA, resB)
	}
	if bytes.Equal(resA, fetchResult(t, ts4, idN1)) {
		t.Error("different specs produced identical payloads; results are not spec-dependent")
	}

	// Same spec on a single-worker server in a fresh store: still
	// byte-identical.
	_, ts1 := startServer(t, Options{Workers: 1, AdmitBurst: 64})
	idC, _ := submit(t, ts1, spec)
	if st := waitDone(t, ts1, idC); st.State != StateDone {
		t.Fatalf("job %s on 1-worker server: state %s error %q", idC, st.State, st.Error)
	}
	if resC := fetchResult(t, ts1, idC); !bytes.Equal(resA, resC) {
		t.Errorf("workers=4 vs workers=1: payloads differ\nA: %s\nC: %s", resA, resC)
	}
}

func TestServerAdmission429(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	_, ts := startServer(t, Options{AdmitBurst: 1, AdmitRate: 0.25, Now: clk.now})

	spec := JobSpec{Kind: KindCenProbe}
	submit(t, ts, spec) // spends the only token

	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "4" {
		t.Errorf("Retry-After = %q, want \"4\" (1 token at 0.25/s)", ra)
	}
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	if er.RetryAfterSec != 4 {
		t.Errorf("body retry_after_sec = %d, want 4", er.RetryAfterSec)
	}

	// A different tenant is unaffected.
	other := spec
	other.Tenant = "other"
	submit(t, ts, other)
}

func TestServerQueueFull429(t *testing.T) {
	srv, ts := startServer(t, Options{QueueCapacity: 1, AdmitBurst: 64})
	// Hold the only queue slot with a reservation so the submission path
	// hits a deterministically full queue.
	if err := srv.queue.Reserve(); err != nil {
		t.Fatal(err)
	}
	defer srv.queue.Release()

	body, _ := json.Marshal(JobSpec{Kind: KindCenProbe})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("full-queue 429 missing Retry-After header")
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := startServer(t, Options{})
	for name, body := range map[string]string{
		"unknown kind":   `{"kind":"nope"}`,
		"missing domain": `{"kind":"centrace"}`,
		"bad loss":       `{"kind":"cenprobe","loss":1.5}`,
		"unknown field":  `{"kind":"cenprobe","bogus":1}`,
		"not json":       `{{{`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j-00424242")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
}

func TestServerResultStates(t *testing.T) {
	srv, ts := startServer(t, Options{})
	// A failed job: unknown endpoint ID.
	id, _ := submit(t, ts, JobSpec{Kind: KindCenTrace, Domain: "www.globalblocked.example", Endpoint: "no-such-host"})
	st := waitDone(t, ts, id)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("job with bad endpoint: %+v, want failed with error", st)
	}
	resp, err := http.Get(ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("result of failed job: %d, want 500", resp.StatusCode)
	}

	// A queued job (held back by a drained worker pool) reports 409.
	// Simulate by writing directly to the store: the job is never queued.
	e, err := srv.store.AppendQueued(testSpec("www.globalblocked.example"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/results/" + e.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of queued job: %d, want 409", resp.StatusCode)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := startServer(t, Options{Obs: reg, AdmitBurst: 8})
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe, Tenant: "acme"})
	waitDone(t, ts, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PromContentType)
	}
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`censerved_jobs_submitted_total{tenant="acme"} 1`,
		`censerved_jobs_done_total{kind="cenprobe"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerCrashRecovery simulates a kill -9 mid-campaign: a store is
// left with queued and running jobs plus a torn segment tail, then a new
// server opens the same directory. The jobs must be re-enqueued, re-run
// to completion, and the segments repaired.
func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Kind: KindCenTrace, Domain: "www.globalblocked.example", Seed: 7}
	spec.Normalize()
	queued, err := st.AppendQueued(spec)
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := st.AppendQueued(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateState(interrupted.ID, StateRunning, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	// kill -9: no drain, no close; plus a torn append on one segment.
	// (Abandoning the open store mimics the process dying with the files.)
	f, err := os.OpenFile(st.shards[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"seq":77,"id":"j-0007`)
	f.Close()

	var logMu sync.Mutex
	var logs []string
	srv, ts := startServer(t, Options{StoreDir: dir, Workers: 2,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		}})

	stA := waitDone(t, ts, queued.ID)
	stB := waitDone(t, ts, interrupted.ID)
	if stA.State != StateDone {
		t.Fatalf("recovered queued job: %+v", stA)
	}
	if stB.State != StateDone {
		t.Fatalf("recovered running job: %+v", stB)
	}
	if stB.Attempts < 2 {
		t.Errorf("interrupted job attempts = %d, want >= 2 (re-run)", stB.Attempts)
	}
	// Determinism across the crash: both jobs ran the same spec.
	if a, b := fetchResult(t, ts, queued.ID), fetchResult(t, ts, interrupted.ID); !bytes.Equal(a, b) {
		t.Error("same spec across crash recovery: payloads differ")
	}

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	assertCleanSegments(t, dir)

	logMu.Lock()
	defer logMu.Unlock()
	var sawRecovery bool
	for _, l := range logs {
		if strings.Contains(l, "recovered") {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Errorf("no recovery log lines; logs = %q", logs)
	}
}

func TestServerDrain(t *testing.T) {
	srv, ts := startServer(t, Options{})
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	waitDone(t, ts, id)

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("second drain not idempotent: %v", err)
	}

	// Draining: healthz 503, submissions 503, reads still work.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	body, _ := json.Marshal(JobSpec{Kind: KindCenProbe})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status read while draining: %d, want 200", resp.StatusCode)
	}
}
