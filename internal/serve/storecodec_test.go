package serve

import (
	"encoding/json"
	"reflect"
	"testing"
)

// fullStoreRecord exercises every field of the record schema.
func fullStoreRecord() *storeRecord {
	return &storeRecord{
		Seq:    42,
		Merged: 41,
		ID:     "j-00000042",
		State:  StateDone,
		Spec: &JobSpec{
			Kind: KindCenTrace, Tenant: "ten", Priority: 2, Seed: -7,
			Client: "client-0", Endpoint: "ep-0", Domain: "blocked.example",
			Control: "control.example", Protocol: "https", Repetitions: 11,
			Workers: 4, RetryPasses: 2, Strategy: "priority", Extensions: true,
			Addrs: []string{"198.51.100.1", "198.51.100.2"}, TopK: 3, MinPts: 2,
			Loss: 0.25,
		},
		Attempts: 3,
		Error:    "transient: timeout",
		Payload:  json.RawMessage(`{"blocked":true,"ttl":7}`),
		Digest:   "8b2c9a0f8b2c9a0f8b2c9a0f8b2c9a0f8b2c9a0f8b2c9a0f8b2c9a0f8b2c9a0f",
		Replicas: []string{"node-a", "node-c"},
	}
}

// TestStoreRecordRoundTrip is the golden check for the binary codec: a
// fully populated record must survive encode→decode bit-for-bit, and the
// decoded record's JSON form — the export view — must match the JSON the
// legacy format would have written for the same record.
func TestStoreRecordRoundTrip(t *testing.T) {
	orig := fullStoreRecord()
	payload := appendStoreRecord(nil, orig)
	got, err := decodeStoreRecord(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip diverged:\n  orig %+v\n  got  %+v", orig, got)
	}

	legacyJSON, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	exportJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(legacyJSON) != string(exportJSON) {
		t.Fatalf("JSON view diverged from legacy:\n  legacy %s\n  export %s", legacyJSON, exportJSON)
	}
}

// TestStoreRecordRoundTripZero: the all-zero record (nil spec, nil
// payload) must round-trip too — presence bits, not sentinel values.
func TestStoreRecordRoundTripZero(t *testing.T) {
	orig := &storeRecord{ID: "j-0", State: StateQueued}
	got, err := decodeStoreRecord(appendStoreRecord(nil, orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("zero record diverged: %+v vs %+v", orig, got)
	}
}

// TestStoreRecordEncodingDeterministic: the byte stream must be a pure
// function of the record — same record, same bytes, every time.
func TestStoreRecordEncodingDeterministic(t *testing.T) {
	rec := fullStoreRecord()
	a := appendStoreRecord(nil, rec)
	b := appendStoreRecord(nil, rec)
	if string(a) != string(b) {
		t.Fatal("two encodings of the same record differ")
	}
}

// TestStoreRecordVersionGate: a record from a future schema version must
// be rejected, not misparsed.
func TestStoreRecordVersionGate(t *testing.T) {
	payload := appendStoreRecord(nil, fullStoreRecord())
	payload[0] = storeRecordV2 + 1
	if _, err := decodeStoreRecord(payload); err == nil {
		t.Fatal("future-version record decoded without error")
	}
}

// TestStoreRecordV1Compat: a record written by the V1 schema (no digest,
// no replicas) must still decode — old shard segments outlive upgrades.
func TestStoreRecordV1Compat(t *testing.T) {
	orig := fullStoreRecord()
	orig.Digest = ""
	orig.Replicas = nil
	// Encode at V2, then rewrite as V1 by stamping the version byte and
	// dropping the V2 suffix (empty digest string + zero replica count =
	// exactly two trailing bytes).
	payload := appendStoreRecord(nil, orig)
	payload[0] = storeRecordV1
	payload = payload[:len(payload)-2]
	got, err := decodeStoreRecord(payload)
	if err != nil {
		t.Fatalf("decode v1 record: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("v1 record diverged:\n  orig %+v\n  got  %+v", orig, got)
	}
}

// FuzzStoreRecordRoundTrip feeds arbitrary bytes to the record decoder:
// it must never panic, and any payload it accepts must re-encode and
// re-decode to the same record (decode∘encode is the identity on the
// decoder's image).
func FuzzStoreRecordRoundTrip(f *testing.F) {
	f.Add(appendStoreRecord(nil, fullStoreRecord()))
	f.Add(appendStoreRecord(nil, &storeRecord{ID: "j-1", State: StateQueued}))
	f.Add([]byte{storeRecordV1})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeStoreRecord(payload)
		if err != nil {
			return
		}
		re := appendStoreRecord(nil, rec)
		rec2, err := decodeStoreRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip diverged:\n  first  %+v\n  second %+v", rec, rec2)
		}
	})
}
