package serve

// Binary form of one store record (DESIGN.md §14): the frame payload a
// shard append writes through internal/wire. The leading version byte
// gates schema evolution; every field after it is fixed-order. The JSON
// shape survives as the export/debug view (Store.ExportJSON) and as the
// read-only replay path for legacy shard-*.jsonl segments.

import (
	"fmt"

	"cendev/internal/wire"
)

// Store record schema versions. V1 is the pre-cluster shape; V2 appends
// the result digest and replica set. New records are written at V2; V1
// segments stay readable forever.
const (
	storeRecordV1 = 1
	storeRecordV2 = 2
)

// appendStoreRecord appends the binary payload of rec to b.
func appendStoreRecord(b []byte, rec *storeRecord) []byte {
	b = append(b, storeRecordV2)
	b = wire.AppendVarint(b, rec.Seq)
	b = wire.AppendVarint(b, rec.Merged)
	b = wire.AppendString(b, rec.ID)
	b = wire.AppendString(b, string(rec.State))
	b = wire.AppendBool(b, rec.Spec != nil)
	if rec.Spec != nil {
		b = appendJobSpec(b, rec.Spec)
	}
	b = wire.AppendVarint(b, int64(rec.Attempts))
	b = wire.AppendString(b, rec.Error)
	b = wire.AppendBytes(b, rec.Payload)
	b = wire.AppendString(b, rec.Digest)
	b = wire.AppendUvarint(b, uint64(len(rec.Replicas)))
	for _, r := range rec.Replicas {
		b = wire.AppendString(b, r)
	}
	return b
}

// decodeStoreRecord decodes one binary record payload.
func decodeStoreRecord(payload []byte) (*storeRecord, error) {
	d := wire.NewDec(payload)
	v := d.Byte()
	if v != storeRecordV1 && v != storeRecordV2 {
		if d.Err() == nil {
			return nil, fmt.Errorf("serve: unknown store record version %d", v)
		}
		return nil, d.Err()
	}
	rec := &storeRecord{}
	rec.Seq = d.Varint()
	rec.Merged = d.Varint()
	rec.ID = d.String()
	rec.State = JobState(d.String())
	if d.Bool() {
		rec.Spec = &JobSpec{}
		decodeJobSpec(d, rec.Spec)
	}
	rec.Attempts = int(d.Varint())
	rec.Error = d.String()
	rec.Payload = d.Bytes()
	if v >= storeRecordV2 {
		rec.Digest = d.String()
		if n := d.Count(); n > 0 && d.Err() == nil {
			rec.Replicas = make([]string, 0, n)
			for i := uint64(0); i < n && d.Err() == nil; i++ {
				rec.Replicas = append(rec.Replicas, d.String())
			}
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

func appendJobSpec(b []byte, s *JobSpec) []byte {
	b = wire.AppendString(b, s.Kind)
	b = wire.AppendString(b, s.Tenant)
	b = wire.AppendVarint(b, int64(s.Priority))
	b = wire.AppendVarint(b, s.Seed)
	b = wire.AppendString(b, s.Client)
	b = wire.AppendString(b, s.Endpoint)
	b = wire.AppendString(b, s.Domain)
	b = wire.AppendString(b, s.Control)
	b = wire.AppendString(b, s.Protocol)
	b = wire.AppendVarint(b, int64(s.Repetitions))
	b = wire.AppendVarint(b, int64(s.Workers))
	b = wire.AppendVarint(b, int64(s.RetryPasses))
	b = wire.AppendString(b, s.Strategy)
	b = wire.AppendBool(b, s.Extensions)
	b = wire.AppendUvarint(b, uint64(len(s.Addrs)))
	for _, a := range s.Addrs {
		b = wire.AppendString(b, a)
	}
	b = wire.AppendVarint(b, int64(s.TopK))
	b = wire.AppendVarint(b, int64(s.MinPts))
	return wire.AppendFloat64(b, s.Loss)
}

func decodeJobSpec(d *wire.Dec, s *JobSpec) {
	s.Kind = d.String()
	s.Tenant = d.String()
	s.Priority = int(d.Varint())
	s.Seed = d.Varint()
	s.Client = d.String()
	s.Endpoint = d.String()
	s.Domain = d.String()
	s.Control = d.String()
	s.Protocol = d.String()
	s.Repetitions = int(d.Varint())
	s.Workers = int(d.Varint())
	s.RetryPasses = int(d.Varint())
	s.Strategy = d.String()
	s.Extensions = d.Bool()
	if n := d.Count(); n > 0 && d.Err() == nil {
		s.Addrs = make([]string, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			s.Addrs = append(s.Addrs, d.String())
		}
	}
	s.TopK = int(d.Varint())
	s.MinPts = int(d.Varint())
	s.Loss = d.Float64()
}
