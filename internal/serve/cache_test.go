package serve

// Tests for the result cache (spec-digest dedup), the conflict state,
// and the ?state= filter surface.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestResultCacheDedup: an identical spec+seed submitted after the first
// finished must be served from the cache — no second execution, state
// done straight from POST, byte-identical payload, and a cache-hit
// metric.
func TestResultCacheDedup(t *testing.T) {
	var calls atomic.Int64
	opts := hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		calls.Add(1)
		return json.RawMessage(`{"verdict":"blocked"}`), nil
	})
	_, ts := startServer(t, opts)

	spec := JobSpec{Kind: KindCenProbe, Seed: 9}
	id1, _ := submit(t, ts, spec)
	st1 := waitDone(t, ts, id1)
	if st1.State != StateDone {
		t.Fatalf("first run: state %s (%s)", st1.State, st1.Error)
	}
	if st1.Digest == "" {
		t.Fatal("first run: no digest recorded")
	}

	id2, resp := submit(t, ts, spec)
	_ = resp
	st2 := waitDone(t, ts, id2)
	if st2.State != StateDone {
		t.Fatalf("cached run: state %s (%s)", st2.State, st2.Error)
	}
	if st2.Digest != st1.Digest {
		t.Fatalf("digest diverged: %s vs %s", st1.Digest, st2.Digest)
	}
	if got, want := calls.Load(), int64(1); got != want {
		t.Fatalf("executor ran %d times, want %d (second submission must hit the cache)", got, want)
	}
	if a, b := fetchResult(t, ts, id1), fetchResult(t, ts, id2); string(a) != string(b) {
		t.Fatalf("cached payload diverged: %s vs %s", a, b)
	}

	// A different tenant with the same measurement spec also hits: tenant
	// is excluded from the canonical key.
	spec.Tenant = "other"
	id3, _ := submit(t, ts, spec)
	if st := waitDone(t, ts, id3); st.State != StateDone {
		t.Fatalf("other-tenant cached run: state %s", st.State)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times; tenant must not bust the cache", calls.Load())
	}
	// A different seed misses: the seed is part of the result function.
	spec.Seed = 10
	id4, _ := submit(t, ts, spec)
	waitDone(t, ts, id4)
	if calls.Load() != 2 {
		t.Fatalf("executor ran %d times, want 2 (new seed must execute)", calls.Load())
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mraw, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mraw), "censerved_cache_hits 2") {
		t.Fatalf("/metrics missing censerved_cache_hits 2:\n%s", mraw)
	}
}

// TestResultCacheSurvivesRestart: the cache is rebuilt from the store at
// startup, so dedup works across daemon restarts.
func TestResultCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	hook := func(spec JobSpec) (json.RawMessage, error) {
		calls.Add(1)
		return json.RawMessage(`{"v":1}`), nil
	}
	opts := hookOpts(hook)
	opts.StoreDir = dir
	srv, ts := startServer(t, opts)
	spec := JobSpec{Kind: KindCenProbe, Seed: 4}
	id, _ := submit(t, ts, spec)
	waitDone(t, ts, id)
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	opts2 := hookOpts(hook)
	opts2.StoreDir = dir
	_, ts2 := startServer(t, opts2)
	id2, _ := submit(t, ts2, spec)
	if st := waitDone(t, ts2, id2); st.State != StateDone {
		t.Fatalf("post-restart run: state %s", st.State)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times; restart must not lose the cache", calls.Load())
	}
}

// scriptedBackend exercises the Backend seam directly.
type scriptedBackend struct {
	fn func(Job) (ExecResult, error)
}

func (b scriptedBackend) Execute(j Job) (ExecResult, error) { return b.fn(j) }

// TestConflictStateTerminal: a Conflict-classified error must land the
// job in StateConflict — terminal, never retried, 500 from the result
// endpoint, visible under ?state=conflict, counted in the conflict
// metric.
func TestConflictStateTerminal(t *testing.T) {
	var calls atomic.Int64
	opts := hookOpts(nil)
	opts.RunHook = nil
	opts.Backend = scriptedBackend{fn: func(j Job) (ExecResult, error) {
		calls.Add(1)
		return ExecResult{}, Conflict(fmt.Errorf("replica digest mismatch: node-b disagrees"))
	}}
	_, ts := startServer(t, opts)

	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	st := waitDone(t, ts, id)
	if st.State != StateConflict {
		t.Fatalf("state = %s, want conflict", st.State)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times; conflicts must not retry", calls.Load())
	}
	if !strings.Contains(st.Error, "digest mismatch") {
		t.Fatalf("status error %q lost the mismatch detail", st.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET /v1/results on conflicted job = %d, want 500", resp.StatusCode)
	}

	lresp, err := http.Get(ts.URL + "/v1/jobs?state=conflict")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var jr jobsResponse
	if err := json.NewDecoder(lresp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Jobs) != 1 || jr.Jobs[0].ID != id {
		t.Fatalf("?state=conflict returned %+v, want exactly job %s", jr.Jobs, id)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mraw, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mraw), `censerved_jobs_conflict_total{kind="cenprobe"} 1`) {
		t.Fatalf("/metrics missing conflict counter:\n%s", mraw)
	}
}

// TestConflictBeatsTransient: a conflict wrapped in Transient still
// hard-fails — divergence is durable; retrying is never the answer.
func TestConflictBeatsTransient(t *testing.T) {
	var calls atomic.Int64
	opts := hookOpts(nil)
	opts.RunHook = nil
	opts.Backend = scriptedBackend{fn: func(j Job) (ExecResult, error) {
		calls.Add(1)
		return ExecResult{}, Transient(Conflict(errors.New("diverged")))
	}}
	_, ts := startServer(t, opts)
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	if st := waitDone(t, ts, id); st.State != StateConflict {
		t.Fatalf("state = %s, want conflict", st.State)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times, want 1", calls.Load())
	}
}

// TestJobsStateFilter: every state is a valid ?state= filter; unknown
// values get a 400 that names the valid set.
func TestJobsStateFilter(t *testing.T) {
	_, ts := startServer(t, hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	}))
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	waitDone(t, ts, id)

	for _, state := range []string{"", "queued", "running", "done", "failed", "dead", "conflict"} {
		resp, err := http.Get(ts.URL + "/v1/jobs?state=" + state)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("?state=%s = %d, want 200", state, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?state=bogus = %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bogus", "queued", "dead", "conflict"} {
		if !strings.Contains(er.Error, want) {
			t.Errorf("400 message %q missing %q", er.Error, want)
		}
	}
}
