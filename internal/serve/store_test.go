package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cendev/internal/wire"
)

func testSpec(domain string) JobSpec {
	s := JobSpec{Kind: KindCenTrace, Domain: domain}
	s.Normalize()
	return s
}

// assertCleanSegments fails if any segment in dir holds a torn or
// undecodable record — the "no torn segments" invariant. Binary shards
// must frame-parse end to end; legacy JSONL segments must be whole JSON
// lines.
func assertCleanSegments(t *testing.T, dir string) {
	t.Helper()
	bins, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range bins {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(raw)
		for {
			payload, ok := r.Next()
			if !ok {
				break
			}
			if _, err := decodeStoreRecord(payload); err != nil {
				t.Errorf("%s: undecodable record: %v", filepath.Base(p), err)
			}
		}
		if _, torn := r.Torn(); torn {
			t.Errorf("%s: torn tail left in segment: %q", filepath.Base(p), r.Warnings())
		}
		if w := r.Warnings(); len(w) != 0 {
			t.Errorf("%s: segment not clean: %q", filepath.Base(p), w)
		}
	}
	jsonls, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range jsonls {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			var rec storeRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Errorf("%s line %d: torn record: %v", filepath.Base(p), line, err)
			}
		}
		f.Close()
	}
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	a, err := st.AppendQueued(testSpec("a.example"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.AppendQueued(testSpec("b.example"))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatalf("duplicate job IDs: %s", a.ID)
	}

	if err := st.UpdateState(a.ID, StateRunning, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	payload := json.RawMessage(`{"blocked":true}`)
	if err := st.UpdateState(a.ID, StateDone, 1, "", payload); err != nil {
		t.Fatal(err)
	}

	e, ok := st.Get(a.ID)
	if !ok || e.State != StateDone || string(e.Payload) != string(payload) {
		t.Fatalf("Get(%s) = %+v ok=%v, want done with payload", a.ID, e, ok)
	}
	pend := st.Pending()
	if len(pend) != 1 || pend[0].ID != b.ID {
		t.Fatalf("Pending = %+v, want just %s", pend, b.ID)
	}
}

func TestStoreRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := st.AppendQueued(testSpec("a.example"))
	b, _ := st.AppendQueued(testSpec("b.example"))
	c, _ := st.AppendQueued(testSpec("c.example"))
	payload := json.RawMessage(`{"blocked":false,"n":3}`)
	st.UpdateState(a.ID, StateDone, 1, "", payload)
	st.UpdateState(b.ID, StateRunning, 1, "", nil) // crash mid-run
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 3 {
		t.Fatalf("recovered %d jobs, want 3", st2.Len())
	}
	e, _ := st2.Get(a.ID)
	if e.State != StateDone || string(e.Payload) != string(payload) {
		t.Fatalf("job a after reopen: %+v, want done with original payload", e)
	}
	pend := st2.Pending()
	if len(pend) != 2 || pend[0].ID != b.ID || pend[1].ID != c.ID {
		t.Fatalf("Pending after reopen = %+v, want [b c] in admission order", pend)
	}
	// IDs keep advancing, no collisions.
	d, err := st2.AppendQueued(testSpec("d.example"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if d.ID == id {
			t.Fatalf("new ID %s collides with recovered job", d.ID)
		}
	}
}

func TestStoreTornTailTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := st.AppendQueued(testSpec("a.example"))
	b, _ := st.AppendQueued(testSpec("b.example"))
	st.UpdateState(a.ID, StateDone, 1, "", json.RawMessage(`{"ok":true}`))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// kill -9 mid-append: every shard gets the front half of a frame —
	// marker and a length that promises more payload than exists.
	torn := appendStoreRecord(nil, &storeRecord{Seq: 999, ID: "j-09999999", State: StateDone})
	tornFrame := wire.AppendFrame(nil, torn)
	paths, _ := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if len(paths) == 0 {
		t.Fatal("no binary shards written")
	}
	for _, p := range paths {
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tornFrame[:len(tornFrame)/2]); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	st2, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("recovered %d jobs, want 2 (torn record must not become a job)", st2.Len())
	}
	if _, ok := st2.Get("j-09999999"); ok {
		t.Fatal("torn record materialized as a job")
	}
	e, _ := st2.Get(a.ID)
	if e.State != StateDone {
		t.Fatalf("job a = %s, want done", e.State)
	}
	if e, _ := st2.Get(b.ID); e.State != StateQueued {
		t.Fatalf("job b = %s, want queued", e.State)
	}
	var truncated int
	for _, w := range st2.Warnings() {
		if strings.Contains(w, "truncated torn tail") {
			truncated++
		}
	}
	if truncated == 0 {
		t.Fatalf("no truncation warning; warnings = %q", st2.Warnings())
	}
	// The repair must leave clean segments and an appendable store.
	assertCleanSegments(t, dir)
	if _, err := st2.AppendQueued(testSpec("c.example")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	assertCleanSegments(t, dir)
}

func TestStoreBinaryInteriorCorruptionResyncs(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := st.AppendQueued(testSpec("a.example"))
	b, _ := st.AppendQueued(testSpec("b.example"))
	c, _ := st.AppendQueued(testSpec("c.example"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip the last payload byte of the middle frame: its CRC fails, and
	// replay must resync at the third frame's marker instead of dropping
	// the good tail.
	p := filepath.Join(dir, "shard-00.bin")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var markers []int
	for i := 0; i+len(wire.Marker) <= len(raw); i++ {
		if raw[i] == wire.Marker[0] && raw[i+1] == wire.Marker[1] &&
			raw[i+2] == wire.Marker[2] && raw[i+3] == wire.Marker[3] {
			markers = append(markers, i)
		}
	}
	if len(markers) != 3 {
		t.Fatalf("expected 3 frames, found markers at %v", markers)
	}
	raw[markers[2]-1] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("recovered %d jobs, want 2 (corrupt middle record skipped)", st2.Len())
	}
	if _, ok := st2.Get(b.ID); ok {
		t.Fatal("corrupt record materialized as a job")
	}
	for _, id := range []string{a.ID, c.ID} {
		if e, ok := st2.Get(id); !ok || e.State != StateQueued {
			t.Fatalf("job %s after interior corruption: %+v ok=%v", id, e, ok)
		}
	}
	var resynced bool
	for _, w := range st2.Warnings() {
		if strings.Contains(w, "resynced") {
			resynced = true
		}
	}
	if !resynced {
		t.Fatalf("no resync warning; warnings = %q", st2.Warnings())
	}
}

func TestStoreInteriorTornRecordSkippedNotTruncated(t *testing.T) {
	dir := t.TempDir()
	// Build a single-shard segment by hand: good, torn, good.
	p := filepath.Join(dir, "shard-00.jsonl")
	lines := []string{
		`{"seq":1,"id":"j-00000001","state":"queued","spec":{"kind":"centrace","domain":"a.example"}}`,
		`{"seq":2,"id":"j-00000002","state":"qu`,
		`{"seq":3,"id":"j-00000001","state":"done","payload":{"ok":true}}`,
	}
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e, ok := st.Get("j-00000001")
	if !ok || e.State != StateDone {
		t.Fatalf("good record after interior tear lost: %+v ok=%v", e, ok)
	}
	if len(st.Warnings()) != 1 || !strings.Contains(st.Warnings()[0], "line 2") {
		t.Fatalf("warnings = %q, want one mentioning line 2", st.Warnings())
	}
	// The good tail must survive: no truncation happened.
	raw, _ := os.ReadFile(p)
	if !strings.Contains(string(raw), `"state":"done"`) {
		t.Fatal("interior tear caused truncation of the good tail")
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.compactMinRecords = 8
	a, _ := st.AppendQueued(testSpec("a.example"))
	// Pile up garbage: every update is a superseded record.
	for i := 1; i <= 40; i++ {
		if err := st.UpdateState(a.ID, StateRunning, i, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	payload := json.RawMessage(`{"final":true}`)
	if err := st.UpdateState(a.ID, StateDone, 41, "", payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "shard-00.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// 42 records were appended; periodic compaction must have kept the
	// segment near the live size (one merged record plus post-compaction
	// updates below the next trigger).
	n := 0
	for r := wire.NewReader(raw); ; n++ {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if n >= st.compactMinRecords {
		t.Fatalf("segment has %d records, want < %d (compaction never ran?)", n, st.compactMinRecords)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted segment replays to the same state.
	st2, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e, ok := st2.Get(a.ID)
	if !ok || e.State != StateDone || e.Attempts != 41 || string(e.Payload) != string(payload) {
		t.Fatalf("after compaction+reopen: %+v ok=%v", e, ok)
	}
	if e.Spec.Domain != "a.example" {
		t.Fatalf("spec lost in compaction: %+v", e.Spec)
	}
}

func TestStoreLeftoverTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	// A crash between temp-write and rename leaves a .tmp file; it must
	// not be replayed as a segment.
	if err := os.WriteFile(filepath.Join(dir, "shard-00.jsonl.tmp"),
		[]byte(`{"seq":9,"id":"j-00000009","state":"done"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Fatalf("store replayed a .tmp file: %d jobs", st.Len())
	}
}

func TestStoreShardCountChange(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 8; i++ {
		e, err := st.AppendQueued(testSpec(fmt.Sprintf("d%d.example", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID)
	}
	st.UpdateState(ids[0], StateDone, 1, "", json.RawMessage(`{"i":0}`))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with fewer shards: legacy segments must still be replayed
	// and updates land in the new hash-owner shard.
	st2, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 8 {
		t.Fatalf("recovered %d jobs across shard-count change, want 8", st2.Len())
	}
	if e, _ := st2.Get(ids[0]); e.State != StateDone {
		t.Fatalf("job 0 state = %s, want done", e.State)
	}
	if err := st2.UpdateState(ids[3], StateDone, 1, "", json.RawMessage(`{"i":3}`)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCompactionBeatsStaleLegacyRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Find a job whose records land in shard-01 — a legacy segment once
	// the store reopens with one shard.
	var victim string
	for i := 0; i < 8 && victim == ""; i++ {
		e, err := st.AppendQueued(testSpec(fmt.Sprintf("d%d.example", i)))
		if err != nil {
			t.Fatal(err)
		}
		if st.shardFor(e.ID) == 1 {
			victim = e.ID
		}
	}
	if victim == "" {
		t.Fatal("no job hashed to shard 1")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with one shard: the victim's queued record now lives in a
	// legacy read-only segment. Progress it and compact the active shard —
	// the compacted merged record has the job's first seq, which ties with
	// the stale queued record still on disk in shard-01.
	st2, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := json.RawMessage(`{"v":1}`)
	if err := st2.UpdateState(victim, StateDone, 1, "", payload); err != nil {
		t.Fatal(err)
	}
	st2.mu.Lock()
	err = st2.compactLocked(0)
	st2.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, err := OpenStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	e, ok := st3.Get(victim)
	if !ok || e.State != StateDone || string(e.Payload) != string(payload) {
		t.Fatalf("stale legacy record resurrected the job: %+v ok=%v, want done", e, ok)
	}
}
