package serve

import (
	"testing"
	"time"
)

// fakeClock is an adjustable admission clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmissionBurstThenReject(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(3, 1, clk.now)
	for i := 0; i < 3; i++ {
		if ok, _ := a.Allow("t1"); !ok {
			t.Fatalf("submission %d rejected inside burst", i)
		}
	}
	ok, retry := a.Allow("t1")
	if ok {
		t.Fatal("submission beyond burst admitted")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want 1s (rate 1 token/s, bucket empty)", retry)
	}
}

func TestAdmissionRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(2, 0.5, clk.now) // one token every 2s
	a.Allow("t1")
	a.Allow("t1")
	if ok, retry := a.Allow("t1"); ok || retry != 2*time.Second {
		t.Fatalf("empty bucket: ok=%v retry=%v, want reject with 2s", ok, retry)
	}
	clk.advance(2 * time.Second)
	if ok, _ := a.Allow("t1"); !ok {
		t.Fatal("token not refilled after 2s at rate 0.5")
	}
	// Refill never exceeds burst.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := a.Allow("t1"); !ok {
			t.Fatalf("refill-to-burst: submission %d rejected", i)
		}
	}
	if ok, _ := a.Allow("t1"); ok {
		t.Fatal("bucket refilled beyond burst")
	}
}

func TestAdmissionTenantsIsolated(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(1, 1, clk.now)
	if ok, _ := a.Allow("noisy"); !ok {
		t.Fatal("first noisy submission rejected")
	}
	if ok, _ := a.Allow("noisy"); ok {
		t.Fatal("noisy tenant not throttled")
	}
	// A different tenant still has its full burst.
	if ok, _ := a.Allow("quiet"); !ok {
		t.Fatal("quiet tenant throttled by noisy tenant's bucket")
	}
}
