package serve

import (
	"encoding/json"
	"fmt"

	"cendev/internal/cenfuzz"
	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/experiments"
	"cendev/internal/faults"
	"cendev/internal/obs"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Scheduler turns admitted job specs into measurement runs. It owns one
// canonical base world, built once at startup; every job runs on a
// private clone of that world, rewound to the same origin state, with a
// fault engine seeded from the spec alone — the mechanism behind the
// service determinism contract (two submissions of one spec produce
// byte-identical payloads no matter how the queue interleaves them
// across workers).
type Scheduler struct {
	world *experiments.Scenario
	// cloneMu serializes base-network clones: Clone is cheap relative to
	// a measurement, and serializing it keeps the base world's shared
	// structures free of concurrent access by construction.
	cloneMu chan struct{}
	obs     *obs.Registry
}

// NewScheduler builds the canonical world. The registry, when non-nil,
// receives the aggregated measurement series of every job (clones share
// it), alongside the service's own series.
func NewScheduler(reg *obs.Registry) *Scheduler {
	w := experiments.BuildWorld()
	w.Net.SetObs(reg)
	// Freeze the geo registry before any concurrency exists, so later
	// clones taken by concurrent jobs only ever read it.
	w.Net.Geo.Freeze()
	s := &Scheduler{world: w, cloneMu: make(chan struct{}, 1), obs: reg}
	s.cloneMu <- struct{}{}
	return s
}

// clone takes a private copy of the base world's network.
func (s *Scheduler) clone() *simnet.Network {
	<-s.cloneMu
	defer func() { s.cloneMu <- struct{}{} }()
	return s.world.Net.Clone()
}

// client resolves a vantage-point name against the base world. Host
// pointers from the base graph are valid against clones: measurement code
// resolves hops by address, exactly as campaigns already do.
func (s *Scheduler) client(name string) (*topology.Host, error) {
	if name == "us" {
		return s.world.USClient, nil
	}
	if h := s.world.InCountryClients[name]; h != nil {
		return h, nil
	}
	return nil, fmt.Errorf("serve: unknown client %q (have us, AZ, KZ, RU)", name)
}

// endpoint resolves an endpoint host ID, falling back to the domain's
// origin server when the ID is empty.
func (s *Scheduler) endpoint(id, domain string) (*topology.Host, error) {
	for _, e := range s.world.Endpoints {
		if e.Host.ID == id {
			return e.Host, nil
		}
	}
	if id == "" {
		if h := s.world.Origins[domain]; h != nil {
			return h, nil
		}
		return nil, fmt.Errorf("serve: no origin for domain %q and no endpoint given", domain)
	}
	return nil, fmt.Errorf("serve: unknown endpoint %q", id)
}

// Run executes one job and returns its canonical payload. The spec must
// be normalized. Payload bytes are a pure function of the spec.
func (s *Scheduler) Run(spec JobSpec) (json.RawMessage, error) {
	switch spec.Kind {
	case KindCenTrace:
		return s.runCenTrace(spec)
	case KindCenTraceCampaign:
		return s.runCampaign(spec)
	case KindCenFuzz:
		return s.runCenFuzz(spec)
	case KindCenProbe:
		return s.runCenProbe(spec)
	case KindCenCluster:
		return s.runCenCluster(spec)
	case KindTomography:
		return s.runTomography(spec)
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
}

// jobNet clones the base network and installs the spec's fault profile
// behind a seed derived from the spec's measurement-relevant content, so
// fault realizations are identical for identical specs.
func (s *Scheduler) jobNet(spec JobSpec) *simnet.Network {
	n := s.clone()
	if spec.Loss > 0 {
		seed := faults.DeriveSeed(spec.Seed, spec.CanonKey())
		n.SetFaults(faults.NewEngine(seed).AddGlobal(faults.UniformLoss(spec.Loss)))
	}
	return n
}

func marshalPayload(v any) (json.RawMessage, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal payload: %w", err)
	}
	return raw, nil
}

func (s *Scheduler) runCenTrace(spec JobSpec) (json.RawMessage, error) {
	client, err := s.client(spec.Client)
	if err != nil {
		return nil, err
	}
	ep, err := s.endpoint(spec.Endpoint, spec.Domain)
	if err != nil {
		return nil, err
	}
	proto, err := centrace.ParseProtocol(spec.Protocol)
	if err != nil {
		return nil, err
	}
	res := centrace.RunJob(s.jobNet(spec), client, ep, centrace.JobSpec{
		ControlDomain: controlOr(spec.Control),
		TestDomain:    spec.Domain,
		Protocol:      proto,
		Repetitions:   spec.Repetitions,
	})
	return marshalPayload(res)
}

func (s *Scheduler) runCampaign(spec JobSpec) (json.RawMessage, error) {
	client, err := s.client(spec.Client)
	if err != nil {
		return nil, err
	}
	var targets []centrace.Target
	for _, e := range s.world.Endpoints {
		for _, domain := range experiments.TestDomainsFor(e.Country) {
			for _, proto := range []centrace.Protocol{centrace.HTTP, centrace.HTTPS} {
				targets = append(targets, centrace.Target{
					Endpoint: e.Host, Domain: domain, Protocol: proto, Label: e.Country,
				})
			}
		}
	}
	res := centrace.RunCampaignJob(s.jobNet(spec), client, targets, centrace.CampaignJobSpec{
		ControlDomain: controlOr(spec.Control),
		Repetitions:   spec.Repetitions,
		Workers:       spec.Workers,
		RetryPasses:   spec.RetryPasses,
	})
	return marshalPayload(res)
}

func (s *Scheduler) runCenFuzz(spec JobSpec) (json.RawMessage, error) {
	client, err := s.client(spec.Client)
	if err != nil {
		return nil, err
	}
	ep, err := s.endpoint(spec.Endpoint, spec.Domain)
	if err != nil {
		return nil, err
	}
	res, err := cenfuzz.RunJob(s.jobNet(spec), client, ep, cenfuzz.JobSpec{
		TestDomain:    spec.Domain,
		ControlDomain: controlOr(spec.Control),
		Strategy:      spec.Strategy,
		Extensions:    spec.Extensions,
		Workers:       spec.Workers,
	})
	if err != nil {
		return nil, err
	}
	return marshalPayload(res)
}

func (s *Scheduler) runCenProbe(spec JobSpec) (json.RawMessage, error) {
	addrs, err := cenprobe.ParseAddrs(spec.Addrs)
	if err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		// Default sweep: every censorship device's management address in
		// deployment order (ProbeAll sorts, so order here is cosmetic).
		for _, d := range s.world.Devices {
			addrs = append(addrs, d.Device.Addr)
		}
	}
	res := cenprobe.RunJob(s.jobNet(spec), cenprobe.JobSpec{Addrs: addrs, Workers: spec.Workers})
	return marshalPayload(res)
}

// runCenCluster runs the full §7 study. BuildCorpus constructs its own
// world, so this kind ignores the fault profile; it is the heaviest job
// the service dispatches.
func (s *Scheduler) runCenCluster(spec JobSpec) (json.RawMessage, error) {
	c := experiments.BuildCorpus(experiments.CorpusConfig{
		Repetitions: spec.Repetitions,
		Workers:     spec.Workers,
		Obs:         s.obs,
	})
	topk := spec.TopK
	if topk <= 0 {
		topk = 10
	}
	minpts := spec.MinPts
	if minpts <= 0 {
		minpts = 2
	}
	res := experiments.Fig6(c, experiments.Fig6Config{TopK: topk, MinPts: minpts, Workers: spec.Workers})
	type clusterPayload struct {
		Observations int    `json:"observations"`
		Rendered     string `json:"rendered"`
	}
	return marshalPayload(clusterPayload{
		Observations: len(c.Observations()),
		Rendered:     experiments.RenderFig6(res),
	})
}

// runTomography runs the churn-tomography cross-validation study — all
// scenarios, or the one spec.Scenario names. Like cencluster, the study
// builds its own scenario worlds, so the base-world clone and fault
// profile are not used; the payload is a pure function of the spec.
func (s *Scheduler) runTomography(spec JobSpec) (json.RawMessage, error) {
	var names []string
	if spec.Scenario != "" {
		names = []string{spec.Scenario}
	}
	cv, err := experiments.CrossValidateNamed(names, experiments.CrossValConfig{
		Workers:     spec.Workers,
		Repetitions: spec.Repetitions,
		Obs:         s.obs,
	})
	if err != nil {
		return nil, err
	}
	type tomographyPayload struct {
		Cells       []experiments.CrossValCell `json:"cells"`
		Comparable  int                        `json:"comparable"`
		Agreements  int                        `json:"agreements"`
		AgreementOK bool                       `json:"agreement_ok"`
		Rendered    string                     `json:"rendered"`
	}
	return marshalPayload(tomographyPayload{
		Cells:       cv.Cells,
		Comparable:  cv.Comparable,
		Agreements:  cv.Agreements,
		AgreementOK: cv.OK(),
		Rendered:    experiments.RenderCrossValidation(cv),
	})
}

// controlOr defaults the control domain.
func controlOr(c string) string {
	if c == "" {
		return experiments.ControlDomain
	}
	return c
}
