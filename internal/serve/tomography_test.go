package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The tomography job kind runs end to end through the service: submitted
// over HTTP, dispatched by the scheduler, payload byte-identical for the
// same spec at different in-job worker counts.
func TestServerTomographyJob(t *testing.T) {
	_, ts := startServer(t, Options{Workers: 2, AdmitBurst: 16})

	spec := JobSpec{Kind: KindTomography, Scenario: "two-vantage-exact"}
	idA, _ := submit(t, ts, spec)
	if st := waitDone(t, ts, idA); st.State != StateDone {
		t.Fatalf("tomography job: state %s error %q", st.State, st.Error)
	}
	resA := fetchResult(t, ts, idA)

	var payload struct {
		Cells       []json.RawMessage `json:"cells"`
		Comparable  int               `json:"comparable"`
		Agreements  int               `json:"agreements"`
		AgreementOK bool              `json:"agreement_ok"`
		Rendered    string            `json:"rendered"`
	}
	if err := json.Unmarshal(resA, &payload); err != nil {
		t.Fatalf("payload not JSON: %v\n%s", err, resA)
	}
	if len(payload.Cells) != 1 || payload.Comparable != 1 || payload.Agreements != 1 || !payload.AgreementOK {
		t.Fatalf("unexpected payload: %s", resA)
	}
	if !strings.Contains(payload.Rendered, "agreement-ok: true") {
		t.Fatalf("rendered table missing gate line:\n%s", payload.Rendered)
	}

	// Same spec but a different in-job worker count must not change the
	// measured cells (Workers is part of the spec, so compare cells, not
	// whole payload digests).
	idB, _ := submit(t, ts, JobSpec{Kind: KindTomography, Scenario: "two-vantage-exact", Workers: 4})
	if st := waitDone(t, ts, idB); st.State != StateDone {
		t.Fatalf("tomography job (workers=4): state %s error %q", st.State, st.Error)
	}
	var payloadB struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(fetchResult(t, ts, idB), &payloadB); err != nil {
		t.Fatal(err)
	}
	if len(payloadB.Cells) != 1 || !bytes.Equal(payload.Cells[0], payloadB.Cells[0]) {
		t.Fatalf("cell bytes differ across in-job worker counts:\nA: %s\nB: %s",
			payload.Cells[0], payloadB.Cells[0])
	}
}

// Unknown scenario names fail at dispatch with a helpful error, like
// unknown hosts do.
func TestServerTomographyUnknownScenario(t *testing.T) {
	_, ts := startServer(t, Options{Workers: 1, AdmitBurst: 4})
	id, _ := submit(t, ts, JobSpec{Kind: KindTomography, Scenario: "no-such-scenario"})
	st := waitDone(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "no-such-scenario") {
		t.Fatalf("error %q does not name the bad scenario", st.Error)
	}
}
