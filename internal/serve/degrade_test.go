package serve

// Tests for the graceful-degradation layer: transient-vs-permanent retry
// classification, seeded backoff, the watchdog, the dead-letter state
// and its query endpoint, and degraded read-only mode under persistent
// store write failures. All of them use the RunHook seam — building the
// real measurement world is expensive and irrelevant to this layer.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cendev/internal/obs"
	"cendev/internal/vfs"
)

// hookOpts returns Options with a scripted executor and a fast watchdog.
func hookOpts(hook func(JobSpec) (json.RawMessage, error)) Options {
	return Options{
		Workers: 1,
		Obs:     obs.NewRegistry(),
		RunHook: hook,
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var calls atomic.Int64
	_, ts := startServer(t, hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		if calls.Add(1) <= 2 {
			return nil, Transient(errors.New("upstream flaked"))
		}
		return json.RawMessage(`{"ok":true}`), nil
	}))
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	st := waitDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", st.Attempts)
	}
	if got := fetchResult(t, ts, id); string(got) != `{"ok":true}` {
		t.Fatalf("result = %s", got)
	}
}

func TestTransientExhaustedGoesDead(t *testing.T) {
	_, ts := startServer(t, hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		return nil, Transient(errors.New("always flaky"))
	}))
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	st := waitDone(t, ts, id)
	if st.State != StateDead {
		t.Fatalf("state = %s, want dead", st.State)
	}
	if st.Attempts != 3 { // 1 + default budget 2
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
	if !strings.Contains(st.Error, "always flaky") {
		t.Fatalf("error = %q", st.Error)
	}

	// The dead-letter query must surface it.
	resp, err := http.Get(ts.URL + "/v1/jobs?state=dead")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobsResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Jobs) != 1 || jr.Jobs[0].ID != id || jr.Jobs[0].State != StateDead {
		t.Fatalf("GET /v1/jobs?state=dead = %+v", jr.Jobs)
	}

	// Results of a dead job report its error, like a failed one.
	rresp, err := http.Get(ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET /v1/results of dead job = %d, want 500", rresp.StatusCode)
	}
}

func TestPermanentFailureSpendsNoRetries(t *testing.T) {
	var calls atomic.Int64
	_, ts := startServer(t, hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("spec resolves to nothing")
	}))
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	st := waitDone(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("attempts = %d, calls = %d; permanent errors must not retry", st.Attempts, calls.Load())
	}
}

func TestDeadJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	opts := hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		return nil, Transient(errors.New("flaky"))
	})
	opts.StoreDir = dir
	srv, ts := startServer(t, opts)
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	waitDone(t, ts, id)
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same store: the dead job must come back dead — not
	// requeued, not forgotten.
	opts2 := hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		t.Error("restart re-ran a dead job")
		return nil, nil
	})
	opts2.StoreDir = dir
	srv2, _ := startServer(t, opts2)
	e, ok := srv2.Store().Get(id)
	if !ok || e.State != StateDead {
		t.Fatalf("after restart job = %+v ok=%v, want dead", e, ok)
	}
	if err := srv2.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogTimesOutHungJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	opts := hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		<-release // hung until the test tears down
		return nil, errors.New("released")
	})
	opts.JobTimeout = 20 * time.Millisecond
	opts.RetryBudget = -1 // no retries: go straight to the dead letter
	_, ts := startServer(t, opts)
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	st := waitDone(t, ts, id)
	if st.State != StateDead {
		t.Fatalf("state = %s (error %q), want dead", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "watchdog") {
		t.Fatalf("error = %q, want watchdog timeout", st.Error)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	for attempt := 1; attempt <= 10; attempt++ {
		a := retryDelay(7, "j-00000001", attempt)
		b := retryDelay(7, "j-00000001", attempt)
		if a != b {
			t.Fatalf("attempt %d: nondeterministic delay %d vs %d", attempt, a, b)
		}
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		base := int64(1) << shift
		if a < base || a >= 2*base {
			t.Fatalf("attempt %d: delay %d outside [%d, %d)", attempt, a, base, 2*base)
		}
	}
	if retryDelay(7, "j-00000001", 1) == retryDelay(8, "j-00000001", 1) &&
		retryDelay(7, "j-00000002", 1) == retryDelay(7, "j-00000003", 1) {
		t.Fatal("jitter ignores both seed and job ID")
	}
}

// flakyFS delegates to a chaos filesystem and, once tripped, fails every
// write and sync — the persistent store failure that must degrade the
// server rather than kill it.
type flakyFS struct {
	vfs.FS
	failing atomic.Bool
}

func (f *flakyFS) wrap(h vfs.File, err error) (vfs.File, error) {
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: h, fs: f}, nil
}

func (f *flakyFS) OpenFile(name string, flag int, perm iofs.FileMode) (vfs.File, error) {
	return f.wrap(f.FS.OpenFile(name, flag, perm))
}
func (f *flakyFS) Open(name string) (vfs.File, error)   { return f.wrap(f.FS.Open(name)) }
func (f *flakyFS) Create(name string) (vfs.File, error) { return f.wrap(f.FS.Create(name)) }

type flakyFile struct {
	vfs.File
	fs *flakyFS
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.fs.failing.Load() {
		return 0, vfs.ErrIO
	}
	return f.File.Write(p)
}

func (f *flakyFile) Sync() error {
	if f.fs.failing.Load() {
		return vfs.ErrIO
	}
	return f.File.Sync()
}

func TestDegradedReadOnlyMode(t *testing.T) {
	fsys := &flakyFS{FS: vfs.NewChaos(1)}
	opts := hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		return json.RawMessage(`{"ok":true}`), nil
	})
	opts.FS = fsys
	opts.StoreDir = "store"
	opts.DegradeAfter = 3
	srv, ts := startServer(t, opts)

	// Healthy phase: a job runs end to end.
	id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe})
	waitDone(t, ts, id)

	// Store starts failing every write. Each rejected submission is one
	// consecutive failure; the third trips degraded mode.
	fsys.failing.Store(true)
	for i := 0; i < 3; i++ {
		body := strings.NewReader(`{"kind":"cenprobe"}`)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit %d with failing store = %d", i, resp.StatusCode)
		}
	}
	if !srv.Degraded() {
		t.Fatal("server not degraded after 3 consecutive store write failures")
	}

	// Degraded: submissions 503, health 503, reads still work.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"kind":"cenprobe"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "degraded") {
		t.Fatalf("submit while degraded = %d %s, want 503 degraded", resp.StatusCode, raw)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while degraded = %d, want 503", hresp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("status read while degraded = %d, want 200", sresp.StatusCode)
	}

	// And the obs gauge says so.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mraw), "censerved_degraded 1") {
		t.Fatalf("/metrics missing censerved_degraded 1:\n%s", mraw)
	}
}

func TestJobsListEndpoint(t *testing.T) {
	_, ts := startServer(t, hookOpts(func(spec JobSpec) (json.RawMessage, error) {
		return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, spec.Seed)), nil
	}))
	var ids []string
	for i := 0; i < 3; i++ {
		id, _ := submit(t, ts, JobSpec{Kind: KindCenProbe, Seed: int64(i + 1)})
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitDone(t, ts, id)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobsResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Jobs) != 3 {
		t.Fatalf("GET /v1/jobs returned %d jobs, want 3", len(jr.Jobs))
	}
	for i, js := range jr.Jobs { // admission order
		if js.ID != ids[i] {
			t.Fatalf("jobs[%d] = %s, want %s", i, js.ID, ids[i])
		}
	}

	dresp, err := http.Get(ts.URL + "/v1/jobs?state=dead")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dead jobsResponse
	if err := json.NewDecoder(dresp.Body).Decode(&dead); err != nil {
		t.Fatal(err)
	}
	if len(dead.Jobs) != 0 {
		t.Fatalf("?state=dead = %+v, want empty", dead.Jobs)
	}

	bresp, err := http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?state=bogus = %d, want 400", bresp.StatusCode)
	}
}
