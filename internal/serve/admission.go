package serve

import (
	"math"
	"sync"
	"time"
)

// Admission is the per-tenant token-bucket gate in front of the queue.
// Each tenant owns an independent bucket of burst tokens refilled at rate
// tokens/second; a submission spends one token. An empty bucket is the
// saturation signal the API turns into 429 + Retry-After — admission
// rejects rather than queueing unboundedly, so one noisy tenant cannot
// starve the rest or balloon the daemon's memory.
type Admission struct {
	mu      sync.Mutex
	burst   float64
	rate    float64
	now     func() time.Time
	tenants map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission creates a gate giving each tenant burst tokens refilled at
// rate tokens/second. now is the clock source (nil means time.Now);
// injectable so tests drive refill deterministically.
func NewAdmission(burst int, rate float64, now func() time.Time) *Admission {
	if burst < 1 {
		burst = 1
	}
	if rate <= 0 {
		rate = 1
	}
	if now == nil {
		now = time.Now //cenlint:volatile admission rate limiting is wall-clock by design; tests inject a deterministic now-func, and buckets never touch job results
	}
	return &Admission{
		burst:   float64(burst),
		rate:    rate,
		now:     now,
		tenants: make(map[string]*bucket),
	}
}

// Allow spends one of tenant's tokens. When the bucket is empty it
// reports ok=false and how long until a full token has refilled — the
// Retry-After the API sends back.
func (a *Admission) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.now()
	b, found := a.tenants[tenant]
	if !found {
		b = &bucket{tokens: a.burst, last: t}
		a.tenants[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(a.burst, b.tokens+dt*a.rate)
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	missing := 1 - b.tokens
	return false, time.Duration(math.Ceil(missing/a.rate)) * time.Second
}
