package serve

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cendev/internal/vfs"
	"cendev/internal/wire"
)

// FuzzStoreReplay feeds arbitrary bytes to the sharded store's segment
// readers as pre-existing shard files — the same bytes installed both as
// a legacy JSONL segment and as a binary segment, so one input exercises
// both replay paths. OpenStore must never panic, and its crash-recovery
// contract must hold: after the first open repairs the segments
// (truncating any torn tail), a second open of the same directory
// rebuilds exactly the same merged index and finds nothing left to
// repair.
//
// The same bytes then seed a chaos filesystem, with a fuzz-chosen fault
// schedule (one hard failure, one torn write) layered on top of a live
// append workload: whatever the faults do, every append the store
// acknowledged must survive the crash+reboot that follows.
func FuzzStoreReplay(f *testing.F) {
	f.Add([]byte(nil), int64(1), uint8(0), uint8(0))
	f.Add([]byte(`{"seq":1,"id":"j-00000001","state":"queued","spec":{"kind":"centrace"}}`+"\n"), int64(2), uint8(0), uint8(0))
	f.Add([]byte(`{"seq":1,"id":"j-1","state":"queued"}`+"\n"+`{"seq":2,"id":"j-1","state":"done"}`+"\n"), int64(3), uint8(5), uint8(0))
	f.Add([]byte(`{"seq":1,"id":"j-1","state":"queued"}`+"\n"+`{"seq":2,"id":"j-1","st`), int64(4), uint8(0), uint8(9)) // torn tail
	f.Add([]byte("garbage\n"+`{"seq":3,"id":"j-2","state":"running"}`+"\n"), int64(5), uint8(7), uint8(12))
	f.Add([]byte(`{"seq":9,"merged":12,"id":"j-3","state":"done","payload":{"x":1}}`+"\n"), int64(6), uint8(3), uint8(3))
	// Binary seeds: a clean frame, a torn second frame, interior garbage.
	recA := appendStoreRecord(nil, &storeRecord{Seq: 1, ID: "j-00000001", State: StateQueued})
	recB := appendStoreRecord(nil, &storeRecord{Seq: 2, ID: "j-00000001", State: StateDone})
	frameA := wire.AppendFrame(nil, recA)
	frameB := wire.AppendFrame(nil, recB)
	f.Add(append([]byte(nil), frameA...), int64(7), uint8(0), uint8(0))
	f.Add(append(append([]byte(nil), frameA...), frameB[:len(frameB)/2]...), int64(8), uint8(0), uint8(7))
	f.Add(append(append(append([]byte(nil), frameA...), "mid-file damage"...), frameB...), int64(9), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, failA, failB uint8) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "shard-00.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "shard-01.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(dir, 2)
		if err != nil {
			return // unreadable inputs (oversized lines) may be rejected, not panic
		}
		n := s.Len()
		pending := s.Pending()
		if err := s.Close(); err != nil {
			t.Fatalf("Close after replay: %v", err)
		}

		s2, err := OpenStore(dir, 2)
		if err != nil {
			t.Fatalf("second open of repaired store failed: %v", err)
		}
		defer s2.Close()
		if s2.Len() != n {
			t.Fatalf("repaired store replay diverged: %d jobs then %d", n, s2.Len())
		}
		pending2 := s2.Pending()
		if len(pending2) != len(pending) {
			t.Fatalf("pending set diverged: %d then %d", len(pending), len(pending2))
		}
		for i := range pending {
			if pending[i].ID != pending2[i].ID || pending[i].State != pending2[i].State {
				t.Fatalf("pending[%d] diverged: %+v then %+v", i, pending[i], pending2[i])
			}
		}
		for _, w := range s2.Warnings() {
			if strings.Contains(w, "truncated torn tail") {
				t.Fatalf("first open left a torn tail for the second to repair: %s", w)
			}
		}

		// Chaos phase: same pre-existing bytes, fuzz-chosen faults, live
		// appends, then a crash. Acknowledged means durable.
		c := vfs.NewChaos(seed)
		c.Install("store/shard-00.jsonl", data)
		c.Install("store/shard-01.bin", data)
		if failA > 0 {
			c.FailOp(int(failA), vfs.ErrIO)
		}
		if failB > 0 {
			c.ShortWriteOp(int(failB))
		}
		acked := map[string]JobState{}
		if st, err := OpenStoreFS(c, "store", 2); err == nil {
			for i := 0; i < 3; i++ {
				if e, err := st.AppendQueued(matrixSpec(i)); err == nil {
					acked[e.ID] = StateQueued
				}
			}
			var ids []string
			for id := range acked {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			if len(ids) > 0 {
				if err := st.UpdateState(ids[0], StateDone, 1, "", nil); err == nil {
					acked[ids[0]] = StateDone
				}
			}
			st.Close()
		}
		c.Crash()
		c.Reboot()
		st2, err := OpenStoreFS(c, "store", 2)
		if err != nil {
			if len(acked) > 0 {
				t.Fatalf("post-crash open failed with %d acknowledged jobs at stake: %v", len(acked), err)
			}
			return
		}
		defer st2.Close()
		for id, state := range acked {
			e, ok := st2.Get(id)
			if !ok {
				t.Fatalf("acknowledged job %s lost after chaos crash (seed=%d failA=%d failB=%d)", id, seed, failA, failB)
			}
			if stateRank(e.State) < stateRank(state) {
				t.Fatalf("job %s recovered as %s, behind its acknowledged %s", id, e.State, state)
			}
		}
	})
}
