package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzStoreReplay feeds arbitrary bytes to the sharded store's segment
// reader as a pre-existing shard file. OpenStore must never panic, and
// its crash-recovery contract must hold: after the first open repairs
// the segment (truncating any torn tail), a second open of the same
// directory rebuilds exactly the same merged index and finds nothing
// left to repair.
func FuzzStoreReplay(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(`{"seq":1,"id":"j-00000001","state":"queued","spec":{"kind":"centrace"}}` + "\n"))
	f.Add([]byte(`{"seq":1,"id":"j-1","state":"queued"}` + "\n" + `{"seq":2,"id":"j-1","state":"done"}` + "\n"))
	f.Add([]byte(`{"seq":1,"id":"j-1","state":"queued"}` + "\n" + `{"seq":2,"id":"j-1","st`)) // torn tail
	f.Add([]byte("garbage\n" + `{"seq":3,"id":"j-2","state":"running"}` + "\n"))
	f.Add([]byte(`{"seq":9,"merged":12,"id":"j-3","state":"done","payload":{"x":1}}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "shard-00.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(dir, 2)
		if err != nil {
			return // unreadable inputs (oversized lines) may be rejected, not panic
		}
		n := s.Len()
		pending := s.Pending()
		if err := s.Close(); err != nil {
			t.Fatalf("Close after replay: %v", err)
		}

		s2, err := OpenStore(dir, 2)
		if err != nil {
			t.Fatalf("second open of repaired store failed: %v", err)
		}
		defer s2.Close()
		if s2.Len() != n {
			t.Fatalf("repaired store replay diverged: %d jobs then %d", n, s2.Len())
		}
		pending2 := s2.Pending()
		if len(pending2) != len(pending) {
			t.Fatalf("pending set diverged: %d then %d", len(pending), len(pending2))
		}
		for i := range pending {
			if pending[i].ID != pending2[i].ID || pending[i].State != pending2[i].State {
				t.Fatalf("pending[%d] diverged: %+v then %+v", i, pending[i], pending2[i])
			}
		}
		for _, w := range s2.Warnings() {
			if strings.Contains(w, "truncated torn tail") {
				t.Fatalf("first open left a torn tail for the second to repair: %s", w)
			}
		}
	})
}
