package serve

// The Backend seam separates the server's orchestration shell —
// admission, queue, store, HTTP surface — from how an admitted job is
// actually executed. A standalone node executes locally on the
// scheduler; a cluster coordinator (internal/cluster) leases replica
// executions to remote workers and verifies their digests; tests script
// arbitrary outcomes. The shell treats every backend identically: pop a
// job, Execute it under the watchdog, persist the outcome.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Job is the unit of work handed to a Backend: one admitted job with its
// normalized spec and the attempt number of this execution.
type Job struct {
	ID       string
	Spec     JobSpec
	Attempts int
}

// ExecResult is what a successful execution yields.
type ExecResult struct {
	// Payload is the canonical result bytes, or nil when the payload
	// lives only on remote replica stores (Remote true) — then
	// GET /v1/results proxies through the backend's ResultFetcher.
	Payload json.RawMessage
	// Digest is the lowercase hex SHA-256 of the payload bytes — the
	// unit of replica verification and the cache key's value.
	Digest string
	// Replicas names the nodes holding a durable copy of the payload
	// (empty for standalone nodes: the local store is the copy).
	Replicas []string
	// Remote marks payloads that are deliberately not persisted in the
	// local store because the replica set owns them.
	Remote bool
}

// Backend executes admitted jobs. Execute must be safe for concurrent
// use; errors are classified by the shell (Transient retries, Conflict
// hard-fails into StateConflict, anything else fails the job).
type Backend interface {
	Execute(Job) (ExecResult, error)
}

// BoundBackend is implemented by backends that need the server they run
// under (store access for read-repair, logging, drain checks). Bind is
// called once, before any Execute.
type BoundBackend interface {
	Bind(*Server)
}

// ResultFetcher is implemented by backends whose done payloads live
// remotely: GET /v1/results/{id} calls FetchResult when the stored entry
// has no payload bytes, and the fetch is expected to read-repair missing
// replicas as a side effect.
type ResultFetcher interface {
	FetchResult(id string) (json.RawMessage, error)
}

// BackendDrainer is implemented by backends with their own drain duties
// (the coordinator's final replication sweep). DrainBackend runs after
// in-flight jobs finish and before the store compacts.
type BackendDrainer interface {
	DrainBackend() error
}

// localBackend executes jobs in-process through a run function — the
// scheduler for real nodes, the RunHook seam for tests.
type localBackend struct {
	run func(JobSpec) (json.RawMessage, error)
}

func (b localBackend) Execute(j Job) (ExecResult, error) {
	payload, err := b.run(j.Spec)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Payload: payload, Digest: PayloadDigest(payload)}, nil
}

// PayloadDigest returns the lowercase hex SHA-256 of payload — the
// digest every done job carries, standalone and clustered alike.
func PayloadDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
