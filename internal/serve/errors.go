package serve

// Transient-vs-permanent error classification for the retry path. The
// scheduler runs jobs against a deterministic simulated world, so a
// scheduler error (unknown endpoint, invalid spec combination, a
// measurement-level failure) would recur identically on every retry:
// those are permanent and fail the job on first occurrence. Transient
// errors are infrastructure-level — a watchdog timeout, or anything a
// run hook explicitly wraps with Transient — and are the only thing the
// retry budget spends on.

import (
	"errors"
	"hash/fnv"
)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in the chain was wrapped by
// Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// conflictError marks a replica digest disagreement — the one error
// class that is worse than failure. Retrying cannot help (the divergence
// is already durable on the replicas), so the job hard-fails into
// StateConflict for an operator to inspect.
type conflictError struct{ err error }

func (e *conflictError) Error() string { return e.err.Error() }
func (e *conflictError) Unwrap() error { return e.err }

// Conflict wraps err as a replica digest conflict. A nil err stays nil.
func Conflict(err error) error {
	if err == nil {
		return nil
	}
	return &conflictError{err: err}
}

// IsConflict reports whether any error in the chain was wrapped by
// Conflict.
func IsConflict(err error) bool {
	var c *conflictError
	return errors.As(err, &c)
}

// retryDelay is the backoff, in queue virtual time (successful pops),
// before a transiently failed job becomes eligible again: an exponential
// window (1, 2, 4, ... capped at 64) plus jitter hashed from
// (seed, job ID, attempt). No wall clock anywhere in the decision path —
// the same failure history always yields the same requeue positions.
func retryDelay(seed int64, id string, attempt int) int64 {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	base := int64(1) << shift
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(id))
	b[0], b[1] = byte(attempt), byte(attempt>>8)
	h.Write(b[:2])
	return base + int64(h.Sum64()%uint64(base))
}
