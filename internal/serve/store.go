package serve

// The result store is a sharded append-only journal, the service-scale
// descendant of the centrace campaign Journal: every job-state transition
// is one binary record frame (internal/wire, DESIGN.md §14) appended (and
// fsynced) to the shard-NN.bin segment its job ID hashes to, an in-memory
// index holds the merged latest view, and reopening a directory replays
// every segment — tolerating the torn final frame a kill -9 mid-append
// leaves behind by truncating it away — so a crashed daemon restarts into
// exactly the set of durable jobs. Legacy shard-*.jsonl segments from the
// JSON-lines era replay read-only: their jobs land in the index, and any
// new records for them append to the binary shard their ID now hashes to.
// JSON survives as the export/debug view (ExportJSON). Shards bound
// compaction work and spread append fsyncs across files; when a shard
// accumulates more superseded records than live ones it is rewritten in
// place (write-temp, rename) from the merged index.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cendev/internal/vfs"
	"cendev/internal/wire"
)

// storeRecord is the on-disk form of one job-state transition. Queued
// records carry the spec; done records carry the payload; compaction
// writes fully merged records carrying both.
type storeRecord struct {
	Seq int64 `json:"seq"`
	// Merged, set on compacted records, is the highest record seq folded
	// into the merged state. Replay compares states by max(Seq, Merged),
	// so a compacted record beats stale pre-compaction records that
	// survive in legacy segments, while Seq keeps the job's admission
	// order.
	Merged   int64           `json:"merged,omitempty"`
	ID       string          `json:"id"`
	State    JobState        `json:"state"`
	Spec     *JobSpec        `json:"spec,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	// Digest is the hex SHA-256 of the result payload; Replicas names
	// the cluster nodes holding a durable copy. Both ride along with
	// done records (record schema v2; v1 records replay with them empty).
	Digest   string   `json:"digest,omitempty"`
	Replicas []string `json:"replicas,omitempty"`
}

// JobEntry is the merged in-memory view of one job.
type JobEntry struct {
	ID       string
	Seq      int64 // seq of the job's first (queued) record: admission order
	State    JobState
	Spec     JobSpec
	Attempts int
	Error    string
	Payload  json.RawMessage
	// Digest is the hex SHA-256 of the payload; Replicas the nodes with
	// a durable copy (see storeRecord).
	Digest   string
	Replicas []string
	// mergedSeq is the highest record seq folded in — replay may visit a
	// job's records out of order when they span segments (a shard-count
	// change between runs), and only the newest record decides the state.
	mergedSeq int64
}

// Status renders the entry as the API's job status body.
func (e *JobEntry) Status() JobStatus {
	return JobStatus{
		ID: e.ID, State: e.State, Spec: e.Spec, Attempts: e.Attempts,
		Error: e.Error, Digest: e.Digest, Replicas: e.Replicas,
	}
}

// storeShard is one append-only segment file plus its compaction
// accounting.
type storeShard struct {
	f    vfs.File
	path string
	// records counts lines in the file; live is the number of jobs whose
	// merged state lives here. The gap is compactable garbage.
	records int
	live    int
	// foreign is the set of jobs with records in this file that hash to a
	// different shard under the current shard count (a restart changed
	// -shards). Compaction must carry their merged state along: this file
	// may be the only durable home their records have, and a rewrite that
	// kept only currently-hashing jobs would silently drop them — a loss
	// the crash matrix catches the first time the power goes out.
	//
	// There is no dirty-tail flag any more: binary frames self-delimit,
	// so a record appended after a torn partial write is still recovered
	// at replay by scanning for the next frame marker (the JSONL format
	// needed a fresh-newline dance here to keep glued lines parseable).
	foreign map[string]bool
}

// Store is the crash-safe job/result store.
type Store struct {
	mu     sync.Mutex
	fsys   vfs.FS
	dir    string
	shards []*storeShard
	index  map[string]*JobEntry
	seq    int64
	nextID int64
	// compactMinRecords is the per-shard garbage floor below which
	// compaction is not worth a rewrite.
	compactMinRecords int
	// compactSkipSync, settable only from same-package tests, elides the
	// pre-rename fsync during compaction — the deliberately broken store
	// the crash matrix must catch (its sensitivity check).
	compactSkipSync bool
	warnings        []string
	// recBuf and encBuf are the append path's scratch buffers: record
	// payload and framed record respectively. Guarded by mu like the rest
	// of the store.
	recBuf []byte
	encBuf []byte
}

// DefaultShards is the default shard count for a store directory.
const DefaultShards = 4

// OpenStore opens (creating if needed) a store directory on the real
// filesystem. See OpenStoreFS.
func OpenStore(dir string, nShards int) (*Store, error) {
	return OpenStoreFS(vfs.OS(), dir, nShards)
}

// OpenStoreFS opens (creating if needed) a store directory with nShards
// segment files, replays every segment present — including segments from
// runs with a different shard count — and repairs torn tails. The merged
// index is ready immediately after. All I/O goes through fsys, which is
// how the crash matrix substitutes its fault-injecting filesystem.
func OpenStoreFS(fsys vfs.FS, dir string, nShards int) (*Store, error) {
	if nShards < 1 {
		nShards = DefaultShards
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	s := &Store{
		fsys:              fsys,
		dir:               dir,
		index:             make(map[string]*JobEntry),
		compactMinRecords: 64,
	}

	// Replay every segment on disk, not just the first nShards: a
	// restart with a smaller -shards must not orphan jobs. Legacy JSONL
	// segments replay alongside binary ones; only binary segments are
	// ever appended to.
	paths, err := vfs.Glob(fsys, dir, "shard-*.bin")
	if err != nil {
		return nil, err
	}
	legacy, err := vfs.Glob(fsys, dir, "shard-*.jsonl")
	if err != nil {
		return nil, err
	}
	paths = append(paths, legacy...)
	for i := 0; i < nShards; i++ {
		p := s.shardPath(i)
		found := false
		for _, q := range paths {
			if q == p {
				found = true
			}
		}
		if !found {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	type replayed struct {
		path    string
		records int
		ids     map[string]bool
	}
	var segs []replayed
	for _, p := range paths {
		n, ids, err := s.replaySegment(p)
		if err != nil {
			return nil, err
		}
		segs = append(segs, replayed{path: p, records: n, ids: ids})
	}

	// Open the first nShards for appending. Legacy segments beyond
	// nShards stay on disk read-only: their jobs are in the index and new
	// records for them append to the shard their ID now hashes to.
	for i := 0; i < nShards; i++ {
		p := s.shardPath(i)
		f, err := fsys.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		sh := &storeShard{f: f, path: p, foreign: make(map[string]bool)}
		for _, seg := range segs {
			if seg.path == p {
				sh.records = seg.records
			}
		}
		s.shards = append(s.shards, sh)
	}
	// A job hashes to a shard under the *current* count, but its records
	// sit wherever an earlier run put them. Mark those residents foreign so
	// compaction preserves them; legacy segments beyond nShards are never
	// rewritten, so their residents are safe as-is.
	for i, sh := range s.shards {
		for _, seg := range segs {
			if seg.path != sh.path {
				continue
			}
			for id := range seg.ids {
				if _, ok := s.index[id]; ok && s.shardFor(id) != i {
					sh.foreign[id] = true
				}
			}
		}
	}
	for _, e := range s.index {
		s.shards[s.shardFor(e.ID)].live++
	}
	for _, sh := range s.shards {
		sh.live += len(sh.foreign)
	}
	return s, nil
}

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%02d.bin", i))
}

// shardFor hashes a job ID to its owning shard.
func (s *Store) shardFor(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// replaySegment scans one segment file, merging records into the index in
// seq order (within a file, append order is seq order) and repairing a
// torn final record by truncating the file back to the last record
// boundary. The format is sniffed per file: binary frame segments are the
// live format, JSONL segments are the legacy read-only one. Returns the
// number of good records and the set of job IDs with records in this file
// (for foreign-resident accounting).
func (s *Store) replaySegment(path string) (int, map[string]bool, error) {
	f, err := s.fsys.Open(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	if isBinarySegment(path) {
		return s.replayBinarySegment(path, f)
	}
	return s.replayJSONLSegment(path, f)
}

// isBinarySegment keys the replay format off the segment name: the store
// only ever creates shard-*.bin (binary) and inherits shard-*.jsonl
// (legacy JSON lines). Name-based dispatch keeps an empty or torn-headed
// binary segment from being misread as JSONL.
func isBinarySegment(path string) bool {
	return filepath.Ext(path) == ".bin"
}

// replayBinarySegment replays one wire-framed segment. Interior
// corruption is skipped by marker resync (the appended-after-torn-write
// case); a torn tail is truncated back to the last frame boundary.
func (s *Store) replayBinarySegment(path string, f vfs.File) (int, map[string]bool, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	r := wire.NewReader(data)
	records := 0
	ids := make(map[string]bool)
	for {
		payload, ok := r.Next()
		if !ok {
			break
		}
		rec, err := decodeStoreRecord(payload)
		if err != nil {
			s.warnings = append(s.warnings, fmt.Sprintf(
				"serve: %s: skipping undecodable record: %v", filepath.Base(path), err))
			continue
		}
		s.mergeRecord(rec)
		ids[rec.ID] = true
		records++
	}
	for _, w := range r.Warnings() {
		s.warnings = append(s.warnings, fmt.Sprintf("serve: %s: %s", filepath.Base(path), w))
	}
	if truncateTo, torn := r.Torn(); torn {
		if err := s.fsys.Truncate(path, truncateTo); err != nil {
			return 0, nil, fmt.Errorf("serve: repairing %s: %w", path, err)
		}
		s.warnings = append(s.warnings, fmt.Sprintf(
			"serve: %s: truncated torn tail at byte %d", filepath.Base(path), truncateTo))
	}
	return records, ids, nil
}

// replayJSONLSegment replays one legacy JSON-lines segment, read-only
// except for torn-tail repair.
func (s *Store) replayJSONLSegment(path string, f vfs.File) (int, map[string]bool, error) {
	// A torn tail is an unparseable final line that is also unterminated —
	// the kill -9 mid-append artifact. An unparseable final line that DOES
	// end in a newline is interior damage (skip, don't truncate), so check
	// how the file ends before scanning.
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	endsWithNewline := end == 0
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			return 0, nil, fmt.Errorf("serve: reading %s: %w", path, err)
		}
		endsWithNewline = last[0] == '\n'
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var pos, lastGoodEnd int64 // byte offsets: current scan position, end of last good line
	records := 0
	line := 0
	tornTail := false
	ids := make(map[string]bool)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		pos += int64(len(raw)) + 1 // +1 for the newline (over-counts a final
		// unterminated line, which only ever matters when that line is torn —
		// and then truncation uses lastGoodEnd, not pos)
		if len(raw) == 0 {
			lastGoodEnd = pos
			continue
		}
		var rec storeRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			s.warnings = append(s.warnings, fmt.Sprintf(
				"serve: %s line %d: skipping torn record: %v", filepath.Base(path), line, err))
			tornTail = true
			continue
		}
		tornTail = false
		lastGoodEnd = pos
		s.mergeRecord(&rec)
		ids[rec.ID] = true
		records++
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	if tornTail && !endsWithNewline {
		// The file ends in a torn record — the kill -9 mid-append
		// artifact. Truncate back to the last record boundary. (An
		// interior tear followed by good records is merely skipped:
		// truncating would drop the good tail too, and so would cutting a
		// newline-terminated final line that merely failed to parse.)
		if err := s.fsys.Truncate(path, lastGoodEnd); err != nil {
			return 0, nil, fmt.Errorf("serve: repairing %s: %w", path, err)
		}
		s.warnings = append(s.warnings, fmt.Sprintf(
			"serve: %s: truncated torn tail at byte %d", filepath.Base(path), lastGoodEnd))
	}
	return records, ids, nil
}

// mergeRecord folds one replayed record into the index. Records may
// arrive out of seq order across segments; the newest record wins the
// state, while spec and payload are kept from whichever record carried
// them.
func (s *Store) mergeRecord(rec *storeRecord) {
	e, ok := s.index[rec.ID]
	if !ok {
		e = &JobEntry{ID: rec.ID, Seq: rec.Seq}
		s.index[rec.ID] = e
	}
	if rec.Seq < e.Seq {
		e.Seq = rec.Seq // admission order = the job's earliest record
	}
	if rec.Spec != nil {
		e.Spec = *rec.Spec
	}
	if rec.Payload != nil {
		e.Payload = rec.Payload
	}
	eff := rec.Seq
	if rec.Merged > eff {
		eff = rec.Merged
	}
	if eff >= e.mergedSeq {
		e.mergedSeq = eff
		e.State = rec.State
		e.Error = rec.Error
		if rec.Attempts > 0 {
			e.Attempts = rec.Attempts
		}
		if rec.Digest != "" {
			e.Digest = rec.Digest
		}
		if len(rec.Replicas) > 0 {
			e.Replicas = rec.Replicas
		}
	}
	if eff > s.seq {
		s.seq = eff
	}
	if eff >= s.nextID {
		s.nextID = eff
	}
}

// AppendQueued persists a new job and returns its entry (ID assigned from
// the store sequence, so IDs survive restarts without collision).
func (s *Store) AppendQueued(spec JobSpec) (*JobEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("j-%08d", s.nextID)
	e := &JobEntry{ID: id, State: StateQueued, Spec: spec}
	rec := storeRecord{ID: id, State: StateQueued, Spec: &spec}
	if err := s.appendLocked(&rec); err != nil {
		return nil, err
	}
	e.Seq = rec.Seq
	e.mergedSeq = rec.Seq
	s.index[id] = e
	s.shards[s.shardFor(id)].live++
	return e, nil
}

// UpdateState persists a state transition for an existing job. payload
// accompanies StateDone; errMsg accompanies StateFailed.
func (s *Store) UpdateState(id string, state JobState, attempts int, errMsg string, payload json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return fmt.Errorf("serve: unknown job %s", id)
	}
	rec := storeRecord{ID: id, State: state, Attempts: attempts, Error: errMsg, Payload: payload}
	if err := s.appendLocked(&rec); err != nil {
		return err
	}
	e.State = state
	e.Attempts = attempts
	e.Error = errMsg
	e.mergedSeq = rec.Seq
	if payload != nil {
		e.Payload = payload
	}
	return s.maybeCompactLocked(s.shardFor(id))
}

// UpdateDone persists the done transition with its digest and replica
// set. payload may be nil when the bytes live only on remote replicas.
func (s *Store) UpdateDone(id string, attempts int, payload json.RawMessage, digest string, replicas []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return fmt.Errorf("serve: unknown job %s", id)
	}
	rec := storeRecord{ID: id, State: StateDone, Attempts: attempts,
		Payload: payload, Digest: digest, Replicas: replicas}
	if err := s.appendLocked(&rec); err != nil {
		return err
	}
	e.State = StateDone
	e.Attempts = attempts
	e.Error = ""
	e.mergedSeq = rec.Seq
	e.Digest = digest
	e.Replicas = replicas
	if payload != nil {
		e.Payload = payload
	}
	return s.maybeCompactLocked(s.shardFor(id))
}

// UpdateReplicas persists a new replica set for a done job — the
// read-repair and anti-entropy bookkeeping write. State, payload and
// digest are untouched.
func (s *Store) UpdateReplicas(id string, replicas []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return fmt.Errorf("serve: unknown job %s", id)
	}
	rec := storeRecord{ID: id, State: e.State, Attempts: e.Attempts,
		Error: e.Error, Digest: e.Digest, Replicas: replicas}
	if err := s.appendLocked(&rec); err != nil {
		return err
	}
	e.Replicas = replicas
	e.mergedSeq = rec.Seq
	return s.maybeCompactLocked(s.shardFor(id))
}

// PutResult inserts (or overwrites) a finished result under an external
// job ID — how a cluster worker stores a replica of a coordinator-owned
// job, and how repair pushes land. The record is durable (fsynced)
// before PutResult returns; completing a lease before this returns would
// acknowledge bytes that could still be lost.
func (s *Store) PutResult(id string, spec JobSpec, payload json.RawMessage, digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := storeRecord{ID: id, State: StateDone, Spec: &spec,
		Payload: payload, Digest: digest}
	if err := s.appendLocked(&rec); err != nil {
		return err
	}
	e, ok := s.index[id]
	if !ok {
		e = &JobEntry{ID: id, Seq: rec.Seq}
		s.index[id] = e
		s.shards[s.shardFor(id)].live++
	}
	e.State = StateDone
	e.Spec = spec
	e.Payload = payload
	e.Digest = digest
	e.Error = ""
	e.mergedSeq = rec.Seq
	return s.maybeCompactLocked(s.shardFor(id))
}

// appendLocked assigns the next sequence number, writes the record as one
// binary frame, and fsyncs the shard so an acknowledged transition
// survives a kill -9. The frame is built in the store's scratch buffer —
// the append path allocates nothing once the buffer has grown to record
// size. A partial write needs no special handling: the next frame's
// marker lets replay resync past the torn bytes.
func (s *Store) appendLocked(rec *storeRecord) error {
	s.seq++
	rec.Seq = s.seq
	if rec.Seq > s.nextID {
		s.nextID = rec.Seq
	}
	sh := s.shards[s.shardFor(rec.ID)]
	s.recBuf = appendStoreRecord(s.recBuf[:0], rec)
	s.encBuf = wire.AppendFrame(s.encBuf[:0], s.recBuf)
	if _, err := sh.f.Write(s.encBuf); err != nil {
		return fmt.Errorf("serve: append %s: %w", sh.path, err)
	}
	if err := sh.f.Sync(); err != nil {
		return fmt.Errorf("serve: sync %s: %w", sh.path, err)
	}
	sh.records++
	return nil
}

// maybeCompactLocked rewrites a shard when it holds more garbage than
// live state: one merged record per job, written to a temp file and
// renamed over the segment, so a crash at any point leaves either the
// old or the new segment intact.
func (s *Store) maybeCompactLocked(i int) error {
	sh := s.shards[i]
	garbage := sh.records - sh.live
	if garbage <= sh.live || sh.records < s.compactMinRecords {
		return nil
	}
	return s.compactLocked(i)
}

func (s *Store) compactLocked(i int) error {
	sh := s.shards[i]
	// Collect this shard's jobs in seq order for a stable segment layout:
	// the jobs hashing here plus the foreign residents a shard-count change
	// stranded in this file. Dropping a foreign resident would erase its
	// only durable records — the compaction-across-reshard loss the crash
	// matrix exists to catch.
	var entries []*JobEntry
	for _, e := range s.index {
		if s.shardFor(e.ID) == i || sh.foreign[e.ID] {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Seq < entries[b].Seq })

	tmp := sh.path + ".tmp"
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, e := range entries {
		spec := e.Spec
		rec := storeRecord{
			Seq: e.Seq, ID: e.ID, State: e.State, Spec: &spec,
			Attempts: e.Attempts, Error: e.Error, Payload: e.Payload,
			Digest: e.Digest, Replicas: e.Replicas,
		}
		if e.mergedSeq > e.Seq {
			rec.Merged = e.mergedSeq
		}
		s.recBuf = appendStoreRecord(s.recBuf[:0], &rec)
		s.encBuf = wire.AppendFrame(s.encBuf[:0], s.recBuf)
		if _, err := w.Write(s.encBuf); err != nil {
			f.Close()
			s.fsys.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		s.fsys.Remove(tmp)
		return err
	}
	if !s.compactSkipSync {
		if err := f.Sync(); err != nil {
			f.Close()
			s.fsys.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		s.fsys.Remove(tmp)
		return err
	}
	if err := s.fsys.Rename(tmp, sh.path); err != nil {
		s.fsys.Remove(tmp)
		return err
	}
	sh.f.Close()
	nf, err := s.fsys.OpenFile(sh.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: reopening compacted %s: %w", sh.path, err)
	}
	sh.f = nf
	sh.records = len(entries)
	sh.live = len(entries)
	// Make the rename itself durable before any record is acknowledged
	// against the new segment: on filesystems that don't order metadata
	// behind file fsyncs, a crash could otherwise revert the name to the
	// old segment and orphan everything appended after the swap.
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return fmt.Errorf("serve: syncing dir after compacting %s: %w", sh.path, err)
	}
	return nil
}

// Get returns a copy of the job's merged entry.
func (s *Store) Get(id string) (JobEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return JobEntry{}, false
	}
	return *e, true
}

// Pending returns the jobs whose latest durable state is queued or
// running, in admission order — what a restart re-enqueues. A job that
// was mid-flight when the daemon died is simply re-run: results are a
// pure function of the spec, so a re-run converges on the same bytes.
func (s *Store) Pending() []JobEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobEntry
	for _, e := range s.index {
		if e.State == StateQueued || e.State == StateRunning {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// List returns every job in admission order, optionally filtered to one
// state (empty state means all) — the backing for GET /v1/jobs and its
// ?state=dead dead-letter query.
func (s *Store) List(state JobState) []JobEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobEntry
	for _, e := range s.index {
		if state == "" || e.State == state {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of indexed jobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Warnings returns the replay-time warnings (torn records dropped,
// segments repaired).
func (s *Store) Warnings() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.warnings...)
}

// ExportJSON writes the merged index as JSON lines in admission order —
// the human-readable debug view of the binary segments (one fully merged
// record per job, the same shape compaction used to persist). This is
// what `censerved -export-store` prints and what CI pipes through jq.
func (s *Store) ExportJSON(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := make([]*JobEntry, 0, len(s.index))
	for _, e := range s.index {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Seq < entries[b].Seq })
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		spec := e.Spec
		rec := storeRecord{
			Seq: e.Seq, ID: e.ID, State: e.State, Spec: &spec,
			Attempts: e.Attempts, Error: e.Error, Payload: e.Payload,
			Digest: e.Digest, Replicas: e.Replicas,
		}
		if e.mergedSeq > e.Seq {
			rec.Merged = e.mergedSeq
		}
		raw, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("serve: export marshal: %w", err)
		}
		raw = append(raw, '\n')
		if _, err := bw.Write(raw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Compact force-compacts every shard — part of the drain sequence, so a
// long-lived daemon hands the next start minimal segments.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		if s.shards[i].records > s.shards[i].live {
			if err := s.compactLocked(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close syncs and closes every shard.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sh := range s.shards {
		if sh.f == nil {
			continue
		}
		if err := sh.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.f = nil
	}
	return first
}

func (s *Store) closeAll() {
	for _, sh := range s.shards {
		if sh.f != nil {
			sh.f.Close()
		}
	}
}
