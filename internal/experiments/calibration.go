package experiments

import (
	"fmt"
	"strings"

	"cendev/internal/endpoint"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Path-variance calibration (§4.1): the paper runs 200 traceroutes each to
// 20 controlled endpoints, counts unique paths, and finds that 11
// traceroutes cover 90% of the paths to an endpoint on average — the
// justification for CenTrace's 11 repetitions. This harness reproduces the
// experiment on synthetic high-variance topologies.

// CalibrationResult summarizes the path-variance experiment.
type CalibrationResult struct {
	Endpoints int
	// TotalTraceroutes per endpoint.
	TotalTraceroutes int
	// UniquePaths per endpoint.
	UniquePaths []int
	// RepsFor90 is, per endpoint, the number of traceroutes after which
	// 90% of the eventually-observed unique paths had been seen.
	RepsFor90 []int
	// MeanRepsFor90 averages RepsFor90.
	MeanRepsFor90 float64
}

// calibrationWorld builds numEndpoints endpoints, each reached through a
// chain of parallel ECMP stages (width branches per stage), giving
// width^stages distinct equal-cost paths.
func calibrationWorld(numEndpoints, stages, width int) (*simnet.Network, *topology.Host, []*topology.Host) {
	g := topology.NewGraph()
	asC := g.AddAS(1, "ClientNet", "US")
	asT := g.AddAS(2, "TransitNet", "DE")
	r0 := g.AddRouter("r0", asC)
	client := g.AddHost("client", asC, r0)
	var endpoints []*topology.Host
	n := 0
	for e := 0; e < numEndpoints; e++ {
		asE := g.AddAS(uint32(100+e), fmt.Sprintf("EndNet-%d", e), "KZ")
		prevStage := []string{"r0"}
		for s := 0; s < stages; s++ {
			var stage []string
			for w := 0; w < width; w++ {
				id := fmt.Sprintf("m-%d-%d-%d", e, s, w)
				g.AddRouter(id, asT)
				n++
				for _, p := range prevStage {
					g.Link(p, id)
				}
				stage = append(stage, id)
			}
			prevStage = stage
		}
		last := fmt.Sprintf("last-%d", e)
		g.AddRouter(last, asE)
		for _, p := range prevStage {
			g.Link(p, last)
		}
		endpoints = append(endpoints, g.AddHost(fmt.Sprintf("ep-%d", e), asE, g.Router(last)))
	}
	net := simnet.New(g)
	for _, ep := range endpoints {
		net.RegisterServer(ep.ID, endpoint.NewServer(ControlDomain))
	}
	return net, client, endpoints
}

// pathKey renders a router path as a map key.
func pathKey(path []*topology.Router) string {
	ids := make([]string, len(path))
	for i, r := range path {
		ids[i] = r.ID
	}
	return strings.Join(ids, ">")
}

// Calibrate runs the §4.1 path-variance experiment: traceroutes per
// endpoint over fresh source ports, tracking when 90% of the final unique
// path set has been observed.
func Calibrate(numEndpoints, traceroutes int) CalibrationResult {
	net, client, endpoints := calibrationWorld(numEndpoints, 2, 3) // 9 paths/endpoint
	res := CalibrationResult{Endpoints: numEndpoints, TotalTraceroutes: traceroutes}
	for _, ep := range endpoints {
		var order []string // path key per traceroute, in order
		seen := map[string]int{}
		for i := 0; i < traceroutes; i++ {
			srcPort := net.AllocPort()
			hash := topology.FlowHash(client.Addr, ep.Addr, srcPort, 80, 6)
			path := net.Graph.PathForFlow(client, ep, hash)
			key := pathKey(path)
			if _, ok := seen[key]; !ok {
				seen[key] = i
			}
			order = append(order, key)
		}
		unique := len(seen)
		res.UniquePaths = append(res.UniquePaths, unique)
		// Find the traceroute index by which 90% of the unique paths had
		// been first observed.
		needed := (unique*9 + 9) / 10 // ceil(0.9 * unique)
		count := 0
		firstSeen := map[string]bool{}
		repsFor90 := traceroutes
		for i, key := range order {
			if !firstSeen[key] {
				firstSeen[key] = true
				count++
				if count >= needed {
					repsFor90 = i + 1
					break
				}
			}
		}
		res.RepsFor90 = append(res.RepsFor90, repsFor90)
	}
	sum := 0
	for _, r := range res.RepsFor90 {
		sum += r
	}
	if len(res.RepsFor90) > 0 {
		res.MeanRepsFor90 = float64(sum) / float64(len(res.RepsFor90))
	}
	return res
}

// RenderCalibration formats the calibration outcome.
func RenderCalibration(r CalibrationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.1 path-variance calibration: %d endpoints × %d traceroutes\n",
		r.Endpoints, r.TotalTraceroutes)
	for i := range r.UniquePaths {
		fmt.Fprintf(&b, "  endpoint %2d: %d unique paths, 90%% covered after %d traceroutes\n",
			i, r.UniquePaths[i], r.RepsFor90[i])
	}
	fmt.Fprintf(&b, "mean traceroutes to 90%% coverage: %.1f (paper: 11)\n", r.MeanRepsFor90)
	return b.String()
}
