package experiments

// Cross-validation of the two localizers: every scenario world is measured
// twice — by CenTrace (TTL-limited probes from one vantage, the paper's
// method) and by churn tomography (per-epoch reachability from several
// vantages over the route-dynamics schedule). Where CenTrace localizes a
// hop exactly, the tomography candidate set should contain a link touching
// that hop's router; the table reports per-scenario agreement plus the
// cases each method is structurally blind to (vantage-dependent blocking
// for CenTrace, At-Endpoint blocking on disjoint paths for tomography).

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"cendev/internal/centrace"
	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/obs"
	"cendev/internal/parallel"
	"cendev/internal/routedyn"
	"cendev/internal/simnet"
	"cendev/internal/tomography"
	"cendev/internal/topology"
)

const (
	crossvalTestDomain    = "blocked.example"
	crossvalControlDomain = "control.example"
)

// CrossValConfig parameterizes the cross-validation study.
type CrossValConfig struct {
	// Workers is the scenario-cell fan-out width; output is byte-identical
	// at every value.
	Workers int
	// Repetitions is CenTrace's per-TTL repetition count (default 3).
	Repetitions int
	// Obs instruments the worker pool (optional).
	Obs *obs.Registry
}

// CrossValCell is one scenario's verdict pair.
type CrossValCell struct {
	Scenario string
	// ExpectUnlocalizable marks scenarios constructed so tomography
	// cannot localize (the At-Endpoint/disjoint-paths blind spot); they
	// are scored on matching that expectation instead of on agreement.
	ExpectUnlocalizable bool
	CenTrace            centrace.JobResult
	// CenHopRouter is the router ID owning CenTrace's blocking-hop
	// address, "" when CenTrace found no in-network hop.
	CenHopRouter string
	Tomography   tomography.Result
	// Comparable: both methods produced an exact-enough answer to compare.
	Comparable bool
	// Agree: some tomography candidate link touches CenTrace's blocking
	// hop router.
	Agree bool
}

// CrossValidation is the full study result.
type CrossValidation struct {
	Cells      []CrossValCell
	Comparable int
	Agreements int
}

// Rate is the agreement fraction over comparable cells.
func (cv CrossValidation) Rate() float64 {
	if cv.Comparable == 0 {
		return 0
	}
	return float64(cv.Agreements) / float64(cv.Comparable)
}

// OK reports whether the study clears the cross-validation bar: at least
// 80% agreement on the cells where CenTrace localized exactly.
func (cv CrossValidation) OK() bool {
	return cv.Comparable > 0 && cv.Rate() >= 0.8
}

// crossValScenario builds one scenario world. Every build is
// self-contained and deterministic, so cells can run on any worker.
type crossValScenario struct {
	name         string
	expectUnloc  bool
	tomoVantages []string
	cenVantage   string
	build        func() *simnet.Network
}

// crossvalDiamond is the shared multi-path testbed: c behind r1 with ECMP
// over r2a/r2b, direct vantages va/vb behind the branch routers, server s
// behind r3.
func crossvalDiamond() *simnet.Network {
	g := topology.NewGraph()
	as := g.AddAS(64500, "CrossVal", "XX")
	r1 := g.AddRouter("r1", as)
	r2a := g.AddRouter("r2a", as)
	r2b := g.AddRouter("r2b", as)
	r3 := g.AddRouter("r3", as)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	g.AddHost("c", as, r1)
	g.AddHost("va", as, r2a)
	g.AddHost("vb", as, r2b)
	g.AddHost("s", as, r3)
	n := simnet.New(g)
	n.RegisterServer("s", endpoint.NewServer(crossvalTestDomain, crossvalControlDomain))
	return n
}

func crossvalRST(id string) *middlebox.Device {
	return middlebox.NewDevice(id, middlebox.VendorUnknownRST, []string{crossvalTestDomain}, netip.Addr{})
}

func crossvalScenarios() []crossValScenario {
	rehash := func(n *simnet.Network, seed int64) {
		eng := routedyn.NewEngine(seed, n.Graph)
		eng.MustSchedule(routedyn.Event{At: 30 * time.Second, Kind: routedyn.Rehash})
		eng.MustSchedule(routedyn.Event{At: 60 * time.Second, Kind: routedyn.Rehash})
		n.SetRoutes(eng)
	}
	return []crossValScenario{
		{
			// The headline case: a second vantage behind the censored
			// branch pins the link exactly; CenTrace from the same vantage
			// localizes the same hop.
			name:         "two-vantage-exact",
			tomoVantages: []string{"c", "va"},
			cenVantage:   "va",
			build: func() *simnet.Network {
				n := crossvalDiamond()
				n.AttachDevice("r2a", "r3", crossvalRST("xv-exact"))
				rehash(n, 21)
				return n
			},
		},
		{
			// Flapping censorship: the upstream link to the censored branch
			// flaps, so vantage c's traffic is blocked only in announced
			// epochs. Tomography narrows to the two co-occurring links.
			name:         "flap-withdraw",
			tomoVantages: []string{"c"},
			cenVantage:   "va",
			build: func() *simnet.Network {
				n := crossvalDiamond()
				n.AttachDevice("r2a", "r3", crossvalRST("xv-flap"))
				eng := routedyn.NewEngine(7, n.Graph)
				if err := eng.FlapLink("r1", "r2a", 20*time.Second, 40*time.Second, 2); err != nil {
					panic(err)
				}
				n.SetRoutes(eng)
				return n
			},
		},
		{
			// Pure ECMP churn from a single vantage: ambiguous by
			// construction, but the candidate pair brackets the censor.
			name:         "diamond-ecmp",
			tomoVantages: []string{"c"},
			cenVantage:   "c",
			build: func() *simnet.Network {
				n := crossvalDiamond()
				n.AttachDevice("r1", "r2a", crossvalRST("xv-ecmp"))
				rehash(n, 21)
				return n
			},
		},
		{
			// Vantage-dependent blocking: the censor sits on the branch vb
			// never crosses. CenTrace from vb sees nothing — only the
			// multi-vantage campaign surfaces the device.
			name:         "vantage-dependent",
			tomoVantages: []string{"va", "vb"},
			cenVantage:   "vb",
			build: func() *simnet.Network {
				n := crossvalDiamond()
				n.AttachDevice("r2a", "r3", crossvalRST("xv-vantage"))
				rehash(n, 21)
				return n
			},
		},
		{
			// At-Endpoint blocking seen over disjoint paths: tomography's
			// structural blind spot (no link is on every blocked path);
			// CenTrace still localizes it at the endpoint.
			name:         "guard-at-endpoint",
			expectUnloc:  true,
			tomoVantages: []string{"va", "vb"},
			cenVantage:   "va",
			build: func() *simnet.Network {
				n := crossvalDiamond()
				n.AttachGuard("s", middlebox.NewDevice("xv-guard",
					middlebox.VendorUnknownDrop, []string{crossvalTestDomain}, netip.Addr{}))
				rehash(n, 21)
				return n
			},
		},
		{
			// Static single-path chain: with no churn, tomography can only
			// name the whole path — ambiguous, but the true link is inside.
			name:         "chain-static",
			tomoVantages: []string{"c"},
			cenVantage:   "c",
			build: func() *simnet.Network {
				g := topology.NewGraph()
				as := g.AddAS(64501, "Chain", "XX")
				r1 := g.AddRouter("r1", as)
				g.AddRouter("r2", as)
				g.AddRouter("r3", as)
				r4 := g.AddRouter("r4", as)
				g.Link("r1", "r2")
				g.Link("r2", "r3")
				g.Link("r3", "r4")
				g.AddHost("c", as, r1)
				g.AddHost("s", as, r4)
				n := simnet.New(g)
				n.RegisterServer("s", endpoint.NewServer(crossvalTestDomain, crossvalControlDomain))
				n.AttachDevice("r2", "r3", crossvalRST("xv-chain"))
				return n
			},
		},
	}
}

// CrossValScenarioNames lists the available scenario names in run order.
func CrossValScenarioNames() []string {
	scenarios := crossvalScenarios()
	names := make([]string, len(scenarios))
	for i, sc := range scenarios {
		names[i] = sc.name
	}
	return names
}

// CrossValidate runs every scenario cell and scores tomography against
// CenTrace. Cells fan out across cfg.Workers; each builds its own world,
// so the result is byte-identical at every worker count.
func CrossValidate(cfg CrossValConfig) CrossValidation {
	cv, err := CrossValidateNamed(nil, cfg)
	if err != nil {
		// nil names selects every scenario; nothing can be unknown.
		panic(err)
	}
	return cv
}

// CrossValidateNamed runs only the named scenarios (nil or empty selects
// all), erroring on unknown names.
func CrossValidateNamed(names []string, cfg CrossValConfig) (CrossValidation, error) {
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 3
	}
	scenarios := crossvalScenarios()
	if len(names) > 0 {
		chosen := make([]crossValScenario, 0, len(names))
		for _, name := range names {
			found := false
			for _, sc := range scenarios {
				if sc.name == name {
					chosen = append(chosen, sc)
					found = true
					break
				}
			}
			if !found {
				return CrossValidation{}, fmt.Errorf(
					"experiments: unknown cross-validation scenario %q (have %s)",
					name, strings.Join(CrossValScenarioNames(), ", "))
			}
		}
		scenarios = chosen
	}
	cells := make([]CrossValCell, len(scenarios))
	parallel.ForEachOpt(len(scenarios), cfg.Workers,
		parallel.Options{Pool: "crossval.cells", Obs: cfg.Obs}, func(_, i int) {
			cells[i] = runCrossValCell(scenarios[i], cfg.Repetitions)
		})
	cv := CrossValidation{Cells: cells}
	for _, c := range cells {
		if c.Comparable {
			cv.Comparable++
			if c.Agree {
				cv.Agreements++
			}
		}
	}
	return cv, nil
}

func runCrossValCell(sc crossValScenario, reps int) CrossValCell {
	base := sc.build()
	tnet := base.Clone()
	cnet := base.Clone()

	vantages := make([]*topology.Host, 0, len(sc.tomoVantages))
	for _, id := range sc.tomoVantages {
		vantages = append(vantages, tnet.Graph.Host(id))
	}
	observations := tomography.Collect(tnet, vantages, tnet.Graph.Host("s"),
		tomography.CollectConfig{TestDomain: crossvalTestDomain, ControlDomain: crossvalControlDomain})

	cell := CrossValCell{
		Scenario:            sc.name,
		ExpectUnlocalizable: sc.expectUnloc,
		Tomography:          tomography.Solve(observations),
		CenTrace: centrace.RunJob(cnet, cnet.Graph.Host(sc.cenVantage), cnet.Graph.Host("s"),
			centrace.JobSpec{
				ControlDomain: crossvalControlDomain,
				TestDomain:    crossvalTestDomain,
				Repetitions:   reps,
			}),
	}
	if cell.CenTrace.Blocked && cell.CenTrace.BlockingHop != "" {
		for _, r := range cnet.Graph.Routers() {
			if r.Addr.String() == cell.CenTrace.BlockingHop {
				cell.CenHopRouter = r.ID
				break
			}
		}
	}
	cell.Comparable = !sc.expectUnloc &&
		cell.CenHopRouter != "" &&
		cell.Tomography.Verdict != tomography.Unlocalizable
	if cell.Comparable {
		for _, cand := range cell.Tomography.Candidates {
			if cand.Link.A == cell.CenHopRouter || cand.Link.B == cell.CenHopRouter {
				cell.Agree = true
				break
			}
		}
	}
	return cell
}

// RenderCrossValidation formats the study as the cross-validation table.
// The final "agreement-ok" line is the machine-checkable gate CI greps
// for.
func RenderCrossValidation(cv CrossValidation) string {
	var b strings.Builder
	b.WriteString("cross-validation: churn tomography vs CenTrace\n")
	fmt.Fprintf(&b, "%-19s %-26s %-46s %s\n", "scenario", "centrace", "tomography", "verdict")
	for _, c := range cv.Cells {
		cen := "no blocking seen"
		if c.CenTrace.Blocked {
			hop := c.CenHopRouter
			if hop == "" {
				hop = c.CenTrace.BlockingHop
			}
			if hop == "" {
				hop = "?"
			}
			cen = fmt.Sprintf("hop=%s conf=%.2f", hop, c.CenTrace.Confidence)
		}
		verdict := "n/a"
		switch {
		case c.ExpectUnlocalizable:
			if c.Tomography.Verdict == tomography.Unlocalizable {
				verdict = "blind-spot-confirmed"
			} else {
				verdict = "unexpected-localization"
			}
		case c.Comparable && c.Agree:
			verdict = "agree"
		case c.Comparable:
			verdict = "disagree"
		}
		fmt.Fprintf(&b, "%-19s %-26s %-46s %s\n", c.Scenario, cen, tomography.Render(c.Tomography), verdict)
	}
	fmt.Fprintf(&b, "agreement: %d/%d comparable cells (%.0f%%)\n", cv.Agreements, cv.Comparable, 100*cv.Rate())
	fmt.Fprintf(&b, "agreement-ok: %v\n", cv.OK())
	return b.String()
}
