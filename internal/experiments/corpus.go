package experiments

import (
	"fmt"
	"net/netip"
	"sort"

	"cendev/internal/cenfuzz"
	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/features"
	"cendev/internal/topology"
)

// TraceRecord is one CenTrace measurement with its context.
type TraceRecord struct {
	Country   string
	InCountry bool
	Endpoint  EndpointInfo
	Protocol  centrace.Protocol
	Domain    string
	Result    *centrace.Result
}

// Key identifies the endpoint+protocol+domain of a record.
func (r *TraceRecord) Key() string {
	return fmt.Sprintf("%s/%s/%s", r.Endpoint.Host.ID, r.Protocol, r.Domain)
}

// CorpusConfig bounds the corpus size.
type CorpusConfig struct {
	// Repetitions per traceroute (default 5; the paper uses 11 — the
	// simulated paths have less variance, see EXPERIMENTS.md).
	Repetitions int
	// MaxFuzzEndpointsPerCountry caps how many distinct blocking devices
	// per country get the full CenFuzz treatment, with up to two endpoints
	// fuzzed per device (default 12).
	MaxFuzzEndpointsPerCountry int
	// InCountryEndpoints caps how many endpoints each in-country client
	// probes (default 3).
	InCountryEndpoints int
	// SkipFuzz skips the CenFuzz phase (for trace-only experiments).
	SkipFuzz bool
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Repetitions == 0 {
		c.Repetitions = 5
	}
	if c.MaxFuzzEndpointsPerCountry == 0 {
		c.MaxFuzzEndpointsPerCountry = 12
	}
	if c.InCountryEndpoints == 0 {
		c.InCountryEndpoints = 3
	}
	return c
}

// Corpus holds every measurement of one full study run: the raw material
// for all tables and figures.
type Corpus struct {
	Scenario *Scenario
	Config   CorpusConfig
	Traces   []TraceRecord
	// Fuzz maps endpoint host ID → CenFuzz result (remote measurements).
	Fuzz map[string]*cenfuzz.Result
	// FuzzTrace maps endpoint host ID → the blocked trace record the fuzz
	// run was based on, keeping device attribution consistent.
	FuzzTrace map[string]TraceRecord
	// InCountryFuzz maps country → CenFuzz result against the test
	// domains' origin servers (circumvention measurements).
	InCountryFuzz map[string]*cenfuzz.Result
	// PotentialDeviceIPs are the control-trace terminating-hop addresses
	// of blocked in-path measurements (§5.2).
	PotentialDeviceIPs []netip.Addr
	// Probes maps device IP → banner grab result.
	Probes map[netip.Addr]*cenprobe.Result
}

// BuildCorpus creates the world and runs the full measurement study.
func BuildCorpus(cfg CorpusConfig) *Corpus {
	cfg = cfg.withDefaults()
	s := BuildWorld()
	c := &Corpus{
		Scenario:      s,
		Config:        cfg,
		Fuzz:          map[string]*cenfuzz.Result{},
		FuzzTrace:     map[string]TraceRecord{},
		InCountryFuzz: map[string]*cenfuzz.Result{},
		Probes:        map[netip.Addr]*cenprobe.Result{},
	}
	c.runTraces()
	c.collectDeviceIPs()
	c.runProbes()
	if !cfg.SkipFuzz {
		c.runFuzz()
	}
	return c
}

// runTraces performs remote CenTraces from the US client to every endpoint
// for every (domain, protocol), plus in-country CenTraces from each
// vantage point to a subset of same-country endpoints.
func (c *Corpus) runTraces() {
	s := c.Scenario
	for _, ep := range s.Endpoints {
		for _, domain := range TestDomainsFor(ep.Country) {
			for _, proto := range []centrace.Protocol{centrace.HTTP, centrace.HTTPS} {
				res := c.trace(s.USClient, ep, domain, proto)
				c.Traces = append(c.Traces, TraceRecord{
					Country: ep.Country, Endpoint: ep,
					Protocol: proto, Domain: domain, Result: res,
				})
			}
		}
	}
	for _, country := range Countries {
		client, ok := s.InCountryClients[country]
		if !ok {
			continue
		}
		// In-country vantage points target unguarded infrastructure
		// (host-side firewalls are not the censorship under study, §4.3).
		var eps []EndpointInfo
		for _, e := range s.EndpointsIn(country) {
			if !s.Guarded[e.Host.ID] {
				eps = append(eps, e)
			}
			if len(eps) == c.Config.InCountryEndpoints {
				break
			}
		}
		for _, ep := range eps {
			for _, domain := range TestDomainsFor(country) {
				for _, proto := range []centrace.Protocol{centrace.HTTP, centrace.HTTPS} {
					res := c.trace(client, ep, domain, proto)
					c.Traces = append(c.Traces, TraceRecord{
						Country: country, InCountry: true, Endpoint: ep,
						Protocol: proto, Domain: domain, Result: res,
					})
				}
			}
		}
	}
}

// trace runs one CenTrace measurement.
func (c *Corpus) trace(client *topology.Host, ep EndpointInfo, domain string, proto centrace.Protocol) *centrace.Result {
	p := centrace.New(c.Scenario.Net, client, ep.Host, centrace.Config{
		ControlDomain: ControlDomain,
		TestDomain:    domain,
		Protocol:      proto,
		Repetitions:   c.Config.Repetitions,
	})
	return p.Run()
}

// collectDeviceIPs gathers the potential device addresses: the blocking
// hops of blocked, in-path measurements (§5.2: "These are the IP addresses
// of the terminating hop in our Control Domain CenTrace measurement").
func (c *Corpus) collectDeviceIPs() {
	seen := map[netip.Addr]bool{}
	for _, tr := range c.Traces {
		r := tr.Result
		if !r.Blocked || r.Placement != centrace.PlacementInPath {
			continue
		}
		addr := r.BlockingHop.Addr
		if addr.IsValid() && !seen[addr] {
			seen[addr] = true
			c.PotentialDeviceIPs = append(c.PotentialDeviceIPs, addr)
		}
	}
	sort.Slice(c.PotentialDeviceIPs, func(i, j int) bool {
		return c.PotentialDeviceIPs[i].Less(c.PotentialDeviceIPs[j])
	})
}

// runProbes banner-grabs every potential device IP.
func (c *Corpus) runProbes() {
	for _, r := range cenprobe.ProbeAll(c.Scenario.Net, c.PotentialDeviceIPs) {
		c.Probes[r.Addr] = r
	}
}

// runFuzz fuzzes blocked endpoints — one per distinct blocking hop, so
// every deployed device gets fuzzed at least once — capped per country,
// plus the in-country circumvention runs against the origin servers.
func (c *Corpus) runFuzz() {
	s := c.Scenario
	// Pick blocked traces per distinct blocking-hop address, preferring
	// path blocking over endpoint-side ("At E") guards, and — for path
	// devices — preferring unguarded endpoints so exactly one device
	// filters the fuzzed flow.
	type pick struct{ tr TraceRecord }
	const endpointsPerHop = 2
	chosen := map[string][]pick{} // blocking hop → traces
	for _, preferPath := range []bool{true, false} {
		for _, tr := range c.Traces {
			if tr.InCountry || !tr.Result.Blocked {
				continue
			}
			isPath := tr.Result.Location != centrace.LocAtE
			if isPath != preferPath {
				continue
			}
			if isPath && s.Guarded[tr.Endpoint.Host.ID] {
				continue // keep the guard out of the device's fingerprint
			}
			key := tr.Result.BlockingHop.Addr.String()
			if !tr.Result.BlockingHop.Addr.IsValid() {
				key = "hop-ttl-" + fmt.Sprint(tr.Result.DeviceTTL) + "-" + tr.Country
			}
			already := false
			for _, p := range chosen[key] {
				if p.tr.Endpoint.Host.ID == tr.Endpoint.Host.ID {
					already = true
					break
				}
			}
			if !already && len(chosen[key]) < endpointsPerHop {
				chosen[key] = append(chosen[key], pick{tr})
			}
		}
	}
	// The per-country cap counts distinct blocking hops (devices), so
	// vendor coverage survives even when one device blocks many endpoints.
	// Path-blocking devices take priority over endpoint-side guards.
	var hopKeys []string
	for key := range chosen {
		hopKeys = append(hopKeys, key)
	}
	isAtE := func(key string) bool {
		return chosen[key][0].tr.Result.Location == centrace.LocAtE
	}
	sort.Slice(hopKeys, func(i, j int) bool {
		a, b := hopKeys[i], hopKeys[j]
		if isAtE(a) != isAtE(b) {
			return !isAtE(a)
		}
		return a < b
	})
	perCountry := map[string]int{}
	for _, key := range hopKeys {
		country := chosen[key][0].tr.Country
		if perCountry[country] >= c.Config.MaxFuzzEndpointsPerCountry {
			continue
		}
		perCountry[country]++
		for _, p := range chosen[key] {
			tr := p.tr
			id := tr.Endpoint.Host.ID
			if _, done := c.Fuzz[id]; done {
				continue
			}
			fz := cenfuzz.New(s.Net, s.USClient, tr.Endpoint.Host, cenfuzz.Config{
				TestDomain:    tr.Domain,
				ControlDomain: ControlDomain,
			})
			c.Fuzz[id] = fz.Run(nil)
			c.FuzzTrace[id] = tr
		}
	}
	// In-country circumvention runs: client → the blocked domain's origin.
	for _, country := range []string{"AZ", "KZ"} {
		client, ok := s.InCountryClients[country]
		if !ok {
			continue
		}
		domain := TestDomainsFor(country)[1] // the country-specific domain
		origin := s.Origins[domain]
		if origin == nil {
			continue
		}
		fz := cenfuzz.New(s.Net, client, origin, cenfuzz.Config{
			TestDomain:    domain,
			ControlDomain: ControlDomain,
		})
		c.InCountryFuzz[country] = fz.Run(nil)
	}
}

// BlockedTraces returns the blocked remote trace records for a country
// ("" = all).
func (c *Corpus) BlockedTraces(country string) []TraceRecord {
	var out []TraceRecord
	for _, tr := range c.Traces {
		if tr.InCountry || !tr.Result.Blocked {
			continue
		}
		if country == "" || tr.Country == country {
			out = append(out, tr)
		}
	}
	return out
}

// Observations assembles the per-endpoint feature observations for the
// clustering pipeline: one observation per fuzzed blocked endpoint, using
// the same trace record the fuzz run was based on so the device
// attribution is consistent.
func (c *Corpus) Observations() []*features.Observation {
	var ids []string
	for id := range c.Fuzz {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []*features.Observation
	for _, id := range ids {
		tr, ok := c.FuzzTrace[id]
		if !ok {
			continue
		}
		obs := &features.Observation{
			EndpointID: id,
			Country:    tr.Country,
			ASN:        tr.Endpoint.ASN,
			Trace:      tr.Result,
			Fuzz:       c.Fuzz[id],
		}
		if p, ok := c.Probes[tr.Result.BlockingHop.Addr]; ok {
			obs.Probe = p
		}
		out = append(out, obs)
	}
	return out
}
