package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"cendev/internal/cenfuzz"
	"cendev/internal/cenprobe"
	"cendev/internal/centrace"
	"cendev/internal/faults"
	"cendev/internal/features"
	"cendev/internal/obs"
	"cendev/internal/parallel"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// TraceRecord is one CenTrace measurement with its context.
type TraceRecord struct {
	Country   string
	InCountry bool
	Endpoint  EndpointInfo
	Protocol  centrace.Protocol
	Domain    string
	Result    *centrace.Result
}

// Key identifies the endpoint+protocol+domain of a record.
func (r *TraceRecord) Key() string {
	return fmt.Sprintf("%s/%s/%s", r.Endpoint.Host.ID, r.Protocol, r.Domain)
}

// CorpusConfig bounds the corpus size.
type CorpusConfig struct {
	// Repetitions per traceroute (default 5; the paper uses 11 — the
	// simulated paths have less variance, see EXPERIMENTS.md).
	Repetitions int
	// MaxFuzzEndpointsPerCountry caps how many distinct blocking devices
	// per country get the full CenFuzz treatment, with up to two endpoints
	// fuzzed per device (default 12).
	MaxFuzzEndpointsPerCountry int
	// InCountryEndpoints caps how many endpoints each in-country client
	// probes (default 3).
	InCountryEndpoints int
	// SkipFuzz skips the CenFuzz phase (for trace-only experiments).
	SkipFuzz bool
	// Workers is the parallel worker count for the trace, probe, and fuzz
	// phases. Each trace/fuzz worker owns a private clone of the scenario
	// network and every measurement starts from the same canonical phase
	// state, so the corpus is identical at every worker count. Values
	// below 1 mean one worker.
	Workers int
	// Obs, when non-nil, is installed on the scenario network and threaded
	// through every measurement phase. The deterministic series are
	// identical at any worker count.
	Obs *obs.Registry
	// Tracer, when non-nil, records per-phase and per-measurement spans
	// stamped with the scenario's virtual clock.
	Tracer *obs.Tracer
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Repetitions == 0 {
		c.Repetitions = 5
	}
	if c.MaxFuzzEndpointsPerCountry == 0 {
		c.MaxFuzzEndpointsPerCountry = 12
	}
	if c.InCountryEndpoints == 0 {
		c.InCountryEndpoints = 3
	}
	return c
}

// Corpus holds every measurement of one full study run: the raw material
// for all tables and figures.
type Corpus struct {
	Scenario *Scenario
	Config   CorpusConfig
	Traces   []TraceRecord
	// Fuzz maps endpoint host ID → CenFuzz result (remote measurements).
	Fuzz map[string]*cenfuzz.Result
	// FuzzTrace maps endpoint host ID → the blocked trace record the fuzz
	// run was based on, keeping device attribution consistent.
	FuzzTrace map[string]TraceRecord
	// InCountryFuzz maps country → CenFuzz result against the test
	// domains' origin servers (circumvention measurements).
	InCountryFuzz map[string]*cenfuzz.Result
	// PotentialDeviceIPs are the control-trace terminating-hop addresses
	// of blocked in-path measurements (§5.2).
	PotentialDeviceIPs []netip.Addr
	// Probes maps device IP → banner grab result.
	Probes map[netip.Addr]*cenprobe.Result
	// root is the corpus-wide trace span phases nest under (nil untraced).
	root *obs.Span
}

// BuildCorpus creates the world and runs the full measurement study.
func BuildCorpus(cfg CorpusConfig) *Corpus {
	cfg = cfg.withDefaults()
	s := BuildWorld()
	if cfg.Obs != nil {
		s.Net.SetObs(cfg.Obs)
	}
	c := &Corpus{
		Scenario:      s,
		Config:        cfg,
		Fuzz:          map[string]*cenfuzz.Result{},
		FuzzTrace:     map[string]TraceRecord{},
		InCountryFuzz: map[string]*cenfuzz.Result{},
		Probes:        map[netip.Addr]*cenprobe.Result{},
	}
	c.root = cfg.Tracer.Start("corpus.build", s.Net.Now())
	c.runTraces()
	c.collectDeviceIPs()
	c.runProbes()
	if !cfg.SkipFuzz {
		c.runFuzz()
	}
	c.root.End(s.Net.Now())
	return c
}

// traceJob is one CenTrace measurement in the corpus work list: the record
// template plus the vantage point it is measured from.
type traceJob struct {
	client *topology.Host
	rec    TraceRecord // Result filled in by the worker
}

// runTraces performs remote CenTraces from the US client to every endpoint
// for every (domain, protocol), plus in-country CenTraces from each
// vantage point to a subset of same-country endpoints. The work list fans
// out across Config.Workers workers, each owning a private clone of the
// scenario network; every trace starts from the same canonical phase state
// (clock, port sequence, per-trace derived fault seed), so c.Traces comes
// out in enumeration order with identical bytes at every worker count.
func (c *Corpus) runTraces() {
	s := c.Scenario
	var jobs []traceJob
	for _, ep := range s.Endpoints {
		for _, domain := range TestDomainsFor(ep.Country) {
			for _, proto := range []centrace.Protocol{centrace.HTTP, centrace.HTTPS} {
				jobs = append(jobs, traceJob{client: s.USClient, rec: TraceRecord{
					Country: ep.Country, Endpoint: ep,
					Protocol: proto, Domain: domain,
				}})
			}
		}
	}
	for _, country := range Countries {
		client, ok := s.InCountryClients[country]
		if !ok {
			continue
		}
		// In-country vantage points target unguarded infrastructure
		// (host-side firewalls are not the censorship under study, §4.3).
		var eps []EndpointInfo
		for _, e := range s.EndpointsIn(country) {
			if !s.Guarded[e.Host.ID] {
				eps = append(eps, e)
			}
			if len(eps) == c.Config.InCountryEndpoints {
				break
			}
		}
		for _, ep := range eps {
			for _, domain := range TestDomainsFor(country) {
				for _, proto := range []centrace.Protocol{centrace.HTTP, centrace.HTTPS} {
					jobs = append(jobs, traceJob{client: client, rec: TraceRecord{
						Country: country, InCountry: true, Endpoint: ep,
						Protocol: proto, Domain: domain,
					}})
				}
			}
		}
	}

	workers := c.Config.Workers
	if workers < 1 {
		workers = 1
	}
	baseClock := s.Net.Now()
	basePort := s.Net.PortSeq()
	baseFaults := s.Net.Faults()
	nets := make([]*simnet.Network, workers)
	for w := range nets {
		nets[w] = s.Net.Clone()
	}
	phase := c.root.StartChild("corpus.traces", baseClock)
	results := make([]*centrace.Result, len(jobs))
	ends := make([]time.Duration, len(jobs))
	parallel.ForEachOpt(len(jobs), workers, parallel.Options{Pool: "corpus.traces", Obs: c.Config.Obs}, func(w, i int) {
		j := jobs[i]
		n := nets[w]
		// The job span's key attribute is unique per job (endpoint ×
		// protocol × domain × client), which keeps sibling ordering — and
		// so the serialized trace — canonical even though every job starts
		// at the same canonical phase clock.
		span := phase.StartChild("corpus.trace", baseClock, obs.L("job", j.client.ID+"|"+j.rec.Key()))
		n.BeginMeasurement(baseClock, basePort)
		if baseFaults != nil {
			seed := faults.DeriveSeed(baseFaults.Seed(), "trace|"+j.client.ID+"|"+j.rec.Key())
			n.SetFaults(baseFaults.CloneSeeded(seed))
		}
		results[i] = centrace.New(n, j.client, j.rec.Endpoint.Host, centrace.Config{
			ControlDomain: ControlDomain,
			TestDomain:    j.rec.Domain,
			Protocol:      j.rec.Protocol,
			Repetitions:   c.Config.Repetitions,
			Obs:           c.Config.Obs,
			Tracer:        c.Config.Tracer,
			Parent:        span,
		}).Run()
		ends[i] = n.Now()
		span.End(n.Now())
	})
	maxEnd := baseClock
	for i := range jobs {
		rec := jobs[i].rec
		rec.Result = results[i]
		c.Traces = append(c.Traces, rec)
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	if d := maxEnd - s.Net.Now(); d > 0 {
		s.Net.Sleep(d)
	}
	phase.End(maxEnd)
}

// collectDeviceIPs gathers the potential device addresses: the blocking
// hops of blocked, in-path measurements (§5.2: "These are the IP addresses
// of the terminating hop in our Control Domain CenTrace measurement").
func (c *Corpus) collectDeviceIPs() {
	seen := map[netip.Addr]bool{}
	for _, tr := range c.Traces {
		r := tr.Result
		if !r.Blocked || r.Placement != centrace.PlacementInPath {
			continue
		}
		addr := r.BlockingHop.Addr
		if addr.IsValid() && !seen[addr] {
			seen[addr] = true
			c.PotentialDeviceIPs = append(c.PotentialDeviceIPs, addr)
		}
	}
	sort.Slice(c.PotentialDeviceIPs, func(i, j int) bool {
		return c.PotentialDeviceIPs[i].Less(c.PotentialDeviceIPs[j])
	})
}

// runProbes banner-grabs every potential device IP. Probes are pure reads
// against the device registry, so workers share the scenario network.
func (c *Corpus) runProbes() {
	workers := c.Config.Workers
	if workers < 1 {
		workers = 1
	}
	phase := c.root.StartChild("corpus.probes", c.Scenario.Net.Now())
	for _, r := range cenprobe.ProbeAllOpt(c.Scenario.Net, c.PotentialDeviceIPs, cenprobe.Opts{
		Workers: workers,
		Tracer:  c.Config.Tracer,
		Parent:  phase,
	}) {
		c.Probes[r.Addr] = r
	}
	phase.End(c.Scenario.Net.Now())
}

// fuzzJob is one CenFuzz run in the corpus work list.
type fuzzJob struct {
	label  string // seed-derivation label, unique per job
	client *topology.Host
	host   *topology.Host
	domain string
}

// runFuzzJobs executes CenFuzz runs across the worker pool, each on a
// private clone rewound to the same canonical phase state, and returns
// results in job order (identical at every worker count). The inner
// fuzzers run their strategies serially — the corpus parallelizes across
// endpoints instead.
func (c *Corpus) runFuzzJobs(jobs []fuzzJob) []*cenfuzz.Result {
	s := c.Scenario
	workers := c.Config.Workers
	if workers < 1 {
		workers = 1
	}
	baseClock := s.Net.Now()
	basePort := s.Net.PortSeq()
	baseFaults := s.Net.Faults()
	nets := make([]*simnet.Network, workers)
	for w := range nets {
		nets[w] = s.Net.Clone()
	}
	phase := c.root.StartChild("corpus.fuzz", baseClock)
	results := make([]*cenfuzz.Result, len(jobs))
	ends := make([]time.Duration, len(jobs))
	parallel.ForEachOpt(len(jobs), workers, parallel.Options{Pool: "corpus.fuzz", Obs: c.Config.Obs}, func(w, i int) {
		j := jobs[i]
		n := nets[w]
		// Unique job label keeps sibling span ordering canonical (all jobs
		// start at the same canonical phase clock).
		span := phase.StartChild("corpus.fuzzjob", baseClock, obs.L("job", j.label))
		n.BeginMeasurement(baseClock, basePort)
		if baseFaults != nil {
			seed := faults.DeriveSeed(baseFaults.Seed(), "fuzz|"+j.label)
			n.SetFaults(baseFaults.CloneSeeded(seed))
		}
		fz := cenfuzz.New(n, j.client, j.host, cenfuzz.Config{
			TestDomain:    j.domain,
			ControlDomain: ControlDomain,
			Obs:           c.Config.Obs,
			Tracer:        c.Config.Tracer,
			Parent:        span,
		})
		results[i] = fz.Run(nil)
		ends[i] = n.Now()
		span.End(n.Now())
	})
	maxEnd := baseClock
	for i := range jobs {
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	if d := maxEnd - s.Net.Now(); d > 0 {
		s.Net.Sleep(d)
	}
	phase.End(maxEnd)
	return results
}

// runFuzz fuzzes blocked endpoints — one per distinct blocking hop, so
// every deployed device gets fuzzed at least once — capped per country,
// plus the in-country circumvention runs against the origin servers.
func (c *Corpus) runFuzz() {
	s := c.Scenario
	// Pick blocked traces per distinct blocking-hop address, preferring
	// path blocking over endpoint-side ("At E") guards, and — for path
	// devices — preferring unguarded endpoints so exactly one device
	// filters the fuzzed flow.
	type pick struct{ tr TraceRecord }
	const endpointsPerHop = 2
	chosen := map[string][]pick{} // blocking hop → traces
	for _, preferPath := range []bool{true, false} {
		for _, tr := range c.Traces {
			if tr.InCountry || !tr.Result.Blocked {
				continue
			}
			isPath := tr.Result.Location != centrace.LocAtE
			if isPath != preferPath {
				continue
			}
			if isPath && s.Guarded[tr.Endpoint.Host.ID] {
				continue // keep the guard out of the device's fingerprint
			}
			key := tr.Result.BlockingHop.Addr.String()
			if !tr.Result.BlockingHop.Addr.IsValid() {
				key = "hop-ttl-" + fmt.Sprint(tr.Result.DeviceTTL) + "-" + tr.Country
			}
			already := false
			for _, p := range chosen[key] {
				if p.tr.Endpoint.Host.ID == tr.Endpoint.Host.ID {
					already = true
					break
				}
			}
			if !already && len(chosen[key]) < endpointsPerHop {
				chosen[key] = append(chosen[key], pick{tr})
			}
		}
	}
	// The per-country cap counts distinct blocking hops (devices), so
	// vendor coverage survives even when one device blocks many endpoints.
	// Path-blocking devices take priority over endpoint-side guards.
	var hopKeys []string
	for key := range chosen {
		hopKeys = append(hopKeys, key)
	}
	isAtE := func(key string) bool {
		return chosen[key][0].tr.Result.Location == centrace.LocAtE
	}
	sort.Slice(hopKeys, func(i, j int) bool {
		a, b := hopKeys[i], hopKeys[j]
		if isAtE(a) != isAtE(b) {
			return !isAtE(a)
		}
		return a < b
	})
	perCountry := map[string]int{}
	var jobs []fuzzJob
	var jobTraces []TraceRecord
	picked := map[string]bool{}
	for _, key := range hopKeys {
		country := chosen[key][0].tr.Country
		if perCountry[country] >= c.Config.MaxFuzzEndpointsPerCountry {
			continue
		}
		perCountry[country]++
		for _, p := range chosen[key] {
			tr := p.tr
			id := tr.Endpoint.Host.ID
			if picked[id] {
				continue
			}
			picked[id] = true
			jobs = append(jobs, fuzzJob{
				label:  "remote|" + id + "|" + tr.Domain,
				client: s.USClient,
				host:   tr.Endpoint.Host,
				domain: tr.Domain,
			})
			jobTraces = append(jobTraces, tr)
		}
	}
	for i, res := range c.runFuzzJobs(jobs) {
		id := jobTraces[i].Endpoint.Host.ID
		c.Fuzz[id] = res
		c.FuzzTrace[id] = jobTraces[i]
	}
	// In-country circumvention runs: client → the blocked domain's origin.
	var icJobs []fuzzJob
	var icCountries []string
	for _, country := range []string{"AZ", "KZ"} {
		client, ok := s.InCountryClients[country]
		if !ok {
			continue
		}
		domain := TestDomainsFor(country)[1] // the country-specific domain
		origin := s.Origins[domain]
		if origin == nil {
			continue
		}
		icJobs = append(icJobs, fuzzJob{
			label:  "incountry|" + country + "|" + domain,
			client: client,
			host:   origin,
			domain: domain,
		})
		icCountries = append(icCountries, country)
	}
	for i, res := range c.runFuzzJobs(icJobs) {
		c.InCountryFuzz[icCountries[i]] = res
	}
}

// BlockedTraces returns the blocked remote trace records for a country
// ("" = all).
func (c *Corpus) BlockedTraces(country string) []TraceRecord {
	var out []TraceRecord
	for _, tr := range c.Traces {
		if tr.InCountry || !tr.Result.Blocked {
			continue
		}
		if country == "" || tr.Country == country {
			out = append(out, tr)
		}
	}
	return out
}

// Observations assembles the per-endpoint feature observations for the
// clustering pipeline: one observation per fuzzed blocked endpoint, using
// the same trace record the fuzz run was based on so the device
// attribution is consistent.
func (c *Corpus) Observations() []*features.Observation {
	var ids []string
	for id := range c.Fuzz {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []*features.Observation
	for _, id := range ids {
		tr, ok := c.FuzzTrace[id]
		if !ok {
			continue
		}
		obs := &features.Observation{
			EndpointID: id,
			Country:    tr.Country,
			ASN:        tr.Endpoint.ASN,
			Trace:      tr.Result,
			Fuzz:       c.Fuzz[id],
		}
		if p, ok := c.Probes[tr.Result.BlockingHop.Addr]; ok {
			obs.Probe = p
		}
		out = append(out, obs)
	}
	return out
}
