package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cendev/internal/cenfuzz"
)

// PermRate is the aggregate evasion rate of one specific permutation of
// one strategy across all fuzzed endpoints — the granularity at which
// §6.3 reports "using the PUT, PATCH and an empty HTTP method evade the
// censorship device 21.63%, 82.15%, and 92.01% of the times".
type PermRate struct {
	Strategy string
	Desc     string
	Valid    int
	Evaded   int
}

// Rate returns the evasion percentage.
func (p PermRate) Rate() float64 {
	if p.Valid == 0 {
		return 0
	}
	return 100 * float64(p.Evaded) / float64(p.Valid)
}

// PermutationRates aggregates per-permutation outcomes for one strategy
// across the corpus's fuzz runs, in permutation order.
func PermutationRates(c *Corpus, strategy string) []PermRate {
	acc := map[string]*PermRate{}
	var order []string
	for _, res := range fuzzInOrder(c) {
		sr := res.Strategy(strategy)
		if sr == nil {
			continue
		}
		for _, p := range sr.Perms {
			r, ok := acc[p.Desc]
			if !ok {
				r = &PermRate{Strategy: strategy, Desc: p.Desc}
				acc[p.Desc] = r
				order = append(order, p.Desc)
			}
			if p.Valid {
				r.Valid++
				if p.Evaded {
					r.Evaded++
				}
			}
		}
	}
	out := make([]PermRate, 0, len(order))
	for _, desc := range order {
		out = append(out, *acc[desc])
	}
	return out
}

// fuzzInOrder returns fuzz results in deterministic endpoint order.
func fuzzInOrder(c *Corpus) []*cenfuzz.Result {
	var ids []string
	for id := range c.Fuzz {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*cenfuzz.Result, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.Fuzz[id])
	}
	return out
}

// MethodRates extracts the §6.3 headline per-method evasion rates from the
// Get Word Alternate strategy.
type MethodRates struct {
	POST, PUT, PATCH, DELETE, XXXX, Empty float64
}

// MethodEvasionRates computes the per-method rates.
func MethodEvasionRates(c *Corpus) MethodRates {
	var m MethodRates
	for _, r := range PermutationRates(c, "Get Word Alt.") {
		switch r.Desc {
		case `method="POST"`:
			m.POST = r.Rate()
		case `method="PUT"`:
			m.PUT = r.Rate()
		case `method="PATCH"`:
			m.PATCH = r.Rate()
		case `method="DELETE"`:
			m.DELETE = r.Rate()
		case `method="XXXX"`:
			m.XXXX = r.Rate()
		case `method=""`:
			m.Empty = r.Rate()
		}
	}
	return m
}

// RenderMethodRates formats the §6.3 per-method comparison.
func RenderMethodRates(c *Corpus) string {
	m := MethodEvasionRates(c)
	var b strings.Builder
	b.WriteString("§6.3 per-method evasion rates (paper: POST 1.76%, PUT 21.63%, PATCH 82.15%, empty 92.01%)\n")
	fmt.Fprintf(&b, "  POST   %5.1f%%\n  PUT    %5.1f%%\n  PATCH  %5.1f%%\n  DELETE %5.1f%%\n  XXXX   %5.1f%%\n  empty  %5.1f%%\n",
		m.POST, m.PUT, m.PATCH, m.DELETE, m.XXXX, m.Empty)
	return b.String()
}
