package experiments

import (
	"strings"
	"sync"
	"testing"

	"cendev/internal/centrace"
)

var (
	corpusOnce sync.Once
	corpus     *Corpus
)

// sharedCorpus builds the full study once for every corpus-level test.
func sharedCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		corpus = BuildCorpus(CorpusConfig{Repetitions: 3})
	})
	return corpus
}

func TestTable1Shape(t *testing.T) {
	c := sharedCorpus(t)
	rows := Table1(c)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCountry := map[string]Table1Row{}
	for _, r := range rows {
		byCountry[r.Country] = r
	}
	// Paper shapes: AZ/KZ/RU have one in-country client, BY none.
	if byCountry["BY"].InCountryClients != 0 || byCountry["AZ"].InCountryClients != 1 {
		t.Errorf("client counts wrong: %+v", rows)
	}
	// RU in-country observes no blocking.
	if byCountry["RU"].InCountryBlocked != 0 {
		t.Errorf("RU in-country blocked = %d, want 0", byCountry["RU"].InCountryBlocked)
	}
	// AZ and KZ in-country observe blocking.
	if byCountry["AZ"].InCountryBlocked == 0 || byCountry["KZ"].InCountryBlocked == 0 {
		t.Error("AZ/KZ in-country should observe blocking")
	}
	// KZ has a high remote blocked share; RU a low one (§4.3 shapes).
	kz := byCountry["KZ"]
	ru := byCountry["RU"]
	kzShare := float64(kz.RemoteBlocked) / float64(kz.RemoteCTs)
	ruShare := float64(ru.RemoteBlocked) / float64(ru.RemoteCTs)
	if kzShare < 0.5 {
		t.Errorf("KZ remote blocked share = %.2f, want high (paper: 86%%)", kzShare)
	}
	if ruShare > 0.3 {
		t.Errorf("RU remote blocked share = %.2f, want low (paper: 4%%)", ruShare)
	}
	if out := RenderTable1(rows); !strings.Contains(out, "KZ") {
		t.Error("render missing KZ row")
	}
}

func TestFig3Shape(t *testing.T) {
	c := sharedCorpus(t)
	cells := Fig3(c)
	if len(cells) == 0 {
		t.Fatal("no Figure 3 cells")
	}
	s := Fig3Summary(cells)
	// Most blocking is drops + resets (paper: 94.75%).
	if s.DropOrRSTPercent < 80 {
		t.Errorf("drops+resets = %.1f%%, want dominant", s.DropOrRSTPercent)
	}
	// The Past E class exists (RU TTL-copy devices).
	if s.PastE == 0 {
		t.Error("no Past E observations")
	}
	// The At E class exists (guard devices).
	if s.AtE == 0 {
		t.Error("no At E observations")
	}
	// Path blocking dominates locations (paper: 73.97%).
	if s.PathCE <= s.AtE {
		t.Errorf("Path %d vs At E %d, want Path dominant", s.PathCE, s.AtE)
	}
	if out := RenderFig3(cells); !strings.Contains(out, "Summary") {
		t.Error("render missing summary")
	}
}

func TestFig4Shape(t *testing.T) {
	c := sharedCorpus(t)
	rows := Fig4(c)
	byCountry := map[string]Fig4Row{}
	for _, r := range rows {
		byCountry[r.Country] = r
	}
	// AZ and KZ devices are exclusively in-path (§4.3).
	if byCountry["AZ"].OnPath != 0 || byCountry["KZ"].OnPath != 0 {
		t.Errorf("AZ/KZ on-path counts = %d/%d, want 0", byCountry["AZ"].OnPath, byCountry["KZ"].OnPath)
	}
	// Most BY devices are on-path (§4.3).
	by := byCountry["BY"]
	if by.OnPath <= by.InPath {
		t.Errorf("BY in=%d on=%d, want on-path dominant", by.InPath, by.OnPath)
	}
	// RU is mostly in-path.
	ru := byCountry["RU"]
	if ru.InPath <= ru.OnPath {
		t.Errorf("RU in=%d on=%d, want in-path dominant", ru.InPath, ru.OnPath)
	}
	RenderFig4(rows)
}

func TestFig5Shape(t *testing.T) {
	c := sharedCorpus(t)
	rows := Fig5(c)
	if len(rows) == 0 {
		t.Fatal("no Figure 5 rows")
	}
	totals := Fig5StrategyTotals(rows)
	// §6.3 orderings: PATCH ≫ POST; host-word removal evades broadly;
	// capitalize-method evades rarely; TLD alternation > subdomain
	// alternation.
	hostRem := totals["Host Word Rem."]
	if hostRem.Rate() < 70 {
		t.Errorf("Host Word Rem. = %.1f%%, want high (paper: 91.3%%)", hostRem.Rate())
	}
	getCap := totals["Get Word Cap."]
	if getCap.Rate() > 20 {
		t.Errorf("Get Word Cap. = %.1f%%, want low (paper: <1%%)", getCap.Rate())
	}
	tld := totals["Hostname TLD Alt."]
	sub := totals["Host. Subdomain Alt."]
	if tld.Rate() <= sub.Rate() {
		t.Errorf("TLD %.1f%% <= subdomain %.1f%%, want TLD higher (paper: 88%% vs 61.5%%)", tld.Rate(), sub.Rate())
	}
	normal := totals["Normal"]
	if normal.Rate() != 0 {
		t.Errorf("Normal rate = %.1f%%, want 0", normal.Rate())
	}
	if out := RenderFig5(rows); !strings.Contains(out, "Strategy") {
		t.Error("render broken")
	}
}

func TestCircumventionFindings(t *testing.T) {
	c := sharedCorpus(t)
	reps := Circumvention(c)
	if len(reps) == 0 {
		t.Fatal("no circumvention reports")
	}
	// KZ: padding pokerstars circumvents (tolerant origin, §6.3).
	foundPad := false
	for _, r := range reps {
		if r.Country == "KZ" && r.Strategy == "Hostname Pad." && r.Circumvented > 0 {
			foundPad = true
		}
	}
	if !foundPad {
		t.Error("KZ hostname padding should circumvent against the tolerant pokerstars origin")
	}
}

func TestBannerStatsShape(t *testing.T) {
	c := sharedCorpus(t)
	s := BannerStatistics(c)
	if s.Summary.Probed < 10 {
		t.Fatalf("probed = %d, want 10+ potential device IPs", s.Summary.Probed)
	}
	if s.Summary.Labeled == 0 {
		t.Fatal("no vendor labels from banners")
	}
	// Cisco is the most common banner label (paper: 7 of 19).
	if s.Summary.VendorCounts["Cisco"] == 0 {
		t.Errorf("vendor counts = %v, want Cisco present", s.Summary.VendorCounts)
	}
	// Labeled devices are a minority of probed IPs (§5.3).
	if s.Summary.Labeled >= s.Summary.Probed {
		t.Errorf("labeled %d of %d, want minority", s.Summary.Labeled, s.Summary.Probed)
	}
	RenderBannerStats(s)
}

func TestQuoteStatisticsShape(t *testing.T) {
	c := sharedCorpus(t)
	s := QuoteStatistics(c)
	if s.TotalQuotes == 0 {
		t.Fatal("no quotes observed")
	}
	// Both RFC 792-minimal and fuller quotes appear (§4.3: 57.6% minimal).
	if s.RFC792Only == 0 || s.RFC792Only == s.TotalQuotes {
		t.Errorf("RFC792-only = %d of %d, want a mix", s.RFC792Only, s.TotalQuotes)
	}
}

func TestExtraterritorialKZ(t *testing.T) {
	c := sharedCorpus(t)
	s := Extraterritorial(c, "KZ")
	if s.BlockedAbroad == 0 {
		t.Fatal("no KZ endpoints blocked abroad")
	}
	if s.Share < 0.1 || s.Share > 0.6 {
		t.Errorf("KZ blocked-abroad share = %.2f, want ≈0.3 (paper: 34%%)", s.Share)
	}
	if s.ForeignASNs[31133] == 0 && s.ForeignASNs[43727] == 0 {
		t.Errorf("foreign ASNs = %v, want Megafon/Kvant", s.ForeignASNs)
	}
}

func TestFig9Importance(t *testing.T) {
	c := sharedCorpus(t)
	accs, imp := Fig9(c)
	if len(accs) != 15 {
		t.Fatalf("CV folds = %d, want 15 (3×5)", len(accs))
	}
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	if mean < 0.5 {
		t.Errorf("CV accuracy = %.2f, want vendors separable", mean)
	}
	ranked := Fig9Ranked(c)
	if ranked[0].Importance <= 0 {
		t.Fatal("no informative features")
	}
	_ = imp
	if out := RenderFig9(c); !strings.Contains(out, "CV accuracy") {
		t.Error("render broken")
	}
}

func TestFig6Clustering(t *testing.T) {
	c := sharedCorpus(t)
	res := Fig6(c, Fig6Config{})
	if len(res.Clusters) < 2 {
		t.Fatalf("clusters = %d, want several", len(res.Clusters))
	}
	if res.SameCountryShare < 0.4 {
		t.Errorf("same-country share = %.2f, want majority (paper: 69%%)", res.SameCountryShare)
	}
	if len(res.TopFeatures) != 10 {
		t.Errorf("top features = %d, want 10", len(res.TopFeatures))
	}
	if out := RenderFig6(res); !strings.Contains(out, "cluster") {
		t.Error("render broken")
	}
}

func TestVendorCorrelationShape(t *testing.T) {
	c := sharedCorpus(t)
	cors := VendorCorrelations(c)
	if len(cors) == 0 {
		t.Fatal("no correlations computed")
	}
	var sameSum, crossSum float64
	var sameN, crossN int
	for _, vc := range cors {
		if vc.VendorA == vc.VendorB {
			sameSum += vc.MeanRho
			sameN++
		} else {
			crossSum += vc.MeanRho
			crossN++
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skipf("need both same- and cross-vendor pairs (same=%d cross=%d)", sameN, crossN)
	}
	same := sameSum / float64(sameN)
	cross := crossSum / float64(crossN)
	if same <= cross {
		t.Errorf("same-vendor rho %.2f <= cross-vendor %.2f, want same higher (§7.4)", same, cross)
	}
	RenderCorrelations(cors)
}

func TestPathGraphs(t *testing.T) {
	c := sharedCorpus(t)
	fig10 := Fig10(c)
	if len(fig10.Nodes) == 0 || len(fig10.Edges) == 0 {
		t.Fatal("empty AZ path graph")
	}
	blocked := fig10.BlockedEdges()
	if len(blocked) == 0 {
		t.Fatal("no blocked edges in AZ graph")
	}
	// The dominant blocked edge head is in Delta Telecom.
	foundDelta := false
	for _, e := range blocked {
		if fig10.Nodes[e[1]].ASN == 29049 {
			foundDelta = true
		}
	}
	if !foundDelta {
		t.Error("AZ blocking edge not in Delta Telecom")
	}
	dot := fig10.RenderDOT()
	if !strings.Contains(dot, "color=red") {
		t.Error("DOT output missing red blocked links")
	}
	if txt := fig10.RenderASCII(); !strings.Contains(txt, "blocking at") {
		t.Error("ASCII output missing blocking lines")
	}
	// Figure 1: KZ in-country graph shows AS9198 blocking.
	fig1 := Fig1(c)
	if txt := fig1.RenderASCII(); !strings.Contains(txt, "9198") {
		t.Errorf("KZ in-country graph missing AS9198: %s", txt)
	}
}

func TestTable2And3Render(t *testing.T) {
	rows := Table2()
	if len(rows) != 24 {
		t.Fatalf("Table 2 rows = %d, want 24", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.NP
	}
	if total != 479 {
		t.Errorf("total permutations = %d, want 479 (sum of Table 2 NP)", total)
	}
	if out := RenderTable2(); !strings.Contains(out, "CipherSuite Alt.") {
		t.Error("Table 2 render broken")
	}
	if out := RenderTable3(); !strings.Contains(out, "CenFuzz") || !strings.Contains(out, "Banners") {
		t.Error("Table 3 render broken")
	}
}

func TestCorpusBookkeeping(t *testing.T) {
	c := sharedCorpus(t)
	if len(c.PotentialDeviceIPs) == 0 {
		t.Fatal("no potential device IPs")
	}
	if len(c.Fuzz) == 0 {
		t.Fatal("no fuzz results")
	}
	obs := c.Observations()
	if len(obs) != len(c.Fuzz) {
		t.Errorf("observations = %d, fuzzed endpoints = %d", len(obs), len(c.Fuzz))
	}
	labeled := 0
	for _, o := range obs {
		if o.Label() != "" {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("no labeled observations")
	}
	// Record keys are unique.
	seen := map[string]bool{}
	for i := range c.Traces {
		k := c.Traces[i].Key()
		if !c.Traces[i].InCountry && seen[k] {
			t.Fatalf("duplicate trace key %s", k)
		}
		if !c.Traces[i].InCountry {
			seen[k] = true
		}
	}
	_ = centrace.HTTP
}

func TestMethodEvasionOrdering(t *testing.T) {
	c := sharedCorpus(t)
	m := MethodEvasionRates(c)
	// §6.3 ordering: POST evades least (1.76%), PUT more (21.63%), PATCH
	// much more (82.15%), the empty method most (92.01%).
	if !(m.POST <= m.PUT && m.PUT < m.PATCH && m.PATCH <= m.Empty) {
		t.Errorf("method rates POST=%.1f PUT=%.1f PATCH=%.1f empty=%.1f, want increasing", m.POST, m.PUT, m.PATCH, m.Empty)
	}
	if m.POST > 30 {
		t.Errorf("POST rate = %.1f%%, want low (paper: 1.76%%)", m.POST)
	}
	if m.PATCH < 50 {
		t.Errorf("PATCH rate = %.1f%%, want high (paper: 82.15%%)", m.PATCH)
	}
	if out := RenderMethodRates(c); !strings.Contains(out, "PATCH") {
		t.Error("render broken")
	}
}

func TestPermutationRatesShape(t *testing.T) {
	c := sharedCorpus(t)
	rates := PermutationRates(c, "Get Word Alt.")
	if len(rates) != 6 {
		t.Fatalf("permutations = %d, want 6", len(rates))
	}
	for _, r := range rates {
		if r.Valid == 0 {
			t.Errorf("%s: no valid measurements", r.Desc)
		}
	}
	if got := PermutationRates(c, "no-such-strategy"); len(got) != 0 {
		t.Error("unknown strategy should yield no rates")
	}
}

func TestCalibration(t *testing.T) {
	res := Calibrate(5, 200)
	if res.Endpoints != 5 || len(res.UniquePaths) != 5 {
		t.Fatalf("result shape: %+v", res)
	}
	for i, u := range res.UniquePaths {
		// The calibration world has 9 equal-cost paths per endpoint; with
		// 200 traceroutes we expect most to be discovered.
		if u < 4 || u > 9 {
			t.Errorf("endpoint %d: unique paths = %d, want 4..9", i, u)
		}
		if res.RepsFor90[i] <= 0 || res.RepsFor90[i] > 200 {
			t.Errorf("endpoint %d: repsFor90 = %d", i, res.RepsFor90[i])
		}
	}
	// The paper's operating point: on the order of ~11 repetitions for 90%
	// coverage; our synthetic world should land in the same regime.
	if res.MeanRepsFor90 < 2 || res.MeanRepsFor90 > 60 {
		t.Errorf("mean reps for 90%% = %.1f, want single-to-low-double digits", res.MeanRepsFor90)
	}
	if out := RenderCalibration(res); !strings.Contains(out, "90%") {
		t.Error("render broken")
	}
}

func TestClassifyUnlabeled(t *testing.T) {
	c := sharedCorpus(t)
	preds := ClassifyUnlabeled(c)
	if len(preds) == 0 {
		t.Fatal("no predictions for unlabeled devices")
	}
	known := map[string]bool{}
	for _, o := range c.Observations() {
		if l := o.Label(); l != "" {
			known[l] = true
		}
	}
	for _, p := range preds {
		if p.Vendor == "" || !known[p.Vendor] {
			t.Errorf("%s: predicted vendor %q not among training classes", p.EndpointID, p.Vendor)
		}
		if p.Confidence <= 0 || p.Confidence > 1 {
			t.Errorf("%s: confidence = %f", p.EndpointID, p.Confidence)
		}
	}
	if out := RenderPredictions(preds); !strings.Contains(out, "→") {
		t.Error("render broken")
	}
}

func TestDirectionality(t *testing.T) {
	d := DirectionalityDemo()
	if d.RemoteBlocked {
		t.Error("outbound-only filter should be invisible to remote measurements (§4.2)")
	}
	if !d.InCountryBlocked {
		t.Error("in-country measurement should catch the outbound filter")
	}
	if d.InCountryHop.ASN != 2 {
		t.Errorf("in-country blocking hop = %s, want CountryNet AS2", d.InCountryHop)
	}
	if out := RenderDirectionality(d); !strings.Contains(out, "invisible") {
		t.Error("render broken")
	}
}

func TestFig9Confusion(t *testing.T) {
	c := sharedCorpus(t)
	cm := Fig9Confusion(c)
	if len(cm.Classes) < 3 {
		t.Fatalf("classes = %v, want several vendors", cm.Classes)
	}
	if cm.Accuracy() < 0.5 {
		t.Errorf("held-out accuracy = %.2f", cm.Accuracy())
	}
	if cm.MacroF1() <= 0 {
		t.Error("macro-F1 = 0")
	}
}

func TestThrottlingDemo(t *testing.T) {
	d := ThrottlingDemo()
	if d.CenTraceBlocked {
		t.Error("CenTrace's conservative definition should not flag throttling as blocking (§4.1)")
	}
	if !d.Detected {
		t.Errorf("timing detector missed the throttle: control=%v throttled=%v", d.ControlRTT, d.ThrottledRTT)
	}
	if d.ThrottledRTT <= d.ControlRTT {
		t.Errorf("throttled fetch not slower: %v vs %v", d.ThrottledRTT, d.ControlRTT)
	}
	if out := RenderThrottling(d); !strings.Contains(out, "timing detector") {
		t.Error("render broken")
	}
}

func TestWorldDNSInjection(t *testing.T) {
	s := BuildWorld()
	if s.DNSResolver == nil {
		t.Fatal("DNS resolver missing from world")
	}
	run := func(domain string) *centrace.Result {
		p := centrace.New(s.Net, s.USClient, s.DNSResolver, centrace.Config{
			ControlDomain: ControlDomain,
			TestDomain:    domain,
			Protocol:      centrace.DNS,
			Repetitions:   3,
		})
		return p.Run()
	}
	res := run(RUBlocked)
	if !res.Blocked || res.BlockpageID != "dns-injection" {
		t.Fatalf("blocked=%v id=%q, want DNS injection detected", res.Blocked, res.BlockpageID)
	}
	if res.Placement != centrace.PlacementOnPath {
		t.Errorf("placement = %s, want on-path", res.Placement)
	}
	if res.BlockingHop.Country != "RU" {
		t.Errorf("blocking hop = %s, want Russian region", res.BlockingHop)
	}
	// An unlisted domain resolves honestly end to end.
	open := run(OpenNews)
	if open.Blocked {
		t.Errorf("open domain DNS trace blocked: %s", open.BlockpageID)
	}
	if !open.Valid {
		t.Error("control DNS trace should reach the resolver")
	}
}

func TestDNSExtensionReport(t *testing.T) {
	c := sharedCorpus(t)
	rep := DNSExtension(c.Scenario)
	if rep.Resolver == "" || len(rep.Rows) != 5 {
		t.Fatalf("report = %+v", rep)
	}
	byDomain := map[string]DNSRow{}
	for _, r := range rep.Rows {
		byDomain[r.Domain] = r
	}
	if !byDomain[RUBlocked].Injected || !byDomain[GlobalBlocked].Injected {
		t.Error("blocklisted domains should see forged answers")
	}
	if byDomain[OpenNews].Blocked || byDomain[RUNews].Blocked {
		t.Error("unlisted domains should resolve honestly")
	}
	if out := RenderDNSReport(rep); !strings.Contains(out, "forged answer") {
		t.Error("render broken")
	}
}

func TestWriteReport(t *testing.T) {
	c := sharedCorpus(t)
	var buf strings.Builder
	if err := WriteReport(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Measurement study report",
		"Table 1", "Figure 3", "Figure 5", "Figure 6", "Figure 9",
		"§5.3 device banners", "§8 DNS extension", "Throttling",
		"JSC-Kazakhtelecom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestDeviceInventory(t *testing.T) {
	c := sharedCorpus(t)
	rows := DeviceInventory(c.Scenario)
	if len(rows) < 30 {
		t.Fatalf("inventory rows = %d", len(rows))
	}
	byVendor := map[string]int{}
	for _, r := range rows {
		byVendor[r.Vendor]++
	}
	// §5.3 vendor multiset shape: Cisco most common among labeled products.
	if byVendor["Cisco"] < 5 {
		t.Errorf("Cisco deployments = %d, want 5+ (paper: 7)", byVendor["Cisco"])
	}
	out := RenderDeviceInventory(rows)
	if !strings.Contains(out, "endpoint-side guards") || !strings.Contains(out, "Sandvine") {
		t.Error("render broken")
	}
}
