// Package experiments builds the simulated four-country measurement world
// (AZ, BY, KZ, RU) and provides one harness per table and figure of the
// paper. The topology, device placements, and vendor mix encode the
// paper's measured ground truth (§4.3, §5.3) at roughly 1/8 scale — see
// DESIGN.md §2 and EXPERIMENTS.md for the substitution notes:
//
//   - AZ: centralized in-path dropping at the Telia (AS1299) → Delta
//     Telecom (AS29049) border; two multihomed ISPs run their own Fortinet
//     and Palo Alto filters.
//   - BY: on-path RST injectors inside the endpoint ASes (including
//     Beltelecom AS6697); Cogent (AS174) drops bridges.torproject.org
//     before traffic enters the country.
//   - KZ: in-path dropping inside JSC-Kazakhtelecom (AS9198) upstream of
//     the AS203087 client; several endpoints route via Russian transit
//     (Megafon AS31133, Kvant-telekom AS43727) where Russian devices drop
//     first; multihomed ISPs run Kerio, Mikrotik, and Fortinet boxes.
//   - RU: decentralized devices on regional border-entry links, mixed
//     vendors and actions, including TTL-copying injectors that produce
//     "Past E"; the in-country client's domestic paths cross no devices.
package experiments

import (
	"fmt"
	"net/netip"

	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/netem"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Domains used throughout the study.
const (
	ControlDomain = "www.control.example"
	GlobalBlocked = "www.globalblocked.example"
	AZBlocked     = "www.azblocked.example"
	BYBlocked     = "www.byblocked.example"
	TorBridges    = "bridges.torproject.org"
	KZPoker       = "www.pokerstars.com"
	KZDailymotion = "www.dailymotion.com"
	RUBlocked     = "www.rublocked.example"
	RUNews        = "www.runews.example"
	// OpenNews is a domain on every country's test list that no device
	// blocks; it keeps the blocked-CT ratios below 100%, as in the paper
	// (Table 1: 42% of AZ and 28% of BY remote CTs showed blocking).
	OpenNews = "www.opennews.example"
)

// TestDomainsFor returns the per-country test domain list (the paper picks
// the most-blocked domains per country from Censored Planet data, §4.2).
func TestDomainsFor(country string) []string {
	switch country {
	case "AZ":
		return []string{GlobalBlocked, AZBlocked, OpenNews}
	case "BY":
		return []string{GlobalBlocked, BYBlocked, TorBridges, OpenNews}
	case "KZ":
		return []string{GlobalBlocked, KZPoker, KZDailymotion}
	case "RU":
		return []string{GlobalBlocked, RUBlocked, RUNews, OpenNews}
	default:
		return nil
	}
}

// Countries under study, in report order.
var Countries = []string{"AZ", "BY", "KZ", "RU"}

// EndpointInfo describes one measurement endpoint.
type EndpointInfo struct {
	Host    *topology.Host
	Country string
	ASN     uint32
	// ViaRussia marks KZ endpoints routed through Russian transit.
	ViaRussia bool
}

// Scenario is the fully built world.
type Scenario struct {
	Graph *topology.Graph
	Net   *simnet.Network
	// USClient is the remote measurement machine.
	USClient *topology.Host
	// InCountryClients maps country → vantage point (AZ, KZ, RU; the paper
	// had no BY vantage point).
	InCountryClients map[string]*topology.Host
	// Endpoints are the remote measurement targets.
	Endpoints []EndpointInfo
	// Origins maps test domains to the hosts genuinely serving them (for
	// in-country circumvention measurements).
	Origins map[string]*topology.Host
	// Devices lists every censorship device with its deployment context.
	Devices []DeviceDeployment
	// Guarded marks endpoint host IDs that carry an endpoint-side ("At E")
	// guard device.
	Guarded map[string]bool
	// DNSResolver is the Russian public resolver behind the DNS injector
	// (the §8 extension deployment).
	DNSResolver *topology.Host
}

// DeviceDeployment records where a device was placed.
type DeviceDeployment struct {
	Device  *middlebox.Device
	Country string
	ASN     uint32
}

// EndpointsIn returns the endpoints in a country.
func (s *Scenario) EndpointsIn(country string) []EndpointInfo {
	var out []EndpointInfo
	for _, e := range s.Endpoints {
		if e.Country == country {
			out = append(out, e)
		}
	}
	return out
}

// regionCounts control the world scale (~1/8 of the paper's endpoint
// counts; see EXPERIMENTS.md).
const (
	azISPs       = 6
	byISPs       = 8
	kzCoreISPs   = 5 // behind JSC-Kazakhtelecom
	kzViaRussia  = 3 // behind Russian transit
	ruRegions    = 32
	ruFiltered   = 15
	perISPHosts  = 2
	azFortinetIx = 4 // multihomed AZ ISP index with a Fortinet box
	azPaloAltoIx = 5 // multihomed AZ ISP index with a Palo Alto box
)

// BuildWorld constructs the full four-country scenario.
func BuildWorld() *Scenario {
	g := topology.NewGraph()
	s := &Scenario{
		Graph:            g,
		InCountryClients: map[string]*topology.Host{},
		Origins:          map[string]*topology.Host{},
	}

	// --- Global transit and measurement infrastructure ---
	asUS := g.AddAS(396982, "MeasurementNet", "US")
	asTelia := g.AddAS(1299, "Telia", "SE")
	asCogent := g.AddAS(174, "COGENT", "US")
	asContent := g.AddAS(13335, "ContentNet", "US")

	usR := g.AddRouter("us-cli-r", asUS)
	telia1 := g.AddRouter("telia1", asTelia)
	telia2 := g.AddRouter("telia2", asTelia)
	cogent1 := g.AddRouter("cogent1", asCogent)
	cogent2 := g.AddRouter("cogent2", asCogent)
	contentR := g.AddRouter("content-r", asContent)
	g.Link("us-cli-r", "telia1")
	g.Link("us-cli-r", "cogent1")
	g.Link("telia1", "telia2")
	g.Link("cogent1", "cogent2")
	g.Link("telia1", "content-r")
	_ = telia1
	_ = cogent1

	s.USClient = g.AddHost("us-client", asUS, usR)

	// RFC 1812-style quoting on a share of routers so quote features vary
	// (§4.3: 57.6% of quotes carried only the RFC 792 minimum).
	telia2.QuoteLen = 128
	cogent2.QuoteLen = 128

	// --- Content origins (for in-country circumvention measurements) ---
	n := buildCountries(g, s, telia2, cogent2)

	// Origin servers: the "real" web servers of the test domains.
	origins := []struct {
		id      string
		domains []string
		padding bool
		wild    bool
	}{
		{"origin-global", []string{GlobalBlocked}, false, false},
		{"origin-poker", []string{KZPoker}, true, false},
		{"origin-daily", []string{KZDailymotion}, false, true},
		{"origin-misc", []string{AZBlocked, BYBlocked, RUBlocked, RUNews, TorBridges, OpenNews, ControlDomain}, false, false},
	}
	for _, o := range origins {
		h := g.AddHost(o.id, g.AS(13335), contentR)
		srv := endpoint.NewServer(append([]string{ControlDomain}, o.domains...)...)
		srv.TolerantPadding = o.padding
		srv.WildcardSubdomains = o.wild
		n.RegisterServer(o.id, srv)
		for _, d := range o.domains {
			s.Origins[d] = h
		}
	}
	// The RU public resolver serves the genuine addresses of every study
	// domain; the on-path injector in front of it forges answers for the
	// blocked ones (§8 extension).
	if s.DNSResolver != nil {
		zone := map[string]netip.Addr{}
		for domain, h := range s.Origins {
			zone[domain] = h.Addr
		}
		n.RegisterResolver(s.DNSResolver.ID, endpoint.NewResolver(zone))
	}
	return s
}

// buildCountries wires the four countries into the graph and returns the
// network with all devices attached.
func buildCountries(g *topology.Graph, s *Scenario, telia2, cogent2 *topology.Router) *simnet.Network {
	// The network must exist before devices attach; but routers/hosts can
	// be added to the graph afterwards only if simnet indexes them. Build
	// graph first, then network, then attach. To keep this simple we add
	// everything to the graph here and construct the network at the end.
	type attach struct {
		from, to string
		dev      *middlebox.Device
		country  string
		asn      uint32
	}
	var attaches []attach
	addDevice := func(from, to string, dev *middlebox.Device, country string, asn uint32) {
		attaches = append(attaches, attach{from, to, dev, country, asn})
	}

	// =================== Azerbaijan ===================
	asDelta := g.AddAS(29049, "Delta Telecom", "AZ")
	azBorder := g.AddRouter("az-border", asDelta)
	azCore := g.AddRouter("az-core", asDelta)
	g.Link("telia2", "az-border")
	g.Link("az-border", "az-core")
	azCliR := g.AddRouter("az-cli-r", asDelta)
	g.Link("az-cli-r", "az-core")
	s.InCountryClients["AZ"] = g.AddHost("az-client", asDelta, azCliR)

	azRules := []string{GlobalBlocked, AZBlocked}
	// Central Delta Telecom filter, as seen by remote measurements: drops
	// on the Telia → Delta link (§4.3, Figure 10). The Delta operator's
	// configuration triggers only on GET and POST — per-deployment config
	// differences like this are what let clustering separate deployments
	// of the same product (§7.4).
	azCentralRemote := middlebox.NewDevice("az-central-remote", middlebox.VendorCisco, azRules, azBorder.Addr)
	azCentralRemote.Quirks.HTTP.MethodAllowlist = []string{"GET", "POST"}
	addDevice("telia2", "az-border", azCentralRemote, "AZ", 29049)
	// The same system as seen from the in-country client (2 hops away).
	azCentralIn := middlebox.NewDevice("az-central-in", middlebox.VendorCisco, azRules, azCore.Addr)
	azCentralIn.Quirks.HTTP.MethodAllowlist = []string{"GET", "POST"}
	addDevice("az-cli-r", "az-core", azCentralIn, "AZ", 29049)

	for i := 0; i < azISPs; i++ {
		asn := uint32(57000 + i)
		as := g.AddAS(asn, fmt.Sprintf("AZ-ISP-%d", i+1), "AZ")
		rid := fmt.Sprintf("az-isp%dr", i)
		r := g.AddRouter(rid, as)
		switch i {
		case azFortinetIx:
			// Multihomed ISP with its own Fortinet filter on the direct
			// Telia uplink; this operator enabled strict delimiter checks.
			g.Link("telia2", rid)
			azFort := middlebox.NewDevice("az-fortinet", middlebox.VendorFortinet, azRules, r.Addr)
			azFort.Quirks.HTTP.RequireCanonicalDelimiters = true
			addDevice("telia2", rid, azFort, "AZ", asn)
		case azPaloAltoIx:
			// This operator's TLS inspection also covers TLS 1.0 hellos.
			g.Link("cogent2", rid)
			azPA := middlebox.NewDevice("az-paloalto", middlebox.VendorPaloAlto, azRules, r.Addr)
			azPA.Quirks.TLS.ParseVersionMin = 0
			addDevice("cogent2", rid, azPA, "AZ", asn)
		default:
			g.Link("az-core", rid)
		}
		for j := 0; j < perISPHosts; j++ {
			hid := fmt.Sprintf("az-ep-%d-%d", i, j)
			h := g.AddHost(hid, as, r)
			s.Endpoints = append(s.Endpoints, EndpointInfo{Host: h, Country: "AZ", ASN: asn})
		}
	}

	// =================== Belarus ===================
	asBeltelecom := g.AddAS(6697, "Beltelecom", "BY")
	g.AddRouter("by-bdr", asBeltelecom)
	g.AddRouter("by-core", asBeltelecom)
	g.Link("cogent2", "by-bdr")
	g.Link("by-bdr", "by-core")
	// Cogent drops the Tor bridges domain before traffic enters BY (§4.3).
	addDevice("cogent1", "cogent2",
		middlebox.NewDevice("cogent-tor-drop", middlebox.VendorUnknownDrop, []string{TorBridges}, netip.Addr{}), "US", 174)

	byRules := []string{GlobalBlocked, BYBlocked}
	for i := 0; i < byISPs; i++ {
		var as *topology.AS
		asn := uint32(25000 + i)
		if i == 0 {
			// The first "ISP" is Beltelecom itself: devices in AS6697.
			as = asBeltelecom
			asn = 6697
		} else {
			as = g.AddAS(asn, fmt.Sprintf("BY-ISP-%d", i+1), "BY")
		}
		rid := fmt.Sprintf("by-isp%dr", i)
		g.AddRouter(rid, as)
		g.Link("by-core", rid)
		if i != byISPs-1 {
			// On-path RST injector inside the endpoint AS; the last ISP is
			// unfiltered (§4.3: 91.80% of BY endpoints fail in the
			// endpoint AS).
			addDevice("by-core", rid,
				middlebox.NewDevice(fmt.Sprintf("by-rst-%d", i), middlebox.VendorUnknownRST, byRules, netip.Addr{}), "BY", asn)
		}
		for j := 0; j < perISPHosts; j++ {
			hid := fmt.Sprintf("by-ep-%d-%d", i, j)
			h := g.AddHost(hid, as, g.Router(rid))
			s.Endpoints = append(s.Endpoints, EndpointInfo{Host: h, Country: "BY", ASN: asn})
		}
	}

	// =================== Kazakhstan ===================
	asKT := g.AddAS(9198, "JSC-Kazakhtelecom", "KZ")
	g.AddRouter("kz-border", asKT)
	kzCore := g.AddRouter("kz-core", asKT)
	g.Link("telia2", "kz-border")
	g.Link("kz-border", "kz-core")

	asHosting := g.AddAS(203087, "KZ-Hosting", "KZ")
	kzCliR := g.AddRouter("kz-cli-r", asHosting)
	g.AddRouter("kz-agg", asHosting)
	g.Link("kz-cli-r", "kz-agg")
	g.Link("kz-agg", "kz-core")
	s.InCountryClients["KZ"] = g.AddHost("kz-client", asHosting, kzCliR)

	kzRules := []string{GlobalBlocked, KZPoker, KZDailymotion}
	// Kazakhtelecom's central filter: remote path (inside AS9198) and the
	// in-country path (3 hops from the AS203087 client), §4.3 / Figure 1.
	// This operator's configuration blocks every path, not only "/".
	kzCentralRemote := middlebox.NewDevice("kz-central-remote", middlebox.VendorCisco, kzRules, kzCore.Addr)
	kzCentralRemote.Quirks.PathSensitive = false
	addDevice("kz-border", "kz-core", kzCentralRemote, "KZ", 9198)
	kzCentralIn := middlebox.NewDevice("kz-central-in", middlebox.VendorCisco, kzRules, kzCore.Addr)
	kzCentralIn.Quirks.PathSensitive = false
	addDevice("kz-agg", "kz-core", kzCentralIn, "KZ", 9198)

	// ISPs behind Kazakhtelecom.
	for i := 0; i < kzCoreISPs; i++ {
		asn := uint32(48000 + i)
		as := g.AddAS(asn, fmt.Sprintf("KZ-ISP-%d", i+1), "KZ")
		rid := fmt.Sprintf("kz-isp%dr", i)
		g.AddRouter(rid, as)
		g.Link("kz-core", rid)
		for j := 0; j < perISPHosts; j++ {
			hid := fmt.Sprintf("kz-ep-%d-%d", i, j)
			h := g.AddHost(hid, as, g.Router(rid))
			s.Endpoints = append(s.Endpoints, EndpointInfo{Host: h, Country: "KZ", ASN: asn})
		}
	}

	// Russian transit into KZ: Megafon and Kvant-telekom carry a share of
	// KZ endpoints, and Russian devices there drop first (§4.3: "remote
	// censorship measurements to a certain country may be affected by
	// censorship policies in a different country").
	asMegafon := g.AddAS(31133, "PJSC Megafon", "RU")
	asKvant := g.AddAS(43727, "JSC Kvant-telekom", "RU")
	g.AddRouter("megafon1", asMegafon)
	mega2 := g.AddRouter("megafon2", asMegafon)
	g.AddRouter("kvant1", asKvant)
	kvant2 := g.AddRouter("kvant2", asKvant)
	g.Link("telia2", "megafon1")
	g.Link("megafon1", "megafon2")
	g.Link("cogent2", "kvant1")
	g.Link("kvant1", "kvant2")
	ruTransitRules := []string{GlobalBlocked, KZPoker, RUBlocked}
	addDevice("megafon1", "megafon2",
		middlebox.NewDevice("ru-megafon-drop", middlebox.VendorUnknownDrop, ruTransitRules, mega2.Addr), "RU", 31133)
	addDevice("kvant1", "kvant2",
		middlebox.NewDevice("ru-kvant-drop", middlebox.VendorUnknownDrop, ruTransitRules, kvant2.Addr), "RU", 43727)

	for i := 0; i < kzViaRussia; i++ {
		asn := uint32(48100 + i)
		as := g.AddAS(asn, fmt.Sprintf("KZ-RUISP-%d", i+1), "KZ")
		rid := fmt.Sprintf("kz-ruisp%dr", i)
		g.AddRouter(rid, as)
		if i%2 == 0 {
			g.Link("megafon2", rid)
		} else {
			g.Link("kvant2", rid)
		}
		for j := 0; j < perISPHosts; j++ {
			hid := fmt.Sprintf("kz-ruep-%d-%d", i, j)
			h := g.AddHost(hid, as, g.Router(rid))
			s.Endpoints = append(s.Endpoints, EndpointInfo{Host: h, Country: "KZ", ASN: asn, ViaRussia: true})
		}
	}

	// Multihomed KZ ISPs with their own commercial filters (§5.3: Kerio
	// Control ×2, Mikrotik, Fortinet in KZ).
	kzMulti := []struct {
		name   string
		vendor middlebox.Vendor
	}{
		{"kz-kerio-1", middlebox.VendorKerio},
		{"kz-kerio-2", middlebox.VendorKerio},
		{"kz-mikrotik", middlebox.VendorMikrotik},
		{"kz-fortinet", middlebox.VendorFortinet},
	}
	for i, m := range kzMulti {
		asn := uint32(48200 + i)
		as := g.AddAS(asn, fmt.Sprintf("KZ-MH-%d", i+1), "KZ")
		rid := fmt.Sprintf("kz-mh%dr", i)
		r := g.AddRouter(rid, as)
		g.Link("telia2", rid)
		dev := middlebox.NewDevice(m.name, m.vendor, kzRules, r.Addr)
		if m.vendor == middlebox.VendorFortinet {
			// The KZ Fortinet operator additionally blocks PUT requests.
			dev.Quirks.HTTP.MethodAllowlist = []string{"GET", "POST", "PUT"}
		}
		addDevice("telia2", rid, dev, "KZ", asn)
		for j := 0; j < perISPHosts; j++ {
			hid := fmt.Sprintf("kz-mhep-%d-%d", i, j)
			h := g.AddHost(hid, as, r)
			s.Endpoints = append(s.Endpoints, EndpointInfo{Host: h, Country: "KZ", ASN: asn})
		}
	}

	// =================== Russia ===================
	asRostelecom := g.AddAS(12389, "Rostelecom", "RU")
	g.AddRouter("ru-bdr", asRostelecom)
	g.AddRouter("ru-core", asRostelecom)
	g.Link("telia2", "ru-bdr")
	g.Link("cogent2", "ru-bdr")
	g.Link("ru-bdr", "ru-core")

	ruCliR := g.AddRouter("ru-cli-r", asRostelecom)
	g.Link("ru-cli-r", "ru-core")
	s.InCountryClients["RU"] = g.AddHost("ru-client", asRostelecom, ruCliR)

	// Vendor mix for the filtered regions (§5.3's RU labels plus the
	// unlabeled TTL-copying class of §4.3).
	ruVendors := []middlebox.Vendor{
		middlebox.VendorCisco, middlebox.VendorCisco, middlebox.VendorCisco,
		middlebox.VendorFortinet, middlebox.VendorFortinet, middlebox.VendorFortinet,
		middlebox.VendorPaloAlto, middlebox.VendorDDoSGuard, middlebox.VendorKaspersky,
		middlebox.VendorUnknownCopyTTL, middlebox.VendorUnknownCopyTTL,
		middlebox.VendorUnknownDrop,
		// Region 12's routers stay silent, producing the paper's single
		// "No ICMP" ambiguity (§4.3 found exactly one such traceroute).
		middlebox.VendorUnknownRST,
		// Sandvine PacketLogic (the paper's [1]: "Sandvine fosters Russian
		// censorship infrastructure") stays unlabeled in banner scans;
		// Netsweeper is identifiable from its deny page alone.
		middlebox.VendorSandvine,
		middlebox.VendorNetsweeper,
	}
	ruRules := []string{RUBlocked}
	const (
		ruSilentRegion = 12
		ruDNSRegion    = 20 // unfiltered for TCP; hosts the DNS injector + resolver
	)
	for i := 0; i < ruRegions; i++ {
		asn := uint32(42000 + i)
		as := g.AddAS(asn, fmt.Sprintf("RU-REG-%d", i+1), "RU")
		entry := fmt.Sprintf("ru-entry%dr", i)
		reg := fmt.Sprintf("ru-reg%dr", i)
		g.AddRouter(entry, as)
		regR := g.AddRouter(reg, as)
		g.Link("ru-bdr", entry)
		g.Link(entry, reg)
		// Domestic mesh: regions reachable from the in-country client via
		// ru-core without crossing the entry links. The extra ru-dom hop
		// keeps the domestic path longer than the entry path, so remote
		// traffic never ECMPs around the border devices.
		dom := fmt.Sprintf("ru-dom%dr", i)
		g.AddRouter(dom, as)
		g.Link("ru-core", dom)
		g.Link(dom, reg)
		if i < ruFiltered {
			vendor := ruVendors[i]
			dev := middlebox.NewDevice(fmt.Sprintf("ru-dev-%d", i), vendor, ruRules, regR.Addr)
			if vendor == middlebox.VendorUnknownCopyTTL || vendor == middlebox.VendorUnknownRST {
				dev.Addr = netip.Addr{} // injectors without probeable addresses
			}
			addDevice(entry, reg, dev, "RU", asn)
		}
		if i == ruSilentRegion {
			g.Router(entry).SendsICMP = false
			g.Router(reg).SendsICMP = false
		}
		if i == ruDNSRegion {
			// The §8 DNS extension deployment: an on-path injector in
			// front of a public resolver, forging answers for the RU
			// blocklist.
			inj := middlebox.NewDevice("ru-dns-injector", middlebox.VendorDNSInjector,
				[]string{RUBlocked, GlobalBlocked}, netip.Addr{})
			addDevice(entry, reg, inj, "RU", asn)
			s.DNSResolver = g.AddHost("ru-resolver", as, regR)
		}
		for j := 0; j < perISPHosts; j++ {
			hid := fmt.Sprintf("ru-ep-%d-%d", i, j)
			h := g.AddHost(hid, as, regR)
			s.Endpoints = append(s.Endpoints, EndpointInfo{Host: h, Country: "RU", ASN: asn})
		}
	}

	// =================== Router quirks ===================
	// A share of border routers rewrite the IP TOS byte of forwarded
	// packets, and one sets IP flags — visible in downstream ICMP quotes
	// (§4.3: 32.06% of quoted packets differed in TOS; one in IP flags).
	tosRU := uint8(0x28)
	g.Router("ru-bdr").RewriteTOS = &tosRU
	tosKZ := uint8(0x48)
	g.Router("kz-border").RewriteTOS = &tosKZ
	dfFlag := uint8(netem.IPFlagDF)
	g.Router("by-bdr").SetIPFlags = &dfFlag
	// Core and border routers quote generously (RFC 1812); access routers
	// keep the RFC 792 minimum.
	for _, id := range []string{"ru-bdr", "ru-core", "kz-border", "kz-core", "by-bdr", "by-core", "az-border", "az-core", "megafon1", "kvant1"} {
		g.Router(id).QuoteLen = 128
	}

	// =================== Wire it up ===================
	n := simnet.New(g)
	s.Net = n
	for _, a := range attaches {
		n.AttachDevice(a.from, a.to, a.dev)
		s.Devices = append(s.Devices, DeviceDeployment{Device: a.dev, Country: a.country, ASN: a.asn})
	}
	// Every endpoint serves the control domain (infrastructural servers).
	for _, e := range s.Endpoints {
		n.RegisterServer(e.Host.ID, endpoint.NewServer(ControlDomain))
	}
	// A handful of endpoint-side guards produce the "At E" class (§4.3:
	// 16.19% of traceroutes terminate at the endpoint IP itself).
	guardEvery := 7
	s.Guarded = map[string]bool{}
	for i, e := range s.Endpoints {
		if i%guardEvery == 3 {
			var guardRules []string
			for _, d := range TestDomainsFor(e.Country) {
				if d != OpenNews {
					guardRules = append(guardRules, d)
				}
			}
			guard := middlebox.NewDevice("guard-"+e.Host.ID, middlebox.VendorUnknownDrop,
				guardRules, netip.Addr{})
			n.AttachGuard(e.Host.ID, guard)
			s.Devices = append(s.Devices, DeviceDeployment{Device: guard, Country: e.Country, ASN: e.ASN})
			s.Guarded[e.Host.ID] = true
		}
	}
	return n
}
