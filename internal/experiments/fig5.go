package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Fig5Row is one strategy's evasion success rate in one country — the bars
// of Figure 5.
type Fig5Row struct {
	Strategy string
	Country  string
	// Valid and Evaded count valid permutations and evasions across the
	// country's fuzzed endpoints.
	Valid  int
	Evaded int
}

// Rate is the percentage of valid permutations that evaded.
func (r Fig5Row) Rate() float64 {
	if r.Valid == 0 {
		return 0
	}
	return 100 * float64(r.Evaded) / float64(r.Valid)
}

// Fig5 aggregates CenFuzz results per (strategy, country).
func Fig5(c *Corpus) []Fig5Row {
	countryOf := map[string]string{}
	for _, tr := range c.Traces {
		countryOf[tr.Endpoint.Host.ID] = tr.Country
	}
	acc := map[[2]string]*Fig5Row{}
	for epID, res := range c.Fuzz {
		country := countryOf[epID]
		for i := range res.Strategies {
			sr := &res.Strategies[i]
			key := [2]string{sr.Name, country}
			row, ok := acc[key]
			if !ok {
				row = &Fig5Row{Strategy: sr.Name, Country: country}
				acc[key] = row
			}
			for _, p := range sr.Perms {
				if p.Valid {
					row.Valid++
					if p.Evaded {
						row.Evaded++
					}
				}
			}
		}
	}
	var out []Fig5Row
	for _, r := range acc {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strategy != out[j].Strategy {
			return out[i].Strategy < out[j].Strategy
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// Fig5StrategyTotals aggregates across countries (for §6.3 headline rates).
func Fig5StrategyTotals(rows []Fig5Row) map[string]Fig5Row {
	out := map[string]Fig5Row{}
	for _, r := range rows {
		t := out[r.Strategy]
		t.Strategy = r.Strategy
		t.Valid += r.Valid
		t.Evaded += r.Evaded
		out[r.Strategy] = t
	}
	return out
}

// RenderFig5 formats the Figure 5 matrix (strategies × countries).
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: success rates of CenFuzz strategies (% of valid permutations that evade)\n")
	fmt.Fprintf(&b, "%-24s", "Strategy")
	for _, c := range Countries {
		fmt.Fprintf(&b, " | %6s", c)
	}
	b.WriteString("\n")
	byStrategy := map[string]map[string]Fig5Row{}
	var names []string
	for _, r := range rows {
		if byStrategy[r.Strategy] == nil {
			byStrategy[r.Strategy] = map[string]Fig5Row{}
			names = append(names, r.Strategy)
		}
		byStrategy[r.Strategy][r.Country] = r
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-24s", name)
		for _, c := range Countries {
			if r, ok := byStrategy[name][c]; ok && r.Valid > 0 {
				fmt.Fprintf(&b, " | %5.1f%%", r.Rate())
			} else {
				fmt.Fprintf(&b, " | %6s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CircumventionReport summarizes the in-country circumvention findings
// (§6.3: padded pokerstars fetched content; subdomain dailymotion worked).
type CircumventionReport struct {
	Country  string
	Domain   string
	Strategy string
	// Circumvented counts permutations that evaded and fetched the real
	// content from the origin server.
	Circumvented int
	Evaded       int
}

// Circumvention extracts the in-country circumvention outcomes.
func Circumvention(c *Corpus) []CircumventionReport {
	var out []CircumventionReport
	var countries []string
	for country := range c.InCountryFuzz {
		countries = append(countries, country)
	}
	sort.Strings(countries)
	for _, country := range countries {
		res := c.InCountryFuzz[country]
		for i := range res.Strategies {
			sr := &res.Strategies[i]
			rep := CircumventionReport{Country: country, Domain: res.TestDomain, Strategy: sr.Name}
			for _, p := range sr.Perms {
				if p.Evaded {
					rep.Evaded++
				}
				if p.Circumvented {
					rep.Circumvented++
				}
			}
			if rep.Evaded > 0 {
				out = append(out, rep)
			}
		}
	}
	return out
}
