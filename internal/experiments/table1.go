package experiments

import (
	"fmt"
	"strings"
)

// Table1Row is one country's measurement-collection summary (Table 1).
type Table1Row struct {
	Country          string
	InCountryClients int
	InCountryCTs     int
	InCountryBlocked int
	Endpoints        int
	EndpointASNs     int
	RemoteCTs        int
	RemoteBlocked    int
}

// Table1 reproduces Table 1: CenTrace measurements collected per country,
// split into in-country and remote, with endpoint and ASN counts.
func Table1(c *Corpus) []Table1Row {
	var rows []Table1Row
	for _, country := range Countries {
		row := Table1Row{Country: country}
		if c.Scenario.InCountryClients[country] != nil {
			row.InCountryClients = 1
		}
		asns := map[uint32]bool{}
		eps := map[string]bool{}
		for _, tr := range c.Traces {
			if tr.Country != country {
				continue
			}
			if tr.InCountry {
				row.InCountryCTs++
				if tr.Result.Blocked {
					row.InCountryBlocked++
				}
				continue
			}
			row.RemoteCTs++
			if tr.Result.Blocked {
				row.RemoteBlocked++
			}
			eps[tr.Endpoint.Host.ID] = true
			asns[tr.Endpoint.ASN] = true
		}
		row.Endpoints = len(eps)
		row.EndpointASNs = len(asns)
		rows = append(rows, row)
	}
	return rows
}

// RenderTable1 formats Table 1 rows like the paper's table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: CenTrace (CT) measurements collected\n")
	b.WriteString("Co. | Clients | In-CTs | In-Blocked | Endpoints | Endpoint ASNs | Remote CTs | Remote Blocked\n")
	for _, r := range rows {
		clients := "-"
		if r.InCountryClients > 0 {
			clients = fmt.Sprintf("%d", r.InCountryClients)
		}
		inCTs, inBlocked := "-", "-"
		if r.InCountryClients > 0 {
			inCTs = fmt.Sprintf("%d", r.InCountryCTs)
			inBlocked = fmt.Sprintf("%d", r.InCountryBlocked)
		}
		fmt.Fprintf(&b, "%-3s | %7s | %6s | %10s | %9d | %13d | %10d | %d\n",
			r.Country, clients, inCTs, inBlocked,
			r.Endpoints, r.EndpointASNs, r.RemoteCTs, r.RemoteBlocked)
	}
	return b.String()
}
