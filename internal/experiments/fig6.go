package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cendev/internal/features"
	"cendev/internal/ml"
)

// Fig6Result is the clustering outcome of §7.3 / Figure 6.
type Fig6Result struct {
	// Epsilon is the k-distance-estimated DBSCAN ε.
	Epsilon float64
	// TopFeatures are the names of the selected top-importance features.
	TopFeatures []string
	// Clusters maps cluster id → per-country endpoint counts.
	Clusters map[int]map[string]int
	// Noise is the number of unclustered endpoints.
	Noise int
	// SameCountryShare is the fraction of clustered endpoints whose
	// cluster is single-country (§7.4: "69% of endpoints form tight
	// clusters with other endpoints in the same country").
	SameCountryShare float64
	// Labels and the observations, for downstream analysis.
	Assignment   ml.DBSCANResult
	Observations []*features.Observation
}

// Fig6Config bounds the clustering pipeline.
type Fig6Config struct {
	TopK   int // top-importance features used (default 10, §7.3)
	MinPts int // DBSCAN minimum cluster size (default 2)
	// EpsilonOverride skips k-distance estimation when > 0.
	EpsilonOverride float64
	// Workers is the parallel worker count for feature extraction. Row
	// extraction is a pure per-observation function, so the matrix is
	// identical at every worker count. Values below 1 mean one worker.
	Workers int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.TopK == 0 {
		c.TopK = 10
	}
	if c.MinPts == 0 {
		c.MinPts = 2
	}
	return c
}

// Fig6 runs the full clustering pipeline: feature extraction (§7.1),
// RF-based feature selection (§7.2), and DBSCAN with k-distance ε (§7.3).
func Fig6(c *Corpus, cfg Fig6Config) *Fig6Result {
	cfg = cfg.withDefaults()
	obs := c.Observations()
	m := features.ExtractParallel(obs, cfg.Workers, c.Config.Obs)

	// Feature importance from the labeled subset picks the top-K columns.
	_, importance := Fig9(c)
	top := ml.TopKIndices(importance, cfg.TopK)
	sub := m.SelectColumns(top).Imputed()
	ml.Standardize(sub.X)

	eps := cfg.EpsilonOverride
	if eps == 0 {
		eps = ml.KDistanceEpsilon(sub.X, cfg.MinPts)
	}
	res := ml.DBSCAN(sub.X, eps, cfg.MinPts)

	out := &Fig6Result{
		Epsilon:      eps,
		Clusters:     map[int]map[string]int{},
		Assignment:   res,
		Observations: obs,
	}
	for _, i := range top {
		out.TopFeatures = append(out.TopFeatures, m.Names[i])
	}
	clustered, sameCountry := 0, 0
	for i, label := range res.Labels {
		if label == ml.Noise {
			out.Noise++
			continue
		}
		if out.Clusters[label] == nil {
			out.Clusters[label] = map[string]int{}
		}
		out.Clusters[label][obs[i].Country]++
	}
	for _, countries := range out.Clusters {
		total := 0
		for _, n := range countries {
			total += n
		}
		clustered += total
		if len(countries) == 1 {
			sameCountry += total
		}
	}
	if clustered > 0 {
		out.SameCountryShare = float64(sameCountry) / float64(clustered)
	}
	return out
}

// RenderFig6 formats the cluster composition like Figure 6.
func RenderFig6(r *Fig6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: DBSCAN clusters (eps=%.2f from k-distance, top features: %s)\n",
		r.Epsilon, strings.Join(r.TopFeatures, ", "))
	var ids []int
	for id := range r.Clusters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		var parts []string
		for _, country := range Countries {
			if n := r.Clusters[id][country]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s×%d", country, n))
			}
		}
		fmt.Fprintf(&b, "cluster %2d: %s\n", id, strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "noise: %d\nsame-country share: %.0f%% (§7.4: 69%%)\n", r.Noise, 100*r.SameCountryShare)
	return b.String()
}
