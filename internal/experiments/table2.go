package experiments

import (
	"fmt"
	"strings"

	"cendev/internal/cenfuzz"
	"cendev/internal/features"
)

// Table2Row is one strategy of Table 2 with its permutation count.
type Table2Row struct {
	Category string
	Protocol string
	Strategy string
	NP       int
	Example  string
}

// Table2 enumerates the CenFuzz strategy catalog with permutation counts.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, st := range cenfuzz.Strategies() {
		if st.Category == "Normal" {
			continue
		}
		perms := st.Perms()
		example := ""
		if len(perms) > 0 {
			example = perms[0].Desc
		}
		rows = append(rows, Table2Row{
			Category: st.Category,
			Protocol: st.Proto.String(),
			Strategy: st.Name,
			NP:       len(perms),
			Example:  example,
		})
	}
	return rows
}

// RenderTable2 formats the strategy catalog like Table 2.
func RenderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: CenFuzz HTTP request and TLS client hello fuzzing strategies\n")
	b.WriteString("Proto | Category   | Strategy                | NP  | Example\n")
	for _, r := range Table2() {
		fmt.Fprintf(&b, "%-5s | %-10s | %-23s | %3d | %s\n",
			r.Protocol, r.Category, r.Strategy, r.NP, r.Example)
	}
	return b.String()
}

// RenderTable3 lists the clustering feature inventory (Table 3).
func RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: features collected for clustering\n")
	for _, name := range features.FeatureNames() {
		origin := "CenTrace"
		switch {
		case strings.HasPrefix(name, "Fuzz:"):
			origin = "CenFuzz"
		case strings.HasPrefix(name, "PortOpen:"), name == "NumOpenPorts":
			origin = "Banners"
		}
		fmt.Fprintf(&b, "%-10s %s\n", origin, name)
	}
	return b.String()
}
