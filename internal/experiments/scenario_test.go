package experiments

import (
	"testing"

	"cendev/internal/centrace"
)

// traceTo runs one CenTrace in the world.
func traceTo(s *Scenario, clientID string, ep EndpointInfo, domain string, proto centrace.Protocol) *centrace.Result {
	client := s.USClient
	if clientID != "" {
		client = s.InCountryClients[clientID]
	}
	p := centrace.New(s.Net, client, ep.Host, centrace.Config{
		ControlDomain: ControlDomain,
		TestDomain:    domain,
		Protocol:      proto,
		Repetitions:   3,
	})
	return p.Run()
}

func TestWorldBuilds(t *testing.T) {
	s := BuildWorld()
	if len(s.Endpoints) < 100 {
		t.Errorf("endpoints = %d, want 100+", len(s.Endpoints))
	}
	for _, c := range []string{"AZ", "KZ", "RU"} {
		if s.InCountryClients[c] == nil {
			t.Errorf("missing in-country client for %s", c)
		}
	}
	if s.InCountryClients["BY"] != nil {
		t.Error("BY should have no vantage point (as in the paper)")
	}
	if len(s.Devices) < 20 {
		t.Errorf("devices = %d, want 20+", len(s.Devices))
	}
	if s.Origins[KZPoker] == nil || s.Origins[GlobalBlocked] == nil {
		t.Error("origin servers missing")
	}
}

func TestAZBlockedAtDeltaBorder(t *testing.T) {
	s := BuildWorld()
	ep := s.EndpointsIn("AZ")[0]
	res := traceTo(s, "", ep, GlobalBlocked, centrace.HTTP)
	if !res.Blocked {
		t.Fatal("AZ endpoint should be blocked for the global domain")
	}
	if res.TermKind != centrace.KindTimeout {
		t.Errorf("TermKind = %s, want TIMEOUT (drops)", res.TermKind)
	}
	if res.BlockingHop.ASN != 29049 || res.BlockingHop.Country != "AZ" {
		t.Errorf("blocking hop = %s, want Delta Telecom AS29049", res.BlockingHop)
	}
	if res.Placement != centrace.PlacementInPath {
		t.Errorf("placement = %s", res.Placement)
	}
	// Control measurement to the same endpoint is unblocked.
	if !res.Valid {
		t.Error("control should reach the endpoint")
	}
}

func TestAZInCountryTwoHops(t *testing.T) {
	s := BuildWorld()
	ep := s.EndpointsIn("AZ")[0]
	res := traceTo(s, "AZ", ep, AZBlocked, centrace.HTTPS)
	if !res.Blocked {
		t.Fatal("in-country AZ measurement should be blocked")
	}
	if res.DeviceTTL != 2 {
		t.Errorf("device at %d hops from the AZ client, want 2 (§4.3)", res.DeviceTTL)
	}
	if res.BlockingHop.ASN != 29049 {
		t.Errorf("blocking hop = %s, want AS29049", res.BlockingHop)
	}
}

func TestBYOnPathInEndpointAS(t *testing.T) {
	s := BuildWorld()
	eps := s.EndpointsIn("BY")
	res := traceTo(s, "", eps[0], BYBlocked, centrace.HTTP)
	if !res.Blocked || res.TermKind != centrace.KindRST {
		t.Fatalf("BY: blocked=%v term=%s, want RST injection", res.Blocked, res.TermKind)
	}
	if res.Placement != centrace.PlacementOnPath {
		t.Errorf("BY placement = %s, want on-path", res.Placement)
	}
	if res.BlockingHop.ASN != eps[0].ASN {
		t.Errorf("blocking hop ASN = %d, want endpoint AS %d", res.BlockingHop.ASN, eps[0].ASN)
	}
}

func TestBYTorDroppedAtCogent(t *testing.T) {
	s := BuildWorld()
	ep := s.EndpointsIn("BY")[0]
	res := traceTo(s, "", ep, TorBridges, centrace.HTTP)
	if !res.Blocked || res.TermKind != centrace.KindTimeout {
		t.Fatalf("tor: blocked=%v term=%s, want drop", res.Blocked, res.TermKind)
	}
	if res.BlockingHop.ASN != 174 {
		t.Errorf("tor blocking hop = %s, want COGENT AS174 (before entering BY)", res.BlockingHop)
	}
	if res.BlockingHop.Country == "BY" {
		t.Error("tor blocking should occur outside BY")
	}
}

func TestKZViaRussiaBlockedUpstream(t *testing.T) {
	s := BuildWorld()
	var viaRU, direct *EndpointInfo
	for i := range s.Endpoints {
		e := &s.Endpoints[i]
		if e.Country != "KZ" {
			continue
		}
		if e.ViaRussia && viaRU == nil {
			viaRU = e
		}
		if !e.ViaRussia && direct == nil {
			direct = e
		}
	}
	res := traceTo(s, "", *viaRU, KZPoker, centrace.HTTP)
	if !res.Blocked {
		t.Fatal("via-Russia KZ endpoint should be blocked for pokerstars")
	}
	if res.BlockingHop.Country != "RU" {
		t.Errorf("blocking hop = %s, want Russian transit (extraterritorial, §4.3)", res.BlockingHop)
	}
	if res.BlockingHop.ASN != 31133 && res.BlockingHop.ASN != 43727 {
		t.Errorf("blocking ASN = %d, want Megafon/Kvant", res.BlockingHop.ASN)
	}
	res2 := traceTo(s, "", *direct, KZPoker, centrace.HTTP)
	if !res2.Blocked || res2.BlockingHop.ASN != 9198 {
		t.Errorf("direct KZ endpoint: blocked=%v hop=%s, want JSC-Kazakhtelecom", res2.Blocked, res2.BlockingHop)
	}
}

func TestKZInCountryThreeHops(t *testing.T) {
	s := BuildWorld()
	var direct EndpointInfo
	for _, e := range s.EndpointsIn("KZ") {
		if !e.ViaRussia {
			direct = e
			break
		}
	}
	res := traceTo(s, "KZ", direct, KZPoker, centrace.HTTP)
	if !res.Blocked {
		t.Fatal("in-country KZ should be blocked")
	}
	if res.DeviceTTL != 3 {
		t.Errorf("device at %d hops from the KZ client, want 3 (§4.3)", res.DeviceTTL)
	}
	if res.BlockingHop.ASN != 9198 {
		t.Errorf("blocking hop = %s, want AS9198 (upstream of client AS203087)", res.BlockingHop)
	}
}

func TestRUInCountryUnblocked(t *testing.T) {
	s := BuildWorld()
	var eps []EndpointInfo
	for _, e := range s.EndpointsIn("RU") {
		if !s.Guarded[e.Host.ID] {
			eps = append(eps, e)
		}
	}
	blockedCount := 0
	for _, ep := range eps[:3] {
		for _, domain := range TestDomainsFor("RU") {
			res := traceTo(s, "RU", ep, domain, centrace.HTTP)
			if res.Blocked {
				blockedCount++
			}
		}
	}
	if blockedCount != 0 {
		t.Errorf("RU in-country blocked CTs = %d, want 0 (§4.3)", blockedCount)
	}
}

func TestRUPastEFromCopyTTLDevice(t *testing.T) {
	s := BuildWorld()
	// Regions 9 and 10 run the TTL-copying injectors.
	var ep EndpointInfo
	for _, e := range s.EndpointsIn("RU") {
		if e.ASN == 42009 {
			ep = e
			break
		}
	}
	res := traceTo(s, "", ep, RUBlocked, centrace.HTTP)
	if !res.Blocked || res.TermKind != centrace.KindRST {
		t.Fatalf("copyttl region: blocked=%v term=%s", res.Blocked, res.TermKind)
	}
	if res.Location != centrace.LocPastE {
		t.Errorf("location = %s, want Past E (§4.3)", res.Location)
	}
	if !res.TTLCopyCorrected {
		t.Error("TTL-copy correction should apply")
	}
	if res.BlockingHop.ASN != 42009 {
		t.Errorf("corrected blocking hop = %s, want the region AS", res.BlockingHop)
	}
}

func TestRUUnfilteredRegionUnblocked(t *testing.T) {
	s := BuildWorld()
	var ep EndpointInfo
	for _, e := range s.EndpointsIn("RU") {
		if e.ASN == 42020 { // beyond ruFiltered
			ep = e
			break
		}
	}
	res := traceTo(s, "", ep, RUBlocked, centrace.HTTP)
	if res.Blocked {
		t.Errorf("unfiltered RU region blocked: hop=%s", res.BlockingHop)
	}
}

func TestGuardedEndpointsAtE(t *testing.T) {
	s := BuildWorld()
	// Endpoint index 3 is guarded (guardEvery=7, offset 3).
	ep := s.Endpoints[3]
	res := traceTo(s, "", ep, TestDomainsFor(ep.Country)[0], centrace.HTTP)
	if !res.Blocked {
		t.Skipf("endpoint %s not blocked (may be upstream-blocked first)", ep.Host.ID)
	}
	// Either the guard (At E) or an upstream device terminates; if the
	// terminating TTL equals the endpoint distance it must classify At E.
	if res.TermTTL == res.EndpointTTL && res.Location != centrace.LocAtE {
		t.Errorf("location = %s, want At E", res.Location)
	}
}

func TestFortinetBlockpageInAZ(t *testing.T) {
	s := BuildWorld()
	var ep EndpointInfo
	for _, e := range s.EndpointsIn("AZ") {
		if e.ASN == uint32(57000+azFortinetIx) {
			ep = e
			break
		}
	}
	res := traceTo(s, "", ep, AZBlocked, centrace.HTTP)
	if !res.Blocked {
		t.Fatal("Fortinet ISP endpoint should be blocked")
	}
	if res.TermKind != centrace.KindData || res.BlockpageVendor != "Fortinet" {
		t.Errorf("term=%s vendor=%q, want injected Fortinet blockpage", res.TermKind, res.BlockpageVendor)
	}
}

// TestWorldInvariants pins structural properties of the built world.
func TestWorldInvariants(t *testing.T) {
	s := BuildWorld()
	// Endpoint addresses are unique and inside their AS prefixes.
	seen := map[string]bool{}
	for _, e := range s.Endpoints {
		a := e.Host.Addr.String()
		if seen[a] {
			t.Fatalf("duplicate endpoint address %s", a)
		}
		seen[a] = true
		info, ok := s.Net.Geo.Lookup(e.Host.Addr)
		if !ok || info.ASN != e.ASN {
			t.Errorf("endpoint %s: geo ASN %d, scenario ASN %d", e.Host.ID, info.ASN, e.ASN)
		}
		if info.Country != e.Country && !e.ViaRussia {
			t.Errorf("endpoint %s: geo country %q, scenario %q", e.Host.ID, info.Country, e.Country)
		}
	}
	// Every endpoint is reachable from the US client with the control
	// domain (unless guarded, which only affects test domains).
	for _, e := range s.Endpoints[:10] {
		res := traceTo(s, "", e, ControlDomain, centrace.HTTP)
		if !res.Valid {
			t.Errorf("endpoint %s unreachable for the control domain", e.Host.ID)
		}
	}
	// Vendor inventory matches §5.3's product set.
	vendors := map[string]int{}
	for _, d := range s.Devices {
		vendors[string(d.Device.Vendor)]++
	}
	for _, want := range []string{"Fortinet", "Cisco", "Kerio Control", "Palo Alto",
		"DDoSGuard", "Mikrotik", "Kaspersky", "Sandvine", "Netsweeper", "dns-injector"} {
		if vendors[want] == 0 {
			t.Errorf("vendor %s missing from the world", want)
		}
	}
}
