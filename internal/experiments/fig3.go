package experiments

import (
	"fmt"
	"strings"

	"cendev/internal/centrace"
)

// Fig3Cell counts blocked traceroutes for one (country, response kind,
// location) combination — the bars of Figure 3.
type Fig3Cell struct {
	Country  string
	Kind     centrace.ResponseKind
	Location centrace.LocationClass
	Count    int
}

// Fig3 reproduces Figure 3: the distribution of blocking type (RST /
// TIMEOUT / FIN / HTTP) and blocking location (Path(C->E) / At E / No ICMP
// / Past E) per country, over blocked remote measurements.
func Fig3(c *Corpus) []Fig3Cell {
	counts := map[[3]int]int{}
	countryIdx := map[string]int{}
	for i, co := range Countries {
		countryIdx[co] = i
	}
	for _, tr := range c.BlockedTraces("") {
		key := [3]int{countryIdx[tr.Country], int(tr.Result.TermKind), int(tr.Result.Location)}
		counts[key]++
	}
	var out []Fig3Cell
	kinds := []centrace.ResponseKind{centrace.KindRST, centrace.KindTimeout, centrace.KindFIN, centrace.KindData}
	locs := []centrace.LocationClass{centrace.LocPath, centrace.LocAtE, centrace.LocNoICMP, centrace.LocPastE}
	for ci, country := range Countries {
		for _, k := range kinds {
			for _, l := range locs {
				if n := counts[[3]int{ci, int(k), int(l)}]; n > 0 {
					out = append(out, Fig3Cell{Country: country, Kind: k, Location: l, Count: n})
				}
			}
		}
	}
	return out
}

// Fig3Stats summarizes the headline numbers §4.3 derives from Figure 3.
type Fig3Stats struct {
	TotalBlocked     int
	DropOrRST        int // packet drops + reset injections
	PathCE           int
	AtE              int
	PastE            int
	NoICMP           int
	DropOrRSTPercent float64
	PathCEPercent    float64
	AtEPercent       float64
}

// Fig3Summary computes the §4.3 aggregates.
func Fig3Summary(cells []Fig3Cell) Fig3Stats {
	var s Fig3Stats
	for _, c := range cells {
		s.TotalBlocked += c.Count
		if c.Kind == centrace.KindRST || c.Kind == centrace.KindTimeout {
			s.DropOrRST += c.Count
		}
		switch c.Location {
		case centrace.LocPath:
			s.PathCE += c.Count
		case centrace.LocAtE:
			s.AtE += c.Count
		case centrace.LocPastE:
			s.PastE += c.Count
		case centrace.LocNoICMP:
			s.NoICMP += c.Count
		}
	}
	if s.TotalBlocked > 0 {
		s.DropOrRSTPercent = 100 * float64(s.DropOrRST) / float64(s.TotalBlocked)
		s.PathCEPercent = 100 * float64(s.PathCE) / float64(s.TotalBlocked)
		s.AtEPercent = 100 * float64(s.AtE) / float64(s.TotalBlocked)
	}
	return s
}

// RenderFig3 formats the Figure 3 distribution.
func RenderFig3(cells []Fig3Cell) string {
	var b strings.Builder
	b.WriteString("Figure 3: blocking type and location per country\n")
	b.WriteString("Co. | Type    | Location   | CenTraces\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-3s | %-7s | %-10s | %d\n", c.Country, c.Kind, c.Location, c.Count)
	}
	s := Fig3Summary(cells)
	fmt.Fprintf(&b, "\nSummary (§4.3): %d blocked; drops+resets %.2f%%; Path(C->E) %.2f%%; At E %.2f%%; Past E %d; No ICMP %d\n",
		s.TotalBlocked, s.DropOrRSTPercent, s.PathCEPercent, s.AtEPercent, s.PastE, s.NoICMP)
	return b.String()
}
