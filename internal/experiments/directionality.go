package experiments

import (
	"fmt"
	"net/netip"

	"cendev/internal/centrace"
	"cendev/internal/endpoint"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Directionality models the §4.2 caveat: "our remote measurements assume
// that most censorship devices consider traffic in both directions ...
// however, this may not always be the case (e.g. [79]). We account for
// this partially using in-country measurements." A device that inspects
// only traffic leaving the country is invisible to remote probing but
// caught by the in-country vantage point.
type Directionality struct {
	// RemoteBlocked is the remote measurement's verdict for an endpoint
	// behind the outbound-only filter.
	RemoteBlocked bool
	// InCountryBlocked is the in-country measurement's verdict for an
	// origin server outside the country, crossing the same filter.
	InCountryBlocked bool
	InCountryHop     centrace.HopInfo
}

// DirectionalityDemo builds a minimal country with an outbound-only filter
// and runs both measurement directions.
func DirectionalityDemo() Directionality {
	const blocked = "www.blocked.example"
	g := topology.NewGraph()
	asUS := g.AddAS(1, "MeasurementNet", "US")
	asX := g.AddAS(2, "CountryNet", "XX")
	asC := g.AddAS(3, "ContentNet", "US")
	usR := g.AddRouter("us-r", asUS)
	border := g.AddRouter("x-border", asX)
	core := g.AddRouter("x-core", asX)
	contentR := g.AddRouter("content-r", asC)
	g.Link("us-r", "x-border")
	g.Link("x-border", "x-core")
	g.Link("us-r", "content-r")
	_ = border

	remote := g.AddHost("remote-client", asUS, usR)
	inCountry := g.AddHost("x-client", asX, core)
	insideEp := g.AddHost("x-endpoint", asX, core)
	origin := g.AddHost("origin", asC, contentR)

	n := simnet.New(g)
	n.RegisterServer("x-endpoint", endpoint.NewServer(ControlDomain))
	n.RegisterServer("origin", endpoint.NewServer(blocked, ControlDomain))

	// The filter inspects only the outbound direction: core → border.
	dev := middlebox.NewDevice("outbound-filter", middlebox.VendorUnknownDrop,
		[]string{blocked}, netip.Addr{})
	n.AttachDevice("x-core", "x-border", dev)

	res := Directionality{}
	remoteRes := centrace.New(n, remote, insideEp, centrace.Config{
		ControlDomain: ControlDomain, TestDomain: blocked, Repetitions: 3,
	}).Run()
	res.RemoteBlocked = remoteRes.Blocked

	inRes := centrace.New(n, inCountry, origin, centrace.Config{
		ControlDomain: ControlDomain, TestDomain: blocked, Repetitions: 3,
	}).Run()
	res.InCountryBlocked = inRes.Blocked
	res.InCountryHop = inRes.BlockingHop
	return res
}

// RenderDirectionality formats the demonstration.
func RenderDirectionality(d Directionality) string {
	return fmt.Sprintf(
		"§4.2 directionality: outbound-only filter\n"+
			"  remote measurement (into the country):   blocked=%v (filter invisible)\n"+
			"  in-country measurement (out of country): blocked=%v at %s\n",
		d.RemoteBlocked, d.InCountryBlocked, d.InCountryHop)
}
