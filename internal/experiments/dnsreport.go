package experiments

import (
	"fmt"
	"strings"

	"cendev/internal/centrace"
)

// DNSReport summarizes the §8 DNS-extension measurement against the
// world's Russian public resolver.
type DNSReport struct {
	Resolver string
	Rows     []DNSRow
}

// DNSRow is one domain's DNS measurement.
type DNSRow struct {
	Domain   string
	Blocked  bool
	Injected bool
	Hop      centrace.HopInfo
}

// DNSExtension measures every study domain over DNS against the resolver.
func DNSExtension(s *Scenario) DNSReport {
	rep := DNSReport{}
	if s.DNSResolver == nil {
		return rep
	}
	rep.Resolver = s.DNSResolver.ID
	domains := []string{GlobalBlocked, RUBlocked, RUNews, OpenNews, KZPoker}
	for _, domain := range domains {
		res := centrace.New(s.Net, s.USClient, s.DNSResolver, centrace.Config{
			ControlDomain: ControlDomain,
			TestDomain:    domain,
			Protocol:      centrace.DNS,
			Repetitions:   3,
		}).Run()
		rep.Rows = append(rep.Rows, DNSRow{
			Domain:   domain,
			Blocked:  res.Blocked,
			Injected: res.BlockpageID == "dns-injection",
			Hop:      res.BlockingHop,
		})
	}
	return rep
}

// RenderDNSReport formats the DNS extension results.
func RenderDNSReport(r DNSReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§8 DNS extension: queries to resolver %s through the on-path injector\n", r.Resolver)
	for _, row := range r.Rows {
		verdict := "honest answer"
		if row.Injected {
			verdict = fmt.Sprintf("forged answer injected at %s", row.Hop)
		} else if row.Blocked {
			verdict = "dropped"
		}
		fmt.Fprintf(&b, "  %-28s %s\n", row.Domain, verdict)
	}
	return b.String()
}
