package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cendev/internal/centrace"
)

// Fig4Row summarizes one country's device placement and distance data —
// Figure 4: in-path vs on-path counts and the hop difference between the
// blocking location and the endpoint.
type Fig4Row struct {
	Country string
	InPath  int
	OnPath  int
	// HopsFromEndpoint is the distribution of (endpoint hop − blocking
	// hop) for blocked measurements with the device on the path.
	HopsFromEndpoint []int
}

// Fig4 computes the Figure 4 data from blocked remote traces.
func Fig4(c *Corpus) []Fig4Row {
	byCountry := map[string]*Fig4Row{}
	for _, country := range Countries {
		byCountry[country] = &Fig4Row{Country: country}
	}
	for _, tr := range c.BlockedTraces("") {
		row := byCountry[tr.Country]
		switch tr.Result.Placement {
		case centrace.PlacementInPath:
			row.InPath++
		case centrace.PlacementOnPath:
			row.OnPath++
		}
		if tr.Result.Location == centrace.LocPath && tr.Result.EndpointTTL > 0 {
			row.HopsFromEndpoint = append(row.HopsFromEndpoint,
				tr.Result.EndpointTTL-tr.Result.DeviceTTL)
		}
	}
	var out []Fig4Row
	for _, country := range Countries {
		sort.Ints(byCountry[country].HopsFromEndpoint)
		out = append(out, *byCountry[country])
	}
	return out
}

// NearEndpointShare returns the fraction of blocked measurements whose
// blocking hop is one or two hops from the endpoint (§4.3: "More than 35%
// of the blocking happens one or two hops away from the endpoint").
func NearEndpointShare(rows []Fig4Row) float64 {
	total, near := 0, 0
	for _, r := range rows {
		for _, h := range r.HopsFromEndpoint {
			total++
			if h <= 2 {
				near++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(near) / float64(total)
}

// RenderFig4 formats the Figure 4 data.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: in-path vs on-path devices and hops from the endpoint\n")
	b.WriteString("Co. | In-path | On-path | Hops-from-endpoint distribution\n")
	for _, r := range rows {
		hist := map[int]int{}
		for _, h := range r.HopsFromEndpoint {
			hist[h]++
		}
		var keys []int
		for k := range hist {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%d hops×%d", k, hist[k]))
		}
		fmt.Fprintf(&b, "%-3s | %7d | %7d | %s\n", r.Country, r.InPath, r.OnPath, strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "\nShare within 1–2 hops of endpoint: %.1f%% (§4.3: >35%%)\n", 100*NearEndpointShare(rows))
	return b.String()
}
