package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cendev/internal/features"
	"cendev/internal/ml"
)

// Fig9 reproduces §7.2 / Figure 9: train a random-forest classifier on the
// labeled device observations (3 × 5-fold cross-validation) and report
// per-feature MDI importance. Returns the CV accuracies and the feature
// importances aligned with features.FeatureNames().
func Fig9(c *Corpus) (accuracies []float64, importance []float64) {
	obs := c.Observations()
	m := features.Extract(obs).Imputed()
	d, _, classes := labeledDataset(m)
	if len(d.X) < 5 || len(classes) < 2 {
		// Too few labels to train; return zeros so callers degrade
		// gracefully (the caller's corpus was probably trace-only).
		return nil, make([]float64, len(m.Names))
	}
	return ml.CrossValidate(d, ml.ForestConfig{NumTrees: 60, Seed: 1}, 5, 3)
}

// labeledDataset adapts features.Matrix.LabeledDataset (kept here so Fig9
// can work on the imputed copy).
func labeledDataset(m *features.Matrix) (*ml.Dataset, []int, []string) {
	return m.LabeledDataset()
}

// Fig9Confusion runs the same 3×5-fold CV but accumulates a per-vendor
// confusion matrix over held-out predictions, giving per-class precision
// and recall for the vendor classifier.
func Fig9Confusion(c *Corpus) *ml.ConfusionMatrix {
	obs := c.Observations()
	m := features.Extract(obs).Imputed()
	d, _, classes := m.LabeledDataset()
	if len(classes) < 2 || len(d.X) < 5 {
		return ml.NewConfusionMatrix(classes)
	}
	return ml.CrossValidateConfusion(d, classes, ml.ForestConfig{NumTrees: 60, Seed: 1}, 5, 3)
}

// Fig9Row pairs a feature with its importance.
type Fig9Row struct {
	Feature    string
	Importance float64
}

// Fig9Ranked returns features sorted by descending MDI.
func Fig9Ranked(c *Corpus) []Fig9Row {
	_, imp := Fig9(c)
	names := features.FeatureNames()
	rows := make([]Fig9Row, 0, len(names))
	for i, name := range names {
		rows = append(rows, Fig9Row{Feature: name, Importance: imp[i]})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Importance > rows[j].Importance })
	return rows
}

// RenderFig9 formats the importance ranking like Figure 9.
func RenderFig9(c *Corpus) string {
	accs, _ := Fig9(c)
	rows := Fig9Ranked(c)
	var b strings.Builder
	b.WriteString("Figure 9: importance of device features (random-forest MDI, 3×5-fold CV)\n")
	if len(accs) > 0 {
		mean := 0.0
		for _, a := range accs {
			mean += a
		}
		fmt.Fprintf(&b, "CV accuracy: %.2f over %d folds\n", mean/float64(len(accs)), len(accs))
	}
	for _, r := range rows {
		if r.Importance <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%-28s %.4f %s\n", r.Feature, r.Importance, bar(r.Importance, 40))
	}
	b.WriteString("\nVendor confusion matrix (held-out predictions):\n")
	b.WriteString(Fig9Confusion(c).String())
	return b.String()
}

func bar(v float64, scale int) string {
	n := int(v * float64(scale) * 4)
	if n > scale {
		n = scale
	}
	return strings.Repeat("#", n)
}
