package experiments

import (
	"strings"
	"testing"

	"cendev/internal/tomography"
)

func cellByName(t *testing.T, cv CrossValidation, name string) CrossValCell {
	t.Helper()
	for _, c := range cv.Cells {
		if c.Scenario == name {
			return c
		}
	}
	t.Fatalf("no cell %q", name)
	return CrossValCell{}
}

func TestCrossValidateAgreement(t *testing.T) {
	cv := CrossValidate(CrossValConfig{Workers: 1})
	if !cv.OK() {
		t.Fatalf("cross-validation below the 80%% bar:\n%s", RenderCrossValidation(cv))
	}
	if cv.Comparable < 3 {
		t.Fatalf("want at least 3 comparable cells, got %d:\n%s", cv.Comparable, RenderCrossValidation(cv))
	}

	// The headline scenario must localize exactly and match CenTrace.
	exact := cellByName(t, cv, "two-vantage-exact")
	if exact.Tomography.Verdict != tomography.Exact || !exact.Agree {
		t.Fatalf("two-vantage-exact: %+v", exact)
	}
	if top, _ := exact.Tomography.Top(); top != tomography.MakeLink("r2a", "r3") {
		t.Fatalf("two-vantage-exact top = %s", top)
	}

	// Vantage-dependent blocking: CenTrace's single vantage is blind, the
	// multi-vantage campaign still brackets the censor.
	vd := cellByName(t, cv, "vantage-dependent")
	if vd.CenTrace.Blocked {
		t.Fatalf("vantage-dependent: CenTrace from the clean branch saw blocking: %+v", vd.CenTrace)
	}
	if !vd.Tomography.Contains(tomography.MakeLink("r2a", "r3")) {
		t.Fatalf("vantage-dependent: candidate set lost the true link: %s", tomography.Render(vd.Tomography))
	}

	// The tomography blind spot must be confirmed, not silently wrong.
	guard := cellByName(t, cv, "guard-at-endpoint")
	if guard.Tomography.Verdict != tomography.Unlocalizable {
		t.Fatalf("guard-at-endpoint: want unlocalizable, got %s", tomography.Render(guard.Tomography))
	}
	if guard.Comparable {
		t.Fatal("guard-at-endpoint must not count toward the agreement denominator")
	}
}

func TestCrossValidateDeterministicAcrossWorkers(t *testing.T) {
	one := RenderCrossValidation(CrossValidate(CrossValConfig{Workers: 1}))
	four := RenderCrossValidation(CrossValidate(CrossValConfig{Workers: 4}))
	if one != four {
		t.Fatalf("-workers divergence:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
	if !strings.Contains(one, "agreement-ok: true") {
		t.Fatalf("rendered table missing the CI gate line:\n%s", one)
	}
}
