package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// PathGraph is the traceroute-derived graph behind Figures 1 and 10–12:
// nodes are hop addresses annotated with AS metadata, edges carry how many
// traceroutes used them and whether blocking was observed on them.
type PathGraph struct {
	Title string
	Nodes map[netip.Addr]PathNode
	Edges map[[2]netip.Addr]*PathEdge
}

// PathNode annotates one hop.
type PathNode struct {
	Addr    netip.Addr
	ASN     uint32
	Org     string
	Country string
}

// PathEdge is one link in the traceroute graph.
type PathEdge struct {
	Traces  int
	Blocked int // traceroutes whose blocking hop is the edge head
}

// BuildPathGraph assembles the graph from CenTrace results for one country
// and client side (inCountry selects Figure 1-style vs Figure 10–12-style
// views).
func BuildPathGraph(c *Corpus, country string, inCountry bool) *PathGraph {
	g := &PathGraph{
		Title: fmt.Sprintf("CenTrace paths: %s (in-country=%v)", country, inCountry),
		Nodes: map[netip.Addr]PathNode{},
		Edges: map[[2]netip.Addr]*PathEdge{},
	}
	for _, tr := range c.Traces {
		if tr.Country != country || tr.InCountry != inCountry {
			continue
		}
		res := tr.Result
		// Reconstruct the modal hop sequence from the control aggregate.
		var prev netip.Addr
		prevSet := false
		maxTTL := res.EndpointTTL
		if maxTTL == 0 {
			maxTTL = res.TermTTL
		}
		for ttl := 1; ttl <= maxTTL; ttl++ {
			addr, ok := res.Control.MostLikelyHop(ttl)
			if !ok {
				if ttl == res.EndpointTTL {
					addr = res.Endpoint
				} else {
					prevSet = false
					continue
				}
			}
			g.addNode(c, addr)
			if prevSet {
				key := [2]netip.Addr{prev, addr}
				e := g.Edges[key]
				if e == nil {
					e = &PathEdge{}
					g.Edges[key] = e
				}
				e.Traces++
				if res.Blocked && res.DeviceTTL == ttl {
					e.Blocked++
				}
			}
			prev = addr
			prevSet = true
		}
	}
	return g
}

func (g *PathGraph) addNode(c *Corpus, addr netip.Addr) {
	if _, ok := g.Nodes[addr]; ok {
		return
	}
	info, _ := c.Scenario.Net.Geo.Lookup(addr)
	g.Nodes[addr] = PathNode{Addr: addr, ASN: info.ASN, Org: info.Name, Country: info.Country}
}

// BlockedEdges returns the edges on which blocking was observed.
func (g *PathGraph) BlockedEdges() [][2]netip.Addr {
	var out [][2]netip.Addr
	for key, e := range g.Edges {
		if e.Blocked > 0 {
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Less(out[j][0]) })
	return out
}

// RenderDOT renders the graph in Graphviz DOT, blocked links in red —
// the same presentation as Figures 1 and 10–12.
func (g *PathGraph) RenderDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph centrace {\n  label=%q;\n  rankdir=LR;\n", g.Title)
	var addrs []netip.Addr
	for a := range g.Nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	for _, a := range addrs {
		n := g.Nodes[a]
		fmt.Fprintf(&b, "  %q [label=\"%s\\nAS%d %s (%s)\"];\n", a, a, n.ASN, n.Org, n.Country)
	}
	var keys [][2]netip.Addr
	for k := range g.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0].Less(keys[j][0])
		}
		return keys[i][1].Less(keys[j][1])
	})
	for _, k := range keys {
		e := g.Edges[k]
		attrs := fmt.Sprintf("label=\"%d\"", e.Traces)
		if e.Blocked > 0 {
			attrs = fmt.Sprintf("label=\"%d (blocked %d)\" color=red penwidth=2", e.Traces, e.Blocked)
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", k[0], k[1], attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// RenderASCII renders a per-AS blocking summary as text.
func (g *PathGraph) RenderASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	blockedByAS := map[string]int{}
	for key, e := range g.Edges {
		if e.Blocked == 0 {
			continue
		}
		head := g.Nodes[key[1]]
		label := fmt.Sprintf("AS%d %s (%s)", head.ASN, head.Org, head.Country)
		blockedByAS[label] += e.Blocked
	}
	var labels []string
	for l := range blockedByAS {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "  blocking at %-40s ×%d\n", l, blockedByAS[l])
	}
	if len(labels) == 0 {
		b.WriteString("  (no blocking observed)\n")
	}
	return b.String()
}

// Fig1 is the KZ in-country view (Figure 1).
func Fig1(c *Corpus) *PathGraph { return BuildPathGraph(c, "KZ", true) }

// Fig10 is the AZ remote view (Figure 10).
func Fig10(c *Corpus) *PathGraph { return BuildPathGraph(c, "AZ", false) }

// Fig11 is the BY remote view (Figure 11).
func Fig11(c *Corpus) *PathGraph { return BuildPathGraph(c, "BY", false) }

// Fig12 is the KZ remote view (Figure 12).
func Fig12(c *Corpus) *PathGraph { return BuildPathGraph(c, "KZ", false) }
