package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// DeviceRow is one deployment in the world inventory.
type DeviceRow struct {
	ID        string
	Vendor    string
	Country   string
	ASN       uint32
	Placement string
	Action    string
	Addressed bool
	Services  int
}

// DeviceInventory lists every deployed device, the ground truth the
// measurement pipeline tries to rediscover.
func DeviceInventory(s *Scenario) []DeviceRow {
	var rows []DeviceRow
	for _, d := range s.Devices {
		rows = append(rows, DeviceRow{
			ID:        d.Device.ID,
			Vendor:    string(d.Device.Vendor),
			Country:   d.Country,
			ASN:       d.ASN,
			Placement: d.Device.Placement.String(),
			Action:    d.Device.Action.String(),
			Addressed: d.Device.Addr.IsValid(),
			Services:  len(d.Device.Services),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Country != rows[j].Country {
			return rows[i].Country < rows[j].Country
		}
		return rows[i].ID < rows[j].ID
	})
	return rows
}

// RenderDeviceInventory formats the inventory table (ground truth; the
// §5.3 comparison point for what banner grabs recover).
func RenderDeviceInventory(rows []DeviceRow) string {
	var b strings.Builder
	b.WriteString("Ground-truth device inventory (what CenTrace/CenProbe try to rediscover)\n")
	b.WriteString("Co. | ASN    | ID                   | Vendor          | Place   | Action    | Addr | Svcs\n")
	for _, r := range rows {
		if strings.HasPrefix(r.ID, "guard-") {
			continue // summarized below
		}
		addr := "-"
		if r.Addressed {
			addr = "yes"
		}
		fmt.Fprintf(&b, "%-3s | %-6d | %-20s | %-15s | %-7s | %-9s | %-4s | %d\n",
			r.Country, r.ASN, r.ID, r.Vendor, r.Placement, r.Action, addr, r.Services)
	}
	guards := 0
	for _, r := range rows {
		if strings.HasPrefix(r.ID, "guard-") {
			guards++
		}
	}
	fmt.Fprintf(&b, "plus %d endpoint-side guards (the At E class)\n", guards)
	return b.String()
}
