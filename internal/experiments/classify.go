package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cendev/internal/features"
	"cendev/internal/ml"
)

// Unlabeled-device classification (§7.1): "Using these other network-layer
// and censorship features, we can then classify the vendors of devices
// that do not inject blockpages, or do not explicitly display its vendor
// in banner responses." A random forest trained on the labeled
// observations predicts a vendor for each unlabeled one.

// Prediction is one unlabeled observation's predicted vendor.
type Prediction struct {
	EndpointID string
	Country    string
	ASN        uint32
	Vendor     string
	// Confidence is the fraction of forest trees voting for the winner.
	Confidence float64
}

// ClassifyUnlabeled trains on labeled observations and predicts vendors
// for the unlabeled ones.
func ClassifyUnlabeled(c *Corpus) []Prediction {
	obs := c.Observations()
	m := features.Extract(obs).Imputed()
	d, labeledRows, classes := m.LabeledDataset()
	if len(classes) < 2 || len(d.X) < 4 {
		return nil
	}
	forest := ml.FitForest(d, ml.ForestConfig{NumTrees: 80, Seed: 11})
	labeled := map[int]bool{}
	for _, r := range labeledRows {
		labeled[r] = true
	}
	var out []Prediction
	for i, o := range obs {
		if labeled[i] {
			continue
		}
		votes := map[int]int{}
		for _, tree := range forest.Trees {
			votes[tree.Predict(m.Row(i))]++
		}
		best, bestVotes := 0, -1
		var keys []int
		for k := range votes {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if votes[k] > bestVotes {
				best, bestVotes = k, votes[k]
			}
		}
		out = append(out, Prediction{
			EndpointID: o.EndpointID,
			Country:    o.Country,
			ASN:        o.ASN,
			Vendor:     classes[best],
			Confidence: float64(bestVotes) / float64(len(forest.Trees)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EndpointID < out[j].EndpointID })
	return out
}

// RenderPredictions formats the §7.1 classification output.
func RenderPredictions(preds []Prediction) string {
	var b strings.Builder
	b.WriteString("§7.1 vendor predictions for unlabeled devices (random forest)\n")
	for _, p := range preds {
		fmt.Fprintf(&b, "  %-16s %s AS%-6d → %-14s (%.0f%% of trees)\n",
			p.EndpointID, p.Country, p.ASN, p.Vendor, 100*p.Confidence)
	}
	if len(preds) == 0 {
		b.WriteString("  (no unlabeled observations)\n")
	}
	return b.String()
}
