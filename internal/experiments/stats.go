package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cendev/internal/cenprobe"
	"cendev/internal/features"
	"cendev/internal/ml"
)

// QuoteStats summarizes the ICMP quoted-packet observations of §4.3.
type QuoteStats struct {
	TotalQuotes    int
	RFC792Only     int
	TOSChanged     int
	IPFlagsChanged int
}

// QuoteStatistics walks all control traces for quote behaviour: the share
// of routers quoting the RFC 792 minimum vs more (RFC 1812), and the share
// of quotes differing in TOS and IP flags.
func QuoteStatistics(c *Corpus) QuoteStats {
	var s QuoteStats
	for _, tr := range c.Traces {
		for _, trace := range tr.Result.Control.Traces {
			for _, obs := range trace.Obs {
				if obs.Quote == nil {
					continue
				}
				s.TotalQuotes++
				if obs.Quote.FollowsRFC792Only() {
					s.RFC792Only++
				}
				if obs.QuoteDelta != nil {
					if obs.QuoteDelta.TOSChanged {
						s.TOSChanged++
					}
					if obs.QuoteDelta.IPFlagsChanged {
						s.IPFlagsChanged++
					}
				}
			}
		}
	}
	return s
}

// BannerStats reproduces §5.3: how many potential device IPs were probed,
// how many exposed services, and the per-vendor label counts, plus the
// blockpage-labeled devices that presented no banners.
type BannerStats struct {
	Summary cenprobe.Summary
	// BlockpageOnlyVendors counts vendor labels observed only via injected
	// blockpages (the 4 extra Fortinet devices of §5.3).
	BlockpageOnlyVendors map[string]int
}

// BannerStatistics aggregates the probe results.
func BannerStatistics(c *Corpus) BannerStats {
	var results []*cenprobe.Result
	for _, addr := range c.PotentialDeviceIPs {
		if r, ok := c.Probes[addr]; ok {
			results = append(results, r)
		}
	}
	stats := BannerStats{
		Summary:              cenprobe.Summarize(results),
		BlockpageOnlyVendors: map[string]int{},
	}
	// Blockpage labels for blocking hops whose banner grab found nothing.
	seen := map[string]bool{}
	for _, tr := range c.BlockedTraces("") {
		r := tr.Result
		if r.BlockpageVendor == "" {
			continue
		}
		addr := r.BlockingHop.Addr
		if !addr.IsValid() || seen[addr.String()] {
			continue
		}
		seen[addr.String()] = true
		if p, ok := c.Probes[addr]; !ok || p.Vendor == "" {
			stats.BlockpageOnlyVendors[r.BlockpageVendor]++
		}
	}
	return stats
}

// RenderBannerStats formats the §5.3 summary.
func RenderBannerStats(s BannerStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3 device banners: %d potential device IPs probed, %d with open ports, %d vendor-labeled\n",
		s.Summary.Probed, s.Summary.WithOpenPorts, s.Summary.Labeled)
	var vendors []string
	for v := range s.Summary.VendorCounts {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	for _, v := range vendors {
		fmt.Fprintf(&b, "  %-14s %d device(s)\n", v, s.Summary.VendorCounts[v])
	}
	var bpOnly []string
	for v := range s.BlockpageOnlyVendors {
		bpOnly = append(bpOnly, v)
	}
	sort.Strings(bpOnly)
	for _, v := range bpOnly {
		fmt.Fprintf(&b, "  %-14s %d device(s) labeled by blockpage only\n", v, s.BlockpageOnlyVendors[v])
	}
	return b.String()
}

// VendorCorrelation is one pairwise Spearman comparison of §7.4.
type VendorCorrelation struct {
	VendorA, VendorB string
	MeanRho          float64
	MeanP            float64
	Pairs            int
}

// VendorCorrelations computes pairwise Spearman correlations of feature
// vectors between devices of the same and different vendors (§7.4: same
// vendor ρ≈1, Fortinet vs Cisco ρ≈0.56).
func VendorCorrelations(c *Corpus) []VendorCorrelation {
	obs := c.Observations()
	m := features.Extract(obs).Imputed()
	byVendor := map[string][]int{}
	for i, o := range obs {
		if label := o.Label(); label != "" {
			byVendor[label] = append(byVendor[label], i)
		}
	}
	var vendors []string
	for v := range byVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	var out []VendorCorrelation
	for ai, va := range vendors {
		for _, vb := range vendors[ai:] {
			vc := VendorCorrelation{VendorA: va, VendorB: vb}
			var sumRho, sumP float64
			for _, i := range byVendor[va] {
				for _, j := range byVendor[vb] {
					if va == vb && j <= i {
						continue
					}
					rho, p := ml.Spearman(m.Row(i), m.Row(j))
					sumRho += rho
					sumP += p
					vc.Pairs++
				}
			}
			if vc.Pairs == 0 {
				continue
			}
			vc.MeanRho = sumRho / float64(vc.Pairs)
			vc.MeanP = sumP / float64(vc.Pairs)
			out = append(out, vc)
		}
	}
	return out
}

// RenderCorrelations formats the §7.4 correlation table.
func RenderCorrelations(cors []VendorCorrelation) string {
	var b strings.Builder
	b.WriteString("§7.4 pairwise Spearman correlations of device features\n")
	for _, c := range cors {
		kind := "cross-vendor"
		if c.VendorA == c.VendorB {
			kind = "same-vendor"
		}
		fmt.Fprintf(&b, "%-14s vs %-14s  rho=%.2f p=%.3f (%d pairs, %s)\n",
			c.VendorA, c.VendorB, c.MeanRho, c.MeanP, c.Pairs, kind)
	}
	return b.String()
}

// ExtraterritorialStats quantifies the KZ-blocked-in-Russia phenomenon
// (§4.3: measurements to 34.07% of KZ endpoints time out in Russian ASes).
type ExtraterritorialStats struct {
	Country          string
	BlockedEndpoints int
	BlockedAbroad    int
	Share            float64
	ForeignASNs      map[uint32]int
}

// Extraterritorial computes, for one country, how many blocked endpoints
// are actually blocked in a different country.
func Extraterritorial(c *Corpus, country string) ExtraterritorialStats {
	s := ExtraterritorialStats{Country: country, ForeignASNs: map[uint32]int{}}
	abroad := map[string]bool{}
	blocked := map[string]bool{}
	for _, tr := range c.BlockedTraces(country) {
		id := tr.Endpoint.Host.ID
		blocked[id] = true
		hop := tr.Result.BlockingHop
		if hop.Country != "" && hop.Country != country {
			abroad[id] = true
			s.ForeignASNs[hop.ASN]++
		}
	}
	s.BlockedEndpoints = len(blocked)
	s.BlockedAbroad = len(abroad)
	if s.BlockedEndpoints > 0 {
		s.Share = float64(s.BlockedAbroad) / float64(s.BlockedEndpoints)
	}
	return s
}
