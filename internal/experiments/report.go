package experiments

import (
	"fmt"
	"io"
)

// WriteReport emits a complete Markdown report of every table, figure, and
// headline statistic from one corpus — the regenerable companion to
// EXPERIMENTS.md. Sections that need fuzz data degrade gracefully when the
// corpus was built with SkipFuzz.
func WriteReport(w io.Writer, c *Corpus) error {
	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}
	fmt.Fprintf(w, "# Measurement study report\n\n")
	fmt.Fprintf(w, "Corpus: %d traces, %d potential device IPs, %d fuzzed endpoints, %d repetitions/traceroute.\n\n",
		len(c.Traces), len(c.PotentialDeviceIPs), len(c.Fuzz), c.Config.Repetitions)

	section("Table 1 — CenTrace measurements collected", RenderTable1(Table1(c)))
	section("Table 2 — CenFuzz strategy catalog", RenderTable2())
	section("Table 3 — clustering feature inventory", RenderTable3())
	section("Figure 1 — KZ in-country paths", Fig1(c).RenderASCII())
	section("Figure 3 — blocking type × location", RenderFig3(Fig3(c)))
	section("Figure 4 — in-path vs on-path", RenderFig4(Fig4(c)))
	if len(c.Fuzz) > 0 {
		section("Figure 5 — CenFuzz strategy success rates", RenderFig5(Fig5(c)))
		section("Figure 6 — device clustering", RenderFig6(Fig6(c, Fig6Config{})))
		section("Figure 9 — feature importance", RenderFig9(c))
		section("§6.3 per-method evasion rates", RenderMethodRates(c))
		section("§7.4 vendor correlations", RenderCorrelations(VendorCorrelations(c)))
		section("§7.1 unlabeled-device predictions", RenderPredictions(ClassifyUnlabeled(c)))
	}
	section("Figure 10 — AZ remote paths", Fig10(c).RenderASCII())
	section("Figure 11 — BY remote paths", Fig11(c).RenderASCII())
	section("Figure 12 — KZ remote paths", Fig12(c).RenderASCII())

	q := QuoteStatistics(c)
	quoteBody := fmt.Sprintf("quotes=%d rfc792-minimal=%.1f%% tos-changed=%.1f%% ipflags-changed=%d\n",
		q.TotalQuotes,
		pct(q.RFC792Only, q.TotalQuotes), pct(q.TOSChanged, q.TotalQuotes), q.IPFlagsChanged)
	for _, country := range Countries {
		e := Extraterritorial(c, country)
		if e.BlockedAbroad > 0 {
			quoteBody += fmt.Sprintf("%s endpoints blocked abroad: %d of %d (%.1f%%)\n",
				country, e.BlockedAbroad, e.BlockedEndpoints, 100*e.Share)
		}
	}
	section("§4.3 quoted packets and extraterritorial blocking", quoteBody)
	section("§5.3 device banners", RenderBannerStats(BannerStatistics(c)))
	section("§8 DNS extension", RenderDNSReport(DNSExtension(c.Scenario)))
	section("§4.2 directionality caveat", RenderDirectionality(DirectionalityDemo()))
	section("Throttling (intro, [79])", RenderThrottling(ThrottlingDemo()))
	return nil
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
