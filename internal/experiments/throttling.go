package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"cendev/internal/centrace"
	"cendev/internal/endpoint"
	"cendev/internal/httpgram"
	"cendev/internal/middlebox"
	"cendev/internal/simnet"
	"cendev/internal/topology"
)

// Throttling models the interference class the paper's introduction cites
// for Russia ([79]: "Throttling Twitter"): a device slows matched flows
// instead of blocking them. CenTrace's conservative definition (§4.1)
// deliberately does not flag throttling — the request completes — so the
// demo shows both the blind spot and the timing-based detector that
// closes it.
type Throttling struct {
	// CenTraceBlocked is CenTrace's verdict for the throttled domain.
	CenTraceBlocked bool
	// ControlRTT and ThrottledRTT are the virtual fetch times.
	ControlRTT   time.Duration
	ThrottledRTT time.Duration
	// Detected is the timing detector's verdict (throttled ≫ control).
	Detected bool
}

// throttleRatio is the slowdown factor above which the detector flags a
// flow as throttled.
const throttleRatio = 5

// ThrottlingDemo builds a minimal network with a throttling device and
// runs CenTrace plus the timing detector.
func ThrottlingDemo() Throttling {
	const throttled = "www.throttled.example"
	g := topology.NewGraph()
	asC := g.AddAS(1, "ClientNet", "US")
	asE := g.AddAS(2, "EndpointNet", "RU")
	r1 := g.AddRouter("r1", asC)
	r2 := g.AddRouter("r2", asE)
	g.Link("r1", "r2")
	client := g.AddHost("client", asC, r1)
	server := g.AddHost("server", asE, r2)
	n := simnet.New(g)
	n.RegisterServer("server", endpoint.NewServer(throttled, ControlDomain))
	dev := middlebox.NewDevice("throttler", middlebox.VendorUnknownDrop, []string{throttled}, netip.Addr{})
	dev.Action = middlebox.ActionThrottle
	dev.ResidualWindow = 0
	n.AttachDevice("r1", "r2", dev)

	out := Throttling{}
	res := centrace.New(n, client, server, centrace.Config{
		ControlDomain: ControlDomain,
		TestDomain:    throttled,
		Repetitions:   3,
	}).Run()
	out.CenTraceBlocked = res.Blocked

	out.ControlRTT = fetchRTT(n, client, server, ControlDomain)
	out.ThrottledRTT = fetchRTT(n, client, server, throttled)
	out.Detected = out.ControlRTT > 0 &&
		out.ThrottledRTT > throttleRatio*out.ControlRTT
	return out
}

// fetchRTT measures the virtual time from sending a request to receiving
// its last response byte.
func fetchRTT(n *simnet.Network, client, server *topology.Host, domain string) time.Duration {
	conn, err := n.Dial(client, server, 80)
	if err != nil {
		return 0
	}
	defer conn.Close()
	start := n.Now()
	ds := conn.SendPayload(httpgram.NewRequest(domain).Render(), 64)
	var last time.Duration
	for _, d := range ds {
		if d.At > last {
			last = d.At
		}
	}
	if last == 0 {
		return 0
	}
	return last - start
}

// RenderThrottling formats the demonstration.
func RenderThrottling(t Throttling) string {
	return fmt.Sprintf(
		"Throttling (the paper's [79] interference class):\n"+
			"  CenTrace verdict:      blocked=%v (conservative definition sees a completed request)\n"+
			"  control fetch RTT:     %v\n"+
			"  throttled fetch RTT:   %v\n"+
			"  timing detector:       throttling=%v (>%d× slowdown)\n",
		t.CenTraceBlocked, t.ControlRTT, t.ThrottledRTT, t.Detected, throttleRatio)
}
