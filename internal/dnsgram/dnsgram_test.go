package dnsgram

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xbeef, "www.example.com")
	got, err := ParseQuery(q.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xbeef || got.Name != "www.example.com" || got.Type != TypeA {
		t.Errorf("round trip = %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "blocked.example")
	a1 := netip.MustParseAddr("192.0.2.1")
	a2 := netip.MustParseAddr("192.0.2.2")
	r := Answer(q, a1, a2)
	got, err := ParseResponse(r.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Name != "blocked.example" || got.RCode != RCodeNoError {
		t.Errorf("response = %+v", got)
	}
	if len(got.Answers) != 2 || got.Answers[0] != a1 || got.Answers[1] != a2 {
		t.Errorf("answers = %v", got.Answers)
	}
}

func TestNXDomain(t *testing.T) {
	q := NewQuery(9, "nonexistent.example")
	got, err := ParseResponse(NXDomain(q).Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeNXDomain || len(got.Answers) != 0 {
		t.Errorf("nxdomain = %+v", got)
	}
}

func TestIsQuery(t *testing.T) {
	q := NewQuery(1, "x.example")
	if !IsQuery(q.Serialize()) {
		t.Error("IsQuery(query) = false")
	}
	if IsQuery(Answer(q, netip.MustParseAddr("192.0.2.1")).Serialize()) {
		t.Error("IsQuery(response) = true")
	}
	if IsQuery([]byte("GET / HTTP/1.1")) {
		t.Error("IsQuery(HTTP) = true")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseQuery([]byte{1, 2}); err == nil {
		t.Error("short query should fail")
	}
	if _, err := ParseResponse([]byte{1, 2}); err == nil {
		t.Error("short response should fail")
	}
	q := NewQuery(1, "x.example")
	if _, err := ParseQuery(Answer(q).Serialize()); err == nil {
		t.Error("parsing a response as a query should fail")
	}
	if _, err := ParseResponse(q.Serialize()); err == nil {
		t.Error("parsing a query as a response should fail")
	}
	// Truncated mid-name.
	wire := q.Serialize()
	if _, err := ParseQuery(wire[:14]); err == nil {
		t.Error("truncated name should fail")
	}
	// Compression pointer rejected.
	bad := append([]byte(nil), wire...)
	bad[12] = 0xc0
	if _, err := ParseQuery(bad); err == nil {
		t.Error("compression pointer should be rejected")
	}
}

func TestTrailingDotAndLongLabels(t *testing.T) {
	q := NewQuery(1, "a.example.")
	got, err := ParseQuery(q.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "a.example" {
		t.Errorf("name = %q", got.Name)
	}
	long := strings.Repeat("x", 80) + ".example"
	q2 := NewQuery(2, long)
	got2, err := ParseQuery(q2.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(got2.Name, ".")[0]) != 63 {
		t.Errorf("over-long label not truncated: %q", got2.Name)
	}
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(id uint16, raw []byte) bool {
		name := sanitize(raw)
		if name == "" {
			return true
		}
		got, err := ParseQuery(NewQuery(id, name).Serialize())
		return err == nil && got.ID == id && got.Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(raw []byte) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	var labels []string
	label := ""
	for _, c := range raw {
		label += string(alpha[int(c)%len(alpha)])
		if len(label) == 8 {
			labels = append(labels, label)
			label = ""
			if len(labels) == 4 {
				break
			}
		}
	}
	if label != "" {
		labels = append(labels, label)
	}
	return strings.Join(labels, ".")
}
