package dnsgram

import (
	"net/netip"
	"testing"
)

// FuzzParse ensures the DNS parsers never panic and that parsed messages
// re-serialize and re-parse.
func FuzzParse(f *testing.F) {
	f.Add(NewQuery(1, "www.example.com").Serialize())
	f.Add(Answer(NewQuery(2, "x.example"), netip.MustParseAddr("192.0.2.1")).Serialize())
	f.Add(NXDomain(NewQuery(3, "gone.example")).Serialize())
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := ParseQuery(data); err == nil {
			if _, err := ParseQuery(q.Serialize()); err != nil {
				t.Fatalf("re-serialized query failed to parse: %v", err)
			}
		}
		if r, err := ParseResponse(data); err == nil {
			if _, err := ParseResponse(r.Serialize()); err != nil {
				t.Fatalf("re-serialized response failed to parse: %v", err)
			}
		}
	})
}
