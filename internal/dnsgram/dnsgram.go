// Package dnsgram implements the DNS wire format needed by the DNS
// measurement extension: A-record queries and responses with QNAME label
// encoding. The paper scopes DNS censorship out of its main study (§3.1)
// but names DNS probing as the natural protocol extension of CenTrace
// (§4: "our technique can be easily extended to other protocols such as
// DNS and SSH") and as future work (§8: "devices that perform DNS packet
// injection"); this package plus the middlebox DNS-injection behaviour
// implements that extension.
package dnsgram

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"strings"
)

// Record types and classes.
const (
	TypeA   uint16 = 1
	ClassIN uint16 = 1
)

// Response codes.
const (
	RCodeNoError  uint8 = 0
	RCodeNXDomain uint8 = 3
	RCodeRefused  uint8 = 5
)

var (
	errShortDNS = errors.New("dnsgram: truncated message")
	errBadName  = errors.New("dnsgram: malformed name")
	errNotQuery = errors.New("dnsgram: not a query")
	errNotResp  = errors.New("dnsgram: not a response")
)

// Query is a single-question DNS query.
type Query struct {
	ID   uint16
	Name string
	Type uint16
}

// NewQuery returns an A query for name.
func NewQuery(id uint16, name string) *Query {
	return &Query{ID: id, Name: name, Type: TypeA}
}

// Serialize renders the query to wire bytes.
func (q *Query) Serialize() []byte {
	out := make([]byte, 0, 16+len(q.Name))
	out = binary.BigEndian.AppendUint16(out, q.ID)
	out = binary.BigEndian.AppendUint16(out, 0x0100) // RD=1
	out = binary.BigEndian.AppendUint16(out, 1)      // QDCOUNT
	out = append(out, 0, 0, 0, 0, 0, 0)              // AN/NS/AR counts
	out = appendName(out, q.Name)
	out = binary.BigEndian.AppendUint16(out, q.Type)
	out = binary.BigEndian.AppendUint16(out, ClassIN)
	return out
}

// ParseQuery decodes a query from wire bytes.
func ParseQuery(data []byte) (*Query, error) {
	if len(data) < 12 {
		return nil, errShortDNS
	}
	flags := binary.BigEndian.Uint16(data[2:])
	if flags&0x8000 != 0 {
		return nil, errNotQuery
	}
	if binary.BigEndian.Uint16(data[4:]) != 1 {
		return nil, errShortDNS
	}
	name, n, err := parseName(data[12:])
	if err != nil {
		return nil, err
	}
	rest := data[12+n:]
	if len(rest) < 4 {
		return nil, errShortDNS
	}
	return &Query{
		ID:   binary.BigEndian.Uint16(data),
		Name: name,
		Type: binary.BigEndian.Uint16(rest),
	}, nil
}

// Response is a single-question DNS response with A answers.
type Response struct {
	ID      uint16
	Name    string
	RCode   uint8
	Answers []netip.Addr
}

// Answer builds a NOERROR response to q with the given addresses.
func Answer(q *Query, addrs ...netip.Addr) *Response {
	return &Response{ID: q.ID, Name: q.Name, Answers: addrs}
}

// NXDomain builds an NXDOMAIN response to q.
func NXDomain(q *Query) *Response {
	return &Response{ID: q.ID, Name: q.Name, RCode: RCodeNXDomain}
}

// Serialize renders the response to wire bytes.
func (r *Response) Serialize() []byte {
	out := make([]byte, 0, 32+len(r.Name))
	out = binary.BigEndian.AppendUint16(out, r.ID)
	out = binary.BigEndian.AppendUint16(out, 0x8180|uint16(r.RCode)) // QR=1 RD RA
	out = binary.BigEndian.AppendUint16(out, 1)                      // QDCOUNT
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.Answers)))
	out = append(out, 0, 0, 0, 0) // NS/AR counts
	out = appendName(out, r.Name)
	out = binary.BigEndian.AppendUint16(out, TypeA)
	out = binary.BigEndian.AppendUint16(out, ClassIN)
	for _, a := range r.Answers {
		out = appendName(out, r.Name)
		out = binary.BigEndian.AppendUint16(out, TypeA)
		out = binary.BigEndian.AppendUint16(out, ClassIN)
		out = binary.BigEndian.AppendUint32(out, 60) // TTL
		a4 := a.As4()
		out = binary.BigEndian.AppendUint16(out, 4)
		out = append(out, a4[:]...)
	}
	return out
}

// ParseResponse decodes a response from wire bytes.
func ParseResponse(data []byte) (*Response, error) {
	if len(data) < 12 {
		return nil, errShortDNS
	}
	flags := binary.BigEndian.Uint16(data[2:])
	if flags&0x8000 == 0 {
		return nil, errNotResp
	}
	r := &Response{
		ID:    binary.BigEndian.Uint16(data),
		RCode: uint8(flags & 0xf),
	}
	ancount := int(binary.BigEndian.Uint16(data[6:]))
	name, n, err := parseName(data[12:])
	if err != nil {
		return nil, err
	}
	r.Name = name
	pos := 12 + n + 4 // skip qtype/qclass
	for i := 0; i < ancount; i++ {
		if pos >= len(data) {
			return nil, errShortDNS
		}
		_, n, err := parseName(data[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		if pos+10 > len(data) {
			return nil, errShortDNS
		}
		rtype := binary.BigEndian.Uint16(data[pos:])
		rdlen := int(binary.BigEndian.Uint16(data[pos+8:]))
		pos += 10
		if pos+rdlen > len(data) {
			return nil, errShortDNS
		}
		if rtype == TypeA && rdlen == 4 {
			r.Answers = append(r.Answers, netip.AddrFrom4([4]byte(data[pos:pos+4])))
		}
		pos += rdlen
	}
	return r, nil
}

// IsQuery reports whether raw looks like a DNS query (cheap DPI pre-check).
func IsQuery(raw []byte) bool {
	return len(raw) >= 12 && raw[2]&0x80 == 0 && binary.BigEndian.Uint16(raw[4:]) == 1
}

// appendName encodes a domain name as DNS labels.
func appendName(out []byte, name string) []byte {
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if label == "" {
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0)
}

// parseName decodes a label-encoded name, returning the name and bytes
// consumed. Compression pointers are not emitted by this package and are
// rejected.
func parseName(data []byte) (string, int, error) {
	var labels []string
	pos := 0
	for {
		if pos >= len(data) {
			return "", 0, errShortDNS
		}
		l := int(data[pos])
		if l == 0 {
			pos++
			break
		}
		if l&0xc0 != 0 {
			return "", 0, errBadName
		}
		if pos+1+l > len(data) {
			return "", 0, errShortDNS
		}
		labels = append(labels, string(data[pos+1:pos+1+l]))
		pos += 1 + l
	}
	return strings.Join(labels, "."), pos, nil
}
