package obs

import (
	"strings"
	"testing"
)

// FuzzPromEscape checks the Prometheus label escaper against the text
// exposition format's grammar: the escaped value must contain no raw
// newline and no unescaped double-quote (either would tear the series
// line), every backslash must introduce one of the three legal
// sequences, and unescaping must round-trip to the original value.
func FuzzPromEscape(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add(`back\slash`)
	f.Add("with \"quotes\" and\nnewline")
	f.Add("tab\tand\rcarriage")
	f.Add(`trailing backslash \`)
	f.Add("\\n") // literal backslash-n, must not collide with escaped newline
	f.Fuzz(func(t *testing.T, s string) {
		e := promEscape(s)
		if strings.ContainsRune(e, '\n') {
			t.Fatalf("escaped value contains raw newline: %q", e)
		}
		var un strings.Builder
		for i := 0; i < len(e); i++ {
			c := e[i]
			switch c {
			case '"':
				t.Fatalf("escaped value contains unescaped quote: %q", e)
			case '\\':
				i++
				if i >= len(e) {
					t.Fatalf("escaped value ends mid-escape: %q", e)
				}
				switch e[i] {
				case '\\':
					un.WriteByte('\\')
				case '"':
					un.WriteByte('"')
				case 'n':
					un.WriteByte('\n')
				default:
					t.Fatalf("illegal escape sequence \\%c in %q", e[i], e)
				}
			default:
				un.WriteByte(c)
			}
		}
		if un.String() != s {
			t.Fatalf("escape does not round-trip: %q -> %q -> %q", s, e, un.String())
		}
		if !strings.ContainsAny(s, "\\\"\n") && e != s {
			t.Fatalf("value without specials was rewritten: %q -> %q", s, e)
		}
	})
}
