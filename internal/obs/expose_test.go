package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPromLabelEscaping: the text exposition format escapes exactly
// backslash, double-quote, and line-feed in label values — and nothing
// else. A tab must pass through raw (Go's %q would corrupt it to \t).
func TestPromLabelEscaping(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{`plain`, `plain`},
		{"line\nbreak", `line\nbreak`},
		{`say "hi"`, `say \"hi\"`},
		{`back\slash`, `back\\slash`},
		{"tab\there", "tab\there"},
		{"\\\"\n", `\\\"\n`},
	}
	for _, c := range cases {
		if got := promEscape(c.in); got != c.want {
			t.Errorf("promEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPromExpositionEscapedSeries: a counter whose label value carries all
// three escapable characters renders as a parseable exposition line.
func TestPromExpositionEscapedSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("evil_total", L("path", "a\\b\"c\nd")).Add(3)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `evil_total{path="a\\b\"c\nd"} 3` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing escaped series:\nwant %q\ngot:\n%s", want, b.String())
	}
}

// TestPromExpositionEmptyLabel: an empty label value is legal and must
// render as key="" rather than being dropped.
func TestPromExpositionEmptyLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("sparse_total", L("tenant", "")).Inc()
	r.Counter("bare_total").Inc()
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `sparse_total{tenant=""} 1`+"\n") {
		t.Errorf("empty-valued label not rendered:\n%s", out)
	}
	if !strings.Contains(out, "bare_total 1\n") {
		t.Errorf("label-free series should render without braces:\n%s", out)
	}
}

// TestMetricsHandler: the /metrics handler serves the version 0.0.4 text
// format content type and the full snapshot body (including histogram
// buckets), so the service endpoint is scrapeable as-is.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", L("kind", "centrace")).Add(2)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.5)

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{kind="centrace"} 2`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("handler body missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsHandlerNilRegistry: a nil registry serves an empty but
// correctly typed exposition instead of panicking.
func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("nil registry body = %q, want empty", rec.Body.String())
	}
}
