package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"cendev/internal/vfs"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Histograms render cumulative le-buckets plus _sum and _count;
// the volatile runtime series are included with a marker comment.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	write := func(ms []MetricSnap) error {
		lastName := ""
		for _, m := range ms {
			if m.Name != lastName {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
					return err
				}
				lastName = m.Name
			}
			switch m.Kind {
			case "histogram":
				cum := int64(0)
				for _, b := range m.Buckets {
					cum += b.Count
					le := "+Inf"
					if b.Upper != infBucket {
						le = trimFloat(b.Upper)
					}
					ls := append(append([]Label(nil), m.Labels...), L("le", le))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(ls), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels), trimFloat(m.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels), m.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, promLabels(m.Labels), m.Value); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := write(s.Metrics); err != nil {
		return err
	}
	if len(s.Runtime) > 0 {
		if _, err := fmt.Fprintln(w, "# runtime (scheduling-dependent) series"); err != nil {
			return err
		}
		if err := write(s.Runtime); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders a Prometheus label set, empty string when no labels.
func promLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + `="` + promEscape(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promEscape escapes a label value per the Prometheus text exposition
// format: exactly backslash, double-quote, and line-feed are escaped.
// Go's %q is close but not conformant — it also escapes tabs and
// non-printable bytes as \t/\xNN, sequences a Prometheus parser reads as
// a literal backslash followed by junk.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// trimFloat renders a float without trailing zeros (0.02, not 0.020000).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// WriteReport writes the human-readable end-of-run report: series grouped
// by subsystem prefix (the metric name up to the first underscore), with
// histograms summarized as count/sum/mean. Volatile runtime series are
// reported in their own section.
func (s Snapshot) WriteReport(w io.Writer) {
	fmt.Fprintln(w, "── run report ──────────────────────────────────────")
	writeGroup(w, s.Metrics)
	if len(s.Runtime) > 0 {
		fmt.Fprintln(w, "── runtime (scheduling-dependent) ──────────────────")
		writeGroup(w, s.Runtime)
	}
}

func writeGroup(w io.Writer, ms []MetricSnap) {
	groups := map[string][]MetricSnap{}
	var order []string
	for _, m := range ms {
		g := m.Name
		if i := strings.IndexByte(g, '_'); i > 0 {
			g = g[:i]
		}
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], m)
	}
	sort.Strings(order)
	for _, g := range order {
		fmt.Fprintf(w, "%s:\n", g)
		for _, m := range groups[g] {
			name := m.Name
			if lbl := labelString(m.Labels); lbl != "" {
				name += "{" + lbl + "}"
			}
			switch m.Kind {
			case "histogram":
				mean := 0.0
				if m.Count > 0 {
					mean = m.Sum / float64(m.Count)
				}
				fmt.Fprintf(w, "  %-64s count=%d sum=%s mean=%s\n",
					name, m.Count, trimFloat(m.Sum), trimFloat(mean))
			default:
				fmt.Fprintf(w, "  %-64s %d\n", name, m.Value)
			}
		}
	}
}

// WriteTrace writes the tracer's canonical span forest as indented JSON.
func WriteTrace(w io.Writer, t *Tracer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	spans := t.Snapshot()
	if spans == nil {
		spans = []SpanSnap{}
	}
	return enc.Encode(struct {
		Spans []SpanSnap `json:"spans"`
	}{spans})
}

// DumpFiles writes the end-of-run artifacts the CLIs' -metrics-out and
// -trace-out flags request to the real filesystem. See DumpFilesFS.
func DumpFiles(reg *Registry, tr *Tracer, metricsPath, tracePath string) error {
	return DumpFilesFS(vfs.OS(), reg, tr, metricsPath, tracePath)
}

// DumpFilesFS writes the end-of-run artifacts. Metrics are written as
// JSON unless the path ends in .prom or .txt, in which case the
// Prometheus text format is used; traces are always JSON. Empty paths
// and nil handles are skipped. Both artifacts go through the
// temp+fsync+rename recipe: these dumps often run from a signal handler
// on the way down, and a consumer must never scrape a torn file — it
// sees the previous complete artifact or the new one, nothing between.
func DumpFilesFS(fsys vfs.FS, reg *Registry, tr *Tracer, metricsPath, tracePath string) error {
	if reg != nil && metricsPath != "" {
		snap := reg.FullSnapshot()
		err := vfs.WriteFileDurable(fsys, metricsPath, func(w io.Writer) error {
			if strings.HasSuffix(metricsPath, ".prom") || strings.HasSuffix(metricsPath, ".txt") {
				return snap.WritePrometheus(w)
			}
			return snap.WriteJSON(w)
		})
		if err != nil {
			return fmt.Errorf("obs: writing metrics to %s: %w", metricsPath, err)
		}
	}
	if tr != nil && tracePath != "" {
		err := vfs.WriteFileDurable(fsys, tracePath, func(w io.Writer) error {
			return WriteTrace(w, tr)
		})
		if err != nil {
			return fmt.Errorf("obs: writing trace to %s: %w", tracePath, err)
		}
	}
	return nil
}

// TimeBuckets are the default histogram bounds for virtual or wall
// durations in seconds, spanning microseconds to the paper's 120-second
// stateful-blocking waits.
var TimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1, 10, 60, 120, 600}

// CountBuckets are the default histogram bounds for small event counts
// (retries, attempts).
var CountBuckets = []float64{0, 1, 2, 3, 5, 8, 13, 21}

// ScoreBuckets are the default histogram bounds for [0,1] scores
// (confidence).
var ScoreBuckets = []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1}
