// Package obs is the observability layer of the measurement system: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// whose snapshots are deterministic — sorted names, canonical label
// ordering, integer-accumulated histogram sums — so they can be asserted
// byte-for-byte in tests, plus a run-scoped span tracer driven by the
// simulator's virtual clock (see trace.go) and exposition in JSON,
// Prometheus text format, and a human-readable end-of-run report (see
// expose.go).
//
// Determinism contract: every metric registered through Counter, Gauge,
// or Histogram must be driven only by virtual-clock-deterministic events
// (packet walks, fault decisions, probe verdicts), so the deterministic
// snapshot is byte-identical for the same scenario and seed at any worker
// count. Metrics that depend on wall-clock time or goroutine scheduling —
// per-worker utilization, queue wait — must be registered through the
// Volatile* variants; they are excluded from Snapshot and reported in a
// separate runtime section.
//
// The nil registry is a no-op: every method on a nil *Registry returns a
// nil metric handle, and every operation on a nil handle does nothing, so
// uninstrumented runs pay only a pointer test per event.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric or a span attribute.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sumScale is the fixed-point scale histogram sums accumulate at.
// Integer accumulation keeps the sum associative — and therefore
// independent of the order concurrent workers observe values in — which
// float64 addition is not.
const sumScale = 1e6

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with Prometheus "le" semantics:
// an observation lands in the first bucket whose upper bound is >= the
// value; values above every bound land in the implicit +Inf bucket. The
// sum accumulates in fixed-point micro-units so concurrent observation
// order cannot perturb it.
type Histogram struct {
	uppers []float64
	counts []atomic.Int64 // len(uppers)+1; last is +Inf
	sum    atomic.Int64   // fixed-point, sumScale units
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(v * sumScale))
}

// ObserveDuration records a duration in seconds. No-op on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / sumScale
}

// metricKind discriminates the three metric types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a name, a canonical label set, and the
// typed handle.
type metric struct {
	name     string
	labels   []Label // sorted by key
	kind     metricKind
	volatile bool
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// Registry is a concurrency-safe metric registry. Handles are get-or-
// create: the same (name, labels) always returns the same handle, so
// worker clones sharing a registry aggregate into the same series.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// canonical sorts a copy of the labels by key and renders the series key.
func canonical(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// lookup returns the series for (name, labels), creating it on first use.
// A kind mismatch on an existing name is a programming error and panics.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, volatile bool, uppers []float64) *metric {
	key, ls := canonical(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: ls, kind: kind, volatile: volatile}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		h := &Histogram{uppers: append([]float64(nil), uppers...)}
		h.counts = make([]atomic.Int64, len(h.uppers)+1)
		m.h = h
	}
	r.metrics[key] = m
	return m
}

// Counter returns the deterministic counter for (name, labels). Nil
// registry → nil handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, false, nil).c
}

// Gauge returns the deterministic gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, false, nil).g
}

// Histogram returns the deterministic histogram for (name, labels). The
// bucket bounds are fixed at first registration; later callers get the
// existing series regardless of the buckets they pass.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, false, buckets).h
}

// VolatileCounter is Counter for scheduling-dependent series (excluded
// from the deterministic snapshot).
func (r *Registry) VolatileCounter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, true, nil).c
}

// VolatileGauge is Gauge for scheduling-dependent series.
func (r *Registry) VolatileGauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, true, nil).g
}

// VolatileHistogram is Histogram for scheduling-dependent series (e.g.
// wall-clock queue wait).
func (r *Registry) VolatileHistogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, true, buckets).h
}

// BucketSnap is one histogram bucket in a snapshot: the cumulative-style
// upper bound and the non-cumulative count of observations that landed in
// it. Upper is +Inf for the overflow bucket.
type BucketSnap struct {
	Upper float64 `json:"upper"`
	Count int64   `json:"count"`
}

// MetricSnap is one series in a snapshot.
type MetricSnap struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Labels  []Label      `json:"labels,omitempty"`
	Value   int64        `json:"value,omitempty"` // counter, gauge
	Count   int64        `json:"count,omitempty"` // histogram
	Sum     float64      `json:"sum,omitempty"`   // histogram
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time view of a registry, in a stable order:
// sorted by name, then by the canonical label rendering.
type Snapshot struct {
	Metrics []MetricSnap `json:"metrics"`
	// Runtime holds the volatile (scheduling-dependent) series. Empty in
	// deterministic snapshots.
	Runtime []MetricSnap `json:"runtime,omitempty"`
}

// snap renders one metric.
func (m *metric) snap() MetricSnap {
	s := MetricSnap{Name: m.name, Kind: m.kind.String(), Labels: m.labels}
	switch m.kind {
	case kindCounter:
		s.Value = m.c.Value()
	case kindGauge:
		s.Value = m.g.Value()
	case kindHistogram:
		s.Count = m.h.Count()
		s.Sum = m.h.Sum()
		for i := range m.h.counts {
			b := BucketSnap{Count: m.h.counts[i].Load()}
			if i < len(m.h.uppers) {
				b.Upper = m.h.uppers[i]
			} else {
				b.Upper = infBucket
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

// infBucket marks the overflow bucket's upper bound in snapshots. JSON
// cannot carry +Inf, so the snapshot uses a sentinel; the Prometheus
// writer renders it as +Inf.
const infBucket = -1

// Snapshot returns the deterministic series only, in stable order. For
// the same scenario and seed this is byte-identical (after JSON encoding)
// at any worker count.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(false) }

// FullSnapshot returns the deterministic series plus the volatile runtime
// series (worker utilization, queue wait), the latter under Runtime.
func (r *Registry) FullSnapshot() Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(includeVolatile bool) Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return labelString(ms[i].labels) < labelString(ms[j].labels)
	})
	for _, m := range ms {
		if m.volatile {
			if includeVolatile {
				s.Runtime = append(s.Runtime, m.snap())
			}
			continue
		}
		s.Metrics = append(s.Metrics, m.snap())
	}
	return s
}

// labelString renders labels as k=v,k=v for sorting and exposition.
func labelString(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// Get returns the deterministic snapshot entry for (name, labels), if the
// series exists — the assertion helper tests use.
func (s Snapshot) Get(name string, labels ...Label) (MetricSnap, bool) {
	_, ls := canonical(name, labels)
	want := labelString(ls)
	for _, m := range s.Metrics {
		if m.Name == name && labelString(m.Labels) == want {
			return m, true
		}
	}
	for _, m := range s.Runtime {
		if m.Name == name && labelString(m.Labels) == want {
			return m, true
		}
	}
	return MetricSnap{}, false
}
