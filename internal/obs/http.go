package obs

import "net/http"

// PromContentType is the content type of the Prometheus text exposition
// format, version 0.0.4 — what a scraping Prometheus expects from a
// /metrics endpoint.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry's full snapshot
// (deterministic plus runtime series) in the Prometheus text exposition
// format — the /metrics endpoint of the orchestration service. A nil
// registry serves an empty, still well-formed exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		if r == nil {
			return
		}
		// A write error here means the scraper hung up; it sees a short
		// read and retries next interval.
		_ = r.FullSnapshot().WritePrometheus(w)
	})
}
