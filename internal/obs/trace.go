package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer records a run-scoped tree of spans stamped with the simulator's
// virtual clock. Because every measurement rewinds its worker clone to a
// canonical virtual start time, the set of spans — names, attributes,
// start/end times, parent links — is identical at any worker count; only
// the order goroutines happen to append them varies. Snapshot therefore
// sorts the tree canonically, making the serialized trace byte-
// reproducible for the same scenario and seed.
//
// A nil *Tracer is a no-op: Start returns a nil *Span, and every method
// on a nil *Span does nothing, so uninstrumented runs pay only a pointer
// test per span site.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is one timed operation in the trace tree. Spans are created via
// Tracer.Start or Span.StartChild and closed with End; both take virtual
// timestamps (typically simnet.Network.Now).
type Span struct {
	t     *Tracer
	name  string
	start time.Duration
	end   time.Duration
	attrs []Label
	// buf backs attrs for the common ≤2-attribute span (a probe carries
	// ttl+kind, a target carries its key), so hot-path spans cost a single
	// allocation: copying the variadic attrs in here also keeps the
	// caller's argument slice off the heap.
	buf      [2]Label
	children []*Span
}

// newSpan allocates a span with its attributes copied into the inline
// buffer when they fit.
func newSpan(t *Tracer, name string, at time.Duration, attrs []Label) *Span {
	s := &Span{t: t, name: name, start: at, end: at}
	s.attrs = append(s.buf[:0:len(s.buf)], attrs...)
	return s
}

// Start opens a root span at virtual time `at`.
func (t *Tracer) Start(name string, at time.Duration, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(t, name, at, attrs)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// StartChild opens a span nested under s at virtual time `at`. Safe to
// call from concurrent workers sharing the parent.
func (s *Span) StartChild(name string, at time.Duration, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.t, name, at, attrs)
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// SetAttr records an attribute on the span. Like End, it may only be
// called by the goroutine that owns the span (the one that created it):
// the tracer lock guards only the sibling lists, which concurrent workers
// share, not the fields of an individual span — each span is mutated by
// exactly one goroutine, and the pool join before Snapshot publishes the
// writes.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// End closes the span at virtual time `at`. Owner-only, like SetAttr.
func (s *Span) End(at time.Duration) {
	if s == nil {
		return
	}
	s.end = at
}

// SpanSnap is one span in a canonical trace snapshot. IDs are assigned in
// pre-order over the sorted tree, so they too are deterministic.
type SpanSnap struct {
	ID       int        `json:"id"`
	Name     string     `json:"name"`
	StartNS  int64      `json:"start_ns"`
	EndNS    int64      `json:"end_ns"`
	Attrs    []Label    `json:"attrs,omitempty"`
	Children []SpanSnap `json:"children,omitempty"`
}

// Snapshot returns the canonical span forest: siblings sorted by (start,
// name, attributes, end), attributes sorted by key, IDs assigned in
// pre-order. For a deterministic measurement run the result is identical
// at any worker count. Call it only after the goroutines producing spans
// have been joined — open spans may still be mutated by their owners.
func (t *Tracer) Snapshot() []SpanSnap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next := 0
	return snapSpans(t.roots, &next)
}

func snapSpans(spans []*Span, next *int) []SpanSnap {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSnap, 0, len(spans))
	for _, s := range spans {
		attrs := append([]Label(nil), s.attrs...)
		sort.Slice(attrs, func(i, j int) bool {
			if attrs[i].Key != attrs[j].Key {
				return attrs[i].Key < attrs[j].Key
			}
			return attrs[i].Value < attrs[j].Value
		})
		out = append(out, SpanSnap{
			Name:    s.name,
			StartNS: int64(s.start),
			EndNS:   int64(s.end),
			Attrs:   attrs,
			// Children filled after sorting the siblings.
		})
	}
	// Sort siblings canonically, carrying the original span pointers along
	// via index pairs so children snapshot in sorted parent order.
	idx := make([]int, len(spans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := out[idx[a]], out[idx[b]]
		if x.StartNS != y.StartNS {
			return x.StartNS < y.StartNS
		}
		if x.Name != y.Name {
			return x.Name < y.Name
		}
		if ax, ay := attrString(x.Attrs), attrString(y.Attrs); ax != ay {
			return ax < ay
		}
		return x.EndNS < y.EndNS
	})
	sorted := make([]SpanSnap, len(out))
	for pos, i := range idx {
		sorted[pos] = out[i]
		*next++
		sorted[pos].ID = *next
		sorted[pos].Children = snapSpans(spans[i].children, next)
	}
	return sorted
}

// attrString renders attributes for sibling ordering.
func attrString(ls []Label) string { return labelString(ls) }

// smallInts caches the decimal renderings used by hot-path span attributes
// (TTLs, pass numbers) so stamping one costs no allocation.
var smallInts = func() [256]string {
	var t [256]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

// SmallInt renders i in decimal, allocation-free for 0 ≤ i < 256 — for
// span attributes stamped once per probe.
func SmallInt(i int) string {
	if i >= 0 && i < len(smallInts) {
		return smallInts[i]
	}
	return strconv.Itoa(i)
}

// SpanCount returns the total number of spans recorded (0 for nil).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	var walk func([]*Span)
	walk = func(ss []*Span) {
		for _, s := range ss {
			n++
			walk(s.children)
		}
	}
	walk(t.roots)
	return n
}
