package obs

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// CLIFlags bundles the observability flags every command registers:
// -metrics-out, -trace-out, and -obs-report. The registry and tracer are
// created lazily, only when the matching output was requested, so an
// unobserved run keeps the nil no-op instrumentation path everywhere.
type CLIFlags struct {
	MetricsOut string
	TraceOut   string
	Report     bool

	reg *Registry
	tr  *Tracer
}

// RegisterCLIFlags registers the observability flags on a flag set
// (flag.CommandLine for the usual CLI entrypoint) and returns the holder
// to query after fs.Parse.
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.StringVar(&c.MetricsOut, "metrics-out", "",
		"write end-of-run metrics to this path (JSON; .prom/.txt selects Prometheus text format)")
	fs.StringVar(&c.TraceOut, "trace-out", "",
		"write the canonical span trace to this path as JSON")
	fs.BoolVar(&c.Report, "obs-report", false,
		"print the end-of-run metrics report to stderr")
	return c
}

// Registry returns the metrics registry to thread through the run,
// creating it on first call when -metrics-out or -obs-report was given.
// Returns nil — the no-op instrumentation path — otherwise.
func (c *CLIFlags) Registry() *Registry {
	if c.reg == nil && (c.MetricsOut != "" || c.Report) {
		c.reg = NewRegistry()
	}
	return c.reg
}

// Tracer returns the span tracer to thread through the run, creating it on
// first call when -trace-out was given. Returns nil (no-op) otherwise.
func (c *CLIFlags) Tracer() *Tracer {
	if c.tr == nil && c.TraceOut != "" {
		c.tr = NewTracer()
	}
	return c.tr
}

// Finish writes the requested artifacts: the stderr report first, then the
// metrics and trace files.
func (c *CLIFlags) Finish() error {
	if c.Report && c.reg != nil {
		c.reg.FullSnapshot().WriteReport(os.Stderr)
	}
	return DumpFiles(c.reg, c.tr, c.MetricsOut, c.TraceOut)
}

// FlushOnSignal installs a SIGINT/SIGTERM handler that flushes the
// observability artifacts — plus any extra flush funcs the caller needs
// durable, such as an open campaign journal — before exiting nonzero with
// the conventional 128+signal code. Without it, interrupting a long
// campaign loses the partially collected -metrics-out/-trace-out files
// and the unsynced journal tail. The registry and tracer are safe to
// snapshot concurrently with a still-running measurement, so the handler
// flushes whatever has been recorded up to the interrupt.
func (c *CLIFlags) FlushOnSignal(extra ...func() error) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "\ninterrupted (%v); flushing journal and observability artifacts\n", sig)
		code := 130 // 128+SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		for _, f := range extra {
			if err := f(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if err := c.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(code)
	}()
}
