package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketEdges pins the "le" semantics: a value exactly on a
// bucket's upper bound lands in that bucket, a hair above lands in the
// next, and anything above every bound lands in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", []float64{1, 2, 5})
	for _, v := range []float64{0, 1, 1.0001, 2, 2.5, 5, 5.0001, 100} {
		h.Observe(v)
	}
	m, ok := r.Snapshot().Get("edge_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []int64{2, 2, 2, 2} // [≤1, ≤2, ≤5, +Inf]
	if len(m.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %d, want %d", len(m.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if m.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, m.Buckets[i].Count, want)
		}
	}
	if m.Buckets[3].Upper != infBucket {
		t.Errorf("overflow bucket upper = %v, want sentinel %v", m.Buckets[3].Upper, float64(infBucket))
	}
	if m.Count != 8 {
		t.Errorf("count = %d, want 8", m.Count)
	}
	const wantSum = 0 + 1 + 1.0001 + 2 + 2.5 + 5 + 5.0001 + 100
	if diff := m.Sum - wantSum; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("sum = %v, want %v", m.Sum, wantSum)
	}
	if h.Count() != 8 {
		t.Errorf("handle Count = %d, want 8", h.Count())
	}
}

// TestHistogramDuration covers the duration shim.
func TestHistogramDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", TimeBuckets)
	h.ObserveDuration(120 * time.Second)
	if got := h.Sum(); got != 120 {
		t.Errorf("sum = %v, want 120", got)
	}
}

// TestNilSafety: every handle method and snapshot call must be a no-op on
// the nil registry — the uninstrumented path the whole codebase relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", CountBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var tr *Tracer
	sp := tr.Start("root", 0)
	sp.SetAttr("k", "v")
	child := sp.StartChild("child", 1)
	child.End(2)
	sp.End(3)
	if tr.Snapshot() != nil || tr.SpanCount() != 0 {
		t.Error("nil tracer must stay empty")
	}
}

// TestSnapshotCanonicalOrder: registration order and label argument order
// must not leak into the snapshot.
func TestSnapshotCanonicalOrder(t *testing.T) {
	build := func(flip bool) []byte {
		r := NewRegistry()
		if flip {
			r.Counter("z_total").Inc()
			r.Counter("a_total", L("x", "1"), L("b", "2")).Inc()
			r.Counter("a_total", L("b", "1"), L("x", "2")).Inc()
		} else {
			r.Counter("a_total", L("x", "2"), L("b", "1")).Inc()
			r.Counter("a_total", L("b", "2"), L("x", "1")).Inc()
			r.Counter("z_total").Inc()
		}
		raw, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return raw
	}
	if a, b := build(false), build(true); !bytes.Equal(a, b) {
		t.Errorf("snapshot depends on registration order:\n%s\n%s", a, b)
	}
}

// TestVolatileSeparation: Volatile* series stay out of the deterministic
// snapshot and show up under Runtime in the full one.
func TestVolatileSeparation(t *testing.T) {
	r := NewRegistry()
	r.Counter("det_total").Inc()
	r.VolatileCounter("sched_total").Inc()
	r.VolatileGauge("sched_workers").Set(4)
	r.VolatileHistogram("sched_wait_seconds", TimeBuckets).Observe(0.5)

	det := r.Snapshot()
	if len(det.Metrics) != 1 || det.Metrics[0].Name != "det_total" {
		t.Fatalf("deterministic snapshot = %+v, want only det_total", det.Metrics)
	}
	if len(det.Runtime) != 0 {
		t.Error("deterministic snapshot must not carry runtime series")
	}
	full := r.FullSnapshot()
	if len(full.Runtime) != 3 {
		t.Fatalf("runtime series = %d, want 3", len(full.Runtime))
	}
	if _, ok := full.Get("sched_workers"); !ok {
		t.Error("Get should find volatile series in a full snapshot")
	}
}

// TestKindMismatchPanics: re-registering a name under a different kind is
// a programming error the registry refuses to mask.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("gauge re-registration of a counter should panic")
		}
	}()
	r.Gauge("x_total")
}

// TestRegistryConcurrency hammers get-or-create and the handle ops from
// many goroutines. Under -race this proves the lock covers the map and the
// atomics carry the rest; the exact final values prove no update was lost.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines, perG = 16, 500
	r := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("hammer_total", L("shard", "a")).Inc()
				r.Histogram("hammer_seconds", []float64{0.5}).Observe(0.25)
				r.Gauge("hammer_gauge").Set(1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammer_total", L("shard", "a")).Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("hammer_seconds", nil)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if want := 0.25 * goroutines * perG; h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v (fixed-point accumulation must be exact)", h.Sum(), want)
	}
}

// TestTracerCanonicalSnapshot: sibling append order — the one thing worker
// scheduling can perturb — must not change the snapshot.
func TestTracerCanonicalSnapshot(t *testing.T) {
	build := func(order []int) []byte {
		tr := NewTracer()
		root := tr.Start("root", 0)
		for _, i := range order {
			attrs := []Label{L("target", string(rune('a'+i)))}
			s := root.StartChild("child", time.Duration(0), attrs...)
			s.StartChild("grand", time.Duration(i+1)*time.Millisecond).End(time.Duration(i+2) * time.Millisecond)
			s.End(time.Duration(i+10) * time.Millisecond)
		}
		root.End(time.Second)
		raw, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return raw
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if !bytes.Equal(a, b) {
		t.Errorf("span snapshot depends on append order:\n%s\n%s", a, b)
	}
}

// TestTracerPreOrderIDs: IDs number the sorted tree in pre-order.
func TestTracerPreOrderIDs(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root", 0)
	c2 := root.StartChild("b", 2)
	c1 := root.StartChild("a", 1)
	c1.StartChild("a1", 1).End(2)
	c2.End(3)
	c1.End(3)
	root.End(4)

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap))
	}
	r := snap[0]
	if r.ID != 1 {
		t.Errorf("root ID = %d, want 1", r.ID)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "a" || r.Children[1].Name != "b" {
		t.Fatalf("children not sorted by start: %+v", r.Children)
	}
	if r.Children[0].ID != 2 || r.Children[0].Children[0].ID != 3 || r.Children[1].ID != 4 {
		t.Errorf("IDs not pre-order: a=%d a1=%d b=%d, want 2 3 4",
			r.Children[0].ID, r.Children[0].Children[0].ID, r.Children[1].ID)
	}
	if tr.SpanCount() != 4 {
		t.Errorf("SpanCount = %d, want 4", tr.SpanCount())
	}
}

// TestPrometheusExposition: cumulative le buckets, +Inf rendering, _sum and
// _count lines, and the runtime marker.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", L("kind", "a")).Add(3)
	h := r.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	r.VolatileGauge("workers").Set(2)

	var b strings.Builder
	if err := r.FullSnapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`reqs_total{kind="a"} 3`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_sum 11`,
		`lat_seconds_count 3`,
		"# runtime (scheduling-dependent) series",
		"workers 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestReportAndJSON smoke-covers the remaining writers.
func TestReportAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("simnet_packets_total").Add(7)
	r.Histogram("centrace_probe_seconds", []float64{1}).Observe(0.5)
	var rep strings.Builder
	r.FullSnapshot().WriteReport(&rep)
	if !strings.Contains(rep.String(), "simnet") || !strings.Contains(rep.String(), "count=1") {
		t.Errorf("report missing expected lines:\n%s", rep.String())
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("json: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(s.Metrics) != 2 {
		t.Errorf("round-tripped metrics = %d, want 2", len(s.Metrics))
	}

	tr := NewTracer()
	tr.Start("root", 0).End(1)
	buf.Reset()
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(buf.String(), `"name": "root"`) {
		t.Errorf("trace JSON missing root span:\n%s", buf.String())
	}
}
