package routedyn

import (
	"bytes"
	"testing"
	"time"

	"cendev/internal/wire"
)

// FuzzRouteEventReplay drives the event-journal parser with arbitrary
// bytes. Invariants: ReadJournal never panics or errors (corruption is
// warnings + a shorter replay, never a crash); every event it does return
// survives an encode/decode round trip bit-for-bit; and re-serializing
// the replayed events is idempotent.
func FuzzRouteEventReplay(f *testing.F) {
	seed := func(evs ...Event) []byte {
		var rec, out []byte
		for _, ev := range evs {
			rec = AppendEvent(rec[:0], ev)
			out = wire.AppendFrame(out, rec)
		}
		return out
	}
	f.Add(seed(Event{At: 5 * time.Second, Kind: Withdraw, From: "r1", To: "r2a"}))
	f.Add(seed(
		Event{At: time.Second, Kind: Rehash},
		Event{At: 2 * time.Second, Kind: Announce, From: "a", To: "b"},
	))
	f.Add([]byte{})
	f.Add([]byte{0xC5, 'c', 'w', '1', 0x05, 1, 0, 0, 0, 0})
	f.Add(wire.AppendFrame(nil, []byte{journalVersion, 7, 0, 0, 0}))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, _, err := ReadJournal(data)
		if err != nil {
			t.Fatalf("ReadJournal returned an error on arbitrary input: %v", err)
		}
		var rec, out []byte
		for _, ev := range events {
			rec = AppendEvent(rec[:0], ev)
			back, decErr := DecodeEvent(rec)
			if decErr != nil {
				t.Fatalf("replayed event %+v does not re-decode: %v", ev, decErr)
			}
			if back != ev {
				t.Fatalf("round trip changed event: %+v -> %+v", ev, back)
			}
			out = wire.AppendFrame(out, rec)
		}
		again, _, err := ReadJournal(out)
		if err != nil {
			t.Fatalf("re-serialized journal failed to parse: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-serialized journal replayed %d events, want %d", len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("re-serialized event %d diverged", i)
			}
		}
		var b1, b2 bytes.Buffer
		for _, ev := range events {
			b1.Write(wire.AppendFrame(nil, AppendEvent(nil, ev)))
		}
		for _, ev := range again {
			b2.Write(wire.AppendFrame(nil, AppendEvent(nil, ev)))
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("journal serialization is not idempotent")
		}
	})
}
