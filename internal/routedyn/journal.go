// Route-event journal: the schedule serialized as internal/wire frames,
// one event per frame, in application order. A journal plus a seed fully
// determines an engine — and therefore every epoch graph and ECMP salt —
// so a run's path history replays byte-identically at any worker count.
//
// Frame payload layout (all integers uvarint unless noted):
//
//	byte    version (1)
//	byte    kind (Withdraw=0, Announce=1, Rehash=2)
//	uvarint at, in nanoseconds of virtual time
//	string  from (uvarint length + bytes; empty for Rehash)
//	string  to
//
// The wire framing supplies the marker, length prefix, and CRC, and its
// reader's resync/torn-tail handling applies unchanged: a journal with a
// torn final frame replays every complete event and reports the tear.
package routedyn

import (
	"fmt"
	"io"
	"time"

	"cendev/internal/wire"
)

// journalVersion is the event-record layout version.
const journalVersion = 1

// maxEventPayload bounds a single event record. Router IDs are short
// strings; anything near this limit is a corrupt or hostile record.
const maxEventPayload = 4096

// AppendEvent encodes one event record (unframed) onto dst.
func AppendEvent(dst []byte, ev Event) []byte {
	dst = append(dst, journalVersion, byte(ev.Kind))
	dst = wire.AppendUvarint(dst, uint64(ev.At))
	dst = wire.AppendString(dst, ev.From)
	dst = wire.AppendString(dst, ev.To)
	return dst
}

// DecodeEvent parses one event record produced by AppendEvent.
func DecodeEvent(payload []byte) (Event, error) {
	if len(payload) > maxEventPayload {
		return Event{}, fmt.Errorf("routedyn: event record %d bytes exceeds limit %d", len(payload), maxEventPayload)
	}
	d := wire.NewDec(payload)
	ver := d.Byte()
	kind := d.Byte()
	at := d.Uvarint()
	from := d.String()
	to := d.String()
	if err := d.Err(); err != nil {
		return Event{}, fmt.Errorf("routedyn: decode event: %w", err)
	}
	if ver != journalVersion {
		return Event{}, fmt.Errorf("routedyn: event version %d, want %d", ver, journalVersion)
	}
	if kind > uint8(Rehash) {
		return Event{}, fmt.Errorf("routedyn: unknown event kind %d", kind)
	}
	if d.Len() != 0 {
		return Event{}, fmt.Errorf("routedyn: %d trailing bytes after event record", d.Len())
	}
	if at > uint64(1<<62) {
		return Event{}, fmt.Errorf("routedyn: event time %d overflows virtual time", at)
	}
	return Event{At: time.Duration(at), Kind: EventKind(kind), From: from, To: to}, nil
}

// WriteJournal serializes the schedule in application order.
func (e *Engine) WriteJournal(w io.Writer) error {
	var frame, rec []byte
	for _, ev := range e.events {
		rec = AppendEvent(rec[:0], ev)
		frame = wire.AppendFrame(frame[:0], rec)
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("routedyn: write journal: %w", err)
		}
	}
	return nil
}

// ReadJournal parses a journal byte stream back into events, in journal
// order. Undecodable complete frames are reported as warnings and
// skipped, mirroring the wire reader's own corruption handling; a torn
// final frame is likewise a warning, not an error, so a journal cut mid
// write still replays its complete prefix.
func ReadJournal(data []byte) (events []Event, warnings []string, err error) {
	r := wire.NewReader(data)
	for {
		payload, ok := r.Next()
		if !ok {
			break
		}
		ev, decErr := DecodeEvent(payload)
		if decErr != nil {
			warnings = append(warnings, decErr.Error())
			continue
		}
		events = append(events, ev)
	}
	warnings = append(warnings, r.Warnings()...)
	if _, torn := r.Torn(); torn {
		warnings = append(warnings, "routedyn: journal tail torn; replayed complete prefix")
	}
	return events, warnings, nil
}

// ScheduleFromJournal replays a journal into the engine. Events the
// engine rejects (unknown routers for this base graph, zero times) are
// returned as warnings alongside the parser's own.
func (e *Engine) ScheduleFromJournal(data []byte) (warnings []string, err error) {
	events, warnings, err := ReadJournal(data)
	if err != nil {
		return warnings, err
	}
	for _, ev := range events {
		if schedErr := e.Schedule(ev); schedErr != nil {
			warnings = append(warnings, schedErr.Error())
		}
	}
	return warnings, nil
}
