// Package routedyn is the seeded route-dynamics engine: BGP-style
// announcements and withdrawals scheduled in virtual time over an
// internal/topology graph, with epoched path recomputation and per-epoch
// ECMP re-hash salts. The paper localizes devices over a static topology;
// real censorship moves with routing — "A Churn for the Better" localizes
// devices *from* path churn, and "Routing-Induced Censorship Changes"
// shows BGP shifts moving clients in and out of censorship entirely. This
// engine generates that churn deterministically: the event schedule
// partitions virtual time into epochs, each epoch lazily snapshots a
// private graph clone with the scheduled link state applied, and every
// epoch past the first perturbs ECMP choices with a salt derived from
// (seed, epoch) alone. The same schedule and seed therefore produce
// byte-identical path histories at any worker count, and the event
// journal (journal.go) makes a run's schedule replayable after the fact.
//
// Concurrency: an Engine is not safe for concurrent use, by design — the
// simulator gives every measurement worker a private network clone, and
// Clone rebinds the engine to the clone's graph. Epoch snapshots taken
// from a base graph are safe against concurrent path computation on that
// base (topology.Graph.Clone locks the graph's cache mutex).
package routedyn

import (
	"fmt"
	"sort"
	"time"

	"cendev/internal/topology"
)

// EventKind classifies a scheduled route event.
type EventKind uint8

const (
	// Withdraw takes the link down: routing computes as if it were absent.
	Withdraw EventKind = iota
	// Announce brings a previously withdrawn link back up.
	Announce
	// Rehash changes no link state but still opens a new epoch, re-rolling
	// every ECMP choice — the pure tie-break churn of a BGP best-path
	// change that does not alter the available links.
	Rehash
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Withdraw:
		return "withdraw"
	case Announce:
		return "announce"
	case Rehash:
		return "rehash"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled route change. From/To name the undirected link
// (empty for Rehash). Events at the same virtual time apply in schedule
// order within one epoch.
type Event struct {
	At   time.Duration
	Kind EventKind
	From string
	To   string
}

// Engine holds a route-event schedule bound to a base graph. Epochs are
// the half-open intervals between distinct event times; epoch 0 is the
// canonical pre-churn routing (salt 0, the base graph itself), so a
// network with an empty schedule behaves exactly as one with no engine.
type Engine struct {
	seed   int64
	base   *topology.Graph
	events []Event // sorted by At, stable in schedule order
	// starts[i] is epoch i's first instant; starts[0] is always 0.
	starts []time.Duration
	epochs []*Epoch // lazily built snapshots, parallel to starts
}

// NewEngine binds an empty schedule to a base graph. The seed roots every
// per-epoch ECMP salt.
func NewEngine(seed int64, base *topology.Graph) *Engine {
	return &Engine{seed: seed, base: base, starts: []time.Duration{0}}
}

// Seed returns the engine's salt seed.
func (e *Engine) Seed() int64 { return e.seed }

// Schedule adds one event and rebuilds the epoch boundaries. Events at or
// before virtual time zero are rejected: epoch 0 is by definition the
// canonical pre-churn state. Link events must name two distinct routers
// present in the base graph.
func (e *Engine) Schedule(ev Event) error {
	if ev.At <= 0 {
		return fmt.Errorf("routedyn: event at %v: epoch 0 is canonical, events must be after time zero", ev.At)
	}
	switch ev.Kind {
	case Withdraw, Announce:
		if ev.From == "" || ev.To == "" || ev.From == ev.To {
			return fmt.Errorf("routedyn: %s event needs two distinct routers, got %q <-> %q", ev.Kind, ev.From, ev.To)
		}
		if e.base.Router(ev.From) == nil {
			return fmt.Errorf("routedyn: %s event: unknown router %q", ev.Kind, ev.From)
		}
		if e.base.Router(ev.To) == nil {
			return fmt.Errorf("routedyn: %s event: unknown router %q", ev.Kind, ev.To)
		}
		if !e.base.Linked(ev.From, ev.To) {
			return fmt.Errorf("routedyn: %s event: no link %q <-> %q", ev.Kind, ev.From, ev.To)
		}
	case Rehash:
		if ev.From != "" || ev.To != "" {
			return fmt.Errorf("routedyn: rehash event carries no link, got %q <-> %q", ev.From, ev.To)
		}
	default:
		return fmt.Errorf("routedyn: unknown event kind %d", ev.Kind)
	}
	e.events = append(e.events, ev)
	sort.SliceStable(e.events, func(i, j int) bool { return e.events[i].At < e.events[j].At })
	e.rebuildStarts()
	return nil
}

// MustSchedule is Schedule for statically correct schedules (scenario
// builders); it panics on error.
func (e *Engine) MustSchedule(ev Event) *Engine {
	if err := e.Schedule(ev); err != nil {
		panic(err)
	}
	return e
}

// FlapLink schedules `cycles` withdraw/announce pairs for one link: down
// at firstDown, up again half a period later, repeating every period.
func (e *Engine) FlapLink(from, to string, firstDown, period time.Duration, cycles int) error {
	for c := 0; c < cycles; c++ {
		at := firstDown + time.Duration(c)*period
		if err := e.Schedule(Event{At: at, Kind: Withdraw, From: from, To: to}); err != nil {
			return err
		}
		if err := e.Schedule(Event{At: at + period/2, Kind: Announce, From: from, To: to}); err != nil {
			return err
		}
	}
	return nil
}

// rebuildStarts recomputes epoch boundaries (distinct event times) and
// drops stale snapshots.
func (e *Engine) rebuildStarts() {
	e.starts = e.starts[:0]
	e.starts = append(e.starts, 0)
	for _, ev := range e.events {
		if ev.At != e.starts[len(e.starts)-1] {
			e.starts = append(e.starts, ev.At)
		}
	}
	e.epochs = nil
}

// Events returns the schedule in application order. The slice is the
// engine's own; callers must not mutate it.
func (e *Engine) Events() []Event { return e.events }

// Epochs returns the number of epochs the schedule defines (≥ 1).
func (e *Engine) Epochs() int { return len(e.starts) }

// EpochStart returns the first instant of epoch i.
func (e *Engine) EpochStart(i int) time.Duration { return e.starts[i] }

// EpochAt resolves the active epoch for a virtual-time instant. Negative
// times resolve to epoch 0.
func (e *Engine) EpochAt(now time.Duration) *Epoch {
	// sort.Search finds the first start > now; the active epoch is the one
	// before it.
	i := sort.Search(len(e.starts), func(k int) bool { return e.starts[k] > now }) - 1
	if i < 0 {
		i = 0
	}
	return e.epoch(i)
}

// Epoch returns epoch i's snapshot, building it on first use.
func (e *Engine) Epoch(i int) *Epoch { return e.epoch(i) }

// epoch lazily builds the snapshot for epoch index i.
func (e *Engine) epoch(i int) *Epoch {
	if e.epochs == nil {
		e.epochs = make([]*Epoch, len(e.starts))
	}
	if ep := e.epochs[i]; ep != nil {
		return ep
	}
	ep := &Epoch{Index: i, Start: e.starts[i], seed: e.seed}
	if i+1 < len(e.starts) {
		ep.End = e.starts[i+1]
	} else {
		ep.End = -1
	}
	if i == 0 {
		// Epoch 0 is the canonical state: the base graph itself, unsalted.
		// Sharing it (rather than cloning) keeps a schedule-free engine
		// free, and the canonical path identical to the no-engine network.
		ep.graph = e.base
	} else {
		g := e.base.Clone()
		for _, ev := range e.events {
			if ev.At > e.starts[i] {
				break
			}
			switch ev.Kind {
			case Withdraw:
				g.SetLinkUp(ev.From, ev.To, false)
			case Announce:
				g.SetLinkUp(ev.From, ev.To, true)
			}
		}
		ep.graph = g
	}
	e.epochs[i] = ep
	return ep
}

// Clone rebinds the schedule to another graph — the per-worker network
// clone. Epoch snapshots are rebuilt lazily against the new base, so the
// clone is cheap and the result deterministic (snapshots are a pure
// function of base + schedule + seed).
func (e *Engine) Clone(base *topology.Graph) *Engine {
	c := &Engine{
		seed:   e.seed,
		base:   base,
		events: append([]Event(nil), e.events...),
		starts: append([]time.Duration(nil), e.starts...),
	}
	return c
}

// Epoch is one interval of stable routing: a snapshot graph with the
// schedule's link state applied, and a per-epoch ECMP salt.
type Epoch struct {
	Index int
	Start time.Duration
	// End is the first instant of the next epoch, or -1 for the last.
	End   time.Duration
	graph *topology.Graph
	seed  int64
}

// Graph returns the epoch's routing snapshot. Epoch 0 returns the base
// graph itself; later epochs return a private clone with the scheduled
// link state applied.
func (ep *Epoch) Graph() *topology.Graph { return ep.graph }

// Salt returns the ECMP perturbation for a router in this epoch: 0 in
// epoch 0 (canonical paths), and a (seed, router, epoch)-derived value
// afterwards — the same derivation chain faults.Engine route flaps use,
// so there is exactly one salt mechanism in the tree.
func (ep *Epoch) Salt(routerID string) uint64 {
	return FlapEpochSalt(FlapBaseSalt(ep.seed, routerID), uint64(ep.Index))
}

// SaltFunc returns Salt as a closure, or nil for epoch 0 where every salt
// is zero (letting forwarding keep its unsalted fast path).
func (ep *Epoch) SaltFunc() func(routerID string) uint64 {
	if ep.Index == 0 {
		return nil
	}
	return ep.Salt
}

// FlapBaseSalt derives the per-router base salt for ECMP perturbation.
// This is the single source of route-flap randomness in the tree:
// faults.Engine flap policies and routedyn epochs both derive from it, so
// the two mechanisms produce identical perturbation streams for the same
// (seed, router).
func FlapBaseSalt(seed int64, routerID string) uint64 {
	return splitmix(uint64(seed) ^ hashString(routerID))
}

// FlapEpochSalt derives the effective ECMP salt for one epoch from a
// router's base salt. Epoch 0 is canonical: salt 0 reproduces the
// unperturbed path exactly.
func FlapEpochSalt(base, epoch uint64) uint64 {
	if epoch == 0 {
		return 0
	}
	return splitmix(base ^ (epoch+1)*0xbf58476d1ce4e5b9)
}

// splitmix is the SplitMix64 finalizer: a cheap, well-mixed seed stepper.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a, used to fold identifiers into seeds.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
