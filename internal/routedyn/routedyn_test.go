package routedyn

import (
	"bytes"
	"testing"
	"time"

	"cendev/internal/topology"
)

// buildDiamond creates src-r1-{r2a|r2b}-r3-dst with two equal-cost paths.
func buildDiamond(t testing.TB) (*topology.Graph, *topology.Host, *topology.Host) {
	t.Helper()
	g := topology.NewGraph()
	asA := g.AddAS(100, "SourceNet", "US")
	asB := g.AddAS(200, "TransitNet", "DE")
	asC := g.AddAS(300, "DestNet", "KZ")
	r1 := g.AddRouter("r1", asA)
	g.AddRouter("r2a", asB)
	g.AddRouter("r2b", asB)
	r3 := g.AddRouter("r3", asC)
	g.Link("r1", "r2a")
	g.Link("r1", "r2b")
	g.Link("r2a", "r3")
	g.Link("r2b", "r3")
	src := g.AddHost("client", asA, r1)
	dst := g.AddHost("server", asC, r3)
	return g, src, dst
}

func TestEpochBoundaries(t *testing.T) {
	g, _, _ := buildDiamond(t)
	e := NewEngine(7, g)
	if e.Epochs() != 1 {
		t.Fatalf("empty schedule has %d epochs, want 1", e.Epochs())
	}
	e.MustSchedule(Event{At: 10 * time.Second, Kind: Withdraw, From: "r1", To: "r2a"})
	e.MustSchedule(Event{At: 20 * time.Second, Kind: Announce, From: "r1", To: "r2a"})
	e.MustSchedule(Event{At: 20 * time.Second, Kind: Rehash}) // same instant: same epoch
	if e.Epochs() != 3 {
		t.Fatalf("schedule has %d epochs, want 3", e.Epochs())
	}
	cases := []struct {
		now  time.Duration
		want int
	}{
		{0, 0}, {9 * time.Second, 0},
		{10 * time.Second, 1}, {19 * time.Second, 1},
		{20 * time.Second, 2}, {time.Hour, 2},
		{-time.Second, 0},
	}
	for _, c := range cases {
		if got := e.EpochAt(c.now).Index; got != c.want {
			t.Errorf("EpochAt(%v) = epoch %d, want %d", c.now, got, c.want)
		}
	}
}

func TestEpochGraphAppliesLinkState(t *testing.T) {
	g, src, dst := buildDiamond(t)
	e := NewEngine(7, g)
	e.MustSchedule(Event{At: 10 * time.Second, Kind: Withdraw, From: "r1", To: "r2a"})
	e.MustSchedule(Event{At: 20 * time.Second, Kind: Announce, From: "r1", To: "r2a"})

	ep0 := e.EpochAt(0)
	if ep0.Graph() != g {
		t.Fatal("epoch 0 must share the base graph")
	}
	if ep0.SaltFunc() != nil {
		t.Fatal("epoch 0 must be unsalted")
	}

	ep1 := e.EpochAt(15 * time.Second)
	if ep1.Graph() == g {
		t.Fatal("epoch 1 must snapshot a private clone")
	}
	if ep1.Graph().LinkUp("r1", "r2a") {
		t.Fatal("epoch 1 snapshot did not apply the withdrawal")
	}
	if g.LinkUp("r1", "r2a") == false {
		t.Fatal("epoch snapshot mutated the base graph")
	}
	s1, d1 := ep1.Graph().Host(src.ID), ep1.Graph().Host(dst.ID)
	if paths := ep1.Graph().AllPaths(s1, d1, 0); len(paths) != 1 {
		t.Fatalf("epoch 1 has %d paths, want 1", len(paths))
	}

	ep2 := e.EpochAt(25 * time.Second)
	if !ep2.Graph().LinkUp("r1", "r2a") {
		t.Fatal("epoch 2 snapshot did not apply the announcement")
	}
	if ep2.Salt("r1") == 0 || ep2.Salt("r1") == ep1.Salt("r1") {
		t.Fatal("epoch salts must be nonzero and differ per epoch")
	}
}

func TestScheduleValidation(t *testing.T) {
	g, _, _ := buildDiamond(t)
	e := NewEngine(1, g)
	bad := []Event{
		{At: 0, Kind: Withdraw, From: "r1", To: "r2a"},            // epoch 0 is canonical
		{At: time.Second, Kind: Withdraw, From: "r1"},             // missing To
		{At: time.Second, Kind: Withdraw, From: "x", To: "y"},     // unknown routers
		{At: time.Second, Kind: Withdraw, From: "r2a", To: "r2b"}, // not linked
		{At: time.Second, Kind: Rehash, From: "r1", To: "r2a"},    // rehash carries no link
		{At: time.Second, Kind: EventKind(9)},                     // unknown kind
	}
	for _, ev := range bad {
		if err := e.Schedule(ev); err == nil {
			t.Errorf("Schedule(%+v) accepted an invalid event", ev)
		}
	}
	if e.Epochs() != 1 {
		t.Fatalf("rejected events changed the schedule: %d epochs", e.Epochs())
	}
}

func TestCloneRebindsAndMatches(t *testing.T) {
	g, src, dst := buildDiamond(t)
	e := NewEngine(42, g)
	if err := e.FlapLink("r1", "r2a", 10*time.Second, 20*time.Second, 2); err != nil {
		t.Fatal(err)
	}
	cg := g.Clone()
	ce := e.Clone(cg)
	if ce.Epochs() != e.Epochs() {
		t.Fatalf("clone has %d epochs, want %d", ce.Epochs(), e.Epochs())
	}
	for i := 0; i < e.Epochs(); i++ {
		ep, cep := e.Epoch(i), ce.Epoch(i)
		if ep.Salt("r1") != cep.Salt("r1") {
			t.Fatalf("epoch %d salts diverge between engine and clone", i)
		}
		for flow := uint64(0); flow < 32; flow++ {
			p := ep.Graph().PathForFlowSalted(ep.Graph().Host(src.ID), ep.Graph().Host(dst.ID), flow, ep.SaltFunc())
			cp := cep.Graph().PathForFlowSalted(cep.Graph().Host(src.ID), cep.Graph().Host(dst.ID), flow, cep.SaltFunc())
			if len(p) != len(cp) {
				t.Fatalf("epoch %d flow %d: path lengths diverge", i, flow)
			}
			for k := range p {
				if p[k].ID != cp[k].ID {
					t.Fatalf("epoch %d flow %d hop %d: %s vs %s", i, flow, k, p[k].ID, cp[k].ID)
				}
			}
		}
	}
}

func TestFlapSaltsMatchFaultsFormula(t *testing.T) {
	// The historical faults.Engine derivation, inlined: regression that
	// routedyn's exported primitives reproduce it bit-for-bit.
	oldHash := func(s string) uint64 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return h
	}
	oldMix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		for _, router := range []string{"r1", "r5", "bb-az-1", ""} {
			base := oldMix(uint64(seed) ^ oldHash(router))
			if got := FlapBaseSalt(seed, router); got != base {
				t.Fatalf("FlapBaseSalt(%d, %q) = %#x, want %#x", seed, router, got, base)
			}
			for epoch := uint64(0); epoch < 8; epoch++ {
				want := uint64(0)
				if epoch > 0 {
					want = oldMix(base ^ (epoch+1)*0xbf58476d1ce4e5b9)
				}
				if got := FlapEpochSalt(base, epoch); got != want {
					t.Fatalf("FlapEpochSalt(%#x, %d) = %#x, want %#x", base, epoch, got, want)
				}
			}
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	g, _, _ := buildDiamond(t)
	e := NewEngine(3, g)
	e.MustSchedule(Event{At: 5 * time.Second, Kind: Withdraw, From: "r1", To: "r2a"})
	e.MustSchedule(Event{At: 8 * time.Second, Kind: Rehash})
	e.MustSchedule(Event{At: 12 * time.Second, Kind: Announce, From: "r1", To: "r2a"})

	var buf bytes.Buffer
	if err := e.WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	replay := NewEngine(3, g)
	warnings, err := replay.ScheduleFromJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("clean journal produced warnings: %v", warnings)
	}
	if got, want := replay.Events(), e.Events(); len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}
	// Byte-identical re-serialization: journal(replay(journal)) == journal.
	var buf2 bytes.Buffer
	if err := replay.WriteJournal(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("journal re-serialization is not byte-identical")
	}
}

func TestJournalTornTail(t *testing.T) {
	g, _, _ := buildDiamond(t)
	e := NewEngine(3, g)
	e.MustSchedule(Event{At: 5 * time.Second, Kind: Withdraw, From: "r1", To: "r2a"})
	e.MustSchedule(Event{At: 9 * time.Second, Kind: Announce, From: "r1", To: "r2a"})
	var buf bytes.Buffer
	if err := e.WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	events, warnings, err := ReadJournal(torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("torn journal replayed %d events, want 1", len(events))
	}
	if len(warnings) == 0 {
		t.Fatal("torn journal produced no warning")
	}
}
