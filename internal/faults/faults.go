// Package faults is a deterministic, seeded, composable network-impairment
// engine. The simulator consults it on every hop traversal, on every
// response delivery, and at every ICMP emission point, which lets tests
// subject the measurement tools to the structured failures that real
// Internet paths exhibit — bursty loss, dead links, ICMP-silent and
// rate-limited routers, duplicated packets, and route churn — instead of
// only uniform i.i.d. loss.
//
// Everything is deterministic given the engine seed: each registered
// impairment draws from its own generator seeded from (engine seed,
// registration index), and time-dependent impairments key off the virtual
// clock, so the same seed and the same sequence of simulator events
// reproduce byte-identical measurement results.
//
// Impairments come in two scopes:
//
//   - Global impairments (AddGlobal) are consulted once per forward packet
//     traversal and once per response delivery — the semantics of the old
//     simnet.SetLoss, which this package replaces.
//   - Link impairments (AddLink) are consulted on every crossing of that
//     link, in either direction, on both the forward and the return path.
//
// Router-level behaviours — ICMP silence, ICMP rate limiting, and route
// flapping — are registered per router ID.
//
// Each Impairment value carries its own state (e.g. the Gilbert–Elliott
// burst state); register a fresh value per attachment.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"cendev/internal/obs"
	"cendev/internal/routedyn"
)

// Outcome is an impairment's decision about one packet event.
type Outcome struct {
	// Drop removes the packet.
	Drop bool
	// Duplicate delivers the packet twice. It only has an effect on
	// response deliveries: the client receives two copies.
	Duplicate bool
}

// Merge folds another outcome in: any drop drops, any duplicate duplicates.
func (o *Outcome) Merge(other Outcome) {
	o.Drop = o.Drop || other.Drop
	o.Duplicate = o.Duplicate || other.Duplicate
}

// Impairment decides the fate of packets at one attachment point. Apply is
// called once per consulted event with the virtual time and the
// impairment's private seeded generator; implementations may keep state
// across calls (burst models do). Clone returns an independent copy with
// pristine state (a burst chain back in Good, counters zeroed) — engines
// clone their impairments so parallel measurement workers never share the
// mutable state.
type Impairment interface {
	Apply(now time.Duration, rng *rand.Rand) Outcome
	Clone() Impairment
	fmt.Stringer
}

// bound is an impairment registered with the engine, paired with its
// private deterministic generator. The registration id is retained so a
// cloned engine can re-derive byte-identical generator streams. The
// decision counters are nil until the engine is instrumented.
type bound struct {
	imp   Impairment
	rng   *rand.Rand
	id    uint64
	scope string // "global" or "link:a-b", for metric labels
	drops *obs.Counter
	dups  *obs.Counter
}

func (b *bound) apply(now time.Duration) Outcome {
	o := b.imp.Apply(now, b.rng)
	if o.Drop {
		b.drops.Inc()
	}
	if o.Duplicate {
		b.dups.Inc()
	}
	return o
}

// linkKey identifies an undirected link between two attachment points
// (router IDs, or simnet's "@host" client-access pseudo-routers).
type linkKey struct{ a, b string }

func normLink(a, b string) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a, b}
}

// icmpPolicy is the per-router ICMP emission behaviour.
type icmpPolicy struct {
	silent bool
	// Token bucket (real routers rate-limit ICMP generation in exactly
	// this shape). Zero burst means unlimited.
	limited   bool
	tokens    float64
	burst     float64
	perSecond float64
	last      time.Duration
}

// flapPolicy makes a router deterministically reselect among its ECMP
// next hops every period of virtual time.
type flapPolicy struct {
	period time.Duration
	salt   uint64
}

// Engine is the composable impairment engine. The zero value is unusable;
// create one with NewEngine. Engines are not safe for concurrent use —
// the simulator is single-threaded and deterministic by design.
type Engine struct {
	seed   int64
	nextID uint64
	global []*bound
	links  map[linkKey][]*bound
	icmp   map[string]*icmpPolicy
	flaps  map[string]flapPolicy
	reg    *obs.Registry
}

// NewEngine creates an empty engine. All randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:  seed,
		links: make(map[linkKey][]*bound),
		icmp:  make(map[string]*icmpPolicy),
		flaps: make(map[string]flapPolicy),
	}
}

// bind wraps an impairment with a generator derived from the engine seed
// and the registration order, so adding impairments never perturbs the
// streams of previously registered ones.
func (e *Engine) bind(imp Impairment) *bound {
	e.nextID++
	return &bound{imp: imp, rng: rngFor(e.seed, e.nextID), id: e.nextID}
}

// rngFor derives the private generator for a registration id under a seed.
func rngFor(seed int64, id uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix(uint64(seed) ^ id*0x9e3779b97f4a7c15))))
}

// AddGlobal registers an impairment consulted once per forward traversal
// and once per response delivery. Returns the engine for chaining.
func (e *Engine) AddGlobal(imp Impairment) *Engine {
	b := e.bind(imp)
	b.scope = "global"
	e.instrumentBound(b)
	e.global = append(e.global, b)
	return e
}

// AddLink registers an impairment on the undirected link between two
// attachment points, consulted on every crossing in either direction.
func (e *Engine) AddLink(a, b string, imp Impairment) *Engine {
	k := normLink(a, b)
	bd := e.bind(imp)
	bd.scope = "link:" + k.a + "-" + k.b
	e.instrumentBound(bd)
	e.links[k] = append(e.links[k], bd)
	return e
}

// Instrument binds the engine's decision counters to a metrics registry:
// every impairment's drops and duplicates count per (scope, profile), and
// suppressed ICMP emissions count per router. Instrumentation survives
// Clone and CloneSeeded, so a campaign's per-target derived engines all
// aggregate into the same series. Safe on a nil engine; pass nil to
// uninstrument. Returns the engine for chaining.
func (e *Engine) Instrument(r *obs.Registry) *Engine {
	if e == nil {
		return nil
	}
	e.reg = r
	for _, b := range e.global {
		e.instrumentBound(b)
	}
	for _, bs := range e.links {
		for _, b := range bs {
			e.instrumentBound(b)
		}
	}
	return e
}

// instrumentBound resolves a bound impairment's counters against the
// engine's registry, or clears them when uninstrumented.
func (e *Engine) instrumentBound(b *bound) {
	if e.reg == nil {
		b.drops, b.dups = nil, nil
		return
	}
	scope := obs.L("scope", b.scope)
	profile := obs.L("profile", b.imp.String())
	b.drops = e.reg.Counter("faults_drops_total", scope, profile)
	b.dups = e.reg.Counter("faults_duplicates_total", scope, profile)
}

// SilenceICMP makes a router forward packets but never emit ICMP Time
// Exceeded — the traceroute-invisible hop (§4.3 saw exactly one).
func (e *Engine) SilenceICMP(routerID string) *Engine {
	p := e.icmpPolicy(routerID)
	p.silent = true
	return e
}

// LimitICMP installs a token bucket on a router's ICMP generation: burst
// tokens capacity, refilling at perSecond tokens per virtual second. Each
// emitted ICMP costs one token.
func (e *Engine) LimitICMP(routerID string, burst int, perSecond float64) *Engine {
	p := e.icmpPolicy(routerID)
	p.limited = true
	p.burst = float64(burst)
	p.tokens = float64(burst)
	p.perSecond = perSecond
	return e
}

func (e *Engine) icmpPolicy(routerID string) *icmpPolicy {
	p := e.icmp[routerID]
	if p == nil {
		p = &icmpPolicy{}
		e.icmp[routerID] = p
	}
	return p
}

// FlapRoutes makes a router reselect among its equal-cost next hops every
// period of virtual time — deterministic path churn ("A Churn for the
// Better"): the same flow takes a different downstream path in different
// epochs, but the same seed and epoch always pick the same path.
//
// This is a shim over the route-dynamics engine's salt derivation
// (routedyn.FlapBaseSalt / FlapEpochSalt): faults keeps the per-router
// period bookkeeping, routedyn owns the one salt formula, so flap
// scenarios and epoch-based route dynamics perturb paths through exactly
// the same mechanism — and the delegation is bit-for-bit compatible with
// the salts this engine derived before routedyn existed.
func (e *Engine) FlapRoutes(routerID string, period time.Duration) *Engine {
	e.flaps[routerID] = flapPolicy{
		period: period,
		salt:   routedyn.FlapBaseSalt(e.seed, routerID),
	}
	return e
}

// Global consults every global impairment for one traversal event.
func (e *Engine) Global(now time.Duration) Outcome {
	var o Outcome
	for _, b := range e.global {
		o.Merge(b.apply(now))
	}
	return o
}

// Cross consults the impairments on the link between a and b (either
// direction) for one crossing.
func (e *Engine) Cross(a, b string, now time.Duration) Outcome {
	var o Outcome
	for _, imp := range e.links[normLink(a, b)] {
		o.Merge(imp.apply(now))
	}
	return o
}

// AllowICMP reports whether the router may emit an ICMP error now, and
// consumes a rate-limit token when it does.
func (e *Engine) AllowICMP(routerID string, now time.Duration) bool {
	p := e.icmp[routerID]
	if p == nil {
		return true
	}
	if p.silent {
		e.countICMPSuppressed(routerID)
		return false
	}
	if !p.limited {
		return true
	}
	elapsed := now - p.last
	p.last = now
	p.tokens += p.perSecond * elapsed.Seconds()
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	if p.tokens >= 1 {
		p.tokens--
		return true
	}
	e.countICMPSuppressed(routerID)
	return false
}

// countICMPSuppressed records a silenced or rate-limited ICMP emission.
// Suppressions are rare (they only fire at TTL expiry on an impaired
// router), so the counter is resolved through the registry per event
// rather than pre-bound per router.
func (e *Engine) countICMPSuppressed(routerID string) {
	if e.reg != nil {
		e.reg.Counter("faults_icmp_suppressed_total", obs.L("router", routerID)).Inc()
	}
}

// RouteSalt returns the ECMP perturbation for a router at the current
// virtual time: zero (no perturbation) for routers without a flap policy,
// otherwise a value that is stable within a flap epoch and changes across
// epochs.
func (e *Engine) RouteSalt(routerID string, now time.Duration) uint64 {
	f, ok := e.flaps[routerID]
	if !ok || f.period <= 0 {
		return 0
	}
	epoch := uint64(now / f.period)
	// Epoch 0 keeps the unperturbed route so measurements start on the
	// topology's canonical path; churn begins at the first flap (the
	// delegated derivation returns 0 for epoch 0).
	return routedyn.FlapEpochSalt(f.salt, epoch)
}

// Seed returns the seed the engine's randomness derives from.
func (e *Engine) Seed() int64 { return e.seed }

// Clone returns an independent engine with the same seed, the same
// registered impairments (each with pristine state), and byte-identical
// generator streams: every bound impairment keeps its registration id, so
// the clone's draws match what a freshly built identical engine would
// produce. ICMP token buckets refill to their burst and flap policies are
// copied verbatim. The clone shares no mutable state with the original.
func (e *Engine) Clone() *Engine {
	if e == nil {
		return nil
	}
	return e.CloneSeeded(e.seed)
}

// CloneSeeded is Clone under a different seed: the same impairment
// structure, pristine state, but generator streams and flap salts derived
// from seed instead of the original's. Campaign workers use this with
// per-target derived seeds so every target sees an independent — yet
// reproducible — realization of the same fault profile.
func (e *Engine) CloneSeeded(seed int64) *Engine {
	if e == nil {
		return nil
	}
	c := NewEngine(seed)
	c.nextID = e.nextID
	c.reg = e.reg
	for _, b := range e.global {
		cb := &bound{imp: b.imp.Clone(), rng: rngFor(seed, b.id), id: b.id, scope: b.scope}
		c.instrumentBound(cb)
		c.global = append(c.global, cb)
	}
	for k, bs := range e.links {
		cp := make([]*bound, 0, len(bs))
		for _, b := range bs {
			cb := &bound{imp: b.imp.Clone(), rng: rngFor(seed, b.id), id: b.id, scope: b.scope}
			c.instrumentBound(cb)
			cp = append(cp, cb)
		}
		c.links[k] = cp
	}
	for id, p := range e.icmp {
		c.icmp[id] = &icmpPolicy{
			silent:    p.silent,
			limited:   p.limited,
			tokens:    p.burst,
			burst:     p.burst,
			perSecond: p.perSecond,
		}
	}
	for id, f := range e.flaps {
		c.flaps[id] = flapPolicy{
			period: f.period,
			salt:   routedyn.FlapBaseSalt(seed, id),
		}
	}
	return c
}

// DeriveSeed deterministically derives a sub-seed from a base seed and a
// label (e.g. a campaign target key plus pass number), so parallel workers
// can give every unit of work its own independent randomness stream while
// the whole run stays reproducible.
func DeriveSeed(seed int64, label string) int64 {
	return int64(splitmix(uint64(seed) ^ hashString(label)))
}

// ---- Impairment profiles ----

// uniformLoss drops packets i.i.d. at a fixed rate.
type uniformLoss struct{ rate float64 }

// UniformLoss returns an impairment dropping packets independently at the
// given per-packet rate — the transient-failure model CenTrace's retries
// exist for (§4.1).
func UniformLoss(rate float64) Impairment { return &uniformLoss{rate: rate} }

func (u *uniformLoss) Apply(_ time.Duration, rng *rand.Rand) Outcome {
	return Outcome{Drop: u.rate > 0 && rng.Float64() < u.rate}
}

func (u *uniformLoss) Clone() Impairment { cp := *u; return &cp }

func (u *uniformLoss) String() string { return fmt.Sprintf("uniform-loss(%.3f)", u.rate) }

// gilbertElliott is the classic two-state burst-loss channel: a Good and a
// Bad state with different loss rates and geometric sojourn times.
type gilbertElliott struct {
	pGoodToBad, pBadToGood float64
	lossGood, lossBad      float64
	bad                    bool
}

// GilbertElliott returns a two-state burst-loss impairment. The chain
// starts Good; on each consulted packet it first transitions (Good→Bad
// with pGoodToBad, Bad→Good with pBadToGood), then drops the packet with
// the state's loss rate. Mean burst length is 1/pBadToGood packets.
func GilbertElliott(pGoodToBad, pBadToGood, lossGood, lossBad float64) Impairment {
	return &gilbertElliott{
		pGoodToBad: pGoodToBad, pBadToGood: pBadToGood,
		lossGood: lossGood, lossBad: lossBad,
	}
}

func (g *gilbertElliott) Apply(_ time.Duration, rng *rand.Rand) Outcome {
	if g.bad {
		if rng.Float64() < g.pBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.pGoodToBad {
			g.bad = true
		}
	}
	rate := g.lossGood
	if g.bad {
		rate = g.lossBad
	}
	return Outcome{Drop: rate > 0 && rng.Float64() < rate}
}

func (g *gilbertElliott) Clone() Impairment {
	cp := *g
	cp.bad = false // pristine: the chain starts Good
	return &cp
}

func (g *gilbertElliott) String() string {
	return fmt.Sprintf("gilbert-elliott(p_gb=%.3f p_bg=%.3f loss=%.3f/%.3f)",
		g.pGoodToBad, g.pBadToGood, g.lossGood, g.lossBad)
}

// blackhole kills every packet during a virtual-time window.
type blackhole struct{ from, to time.Duration }

// Blackhole returns an impairment under which the attachment point is
// completely dead during [from, to) of virtual time — a link or maintenance
// outage in the middle of a measurement.
func Blackhole(from, to time.Duration) Impairment { return &blackhole{from: from, to: to} }

func (b *blackhole) Apply(now time.Duration, _ *rand.Rand) Outcome {
	return Outcome{Drop: now >= b.from && now < b.to}
}

func (b *blackhole) Clone() Impairment { cp := *b; return &cp }

func (b *blackhole) String() string { return fmt.Sprintf("blackhole[%s,%s)", b.from, b.to) }

// duplication duplicates packets i.i.d. at a fixed rate.
type duplication struct{ rate float64 }

// Duplication returns an impairment that duplicates response deliveries at
// the given rate: the client receives two copies of the same packet, the
// way routing loops and L2 retransmissions duplicate real traffic.
func Duplication(rate float64) Impairment { return &duplication{rate: rate} }

func (d *duplication) Apply(_ time.Duration, rng *rand.Rand) Outcome {
	return Outcome{Duplicate: d.rate > 0 && rng.Float64() < d.rate}
}

func (d *duplication) Clone() Impairment { cp := *d; return &cp }

func (d *duplication) String() string { return fmt.Sprintf("duplication(%.3f)", d.rate) }

// ---- deterministic mixing helpers ----

// splitmix is the SplitMix64 finalizer: a fast, well-distributed 64-bit
// mixer used to derive independent seeds and per-epoch salts.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a over a string.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
